// Command ddpbench regenerates the tables and figures of the paper's
// evaluation (see DESIGN.md's per-experiment index):
//
//	ddpbench -exp fig2        # AllReduce + backward cost curves
//	ddpbench -exp fig6        # latency breakdown, overlap speedups
//	ddpbench -exp fig7        # bucket-size sweep, 16 GPUs
//	ddpbench -exp fig8        # bucket-size sweep, 32 GPUs
//	ddpbench -exp fig9        # scalability to 256 GPUs
//	ddpbench -exp fig10       # skipping gradient synchronization
//	ddpbench -exp fig11       # convergence with no_sync (real training)
//	ddpbench -exp fig12       # round-robin process groups
//	ddpbench -exp table1      # taxonomy of distributed training schemes
//	ddpbench -exp hierarchical # flat-ring vs topology-aware hierarchical AllReduce
//	ddpbench -exp doubletree  # ring vs double binary trees; 2-level vs N-level hierarchy
//	ddpbench -exp all         # everything above
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table1, ablation, hierarchical, doubletree, or all")
	iters := flag.Int("iters", 400, "iterations per simulated latency distribution")
	trainIters := flag.Int("train-iters", 350, "training iterations for the fig11 convergence runs")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus text-format metrics at this address under /metrics while experiments run (empty: disabled)")
	flag.Parse()

	if *metricsAddr != "" {
		msrv, err := metrics.Default().Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddpbench: metrics server: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("[metrics] serving http://%s/metrics\n", msrv.Addr())
	}

	runners := map[string]func(io.Writer) error{
		"fig2":         bench.Fig2,
		"fig6":         bench.Fig6,
		"fig7":         func(w io.Writer) error { return bench.Fig7(w, *iters) },
		"fig8":         func(w io.Writer) error { return bench.Fig8(w, *iters) },
		"fig9":         func(w io.Writer) error { return bench.Fig9(w, *iters/4) },
		"fig10":        func(w io.Writer) error { return bench.Fig10(w, *iters/4) },
		"fig11":        func(w io.Writer) error { return bench.Fig11(w, *trainIters) },
		"fig12":        bench.Fig12,
		"table1":       bench.Table1,
		"ablation":     bench.Ablation,
		"hierarchical": bench.HierarchicalAblation,
		"doubletree":   bench.DoubleTreeAblation,
		"sharding":     bench.ShardingAblation,
	}
	order := []string{"fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table1", "ablation", "hierarchical", "doubletree", "sharding"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "ddpbench: unknown experiment %q (known: %s, all)\n", id, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}
	for _, id := range selected {
		if err := runners[id](os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ddpbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
