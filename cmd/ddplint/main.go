// Command ddplint is the project's static-analysis gate: it loads every
// package in the module with the pure-stdlib loader (go/parser +
// go/types with the source importer — no x/tools, no dependencies) and
// runs the project-specific analyzer suite from internal/lint over
// them.
//
// Usage:
//
//	go run ./cmd/ddplint ./...
//
// Each finding prints as
//
//	file:line: [analyzer] message
//
// and any unsuppressed finding makes the command exit non-zero, which
// is how CI blocks on it. An intentional exception is declared next to
// the offending line with
//
//	//ddplint:ignore <analyzer> <reason>
//
// and counted in the summary. Pass package directory patterns (or
// ./...) to narrow which packages' findings are reported; the whole
// module is always loaded so cross-package types resolve.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzer suite and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fatal(err)
	}
	pkgs = filterPackages(pkgs, root, wd, flag.Args())

	res := lint.Run(pkgs, lint.All())
	for _, f := range res.Findings {
		rel := f.Pos.Filename
		if r, err := filepath.Rel(wd, rel); err == nil && !strings.HasPrefix(r, "..") {
			rel = r
		}
		fmt.Printf("%s:%d: [%s] %s\n", rel, f.Pos.Line, f.Analyzer, f.Message)
	}
	fmt.Printf("ddplint: %d packages, %d analyzers, %d findings, %d ignored by pragma\n",
		res.Packages, len(lint.All()), len(res.Findings), res.Ignored)
	if len(res.Findings) > 0 {
		os.Exit(1)
	}
}

// filterPackages narrows pkgs to those matching the command-line
// patterns, resolved relative to the working directory. "./..." (or no
// pattern) keeps everything under the working directory; "dir" keeps
// that package; "dir/..." keeps the subtree.
func filterPackages(pkgs []*lint.Package, root, wd string, patterns []string) []*lint.Package {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	keep := pkgs[:0]
	for _, p := range pkgs {
		for _, pat := range patterns {
			if matchPattern(p.Dir, wd, pat) {
				keep = append(keep, p)
				break
			}
		}
	}
	return keep
}

func matchPattern(pkgDir, wd, pat string) bool {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" {
			pat = "."
		}
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(wd, base)
	}
	rel, err := filepath.Rel(base, pkgDir)
	if err != nil {
		return false
	}
	if rel == "." {
		return true
	}
	return recursive && !strings.HasPrefix(rel, "..")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ddplint:", err)
	os.Exit(2)
}
