// Command allreduce benchmarks the collective stack the way nccl-tests
// benchmarks NCCL: it sweeps message sizes and reports per-op latency
// and algorithm bandwidth (2(k-1)/k · bytes / time, the standard ring
// bus-bandwidth formula) for each AllReduce algorithm, over in-process
// goroutine ranks or real TCP loopback processes-in-one (goroutine
// ranks with TCP sockets).
//
//	allreduce -world 4 -transport inproc
//	allreduce -world 4 -transport tcp -algos ring,tree
//
// This regenerates, on real hardware, the qualitative content of the
// paper's Fig 2(a)/(b): per-op overhead dominates small messages, so
// batching gradients into buckets pays.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/transport"
)

func main() {
	var (
		world       = flag.Int("world", 4, "number of ranks (goroutines)")
		transp      = flag.String("transport", "inproc", "transport: inproc or tcp")
		algosFlag   = flag.String("algos", "ring,tree,doubletree,naive", "comma-separated algorithms")
		minElems    = flag.Int("min", 1024, "smallest message (float32 elements)")
		maxElems    = flag.Int("max", 1<<22, "largest message (float32 elements)")
		reps        = flag.Int("reps", 5, "repetitions per size (median reported)")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus text-format metrics at this address under /metrics (empty: disabled)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		msrv, err := metrics.Default().Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allreduce: metrics server: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("[metrics] serving http://%s/metrics\n", msrv.Addr())
	}

	algos, err := parseAlgos(*algosFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, algo := range algos {
		if err := run(*world, *transp, algo, *minElems, *maxElems, *reps); err != nil {
			fmt.Fprintf(os.Stderr, "allreduce: %v\n", err)
			os.Exit(1)
		}
	}
}

func parseAlgos(s string) ([]comm.Algorithm, error) {
	var out []comm.Algorithm
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "ring":
			out = append(out, comm.Ring)
		case "tree":
			out = append(out, comm.Tree)
		case "doubletree":
			out = append(out, comm.DoubleTree)
		case "naive":
			out = append(out, comm.Naive)
		default:
			return nil, fmt.Errorf("allreduce: unknown algorithm %q", name)
		}
	}
	return out, nil
}

func buildGroups(world int, transp string, algo comm.Algorithm) ([]comm.ProcessGroup, func(), error) {
	opts := comm.Options{Algorithm: algo}
	switch transp {
	case "inproc":
		groups := comm.NewInProcGroups(world, opts)
		return groups, func() { closeAll(groups) }, nil
	case "tcp":
		srv, err := store.ServeTCP("127.0.0.1:0", 30*time.Second)
		if err != nil {
			return nil, nil, err
		}
		groups := make([]comm.ProcessGroup, world)
		var wg sync.WaitGroup
		errs := make([]error, world)
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				client, err := store.DialTCP(srv.Addr())
				if err != nil {
					errs[rank] = err
					return
				}
				mesh, err := transport.NewTCPMesh(rank, world, client, fmt.Sprintf("bench-%v", algo))
				if err != nil {
					errs[rank] = err
					return
				}
				groups[rank] = comm.NewGroup(mesh, opts)
			}(r)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				srv.Close()
				return nil, nil, err
			}
		}
		return groups, func() { closeAll(groups); srv.Close() }, nil
	default:
		return nil, nil, fmt.Errorf("unknown transport %q", transp)
	}
}

func run(world int, transp string, algo comm.Algorithm, minElems, maxElems, reps int) error {
	groups, cleanup, err := buildGroups(world, transp, algo)
	if err != nil {
		return err
	}
	defer cleanup()

	fmt.Printf("\nAllReduce %s over %s, %d ranks (%d reps, median)\n", algo, transp, world, reps)
	fmt.Printf("%12s %12s %14s %14s\n", "elements", "bytes", "latency", "busbw (MB/s)")
	for n := minElems; n <= maxElems; n *= 4 {
		bufs := make([][]float32, world)
		for r := range bufs {
			bufs[r] = make([]float32, n)
			for i := range bufs[r] {
				bufs[r][i] = float32(r + i)
			}
		}
		latencies := make([]time.Duration, 0, reps)
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			var wg sync.WaitGroup
			errs := make([]error, world)
			for r := 0; r < world; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					errs[rank] = groups[rank].AllReduce(bufs[rank], comm.Sum).Wait()
				}(r)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return err
				}
			}
			latencies = append(latencies, time.Since(start))
		}
		med := median(latencies)
		bytes := 4 * n
		// Ring bus bandwidth: each rank moves 2(k-1)/k of the payload.
		busBW := 2 * float64(world-1) / float64(world) * float64(bytes) / med.Seconds() / 1e6
		fmt.Printf("%12d %12d %14s %14.1f\n", n, bytes, med.Round(time.Microsecond), busBW)
	}
	return nil
}

func median(ds []time.Duration) time.Duration {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	return ds[len(ds)/2]
}

func closeAll(groups []comm.ProcessGroup) {
	for _, g := range groups {
		if g != nil {
			g.Close()
		}
	}
}
