// Command ddptrain runs real distributed data parallel training across
// OS processes connected over TCP, with rank 0 hosting the rendezvous
// store — the multi-process deployment mode of the paper (as opposed to
// the single-process goroutine ranks the examples use).
//
// Launch every rank yourself:
//
//	ddptrain -rank 0 -world 2 -store 127.0.0.1:29500 &
//	ddptrain -rank 1 -world 2 -store 127.0.0.1:29500
//
// or let rank 0 spawn the others:
//
//	ddptrain -world 4 -launch
//
// After training, ranks AllGather a parameter checksum and verify every
// replica holds bit-identical parameters — the paper's correctness
// guarantee, checked for real across process boundaries.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/trace"
)

func main() {
	var (
		rank      = flag.Int("rank", 0, "this process's rank")
		world     = flag.Int("world", 1, "number of processes")
		storeAddr = flag.String("store", "127.0.0.1:29500", "rendezvous store address (rank 0 binds it)")
		launch    = flag.Bool("launch", false, "spawn ranks 1..world-1 as subprocesses of this one")
		iters     = flag.Int("iters", 100, "training iterations")
		batch     = flag.Int("batch", 16, "per-rank batch size")
		lr        = flag.Float64("lr", 0.05, "learning rate")
		bucketMB  = flag.Int("bucket-mb", 25, "DDP bucket size in MB (0 = per-parameter buckets)")
		algo      = flag.String("algo", "ring", "allreduce algorithm: ring, tree, naive")
		syncEvery = flag.Int("sync-every", 1, "synchronize gradients every n iterations (no_sync)")
		rr        = flag.Int("rr", 1, "number of round-robin process groups (Section 5.4)")
	)
	flag.Parse()

	if err := run(*rank, *world, *storeAddr, *launch, *iters, *batch, float32(*lr), *bucketMB, *algo, *syncEvery, *rr); err != nil {
		fmt.Fprintf(os.Stderr, "ddptrain rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

func run(rank, world int, storeAddr string, launch bool, iters, batch int, lr float32, bucketMB int, algo string, syncEvery, rr int) error {
	var algorithm comm.Algorithm
	switch algo {
	case "ring":
		algorithm = comm.Ring
	case "tree":
		algorithm = comm.Tree
	case "naive":
		algorithm = comm.Naive
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	// Rank 0 hosts the rendezvous store; everyone (including rank 0)
	// connects as a client.
	var children []*exec.Cmd
	if rank == 0 {
		srv, err := store.ServeTCP(storeAddr, 60*time.Second)
		if err != nil {
			return fmt.Errorf("starting store: %w", err)
		}
		defer srv.Close()
		if launch {
			for r := 1; r < world; r++ {
				cmd := exec.Command(os.Args[0],
					"-rank", fmt.Sprint(r), "-world", fmt.Sprint(world),
					"-store", storeAddr, "-iters", fmt.Sprint(iters),
					"-batch", fmt.Sprint(batch), "-lr", fmt.Sprint(lr),
					"-bucket-mb", fmt.Sprint(bucketMB), "-algo", algo,
					"-sync-every", fmt.Sprint(syncEvery), "-rr", fmt.Sprint(rr))
				cmd.Stdout = os.Stdout
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					return fmt.Errorf("launching rank %d: %w", r, err)
				}
				children = append(children, cmd)
			}
		}
	}

	client, err := store.DialTCP(storeAddr)
	if err != nil {
		return fmt.Errorf("dialing store: %w", err)
	}
	defer client.Close()

	bucketBytes := bucketMB << 20
	if bucketMB == 0 {
		bucketBytes = -1
	}

	// Build the process group: a single TCP group, or `rr` of them
	// composed round-robin (each sub-group gets its own mesh and worker,
	// like the paper's composite ProcessGroup over NCCL/Gloo instances).
	var pg comm.ProcessGroup
	if rr <= 1 {
		g, err := comm.NewTCPGroup(rank, world, client, "train", comm.Options{Algorithm: algorithm})
		if err != nil {
			return fmt.Errorf("building process group: %w", err)
		}
		pg = g
	} else {
		subs := make([]comm.ProcessGroup, rr)
		for i := range subs {
			g, err := comm.NewTCPGroup(rank, world, client, fmt.Sprintf("train-rr%d", i), comm.Options{Algorithm: algorithm})
			if err != nil {
				return fmt.Errorf("building round-robin sub-group %d: %w", i, err)
			}
			subs[i] = g
		}
		g, err := comm.NewRoundRobin(subs...)
		if err != nil {
			return fmt.Errorf("composing round-robin group: %w", err)
		}
		pg = g
	}
	defer pg.Close()

	dataset := data.NewSynthetic(42, 8192, 64, 10)
	model := models.NewMLP(int64(rank), dataset.Features(), 64, dataset.Classes()) // per-rank seeds; DDP aligns
	d, err := ddp.New(model, pg, ddp.Options{BucketCapBytes: bucketBytes})
	if err != nil {
		return fmt.Errorf("wrapping model: %w", err)
	}
	opt := optim.NewSGD(d.Parameters(), lr)
	opt.Momentum = 0.9

	sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
	if err != nil {
		return err
	}
	loader, err := data.NewLoader(dataset, sampler, batch)
	if err != nil {
		return err
	}
	loader.Reset(0)

	timer := trace.NewTimer()
	epoch := int64(0)
	var lastLoss float32
	for it := 0; it < iters; it++ {
		x, labels, ok := loader.Next()
		if !ok {
			epoch++
			loader.Reset(epoch)
			x, labels, _ = loader.Next()
		}
		syncIter := (it+1)%syncEvery == 0
		step := func() error {
			timer.Start("forward")
			out := d.Forward(autograd.Constant(x))
			loss := autograd.CrossEntropyLoss(out, labels)
			lastLoss = loss.Value.Item()
			timer.Start("backward+comm")
			return d.Backward(loss)
		}
		var stepErr error
		if syncIter {
			stepErr = step()
		} else {
			stepErr = d.NoSync(step)
		}
		if stepErr != nil {
			return fmt.Errorf("iteration %d: %w", it, stepErr)
		}
		if syncIter {
			timer.Start("optimizer")
			opt.Step()
			opt.ZeroGrad()
		}
		timer.Stop()
		if rank == 0 && (it+1)%20 == 0 {
			fmt.Printf("[rank 0] iter %4d loss %.4f buckets %d\n", it+1, lastLoss, d.NumBuckets())
		}
	}

	// Verify replicas are identical: AllGather a parameter checksum.
	var checksum float64
	for _, p := range d.Parameters() {
		for _, v := range p.Value.Data() {
			checksum += float64(v)
		}
	}
	gathered := make([][]float32, world)
	for i := range gathered {
		gathered[i] = make([]float32, 1)
	}
	if err := pg.AllGather(gathered, []float32{float32(checksum)}).Wait(); err != nil {
		return fmt.Errorf("checksum allgather: %w", err)
	}
	consistent := true
	for _, g := range gathered {
		if g[0] != gathered[0][0] {
			consistent = false
		}
	}
	fmt.Printf("[rank %d] done: loss %.4f, checksum %.6f, replicas consistent: %v\n",
		rank, lastLoss, checksum, consistent)
	fmt.Printf("[rank %d] timing: %s\n", rank, timer.Breakdown())
	if !consistent {
		return fmt.Errorf("model replicas diverged")
	}

	for _, cmd := range children {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("child: %w", err)
		}
	}
	return nil
}
