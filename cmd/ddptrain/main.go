// Command ddptrain runs real distributed data parallel training across
// OS processes connected over TCP, with rank 0 hosting the rendezvous
// store — the multi-process deployment mode of the paper (as opposed to
// the single-process goroutine ranks the examples use).
//
// Launch every rank yourself:
//
//	ddptrain -rank 0 -world 2 -store 127.0.0.1:29500 &
//	ddptrain -rank 1 -world 2 -store 127.0.0.1:29500
//
// or let rank 0 spawn the others:
//
//	ddptrain -world 4 -launch
//
// After training, ranks AllGather a parameter checksum and verify every
// replica holds bit-identical parameters — the paper's correctness
// guarantee, checked for real across process boundaries.
//
// -compress fp16|1bit|topk enables wire-level gradient compression
// (Section 6.2.3): bucket gradients travel as the codec's byte frames
// over the TCP mesh's byte lanes — 2x, ~32x, and ~5x fewer wire bytes
// respectively — with per-parameter error-feedback residuals carrying
// the quantization error across iterations (and across the Section
// 6.2.1 bucket rebuild). The replica-consistency checksum still holds:
// compressed AllReduce leaves bitwise-identical gradients everywhere.
//
// -strategy zero2|zero3 swaps DDP's replicated state for the sharded
// engine: gradients ReduceScatter into per-rank owned chunks and the
// momentum-SGD update is fused into Backward against optimizer shards
// (ZeRO-2); zero3 additionally keeps parameters as shards, AllGathering
// each bucket on demand for forward/backward and freeing it after use,
// so no rank ever holds the full model between steps. Over plain Ring
// groups the sharded run reproduces the DDP trajectory bitwise, which
// the final checksum verifies (zero3 ranks Materialize the full
// parameters first). -sync-every and -rr do not compose with sharding.
//
// -algo doubletree selects the double-binary-tree AllReduce (NCCL-2.4
// style: two complementary trees each carrying half the payload,
// log-depth latency). -hosts labels may be structured with "/"
// (pod0/rack0/host0,...) to build an N-level topology: hierarchical
// and auto then reduce within each level and ring only the top-level
// leaders. -topo-levels asserts the labels parsed to the expected
// depth. Combining -algo hierarchical (or auto) with -compress runs
// the inter-host leader ring over compressed byte lanes while
// intra-host phases stay exact — the compressed leader ring.
//
// The -elastic mode demonstrates fault-tolerant training instead: it
// runs `-world` in-process elastic workers, crashes one mid-iteration
// at -kill-step, lets the survivors detect the failure and
// re-rendezvous at the shrunken world, then (with -respawn) boots a
// replacement worker that joins the running job and receives model and
// optimizer state from a survivor:
//
//	ddptrain -elastic -world 3 -iters 60 -kill-step 20
//
// Combining -elastic with -launch lifts the same scenario to real OS
// processes: this process becomes the supervisor — it hosts the TCP
// store and spawns `-world` elastic worker subprocesses that rendezvous
// and build TCP meshes. One worker hard-exits mid-iteration (no
// cleanup, like a SIGKILL); the supervisor detects the child's death
// and (with -respawn) spawns a replacement process that rejoins the
// running job and is brought up to date via state sync. At the end the
// supervisor verifies through the store that every finisher — including
// the respawned process — holds a bit-identical replica:
//
//	ddptrain -elastic -launch -world 3 -iters 60 -kill-step 20
//
// With -ckpt-dir the elastic modes additionally persist durable sharded
// checkpoints every -ckpt-every steps (asynchronously unless
// -ckpt-async=false), and -resume cold-starts from the newest committed
// checkpoint. The -kill-all variant demonstrates the failure elastic
// recovery alone cannot survive: every worker process is crashed at
// -kill-step, and the supervisor relaunches the whole world with
// -resume — the run continues from the last committed checkpoint
// instead of being lost:
//
//	ddptrain -elastic -launch -world 3 -iters 60 -kill-step 20 \
//	    -ckpt-dir /tmp/ddpckpt -ckpt-every 5 -kill-all
package main

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"

	"repro/internal/autograd"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/elastic"
	"repro/internal/fsdp"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/trace"
)

func main() {
	var (
		rank        = flag.Int("rank", 0, "this process's rank")
		world       = flag.Int("world", 1, "number of processes")
		storeAddr   = flag.String("store", "127.0.0.1:29500", "rendezvous store address (rank 0 binds it)")
		launch      = flag.Bool("launch", false, "spawn ranks 1..world-1 as subprocesses of this one")
		iters       = flag.Int("iters", 100, "training iterations")
		batch       = flag.Int("batch", 16, "per-rank batch size")
		lr          = flag.Float64("lr", 0.05, "learning rate")
		bucketMB    = flag.Int("bucket-mb", 25, "DDP bucket size in MB (0 = per-parameter buckets)")
		strategy    = flag.String("strategy", "ddp", "data-parallel strategy: ddp (replicated), zero2 (sharded gradients+optimizer), or zero3 (sharded parameters too)")
		algo        = flag.String("algo", "ring", "allreduce algorithm: ring, tree, doubletree, naive, hierarchical, auto")
		compress    = flag.String("compress", "", "gradient compression codec: fp16, 1bit, or topk (empty: none); compressed frames ride the TCP byte lanes with error feedback; with -algo hierarchical/auto only the leader ring compresses")
		hosts       = flag.String("hosts", "", "comma-separated host label per rank (topology for hierarchical/auto; labels may nest with '/', e.g. pod0/rack0/h0; empty: derive from peer addresses)")
		topoLevels  = flag.Int("topo-levels", 0, "assert the -hosts labels parsed into exactly this many topology levels (0: no check)")
		syncEvery   = flag.Int("sync-every", 1, "synchronize gradients every n iterations (no_sync)")
		rr          = flag.Int("rr", 1, "number of round-robin process groups (Section 5.4)")
		elast       = flag.Bool("elastic", false, "run the elastic fault-tolerance demo instead (in-proc; with -launch, across OS processes)")
		killStep    = flag.Int("kill-step", -1, "elastic: step at which one worker is crashed (default iters/3)")
		killAll     = flag.Bool("kill-all", false, "elastic -launch: crash EVERY worker at -kill-step, then cold-restart the whole world from the last checkpoint (requires -ckpt-dir)")
		respawn     = flag.Bool("respawn", true, "elastic: boot a replacement worker after the crash")
		ckptDir     = flag.String("ckpt-dir", "", "elastic: durable checkpoint directory (empty: checkpointing disabled)")
		ckptEvery   = flag.Int("ckpt-every", 10, "elastic: save a sharded checkpoint every n steps")
		ckptAsync   = flag.Bool("ckpt-async", true, "elastic: persist checkpoints on a background goroutine instead of the training hot path")
		resume      = flag.Bool("resume", false, "elastic: cold-start restore from the newest committed checkpoint in -ckpt-dir")
		worker      = flag.Bool("worker", false, "internal: run as a single elastic worker process (spawned by -elastic -launch)")
		workerID    = flag.String("id", "", "internal: elastic worker identity")
		admitStep   = flag.Int("admit-step", -1, "internal: step at which incumbents yield to admit a respawned worker")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus text-format metrics at this address under /metrics (empty: disabled)")
		traceOut    = flag.String("trace-out", "", "elastic: write recovery span trees as JSON to this file on exit (worker processes append -<id>.json)")
	)
	flag.Parse()

	if *metricsAddr != "" {
		msrv, err := metrics.Default().Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddptrain: metrics server: %v\n", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("[metrics] serving http://%s/metrics\n", msrv.Addr())
	}

	if *elast {
		ck := ckptFlags{dir: *ckptDir, every: *ckptEvery, async: *ckptAsync, resume: *resume}
		var err error
		switch {
		case *worker:
			err = runElasticWorker(*workerID, *storeAddr, *world, *iters, *batch, float32(*lr), *killStep, *admitStep, *compress, ck, *traceOut)
		case *launch:
			err = runElasticSupervisor(*world, *iters, *batch, float32(*lr), *killStep, *killAll, *respawn, *storeAddr, *compress, ck, *traceOut)
		default:
			err = runElastic(*world, *iters, *batch, float32(*lr), *killStep, *respawn, *compress, ck, *traceOut)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ddptrain elastic: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*rank, *world, *storeAddr, *launch, *iters, *batch, float32(*lr), *bucketMB, *strategy, *algo, *compress, *hosts, *topoLevels, *syncEvery, *rr); err != nil {
		fmt.Fprintf(os.Stderr, "ddptrain rank %d: %v\n", *rank, err)
		os.Exit(1)
	}
}

// codecFactory maps the -compress flag to a ddp.Options.NewCodec
// factory; every name yields a comm.WireCodec, so DDP takes the
// wire-level compressed path with DDP-owned error-feedback residuals.
func codecFactory(name string) (func() comm.Codec, error) {
	switch name {
	case "":
		return nil, nil
	case "fp16":
		return func() comm.Codec { return comm.Float16Codec{} }, nil
	case "1bit":
		return func() comm.Codec { return &comm.OneBitCodec{} }, nil
	case "topk":
		return func() comm.Codec { return &comm.TopKCodec{} }, nil
	default:
		return nil, fmt.Errorf("unknown compression codec %q (want fp16, 1bit, or topk)", name)
	}
}

func run(rank, world int, storeAddr string, launch bool, iters, batch int, lr float32, bucketMB int, strategy, algo, compress, hosts string, topoLevels, syncEvery, rr int) error {
	if strategy != "ddp" {
		if _, err := fsdp.ParseStrategy(strategy); err != nil {
			return fmt.Errorf("-strategy: %w (or ddp)", err)
		}
		// The sharded engine fuses reduction and optimizer into Backward:
		// there is no un-synchronized local step to accumulate into, and
		// round-robin groups would break the stable shard ownership the
		// layout depends on.
		if syncEvery > 1 {
			return fmt.Errorf("-strategy %s does not support -sync-every (gradients shard on every step)", strategy)
		}
		if rr > 1 {
			return fmt.Errorf("-strategy %s does not support -rr round-robin groups", strategy)
		}
	}
	var algorithm comm.Algorithm
	switch algo {
	case "ring":
		algorithm = comm.Ring
	case "tree":
		algorithm = comm.Tree
	case "doubletree":
		algorithm = comm.DoubleTree
	case "naive":
		algorithm = comm.Naive
	case "hierarchical":
		algorithm = comm.Hierarchical
	case "auto":
		algorithm = comm.Auto
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	// -hosts lays out a simulated (or real) topology explicitly: one
	// label per rank. Without it, TCP meshes derive placement from the
	// peers' rendezvous addresses — correct for genuinely multi-host
	// jobs, while an all-loopback run degrades hierarchical to ring.
	topology, err := parseHosts(hosts, world)
	if err != nil {
		return err
	}
	// -topo-levels guards against placement typos: structured labels
	// with uneven depth silently degrade to one opaque level, which
	// would quietly run the two-level schedule where the operator
	// expected pod/rack/host phases.
	if topoLevels > 0 {
		if topology == nil {
			return fmt.Errorf("-topo-levels %d requires -hosts", topoLevels)
		}
		if got := topology.Levels(); got != topoLevels {
			return fmt.Errorf("-hosts labels parsed into %d topology level(s), want %d", got, topoLevels)
		}
	}
	newCodec, err := codecFactory(compress)
	if err != nil {
		return err
	}
	opts := comm.Options{Algorithm: algorithm, Topology: topology}

	// Rank 0 hosts the rendezvous store; everyone (including rank 0)
	// connects as a client.
	var children []*exec.Cmd
	if rank == 0 {
		srv, err := store.ServeTCP(storeAddr, 60*time.Second)
		if err != nil {
			return fmt.Errorf("starting store: %w", err)
		}
		defer srv.Close()
		if launch {
			for r := 1; r < world; r++ {
				cmd := exec.Command(os.Args[0],
					"-rank", fmt.Sprint(r), "-world", fmt.Sprint(world),
					"-store", storeAddr, "-iters", fmt.Sprint(iters),
					"-batch", fmt.Sprint(batch), "-lr", fmt.Sprint(lr),
					"-bucket-mb", fmt.Sprint(bucketMB), "-strategy", strategy,
					"-algo", algo,
					"-compress", compress, "-hosts", hosts,
					"-topo-levels", fmt.Sprint(topoLevels),
					"-sync-every", fmt.Sprint(syncEvery), "-rr", fmt.Sprint(rr))
				cmd.Stdout = os.Stdout
				cmd.Stderr = os.Stderr
				if err := cmd.Start(); err != nil {
					return fmt.Errorf("launching rank %d: %w", r, err)
				}
				children = append(children, cmd)
			}
		}
	}

	client, err := store.DialTCP(storeAddr)
	if err != nil {
		return fmt.Errorf("dialing store: %w", err)
	}
	defer client.Close()

	bucketBytes := bucketMB << 20
	if bucketMB == 0 {
		bucketBytes = -1
	}

	// Build the process group: a single TCP group, or `rr` of them
	// composed round-robin (each sub-group gets its own mesh and worker,
	// like the paper's composite ProcessGroup over NCCL/Gloo instances).
	var pg comm.ProcessGroup
	if rr <= 1 {
		g, err := comm.NewTCPGroup(rank, world, client, "train", opts)
		if err != nil {
			return fmt.Errorf("building process group: %w", err)
		}
		pg = g
	} else {
		subs := make([]comm.ProcessGroup, rr)
		for i := range subs {
			g, err := comm.NewTCPGroup(rank, world, client, fmt.Sprintf("train-rr%d", i), opts)
			if err != nil {
				return fmt.Errorf("building round-robin sub-group %d: %w", i, err)
			}
			subs[i] = g
		}
		g, err := comm.NewRoundRobin(subs...)
		if err != nil {
			return fmt.Errorf("composing round-robin group: %w", err)
		}
		pg = g
	}
	defer pg.Close()

	dataset := data.NewSynthetic(42, 8192, 64, 10)
	model := models.NewMLP(int64(rank), dataset.Features(), 64, dataset.Classes()) // per-rank seeds; DDP aligns
	if strategy != "ddp" {
		if err := runSharded(rank, world, pg, model, dataset, strategy, bucketBytes, newCodec, iters, batch, lr); err != nil {
			return err
		}
		for _, cmd := range children {
			if err := cmd.Wait(); err != nil {
				return fmt.Errorf("child: %w", err)
			}
		}
		return nil
	}
	d, err := ddp.New(model, pg, ddp.Options{BucketCapBytes: bucketBytes, NewCodec: newCodec})
	if err != nil {
		return fmt.Errorf("wrapping model: %w", err)
	}
	if newCodec != nil && rank == 0 {
		c := newCodec()
		fmt.Printf("[rank 0] gradient compression: %s (~%.0fx smaller frames, error feedback on)\n",
			c.Name(), c.CompressionRatio())
	}
	opt := optim.NewSGD(d.Parameters(), lr)
	opt.Momentum = 0.9

	sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
	if err != nil {
		return err
	}
	loader, err := data.NewLoader(dataset, sampler, batch)
	if err != nil {
		return err
	}
	loader.Reset(0)

	timer := trace.NewTimer()
	epoch := int64(0)
	var lastLoss float32
	for it := 0; it < iters; it++ {
		x, labels, ok := loader.Next()
		if !ok {
			epoch++
			loader.Reset(epoch)
			x, labels, _ = loader.Next()
		}
		syncIter := (it+1)%syncEvery == 0
		step := func() error {
			timer.Start("forward")
			out := d.Forward(autograd.Constant(x))
			loss := autograd.CrossEntropyLoss(out, labels)
			lastLoss = loss.Value.Item()
			timer.Start("backward+comm")
			return d.Backward(loss)
		}
		var stepErr error
		if syncIter {
			stepErr = step()
		} else {
			stepErr = d.NoSync(step)
		}
		if stepErr != nil {
			return fmt.Errorf("iteration %d: %w", it, stepErr)
		}
		if syncIter {
			timer.Start("optimizer")
			opt.Step()
			opt.ZeroGrad()
		}
		timer.Stop()
		if rank == 0 && (it+1)%20 == 0 {
			fmt.Printf("[rank 0] iter %4d loss %.4f buckets %d\n", it+1, lastLoss, d.NumBuckets())
		}
	}

	// Verify replicas are identical: AllGather a parameter checksum.
	var checksum float64
	for _, p := range d.Parameters() {
		for _, v := range p.Value.Data() {
			checksum += float64(v)
		}
	}
	gathered := make([][]float32, world)
	for i := range gathered {
		gathered[i] = make([]float32, 1)
	}
	if err := pg.AllGather(gathered, []float32{float32(checksum)}).Wait(); err != nil {
		return fmt.Errorf("checksum allgather: %w", err)
	}
	consistent := true
	for _, g := range gathered {
		if g[0] != gathered[0][0] {
			consistent = false
		}
	}
	fmt.Printf("[rank %d] done: loss %.4f, checksum %.6f, replicas consistent: %v\n",
		rank, lastLoss, checksum, consistent)
	fmt.Printf("[rank %d] timing: %s\n", rank, timer.Breakdown())
	if !consistent {
		return fmt.Errorf("model replicas diverged")
	}

	for _, cmd := range children {
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("child: %w", err)
		}
	}
	return nil
}

// runSharded trains through the fsdp wrapper instead of DDP+SGD: the
// momentum-SGD update is fused into Backward against sharded optimizer
// state, and under zero3 parameters live as shards that are gathered
// per bucket on demand. Afterwards ranks Materialize (a no-op under
// zero2) so the replica checksum covers the full model, then verify
// bit-identical parameters exactly like the DDP path.
func runSharded(rank, world int, pg comm.ProcessGroup, model nn.Module, dataset *data.Synthetic, strategy string, bucketBytes int, newCodec func() comm.Codec, iters, batch int, lr float32) error {
	st, err := fsdp.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	f, err := fsdp.New(model, pg, fsdp.Options{
		Strategy:       st,
		BucketCapBytes: bucketBytes,
		LR:             lr,
		Momentum:       0.9,
		NewCodec:       newCodec,
	})
	if err != nil {
		return fmt.Errorf("wrapping model (%s): %w", strategy, err)
	}
	if rank == 0 {
		s := f.Stats()
		fmt.Printf("[rank 0] %s: %d buckets, param shard %d B + optimizer shard %d B per rank (full model %d B)\n",
			strategy, f.NumBuckets(), s.ShardParamBytes, s.OptimizerBytes, s.FullParamBytes)
		if newCodec != nil {
			c := newCodec()
			fmt.Printf("[rank 0] gradient compression: %s (~%.0fx smaller frames, error feedback on)\n",
				c.Name(), c.CompressionRatio())
		}
	}

	sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
	if err != nil {
		return err
	}
	loader, err := data.NewLoader(dataset, sampler, batch)
	if err != nil {
		return err
	}
	loader.Reset(0)

	timer := trace.NewTimer()
	epoch := int64(0)
	var lastLoss float32
	for it := 0; it < iters; it++ {
		x, labels, ok := loader.Next()
		if !ok {
			epoch++
			loader.Reset(epoch)
			x, labels, _ = loader.Next()
		}
		timer.Start("forward")
		out := f.Forward(autograd.Constant(x))
		loss := autograd.CrossEntropyLoss(out, labels)
		lastLoss = loss.Value.Item()
		timer.Start("backward+comm+opt")
		if err := f.Backward(loss); err != nil {
			return fmt.Errorf("iteration %d: %w", it, err)
		}
		timer.Stop()
		if rank == 0 && (it+1)%20 == 0 {
			fmt.Printf("[rank 0] iter %4d loss %.4f buckets %d\n", it+1, lastLoss, f.NumBuckets())
		}
	}

	// Under zero3 only the owned chunks are resident; gather the rest so
	// the checksum spans the whole model. Report peak residency first —
	// Materialize holding everything at once is not a training-time peak.
	stats := f.Stats()
	if err := f.Materialize(); err != nil {
		return fmt.Errorf("materializing parameters: %w", err)
	}
	var checksum float64
	for _, p := range f.Parameters() {
		for _, v := range p.Value.Data() {
			checksum += float64(v)
		}
	}
	gathered := make([][]float32, world)
	for i := range gathered {
		gathered[i] = make([]float32, 1)
	}
	if err := pg.AllGather(gathered, []float32{float32(checksum)}).Wait(); err != nil {
		return fmt.Errorf("checksum allgather: %w", err)
	}
	consistent := true
	for _, g := range gathered {
		if g[0] != gathered[0][0] {
			consistent = false
		}
	}
	fmt.Printf("[rank %d] done: loss %.4f, checksum %.6f, replicas consistent: %v\n",
		rank, lastLoss, checksum, consistent)
	fmt.Printf("[rank %d] %s memory: peak params %d B (full %d B), peak grad bucket %d B, %d gathers, %d reduces\n",
		rank, strategy, stats.PeakParamBytes, stats.FullParamBytes, stats.PeakGradBytes, stats.Gathers, stats.Reduces)
	fmt.Printf("[rank %d] timing: %s\n", rank, timer.Breakdown())
	if !consistent {
		return fmt.Errorf("model replicas diverged")
	}
	return nil
}

// parseHosts turns the -hosts flag (comma-separated host label per
// rank) into a topology; empty means "let the transport derive it".
func parseHosts(hosts string, world int) (*comm.Topology, error) {
	if hosts == "" {
		return nil, nil
	}
	labels := strings.Split(hosts, ",")
	if len(labels) != world {
		return nil, fmt.Errorf("-hosts lists %d labels for world %d", len(labels), world)
	}
	for i, l := range labels {
		labels[i] = strings.TrimSpace(l)
		if labels[i] == "" {
			return nil, fmt.Errorf("-hosts label %d is empty", i)
		}
	}
	return comm.NewTopology(labels), nil
}

// stragglerLog is the elastic modes' straggler configuration: detection
// with default thresholds, surfacing every verdict transition as a log
// line (the elastic_straggler gauge carries the same signal to
// -metrics-addr scrapes).
func stragglerLog() *elastic.StragglerConfig {
	return &elastic.StragglerConfig{
		OnFlag: func(f elastic.StragglerFlag) {
			state := "FLAGGED as straggler"
			if !f.Flagged {
				state = "no longer a straggler"
			}
			fmt.Printf("[straggler] worker %s %s: median step %v vs world median %v\n",
				f.Worker, state, f.Median.Round(time.Microsecond), f.WorldMedian.Round(time.Microsecond))
		},
	}
}

// dumpTrace writes the tracer's recovery span trees to path as JSON.
func dumpTrace(tr *trace.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := tr.WriteJSON(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace file: %w", err)
	}
	fmt.Printf("[trace] wrote %d recovery span tree(s) to %s\n", len(tr.Roots()), path)
	return nil
}

// ---- elastic across OS processes -------------------------------------------

// ckptFlags bundles the checkpoint command-line knobs threaded through
// the elastic modes.
type ckptFlags struct {
	dir    string
	every  int
	async  bool
	resume bool
}

// args renders the flags for a spawned worker process.
func (c ckptFlags) args() []string {
	if c.dir == "" {
		return nil
	}
	return []string{
		"-ckpt-dir", c.dir,
		"-ckpt-every", fmt.Sprint(c.every),
		fmt.Sprintf("-ckpt-async=%v", c.async),
		fmt.Sprintf("-resume=%v", c.resume),
	}
}

// config converts the flags into the agent configuration (nil when
// checkpointing is disabled).
func (c ckptFlags) config() *elastic.CheckpointConfig {
	if c.dir == "" {
		return nil
	}
	return &elastic.CheckpointConfig{Dir: c.dir, Every: int64(c.every), Async: c.async, Resume: c.resume}
}

// runElasticSupervisor hosts the rendezvous store and supervises
// `world` elastic worker subprocesses: it detects child exits and, when
// a worker dies before finishing, spawns a replacement process that
// rejoins the running job — the cross-process analogue of
// torchelastic's agent. One worker is told to crash at killStep, so a
// full failure+recovery cycle is exercised end to end.
//
// With -kill-all (requires -ckpt-dir), every worker crashes at
// killStep instead — the failure elastic recovery alone cannot survive
// — and the supervisor relaunches the whole world with -resume, which
// cold-starts from the last committed checkpoint.
func runElasticSupervisor(world, iters, batch int, lr float32, killStep int, killAll, respawn bool, storeAddr, compress string, ck ckptFlags, traceOut string) error {
	if _, err := codecFactory(compress); err != nil {
		return err
	}
	if world < 2 {
		return fmt.Errorf("-elastic -launch needs -world >= 2, got %d", world)
	}
	if killAll && ck.dir == "" {
		return fmt.Errorf("-kill-all needs -ckpt-dir: with no checkpoint, killing every worker simply loses the run")
	}
	if killStep < 0 {
		killStep = iters / 3
	}
	if killStep >= iters {
		return fmt.Errorf("-kill-step %d must be below -iters %d", killStep, iters)
	}
	// Incumbents yield at admitStep until the replacement's generation
	// bump lands, so the training loop cannot outrun the respawn.
	// Without -respawn there is nothing to wait for: survivors just
	// finish at the shrunken world. (In -kill-all mode the admit step is
	// set later, to the restored step of the cold-restarted world.)
	admitStep := -1
	if respawn && !killAll {
		admitStep = killStep + 3
		if admitStep >= iters {
			admitStep = iters - 1
		}
	}
	srv, err := store.ServeTCP(storeAddr, 120*time.Second)
	if err != nil {
		return fmt.Errorf("starting store: %w", err)
	}
	defer srv.Close()

	type exit struct {
		id   string
		code int
	}
	exits := make(chan exit, 2*world+2)
	running := 0
	launchWorker := func(id string, victim bool, c ckptFlags) error {
		args := []string{"-elastic", "-worker", "-id", id, "-store", storeAddr,
			"-world", fmt.Sprint(world), "-iters", fmt.Sprint(iters),
			"-batch", fmt.Sprint(batch), "-lr", fmt.Sprint(lr),
			"-compress", compress,
			"-admit-step", fmt.Sprint(admitStep)}
		if traceOut != "" {
			args = append(args, "-trace-out", traceOut)
		}
		args = append(args, c.args()...)
		if victim {
			args = append(args, "-kill-step", fmt.Sprint(killStep))
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("launching worker %s: %w", id, err)
		}
		running++
		go func() {
			err := cmd.Wait()
			code := 0
			if ee, ok := err.(*exec.ExitError); ok {
				code = ee.ExitCode()
			} else if err != nil {
				code = -1
			}
			exits <- exit{id: id, code: code}
		}()
		return nil
	}

	victims := map[string]bool{fmt.Sprintf("w%d", world-1): true}
	if killAll {
		for i := 0; i < world; i++ {
			victims[fmt.Sprintf("w%d", i)] = true
		}
	}
	for i := 0; i < world; i++ {
		id := fmt.Sprintf("w%d", i)
		if err := launchWorker(id, victims[id], ck); err != nil {
			return err
		}
	}

	// The demo injects exactly the planned crashes (one victim, or the
	// whole world with -kill-all); any other failure is real.
	crashes := 0
	respawns := 0
	coldRestarted := false
	var finishers []string
	for running > 0 {
		e := <-exits
		running--
		if e.code == 0 {
			finishers = append(finishers, e.id)
			continue
		}
		fmt.Printf("[supervisor] worker %s exited with code %d\n", e.id, e.code)
		if !victims[e.id] || coldRestarted {
			return fmt.Errorf("worker %s failed unexpectedly (code %d)", e.id, e.code)
		}
		crashes++
		if killAll {
			if crashes < world {
				continue // the rest of the doomed world is still dying
			}
			// Every worker is dead: the scenario elastic recovery alone
			// cannot survive. Cold-restart the full world from the last
			// committed checkpoint; incumbents park at the restored step
			// until the whole world has re-formed, keeping the resumed
			// schedule deterministic.
			meta, err := ckpt.LatestMeta(ck.dir)
			if err != nil {
				return fmt.Errorf("kill-all: no checkpoint to cold-restart from: %w", err)
			}
			fmt.Printf("[supervisor] all %d workers dead; cold-restarting from checkpoint at step %d (saved by world %d)\n",
				world, meta.Step, meta.World)
			// The store still holds the dead world's sealed round; open a
			// fresh one or the relaunched workers would park as standbys
			// of a generation whose members no longer exist. (A job
			// restarted against a brand-new store skips this naturally.)
			if err := advanceGeneration(storeAddr); err != nil {
				return fmt.Errorf("kill-all: opening a fresh rendezvous round: %w", err)
			}
			admitStep = int(meta.Step)
			coldRestarted = true
			ckResume := ck
			ckResume.resume = true
			for i := 0; i < world; i++ {
				if err := launchWorker(fmt.Sprintf("c%d", i), false, ckResume); err != nil {
					return err
				}
			}
			continue
		}
		if crashes > 1 {
			return fmt.Errorf("worker %s failed unexpectedly (code %d)", e.id, e.code)
		}
		if !respawn {
			fmt.Printf("[supervisor] -respawn=false: survivors continue at world %d\n", world-1)
			continue
		}
		respawns++
		id := fmt.Sprintf("r%d", respawns)
		fmt.Printf("[supervisor] respawning replacement process %s\n", id)
		if err := launchWorker(id, false, ck); err != nil {
			return err
		}
	}
	if len(finishers) == 0 {
		return fmt.Errorf("no worker finished")
	}

	// Verify across process boundaries: every finisher published its
	// final step and parameter checksum to the store.
	client, err := store.DialTCP(storeAddr)
	if err != nil {
		return fmt.Errorf("dialing store for verification: %w", err)
	}
	defer client.Close()
	base := ""
	for _, id := range finishers {
		v, err := client.Get(elastic.ResultKey("elastic", id))
		if err != nil {
			return fmt.Errorf("result of %s: %w", id, err)
		}
		if base == "" {
			base = string(v)
		} else if string(v) != base {
			return fmt.Errorf("replica %s diverged: %s vs %s", id, v, base)
		}
	}
	fmt.Printf("[supervisor] done: %d finishers (%d respawned), all replicas consistent: %s\n",
		len(finishers), respawns, base)
	return nil
}

// advanceGeneration bumps the elastic generation on the shared store,
// abandoning any round sealed by a now-dead world so freshly launched
// workers rendezvous from a clean slate.
func advanceGeneration(storeAddr string) error {
	client, err := store.DialTCP(storeAddr)
	if err != nil {
		return err
	}
	defer client.Close()
	rdzv, err := elastic.NewRendezvous(elastic.Config{Store: client, Prefix: "elastic"})
	if err != nil {
		return err
	}
	g, err := rdzv.CurrentGeneration()
	if err != nil {
		return err
	}
	_, err = rdzv.ProposeGeneration(g)
	return err
}

// runElasticWorker is one elastic trainer process, spawned by the
// supervisor. If killStep >= 0 it hard-exits mid-iteration at that
// step — os.Exit runs no cleanup, so peers observe exactly what a
// SIGKILL produces: heartbeat silence and connections closed by the
// kernel.
func runElasticWorker(id, storeAddr string, world, iters, batch int, lr float32, killStep, admitStep int, compress string, ck ckptFlags, traceOut string) error {
	if id == "" {
		return fmt.Errorf("-worker requires -id")
	}
	newCodec, err := codecFactory(compress)
	if err != nil {
		return err
	}
	client, err := store.DialTCP(storeAddr)
	if err != nil {
		return fmt.Errorf("dialing store: %w", err)
	}
	defer client.Close()

	const features, hidden, classes = 64, 64, 10
	model := models.NewMLP(7, features, hidden, classes)
	opt := optim.NewSGD(model.Parameters(), lr)
	opt.Momentum = 0.9
	cfg := elastic.Config{
		Store:             client,
		ID:                id,
		Prefix:            "elastic",
		MinWorld:          world - 1,
		MaxWorld:          world,
		Grace:             500 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTimeout:      500 * time.Millisecond,
		RoundTimeout:      15 * time.Second,
		DrainTimeout:      200 * time.Millisecond,
		Builder:           &elastic.TCPBuilder{Store: client},
		DDP:               ddp.Options{BucketCapBytes: 1 << 16, NewCodec: newCodec},
		Checkpoint:        ck.config(),
		Tracer:            trace.NewTracer(),
		Straggler:         stragglerLog(),
	}
	agent, err := elastic.NewAgent(cfg, model, opt)
	if err != nil {
		return err
	}
	if traceOut != "" {
		defer func() {
			if err := dumpTrace(agent.Tracer(), fmt.Sprintf("%s-%s.json", traceOut, id)); err != nil {
				fmt.Fprintf(os.Stderr, "[%s] %v\n", id, err)
			}
		}()
	}

	logged := false
	step := func(ctx elastic.StepContext) error {
		if killStep >= 0 && ctx.Step == int64(killStep) {
			x, _ := elasticBatch(ctx.Step, ctx.Rank, ctx.World, batch, features, classes)
			ctx.DDP.Forward(autograd.Constant(x))
			fmt.Printf("[%s] crashing mid-iteration at step %d (gen %d, world %d)\n",
				id, ctx.Step, ctx.Generation, ctx.World)
			os.Exit(1)
		}
		if ctx.Step == 0 && ctx.Generation == 0 && ctx.World < world {
			// A slow starter can miss the grace window; wait for its
			// generation bump so the schedule stays deterministic.
			return agent.AwaitGenerationChange()
		}
		if admitStep >= 0 && ctx.Step == int64(admitStep) && ctx.World < world {
			return agent.AwaitGenerationChange()
		}
		if !logged {
			logged = true
			fmt.Printf("[%s] rank %d/%d at generation %d, resuming from step %d\n",
				id, ctx.Rank, ctx.World, ctx.Generation, ctx.Step)
		}
		x, labels := elasticBatch(ctx.Step, ctx.Rank, ctx.World, batch, features, classes)
		out := ctx.DDP.Forward(autograd.Constant(x))
		loss := autograd.CrossEntropyLoss(out, labels)
		if err := ctx.DDP.Backward(loss); err != nil {
			return err
		}
		ctx.Optimizer.Step()
		ctx.Optimizer.ZeroGrad()
		if ctx.Rank == 0 && (ctx.Step+1)%20 == 0 {
			fmt.Printf("[%s] step %4d loss %.4f (gen %d, world %d)\n",
				id, ctx.Step+1, loss.Value.Item(), ctx.Generation, ctx.World)
		}
		return nil
	}
	if err := agent.Run(int64(iters), step); err != nil {
		return err
	}

	if err := elastic.PublishResult(client, "elastic", id, agent.Step(), model); err != nil {
		return fmt.Errorf("publishing result: %w", err)
	}
	fmt.Printf("[%s] done at step %d, checksum %.6f\n", id, agent.Step(), elastic.ChecksumParams(model))
	return nil
}

// ---- elastic demo ----------------------------------------------------------

// elasticBatch derives a deterministic batch from (step, rank, world),
// so workers shard data correctly across reconfigurations without a
// stateful loader.
func elasticBatch(step int64, rank, world, batch, features, classes int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(step*1_000_003 + int64(rank)*10_007 + int64(world)*101))
	x := tensor.New(batch, features)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

// runElastic is the end-to-end fault-tolerance proof: `world` elastic
// workers train in-proc; one is crashed mid-iteration, survivors
// detect it and reconfigure, a replacement rejoins and is brought up
// to date, and every surviving replica ends bit-identical.
func runElastic(world, iters, batch int, lr float32, killStep int, respawn bool, compress string, ck ckptFlags, traceOut string) error {
	newCodec, err := codecFactory(compress)
	if err != nil {
		return err
	}
	if world < 2 {
		return fmt.Errorf("-elastic needs -world >= 2, got %d", world)
	}
	if killStep < 0 {
		killStep = iters / 3
	}
	if killStep >= iters {
		return fmt.Errorf("-kill-step %d must be below -iters %d", killStep, iters)
	}
	const features, hidden, classes = 64, 64, 10

	st := store.NewInMem(60 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	// One tracer shared by every in-proc worker: each recovery is built
	// by its own goroutine, the tracer only serializes the root list, so
	// the dump interleaves all workers' span trees in start order.
	tracer := trace.NewTracer()
	if traceOut != "" {
		defer func() {
			if err := dumpTrace(tracer, traceOut); err != nil {
				fmt.Fprintf(os.Stderr, "[elastic] %v\n", err)
			}
		}()
	}
	cfg := func(id string) elastic.Config {
		return elastic.Config{
			Store:             st,
			ID:                id,
			MinWorld:          world - 1,
			MaxWorld:          world,
			Grace:             300 * time.Millisecond,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseTimeout:      300 * time.Millisecond,
			Builder:           &elastic.InProcBuilder{Registry: reg},
			DDP:               ddp.Options{BucketCapBytes: 1 << 16, NewCodec: newCodec},
			Checkpoint:        ck.config(),
			Tracer:            tracer,
			Straggler:         stragglerLog(),
		}
	}

	type worker struct {
		agent *elastic.Agent
		model nn.Module
	}
	mkWorker := func(id string) (*worker, error) {
		model := models.NewMLP(7, features, hidden, classes)
		opt := optim.NewSGD(model.Parameters(), lr)
		opt.Momentum = 0.9
		a, err := elastic.NewAgent(cfg(id), model, opt)
		if err != nil {
			return nil, err
		}
		return &worker{agent: a, model: model}, nil
	}
	// After the crash is survived, incumbents admit the replacement at
	// a fixed step: they release its spawn and yield until its
	// generation bump lands, so the demo cannot race the (fast,
	// in-proc) training loop against the (wall-clock) respawn.
	admitStep := int64(killStep + 3)
	if admitStep >= int64(iters) {
		admitStep = int64(iters) - 1
	}
	spawnReplacement := make(chan struct{})
	var admitOnce sync.Once

	stepFn := func(w *worker, victim bool) elastic.StepFunc {
		logged := false
		return func(ctx elastic.StepContext) error {
			if victim && ctx.Step == int64(killStep) {
				x, _ := elasticBatch(ctx.Step, ctx.Rank, ctx.World, batch, features, classes)
				ctx.DDP.Forward(autograd.Constant(x))
				fmt.Printf("[elastic] worker crashed mid-iteration at step %d (gen %d, world %d)\n",
					ctx.Step, ctx.Generation, ctx.World)
				w.agent.Kill()
				return errors.New("simulated crash")
			}
			if ctx.Step == 0 && ctx.Generation == 0 && ctx.World < world {
				// A slow-starting worker can miss the initial grace
				// window; yield until its generation bump reforms the
				// full world. Generation 0 only — at later generations
				// a small world at step 0 is a legitimate post-crash
				// state, not an incomplete formation.
				return w.agent.AwaitGenerationChange()
			}
			if respawn && !victim && ctx.World == world-1 && ctx.Step == admitStep {
				admitOnce.Do(func() { close(spawnReplacement) })
				return w.agent.AwaitGenerationChange()
			}
			if !logged {
				logged = true
				fmt.Printf("[elastic] %-9s rank %d/%d at generation %d, resuming from step %d\n",
					"worker", ctx.Rank, ctx.World, ctx.Generation, ctx.Step)
			}
			x, labels := elasticBatch(ctx.Step, ctx.Rank, ctx.World, batch, features, classes)
			out := ctx.DDP.Forward(autograd.Constant(x))
			loss := autograd.CrossEntropyLoss(out, labels)
			if err := ctx.DDP.Backward(loss); err != nil {
				return err
			}
			ctx.Optimizer.Step()
			ctx.Optimizer.ZeroGrad()
			if ctx.Rank == 0 && (ctx.Step+1)%20 == 0 {
				fmt.Printf("[elastic] step %4d loss %.4f (gen %d, world %d)\n",
					ctx.Step+1, loss.Value.Item(), ctx.Generation, ctx.World)
			}
			return nil
		}
	}

	workers := make([]*worker, world)
	for i := range workers {
		w, err := mkWorker(fmt.Sprintf("w%d", i))
		if err != nil {
			return err
		}
		workers[i] = w
	}
	victim := workers[world-1]

	// wg tracks every worker; initialWG tracks only the initial set so
	// the monitor below never Waits on the group the late replacement
	// joins (an Add-from-zero concurrent with Wait is WaitGroup misuse).
	var wg, initialWG sync.WaitGroup
	errs := make(map[string]error)
	var mu sync.Mutex
	runWorker := func(name string, w *worker, isVictim bool, extra *sync.WaitGroup) {
		wg.Add(1)
		if extra != nil {
			extra.Add(1)
		}
		go func() {
			defer wg.Done()
			if extra != nil {
				defer extra.Done()
			}
			err := w.agent.Run(int64(iters), stepFn(w, isVictim))
			mu.Lock()
			errs[name] = err
			mu.Unlock()
		}()
	}
	for i, w := range workers {
		runWorker(fmt.Sprintf("w%d", i), w, w == victim, &initialWG)
	}

	var replacement *worker
	if respawn {
		// Boot the replacement when the survivors signal they are past
		// the crash and ready to admit it — or bail out if they all
		// ended (e.g. on error) before admitting anyone, so a failed
		// run reports instead of hanging here.
		allDone := make(chan struct{})
		go func() {
			initialWG.Wait()
			close(allDone)
		}()
		select {
		case <-spawnReplacement:
			var err error
			replacement, err = mkWorker("respawned")
			if err != nil {
				return err
			}
			fmt.Printf("[elastic] respawning replacement worker\n")
			runWorker("respawned", replacement, false, nil)
		case <-allDone:
		}
	}
	wg.Wait()

	finishers := make([]*worker, 0, world)
	for i, w := range workers {
		name := fmt.Sprintf("w%d", i)
		if w == victim {
			if !errors.Is(errs[name], elastic.ErrKilled) {
				return fmt.Errorf("victim returned %v, want ErrKilled", errs[name])
			}
			fmt.Printf("[elastic] victim exit confirmed: %v\n", errs[name])
			continue
		}
		if errs[name] != nil {
			return fmt.Errorf("worker %s: %w", name, errs[name])
		}
		finishers = append(finishers, w)
	}
	if replacement != nil {
		if errs["respawned"] != nil {
			return fmt.Errorf("respawned worker: %w", errs["respawned"])
		}
		finishers = append(finishers, replacement)
	}

	checksum := func(w *worker) float64 { return elastic.ChecksumParams(w.model) }
	base := checksum(finishers[0])
	consistent := true
	for _, w := range finishers[1:] {
		if checksum(w) != base {
			consistent = false
		}
	}
	fmt.Printf("[elastic] done: %d finishers at step %d, checksum %.6f, replicas consistent: %v\n",
		len(finishers), finishers[0].agent.Step(), base, consistent)
	if !consistent {
		return errors.New("replicas diverged after recovery")
	}
	return nil
}
