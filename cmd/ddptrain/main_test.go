package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/trace"
)

// newTestTracer returns a tracer with one finished root span so the
// JSON dump is non-trivial.
func newTestTracer() *trace.Tracer {
	tr := trace.NewTracer()
	s := tr.StartSpan("recovery")
	s.Phase("rendezvous")
	s.Finish()
	return tr
}

func TestDumpTraceWritesParseableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := dumpTrace(newTestTracer(), path); err != nil {
		t.Fatalf("dumpTrace: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var roots []struct {
		Name  string    `json:"name"`
		Start time.Time `json:"start"`
	}
	if err := json.Unmarshal(raw, &roots); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, raw)
	}
	if len(roots) != 1 || roots[0].Name != "recovery" {
		t.Fatalf("unexpected span trees: %+v", roots)
	}
}

// TestDumpTraceReportsWriteError pins the fix for silently dropped
// trace-file errors: a failing write (or close) must surface to the
// caller instead of vanishing behind a deferred Close.
func TestDumpTraceReportsWriteError(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	if err := dumpTrace(newTestTracer(), "/dev/full"); err == nil {
		t.Fatal("dumpTrace to /dev/full returned nil, want write error")
	}
}

func TestDumpTraceReportsCreateError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "missing-dir", "trace.json")
	if err := dumpTrace(newTestTracer(), path); err == nil {
		t.Fatal("dumpTrace into a missing directory returned nil, want error")
	}
}
