// The zero1 example contrasts DDP's replicated-optimizer design with
// the ZeRO-style sharded optimizer of the paper's Section 7: both train
// the same model on the same data to the same weights (sharding a
// momentum update is mathematically free), but the sharded optimizer
// keeps only 1/world of the momentum state per rank, trading DDP's
// single overlapped AllReduce for an explicit ReduceScatter +
// AllGather.
//
//	go run ./examples/zero1
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const (
	world = 4
	iters = 60
	batch = 16
)

func main() {
	dataset := data.NewSynthetic(17, 2048, 24, 6)

	ddpWeights, ddpStateBytes := trainDDP(dataset)
	zeroWeights, zeroStateBytes := trainZero(dataset)

	var maxDiff float32
	for i := range ddpWeights {
		if d := ddpWeights[i].MaxAbsDiff(zeroWeights[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |DDP - ZeRO| over all weights after %d iterations: %v\n", iters, maxDiff)
	fmt.Printf("optimizer state per rank: DDP %d bytes, ZeRO shard %d bytes (%.1fx smaller)\n",
		ddpStateBytes, zeroStateBytes, float64(ddpStateBytes)/float64(zeroStateBytes))
}

func trainDDP(dataset *data.Synthetic) ([]*tensor.Tensor, int) {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeAll(groups)
	var weights []*tensor.Tensor
	var stateBytes int
	run(groups, dataset, func(rank int, m nn.Module, pg comm.ProcessGroup) trainer {
		d, err := ddp.New(m, pg, ddp.Options{})
		if err != nil {
			log.Fatal(err)
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		opt.Momentum = 0.9
		return trainer{
			step: func(x *autograd.Variable, labels []int) float32 {
				opt.ZeroGrad()
				out := d.Forward(x)
				loss := autograd.CrossEntropyLoss(out, labels)
				if err := d.Backward(loss); err != nil {
					log.Fatal(err)
				}
				opt.Step()
				return loss.Value.Item()
			},
			finish: func() {
				if rank == 0 {
					weights = snapshot(m)
					stateBytes = 4 * nn.NumParams(m) // full velocity on every rank
				}
			},
		}
	})
	return weights, stateBytes
}

func trainZero(dataset *data.Synthetic) ([]*tensor.Tensor, int) {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeAll(groups)
	var weights []*tensor.Tensor
	var stateBytes int
	run(groups, dataset, func(rank int, m nn.Module, pg comm.ProcessGroup) trainer {
		opt, err := optim.NewZeroSGD(m.Parameters(), pg, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		opt.Momentum = 0.9
		return trainer{
			step: func(x *autograd.Variable, labels []int) float32 {
				opt.ZeroGrad()
				out := m.Forward(x)
				loss := autograd.CrossEntropyLoss(out, labels)
				autograd.Backward(loss, nil)
				if err := opt.Step(); err != nil {
					log.Fatal(err)
				}
				return loss.Value.Item()
			},
			finish: func() {
				if rank == 0 {
					weights = snapshot(m)
					stateBytes = opt.ShardBytes()
				}
			},
		}
	})
	return weights, stateBytes
}

type trainer struct {
	step   func(x *autograd.Variable, labels []int) float32
	finish func()
}

func run(groups []comm.ProcessGroup, dataset *data.Synthetic, build func(int, nn.Module, comm.ProcessGroup) trainer) {
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := models.NewMLP(33, dataset.Features(), 32, dataset.Classes())
			tr := build(rank, m, groups[rank])
			sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
			if err != nil {
				log.Fatal(err)
			}
			loader, err := data.NewLoader(dataset, sampler, batch)
			if err != nil {
				log.Fatal(err)
			}
			loader.Reset(0)
			epoch := int64(0)
			var loss float32
			for it := 0; it < iters; it++ {
				x, labels, ok := loader.Next()
				if !ok {
					epoch++
					loader.Reset(epoch)
					x, labels, _ = loader.Next()
				}
				loss = tr.step(autograd.Constant(x), labels)
				if rank == 0 && (it+1)%20 == 0 {
					fmt.Printf("  iter %3d loss %.4f\n", it+1, loss)
				}
			}
			tr.finish()
		}(rank)
	}
	wg.Wait()
}

func snapshot(m nn.Module) []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(m.Parameters()))
	for _, p := range m.Parameters() {
		out = append(out, p.Value.Clone())
	}
	return out
}

func closeAll(groups []comm.ProcessGroup) {
	for _, g := range groups {
		g.Close()
	}
}
