// The gpipe example runs pipeline model parallelism (the
// Cross-iteration/Model-parallel row of the paper's Table 1): a model
// split into three stages trains on micro-batched inputs with the
// GPipe fill/drain schedule, and the resulting gradients are verified
// to match full-batch training — the equivalence that scheme trades
// pipeline bubbles for, just as DDP trades AllReduce bandwidth.
//
//	go run ./examples/gpipe
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/tensor"
)

func main() {
	rng := rand.New(rand.NewSource(5))
	p, err := pipeline.New(
		nn.NewSequential(nn.NewLinear(rng, "stage0", 16, 32), nn.Tanh{}),
		nn.NewSequential(nn.NewLinear(rng, "stage1", 32, 32), nn.ReLU{}),
		nn.NewSequential(nn.NewLinear(rng, "stage2", 32, 4)),
	)
	if err != nil {
		log.Fatal(err)
	}

	dataRng := rand.New(rand.NewSource(6))
	x := tensor.RandN(dataRng, 1, 32, 16)
	y := tensor.RandN(dataRng, 1, 32, 4)
	mse := func(out *autograd.Variable, target *tensor.Tensor) *autograd.Variable {
		return autograd.MSELoss(out, autograd.Constant(target))
	}

	fmt.Println("training a 3-stage pipeline, 8 micro-batches per step:")
	for it := 0; it < 50; it++ {
		p.ZeroGrad()
		loss, err := p.TrainBatch(x, y, 8, mse)
		if err != nil {
			log.Fatal(err)
		}
		for _, param := range p.Parameters() {
			tensor.AxpyInPlace(param.Value, -0.1, param.Grad)
		}
		if (it+1)%10 == 0 {
			fmt.Printf("  step %2d  loss %.4f\n", it+1, loss)
		}
	}

	// Verify micro-batching did not change the math: gradients of one
	// more pipelined step equal a monolithic full-batch step through the
	// same stage modules (which share their parameters).
	p.ZeroGrad()
	if _, err := p.TrainBatch(x, y, 8, mse); err != nil {
		log.Fatal(err)
	}
	grads := make([]*tensor.Tensor, len(p.Parameters()))
	for i, param := range p.Parameters() {
		grads[i] = param.Grad.Clone()
		param.ZeroGrad()
	}
	out := pipelineForwardMonolithic(p, x)
	autograd.Backward(autograd.MSELoss(out, autograd.Constant(y)), nil)
	var maxDiff float32
	for i, param := range p.Parameters() {
		if d := param.Grad.MaxAbsDiff(grads[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |pipelined grad - full-batch grad| = %v (GPipe equivalence)\n", maxDiff)
}

// pipelineForwardMonolithic applies the pipeline's stages sequentially
// in one graph, sharing their parameters.
func pipelineForwardMonolithic(p *pipeline.Pipeline, x *tensor.Tensor) *autograd.Variable {
	h := autograd.Constant(x)
	for _, stage := range p.StageModules() {
		h = stage.Forward(h)
	}
	return h
}
