// The gradcompress example exercises the gradient compression extension
// of the paper's Section 6.2.3: the same training run with no
// compression, fp16, 1-bit, and top-k quantization with error feedback,
// comparing final losses. All three codecs implement comm.WireCodec, so
// DDP routes buckets through comm.CompressedAllReduce: the accuracy
// effect is real AND the byte savings are real wherever the transport
// carries byte frames (in-proc here; see BenchmarkCompressedAllReduce
// for the measured TCP wire bytes).
//
//	go run ./examples/gradcompress
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
)

const (
	world = 4
	iters = 150
	batch = 16
)

func main() {
	codecs := []struct {
		name    string
		factory func() comm.Codec
	}{
		{"none", nil},
		{"fp16", func() comm.Codec { return comm.Float16Codec{} }},
		{"1bit+error-feedback", func() comm.Codec { return &comm.OneBitCodec{} }},
		{"topk+error-feedback", func() comm.Codec { return &comm.TopKCodec{} }},
	}
	fmt.Printf("%-22s %12s\n", "codec", "final loss")
	for _, c := range codecs {
		loss := train(c.factory)
		fmt.Printf("%-22s %12.4f\n", c.name, loss)
	}
	fmt.Println("\nfp16 should track the uncompressed loss closely; 1-bit and top-k trade")
	fmt.Println("a little accuracy for ~32x / ~5x less gradient traffic (Section 6.2.3).")
}

func train(codec func() comm.Codec) float32 {
	dataset := data.NewSynthetic(11, 2048, 32, 8)
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	losses := make([]float32, world)

	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			model := models.NewMLP(5, dataset.Features(), 48, dataset.Classes())
			d, err := ddp.New(model, groups[rank], ddp.Options{NewCodec: codec})
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			opt := optim.NewSGD(d.Parameters(), 0.05)
			opt.Momentum = 0.9
			sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
			if err != nil {
				log.Fatal(err)
			}
			loader, err := data.NewLoader(dataset, sampler, batch)
			if err != nil {
				log.Fatal(err)
			}
			loader.Reset(0)
			epoch := int64(0)
			for it := 0; it < iters; it++ {
				x, labels, ok := loader.Next()
				if !ok {
					epoch++
					loader.Reset(epoch)
					x, labels, _ = loader.Next()
				}
				out := d.Forward(autograd.Constant(x))
				loss := autograd.CrossEntropyLoss(out, labels)
				losses[rank] = loss.Value.Item()
				if err := d.Backward(loss); err != nil {
					log.Fatalf("rank %d iter %d: %v", rank, it, err)
				}
				opt.Step()
				opt.ZeroGrad()
			}
		}(rank)
	}
	wg.Wait()
	return losses[0]
}
