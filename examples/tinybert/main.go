// The tinybert example trains a miniature BERT-style encoder (real
// multi-head attention, pre-norm blocks) under DDP across 4 goroutine
// ranks, using a round-robin composite process group (rr3, the paper's
// Section 5.4 technique) — the configuration where the paper saw its
// largest round-robin gains. A denoising objective makes the task
// self-supervised: reconstruct clean token embeddings from corrupted
// inputs.
//
//	go run ./examples/tinybert
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const (
	world  = 4
	dim    = 16
	heads  = 4
	ff     = 32
	layers = 2
	tokens = 6
	iters  = 80
	rrSize = 3
)

func main() {
	// Build rr3: three independent in-process groups per rank, composed
	// round-robin. Collectives rotate across them, letting multiple
	// buckets' AllReduces proceed concurrently (Section 5.4).
	subGroups := make([][]comm.ProcessGroup, rrSize)
	for i := range subGroups {
		subGroups[i] = comm.NewInProcGroups(world, comm.Options{})
	}
	rr := make([]comm.ProcessGroup, world)
	for r := 0; r < world; r++ {
		gs := make([]comm.ProcessGroup, rrSize)
		for i := range gs {
			gs[i] = subGroups[i][r]
		}
		g, err := comm.NewRoundRobin(gs...)
		if err != nil {
			log.Fatal(err)
		}
		rr[r] = g
	}
	defer func() {
		for _, g := range rr {
			g.Close()
		}
	}()

	finals := make([]float32, world)
	transformers := make([]*ddp.DDP, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			model := models.NewTinyTransformer(21, dim, heads, ff, layers)
			d, err := ddp.New(model, rr[rank], ddp.Options{
				BucketCapBytes: 2048, // small buckets: several AllReduces per step
			})
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			transformers[rank] = d
			opt := optim.NewAdam(d.Parameters(), 0.003)
			dataRng := rand.New(rand.NewSource(int64(50 + rank)))
			for it := 0; it < iters; it++ {
				clean := tensor.RandN(dataRng, 1, tokens, dim)
				noisy := clean.Clone()
				for i := range noisy.Data() {
					noisy.Data()[i] += 0.3 * float32(dataRng.NormFloat64())
				}
				opt.ZeroGrad()
				out := d.Forward(autograd.Constant(noisy))
				loss := autograd.MSELoss(out, autograd.Constant(clean))
				finals[rank] = loss.Value.Item()
				if err := d.Backward(loss); err != nil {
					log.Fatalf("rank %d iter %d: %v", rank, it, err)
				}
				opt.Step()
				if rank == 0 && (it+1)%20 == 0 {
					fmt.Printf("iter %3d  denoising loss %.4f  (buckets %d over rr%d groups)\n",
						it+1, finals[rank], d.NumBuckets(), rrSize)
				}
			}
		}(rank)
	}
	wg.Wait()

	identical := true
	for i, p := range transformers[0].Parameters() {
		if !p.Value.Equal(transformers[1].Parameters()[i].Value) {
			identical = false
			break
		}
	}
	fmt.Printf("\nfinal loss %.4f; replicas identical across round-robin groups: %v\n",
		finals[0], identical)
}
