// The paramavg example demonstrates the paper's Section 2.2 argument
// for synchronizing gradients instead of parameters: two fleets train
// from identical initial states on identical data — one with DDP
// (gradient synchronization), one with parameter averaging after every
// local Adam step, built exactly as the paper suggests, from explicit
// AllReduce calls on parameters. Their models drift apart because
// per-replica optimizer state diverges.
//
//	go run ./examples/paramavg
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const (
	world = 2
	iters = 30
)

func main() {
	dataRng := rand.New(rand.NewSource(3))
	inputs := make([][]*tensor.Tensor, world)
	targets := make([][]*tensor.Tensor, world)
	for r := 0; r < world; r++ {
		for i := 0; i < iters; i++ {
			inputs[r] = append(inputs[r], tensor.RandN(dataRng, 1, 8, 16))
			targets[r] = append(targets[r], tensor.RandN(dataRng, 1, 8, 4))
		}
	}

	gradSync := trainGradientSync(inputs, targets)
	paramAvg := trainParameterAveraging(inputs, targets)

	var maxDiff float32
	for i := range gradSync {
		if d := gradSync[i].MaxAbsDiff(paramAvg[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nafter %d iterations on identical data from identical initial weights:\n", iters)
	fmt.Printf("  max |gradient-sync - parameter-averaging| over all weights: %v\n", maxDiff)
	fmt.Println("\nthe divergence comes from per-replica Adam state: each replica's second")
	fmt.Println("moments track its own local gradients, so the averaged parameters follow a")
	fmt.Println("different trajectory than DDP's mathematically-equivalent-to-local one (§2.2).")
}

// trainGradientSync trains with DDP and returns rank 0's final weights.
func trainGradientSync(inputs, targets [][]*tensor.Tensor) []*tensor.Tensor {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeAll(groups)
	out := make([][]*tensor.Tensor, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := models.NewMLP(1, 16, 12, 4)
			d, err := ddp.New(m, groups[rank], ddp.Options{})
			if err != nil {
				log.Fatal(err)
			}
			opt := optim.NewAdam(d.Parameters(), 0.01)
			for i := 0; i < iters; i++ {
				opt.ZeroGrad()
				o := d.Forward(autograd.Constant(inputs[rank][i]))
				if err := d.Backward(autograd.MSELoss(o, autograd.Constant(targets[rank][i]))); err != nil {
					log.Fatal(err)
				}
				opt.Step()
			}
			out[rank] = snapshot(m.Parameters())
		}(r)
	}
	wg.Wait()
	return out[0]
}

// trainParameterAveraging runs local Adam steps and then averages
// parameters with explicit AllReduce calls — the "auxiliary step"
// structure the paper warns about.
func trainParameterAveraging(inputs, targets [][]*tensor.Tensor) []*tensor.Tensor {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeAll(groups)
	out := make([][]*tensor.Tensor, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := models.NewMLP(1, 16, 12, 4) // same seed: same init
			opt := optim.NewAdam(m.Parameters(), 0.01)
			for i := 0; i < iters; i++ {
				opt.ZeroGrad()
				o := m.Forward(autograd.Constant(inputs[rank][i]))
				autograd.Backward(autograd.MSELoss(o, autograd.Constant(targets[rank][i])), nil)
				opt.Step()
				// Average parameters across replicas (Section 2.2: the
				// collective communication feature is the right tool).
				works := make([]comm.Work, 0, len(m.Parameters()))
				for _, p := range m.Parameters() {
					works = append(works, groups[rank].AllReduce(p.Value.Data(), comm.Avg))
				}
				if err := comm.WaitAll(works...); err != nil {
					log.Fatal(err)
				}
			}
			out[rank] = snapshot(m.Parameters())
		}(r)
	}
	wg.Wait()
	return out[0]
}

func snapshot(params []*nn.Parameter) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	return out
}

func closeAll(groups []comm.ProcessGroup) {
	for _, g := range groups {
		g.Close()
	}
}
