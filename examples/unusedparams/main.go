// The unusedparams example exercises the paper's Fig 3(b) scenario:
// dynamic graphs where an iteration touches only a sub-graph of the
// model. It shows (1) the descriptive error DDP raises when
// FindUnusedParameters is off, (2) correct training with it on, using a
// LayerDrop tower (Section 6.2.2) whose shared seed makes all ranks
// skip the same layers each iteration, and (3) globally-unused
// parameters keeping their gradients untouched.
//
//	go run ./examples/unusedparams
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const world = 2

func main() {
	demonstrateHangPrevention()
	trainWithLayerDrop()
}

// towerModel runs fc1 and optionally the middle residual block.
type towerModel struct {
	fc1, fc2 *nn.Linear
	mid      *nn.LayerDrop
}

func newTower(seed int64) *towerModel {
	rng := rand.New(rand.NewSource(seed))
	return &towerModel{
		fc1: nn.NewLinear(rng, "fc1", 16, 16),
		mid: nn.NewLayerDrop(1234 /* shared across ranks */, 0.5,
			nn.NewResidual(nn.NewLinear(rng, "mid", 16, 16))),
		fc2: nn.NewLinear(rng, "fc2", 16, 4),
	}
}

func (m *towerModel) Forward(x *autograd.Variable) *autograd.Variable {
	return m.fc2.Forward(m.mid.Forward(m.fc1.Forward(x)))
}

func (m *towerModel) Parameters() []*nn.Parameter {
	ps := m.fc1.Parameters()
	ps = append(ps, m.mid.Parameters()...)
	return append(ps, m.fc2.Parameters()...)
}
func (m *towerModel) Buffers() []*nn.Buffer { return nil }
func (m *towerModel) SetTraining(t bool)    { m.mid.SetTraining(t) }

// demonstrateHangPrevention shows the error surfaced when a sub-graph
// iteration runs without FindUnusedParameters.
func demonstrateHangPrevention() {
	groups := comm.NewInProcGroups(1, comm.Options{})
	defer groups[0].Close()
	rng := rand.New(rand.NewSource(1))
	used := nn.NewLinear(rng, "used", 8, 8)
	skipped := nn.NewLinear(rng, "skipped", 8, 8)
	model := nn.NewSequential(used, skipped)
	d, err := ddp.New(model, groups[0], ddp.Options{}) // FindUnusedParameters off
	if err != nil {
		log.Fatal(err)
	}
	_ = d.Forward(autograd.Constant(tensor.Ones(2, 8)))
	// Loss built from a sub-graph that skips the second layer:
	partial := used.Forward(autograd.Constant(tensor.Ones(2, 8)))
	err = d.Backward(autograd.Sum(partial))
	fmt.Println("without FindUnusedParameters, DDP reports instead of hanging:")
	fmt.Printf("  %v\n\n", err)
}

// trainWithLayerDrop trains a LayerDrop tower with FindUnusedParameters
// across 2 ranks and verifies the replicas stay identical.
func trainWithLayerDrop() {
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]*towerModel, world)
	skips := make([]int, world)

	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := newTower(int64(10 + rank))
			models[rank] = m
			d, err := ddp.New(m, groups[rank], ddp.Options{FindUnusedParameters: true})
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			opt := optim.NewSGD(d.Parameters(), 0.05)
			dataRng := rand.New(rand.NewSource(int64(rank)))
			for it := 0; it < 30; it++ {
				x := autograd.Constant(tensor.RandN(dataRng, 1, 4, 16))
				y := autograd.Constant(tensor.RandN(dataRng, 1, 4, 4))
				out := d.Forward(x)
				if m.mid.Skipped {
					skips[rank]++
				}
				if err := d.Backward(autograd.MSELoss(out, y)); err != nil {
					log.Fatalf("rank %d iter %d: %v", rank, it, err)
				}
				opt.Step()
				opt.ZeroGrad()
			}
		}(rank)
	}
	wg.Wait()

	identical := true
	for i, p := range models[0].Parameters() {
		if !p.Value.Equal(models[1].Parameters()[i].Value) {
			identical = false
		}
	}
	fmt.Printf("LayerDrop training: rank 0 skipped the middle block %d/30 iterations (rank 1: %d/30)\n",
		skips[0], skips[1])
	fmt.Printf("replicas identical after 30 dynamic-graph iterations: %v\n", identical)
}
