// Example elastic demonstrates fault-tolerant data parallel training
// (the paper's Section 7 future direction, implemented in
// internal/elastic): three workers train together, one leaves cleanly
// mid-run, the survivors reconfigure and continue at the smaller
// world, and a newcomer then joins and is brought up to date with
// model + optimizer state from a survivor — all without losing any
// completed step.
//
// For the crash (rather than clean-exit) scenario, see
// `ddptrain -elastic`, which kills a worker mid-backward and respawns
// a replacement.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/elastic"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
)

const (
	features = 32
	hidden   = 32
	classes  = 5
	batch    = 8
	steps    = 12
	leaveAt  = 4 // the departing worker's last completed step
	admitAt  = 8 // step at which the newcomer is admitted
)

// batchFor derives the worker's shard purely from (step, rank, world),
// which is what makes re-sharding across reconfigurations trivial.
func batchFor(step int64, rank, world int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(step*1_000_003 + int64(rank)*10_007 + int64(world)*101))
	x := tensor.New(batch, features)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

type worker struct {
	name  string
	agent *elastic.Agent
	model nn.Module
}

func newWorker(name string, st store.Store, reg *comm.InProcRegistry) *worker {
	model := models.NewMLP(3, features, hidden, classes)
	opt := optim.NewSGD(model.Parameters(), 0.05)
	opt.Momentum = 0.9
	agent, err := elastic.NewAgent(elastic.Config{
		Store:             st,
		ID:                name,
		MinWorld:          2,
		MaxWorld:          3,
		Grace:             200 * time.Millisecond,
		HeartbeatInterval: 10 * time.Millisecond,
		Builder:           &elastic.InProcBuilder{Registry: reg},
		DDP:               ddp.Options{BucketCapBytes: 1 << 12},
	}, model, opt)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	return &worker{name: name, agent: agent, model: model}
}

func (w *worker) trainStep(ctx elastic.StepContext) error {
	x, labels := batchFor(ctx.Step, ctx.Rank, ctx.World)
	out := ctx.DDP.Forward(autograd.Constant(x))
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := ctx.DDP.Backward(loss); err != nil {
		return err
	}
	ctx.Optimizer.Step()
	ctx.Optimizer.ZeroGrad()
	if ctx.Rank == 0 {
		fmt.Printf("step %2d  gen %d  world %d  loss %.4f\n",
			ctx.Step, ctx.Generation, ctx.World, loss.Value.Item())
	}
	return nil
}

func main() {
	st := store.NewInMem(30 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()

	a := newWorker("alice", st, reg)
	b := newWorker("bob", st, reg)
	leaver := newWorker("carol", st, reg)
	joinGate := make(chan struct{})
	var admit sync.Once

	run := func(w *worker, step elastic.StepFunc) func() error {
		return func() error { return w.agent.Run(steps, step) }
	}
	// Carol departs cleanly after step leaveAt; Alice and Bob admit
	// Dave at step admitAt by yielding to his generation bump.
	carolStep := func(ctx elastic.StepContext) error {
		if ctx.Step == leaveAt {
			fmt.Printf("-- carol leaves after step %d\n", ctx.Step)
			leaver.agent.Leave()
		}
		return leaver.trainStep(ctx)
	}
	incumbent := func(w *worker) elastic.StepFunc {
		return func(ctx elastic.StepContext) error {
			if ctx.Step == admitAt && ctx.World == 2 {
				admit.Do(func() {
					fmt.Printf("-- admitting dave at step %d\n", ctx.Step)
					close(joinGate)
				})
				return w.agent.AwaitGenerationChange()
			}
			return w.trainStep(ctx)
		}
	}

	var wg sync.WaitGroup
	results := make(map[string]error)
	var mu sync.Mutex
	launch := func(name string, fn func() error) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := fn()
			mu.Lock()
			results[name] = err
			mu.Unlock()
		}()
	}
	launch("alice", run(a, incumbent(a)))
	launch("bob", run(b, incumbent(b)))
	launch("carol", run(leaver, carolStep))

	<-joinGate
	d := newWorker("dave", st, reg)
	launch("dave", run(d, d.trainStep))
	wg.Wait()

	for name, err := range results {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	sum := func(w *worker) (s float64) {
		for _, p := range w.model.Parameters() {
			for _, v := range p.Value.Data() {
				s += float64(v)
			}
		}
		return
	}
	fmt.Printf("final checksums: alice %.6f  bob %.6f  dave %.6f  (carol left at step %d with %d/%d steps)\n",
		sum(a), sum(b), sum(d), leaveAt, leaver.agent.Step(), steps)
	if sum(a) != sum(b) || sum(a) != sum(d) {
		log.Fatal("replicas diverged")
	}
	fmt.Println("all active replicas identical — training survived scale-down and scale-up")
}
