// The mnist example trains a small CNN on the synthetic MNIST-like
// dataset across 4 goroutine ranks — the workload of the paper's Fig 11
// convergence study — and demonstrates the no_sync gradient-accumulation
// API (Section 3.2.4): the same model trained with sync-every-iteration
// and with 4-step accumulation, reporting losses and final accuracy.
//
//	go run ./examples/mnist
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
)

const (
	world     = 4
	imageSize = 12
	classes   = 10
	batch     = 8
	iters     = 120
)

func main() {
	for _, syncEvery := range []int{1, 4} {
		acc, loss := train(syncEvery)
		fmt.Printf("sync every %d: final loss %.4f, eval accuracy %.1f%%\n", syncEvery, loss, 100*acc)
	}
}

func train(syncEvery int) (accuracy float64, finalLoss float32) {
	dataset := data.NewSynthetic(7, 2048, imageSize*imageSize, classes)
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	finals := make([]float32, world)
	accs := make([]float64, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			model := models.NewSmallCNN(3, 1, imageSize, classes)
			d, err := ddp.New(model, groups[rank], ddp.Options{})
			if err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
			opt := optim.NewSGD(d.Parameters(), 0.02)
			opt.Momentum = 0.9

			sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
			if err != nil {
				log.Fatal(err)
			}
			loader, err := data.NewLoader(dataset, sampler, batch)
			if err != nil {
				log.Fatal(err)
			}
			loader.Reset(0)
			epoch := int64(0)

			for it := 0; it < iters; it++ {
				flat, labels, ok := loader.Next()
				if !ok {
					epoch++
					loader.Reset(epoch)
					flat, labels, _ = loader.Next()
				}
				x := autograd.Constant(flat.Reshape(batch, 1, imageSize, imageSize))
				step := func() error {
					out := d.Forward(x)
					loss := autograd.CrossEntropyLoss(out, labels)
					finals[rank] = loss.Value.Item()
					return d.Backward(loss)
				}
				var err error
				if (it+1)%syncEvery == 0 {
					err = step()
				} else {
					err = d.NoSync(step)
				}
				if err != nil {
					log.Fatalf("rank %d iter %d: %v", rank, it, err)
				}
				if (it+1)%syncEvery == 0 {
					opt.Step()
					opt.ZeroGrad()
				}
				if rank == 0 && (it+1)%30 == 0 {
					fmt.Printf("  [sync=%d] iter %3d loss %.4f\n", syncEvery, it+1, finals[rank])
				}
			}
			accs[rank] = evaluate(d, dataset)
		}(rank)
	}
	wg.Wait()
	return accs[0], finals[0]
}

// evaluate switches to eval mode (BatchNorm running stats) and measures
// accuracy over a held-out slice of the dataset.
func evaluate(d *ddp.DDP, dataset *data.Synthetic) float64 {
	d.SetTraining(false)
	defer d.SetTraining(true)
	correct, total := 0, 0
	for i := 0; i < 256; i++ {
		vec, label := dataset.Sample(i)
		x := tensor.FromSlice(append([]float32(nil), vec...), 1, 1, imageSize, imageSize)
		out := d.Forward(autograd.Constant(x))
		if tensor.ArgMaxRows(out.Value)[0] == label {
			correct++
		}
		total++
	}
	return float64(correct) / float64(total)
}
