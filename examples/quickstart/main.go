// Quickstart mirrors the paper's Section 3.1 example line by line: build
// a local nn.Linear model, wrap it in DistributedDataParallel — the only
// distributed-specific line — then run the usual forward / backward /
// optimizer-step loop. Ranks are goroutines connected by an in-process
// process group.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

func main() {
	const world = 4

	// initialize the process group (init_process_group)
	groups := comm.NewInProcGroups(world, comm.Options{})

	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := trainRank(rank, groups[rank]); err != nil {
				log.Fatalf("rank %d: %v", rank, err)
			}
		}(rank)
	}
	wg.Wait()
	fmt.Println("all ranks finished with identical models")
}

func trainRank(rank int, pg comm.ProcessGroup) error {
	rng := rand.New(rand.NewSource(int64(rank))) // per-rank init; DDP broadcasts rank 0's

	// setup model and optimizer
	net := nn.NewLinear(rng, "net", 10, 10)
	model, err := ddp.New(net, pg, ddp.Options{})
	if err != nil {
		return err
	}
	opt := optim.NewSGD(model.Parameters(), 0.01)

	dataRng := rand.New(rand.NewSource(100 + int64(rank))) // each rank: its own data shard
	for iter := 0; iter < 25; iter++ {
		inp := autograd.Constant(tensor.RandN(dataRng, 1, 20, 10))
		exp := autograd.Constant(tensor.RandN(dataRng, 1, 20, 10))

		// run forward pass
		out := model.Forward(inp)

		// run backward pass (gradients AllReduce inside, overlapped)
		loss := autograd.MSELoss(out, exp)
		if err := model.Backward(loss); err != nil {
			return err
		}

		// update parameters
		opt.Step()
		opt.ZeroGrad()

		if rank == 0 && (iter+1)%5 == 0 {
			fmt.Printf("iter %2d  loss %.4f  (buckets: %d)\n", iter+1, loss.Value.Item(), model.NumBuckets())
		}
	}
	return nil
}
