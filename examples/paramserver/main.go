// The paramserver example contrasts the two communication paradigms of
// the paper's Section 2.3: synchronized AllReduce data parallelism
// (DDP) versus the asynchronous P2P parameter server. Both train the
// same model on the same dataset with the same number of gradient
// computations; DDP's updates are mathematically equivalent to
// large-batch local training, while PS workers push gradients computed
// against stale parameters.
//
//	go run ./examples/paramserver
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/ps"
	"repro/internal/tensor"
)

const (
	world = 4
	iters = 100
	batch = 16
)

func main() {
	dataset := data.NewSynthetic(23, 2048, 24, 6)

	ddpAcc := trainDDP(dataset)
	psAcc := trainPS(dataset)

	fmt.Printf("\nafter %d iterations per worker on the same data:\n", iters)
	fmt.Printf("  DDP (synchronous AllReduce, %d optimizer steps):        accuracy %.1f%%\n", iters, 100*ddpAcc)
	fmt.Printf("  parameter server (async P2P push, %d server updates): accuracy %.1f%%\n", world*iters, 100*psAcc)
	fmt.Println("\nboth learn. DDP takes one synchronized step per iteration (lr scaled by the")
	fmt.Println("world size, the linear-scaling rule) and guarantees every replica equals")
	fmt.Println("sequential large-batch training; the asynchronous server applies world-times")
	fmt.Println("more, but stale, updates with no equivalence guarantee (Section 2.3).")
}

func trainDDP(dataset *data.Synthetic) float64 {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	finals := make([]*ddp.DDP, world)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := models.NewMLP(3, dataset.Features(), 32, dataset.Classes())
			d, err := ddp.New(m, groups[rank], ddp.Options{})
			if err != nil {
				log.Fatal(err)
			}
			finals[rank] = d
			opt := optim.NewSGD(d.Parameters(), 0.03*world) // linear scaling rule
			loop(dataset, rank, func(x *tensor.Tensor, labels []int) {
				opt.ZeroGrad()
				out := d.Forward(autograd.Constant(x))
				if err := d.Backward(autograd.CrossEntropyLoss(out, labels)); err != nil {
					log.Fatal(err)
				}
				opt.Step()
			})
		}(rank)
	}
	wg.Wait()
	return evaluate(dataset, func(x *tensor.Tensor) *tensor.Tensor {
		return finals[0].Module().Forward(autograd.Constant(x)).Value
	})
}

func trainPS(dataset *data.Synthetic) float64 {
	srv := ps.NewServer(models.NewMLP(3, dataset.Features(), 32, dataset.Classes()), 0.03)
	var wg sync.WaitGroup
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			worker := ps.NewWorker(models.NewMLP(3, dataset.Features(), 32, dataset.Classes()), srv)
			loop(dataset, rank, func(x *tensor.Tensor, labels []int) {
				if _, err := worker.Step(func() (float32, error) {
					out := worker.Model.Forward(autograd.Constant(x))
					loss := autograd.CrossEntropyLoss(out, labels)
					autograd.Backward(loss, nil)
					return loss.Value.Item(), nil
				}); err != nil {
					log.Fatal(err)
				}
			})
		}(rank)
	}
	wg.Wait()
	final := models.NewMLP(3, dataset.Features(), 32, dataset.Classes())
	if err := srv.Pull(final); err != nil {
		log.Fatal(err)
	}
	return evaluate(dataset, func(x *tensor.Tensor) *tensor.Tensor {
		return final.Forward(autograd.Constant(x)).Value
	})
}

func loop(dataset *data.Synthetic, rank int, step func(*tensor.Tensor, []int)) {
	sampler, err := data.NewDistributedSampler(dataset.Len(), rank, world)
	if err != nil {
		log.Fatal(err)
	}
	loader, err := data.NewLoader(dataset, sampler, batch)
	if err != nil {
		log.Fatal(err)
	}
	loader.Reset(0)
	epoch := int64(0)
	for it := 0; it < iters; it++ {
		x, labels, ok := loader.Next()
		if !ok {
			epoch++
			loader.Reset(epoch)
			x, labels, _ = loader.Next()
		}
		step(x, labels)
	}
}

func evaluate(dataset *data.Synthetic, predict func(*tensor.Tensor) *tensor.Tensor) float64 {
	correct := 0
	const n = 512
	for i := 0; i < n; i++ {
		vec, label := dataset.Sample(i)
		x := tensor.FromSlice(append([]float32(nil), vec...), 1, dataset.Features())
		if tensor.ArgMaxRows(predict(x))[0] == label {
			correct++
		}
	}
	return float64(correct) / n
}
