// Example checkpoint demonstrates durable sharded checkpointing
// (internal/ckpt) wired into elastic training: two workers train with
// periodic sharded saves, the whole world is hard-killed mid-iteration
// — the failure elastic recovery alone cannot survive, since no
// survivor holds the state — and a brand-new pair of workers
// cold-starts from the last committed checkpoint and finishes the run.
// The resumed result is verified bitwise against an uninterrupted
// reference run: restore is exact, not approximate.
//
// For the same scenario across real OS processes (and a deliberately
// torn commit that must be rejected), see
// `ddptrain -elastic -launch -kill-all -ckpt-dir ...` and the
// TestCheckpointColdStartRestoreAcrossProcesses integration test.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/autograd"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/elastic"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
)

const (
	features = 32
	hidden   = 32
	classes  = 5
	batch    = 8
	world    = 2
	steps    = 12
	every    = 3 // checkpoint cadence
	crashAt  = 8 // every worker dies here; last committed checkpoint is step 6
)

// batchFor derives the worker's shard purely from (step, rank, world) —
// a resumed run rebuilds the exact schedule from the restored step.
func batchFor(step int64, rank, world int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(step*1_000_003 + int64(rank)*10_007 + int64(world)*101))
	x := tensor.New(batch, features)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	return x, labels
}

func trainStep(ctx elastic.StepContext) error {
	x, labels := batchFor(ctx.Step, ctx.Rank, ctx.World)
	out := ctx.DDP.Forward(autograd.Constant(x))
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := ctx.DDP.Backward(loss); err != nil {
		return err
	}
	ctx.Optimizer.Step()
	ctx.Optimizer.ZeroGrad()
	return nil
}

// runWorld drives `world` elastic workers over a fresh store/registry
// pair to completion and returns their models. seed picks the initial
// weights (overwritten by a restore, which is the point), crash makes
// every worker die at crashAt, and resume cold-starts from dir.
func runWorld(dir string, seed int64, crash, resume bool) ([]nn.Module, error) {
	st := store.NewInMem(30 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()

	type result struct {
		model nn.Module
		err   error
	}
	results := make([]result, world)
	var wg sync.WaitGroup
	for i := 0; i < world; i++ {
		model := models.NewMLP(seed, features, hidden, classes)
		opt := optim.NewSGD(model.Parameters(), 0.05)
		opt.Momentum = 0.9
		agent, err := elastic.NewAgent(elastic.Config{
			Store:             st,
			ID:                fmt.Sprintf("w%d", i),
			MinWorld:          world,
			MaxWorld:          world,
			HeartbeatInterval: 10 * time.Millisecond,
			LeaseTimeout:      time.Second,
			Builder:           &elastic.InProcBuilder{Registry: reg},
			DDP:               ddp.Options{BucketCapBytes: 1 << 12},
			Checkpoint: &elastic.CheckpointConfig{
				Dir:    dir,
				Every:  every,
				Async:  false, // synchronous: committed before the next step runs
				Resume: resume,
			},
		}, model, opt)
		if err != nil {
			return nil, err
		}
		wg.Add(1)
		go func(i int, model nn.Module, agent *elastic.Agent) {
			defer wg.Done()
			step := trainStep
			if crash {
				step = func(ctx elastic.StepContext) error {
					if ctx.Step == crashAt {
						fmt.Printf("  worker %d: killed mid-iteration at step %d\n", i, ctx.Step)
						agent.Kill()
						return errors.New("simulated crash")
					}
					return trainStep(ctx)
				}
			}
			results[i] = result{model: model, err: agent.Run(steps, step)}
		}(i, model, agent)
	}
	wg.Wait()

	models := make([]nn.Module, world)
	for i, r := range results {
		if crash {
			if !errors.Is(r.err, elastic.ErrKilled) {
				return nil, fmt.Errorf("worker %d: expected ErrKilled, got %v", i, r.err)
			}
		} else if r.err != nil {
			return nil, fmt.Errorf("worker %d: %w", i, r.err)
		}
		models[i] = r.model
	}
	return models, nil
}

func main() {
	dir, err := os.MkdirTemp("", "ckpt-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Printf("reference: %d workers, %d steps, uninterrupted\n", world, steps)
	refDir, err := os.MkdirTemp("", "ckpt-example-ref-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(refDir)
	ref, err := runWorld(refDir, 7, false, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("phase 1: same schedule, sharded checkpoint every %d steps, ALL workers killed at step %d\n", every, crashAt)
	if _, err := runWorld(dir, 7, true, false); err != nil {
		log.Fatal(err)
	}
	meta, err := ckpt.LatestMeta(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  run is dead; last committed checkpoint: step %d, saved by world %d\n", meta.Step, meta.World)

	fmt.Printf("phase 2: cold start — fresh store, fresh workers (different init), resume from %s\n", dir)
	resumed, err := runWorld(dir, 1234, false, true)
	if err != nil {
		log.Fatal(err)
	}

	same := true
	for i := range resumed {
		if elastic.ChecksumParams(resumed[i]) != elastic.ChecksumParams(ref[i]) {
			same = false
		}
	}
	fmt.Printf("resumed checksum %.6f, reference %.6f, bitwise identical: %v\n",
		elastic.ChecksumParams(resumed[0]), elastic.ChecksumParams(ref[0]), same)
	if !same {
		log.Fatal("resumed run diverged from the uninterrupted reference")
	}
}
