// Package repro is a pure-Go reproduction of "PyTorch Distributed:
// Experiences on Accelerating Data Parallel Training" (Li et al.,
// VLDB 2020): a DistributedDataParallel implementation with gradient
// bucketing, communication/computation overlap, no_sync, and
// unused-parameter detection, built on a from-scratch tensor/autograd
// stack and a c10d-style collective communication layer, plus a
// calibrated simulator regenerating every figure of the paper's
// evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table and figure; cmd/ddpbench prints
// them as full tables.
package repro
