// Package repro is a pure-Go reproduction of "PyTorch Distributed:
// Experiences on Accelerating Data Parallel Training" (Li et al.,
// VLDB 2020): a DistributedDataParallel implementation with gradient
// bucketing, communication/computation overlap, no_sync, and
// unused-parameter detection, built on a from-scratch tensor/autograd
// stack and a c10d-style collective communication layer, plus a
// calibrated simulator regenerating every figure of the paper's
// evaluation.
//
// Beyond the paper's published evaluation, internal/elastic implements
// its Section 7 future direction — elasticity and fault tolerance —
// as a torchelastic-style layer on the rendezvous store:
//
//   - Generation-numbered rendezvous: workers register in rounds and
//     receive (rank, world, generation) assignments; generations
//     advance through a CompareAndSwap fence on the store, so
//     concurrent failure detections produce one linear history of
//     membership changes.
//   - Heartbeat failure detection: every worker bumps a store counter
//     and monitors every peer's; a lease expiry marks the peer dead
//     and triggers the next rendezvous round. Survivors blocked inside
//     a collective on the dead rank are freed by aborting the process
//     group (comm.AbortGroup) — without this, one crashed rank
//     deadlocks every collective in the job.
//   - World reconfiguration with state sync: survivors rebuild the
//     ProcessGroup under the new generation, and the member with the
//     most completed steps broadcasts model parameters, buffers, and
//     flattened optimizer state (optim.StateFlattener), so training
//     resumes from the last completed step; only the in-flight
//     iteration is retried.
//   - elastic.Agent: the elastic training loop wrapping ddp.DDP,
//     swapping process groups via ddp.SetProcessGroup after each
//     reconfiguration. `ddptrain -elastic` and examples/elastic
//     demonstrate crash recovery and clean scale-down/up end to end;
//     internal/simnet's RunElastic models the recovery stall
//     (detection lease + rendezvous + rebuild + state sync) at
//     cluster scale.
//   - The whole fault path works across real OS processes over TCP:
//     mesh construction is abortable (transport.NewTCPMeshCancel
//     threads a cancel handle through rendezvous Get, dial, and
//     accept), TCP meshes and round-robin composite groups implement
//     Abort so in-flight collectives on a dead peer unblock with
//     errors, and `ddptrain -elastic -launch` supervises ranks as
//     subprocesses — a crashed worker process is detected and replaced
//     by a freshly spawned one that rejoins the rendezvous. The TCP
//     wire path is zero-copy on little-endian hosts (one writev per
//     frame, payload read directly into the result slice); the frame
//     layout is documented in internal/transport.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table and figure; cmd/ddpbench prints
// them as full tables.
package repro
