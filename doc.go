// Package repro is a pure-Go reproduction of "PyTorch Distributed:
// Experiences on Accelerating Data Parallel Training" (Li et al.,
// VLDB 2020), grown past the paper's published evaluation into a
// fault-tolerant, durably-checkpointed distributed training system.
// It is organized as three cooperating subsystems on one substrate.
//
// # Subsystem 1: the DDP core (the paper's contribution)
//
// internal/ddp implements DistributedDataParallel with the paper's
// optimizations: gradient bucketing (Section 3.2.3), communication/
// computation overlap via autograd hooks, no_sync accumulation, and
// unused-parameter detection. It sits on a from-scratch stack:
// internal/tensor and internal/autograd (the compute substrate),
// internal/nn and internal/optim (modules and optimizers, including
// state serialization — nn.SaveState/LoadState with a versioned
// header, and optim.StateFlattener for momentum/Adam state as a flat
// vector), internal/comm (the c10d-style collective layer: ProcessGroup
// with async Work handles, ring/tree/naive AllReduce plus the
// topology-aware Hierarchical algorithm — intra-host reduce, inter-host
// ring among per-host leaders, intra-host broadcast — and Auto, which
// picks per collective from message size and the rank→host Topology,
// plus round-robin composite groups), internal/transport
// (point-to-point meshes: in-process channels and a zero-copy TCP wire,
// with sub-mesh views for hierarchy phases and host discovery from peer
// addresses), and internal/store (the rendezvous key-value store:
// in-mem and TCP, with Watch, CompareAndSwap, and cancellable Get).
// internal/hw prices flat and hierarchical collectives on the paper's
// testbed model; internal/bench and internal/simnet regenerate the
// paper's figures and the flat-vs-hierarchical ablation.
//
// # Subsystem 2: elastic fault tolerance (internal/elastic)
//
// The paper's Section 7 future direction. Workers register with a
// generation-numbered rendezvous; generations advance only through a
// CompareAndSwap fence, so concurrent failure detections produce one
// linear history of membership changes. Heartbeat counters with lease
// timeouts detect death; survivors blocked in collectives on a dead
// rank are freed by aborting the process group (comm.AbortGroup,
// transport.Aborter). After each round the member with the most
// completed steps broadcasts model + optimizer state (SyncState), and
// elastic.Agent swaps the rebuilt group into DDP and retries the
// interrupted step. The whole fault path works across real OS
// processes over TCP (`ddptrain -elastic -launch`).
//
// # Subsystem 3: durable checkpointing (internal/ckpt)
//
// Elastic recovery requires a survivor; checkpointing covers the rest.
// Every rank persists its shard of a byte-identical state blob in
// parallel (CRC-checked, versioned, atomic rename-on-commit), rank 0
// commits a manifest only after a barrier confirms every shard is
// durable, and an async writer keeps everything but a state memcpy off
// the training hot path. On cold start the agent restores the newest
// committed checkpoint — torn commits are rejected, corruption falls
// back to the previous checkpoint, and re-sharding across differing
// world sizes is the ordinary read path — then joins the rendezvous
// holding the restored step, so the existing most-advanced-member
// election distributes the state. See the internal/ckpt package doc
// for the format and protocol.
//
// # Package dependency graph
//
// Arrows point at dependencies; each subsystem touches only the layers
// beneath it:
//
//	elastic ──▶ ckpt ──▶ nn, optim
//	   │          │
//	   │          └────▶ comm, store
//	   ├────────▶ ddp ─▶ nn, autograd, comm
//	   └────────▶ comm ─▶ transport ─▶ store
//	                         (tensor under everything)
//
// # Recovery matrix
//
// Which mechanism recovers which failure:
//
//	single rank crashes        → elastic resync: lease expiry, generation
//	                             CAS, group abort, re-rendezvous, state
//	                             sync from the most advanced survivor;
//	                             only the in-flight iteration is retried
//	single rank hangs silently → same path, entered via lease expiry
//	                             rather than broken connections
//	workers added/removed      → same path, minus the crash: clean
//	                             leaves and joins bump the generation at
//	                             iteration boundaries
//	ALL ranks crash            → ckpt restore: a cold-started world
//	                             loads the newest committed checkpoint
//	                             and resumes from its step
//	checkpoint torn/corrupted  → ckpt validation: torn commits are
//	                             invisible (no manifest), corruption is
//	                             caught by CRC and falls back to the
//	                             previous committed checkpoint
//
// ARCHITECTURE.md walks one full failure/recovery timeline with
// pointers into the code. The benchmarks in bench_test.go regenerate
// each of the paper's tables and figures, and cmd/ddpbench prints them
// as full tables.
package repro
