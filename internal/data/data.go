// Package data provides deterministic synthetic datasets and the
// distributed sampling/loading machinery DDP training loops use.
//
// The MNIST-like dataset substitutes for the real MNIST download (the
// environment is offline; see DESIGN.md): each class has a fixed random
// prototype vector and samples are noisy copies, giving a genuinely
// learnable classification task whose loss curves expose the batch-size
// × no_sync × learning-rate interactions of the paper's Fig 11.
package data

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// Dataset is an indexed collection of labeled vectors.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th feature vector and its class label. The
	// returned slice must not be modified.
	Sample(i int) ([]float32, int)
	// Features returns the feature dimensionality.
	Features() int
	// Classes returns the number of classes.
	Classes() int
}

// Synthetic is a deterministic classification dataset: class prototypes
// drawn once from a seeded RNG, samples = prototype + per-sample noise.
type Synthetic struct {
	features, classes int
	prototypes        [][]float32
	samples           [][]float32
	labels            []int
}

// NewSynthetic builds n samples of the given dimensionality across
// `classes` classes, with moderate class overlap. The same seed always
// yields the same dataset, so every DDP rank can construct it locally
// and agree.
func NewSynthetic(seed int64, n, features, classes int) *Synthetic {
	return NewSyntheticNoise(seed, n, features, classes, 0.7)
}

// NewSyntheticNoise is NewSynthetic with an explicit per-sample noise
// level. Higher noise overlaps the classes and raises the achievable
// loss floor — the regime where the Fig 11(b) effect (large accumulated
// no_sync batches implicitly needing a smaller learning rate) becomes
// visible.
func NewSyntheticNoise(seed int64, n, features, classes int, noise float32) *Synthetic {
	rng := rand.New(rand.NewSource(seed))
	d := &Synthetic{features: features, classes: classes}
	d.prototypes = make([][]float32, classes)
	for c := range d.prototypes {
		proto := make([]float32, features)
		for i := range proto {
			proto[i] = float32(rng.NormFloat64())
		}
		d.prototypes[c] = proto
	}
	d.samples = make([][]float32, n)
	d.labels = make([]int, n)
	for i := range d.samples {
		c := rng.Intn(classes)
		s := make([]float32, features)
		for j := range s {
			s[j] = d.prototypes[c][j] + noise*float32(rng.NormFloat64())
		}
		d.samples[i] = s
		d.labels[i] = c
	}
	return d
}

// Len implements Dataset.
func (d *Synthetic) Len() int { return len(d.samples) }

// Sample implements Dataset.
func (d *Synthetic) Sample(i int) ([]float32, int) { return d.samples[i], d.labels[i] }

// Features implements Dataset.
func (d *Synthetic) Features() int { return d.features }

// Classes implements Dataset.
func (d *Synthetic) Classes() int { return d.classes }

// DistributedSampler partitions a dataset across ranks the way
// torch.utils.data.DistributedSampler does: every epoch all ranks
// shuffle the full index list with a shared epoch-derived seed, then
// rank r takes indices r, r+world, r+2·world, …; the list is padded so
// all ranks process the same number of samples (a DDP requirement —
// collectives would otherwise deadlock).
type DistributedSampler struct {
	n, rank, world int
	epoch          int64
}

// NewDistributedSampler creates a sampler over n samples for the given
// rank of world.
func NewDistributedSampler(n, rank, world int) (*DistributedSampler, error) {
	if world <= 0 || rank < 0 || rank >= world {
		return nil, fmt.Errorf("data: invalid rank %d of world %d", rank, world)
	}
	if n <= 0 {
		return nil, fmt.Errorf("data: empty dataset")
	}
	return &DistributedSampler{n: n, rank: rank, world: world}, nil
}

// SetEpoch changes the shuffle seed; call it once per epoch with the
// same value on every rank.
func (s *DistributedSampler) SetEpoch(e int64) { s.epoch = e }

// PerRank returns how many samples each rank sees per epoch.
func (s *DistributedSampler) PerRank() int {
	return (s.n + s.world - 1) / s.world
}

// Indices returns this rank's sample indices for the current epoch.
func (s *DistributedSampler) Indices() []int {
	order := rand.New(rand.NewSource(1_000_003 + s.epoch)).Perm(s.n)
	// Pad by wrapping so every rank gets PerRank() indices.
	total := s.PerRank() * s.world
	out := make([]int, 0, s.PerRank())
	for i := s.rank; i < total; i += s.world {
		out = append(out, order[i%s.n])
	}
	return out
}

// Loader batches a dataset shard into tensors.
type Loader struct {
	ds      Dataset
	sampler *DistributedSampler
	batch   int

	indices []int
	cursor  int
}

// NewLoader creates a loader yielding batches of the given size from
// the sampler's shard.
func NewLoader(ds Dataset, sampler *DistributedSampler, batch int) (*Loader, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("data: batch size %d", batch)
	}
	return &Loader{ds: ds, sampler: sampler, batch: batch}, nil
}

// Reset starts a new epoch.
func (l *Loader) Reset(epoch int64) {
	l.sampler.SetEpoch(epoch)
	l.indices = l.sampler.Indices()
	l.cursor = 0
}

// Next returns the next batch as a [batch, features] tensor and its
// labels, or ok=false at epoch end. Short final batches are dropped so
// all ranks run the same number of equally-sized iterations.
func (l *Loader) Next() (x *tensor.Tensor, labels []int, ok bool) {
	if l.indices == nil {
		l.Reset(0)
	}
	if l.cursor+l.batch > len(l.indices) {
		return nil, nil, false
	}
	feat := l.ds.Features()
	x = tensor.New(l.batch, feat)
	labels = make([]int, l.batch)
	for b := 0; b < l.batch; b++ {
		vec, lab := l.ds.Sample(l.indices[l.cursor+b])
		copy(x.Data()[b*feat:(b+1)*feat], vec)
		labels[b] = lab
	}
	l.cursor += l.batch
	return x, labels, true
}
