package data

import (
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	a := NewSynthetic(1, 100, 16, 4)
	b := NewSynthetic(1, 100, 16, 4)
	for i := 0; i < 100; i++ {
		xa, la := a.Sample(i)
		xb, lb := b.Sample(i)
		if la != lb {
			t.Fatal("labels differ across identically-seeded datasets")
		}
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("features differ across identically-seeded datasets")
			}
		}
	}
	if a.Len() != 100 || a.Features() != 16 || a.Classes() != 4 {
		t.Fatal("metadata wrong")
	}
}

func TestSyntheticIsLearnable(t *testing.T) {
	// Nearest-prototype classification must beat chance by a wide
	// margin, otherwise Fig 11's convergence experiment is meaningless.
	d := NewSynthetic(2, 500, 32, 5)
	correct := 0
	for i := 0; i < d.Len(); i++ {
		x, label := d.Sample(i)
		best, bestDist := -1, float32(0)
		for c := 0; c < 5; c++ {
			var dist float32
			for j, v := range x {
				diff := v - d.prototypes[c][j]
				dist += diff * diff
			}
			if best == -1 || dist < bestDist {
				best, bestDist = c, dist
			}
		}
		if best == label {
			correct++
		}
	}
	if acc := float64(correct) / float64(d.Len()); acc < 0.9 {
		t.Fatalf("nearest-prototype accuracy %v, want > 0.9", acc)
	}
}

func TestDistributedSamplerPartitions(t *testing.T) {
	const n, world = 103, 4
	samplers := make([]*DistributedSampler, world)
	counts := make(map[int]int)
	perRank := 0
	for r := 0; r < world; r++ {
		s, err := NewDistributedSampler(n, r, world)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(7)
		samplers[r] = s
		idx := s.Indices()
		if perRank == 0 {
			perRank = len(idx)
		}
		if len(idx) != perRank {
			t.Fatalf("rank %d got %d indices, others %d", r, len(idx), perRank)
		}
		for _, i := range idx {
			counts[i]++
		}
	}
	if perRank != samplers[0].PerRank() {
		t.Fatal("PerRank inconsistent with Indices")
	}
	// Every sample covered at least once (padding may duplicate a few).
	if len(counts) != n {
		t.Fatalf("covered %d of %d samples", len(counts), n)
	}
}

func TestDistributedSamplerEpochChangesOrder(t *testing.T) {
	s, _ := NewDistributedSampler(50, 0, 2)
	s.SetEpoch(0)
	e0 := s.Indices()
	s.SetEpoch(1)
	e1 := s.Indices()
	same := true
	for i := range e0 {
		if e0[i] != e1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different epochs must shuffle differently")
	}
}

func TestDistributedSamplerValidation(t *testing.T) {
	if _, err := NewDistributedSampler(10, 5, 4); err == nil {
		t.Fatal("rank out of range must error")
	}
	if _, err := NewDistributedSampler(0, 0, 1); err == nil {
		t.Fatal("empty dataset must error")
	}
}

func TestLoaderBatchesAndEpochEnd(t *testing.T) {
	d := NewSynthetic(3, 40, 8, 3)
	s, _ := NewDistributedSampler(d.Len(), 0, 2) // 20 per rank
	l, err := NewLoader(d, s, 6)
	if err != nil {
		t.Fatal(err)
	}
	l.Reset(0)
	batches := 0
	for {
		x, labels, ok := l.Next()
		if !ok {
			break
		}
		if x.Dims(0) != 6 || x.Dims(1) != 8 || len(labels) != 6 {
			t.Fatalf("batch shape %v, %d labels", x.Shape(), len(labels))
		}
		batches++
	}
	if batches != 3 { // floor(20/6)
		t.Fatalf("batches = %d, want 3 (short batch dropped)", batches)
	}
}

func TestLoaderRejectsBadBatch(t *testing.T) {
	d := NewSynthetic(3, 10, 4, 2)
	s, _ := NewDistributedSampler(d.Len(), 0, 1)
	if _, err := NewLoader(d, s, 0); err == nil {
		t.Fatal("batch 0 must error")
	}
}

func TestShardsDisjointWhenEvenlyDivisible(t *testing.T) {
	// With n divisible by world there is no padding, so rank shards must
	// partition the dataset exactly: every sample appears exactly once.
	const n, world = 120, 4
	counts := map[int]int{}
	for r := 0; r < world; r++ {
		s, err := NewDistributedSampler(n, r, world)
		if err != nil {
			t.Fatal(err)
		}
		s.SetEpoch(3)
		for _, idx := range s.Indices() {
			counts[idx]++
		}
	}
	if len(counts) != n {
		t.Fatalf("covered %d of %d samples", len(counts), n)
	}
	for idx, c := range counts {
		if c != 1 {
			t.Fatalf("sample %d appeared %d times", idx, c)
		}
	}
}

func TestAllRanksAgreeOnEpochPermutation(t *testing.T) {
	// The DDP contract: all ranks derive their shard from the same
	// epoch permutation, so the union of shards in rank-interleaved
	// order reconstructs one shared shuffle.
	const n, world = 8, 2
	shards := make([][]int, world)
	for r := 0; r < world; r++ {
		s, _ := NewDistributedSampler(n, r, world)
		s.SetEpoch(5)
		shards[r] = s.Indices()
	}
	seen := map[int]bool{}
	for i := 0; i < len(shards[0]); i++ {
		for r := 0; r < world; r++ {
			seen[shards[r][i]] = true
		}
	}
	if len(seen) != n {
		t.Fatalf("interleaved shards saw %d distinct samples, want %d", len(seen), n)
	}
}

func TestLoaderAutoResets(t *testing.T) {
	d := NewSynthetic(4, 20, 4, 2)
	s, _ := NewDistributedSampler(d.Len(), 0, 1)
	l, _ := NewLoader(d, s, 5)
	if _, _, ok := l.Next(); !ok {
		t.Fatal("first Next must auto-reset to epoch 0")
	}
}
