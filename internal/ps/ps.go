// Package ps implements a parameter-server training substrate — the
// P2P-communication alternative the paper contrasts with AllReduce in
// Sections 2.3 and 7 (Li et al.'s parameter server, TF
// ParameterServerStrategy in Table 1). Workers independently pull the
// current parameters, compute gradients on their data shard, and push
// them; the server applies updates as they arrive (asynchronous SGD),
// so no global barrier exists and workers may compute gradients against
// stale parameters.
//
// The package exists as a measurable baseline: the paper's Table 1
// classifies DDP as Synchronous/Intra-iteration/Data-parallel and
// parameter servers as Asynchronous; the tests and the paramserver
// example show both the throughput appeal and the staleness cost.
package ps

import (
	"fmt"
	"sync"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Server holds the authoritative copy of the model parameters, sharded
// into one mutex-protected shard per parameter tensor so pushes to
// different layers proceed concurrently (the sharding real parameter
// servers use across machines).
type Server struct {
	shards []*shard
	lr     float32

	mu     sync.Mutex
	pushes int
}

type shard struct {
	mu   sync.Mutex
	data []float32
}

// NewServer initializes the server from a prototype module's current
// parameter values.
func NewServer(proto nn.Module, lr float32) *Server {
	params := proto.Parameters()
	s := &Server{shards: make([]*shard, len(params)), lr: lr}
	for i, p := range params {
		s.shards[i] = &shard{data: append([]float32(nil), p.Value.Data()...)}
	}
	return s
}

// Pull copies the current parameter values into the worker's module.
// Different shards may reflect different update counts — exactly the
// consistency model of an asynchronous parameter server.
func (s *Server) Pull(dst nn.Module) error {
	params := dst.Parameters()
	if len(params) != len(s.shards) {
		return fmt.Errorf("ps: worker has %d parameters, server %d", len(params), len(s.shards))
	}
	for i, p := range params {
		sh := s.shards[i]
		sh.mu.Lock()
		if p.Value.Size() != len(sh.data) {
			sh.mu.Unlock()
			return fmt.Errorf("ps: worker parameter %d has %d elements, shard %d", i, p.Value.Size(), len(sh.data))
		}
		copy(p.Value.Data(), sh.data)
		sh.mu.Unlock()
	}
	return nil
}

// Push applies a worker's gradients to the authoritative parameters
// with plain SGD, immediately and without coordination (async update).
// Parameters with nil gradients are skipped.
func (s *Server) Push(grads []*tensor.Tensor) error {
	if len(grads) != len(s.shards) {
		return fmt.Errorf("ps: pushed %d gradients, server has %d shards", len(grads), len(s.shards))
	}
	for i, g := range grads {
		if g == nil {
			continue
		}
		sh := s.shards[i]
		sh.mu.Lock()
		if len(sh.data) != g.Size() {
			sh.mu.Unlock()
			return fmt.Errorf("ps: gradient %d has %d elements, shard %d", i, g.Size(), len(sh.data))
		}
		gd := g.Data()
		for j := range sh.data {
			sh.data[j] -= s.lr * gd[j]
		}
		sh.mu.Unlock()
	}
	s.mu.Lock()
	s.pushes++
	s.mu.Unlock()
	return nil
}

// Pushes returns how many gradient pushes the server has applied.
func (s *Server) Pushes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushes
}

// Snapshot returns a copy of the authoritative parameters.
func (s *Server) Snapshot() []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		out[i] = tensor.FromSlice(append([]float32(nil), sh.data...), len(sh.data))
		sh.mu.Unlock()
	}
	return out
}

// Worker couples a local model replica with a server. Each Step pulls,
// computes gradients via the supplied closure, and pushes — the
// pull/compute/push loop of asynchronous data parallel training.
type Worker struct {
	Model  nn.Module
	server *Server
}

// NewWorker attaches a local replica to the server.
func NewWorker(model nn.Module, server *Server) *Worker {
	return &Worker{Model: model, server: server}
}

// Step performs one asynchronous iteration: pull current parameters,
// run compute (which must populate parameter gradients), push them.
// compute returns the loss for reporting.
func (w *Worker) Step(compute func() (float32, error)) (float32, error) {
	if err := w.server.Pull(w.Model); err != nil {
		return 0, err
	}
	nn.ZeroGrad(w.Model)
	loss, err := compute()
	if err != nil {
		return 0, err
	}
	grads := make([]*tensor.Tensor, 0, len(w.Model.Parameters()))
	for _, p := range w.Model.Parameters() {
		grads = append(grads, p.Grad)
	}
	if err := w.server.Push(grads); err != nil {
		return 0, err
	}
	return loss, nil
}
