package ps

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/autograd"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestPullPushRoundTrip(t *testing.T) {
	proto := models.NewMLP(1, 4, 6, 2)
	srv := NewServer(proto, 0.1)

	worker := models.NewMLP(2, 4, 6, 2) // different init
	if err := srv.Pull(worker); err != nil {
		t.Fatal(err)
	}
	for i, p := range worker.Parameters() {
		if !p.Value.Equal(proto.Parameters()[i].Value) {
			t.Fatal("pull did not copy server state")
		}
	}

	// Push a known gradient to one parameter.
	grads := make([]*tensor.Tensor, len(worker.Parameters()))
	g := tensor.Full(1, worker.Parameters()[0].Value.Shape()...)
	grads[0] = g.Reshape(-1)
	if err := srv.Push(grads); err != nil {
		t.Fatal(err)
	}
	snap := srv.Snapshot()
	want := proto.Parameters()[0].Value.Reshape(-1)
	for j := 0; j < want.Size(); j++ {
		if math.Abs(float64(snap[0].At(j)-(want.At(j)-0.1))) > 1e-6 {
			t.Fatalf("server param[0][%d] = %v, want %v", j, snap[0].At(j), want.At(j)-0.1)
		}
	}
	if srv.Pushes() != 1 {
		t.Fatalf("pushes = %d", srv.Pushes())
	}
}

func TestPushValidation(t *testing.T) {
	srv := NewServer(models.NewMLP(1, 4, 6, 2), 0.1)
	if err := srv.Push(make([]*tensor.Tensor, 1)); err == nil {
		t.Fatal("wrong gradient count must error")
	}
	grads := make([]*tensor.Tensor, 6)
	grads[0] = tensor.New(3) // wrong size
	if err := srv.Push(grads); err == nil {
		t.Fatal("wrong gradient size must error")
	}
	if err := srv.Pull(models.NewMLP(1, 3, 3, 3)); err == nil {
		t.Fatal("mismatched worker must error")
	}
}

func TestNilGradientsSkipped(t *testing.T) {
	srv := NewServer(models.NewMLP(1, 4, 6, 2), 0.1)
	before := srv.Snapshot()
	if err := srv.Push(make([]*tensor.Tensor, 6)); err != nil {
		t.Fatal(err)
	}
	after := srv.Snapshot()
	for i := range before {
		if !before[i].Equal(after[i]) {
			t.Fatal("nil gradients must not move parameters")
		}
	}
}

// TestAsyncWorkersConverge: several workers hammer the server
// concurrently with no barrier; despite staleness, the model must still
// learn the synthetic task (the empirical claim behind async PS
// training).
func TestAsyncWorkersConverge(t *testing.T) {
	dataset := data.NewSynthetic(5, 1024, 16, 4)
	proto := models.NewMLP(3, 16, 24, 4)
	srv := NewServer(proto, 0.03)

	const workers, steps = 4, 120
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := NewWorker(models.NewMLP(3, 16, 24, 4), srv)
			sampler, err := data.NewDistributedSampler(dataset.Len(), id, workers)
			if err != nil {
				t.Error(err)
				return
			}
			loader, err := data.NewLoader(dataset, sampler, 16)
			if err != nil {
				t.Error(err)
				return
			}
			loader.Reset(0)
			epoch := int64(0)
			for i := 0; i < steps; i++ {
				x, labels, ok := loader.Next()
				if !ok {
					epoch++
					loader.Reset(epoch)
					x, labels, _ = loader.Next()
				}
				_, err := worker.Step(func() (float32, error) {
					out := worker.Model.Forward(autograd.Constant(x))
					loss := autograd.CrossEntropyLoss(out, labels)
					autograd.Backward(loss, nil)
					return loss.Value.Item(), nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if srv.Pushes() != workers*steps {
		t.Fatalf("pushes = %d, want %d", srv.Pushes(), workers*steps)
	}

	// Evaluate the final server model.
	final := models.NewMLP(3, 16, 24, 4)
	if err := srv.Pull(final); err != nil {
		t.Fatal(err)
	}
	correct := 0
	const evalN = 256
	for i := 0; i < evalN; i++ {
		vec, label := dataset.Sample(i)
		x := tensor.FromSlice(append([]float32(nil), vec...), 1, 16)
		out := final.Forward(autograd.Constant(x))
		if tensor.ArgMaxRows(out.Value)[0] == label {
			correct++
		}
	}
	if acc := float64(correct) / evalN; acc < 0.7 {
		t.Fatalf("async PS training accuracy %.2f, want > 0.7", acc)
	}
}

// TestAsyncDiffersFromSyncTrajectory: the §2.2/§2.3 point — async
// updates are not mathematically equivalent to synchronized training.
func TestAsyncDiffersFromSyncTrajectory(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandN(rng, 1, 8, 6)
	y := tensor.RandN(rng, 1, 8, 2)

	// Sync reference: single worker, two sequential pushes of the same
	// batch gradient.
	srvSync := NewServer(models.NewMLP(7, 6, 5, 2), 0.1)
	wSync := NewWorker(models.NewMLP(7, 6, 5, 2), srvSync)
	for i := 0; i < 2; i++ {
		if _, err := wSync.Step(func() (float32, error) {
			out := wSync.Model.Forward(autograd.Constant(x))
			autograd.Backward(autograd.MSELoss(out, autograd.Constant(y)), nil)
			return 0, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Async: two workers pull the SAME initial parameters, then both
	// push — the second push is computed against stale state.
	srvAsync := NewServer(models.NewMLP(7, 6, 5, 2), 0.1)
	wa := NewWorker(models.NewMLP(7, 6, 5, 2), srvAsync)
	wb := NewWorker(models.NewMLP(7, 6, 5, 2), srvAsync)
	computeGrads := func(w *Worker) []*tensor.Tensor {
		nn.ZeroGrad(w.Model)
		out := w.Model.Forward(autograd.Constant(x))
		autograd.Backward(autograd.MSELoss(out, autograd.Constant(y)), nil)
		grads := make([]*tensor.Tensor, 0, len(w.Model.Parameters()))
		for _, p := range w.Model.Parameters() {
			grads = append(grads, p.Grad)
		}
		return grads
	}
	srvAsync.Pull(wa.Model)
	srvAsync.Pull(wb.Model) // both see the initial state
	ga := computeGrads(wa)
	gb := computeGrads(wb)
	srvAsync.Push(ga)
	srvAsync.Push(gb) // stale: computed before ga landed

	syncSnap := srvSync.Snapshot()
	asyncSnap := srvAsync.Snapshot()
	var diff float32
	for i := range syncSnap {
		if d := syncSnap[i].MaxAbsDiff(asyncSnap[i]); d > diff {
			diff = d
		}
	}
	if diff < 1e-6 {
		t.Fatal("async trajectory unexpectedly identical to sync")
	}
}
