package models

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
)

// NewMLP builds a small multi-layer perceptron classifier, the model the
// real-execution convergence experiments (paper Fig 11) train on the
// synthetic MNIST-like dataset. Every DDP rank must pass the same seed
// (mirroring the rank-0 broadcast guarantee; the broadcast aligns them
// anyway, but same seeds keep tests bitwise-reproducible).
func NewMLP(seed int64, in, hidden, classes int) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(
		nn.NewLinear(rng, "fc1", in, hidden),
		nn.ReLU{},
		nn.NewLinear(rng, "fc2", hidden, hidden),
		nn.ReLU{},
		nn.NewLinear(rng, "fc3", hidden, classes),
	)
}

// NewSmallCNN builds a compact convolutional classifier for image-shaped
// inputs [n, channels, size, size]: two conv+BN+pool stages and a linear
// head. It stands in for "ResNet on MNIST" in the Fig 11 reproduction
// (see DESIGN.md substitutions): it exercises the identical DDP code
// paths — many parameters of mixed sizes, BatchNorm buffers for the
// rank-0 broadcast — at laptop scale.
func NewSmallCNN(seed int64, channels, size, classes int) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	convOut := size / 4 // two 2x2 pools
	return nn.NewSequential(
		nn.NewConv2d(rng, "conv1", channels, 8, 3, 1, 1),
		nn.NewBatchNorm("bn1", 8),
		nn.ReLU{},
		nn.MaxPool{},
		nn.NewConv2d(rng, "conv2", 8, 16, 3, 1, 1),
		nn.NewBatchNorm("bn2", 16),
		nn.ReLU{},
		nn.MaxPool{},
		nn.Flatten{},
		nn.NewLinear(rng, "fc", 16*convOut*convOut, classes),
	)
}

// NewTinyTransformer builds a miniature BERT-style encoder tower over
// pre-embedded inputs [tokens, dim]: `layers` pre-norm blocks of real
// multi-head self-attention plus a GELU feed-forward network, followed
// by a final LayerNorm. Parameter names and registration order follow
// the BERT layer layout so DDP buckets it the same way the full-size
// profile is bucketed.
func NewTinyTransformer(seed int64, dim, heads, ff, layers int) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	seq := nn.NewSequential()
	for l := 0; l < layers; l++ {
		prefix := fmt.Sprintf("layer%d", l)
		seq.Append(nn.NewTransformerBlock(rng, prefix, dim, heads, ff))
	}
	seq.Append(nn.NewLayerNorm("final.ln", dim))
	return seq
}
