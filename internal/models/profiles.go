// Package models provides the workloads of the paper's evaluation:
// exact parameter-shape profiles of ResNet50 and BERT-large (used by the
// latency simulator, which needs sizes but not weights) and small
// runnable models (used by the real-execution convergence experiments).
package models

import "fmt"

// ParamSpec describes one parameter tensor of a model profile.
type ParamSpec struct {
	// Name is the PyTorch-style dotted parameter name.
	Name string
	// Shape is the tensor shape.
	Shape []int
}

// Elems returns the element count of the parameter.
func (p ParamSpec) Elems() int {
	n := 1
	for _, d := range p.Shape {
		n *= d
	}
	return n
}

// Profile is an ordered list of parameter specs, in the same order
// model.parameters() would yield them (registration order — the order
// DDP's bucketing reverses).
type Profile struct {
	// Name identifies the workload in benchmark output.
	Name string
	// Params lists parameters in registration order.
	Params []ParamSpec
	// ComputeIntensity is the compute-seconds-per-parameter factor
	// relative to the convolutional reference (hw.ProfileScaled):
	// 1.0 for conv nets, lower for transformers, whose parameters see
	// far fewer FLOPs each.
	ComputeIntensity float64
}

// TotalParams returns the total parameter count.
func (p *Profile) TotalParams() int {
	n := 0
	for _, s := range p.Params {
		n += s.Elems()
	}
	return n
}

// Sizes returns per-parameter element counts in registration order.
func (p *Profile) Sizes() []int {
	sizes := make([]int, len(p.Params))
	for i, s := range p.Params {
		sizes[i] = s.Elems()
	}
	return sizes
}

// TotalBytes returns the model size in bytes at 4 bytes per element.
func (p *Profile) TotalBytes() int { return 4 * p.TotalParams() }

func (p *Profile) add(name string, shape ...int) {
	p.Params = append(p.Params, ParamSpec{Name: name, Shape: shape})
}

// conv adds a conv weight (no bias, as in torchvision ResNet).
func (p *Profile) conv(name string, out, in, k int) {
	p.add(name+".weight", out, in, k, k)
}

// bn adds BatchNorm weight and bias.
func (p *Profile) bn(name string, c int) {
	p.add(name+".weight", c)
	p.add(name+".bias", c)
}

// linear adds a Linear weight and bias.
func (p *Profile) linear(name string, in, out int) {
	p.add(name+".weight", out, in)
	p.add(name+".bias", out)
}

// ResNet50 returns the exact torchvision ResNet50 parameter layout:
// 25,557,032 parameters across 161 tensors.
func ResNet50() *Profile { return resnet("resnet50", []int{3, 4, 6, 3}) }

// ResNet152 returns the torchvision ResNet152 layout (~60.2M
// parameters), the model behind the paper's Fig 2(c)/(d) backward
// timing curves.
func ResNet152() *Profile { return resnet("resnet152", []int{3, 8, 36, 3}) }

// resnet builds a bottleneck ResNet profile with the given block counts.
func resnet(name string, blocks []int) *Profile {
	p := &Profile{Name: name, ComputeIntensity: 1}
	p.conv("conv1", 64, 3, 7)
	p.bn("bn1", 64)
	inPlanes := 64
	planes := 64
	const expansion = 4
	for stage, n := range blocks {
		for b := 0; b < n; b++ {
			prefix := fmt.Sprintf("layer%d.%d", stage+1, b)
			p.conv(prefix+".conv1", planes, inPlanes, 1)
			p.bn(prefix+".bn1", planes)
			p.conv(prefix+".conv2", planes, planes, 3)
			p.bn(prefix+".bn2", planes)
			p.conv(prefix+".conv3", planes*expansion, planes, 1)
			p.bn(prefix+".bn3", planes*expansion)
			if b == 0 {
				// Downsample shortcut in the first block of each stage.
				p.conv(prefix+".downsample.0", planes*expansion, inPlanes, 1)
				p.bn(prefix+".downsample.1", planes*expansion)
			}
			inPlanes = planes * expansion
		}
		planes *= 2
	}
	p.linear("fc", inPlanes, 1000)
	return p
}

// BERTLarge returns the BERT-large-uncased encoder layout (~335M
// parameters): 24 layers, hidden size 1024, 16 heads, intermediate
// 4096, vocabulary 30522. The paper uses BERT as its large NLP workload
// ("15X more parameters compared to ResNet50").
func BERTLarge() *Profile {
	const (
		layers       = 24
		hidden       = 1024
		intermediate = 4096
		vocab        = 30522
		maxPos       = 512
		typeVocab    = 2
	)
	p := &Profile{Name: "bert-large", ComputeIntensity: 0.3}
	p.add("embeddings.word_embeddings.weight", vocab, hidden)
	p.add("embeddings.position_embeddings.weight", maxPos, hidden)
	p.add("embeddings.token_type_embeddings.weight", typeVocab, hidden)
	p.add("embeddings.LayerNorm.weight", hidden)
	p.add("embeddings.LayerNorm.bias", hidden)
	for l := 0; l < layers; l++ {
		prefix := fmt.Sprintf("encoder.layer.%d", l)
		p.linear(prefix+".attention.self.query", hidden, hidden)
		p.linear(prefix+".attention.self.key", hidden, hidden)
		p.linear(prefix+".attention.self.value", hidden, hidden)
		p.linear(prefix+".attention.output.dense", hidden, hidden)
		p.add(prefix+".attention.output.LayerNorm.weight", hidden)
		p.add(prefix+".attention.output.LayerNorm.bias", hidden)
		p.linear(prefix+".intermediate.dense", hidden, intermediate)
		p.linear(prefix+".output.dense", intermediate, hidden)
		p.add(prefix+".output.LayerNorm.weight", hidden)
		p.add(prefix+".output.LayerNorm.bias", hidden)
	}
	p.linear("pooler.dense", hidden, hidden)
	return p
}
