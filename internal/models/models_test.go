package models

import (
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestResNet50ExactParameterCount(t *testing.T) {
	p := ResNet50()
	// torchvision.models.resnet50: 25,557,032 parameters.
	if got := p.TotalParams(); got != 25_557_032 {
		t.Fatalf("ResNet50 params = %d, want 25557032", got)
	}
	if len(p.Params) != 161 {
		t.Fatalf("ResNet50 tensors = %d, want 161", len(p.Params))
	}
}

func TestResNet152ParameterCount(t *testing.T) {
	p := ResNet152()
	// torchvision.models.resnet152: 60,192,808 parameters — the ~60M
	// model of the paper's Fig 2(c)/(d).
	if got := p.TotalParams(); got != 60_192_808 {
		t.Fatalf("ResNet152 params = %d, want 60192808", got)
	}
}

func TestBERTLargeParameterCount(t *testing.T) {
	p := BERTLarge()
	// bert-large-uncased encoder + embeddings + pooler: 335,141,888.
	if got := p.TotalParams(); got != 335_141_888 {
		t.Fatalf("BERT-large params = %d, want 335141888", got)
	}
	// Paper: "BERT model contains 15X more parameters compared to
	// ResNet50" — ratio should be in the 13-15x range.
	ratio := float64(p.TotalParams()) / float64(ResNet50().TotalParams())
	if ratio < 12 || ratio > 16 {
		t.Fatalf("BERT/ResNet50 ratio = %v", ratio)
	}
}

func TestProfileOrderingAndSizes(t *testing.T) {
	p := ResNet50()
	if p.Params[0].Name != "conv1.weight" {
		t.Fatalf("first param = %s", p.Params[0].Name)
	}
	if p.Params[len(p.Params)-1].Name != "fc.bias" {
		t.Fatalf("last param = %s", p.Params[len(p.Params)-1].Name)
	}
	sizes := p.Sizes()
	if len(sizes) != len(p.Params) {
		t.Fatal("Sizes length mismatch")
	}
	if sizes[0] != 64*3*7*7 {
		t.Fatalf("conv1 size = %d", sizes[0])
	}
	if p.TotalBytes() != 4*p.TotalParams() {
		t.Fatal("TotalBytes wrong")
	}
}

func TestBERTHasManySmallAndLargeParams(t *testing.T) {
	// The bucketing experiments depend on BERT's mix of large embedding
	// matrices and hundreds of small LayerNorm vectors.
	p := BERTLarge()
	small, large := 0, 0
	for _, s := range p.Params {
		if s.Elems() < 10_000 {
			small++
		}
		if s.Elems() > 1_000_000 {
			large++
		}
	}
	if small < 100 {
		t.Fatalf("expected many small params, got %d", small)
	}
	if large < 20 {
		t.Fatalf("expected many large params, got %d", large)
	}
}

func TestMLPTrainsForward(t *testing.T) {
	m := NewMLP(1, 10, 16, 4)
	rng := rand.New(rand.NewSource(2))
	out := m.Forward(autograd.Constant(tensor.RandN(rng, 1, 3, 10)))
	if out.Value.Dims(0) != 3 || out.Value.Dims(1) != 4 {
		t.Fatalf("MLP output shape %v", out.Value.Shape())
	}
	autograd.Backward(autograd.Sum(out), nil)
	for _, p := range m.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s missing grad", p.Name)
		}
	}
}

func TestSmallCNNShapesAndBuffers(t *testing.T) {
	m := NewSmallCNN(3, 1, 16, 10)
	rng := rand.New(rand.NewSource(4))
	out := m.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 1, 16, 16)))
	if out.Value.Dims(1) != 10 {
		t.Fatalf("CNN output shape %v", out.Value.Shape())
	}
	if len(nn.Module(m).Buffers()) == 0 {
		t.Fatal("CNN must expose BatchNorm buffers (DDP broadcasts them)")
	}
	autograd.Backward(autograd.Sum(out), nil)
}

func TestTinyTransformerForward(t *testing.T) {
	m := NewTinyTransformer(5, 16, 4, 32, 2)
	rng := rand.New(rand.NewSource(6))
	x := tensor.RandN(rng, 1, 4, 16)
	out := m.Forward(autograd.Constant(x))
	if out.Value.Dims(0) != 4 || out.Value.Dims(1) != 16 {
		t.Fatalf("transformer output shape %v", out.Value.Shape())
	}
	autograd.Backward(autograd.Sum(out), nil)
	// Per block: 2 LayerNorms (4 tensors) + attention (8) + FFN (4) = 16;
	// plus the final LayerNorm (2).
	if got := len(m.Parameters()); got != 2*16+2 {
		t.Fatalf("transformer parameter tensors = %d, want 34", got)
	}
	for _, p := range m.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s missing grad", p.Name)
		}
	}
}

func TestTinyTransformerTrainsUnderDDPShapes(t *testing.T) {
	// The tiny transformer must produce a full gradient set (every
	// parameter participates), so plain DDP without FindUnused works.
	m := NewTinyTransformer(5, 8, 2, 16, 1)
	rng := rand.New(rand.NewSource(7))
	x := tensor.RandN(rng, 1, 3, 8)
	out := m.Forward(autograd.Constant(x))
	autograd.Backward(autograd.Sum(autograd.Mul(out, out)), nil)
	for _, p := range m.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s unused in transformer graph", p.Name)
		}
	}
}
