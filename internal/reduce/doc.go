// Package reduce is the gradient-reduction engine shared by the data
// parallel wrappers: the bucket bookkeeping of the paper's Section 4.2
// (parameter-to-bucket assignment, pending counts, the in-order launch
// prefix of Fig 3(a), per-parameter error-feedback residuals) extracted
// from internal/ddp and parameterized by the collective it launches.
//
// internal/ddp plugs in an AllReduce launcher and gets exactly its old
// reducer back; internal/fsdp plugs in a ReduceScatterV launcher and
// gets ZeRO-style gradient sharding with the identical bucket layout,
// launch order, and residual semantics — which is what makes the
// bitwise DDP-vs-ZeRO agreement suites possible.
//
// The engine deliberately knows nothing about autograd, models, or
// process groups: callers copy gradients in (CopyIn), signal readiness
// (MarkReady), and the engine launches the collective returned by the
// configured Launcher over the maximal in-order prefix of ready
// buckets, so the collective sequence is identical on every rank
// regardless of local gradient arrival order.
package reduce
