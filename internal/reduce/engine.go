package reduce

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/comm"
)

// Launcher starts the collective for one ready bucket and returns its
// async handle. flat is the bucket's gradient buffer; residual is the
// bucket's error-feedback buffer in the same layout, nil unless the
// engine was configured with TrackResiduals. The engine calls launchers
// for ready buckets strictly in bucket-index order — never bucket i+1
// before bucket i — so the collective sequence is identical on every
// rank regardless of local gradient arrival order (the Fig 3(a) fix).
type Launcher func(bucket int, flat, residual []float32) comm.Work

// Config parameterizes an Engine.
type Config struct {
	// Sizes holds each parameter's element count in model order. The
	// engine addresses parameters exclusively by index into this slice.
	Sizes []int
	// Launch starts the reduction collective for a ready bucket
	// (required). DDP passes an AllReduce closure, fsdp a ReduceScatterV
	// closure.
	Launch Launcher
	// TrackResiduals allocates the per-parameter error-feedback store
	// and per-bucket residual buffers for wire-codec compression. The
	// store is keyed by parameter identity, NOT bucket index, so bucket
	// rebuilds and process-group swaps re-map rather than drop the
	// accumulated quantization error.
	TrackResiduals bool
	// TestingResetResidualsOnInstall reintroduces, behind a test-only
	// switch, the historical bug the per-parameter residual store fixed:
	// residuals are zeroed instead of carried on every Install. The
	// chaos harness plants it to prove its bitwise invariants catch a
	// recovery-path regression. Never set outside tests.
	TestingResetResidualsOnInstall bool
	// Transient releases bucket buffers after WaitAll and reallocates
	// them on Reset, so gradient flats are per-iteration state. The
	// sharded wrappers set it to keep peak-memory accounting honest:
	// ZeRO's claim is about steady-state bytes, and permanently resident
	// full-size gradient buffers would silently falsify it. Residuals
	// still survive — they are flushed to the per-parameter store before
	// the buffers are dropped.
	Transient bool
	// ObserveReduce, when non-nil, receives each bucket's
	// launch-to-completion latency as WaitAll observes it done — the
	// overlap window of Section 3.2.3.
	ObserveReduce func(time.Duration)
}

// Engine is the reduction pipeline shared by ddp and fsdp: bucket
// runtime state, pending counts, the in-order launch prefix, and the
// error-feedback residual store. It is not goroutine-safe; callers
// drive it from the (single-threaded) autograd backward pass.
type Engine struct {
	cfg    Config
	assign *Assignment
	bucket []*bucketState

	// residuals holds each parameter's error-feedback accumulator in
	// model order. Working copies live in the buckets' resFlat buffers
	// between installs; FlushResiduals folds them back here.
	residuals [][]float32

	nextToLaunch  int
	observedReady []int // param indices in ready order
}

// bucketState is the runtime companion of one Assignment bucket
// (reducer.cpp's Bucket).
type bucketState struct {
	members  []int // param indices
	flat     []float32
	resFlat  []float32 // error-feedback residuals, same layout as flat
	pending  int
	ready    bool
	launched bool
	// launchedAt stamps the collective launch for the
	// backward-to-reduce latency observation.
	launchedAt time.Time
	work       comm.Work
}

// NewEngine builds an engine; Install must be called before the first
// iteration.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Launch == nil {
		return nil, errors.New("reduce: Config.Launch is required")
	}
	if len(cfg.Sizes) == 0 {
		return nil, errors.New("reduce: no parameters")
	}
	e := &Engine{cfg: cfg}
	if cfg.TrackResiduals {
		e.residuals = make([][]float32, len(cfg.Sizes))
		for i, size := range cfg.Sizes {
			e.residuals[i] = make([]float32, size)
		}
	}
	return e, nil
}

// Install (re)builds bucket runtime state for an assignment.
// Error-feedback residuals are carried, not dropped: the outgoing
// layout's working copies are folded into the per-parameter store
// first, then scattered into the new layout — the fix for the residual
// reset that used to happen on every Section 6.2.1 rebuild and every
// elastic process-group swap, exactly when accumulated error matters
// most.
func (e *Engine) Install(assign *Assignment) {
	if e.cfg.TestingResetResidualsOnInstall && e.cfg.TrackResiduals {
		for _, r := range e.residuals {
			for i := range r {
				r[i] = 0
			}
		}
	} else {
		e.FlushResiduals()
	}
	e.assign = assign
	e.bucket = make([]*bucketState, assign.NumBuckets())
	for b, members := range assign.Buckets {
		bs := &bucketState{
			members: members,
			flat:    make([]float32, assign.BucketElems[b]),
		}
		if e.cfg.TrackResiduals {
			bs.resFlat = make([]float32, assign.BucketElems[b])
			e.scatterResiduals(bs, members)
		}
		e.bucket[b] = bs
	}
}

// scatterResiduals copies the per-parameter store into a bucket's
// residual buffer under the current assignment.
func (e *Engine) scatterResiduals(bs *bucketState, members []int) {
	for _, idx := range members {
		off := e.assign.OffsetOf[idx]
		copy(bs.resFlat[off:off+e.cfg.Sizes[idx]], e.residuals[idx])
	}
}

// FlushResiduals folds the current bucket layout's residual buffers
// back into the per-parameter store. No-op without residual tracking,
// before the first Install, or for buckets whose buffers a Transient
// engine already released.
func (e *Engine) FlushResiduals() {
	if !e.cfg.TrackResiduals || e.assign == nil {
		return
	}
	for b, bs := range e.bucket {
		if bs.resFlat == nil {
			continue
		}
		for _, idx := range e.assign.Buckets[b] {
			off := e.assign.OffsetOf[idx]
			copy(e.residuals[idx], bs.resFlat[off:off+e.cfg.Sizes[idx]])
		}
	}
}

// Assignment returns the current parameter-to-bucket mapping.
func (e *Engine) Assignment() *Assignment { return e.assign }

// NumBuckets reports how many buckets the current assignment uses.
func (e *Engine) NumBuckets() int { return e.assign.NumBuckets() }

// Launched reports how many buckets have had their collective launched
// this iteration (the in-order prefix length).
func (e *Engine) Launched() int { return e.nextToLaunch }

// ObservedReady returns the parameter indices in the order their
// gradients became ready this iteration (the trace Section 6.2.1
// proposes recording).
func (e *Engine) ObservedReady() []int {
	return append([]int(nil), e.observedReady...)
}

// Reset replenishes per-bucket pending counts and clears bucket buffers
// for a new synchronized iteration (Section 4.2: "In the next forward
// pass, DDP replenishes the pending gradient count"). A Transient
// engine reallocates the buffers WaitAll released.
func (e *Engine) Reset() {
	for b, bs := range e.bucket {
		if bs.flat == nil {
			bs.flat = make([]float32, e.assign.BucketElems[b])
		} else {
			for i := range bs.flat {
				bs.flat[i] = 0
			}
		}
		if e.cfg.TrackResiduals && bs.resFlat == nil {
			bs.resFlat = make([]float32, e.assign.BucketElems[b])
			e.scatterResiduals(bs, bs.members)
		}
		bs.pending = len(bs.members)
		bs.ready = false
		bs.launched = false
		bs.work = nil
	}
	e.nextToLaunch = 0
	e.observedReady = e.observedReady[:0]
}

// CopyIn writes a parameter's (possibly no_sync-accumulated) gradient
// into its bucket view.
func (e *Engine) CopyIn(idx int, grad []float32) {
	bs := e.bucket[e.assign.BucketOf[idx]]
	off := e.assign.OffsetOf[idx]
	copy(bs.flat[off:off+e.cfg.Sizes[idx]], grad)
}

// MarkReady decrements the parameter's bucket pending count and
// launches the collective on the maximal in-order prefix of ready
// buckets. Marking a parameter ready twice in one iteration panics —
// it means the caller's hook wiring double-fired.
func (e *Engine) MarkReady(idx int) {
	e.observedReady = append(e.observedReady, idx)
	bs := e.bucket[e.assign.BucketOf[idx]]
	if bs.pending <= 0 {
		panic(fmt.Sprintf("reduce: parameter %d marked ready twice in one iteration", idx))
	}
	bs.pending--
	if bs.pending == 0 {
		bs.ready = true
		e.launchReady()
	}
}

// launchReady starts asynchronous collectives for the maximal in-order
// prefix of ready buckets.
func (e *Engine) launchReady() {
	for e.nextToLaunch < len(e.bucket) && e.bucket[e.nextToLaunch].ready {
		bs := e.bucket[e.nextToLaunch]
		bs.launchedAt = time.Now()
		bs.work = e.cfg.Launch(e.nextToLaunch, bs.flat, bs.resFlat)
		bs.launched = true
		e.nextToLaunch++
	}
}

// WaitAll waits for every launched bucket's collective in bucket order
// and hands each reduced buffer to consume (gradient writeback for
// ddp, the fused sharded optimizer step for fsdp). The caller must
// have verified all buckets launched — waiting on an unlaunched bucket
// is a caller bug and errors out. A Transient engine releases each
// bucket's buffers after its consume returns, flushing residuals to
// the per-parameter store first.
func (e *Engine) WaitAll(consume func(bucket int, flat []float32) error) error {
	for bi, bs := range e.bucket {
		if !bs.launched {
			return fmt.Errorf("reduce: bucket %d was never launched", bi)
		}
		if err := bs.work.Wait(); err != nil {
			return fmt.Errorf("reduce: collective on bucket %d: %w", bi, err)
		}
		if e.cfg.ObserveReduce != nil {
			e.cfg.ObserveReduce(time.Since(bs.launchedAt))
		}
		if consume != nil {
			if err := consume(bi, bs.flat); err != nil {
				return err
			}
		}
		if e.cfg.Transient {
			if bs.resFlat != nil {
				for _, idx := range e.assign.Buckets[bi] {
					off := e.assign.OffsetOf[idx]
					copy(e.residuals[idx], bs.resFlat[off:off+e.cfg.Sizes[idx]])
				}
				bs.resFlat = nil
			}
			bs.flat = nil
		}
	}
	return nil
}

// BucketBytes reports the bytes currently held in bucket gradient and
// residual buffers — the quantity Transient keeps at zero between
// iterations, and the term the sharding ablation's peak accounting
// samples.
func (e *Engine) BucketBytes() int {
	total := 0
	for _, bs := range e.bucket {
		total += 4 * (len(bs.flat) + len(bs.resFlat))
	}
	return total
}

// ResidualState returns the error-feedback residuals flattened in
// parameter order — training state exactly like optimizer moments: a
// reconfigured world must carry the elected source's residuals to
// joiners or the quantization error accumulated so far is lost at the
// worst possible moment. The layout depends only on the model, never
// on the bucket assignment or world size, so it re-shards trivially.
// Empty without residual tracking. Do not call while buckets may be
// mid-flight.
func (e *Engine) ResidualState() []float32 {
	if !e.cfg.TrackResiduals {
		return nil
	}
	e.FlushResiduals()
	total := 0
	for _, s := range e.cfg.Sizes {
		total += s
	}
	out := make([]float32, 0, total)
	for _, r := range e.residuals {
		out = append(out, r...)
	}
	return out
}

// SetResidualState installs residuals produced by ResidualState on
// another (or this) replica, scattering them into the current bucket
// layout. Like ResidualState, it must not be called while buckets may
// be mid-flight.
func (e *Engine) SetResidualState(flat []float32) error {
	if !e.cfg.TrackResiduals {
		if len(flat) == 0 {
			return nil
		}
		return errors.New("reduce: residual state offered but residual tracking is off")
	}
	want := 0
	for _, s := range e.cfg.Sizes {
		want += s
	}
	if len(flat) != want {
		return fmt.Errorf("reduce: residual state has %d elements, expected %d", len(flat), want)
	}
	off := 0
	for i := range e.residuals {
		off += copy(e.residuals[i], flat[off:off+e.cfg.Sizes[i]])
	}
	for b, bs := range e.bucket {
		if bs.resFlat == nil {
			continue
		}
		e.scatterResiduals(bs, e.assign.Buckets[b])
	}
	return nil
}
