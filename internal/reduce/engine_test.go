package reduce

import (
	"strings"
	"testing"

	"repro/internal/comm"
)

// fakeLaunch records launch order and completes immediately.
type fakeLaunch struct {
	order []int
}

func (f *fakeLaunch) launch(bucket int, flat, resFlat []float32) comm.Work {
	f.order = append(f.order, bucket)
	return comm.CompletedWork(nil)
}

func newTestEngine(t *testing.T, sizes []int, capBytes int, f *fakeLaunch, cfg Config) *Engine {
	t.Helper()
	cfg.Sizes = sizes
	cfg.Launch = f.launch
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assign, err := AssignBuckets(sizes, capBytes, 4, ReverseOrder(len(sizes)))
	if err != nil {
		t.Fatal(err)
	}
	e.Install(assign)
	return e
}

// TestInOrderPrefixLaunch is the Fig 3(a) rule at the engine level:
// a later bucket becoming ready first must not launch until every
// earlier bucket has.
func TestInOrderPrefixLaunch(t *testing.T) {
	f := &fakeLaunch{}
	e := newTestEngine(t, []int{2, 3, 4, 5}, -1, f, Config{})
	// Reverse order: bucket0={3}, bucket1={2}, bucket2={1}, bucket3={0}.
	e.Reset()
	g := []float32{9, 9, 9, 9, 9}
	e.CopyIn(0, g[:2])
	e.MarkReady(0) // bucket 3: must wait
	if len(f.order) != 0 {
		t.Fatalf("bucket 3 launched before buckets 0-2: %v", f.order)
	}
	e.CopyIn(3, g)
	e.MarkReady(3) // bucket 0: launches alone
	e.CopyIn(2, g[:4])
	e.MarkReady(2) // bucket 1: launches
	e.CopyIn(1, g[:3])
	e.MarkReady(1) // bucket 2 ready; pending bucket 3 launches too
	if want := []int{0, 1, 2, 3}; len(f.order) != 4 || f.order[0] != 0 || f.order[1] != 1 || f.order[2] != 2 || f.order[3] != 3 {
		t.Fatalf("launch order %v, want %v", f.order, want)
	}
	if e.Launched() != e.NumBuckets() {
		t.Fatalf("Launched() = %d, want %d", e.Launched(), e.NumBuckets())
	}
	seen := 0
	if err := e.WaitAll(func(b int, flat []float32) error { seen++; return nil }); err != nil {
		t.Fatal(err)
	}
	if seen != 4 {
		t.Fatalf("consume saw %d buckets, want 4", seen)
	}
}

// TestDoubleMarkReadyPanics: double-firing a parameter's hook is a
// wiring bug and must not be absorbed silently.
func TestDoubleMarkReadyPanics(t *testing.T) {
	f := &fakeLaunch{}
	e := newTestEngine(t, []int{2, 2}, 1<<20, f, Config{})
	e.Reset()
	e.MarkReady(1)
	e.MarkReady(0)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second MarkReady did not panic")
		}
		if !strings.Contains(r.(string), "marked ready twice") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	e.MarkReady(1)
}

// TestResidualsCarriedAcrossInstall: accumulated residuals survive a
// bucket-layout swap, keyed by parameter identity; with the planted
// testing bug they reset instead.
func TestResidualsCarriedAcrossInstall(t *testing.T) {
	sizes := []int{2, 3}
	for _, planted := range []bool{false, true} {
		f := &fakeLaunch{}
		e := newTestEngine(t, sizes, 1<<20, f, Config{
			TrackResiduals:                 true,
			TestingResetResidualsOnInstall: planted,
		})
		if err := e.SetResidualState([]float32{1, 2, 3, 4, 5}); err != nil {
			t.Fatal(err)
		}
		// Swap to per-parameter buckets (different layout).
		assign, err := AssignBuckets(sizes, -1, 4, ReverseOrder(len(sizes)))
		if err != nil {
			t.Fatal(err)
		}
		e.Install(assign)
		got := e.ResidualState()
		if planted {
			for i, v := range got {
				if v != 0 {
					t.Fatalf("planted bug: residual %d = %v, want 0", i, v)
				}
			}
			continue
		}
		for i, want := range []float32{1, 2, 3, 4, 5} {
			if got[i] != want {
				t.Fatalf("residual %d = %v, want %v after rebuild", i, got[i], want)
			}
		}
	}
}

// TestTransientReleasesBuffers: a Transient engine holds zero bucket
// bytes between iterations but still carries residuals.
func TestTransientReleasesBuffers(t *testing.T) {
	f := &fakeLaunch{}
	e := newTestEngine(t, []int{4}, 1<<20, f, Config{Transient: true, TrackResiduals: true})
	if err := e.SetResidualState([]float32{7, 8, 9, 10}); err != nil {
		t.Fatal(err)
	}
	e.Reset()
	if e.BucketBytes() == 0 {
		t.Fatal("no buffers allocated after Reset")
	}
	e.CopyIn(0, []float32{1, 2, 3, 4})
	e.MarkReady(0)
	if err := e.WaitAll(nil); err != nil {
		t.Fatal(err)
	}
	if e.BucketBytes() != 0 {
		t.Fatalf("BucketBytes = %d after WaitAll, want 0", e.BucketBytes())
	}
	got := e.ResidualState()
	for i, want := range []float32{7, 8, 9, 10} {
		if got[i] != want {
			t.Fatalf("residual %d = %v, want %v after transient release", i, got[i], want)
		}
	}
	// The next iteration reallocates and re-scatters residuals.
	e.Reset()
	if e.BucketBytes() == 0 {
		t.Fatal("buffers not reallocated by Reset")
	}
}

// TestWaitAllRejectsUnlaunched: waiting with an incomplete prefix is a
// caller bug surfaced as an error, not a hang.
func TestWaitAllRejectsUnlaunched(t *testing.T) {
	f := &fakeLaunch{}
	e := newTestEngine(t, []int{2, 2}, -1, f, Config{})
	e.Reset()
	if err := e.WaitAll(nil); err == nil {
		t.Fatal("WaitAll succeeded with no bucket launched")
	}
}
