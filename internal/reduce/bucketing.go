package reduce

import "fmt"

// Assignment is a parameter-to-bucket mapping (paper Section 4.2,
// "Parameter-to-Bucket Mapping"). Bucket 0 is the first bucket expected
// to become ready during the backward pass, i.e. it holds the
// parameters whose gradients are computed first.
type Assignment struct {
	// Buckets lists, per bucket, the parameter indices it contains
	// (indices into the model's Parameters() order). Within a bucket,
	// parameters appear in expected-gradient-ready order.
	Buckets [][]int
	// BucketOf maps a parameter index to its bucket.
	BucketOf []int
	// OffsetOf maps a parameter index to its element offset within the
	// bucket's flat buffer.
	OffsetOf []int
	// BucketElems is the total element count per bucket.
	BucketElems []int
}

// NumBuckets returns the bucket count.
func (a *Assignment) NumBuckets() int { return len(a.Buckets) }

// ReverseOrder returns the index sequence n-1, n-2, ..., 0 — the
// default expectation that gradients become ready in the reverse of
// model.parameters() order (Section 3.2.3).
func ReverseOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = n - 1 - i
	}
	return order
}

// AssignBuckets packs parameters into buckets of at most capBytes bytes,
// following `order` (the expected gradient-ready sequence; use
// ReverseOrder for the default). sizes holds each parameter's element
// count in model order; elemBytes is the per-element size (4 for
// float32).
//
// capBytes <= 0 means one bucket per parameter — the "0MB bucket"
// baseline of Figs 7 and 8 where every gradient is communicated on its
// own. A parameter larger than capBytes gets a bucket to itself.
func AssignBuckets(sizes []int, capBytes, elemBytes int, order []int) (*Assignment, error) {
	n := len(sizes)
	if len(order) != n {
		return nil, fmt.Errorf("reduce: order has %d entries for %d parameters", len(order), n)
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if idx < 0 || idx >= n || seen[idx] {
			return nil, fmt.Errorf("reduce: order is not a permutation of parameter indices")
		}
		seen[idx] = true
	}

	a := &Assignment{
		BucketOf: make([]int, n),
		OffsetOf: make([]int, n),
	}
	var cur []int
	curBytes := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		a.Buckets = append(a.Buckets, cur)
		cur = nil
		curBytes = 0
	}
	for _, idx := range order {
		pBytes := sizes[idx] * elemBytes
		if len(cur) > 0 && (capBytes <= 0 || curBytes+pBytes > capBytes) {
			flush()
		}
		cur = append(cur, idx)
		curBytes += pBytes
		if capBytes <= 0 {
			flush()
		}
	}
	flush()

	a.BucketElems = make([]int, len(a.Buckets))
	for b, members := range a.Buckets {
		off := 0
		for _, idx := range members {
			a.BucketOf[idx] = b
			a.OffsetOf[idx] = off
			off += sizes[idx]
		}
		a.BucketElems[b] = off
	}
	return a, nil
}
