package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/simnet"
)

// HierarchicalRow is one point of the modeled flat-ring-vs-hierarchical
// AllReduce comparison.
type HierarchicalRow struct {
	// World is the number of GPUs.
	World int
	// Elems is the AllReduce payload in float32 elements.
	Elems int
	// FlatSeconds is the flat ring's modeled wall time.
	FlatSeconds float64
	// HierSeconds is the hierarchical algorithm's modeled wall time.
	HierSeconds float64
}

// Speedup returns flat/hierarchical (>1 when the hierarchy wins).
func (r HierarchicalRow) Speedup() float64 { return r.FlatSeconds / r.HierSeconds }

// HierarchicalSweep prices one AllReduce under both algorithms for
// every (world, payload) pair on the NCCL profile.
func HierarchicalSweep(c hw.Cluster, worlds, elemCounts []int) []HierarchicalRow {
	rows := make([]HierarchicalRow, 0, len(worlds)*len(elemCounts))
	for _, w := range worlds {
		for _, n := range elemCounts {
			rows = append(rows, HierarchicalRow{
				World:       w,
				Elems:       n,
				FlatSeconds: c.AllReduceSeconds(hw.NCCLLike, 4*n, w),
				HierSeconds: c.HierarchicalAllReduceSeconds(hw.NCCLLike, 4*n, w),
			})
		}
	}
	return rows
}

// HierarchicalIterRow is one point of the end-to-end iteration
// comparison: ResNet50 on the simulated cluster with the DDP reducer's
// real bucket schedule, priced under both AllReduce models.
type HierarchicalIterRow struct {
	// World is the number of GPUs.
	World int
	// CapMB is the DDP bucket cap swept (bucket sizes change how much
	// of the hierarchy's per-op win survives overlap).
	CapMB int
	// FlatSeconds/HierSeconds are per-iteration latencies.
	FlatSeconds float64
	// HierSeconds is the hierarchical per-iteration latency.
	HierSeconds float64
}

// HierarchicalIterationSweep simulates overlapped ResNet50 iterations
// across world and bucket-cap values under both AllReduce cost models.
func HierarchicalIterationSweep(worlds, capsMB []int) ([]HierarchicalIterRow, error) {
	profile := models.ResNet50()
	var rows []HierarchicalIterRow
	for _, w := range worlds {
		for _, mb := range capsMB {
			cfg := simnet.Config{
				ParamSizes:       profile.Sizes(),
				ComputeIntensity: profile.ComputeIntensity,
				BucketCapBytes:   capBytes(mb),
				World:            w,
				Backend:          hw.NCCLLike,
				Device:           hw.GPU,
				Overlap:          true,
			}
			flat, err := simnet.SimulateIteration(cfg)
			if err != nil {
				return nil, err
			}
			cfg.Hierarchical = true
			hier, err := simnet.SimulateIteration(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, HierarchicalIterRow{
				World: w, CapMB: mb,
				FlatSeconds: flat.TotalSeconds, HierSeconds: hier.TotalSeconds,
			})
		}
	}
	return rows, nil
}

// HierarchicalAblation prints the topology-aware AllReduce comparison:
// the modeled cross-machine bandwidth recovery per collective, and what
// survives of it in overlapped end-to-end iterations. This is the
// quantitative case for comm.Hierarchical/comm.Auto (Section 6.1's
// NIC-sharing collapse, recovered by reducing within each server
// first).
func HierarchicalAblation(w io.Writer) error {
	c := hw.DefaultCluster()

	header(w, "Hierarchical AllReduce: one collective, flat ring vs hierarchical (NCCL profile)")
	fmt.Fprintf(w, "%-8s %12s %14s %14s %10s\n", "world", "elements", "flat (s)", "hier (s)", "speedup")
	for _, r := range HierarchicalSweep(c,
		[]int{8, 16, 32, 64, 128, 256},
		[]int{1 << 12, 1 << 18, 1 << 20, 1 << 24}) {
		fmt.Fprintf(w, "%-8d %12d %14.6f %14.6f %9.2fx\n",
			r.World, r.Elems, r.FlatSeconds, r.HierSeconds, r.Speedup())
	}
	fmt.Fprintln(w, "(worlds of <= 8 GPUs fit one server: the hierarchy is empty and the models agree)")

	header(w, "Hierarchical AllReduce: overlapped ResNet50 iterations, world x bucket cap")
	rows, err := HierarchicalIterationSweep([]int{8, 32, 128}, []int{5, 25, 100})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %8s %14s %14s %10s\n", "world", "cap MB", "flat (s)", "hier (s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %8d %14.4f %14.4f %9.2fx\n",
			r.World, r.CapMB, r.FlatSeconds, r.HierSeconds, r.FlatSeconds/r.HierSeconds)
	}
	return nil
}
