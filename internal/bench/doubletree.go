package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
)

// DoubleTreeRow is one point of the modeled ring-vs-double-tree
// AllReduce comparison.
type DoubleTreeRow struct {
	// World is the number of GPUs.
	World int
	// Elems is the AllReduce payload in float32 elements.
	Elems int
	// RingSeconds is the flat ring's modeled wall time.
	RingSeconds float64
	// TreeSeconds is the double binary tree's modeled wall time.
	TreeSeconds float64
}

// Speedup returns ring/doubletree (>1 when the trees win).
func (r DoubleTreeRow) Speedup() float64 { return r.RingSeconds / r.TreeSeconds }

// DoubleTreeSweep prices one AllReduce under the flat ring and the
// double binary trees for every (world, payload) pair on the NCCL
// profile — the modeled case for comm.DoubleTree's slot in the Auto
// policy: log-depth latency wins the small-payload band and deep
// worlds, loses the bandwidth-bound band to the ring's 2(k-1)/k.
func DoubleTreeSweep(c hw.Cluster, worlds, elemCounts []int) []DoubleTreeRow {
	rows := make([]DoubleTreeRow, 0, len(worlds)*len(elemCounts))
	for _, w := range worlds {
		for _, n := range elemCounts {
			rows = append(rows, DoubleTreeRow{
				World:       w,
				Elems:       n,
				RingSeconds: c.AllReduceSeconds(hw.NCCLLike, 4*n, w),
				TreeSeconds: c.DoubleTreeAllReduceSeconds(hw.NCCLLike, 4*n, w),
			})
		}
	}
	return rows
}

// NLevelRow is one point of the two-level-vs-N-level hierarchical
// AllReduce comparison over the same placement.
type NLevelRow struct {
	// World is the number of GPUs.
	World int
	// Elems is the AllReduce payload in float32 elements.
	Elems int
	// GroupSizes are the per-level group sizes, outermost-first.
	GroupSizes []int
	// TwoLevelSeconds is the host/world hierarchy's modeled wall time.
	TwoLevelSeconds float64
	// NLevelSeconds is the full structured hierarchy's modeled time.
	NLevelSeconds float64
}

// NLevelSweep prices hierarchical AllReduces under the two-level and
// N-level cost models for every (world, payload) pair.
func NLevelSweep(c hw.Cluster, worlds, elemCounts []int, groupSizes []int) []NLevelRow {
	rows := make([]NLevelRow, 0, len(worlds)*len(elemCounts))
	for _, w := range worlds {
		for _, n := range elemCounts {
			rows = append(rows, NLevelRow{
				World:           w,
				Elems:           n,
				GroupSizes:      groupSizes,
				TwoLevelSeconds: c.HierarchicalAllReduceSeconds(hw.NCCLLike, 4*n, w),
				NLevelSeconds:   c.NLevelAllReduceSeconds(hw.NCCLLike, 4*n, w, groupSizes),
			})
		}
	}
	return rows
}

// DoubleTreeAblation prints the modeled raw-speed collective
// comparison: flat ring vs double binary trees across the payload
// bands of comm's Auto policy, and two-level vs three-level
// hierarchical scheduling on a pod/rack/host placement.
func DoubleTreeAblation(w io.Writer) error {
	c := hw.DefaultCluster()

	header(w, "Double binary trees: one AllReduce, ring vs double tree (NCCL profile)")
	fmt.Fprintf(w, "%-8s %12s %14s %14s %10s\n", "world", "elements", "ring (s)", "dtree (s)", "speedup")
	for _, r := range DoubleTreeSweep(c,
		[]int{8, 32, 64, 256},
		[]int{1 << 10, 1 << 12, 1 << 16, 1 << 20, 1 << 24}) {
		fmt.Fprintf(w, "%-8d %12d %14.6f %14.6f %9.2fx\n",
			r.World, r.Elems, r.RingSeconds, r.TreeSeconds, r.Speedup())
	}
	fmt.Fprintln(w, "(log-depth latency wins the <=4Ki band and deep worlds; the 3/2-volume term loses the bandwidth band)")

	header(w, "N-level hierarchy: two-level vs pod/rack/host on 64 GPUs (4 pods x 2 racks x 8 GPUs)")
	fmt.Fprintf(w, "%-8s %12s %14s %14s %10s\n", "world", "elements", "2-level (s)", "3-level (s)", "speedup")
	for _, r := range NLevelSweep(c, []int{64}, []int{1 << 10, 1 << 16, 1 << 20, 1 << 24}, []int{2, 8}) {
		fmt.Fprintf(w, "%-8d %12d %14.6f %14.6f %9.2fx\n",
			r.World, r.Elems, r.TwoLevelSeconds, r.NLevelSeconds, r.TwoLevelSeconds/r.NLevelSeconds)
	}
	fmt.Fprintln(w, "(the extra level sheds top-ring steps — a latency win; its full-buffer binomial hops pay it back on big buffers)")
	return nil
}
