// Package bench contains one experiment runner per table and figure of
// the paper's evaluation (plus the Fig 2 motivation curves). Each runner
// regenerates the corresponding rows/series and prints them; DESIGN.md
// maps experiment ids to runners and EXPERIMENTS.md records
// paper-vs-measured outcomes.
package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/models"
)

// workload pairs a model profile with the backends it is evaluated on.
type workload struct {
	profile *models.Profile
	caps    []int // bucket_cap_mb sweep values for Figs 7/8
}

// evaluationWorkloads returns the two models of Section 5 with their
// bucket sweeps (ResNet50: 0-50MB; BERT: 0-200MB, Fig 7 caption).
func evaluationWorkloads() []workload {
	return []workload{
		{profile: models.ResNet50(), caps: []int{0, 5, 10, 25, 50}},
		{profile: models.BERTLarge(), caps: []int{0, 5, 10, 25, 50, 100, 200}},
	}
}

var allBackends = []hw.Backend{hw.NCCLLike, hw.GlooLike}

// header prints an underlined section title.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n", title)
	for range title {
		fmt.Fprint(w, "-")
	}
	fmt.Fprintln(w)
}

// capBytes converts a bucket_cap_mb sweep value to the simulator's
// convention (0MB means per-parameter buckets).
func capBytes(mb int) int {
	if mb == 0 {
		return -1
	}
	return mb << 20
}
