package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestShardingAblation runs the real-cluster ablation end to end and
// pins the properties ci/bench_check.sh gates on: ZeRO-3's persistent
// per-rank param+opt bytes collapse to ~1/world of DDP's, its peak
// parameter residency stays strictly below the full model (it trains a
// model no single rank ever fully holds), and every sharded run
// matched the DDP trajectory bitwise.
func TestShardingAblation(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_sharding.json")
	t.Setenv("BENCH_SHARDING_OUT", out)
	var buf bytes.Buffer
	if err := ShardingAblation(&buf); err != nil {
		t.Fatalf("ShardingAblation: %v\n%s", err, buf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var env shardingEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.SchemaVersion != shardingSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", env.SchemaVersion, shardingSchemaVersion)
	}
	if want := len(shardingWorlds) * 3; len(env.Records) != want {
		t.Fatalf("records = %d, want %d", len(env.Records), want)
	}
	find := func(strategy string, world int) shardingRecord {
		for _, r := range env.Records {
			if r.Strategy == strategy && r.World == world {
				return r
			}
		}
		t.Fatalf("no record for %s world %d", strategy, world)
		return shardingRecord{}
	}
	for _, r := range env.Records {
		if !r.BitwiseVsDDP {
			t.Fatalf("%s world %d not bitwise vs DDP", r.Strategy, r.World)
		}
	}
	const world = 4
	ddp := find("ddp", world)
	z3 := find("zero3", world)
	ddpState := float64(ddp.ShardParamBytes + ddp.OptimizerBytes)
	z3State := float64(z3.ShardParamBytes + z3.OptimizerBytes)
	if limit := (1.0/world + 0.05) * ddpState; z3State > limit {
		t.Fatalf("zero3 persistent state %v > (1/%d+eps) x DDP (%v)", z3State, world, limit)
	}
	if z3.PeakParamBytes >= z3.FullParamBytes {
		t.Fatalf("zero3 peak %d not below full model %d", z3.PeakParamBytes, z3.FullParamBytes)
	}
	z2 := find("zero2", world)
	if z2.OptimizerBytes >= ddp.OptimizerBytes {
		t.Fatalf("zero2 optimizer shard %d not below DDP %d", z2.OptimizerBytes, ddp.OptimizerBytes)
	}
	if z2.ShardParamBytes != ddp.ShardParamBytes {
		t.Fatalf("zero2 replicates params: %d != %d", z2.ShardParamBytes, ddp.ShardParamBytes)
	}
}
