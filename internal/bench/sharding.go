package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/fsdp"
	"repro/internal/hw"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Sharding ablation fixture: a three-layer MLP so no single layer
// dominates the parameter budget (ZeRO-3's peak residency is shards
// plus one layer's materialized buckets, so a deep model shows the
// peak < full separation), with a bucket cap small enough to split
// every weight matrix across several buckets.
const (
	shIn, shH1, shH2, shOut = 32, 48, 48, 32
	shCap                   = 1 << 10 // 256 float32 elements per bucket
	shLR, shMomentum        = 0.05, 0.9
	shIters, shPerRank      = 4, 2
	shSeed                  = 11
)

var shardingWorlds = []int{1, 2, 4}

// shardingRecord is one (strategy, world) measurement of the sharding
// ablation, written to BENCH_sharding.json. Byte counts are real
// fsdp.Stats accounting from a trained in-process cluster (float32
// payload bytes, per rank); the modeled seconds come from the simnet
// cost rows for the same layout, and bitwise_vs_ddp records that the
// run's final parameters equal the DDP+SGD reference exactly.
type shardingRecord struct {
	Strategy           string  `json:"strategy"`
	World              int     `json:"world"`
	FullParamBytes     int     `json:"full_param_bytes"`
	ShardParamBytes    int     `json:"shard_param_bytes"`
	PeakParamBytes     int     `json:"peak_param_bytes"`
	OptimizerBytes     int     `json:"optimizer_bytes"`
	PeakGradBytes      int     `json:"peak_grad_bytes"`
	Gathers            int     `json:"gathers"`
	Reduces            int     `json:"reduces"`
	ModeledStepSeconds float64 `json:"modeled_step_seconds"`
	BitwiseVsDDP       bool    `json:"bitwise_vs_ddp"`
}

// shardingEnvelope mirrors the comm bench JSON envelope so
// ci/bench_check.sh can verify one schema convention across files.
type shardingEnvelope struct {
	SchemaVersion int              `json:"schema_version"`
	Records       []shardingRecord `json:"records"`
}

const shardingSchemaVersion = 2

func shModel() nn.Module {
	rng := rand.New(rand.NewSource(shSeed))
	return nn.NewSequential(
		nn.NewLinear(rng, "fc1", shIn, shH1),
		nn.Tanh{},
		nn.NewLinear(rng, "fc2", shH1, shH2),
		nn.Tanh{},
		nn.NewLinear(rng, "fc3", shH2, shOut),
	)
}

func shSizes() []int {
	var sizes []int
	for _, p := range shModel().Parameters() {
		sizes = append(sizes, p.Value.Size())
	}
	return sizes
}

// shData builds the global batches; rank r of every run trains on rows
// [r*shPerRank, (r+1)*shPerRank), so all strategies see identical data.
func shData(world int) (batches, labels []*tensor.Tensor) {
	rng := rand.New(rand.NewSource(23))
	batches = make([]*tensor.Tensor, shIters)
	labels = make([]*tensor.Tensor, shIters)
	for i := range batches {
		batches[i] = tensor.RandN(rng, 1, world*shPerRank, shIn)
		labels[i] = tensor.RandN(rng, 1, world*shPerRank, shOut)
	}
	return
}

func shRows(t *tensor.Tensor, rank int) *tensor.Tensor {
	cols := t.Dims(1)
	out := tensor.New(shPerRank, cols)
	copy(out.Data(), t.Data()[rank*shPerRank*cols:(rank+1)*shPerRank*cols])
	return out
}

func shRunRanks(world int, fn func(rank int) error) error {
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(rank)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return fmt.Errorf("rank %d: %w", rank, err)
		}
	}
	return nil
}

// shDDPReference trains the replicated DDP+SGD trajectory and returns
// rank 0's final flattened parameters — the oracle every sharded run
// must match bitwise.
func shDDPReference(world int, batches, labels []*tensor.Tensor) ([]float32, error) {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeGroups(groups)
	models := make([]nn.Module, world)
	err := shRunRanks(world, func(rank int) error {
		m := shModel()
		models[rank] = m
		d, err := ddp.New(m, groups[rank], ddp.Options{BucketCapBytes: shCap})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), shLR)
		opt.Momentum = shMomentum
		for i := range batches {
			opt.ZeroGrad()
			x := autograd.Constant(shRows(batches[i], rank))
			y := autograd.Constant(shRows(labels[i], rank))
			if err := d.Backward(autograd.MSELoss(d.Forward(x), y)); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return flattenModule(models[0]), nil
}

func closeGroups(groups []comm.ProcessGroup) {
	for _, g := range groups {
		g.Close()
	}
}

func flattenModule(m nn.Module) []float32 {
	var out []float32
	for _, p := range m.Parameters() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

func sameFlat(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// shModeledStep prices one iteration of the layout with the simnet
// cost rows (NCCL profile, overlap on) — the time side of the
// memory/traffic trade the byte columns quantify.
func shModeledStep(strategy string, world int) (float64, error) {
	b, err := simnet.SimulateIteration(simnet.Config{
		ParamSizes:     shSizes(),
		BucketCapBytes: shCap,
		World:          world,
		Backend:        hw.NCCLLike,
		Device:         hw.GPU,
		Overlap:        true,
		Strategy:       strategy,
	})
	if err != nil {
		return 0, err
	}
	return b.TotalSeconds, nil
}

// shTrainSharded trains one (strategy, world) fsdp cluster and returns
// rank 0's stats plus whether the final parameters match the DDP
// reference bitwise.
func shTrainSharded(strategy fsdp.Strategy, world int, batches, labels []*tensor.Tensor, ref []float32) (fsdp.Stats, bool, error) {
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer closeGroups(groups)
	wrappers := make([]*fsdp.FSDP, world)
	err := shRunRanks(world, func(rank int) error {
		f, err := fsdp.New(shModel(), groups[rank], fsdp.Options{
			Strategy:       strategy,
			BucketCapBytes: shCap,
			LR:             shLR,
			Momentum:       shMomentum,
		})
		if err != nil {
			return err
		}
		wrappers[rank] = f
		for i := range batches {
			x := autograd.Constant(shRows(batches[i], rank))
			y := autograd.Constant(shRows(labels[i], rank))
			if err := f.Backward(autograd.MSELoss(f.Forward(x), y)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return fsdp.Stats{}, false, err
	}
	// Stats BEFORE Materialize: the gather-everything below is a
	// comparison convenience, not part of the training footprint.
	stats := wrappers[0].Stats()
	if err := shRunRanks(world, func(rank int) error { return wrappers[rank].Materialize() }); err != nil {
		return fsdp.Stats{}, false, err
	}
	bitwise := true
	for _, f := range wrappers {
		if !sameFlat(flattenModule(f.Module()), ref) {
			bitwise = false
		}
	}
	return stats, bitwise, nil
}

// shardingOutPath resolves where BENCH_sharding.json lands: the
// BENCH_SHARDING_OUT override, else the repository root (found by
// walking up to go.mod), else the working directory.
func shardingOutPath() string {
	if p := os.Getenv("BENCH_SHARDING_OUT"); p != "" {
		return p
	}
	dir, err := os.Getwd()
	if err != nil {
		return "BENCH_sharding.json"
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, "BENCH_sharding.json")
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "BENCH_sharding.json"
		}
		dir = parent
	}
}

// ShardingAblation trains real in-process clusters at world 1, 2, and
// 4 under replicated DDP, ZeRO-2, and ZeRO-3, records the per-rank
// memory accounting (fsdp.Stats) and gather/reduce traffic next to the
// simnet-modeled step time, verifies every sharded run reproduces the
// DDP trajectory bitwise, prints the table, and writes the records to
// BENCH_sharding.json for ci/bench_check.sh's memory gate.
func ShardingAblation(w io.Writer) error {
	header(w, "Ablation: sharded data parallel (ZeRO-2/3 vs replicated DDP)")
	sizes := shSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	fullBytes := 4 * total
	assign, err := ddp.AssignBuckets(sizes, shCap, 4, ddp.ReverseOrder(len(sizes)))
	if err != nil {
		return err
	}
	maxBucketBytes := 0
	for _, elems := range assign.BucketElems {
		if b := 4 * elems; b > maxBucketBytes {
			maxBucketBytes = b
		}
	}

	var records []shardingRecord
	fmt.Fprintf(w, "%-8s %6s %12s %12s %12s %12s %9s %9s %12s %9s\n",
		"strategy", "world", "param/rank", "param peak", "opt/rank", "grad peak", "gathers", "reduces", "modeled (s)", "bitwise")
	for _, world := range shardingWorlds {
		batches, labels := shData(world)
		ref, err := shDDPReference(world, batches, labels)
		if err != nil {
			return fmt.Errorf("ddp reference world %d: %w", world, err)
		}
		for _, strategy := range []string{"ddp", "zero2", "zero3"} {
			modeled, err := shModeledStep(strategy, world)
			if err != nil {
				return err
			}
			rec := shardingRecord{
				Strategy:           strategy,
				World:              world,
				FullParamBytes:     fullBytes,
				ModeledStepSeconds: modeled,
			}
			if strategy == "ddp" {
				// Replicated layout, by construction: full parameters and
				// full momentum on every rank, one AllReduce per bucket
				// per step.
				rec.ShardParamBytes = fullBytes
				rec.PeakParamBytes = fullBytes
				rec.OptimizerBytes = fullBytes
				rec.PeakGradBytes = maxBucketBytes
				rec.Reduces = shIters * assign.NumBuckets()
				rec.BitwiseVsDDP = true
			} else {
				st, err := fsdp.ParseStrategy(strategy)
				if err != nil {
					return err
				}
				stats, bitwise, err := shTrainSharded(st, world, batches, labels, ref)
				if err != nil {
					return fmt.Errorf("%s world %d: %w", strategy, world, err)
				}
				rec.ShardParamBytes = stats.ShardParamBytes
				rec.PeakParamBytes = stats.PeakParamBytes
				rec.OptimizerBytes = stats.OptimizerBytes
				rec.PeakGradBytes = stats.PeakGradBytes
				rec.Gathers = stats.Gathers
				rec.Reduces = stats.Reduces
				rec.BitwiseVsDDP = bitwise
				if !bitwise {
					return fmt.Errorf("%s world %d diverged from the DDP reference", strategy, world)
				}
			}
			records = append(records, rec)
			fmt.Fprintf(w, "%-8s %6d %12d %12d %12d %12d %9d %9d %12.6f %9v\n",
				rec.Strategy, rec.World, rec.ShardParamBytes, rec.PeakParamBytes, rec.OptimizerBytes,
				rec.PeakGradBytes, rec.Gathers, rec.Reduces, rec.ModeledStepSeconds, rec.BitwiseVsDDP)
		}
	}

	out := shardingOutPath()
	data, err := json.MarshalIndent(shardingEnvelope{SchemaVersion: shardingSchemaVersion, Records: records}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}
	fmt.Fprintf(w, "\nrecords written to %s\n", out)
	return nil
}
