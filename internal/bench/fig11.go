package bench

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/data"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/stats"
)

// Fig11Config parameterizes one convergence run of Fig 11.
type Fig11Config struct {
	// World is the number of in-process ranks.
	World int
	// BatchPerRank is the per-rank batch size (paper batch 8 and 256 are
	// global sizes; divide by world).
	BatchPerRank int
	// LR is the SGD learning rate (paper: 0.02 for batch 8, 0.06 for
	// batch 256).
	LR float32
	// SyncEvery synchronizes gradients (and steps the optimizer) every
	// n-th iteration.
	SyncEvery int
	// Iterations is the number of training iterations to record.
	Iterations int
}

// Fig11Curve holds one loss curve.
type Fig11Curve struct {
	Label    string
	Raw      []float64
	Smoothed []float64
	// FinalLoss is the mean smoothed loss over the last 10% of training
	// — the quantity the paper's red box highlights in Fig 11(b).
	FinalLoss float64
}

// runConvergence trains a real model with real DDP over in-process
// process groups and records rank 0's per-iteration loss. This is
// actual execution, not simulation: every AllReduce moves real bytes.
func runConvergence(cfg Fig11Config) (Fig11Curve, error) {
	groups := comm.NewInProcGroups(cfg.World, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	// Substantial class overlap gives the task a nonzero loss floor, so
	// overshooting from accumulated no_sync gradients shows up as a
	// worse final loss rather than vanishing into a separable optimum.
	dataset := data.NewSyntheticNoise(99, 4096, 32, 10, 1.8)
	losses := make([]float64, cfg.Iterations)

	var wg sync.WaitGroup
	errs := make([]error, cfg.World)
	for r := 0; r < cfg.World; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				model := models.NewMLP(7, dataset.Features(), 32, dataset.Classes())
				d, err := ddp.New(model, groups[rank], ddp.Options{})
				if err != nil {
					return err
				}
				opt := optim.NewSGD(d.Parameters(), cfg.LR)
				opt.Momentum = 0.9
				sampler, err := data.NewDistributedSampler(dataset.Len(), rank, cfg.World)
				if err != nil {
					return err
				}
				loader, err := data.NewLoader(dataset, sampler, cfg.BatchPerRank)
				if err != nil {
					return err
				}
				epoch := int64(0)
				loader.Reset(epoch)
				for it := 0; it < cfg.Iterations; it++ {
					x, labels, ok := loader.Next()
					if !ok {
						epoch++
						loader.Reset(epoch)
						x, labels, ok = loader.Next()
						if !ok {
							return fmt.Errorf("bench: loader empty after reset")
						}
					}
					syncIter := (it+1)%cfg.SyncEvery == 0
					step := func() error {
						out := d.Forward(autograd.Constant(x))
						loss := autograd.CrossEntropyLoss(out, labels)
						if rank == 0 {
							losses[it] = float64(loss.Value.Item())
						}
						return d.Backward(loss)
					}
					var err error
					if syncIter {
						err = step()
					} else {
						err = d.NoSync(step)
					}
					if err != nil {
						return err
					}
					if syncIter {
						opt.Step()
						opt.ZeroGrad()
					}
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			return Fig11Curve{}, fmt.Errorf("rank %d: %w", rank, err)
		}
	}

	smoothed := stats.SmoothLosses(losses)
	tail := len(smoothed) / 10
	if tail == 0 {
		tail = 1
	}
	var final float64
	for _, v := range smoothed[len(smoothed)-tail:] {
		final += v
	}
	final /= float64(tail)
	return Fig11Curve{
		Label:     fmt.Sprintf("no_sync_%d", cfg.SyncEvery),
		Raw:       losses,
		Smoothed:  smoothed,
		FinalLoss: final,
	}, nil
}

// Fig11Panel runs the four sync frequencies for one (batch, lr) setting.
func Fig11Panel(world, globalBatch int, lr float32, iters int) ([]Fig11Curve, error) {
	curves := make([]Fig11Curve, 0, 4)
	for _, every := range []int{1, 2, 4, 8} {
		c, err := runConvergence(Fig11Config{
			World:        world,
			BatchPerRank: globalBatch / world,
			LR:           lr,
			SyncEvery:    every,
			Iterations:   iters,
		})
		if err != nil {
			return nil, err
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// Fig11 reproduces both panels of Fig 11 with real distributed training:
// (a) batch 8, lr 0.02 — skipping sync barely hurts; (b) batch 256,
// lr 0.06 — no_sync degrades the final loss. Panel (b)'s degradation is
// the paper's point that large accumulated batches implicitly need a
// smaller learning rate.
func Fig11(w io.Writer, iters int) error {
	const world = 4
	type panel struct {
		name        string
		globalBatch int
		lr          float32
	}
	for _, p := range []panel{
		{"a: batch=8, lr=0.02", 8, 0.02},
		{"b: batch=256, lr=0.06", 256, 0.06},
	} {
		curves, err := Fig11Panel(world, p.globalBatch, p.lr, iters)
		if err != nil {
			return err
		}
		header(w, fmt.Sprintf("Fig 11(%s): smoothed training loss, %d ranks (real execution)", p.name, world))
		fmt.Fprintf(w, "%-12s", "iteration")
		for _, c := range curves {
			fmt.Fprintf(w, " %10s", c.Label)
		}
		fmt.Fprintln(w)
		n := len(curves[0].Smoothed)
		step := n / 10
		if step == 0 {
			step = 1
		}
		for i := 0; i < n; i += step {
			fmt.Fprintf(w, "%-12d", i)
			for _, c := range curves {
				fmt.Fprintf(w, " %10.4f", c.Smoothed[i])
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%-12s", "final")
		for _, c := range curves {
			fmt.Fprintf(w, " %10.4f", c.FinalLoss)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\npaper: panel (a) curves overlap (negligible impact); panel (b) no_sync hurts the final loss.")
	return nil
}
