package bench

import (
	"fmt"
	"io"
)

// Table1Row is one solution of the paper's Table 1 taxonomy.
type Table1Row struct {
	Solution string
	// The six scheme columns: Synchronous / Asynchronous update,
	// Cross- / Intra-iteration parallelism, Data / Model parallelism.
	S, A, C, I, D, M bool
}

// Table1Taxonomy returns the paper's Table 1: which schemes each
// distributed training solution supports.
func Table1Taxonomy() []Table1Row {
	return []Table1Row{
		{"PT DDP", true, false, false, true, true, false},
		{"PT RPC", true, true, true, true, false, true},
		{"TF MultiWorkerMirrored", true, false, false, true, true, false},
		{"TF ParameterServer", true, true, false, true, true, false},
		{"Mesh TensorFlow", true, false, false, true, true, true},
		{"GPipe", true, false, true, false, false, true},
		{"Horovod", true, false, false, true, true, false},
		{"GradientFlow", true, false, false, true, true, false},
		{"SlowMo", true, false, false, true, true, false},
		{"PipeDream", true, true, true, true, true, true},
		{"ZeRO", true, false, false, true, true, true},
		{"Parallax", true, true, false, true, true, false},
		{"ByteScheduler", true, true, false, true, true, false},
		{"TicTac", true, true, false, true, true, false},
		{"PACE", true, false, false, true, true, false},
	}
}

// Table1 prints the taxonomy in the paper's layout.
func Table1(w io.Writer) error {
	header(w, "Table 1: distributed training solutions (S/A = sync/async update, C/I = cross/intra-iteration, D/M = data/model parallel)")
	fmt.Fprintf(w, "%-24s %2s %2s %2s %2s %2s %2s\n", "scheme", "S", "A", "C", "I", "D", "M")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return ""
	}
	for _, r := range Table1Taxonomy() {
		fmt.Fprintf(w, "%-24s %2s %2s %2s %2s %2s %2s\n",
			r.Solution, mark(r.S), mark(r.A), mark(r.C), mark(r.I), mark(r.D), mark(r.M))
	}
	return nil
}
