package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/simnet"
)

// Fig6Row is one bar pair of the Fig 6 latency breakdown.
type Fig6Row struct {
	Model   string
	Backend hw.Backend
	// Normalized segments of the NON-overlapping iteration (they sum,
	// with comm, to 1.0 — the paper normalizes non-overlap total to 1).
	Forward, BackwardCompute, Comm, Optimizer float64
	// OverlapTotal is the overlapping iteration's latency on the same
	// normalized scale.
	OverlapTotal float64
	// SpeedupPct is 100 * (1 - OverlapTotal).
	SpeedupPct float64
}

// Fig6Breakdown computes the per-iteration latency breakdown of Fig 6:
// ResNet50 and BERT on NCCL and Gloo, 32 GPUs, with and without
// overlapping communication and computation.
func Fig6Breakdown() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, wl := range []*models.Profile{models.ResNet50(), models.BERTLarge()} {
		for _, backend := range allBackends {
			base := simnet.Config{
				ParamSizes:       wl.Sizes(),
				ComputeIntensity: wl.ComputeIntensity,
				World:            32,
				Backend:          backend,
				Device:           hw.GPU,
			}
			noOverlap := base
			noOverlap.Overlap = false
			nb, err := simnet.SimulateIteration(noOverlap)
			if err != nil {
				return nil, err
			}
			withOverlap := base
			withOverlap.Overlap = true
			ob, err := simnet.SimulateIteration(withOverlap)
			if err != nil {
				return nil, err
			}
			norm := nb.TotalSeconds
			rows = append(rows, Fig6Row{
				Model:           wl.Name,
				Backend:         backend,
				Forward:         nb.ForwardSeconds / norm,
				BackwardCompute: nb.BackwardComputeSeconds / norm,
				Comm:            nb.ExposedCommSeconds / norm,
				Optimizer:       nb.OptimizerSeconds / norm,
				OverlapTotal:    ob.TotalSeconds / norm,
				SpeedupPct:      100 * (1 - ob.TotalSeconds/norm),
			})
		}
	}
	return rows, nil
}

// Fig6 prints the latency breakdown table.
func Fig6(w io.Writer) error {
	rows, err := Fig6Breakdown()
	if err != nil {
		return err
	}
	header(w, "Fig 6: per-iteration latency breakdown, 32 GPUs (non-overlap total normalized to 1)")
	fmt.Fprintf(w, "%-10s %-6s %9s %9s %9s %9s %13s %9s\n",
		"model", "comm", "fwd", "bwd-comp", "bwd-comm", "opt", "overlap-total", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-6s %9.3f %9.3f %9.3f %9.3f %13.3f %8.1f%%\n",
			r.Model, r.Backend, r.Forward, r.BackwardCompute, r.Comm, r.Optimizer,
			r.OverlapTotal, r.SpeedupPct)
	}
	fmt.Fprintln(w, "\npaper: ResNet/NCCL 38.0%, BERT/NCCL 35.2%, ResNet/Gloo 26.8%, BERT/Gloo 21.5% speedup;")
	fmt.Fprintln(w, "backward (compute+comm) dominates and comm exceeds half of the backward delay.")
	return nil
}
