package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/simnet"
)

var roundRobinWorlds = []int{1, 2, 4, 8, 16, 24, 32}

// RoundRobinPoint is one point of Fig 12's curves.
type RoundRobinPoint struct {
	Model         string
	Backend       hw.Backend
	Groups        int
	World         int
	MedianSeconds float64
}

// Fig12RoundRobin reproduces Fig 12: median per-iteration latency with
// round-robin process groups rr1, rr3, rr5 on 1-32 GPUs.
func Fig12RoundRobin() ([]RoundRobinPoint, error) {
	var points []RoundRobinPoint
	for _, wl := range evaluationWorkloads() {
		for _, backend := range allBackends {
			for _, groups := range []int{1, 3, 5} {
				for _, world := range roundRobinWorlds {
					b, err := simnet.SimulateIteration(simnet.Config{
						ParamSizes:       wl.profile.Sizes(),
						ComputeIntensity: wl.profile.ComputeIntensity,
						World:            world,
						Backend:          backend,
						Device:           hw.GPU,
						Overlap:          true,
						CommStreams:      groups,
					})
					if err != nil {
						return nil, err
					}
					points = append(points, RoundRobinPoint{
						Model:         wl.profile.Name,
						Backend:       backend,
						Groups:        groups,
						World:         world,
						MedianSeconds: b.TotalSeconds,
					})
				}
			}
		}
	}
	return points, nil
}

// Fig12 prints the round-robin process group comparison.
func Fig12(w io.Writer) error {
	points, err := Fig12RoundRobin()
	if err != nil {
		return err
	}
	header(w, "Fig 12: median per-iteration latency with round-robin process groups")
	fmt.Fprintf(w, "%-10s %-6s %-4s", "model", "comm", "rr")
	for _, world := range roundRobinWorlds {
		fmt.Fprintf(w, " %8d", world)
	}
	fmt.Fprintln(w)
	i := 0
	var rr1At16 float64
	for _, wl := range []string{"resnet50", "bert-large"} {
		for _, backend := range allBackends {
			for _, groups := range []int{1, 3, 5} {
				fmt.Fprintf(w, "%-10s %-6s rr%-2d", wl, backend, groups)
				for _, world := range roundRobinWorlds {
					p := points[i]
					fmt.Fprintf(w, " %8.4f", p.MedianSeconds)
					if wl == "bert-large" && backend == hw.NCCLLike && world == 16 {
						if groups == 1 {
							rr1At16 = p.MedianSeconds
						} else if groups == 3 && rr1At16 > 0 {
							defer fmt.Fprintf(w, "\nBERT/NCCL rr3 vs rr1 at 16 GPUs: %.0f%% faster (paper: 33%%)\n",
								100*(1-p.MedianSeconds/rr1At16))
						}
					}
					i++
				}
				fmt.Fprintln(w)
			}
		}
	}
	fmt.Fprintln(w, "\npaper: ResNet50/NCCL sees negligible difference; ResNet50/Gloo rr3 beats rr1;")
	fmt.Fprintln(w, "the largest gain is BERT/NCCL where rr3 is ~33% faster than rr1 at 16 GPUs.")
	return nil
}
