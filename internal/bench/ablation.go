package bench

import (
	"fmt"
	"io"

	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/simnet"
)

// Ablation quantifies the design choices DESIGN.md calls out, beyond
// what the paper's own figures isolate: overlap on/off, bucket packing
// order (reverse vs forward registration order), gradient compression
// levels, and round-robin stream counts — all on ResNet50 at 32 GPUs
// with the NCCL profile unless stated.
func Ablation(w io.Writer) error {
	profile := models.ResNet50()
	base := simnet.Config{
		ParamSizes:       profile.Sizes(),
		ComputeIntensity: profile.ComputeIntensity,
		World:            32,
		Backend:          hw.NCCLLike,
		Device:           hw.GPU,
		Overlap:          true,
	}

	header(w, "Ablation: overlap (the paper's central optimization)")
	on, err := simnet.SimulateIteration(base)
	if err != nil {
		return err
	}
	off := base
	off.Overlap = false
	offB, err := simnet.SimulateIteration(off)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "overlap on:  %.4fs   overlap off: %.4fs   speedup: %.1f%%\n",
		on.TotalSeconds, offB.TotalSeconds, 100*(1-on.TotalSeconds/offB.TotalSeconds))

	header(w, "Ablation: bucket packing order (reverse vs forward registration)")
	// Forward-order packing strands the first-ready gradients in the
	// last bucket; the in-order launch rule then delays every AllReduce
	// until almost all gradients exist. We model it by reversing the
	// ready-time mapping: with forward packing, bucket 0 contains the
	// LAST-ready parameters, so its ready time is the full backward
	// pass; equivalent to no overlap for bucket 0 plus queueing.
	rev, err := ddp.AssignBuckets(profile.Sizes(), 25<<20, 4, ddp.ReverseOrder(len(profile.Sizes())))
	if err != nil {
		return err
	}
	fwdOrder := make([]int, len(profile.Sizes()))
	for i := range fwdOrder {
		fwdOrder[i] = i
	}
	fwd, err := ddp.AssignBuckets(profile.Sizes(), 25<<20, 4, fwdOrder)
	if err != nil {
		return err
	}
	// Forward packing ≈ the no-overlap latency (communication cannot
	// start until the end of backward), reverse packing = overlap run.
	fmt.Fprintf(w, "reverse-order packing: %d buckets, %.4fs/iter (overlapped)\n", rev.NumBuckets(), on.TotalSeconds)
	fmt.Fprintf(w, "forward-order packing: %d buckets, ~%.4fs/iter (first bucket ready only at backward end)\n",
		fwd.NumBuckets(), offB.TotalSeconds)

	header(w, "Ablation: gradient compression (Section 6.2.3)")
	// Ratios are measured from the codecs' real wire frames (the exact
	// bytes CompressedAllReduce puts on the byte lanes), not assumed:
	// EncodedSize over a representative bucket's element count, headers
	// and all. BenchmarkCompressedAllReduce measures the same frames
	// live on a TCP mesh (BENCH_compression.json).
	const bucketElems = (25 << 20) / 4 // one default 25MB bucket
	fmt.Fprintf(w, "%-8s %12s %12s %14s %14s\n", "codec", "bytes/bucket", "wire ratio", "latency (s)", "vs none")
	for _, c := range []struct {
		name  string
		codec comm.WireCodec
	}{{"none", nil}, {"fp16", comm.Float16Codec{}}, {"1bit", &comm.OneBitCodec{}}, {"topk", &comm.TopKCodec{}}} {
		bytes := 4 * bucketElems
		ratio := 1.0
		if c.codec != nil {
			bytes = c.codec.EncodedSize(bucketElems)
			ratio = float64(4*bucketElems) / float64(bytes)
		}
		cfg := base
		cfg.CompressionRatio = ratio
		b, err := simnet.SimulateIteration(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %12d %11.1fx %14.4f %13.1f%%\n",
			c.name, bytes, ratio, b.TotalSeconds, 100*(1-b.TotalSeconds/on.TotalSeconds))
	}

	header(w, "Ablation: communication streams (round-robin groups), BERT/NCCL 16 GPUs")
	bert := models.BERTLarge()
	fmt.Fprintf(w, "%-8s %14s\n", "streams", "latency (s)")
	for _, streams := range []int{1, 2, 3, 5, 8} {
		b, err := simnet.SimulateIteration(simnet.Config{
			ParamSizes:       bert.Sizes(),
			ComputeIntensity: bert.ComputeIntensity,
			World:            16,
			Backend:          hw.NCCLLike,
			Device:           hw.GPU,
			Overlap:          true,
			CommStreams:      streams,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "rr%-6d %14.4f\n", streams, b.TotalSeconds)
	}
	return nil
}
