package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/simnet"
	"repro/internal/stats"
)

// BucketSweepRow is one box of the Figs 7/8 box-whisker plots.
type BucketSweepRow struct {
	Model    string
	Backend  hw.Backend
	CapMB    int
	Summary  stats.Summary
	NBuckets int
}

// BucketSizeSweep reproduces Fig 7 (world=16) or Fig 8 (world=32):
// per-iteration latency distributions across bucket_cap_mb values, over
// iters jittered iterations per configuration.
func BucketSizeSweep(world, iters int) ([]BucketSweepRow, error) {
	var rows []BucketSweepRow
	for _, wl := range evaluationWorkloads() {
		for _, backend := range allBackends {
			for _, mb := range wl.caps {
				cfg := simnet.Config{
					ParamSizes:       wl.profile.Sizes(),
					ComputeIntensity: wl.profile.ComputeIntensity,
					BucketCapBytes:   capBytes(mb),
					World:            world,
					Backend:          backend,
					Device:           hw.GPU,
					Overlap:          true,
					Jitter:           true,
					Seed:             int64(world*1000 + mb),
				}
				lat, err := simnet.Run(cfg, iters)
				if err != nil {
					return nil, err
				}
				b, err := simnet.SimulateIteration(cfg)
				if err != nil {
					return nil, err
				}
				rows = append(rows, BucketSweepRow{
					Model:    wl.profile.Name,
					Backend:  backend,
					CapMB:    mb,
					Summary:  stats.Summarize(lat),
					NBuckets: b.Buckets,
				})
			}
		}
	}
	return rows, nil
}

func printBucketSweep(w io.Writer, fig string, world, iters int) error {
	rows, err := BucketSizeSweep(world, iters)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Fig %s: per-iteration latency vs bucket size, %d GPUs (%d iterations per box)", fig, world, iters))
	fmt.Fprintf(w, "%-10s %-6s %8s %8s %10s %10s %10s %10s %10s\n",
		"model", "comm", "cap(MB)", "buckets", "min", "p25", "median", "p75", "max")
	for _, r := range rows {
		s := r.Summary
		fmt.Fprintf(w, "%-10s %-6s %8d %8d %10.4f %10.4f %10.4f %10.4f %10.4f\n",
			r.Model, r.Backend, r.CapMB, r.NBuckets, s.Min, s.P25, s.Median, s.P75, s.Max)
	}
	return nil
}

// Fig7 prints the 16-GPU bucket-size sweep.
func Fig7(w io.Writer, iters int) error { return printBucketSweep(w, "7", 16, iters) }

// Fig8 prints the 32-GPU bucket-size sweep.
func Fig8(w io.Writer, iters int) error { return printBucketSweep(w, "8", 32, iters) }
