package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/models"
	"repro/internal/simnet"
)

var scalabilityWorlds = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// ScalabilityPoint is one point of Fig 9's latency-vs-GPUs curves.
type ScalabilityPoint struct {
	Model       string
	Backend     hw.Backend
	World       int
	MeanSeconds float64
}

// Fig9Scalability reproduces Fig 9: mean per-iteration latency of
// ResNet50 and BERT on NCCL and Gloo from 1 to 256 GPUs. Beyond 32 GPUs
// the paper moves to the shared entitlement, so the cluster model adds
// host-variance and congestion there.
func Fig9Scalability(iters int) ([]ScalabilityPoint, error) {
	var points []ScalabilityPoint
	for _, wl := range []*models.Profile{models.ResNet50(), models.BERTLarge()} {
		for _, backend := range allBackends {
			for _, world := range scalabilityWorlds {
				cluster := hw.DefaultCluster()
				cluster.SharedEntitlement = world > 32
				mean, err := simnet.MeanLatency(simnet.Config{
					ParamSizes:       wl.Sizes(),
					ComputeIntensity: wl.ComputeIntensity,
					World:            world,
					Backend:          backend,
					Device:           hw.GPU,
					Cluster:          cluster,
					Overlap:          true,
					Jitter:           true,
					Seed:             int64(world),
				}, iters)
				if err != nil {
					return nil, err
				}
				points = append(points, ScalabilityPoint{
					Model: wl.Name, Backend: backend, World: world, MeanSeconds: mean,
				})
			}
		}
	}
	return points, nil
}

// Fig9 prints the scalability table and the paper's headline scaling
// factor.
func Fig9(w io.Writer, iters int) error {
	points, err := Fig9Scalability(iters)
	if err != nil {
		return err
	}
	header(w, "Fig 9: per-iteration latency vs number of GPUs")
	fmt.Fprintf(w, "%-10s %-6s", "model", "comm")
	for _, world := range scalabilityWorlds {
		fmt.Fprintf(w, " %8d", world)
	}
	fmt.Fprintln(w)
	i := 0
	for _, wl := range []string{"resnet50", "bert-large"} {
		for _, backend := range allBackends {
			fmt.Fprintf(w, "%-10s %-6s", wl, backend)
			var first, last float64
			for range scalabilityWorlds {
				p := points[i]
				if p.World == 1 {
					first = p.MeanSeconds
				}
				last = p.MeanSeconds
				fmt.Fprintf(w, " %8.4f", p.MeanSeconds)
				i++
			}
			slowdown := last / first
			fmt.Fprintf(w, "   (256-GPU slowdown %.2fx -> scaling factor %.0f/256)\n",
				slowdown, 256/slowdown)
		}
	}
	fmt.Fprintln(w, "\npaper: ResNet50/NCCL ~2x slower at 256 GPUs (scaling factor ~128/256);")
	fmt.Fprintln(w, "Gloo degrades ~3x (ResNet) / ~6x (BERT); latency jumps from 128 to 256 GPUs.")
	return nil
}

// SkipSyncPoint is one point of Fig 10's amortized-latency curves.
type SkipSyncPoint struct {
	Backend     hw.Backend
	SyncEvery   int
	World       int
	MeanSeconds float64
}

// Fig10SkipSync reproduces Fig 10: average per-iteration latency of
// ResNet50 when synchronizing gradients every 1, 2, 4, and 8 iterations,
// on NCCL and Gloo, from 1 to 256 GPUs.
func Fig10SkipSync(iters int) ([]SkipSyncPoint, error) {
	sizes := models.ResNet50().Sizes()
	var points []SkipSyncPoint
	for _, backend := range allBackends {
		for _, every := range []int{1, 2, 4, 8} {
			for _, world := range scalabilityWorlds {
				cluster := hw.DefaultCluster()
				cluster.SharedEntitlement = world > 32
				mean, err := simnet.MeanLatency(simnet.Config{
					ParamSizes: sizes,
					World:      world,
					Backend:    backend,
					Device:     hw.GPU,
					Cluster:    cluster,
					Overlap:    true,
					SyncEveryN: every,
					Jitter:     true,
					Seed:       int64(world*10 + every),
				}, iters)
				if err != nil {
					return nil, err
				}
				points = append(points, SkipSyncPoint{
					Backend: backend, SyncEvery: every, World: world, MeanSeconds: mean,
				})
			}
		}
	}
	return points, nil
}

// Fig10 prints the skip-synchronization table with the paper's headline
// savings at 256 GPUs.
func Fig10(w io.Writer, iters int) error {
	points, err := Fig10SkipSync(iters)
	if err != nil {
		return err
	}
	header(w, "Fig 10: average per-iteration latency, ResNet50, sync every n iterations")
	fmt.Fprintf(w, "%-6s %-10s", "comm", "sync-every")
	for _, world := range scalabilityWorlds {
		fmt.Fprintf(w, " %8d", world)
	}
	fmt.Fprintln(w)
	i := 0
	for _, backend := range allBackends {
		baseline256 := 0.0
		for _, every := range []int{1, 2, 4, 8} {
			fmt.Fprintf(w, "%-6s %-10d", backend, every)
			var last float64
			for range scalabilityWorlds {
				p := points[i]
				fmt.Fprintf(w, " %8.4f", p.MeanSeconds)
				last = p.MeanSeconds
				i++
			}
			if every == 1 {
				baseline256 = last
				fmt.Fprintln(w)
			} else {
				fmt.Fprintf(w, "   (%.0f%% faster at 256)\n", 100*(1-last/baseline256))
			}
		}
	}
	fmt.Fprintln(w, "\npaper: sync-every-8 gives ~38% (NCCL) and ~57% (Gloo) speedup at 256 GPUs.")
	return nil
}
