package bench

import (
	"fmt"
	"io"

	"repro/internal/hw"
	"repro/internal/models"
)

// Fig2Point is one point of the Fig 2(a)/(b) communication curves.
type Fig2Point struct {
	// ParamsPerOp is the AllReduce granularity (x-axis).
	ParamsPerOp int
	// TotalSeconds is the time to AllReduce all 60M parameters at that
	// granularity (y-axis).
	TotalSeconds float64
}

// Fig2CommCurve reproduces Fig 2(a)/(b): total time to AllReduce 60M
// float32 parameters as a function of parameters per AllReduce, on two
// GPUs (the paper's NVLink server), for the given backend profile.
func Fig2CommCurve(backend hw.Backend) []Fig2Point {
	c := hw.DefaultCluster()
	const totalParams = 60_000_000
	sizes := []int{1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000, 20_000_000}
	points := make([]Fig2Point, 0, len(sizes))
	for _, perOp := range sizes {
		ops := totalParams / perOp
		t := float64(ops) * c.AllReduceSeconds(backend, perOp*4, 2)
		points = append(points, Fig2Point{ParamsPerOp: perOp, TotalSeconds: t})
	}
	return points
}

// Fig2ComputePoint is one point of the Fig 2(c)/(d) backward curves.
type Fig2ComputePoint struct {
	// ReadyParams is the cumulative number of parameters whose gradient
	// is ready (x-axis).
	ReadyParams int
	// MedianSeconds is the modeled elapsed backward time (y-axis).
	MedianSeconds float64
	// MinSeconds and MaxSeconds bound the measured range band.
	MinSeconds, MaxSeconds float64
}

// Fig2ComputeCurve reproduces Fig 2(c)/(d): elapsed time in the backward
// pass of a ~60M-parameter ResNet152 as gradients become ready, on GPU
// or CPU. The ±7% band stands in for the paper's measured min/max range.
func Fig2ComputeCurve(device hw.Device) []Fig2ComputePoint {
	profile := models.ResNet152()
	sizes := profile.Sizes()
	total := profile.TotalParams()
	comp := hw.Profile(device, total)

	// Gradients become ready in reverse registration order.
	var points []Fig2ComputePoint
	cum := 0
	for i := len(sizes) - 1; i >= 0; i-- {
		cum += sizes[i]
		if (len(sizes)-1-i)%7 != 0 && i != 0 { // subsample for readable tables
			continue
		}
		t := comp.GradReadySeconds(cum, total)
		points = append(points, Fig2ComputePoint{
			ReadyParams:   cum,
			MedianSeconds: t,
			MinSeconds:    t * 0.93,
			MaxSeconds:    t * 1.07,
		})
	}
	return points
}

// Fig2 prints all four panels of Fig 2.
func Fig2(w io.Writer) error {
	for _, backend := range allBackends {
		header(w, fmt.Sprintf("Fig 2(%s): total %s execution time vs params per AllReduce (60M params, 2 GPUs)",
			map[hw.Backend]string{hw.NCCLLike: "a", hw.GlooLike: "b"}[backend], backend))
		fmt.Fprintf(w, "%14s %16s\n", "params/op", "total (sec)")
		for _, p := range Fig2CommCurve(backend) {
			fmt.Fprintf(w, "%14d %16.5f\n", p.ParamsPerOp, p.TotalSeconds)
		}
	}
	for _, device := range []hw.Device{hw.GPU, hw.CPU} {
		header(w, fmt.Sprintf("Fig 2(%s): backward elapsed time on %s vs ready params (ResNet152, ~60M params)",
			map[hw.Device]string{hw.GPU: "c", hw.CPU: "d"}[device], device))
		fmt.Fprintf(w, "%14s %12s %12s %12s\n", "ready params", "min", "median", "max")
		pts := Fig2ComputeCurve(device)
		step := len(pts) / 12
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(pts); i += step {
			p := pts[i]
			fmt.Fprintf(w, "%14d %12.4f %12.4f %12.4f\n", p.ReadyParams, p.MinSeconds, p.MedianSeconds, p.MaxSeconds)
		}
	}
	return nil
}
