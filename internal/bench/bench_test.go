package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestFig2CurvesShape(t *testing.T) {
	nccl := Fig2CommCurve(hw.NCCLLike)
	if len(nccl) < 8 {
		t.Fatalf("too few points: %d", len(nccl))
	}
	// NCCL monotonically improves with larger per-op tensors (Fig 2a).
	for i := 1; i < len(nccl); i++ {
		if nccl[i].TotalSeconds >= nccl[i-1].TotalSeconds {
			t.Fatalf("NCCL curve not decreasing at %d params/op", nccl[i].ParamsPerOp)
		}
	}
	// Gloo improves then flattens (Fig 2b saturation).
	gloo := Fig2CommCurve(hw.GlooLike)
	first, last := gloo[0].TotalSeconds, gloo[len(gloo)-1].TotalSeconds
	if first < 10*last {
		t.Fatalf("Gloo small ops should be >>10x slower: %v vs %v", first, last)
	}
	mid := gloo[5].TotalSeconds // 300K params: near saturation
	if (mid-last)/last > 0.5 {
		t.Fatalf("Gloo should be near-saturated past 300K: %v vs %v", mid, last)
	}
}

func TestFig2ComputeCurves(t *testing.T) {
	gpu := Fig2ComputeCurve(hw.GPU)
	cpu := Fig2ComputeCurve(hw.CPU)
	if gpu[len(gpu)-1].MedianSeconds < 0.2 || gpu[len(gpu)-1].MedianSeconds > 0.3 {
		t.Fatalf("GPU backward total = %v, want ~0.25", gpu[len(gpu)-1].MedianSeconds)
	}
	if cpu[len(cpu)-1].MedianSeconds < 5 || cpu[len(cpu)-1].MedianSeconds > 7 {
		t.Fatalf("CPU backward total = %v, want ~6", cpu[len(cpu)-1].MedianSeconds)
	}
	for _, p := range gpu {
		if p.MinSeconds > p.MedianSeconds || p.MedianSeconds > p.MaxSeconds {
			t.Fatal("range band inverted")
		}
	}
}

func TestFig6MatchesPaperShape(t *testing.T) {
	rows, err := Fig6Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Non-overlap segments must sum to ~1.
		sum := r.Forward + r.BackwardCompute + r.Comm + r.Optimizer
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s/%v: segments sum to %v", r.Model, r.Backend, sum)
		}
		// Backward (compute + comm) dominates the iteration.
		if r.BackwardCompute+r.Comm < 0.5 {
			t.Fatalf("%s/%v: backward share %v, want dominant", r.Model, r.Backend, r.BackwardCompute+r.Comm)
		}
		// Overlap always helps.
		if r.SpeedupPct <= 0 || r.OverlapTotal >= 1 {
			t.Fatalf("%s/%v: no overlap speedup", r.Model, r.Backend)
		}
		// Plausible band around the paper's 21.5-38.0%.
		if r.SpeedupPct < 10 || r.SpeedupPct > 60 {
			t.Fatalf("%s/%v: speedup %.1f%% outside band", r.Model, r.Backend, r.SpeedupPct)
		}
	}
	// NCCL speedup should exceed Gloo's for the same model (paper: the
	// gain shrinks on Gloo since communication dominates).
	if rows[0].SpeedupPct <= rows[1].SpeedupPct {
		t.Fatalf("ResNet: NCCL speedup (%v) should exceed Gloo (%v)", rows[0].SpeedupPct, rows[1].SpeedupPct)
	}
}

func TestBucketSweepBestInMiddle(t *testing.T) {
	rows, err := BucketSizeSweep(16, 60)
	if err != nil {
		t.Fatal(err)
	}
	// For ResNet50/NCCL the best median must not be at 0MB (Fig 7a);
	// for ResNet50/Gloo, 5MB must beat 25MB and 50MB (Fig 7b).
	medians := map[string]map[int]float64{}
	for _, r := range rows {
		key := r.Model + "/" + r.Backend.String()
		if medians[key] == nil {
			medians[key] = map[int]float64{}
		}
		medians[key][r.CapMB] = r.Summary.Median
	}
	rn := medians["resnet50/nccl"]
	best := 0
	for mb, v := range rn {
		if v < rn[best] {
			best = mb
		}
	}
	if best == 0 {
		t.Fatalf("ResNet50/NCCL best bucket is 0MB: %v", rn)
	}
	rg := medians["resnet50/gloo"]
	if rg[5] >= rg[25] || rg[5] >= rg[50] {
		t.Fatalf("ResNet50/Gloo 5MB should win: %v", rg)
	}
	// BERT/NCCL: large buckets (50MB) beat small (5MB) — Fig 7c.
	bn := medians["bert-large/nccl"]
	if bn[50] >= bn[5] {
		t.Fatalf("BERT/NCCL 50MB (%v) should beat 5MB (%v)", bn[50], bn[5])
	}
}

func TestFig9ScalingFactors(t *testing.T) {
	points, err := Fig9Scalability(16)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]map[int]float64{}
	for _, p := range points {
		key := p.Model + "/" + p.Backend.String()
		if byKey[key] == nil {
			byKey[key] = map[int]float64{}
		}
		byKey[key][p.World] = p.MeanSeconds
	}
	// ResNet50/NCCL: ~2x slowdown at 256 (scaling factor ~128).
	rn := byKey["resnet50/nccl"]
	slow := rn[256] / rn[1]
	if slow < 1.5 || slow > 3.5 {
		t.Fatalf("ResNet50/NCCL 256-GPU slowdown = %v, want ~2x", slow)
	}
	// Gloo degrades much more, and BERT/Gloo worst of all (paper: ~3x
	// ResNet, ~6x BERT).
	rgSlow := byKey["resnet50/gloo"][256] / byKey["resnet50/gloo"][1]
	bgSlow := byKey["bert-large/gloo"][256] / byKey["bert-large/gloo"][1]
	if rgSlow < slow {
		t.Fatalf("Gloo (%v) should degrade worse than NCCL (%v)", rgSlow, slow)
	}
	if bgSlow < rgSlow {
		t.Fatalf("BERT/Gloo (%v) should degrade worse than ResNet/Gloo (%v)", bgSlow, rgSlow)
	}
	// The 128 -> 256 jump exists for NCCL (shared entitlement).
	if rn[256] < 1.15*rn[128] {
		t.Fatalf("no 128->256 jump: %v -> %v", rn[128], rn[256])
	}
}

func TestFig10SavingsAt256(t *testing.T) {
	points, err := Fig10SkipSync(24)
	if err != nil {
		t.Fatal(err)
	}
	at := func(b hw.Backend, every, world int) float64 {
		for _, p := range points {
			if p.Backend == b && p.SyncEvery == every && p.World == world {
				return p.MeanSeconds
			}
		}
		t.Fatalf("missing point %v/%d/%d", b, every, world)
		return 0
	}
	// Paper: 38% (NCCL) and 57% (Gloo) speedup at 256 GPUs with sync
	// every 8. Accept generous bands around those.
	ncclSave := 1 - at(hw.NCCLLike, 8, 256)/at(hw.NCCLLike, 1, 256)
	glooSave := 1 - at(hw.GlooLike, 8, 256)/at(hw.GlooLike, 1, 256)
	if ncclSave < 0.15 || ncclSave > 0.60 {
		t.Fatalf("NCCL sync-every-8 saving = %.0f%%, want ~38%%", ncclSave*100)
	}
	if glooSave < 0.35 || glooSave > 0.80 {
		t.Fatalf("Gloo sync-every-8 saving = %.0f%%, want ~57%%", glooSave*100)
	}
	if glooSave <= ncclSave {
		t.Fatal("Gloo should benefit more from skipping sync than NCCL")
	}
	// More skipping always helps average latency.
	if at(hw.NCCLLike, 4, 256) <= at(hw.NCCLLike, 8, 256) {
		t.Fatal("sync-every-8 should beat sync-every-4")
	}
}

func TestFig11ConvergenceRealTraining(t *testing.T) {
	// Real DDP training: small-batch panel — all sync frequencies reach
	// a loss far below the ln(10) starting point.
	curves, err := Fig11Panel(2, 8, 0.02, 80)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.Raw) != 80 || len(c.Smoothed) != 80 {
			t.Fatalf("%s: curve lengths %d/%d", c.Label, len(c.Raw), len(c.Smoothed))
		}
		if c.FinalLoss >= c.Smoothed[0] {
			t.Fatalf("%s: loss did not decrease (%v -> %v)", c.Label, c.Smoothed[0], c.FinalLoss)
		}
	}
}

func TestFig12RoundRobinShape(t *testing.T) {
	points, err := Fig12RoundRobin()
	if err != nil {
		t.Fatal(err)
	}
	at := func(model string, b hw.Backend, groups, world int) float64 {
		for _, p := range points {
			if p.Model == model && p.Backend == b && p.Groups == groups && p.World == world {
				return p.MedianSeconds
			}
		}
		t.Fatalf("missing %s/%v/rr%d/%d", model, b, groups, world)
		return 0
	}
	// BERT/NCCL: rr3 clearly beats rr1 at 16 GPUs (paper: 33%).
	gain := 1 - at("bert-large", hw.NCCLLike, 3, 16)/at("bert-large", hw.NCCLLike, 1, 16)
	if gain < 0.10 || gain > 0.60 {
		t.Fatalf("BERT/NCCL rr3 gain = %.0f%%, want ~33%%", gain*100)
	}
	// ResNet50/NCCL: negligible difference (<5%).
	rnGain := 1 - at("resnet50", hw.NCCLLike, 3, 16)/at("resnet50", hw.NCCLLike, 1, 16)
	if rnGain > 0.08 {
		t.Fatalf("ResNet50/NCCL rr3 gain = %.0f%%, paper says negligible", rnGain*100)
	}
	// ResNet50/Gloo: rr3 consistently at or below rr1.
	for _, world := range []int{8, 16, 32} {
		if at("resnet50", hw.GlooLike, 3, world) > at("resnet50", hw.GlooLike, 1, world)*1.001 {
			t.Fatalf("ResNet50/Gloo rr3 worse than rr1 at %d GPUs", world)
		}
	}
}

func TestHierarchicalSweepShowsCrossMachineRecovery(t *testing.T) {
	rows := HierarchicalSweep(hw.DefaultCluster(),
		[]int{8, 16, 32, 64, 128, 256},
		[]int{1 << 12, 1 << 20, 1 << 24})
	for _, r := range rows {
		if r.World <= 8 {
			// One server: the hierarchy is empty, the models must agree.
			if r.Speedup() != 1 {
				t.Fatalf("world %d elems %d: speedup %v inside one server", r.World, r.Elems, r.Speedup())
			}
			continue
		}
		if r.HierSeconds >= r.FlatSeconds {
			t.Fatalf("world %d elems %d: hierarchical (%v) not beating flat (%v)", r.World, r.Elems, r.HierSeconds, r.FlatSeconds)
		}
		// The acceptance bar: at >= 1M elements the recovery is the
		// structural NIC-share win, not a rounding artifact.
		if r.Elems >= 1<<20 && r.Speedup() < 2 {
			t.Fatalf("world %d elems %d: recovery only %.2fx", r.World, r.Elems, r.Speedup())
		}
	}
}

func TestHierarchicalIterationSweepHelpsMultiHostWorlds(t *testing.T) {
	rows, err := HierarchicalIterationSweep([]int{8, 32, 128}, []int{25})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.World <= 8 {
			if r.HierSeconds != r.FlatSeconds {
				t.Fatalf("world %d: iteration time differs inside one server", r.World)
			}
			continue
		}
		if r.HierSeconds >= r.FlatSeconds {
			t.Fatalf("world %d capMB %d: hierarchical iteration (%v) not faster than flat (%v)",
				r.World, r.CapMB, r.HierSeconds, r.FlatSeconds)
		}
	}
}

func TestDoubleTreeSweepMatchesAutoPolicyBands(t *testing.T) {
	// The modeled sweep must justify comm's Auto policy: double tree
	// wins the <=4Ki-element band at world >= 8, and the ring keeps
	// the bandwidth-bound band at shallow worlds.
	rows := DoubleTreeSweep(hw.DefaultCluster(),
		[]int{8, 32, 256},
		[]int{1 << 10, 1 << 12, 1 << 24})
	for _, r := range rows {
		if r.Elems <= 4<<10 && r.TreeSeconds >= r.RingSeconds {
			t.Fatalf("world %d elems %d: double tree (%v) not beating ring (%v) in the small band",
				r.World, r.Elems, r.TreeSeconds, r.RingSeconds)
		}
		if r.World == 8 && r.Elems == 1<<24 && r.RingSeconds >= r.TreeSeconds {
			t.Fatalf("world 8 elems 16M: ring (%v) should win the bandwidth band over double tree (%v)",
				r.RingSeconds, r.TreeSeconds)
		}
	}
}

func TestNLevelSweepLatencyWin(t *testing.T) {
	rows := NLevelSweep(hw.DefaultCluster(), []int{64}, []int{1 << 10, 1 << 12}, []int{2, 8})
	for _, r := range rows {
		if r.NLevelSeconds >= r.TwoLevelSeconds {
			t.Fatalf("world %d elems %d: three-level (%v) not beating two-level (%v) on small payloads",
				r.World, r.Elems, r.NLevelSeconds, r.TwoLevelSeconds)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1Taxonomy()
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Solution] = r
	}
	ddp := byName["PT DDP"]
	if !ddp.S || !ddp.I || !ddp.D || ddp.A || ddp.C || ddp.M {
		t.Fatalf("PT DDP schemes wrong: %+v", ddp)
	}
	zero := byName["ZeRO"]
	if !zero.D || !zero.M {
		t.Fatalf("ZeRO must be data+model parallel: %+v", zero)
	}
	gpipe := byName["GPipe"]
	if !gpipe.C || gpipe.A {
		t.Fatalf("GPipe must be cross-iteration sync: %+v", gpipe)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	for name, fn := range map[string]func(io.Writer) error{
		"fig2":         Fig2,
		"fig6":         Fig6,
		"fig12":        Fig12,
		"table1":       Table1,
		"hierarchical": HierarchicalAblation,
		"doubletree":   DoubleTreeAblation,
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if buf.Len() < 100 {
			t.Fatalf("%s: suspiciously short output", name)
		}
	}
	var buf bytes.Buffer
	if err := Fig7(&buf, 30); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "16 GPUs") {
		t.Fatal("Fig7 output missing world size")
	}
	buf.Reset()
	if err := Fig8(&buf, 30); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Fig9(&buf, 8); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := Fig10(&buf, 8); err != nil {
		t.Fatal(err)
	}
}
