package fsdp

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
)

// Fixture dimensions chosen so the reverse-order cap-256B packing
// yields buckets of 24, 7, and 35 elements: multiple buckets, none
// divisible by most world sizes, and a 7-element bucket that leaves
// some ranks an EMPTY chunk at world 8 — the uneven-tail edge cases
// the bitwise contract must survive.
const (
	tIn, tHidden, tOut = 5, 7, 3
	tCap               = 96 // bytes → 24 float32 elements
	tLR, tMomentum     = 0.05, 0.9
	tIters, tPerRank   = 5, 2
)

func buildMLP(seed int64, in, hidden, out int) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(
		nn.NewLinear(rng, "fc1", in, hidden),
		nn.Tanh{},
		nn.NewLinear(rng, "fc2", hidden, out),
	)
}

func runRanks(t *testing.T, world int, fn func(rank int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(rank)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

// makeData builds iters global batches; every strategy's rank r trains
// on rows [r*perRank, (r+1)*perRank) of each, so all runs see
// identical data.
func makeData(world, iters int) (batches, labels []*tensor.Tensor) {
	rng := rand.New(rand.NewSource(42))
	batches = make([]*tensor.Tensor, iters)
	labels = make([]*tensor.Tensor, iters)
	for i := range batches {
		batches[i] = tensor.RandN(rng, 1, world*tPerRank, tIn)
		labels[i] = tensor.RandN(rng, 1, world*tPerRank, tOut)
	}
	return
}

func shardRows(t *tensor.Tensor, rank, perRank int) *tensor.Tensor {
	cols := t.Dims(1)
	out := tensor.New(perRank, cols)
	copy(out.Data(), t.Data()[rank*perRank*cols:(rank+1)*perRank*cols])
	return out
}

// ddpReference trains the DDP+SGD reference trajectory (Ring groups,
// same bucket cap) and returns rank 0's final parameters.
func ddpReference(t *testing.T, world int, batches, labels []*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(3, tIn, tHidden, tOut)
		var opt *optim.SGD
		return ddpTrainRank(models[rank], groups[rank], rank, batches, labels, &opt)
	})
	params := models[0].Parameters()
	out := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		out[i] = p.Value.Clone()
	}
	// Sanity: all reference replicas identical.
	for rank := 1; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Value.Equal(out[i]) {
				t.Fatalf("reference rank %d param %d differs from rank 0", rank, i)
			}
		}
	}
	return out
}

// ddpTrainRank runs one rank of the real DDP + optim.SGD reference
// trajectory with the SAME bucket cap the fsdp runs use, leaving the
// optimizer in *opt for state comparisons.
func ddpTrainRank(model nn.Module, pg comm.ProcessGroup, rank int, batches, labels []*tensor.Tensor, opt **optim.SGD) error {
	d, err := ddp.New(model, pg, ddp.Options{BucketCapBytes: tCap})
	if err != nil {
		return err
	}
	o := optim.NewSGD(d.Parameters(), tLR)
	o.Momentum = tMomentum
	*opt = o
	for i := range batches {
		o.ZeroGrad()
		x := autograd.Constant(shardRows(batches[i], rank, tPerRank))
		y := autograd.Constant(shardRows(labels[i], rank, tPerRank))
		if err := d.Backward(autograd.MSELoss(d.Forward(x), y)); err != nil {
			return err
		}
		o.Step()
	}
	return nil
}

func trainFSDP(t *testing.T, world int, strategy Strategy, batches, labels []*tensor.Tensor) []*FSDP {
	t.Helper()
	groups := comm.NewInProcGroups(world, comm.Options{})
	wrappers := make([]*FSDP, world)
	runRanks(t, world, func(rank int) error {
		model := buildMLP(3, tIn, tHidden, tOut)
		f, err := New(model, groups[rank], Options{
			Strategy:       strategy,
			BucketCapBytes: tCap,
			LR:             tLR,
			Momentum:       tMomentum,
		})
		if err != nil {
			return err
		}
		wrappers[rank] = f
		return fsdpTrainRank(f, rank, batches, labels)
	})
	// Gather ZeRO-3 shards so full parameters are comparable.
	runRanks(t, world, func(rank int) error { return wrappers[rank].Materialize() })
	return wrappers
}

func fsdpTrainRank(f *FSDP, rank int, batches, labels []*tensor.Tensor) error {
	for i := range batches {
		x := autograd.Constant(shardRows(batches[i], rank, tPerRank))
		y := autograd.Constant(shardRows(labels[i], rank, tPerRank))
		loss := autograd.MSELoss(f.Forward(x), y)
		if err := f.Backward(loss); err != nil {
			return err
		}
	}
	return nil
}

// TestAgreementWithDDPBitwise is the tentpole acceptance check: over a
// Ring process group, ZeRO-2 and ZeRO-3 must walk the exact parameter
// trajectory of DDP + momentum SGD — bitwise — for every world size 1
// through 8, including non-powers-of-two and the empty-chunk tails.
func TestAgreementWithDDPBitwise(t *testing.T) {
	for world := 1; world <= 8; world++ {
		world := world
		t.Run(worldName(world), func(t *testing.T) {
			t.Parallel()
			batches, labels := makeData(world, tIters)
			ref := ddpReference(t, world, batches, labels)
			for _, strategy := range []Strategy{ZeRO2, ZeRO3} {
				wrappers := trainFSDP(t, world, strategy, batches, labels)
				for rank, f := range wrappers {
					for i, p := range f.Parameters() {
						if !p.Value.Equal(ref[i]) {
							t.Fatalf("%v world %d rank %d param %d differs from DDP reference (max diff %v)",
								strategy, world, rank, i, p.Value.MaxAbsDiff(ref[i]))
						}
					}
				}
			}
		})
	}
}

func worldName(world int) string {
	return "world" + string(rune('0'+world))
}

// TestAgreementOverTCP repeats the bitwise agreement over real TCP
// sockets at world 3. Ring order and fold order are transport
// independent, so the TCP trajectory must equal the in-proc reference.
func TestAgreementOverTCP(t *testing.T) {
	const world = 3
	batches, labels := makeData(world, 3)
	ref := ddpReference(t, world, batches[:3], labels[:3])

	for _, strategy := range []Strategy{ZeRO2, ZeRO3} {
		srv, err := store.ServeTCP("127.0.0.1:0", 20*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		wrappers := make([]*FSDP, world)
		groups := make([]comm.ProcessGroup, world)
		runRanks(t, world, func(rank int) error {
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				return err
			}
			defer client.Close()
			pg, err := comm.NewTCPGroup(rank, world, client, "fsdp-"+strategy.String(), comm.Options{})
			if err != nil {
				return err
			}
			groups[rank] = pg
			f, err := New(buildMLP(3, tIn, tHidden, tOut), pg, Options{
				Strategy:       strategy,
				BucketCapBytes: tCap,
				LR:             tLR,
				Momentum:       tMomentum,
			})
			if err != nil {
				return err
			}
			wrappers[rank] = f
			return fsdpTrainRank(f, rank, batches[:3], labels[:3])
		})
		runRanks(t, world, func(rank int) error { return wrappers[rank].Materialize() })
		for rank, f := range wrappers {
			for i, p := range f.Parameters() {
				if !p.Value.Equal(ref[i]) {
					t.Fatalf("%v over TCP rank %d param %d differs from reference", strategy, rank, i)
				}
			}
		}
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
		srv.Close()
	}
}

// TestZeRO3ShardsExceedBudget trains a model whose full parameter set
// would not fit a per-rank budget of (full size): ZeRO-3 must never
// materialize all parameters at once, so peak residency stays strictly
// below the full model while persistent state is ~1/world of it.
func TestZeRO3ShardsExceedBudget(t *testing.T) {
	const world = 4
	const in, hidden, out = 32, 64, 32 // fc1.W=2048, fc2.W=2048 elems
	groups := comm.NewInProcGroups(world, comm.Options{})
	batches, labels := func() (*tensor.Tensor, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(5))
		return tensor.RandN(rng, 1, world, in), tensor.RandN(rng, 1, world, out)
	}()
	wrappers := make([]*FSDP, world)
	runRanks(t, world, func(rank int) error {
		f, err := New(buildMLP(11, in, hidden, out), groups[rank], Options{
			Strategy:       ZeRO3,
			BucketCapBytes: 4096, // 1024-elem buckets: big layers split
			LR:             tLR,
			Momentum:       tMomentum,
		})
		if err != nil {
			return err
		}
		wrappers[rank] = f
		x := autograd.Constant(shardRows(batches, rank, 1))
		y := autograd.Constant(shardRows(labels, rank, 1))
		return f.Backward(autograd.MSELoss(f.Forward(x), y))
	})

	for rank, f := range wrappers {
		s := f.Stats()
		if s.FullParamBytes == 0 || s.Reduces == 0 || s.Gathers == 0 {
			t.Fatalf("rank %d stats not populated: %+v", rank, s)
		}
		// Per-rank budget: the full model must NOT fit transiently.
		if s.PeakParamBytes >= s.FullParamBytes {
			t.Fatalf("rank %d ZeRO-3 peak %dB reached full model %dB — parameters were fully materialized",
				rank, s.PeakParamBytes, s.FullParamBytes)
		}
		// Persistent parameter + optimizer state ≈ 2/world of full
		// (each is one chunk of every bucket; chunk rounding adds at
		// most world*numBuckets elements of slack).
		slack := 4 * world * f.NumBuckets()
		want := 2*s.FullParamBytes/world + 2*slack
		if got := f.ShardBytes(); got > want {
			t.Fatalf("rank %d persistent shard bytes %d exceed 2/world bound %d", rank, got, want)
		}
		if s.ShardParamBytes >= s.FullParamBytes {
			t.Fatalf("rank %d ZeRO-3 shard bytes %d not smaller than full %d", rank, s.ShardParamBytes, s.FullParamBytes)
		}
	}
}

// TestZeRO2StatsReplicateParams pins the ZeRO-2 accounting: parameters
// fully resident, optimizer state sharded.
func TestZeRO2StatsReplicateParams(t *testing.T) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{})
	wrappers := make([]*FSDP, world)
	runRanks(t, world, func(rank int) error {
		f, err := New(buildMLP(11, tIn, tHidden, tOut), groups[rank], Options{
			Strategy: ZeRO2, BucketCapBytes: tCap, LR: tLR,
		})
		wrappers[rank] = f
		return err
	})
	for rank, f := range wrappers {
		s := f.Stats()
		if s.ShardParamBytes != s.FullParamBytes || s.PeakParamBytes != s.FullParamBytes {
			t.Fatalf("rank %d ZeRO-2 must keep params replicated: %+v", rank, s)
		}
		slack := 4 * world * f.NumBuckets()
		if s.OptimizerBytes > s.FullParamBytes/world+slack {
			t.Fatalf("rank %d ZeRO-2 optimizer bytes %d not ~1/world of %d", rank, s.OptimizerBytes, s.FullParamBytes)
		}
	}
}

// TestFlatStateMatchesSGDAndRoundTrips checks the checkpoint path: the
// collectively gathered momentum state must be bitwise the state
// optim.SGD holds after the identical DDP trajectory, and must survive
// a SetFlatState round trip.
func TestFlatStateMatchesSGDAndRoundTrips(t *testing.T) {
	const world = 3
	batches, labels := makeData(world, tIters)

	// Reference SGD state from the DDP run.
	groups := comm.NewInProcGroups(world, comm.Options{})
	var refState []float32
	models := make([]nn.Module, world)
	opts := make([]*optim.SGD, world)
	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(3, tIn, tHidden, tOut)
		return ddpTrainRank(models[rank], groups[rank], rank, batches, labels, &opts[rank])
	})
	refState = opts[0].FlatState()

	for _, strategy := range []Strategy{ZeRO2, ZeRO3} {
		wrappers := trainFSDP(t, world, strategy, batches, labels)
		states := make([][]float32, world)
		runRanks(t, world, func(rank int) error {
			states[rank] = wrappers[rank].FlatState() // collective
			return nil
		})
		for rank := 0; rank < world; rank++ {
			if !sameF32(states[rank], refState) {
				t.Fatalf("%v rank %d FlatState differs from SGD reference state", strategy, rank)
			}
		}
		// Round trip: zero the shards, restore, re-gather.
		runRanks(t, world, func(rank int) error {
			f := wrappers[rank]
			if err := f.SetFlatState(make([]float32, len(refState))); err != nil {
				return err
			}
			return f.SetFlatState(states[rank])
		})
		again := make([][]float32, world)
		runRanks(t, world, func(rank int) error {
			again[rank] = wrappers[rank].FlatState()
			return nil
		})
		for rank := 0; rank < world; rank++ {
			if !sameF32(again[rank], refState) {
				t.Fatalf("%v rank %d FlatState did not survive round trip", strategy, rank)
			}
		}
	}
}

// TestCompressedShardedReduceSelfConsistent smoke-tests the wire-codec
// path: compressed sharded runs are NOT bitwise-comparable to DDP (the
// fold skips DDP's second quantization), but all replicas must stay
// bitwise identical to each other and residual state must be tracked.
func TestCompressedShardedReduceSelfConsistent(t *testing.T) {
	const world = 4
	for _, strategy := range []Strategy{ZeRO2, ZeRO3} {
		batches, labels := makeData(world, 3)
		groups := comm.NewInProcGroups(world, comm.Options{})
		wrappers := make([]*FSDP, world)
		runRanks(t, world, func(rank int) error {
			f, err := New(buildMLP(3, tIn, tHidden, tOut), groups[rank], Options{
				Strategy:       strategy,
				BucketCapBytes: tCap,
				LR:             tLR,
				Momentum:       tMomentum,
				NewCodec:       func() comm.Codec { return comm.Float16Codec{} },
			})
			if err != nil {
				return err
			}
			wrappers[rank] = f
			return fsdpTrainRank(f, rank, batches, labels)
		})
		runRanks(t, world, func(rank int) error { return wrappers[rank].Materialize() })
		ref := wrappers[0].Parameters()
		for rank := 1; rank < world; rank++ {
			for i, p := range wrappers[rank].Parameters() {
				if !p.Value.Equal(ref[i].Value) {
					t.Fatalf("%v compressed rank %d param %d differs from rank 0", strategy, rank, i)
				}
			}
		}
		if got := wrappers[0].Stats().ResidualBytes; got == 0 {
			t.Fatalf("%v compressed run reports zero residual bytes", strategy)
		}
		if rs := wrappers[1].ResidualState(); len(rs) == 0 {
			t.Fatalf("%v compressed run has empty residual state", strategy)
		}
	}
}

// TestRejectsPlainCodec: quantizing the full bucket before a sharded
// reduce would misaccount bytes; only wire codecs are accepted.
func TestRejectsPlainCodec(t *testing.T) {
	groups := comm.NewInProcGroups(1, comm.Options{})
	_, err := New(buildMLP(3, tIn, tHidden, tOut), groups[0], Options{
		NewCodec: func() comm.Codec { return plainCodec{} },
	})
	if err == nil {
		t.Fatal("plain (non-wire) codec accepted")
	}
}

type plainCodec struct{}

func (plainCodec) Name() string              { return "plain" }
func (plainCodec) Quantize([]float32)        {}
func (plainCodec) CompressionRatio() float64 { return 1 }

func TestParseStrategy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Strategy
	}{{"zero2", ZeRO2}, {"ZeRO3", ZeRO3}} {
		got, err := ParseStrategy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseStrategy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStrategy("ddp"); err == nil {
		t.Fatal("ParseStrategy accepted ddp")
	}
	if ZeRO2.String() != "zero2" || ZeRO3.String() != "zero3" {
		t.Fatal("Strategy.String spelling changed")
	}
}

func sameF32(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
