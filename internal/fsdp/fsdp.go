package fsdp

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/reduce"
)

// Strategy selects how much replica state is sharded.
type Strategy int

const (
	// ZeRO2 shards gradients and optimizer state; parameters stay
	// replicated.
	ZeRO2 Strategy = iota
	// ZeRO3 additionally shards parameters, gathering them on demand
	// per bucket during forward and backward.
	ZeRO3
)

// String names the strategy as the CLI flags spell it.
func (s Strategy) String() string {
	switch s {
	case ZeRO2:
		return "zero2"
	case ZeRO3:
		return "zero3"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps the CLI spelling back to a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "zero2":
		return ZeRO2, nil
	case "zero3":
		return ZeRO3, nil
	default:
		return 0, fmt.Errorf("fsdp: unknown strategy %q (want zero2 or zero3)", s)
	}
}

// Options configures an FSDP wrapper.
type Options struct {
	// Strategy picks ZeRO2 (default) or ZeRO3.
	Strategy Strategy
	// BucketCapBytes bounds each gradient bucket exactly like
	// ddp.Options.BucketCapBytes — the SAME packing, which is what
	// keeps element ownership aligned with a DDP reference run. Zero
	// selects ddp's 25MB default; negative means one bucket per
	// parameter.
	BucketCapBytes int
	// LR and Momentum parameterize the fused sharded momentum-SGD
	// step (optim.ShardedMomentumStep — the same operation sequence as
	// optim.SGD).
	LR       float32
	Momentum float32
	// NewCodec optionally compresses gradient shards on the wire.
	// When the product implements comm.WireCodec, buckets ride
	// comm.CompressedReduceScatterV with engine-owned error-feedback
	// residuals keyed by parameter identity. Compressed runs are NOT
	// bitwise-comparable to compressed DDP: DDP's AllReduce
	// re-quantizes the reduced bucket for its broadcast stage, while
	// the sharded reduce feeds the exact fold straight to the local
	// optimizer. Plain (non-wire) codecs are rejected — quantizing the
	// full bucket before a sharded reduce would charge every rank for
	// bytes it never sends.
	NewCodec func() comm.Codec
	// SkipInitialBroadcast suppresses the constructor's rank-0
	// parameter/buffer broadcast, for callers that aligned replicas
	// externally (the elastic agent's checkpoint-restore path).
	SkipInitialBroadcast bool
	// TestingOnGather, when non-nil, runs immediately before every
	// ZeRO-3 parameter AllGatherV with the bucket index. The chaos
	// harness uses it to kill ranks mid-gather; never set it outside
	// tests.
	TestingOnGather func(bucket int)
}

// Stats is the memory/traffic accounting the sharding ablation and the
// CI memory gate read. All byte counts are float32 payload bytes.
type Stats struct {
	// FullParamBytes is the unsharded model size.
	FullParamBytes int
	// ShardParamBytes is the persistently resident parameter bytes per
	// rank: the owned chunks under ZeRO3, the full model under ZeRO2.
	ShardParamBytes int
	// PeakParamBytes is the maximum transiently resident parameter
	// bytes observed (shards plus materialized buckets).
	PeakParamBytes int
	// OptimizerBytes is the momentum shard size — the state ZeRO
	// divides by world.
	OptimizerBytes int
	// ResidualBytes is the error-feedback store size (zero without a
	// wire codec).
	ResidualBytes int
	// PeakGradBytes is the maximum gradient bucket bytes observed; the
	// engine's transient buffers release after every step.
	PeakGradBytes int
	// Gathers and Reduces count parameter AllGatherV and gradient
	// ReduceScatterV launches.
	Gathers int
	Reduces int
}

// FSDP wraps an nn.Module for sharded data parallel training with a
// fused sharded optimizer: Backward both reduces gradients and applies
// the momentum-SGD update, so there is no separate optimizer Step.
// Gradient bucketing, launch ordering, and residuals come from the
// same reduce.Engine DDP uses; only the launched collective differs.
type FSDP struct {
	module nn.Module
	units  []nn.Module
	pg     comm.ProcessGroup
	sg     comm.ShardedGroup
	opts   Options

	params []*nn.Parameter
	sizes  []int
	engine *reduce.Engine
	assign *reduce.Assignment
	wire   comm.WireCodec

	// Per-bucket shard layout: rank owns bucket chunk
	// comm.ChunkBounds(BucketElems[b], world, rank).
	ownedLo, ownedHi []int
	velocity         [][]float32 // owned momentum chunks
	ownedParams      [][]float32 // ZeRO-3 persistent parameter shards
	materialized     []bool
	remaining        []int   // ZeRO-3: member grads outstanding before free
	unitBuckets      [][]int // buckets each unit's parameters touch
	lastUnitOf       []int   // last forward unit touching each bucket

	bufferSyncPending bool
	residentParam     int // current resident param bytes (ZeRO-3)
	// deferred records a gather failure hit inside the forward/backward
	// graph walk, where the nn.Module interfaces leave no error channel;
	// Backward surfaces it. Once set, further gathers are skipped and
	// the affected layers compute on zeroed parameters — garbage that is
	// discarded when Backward returns the error (the elastic agent then
	// tears the world down and rolls back).
	deferred error
	stats    Stats
}

// New wraps module for sharded training over pg, which must support
// the sharded collectives (mesh-backed groups do). Replicas are
// aligned by a rank-0 broadcast exactly like ddp.New, then — under
// ZeRO3 — every rank drops the parameter elements it does not own.
func New(module nn.Module, pg comm.ProcessGroup, opts Options) (*FSDP, error) {
	sg, ok := pg.(comm.ShardedGroup)
	if !ok {
		return nil, errors.New("fsdp: process group does not support the sharded collectives")
	}
	if opts.BucketCapBytes == 0 {
		opts.BucketCapBytes = 25 << 20
	}
	f := &FSDP{module: module, pg: pg, sg: sg, opts: opts, params: module.Parameters()}
	if len(f.params) == 0 {
		return nil, errors.New("fsdp: module has no parameters")
	}
	f.sizes = make([]int, len(f.params))
	total := 0
	for i, p := range f.params {
		f.sizes[i] = p.Value.Size()
		total += f.sizes[i]
	}
	if opts.NewCodec != nil {
		wc, ok := opts.NewCodec().(comm.WireCodec)
		if !ok {
			return nil, errors.New("fsdp: codec must implement comm.WireCodec for sharded reduction")
		}
		f.wire = wc
	}

	engine, err := reduce.NewEngine(reduce.Config{
		Sizes:          f.sizes,
		Launch:         f.launchBucket,
		TrackResiduals: f.wire != nil,
		Transient:      true,
	})
	if err != nil {
		return nil, err
	}
	f.engine = engine

	if !opts.SkipInitialBroadcast {
		var works []comm.Work
		for _, p := range f.params {
			works = append(works, pg.Broadcast(p.Value.Data(), 0))
		}
		for _, b := range module.Buffers() {
			works = append(works, pg.Broadcast(b.Data.Data(), 0))
		}
		if err := comm.WaitAll(works...); err != nil {
			return nil, fmt.Errorf("fsdp: broadcasting initial state: %w", err)
		}
	}

	assign, err := reduce.AssignBuckets(f.sizes, opts.BucketCapBytes, 4, reduce.ReverseOrder(len(f.params)))
	if err != nil {
		return nil, err
	}
	f.installShards(assign)
	f.mapUnits()

	for i, p := range f.params {
		idx := i
		p.RegisterPostAccumulateHook(func(*autograd.Variable) { f.autogradHook(idx) })
	}
	f.stats.FullParamBytes = 4 * total
	f.stats.OptimizerBytes = f.optimizerBytes()
	f.stats.ResidualBytes = 0
	if f.wire != nil {
		f.stats.ResidualBytes = 4 * total
	}
	f.stats.ShardParamBytes = f.shardParamBytes()
	f.residentParam = f.stats.FullParamBytes // fully resident until sharded
	if opts.Strategy == ZeRO3 {
		// Shard the just-aligned parameters: keep the owned chunks,
		// drop the rest.
		for b := range f.assign.Buckets {
			flat := make([]float32, f.assign.BucketElems[b])
			f.packParams(b, flat)
			copy(f.ownedParams[b], flat[f.ownedLo[b]:f.ownedHi[b]])
			f.freeBucket(b)
		}
	}
	f.stats.PeakParamBytes = f.currentParamBytes()
	return f, nil
}

// installShards adopts a bucket assignment and (re)builds the shard
// layout derived from it: owned chunk bounds, momentum shards, and —
// under ZeRO3 — the persistent parameter shards.
func (f *FSDP) installShards(assign *reduce.Assignment) {
	f.assign = assign
	f.engine.Install(assign)
	world := f.pg.Size()
	rank := f.pg.Rank()
	nb := assign.NumBuckets()
	f.ownedLo = make([]int, nb)
	f.ownedHi = make([]int, nb)
	f.velocity = make([][]float32, nb)
	f.materialized = make([]bool, nb)
	f.remaining = make([]int, nb)
	if f.opts.Strategy == ZeRO3 {
		f.ownedParams = make([][]float32, nb)
	}
	for b := range assign.Buckets {
		lo, hi := comm.ChunkBounds(assign.BucketElems[b], world, rank)
		f.ownedLo[b], f.ownedHi[b] = lo, hi
		f.velocity[b] = make([]float32, hi-lo)
		f.materialized[b] = true // params start resident
		if f.opts.Strategy == ZeRO3 {
			f.ownedParams[b] = make([]float32, hi-lo)
		}
	}
}

// mapUnits decomposes the module into forward units — the gather/free
// granularity of ZeRO-3. A Sequential's children are its units; any
// other module is a single unit. For each unit the touched buckets are
// precomputed, as is each bucket's last forward consumer.
func (f *FSDP) mapUnits() {
	if seq, ok := f.module.(*nn.Sequential); ok {
		f.units = seq.Children()
	} else {
		f.units = []nn.Module{f.module}
	}
	// Parameters() of a Sequential concatenates child parameters in
	// order, so a running offset recovers each unit's index range.
	f.unitBuckets = make([][]int, len(f.units))
	f.lastUnitOf = make([]int, f.assign.NumBuckets())
	next := 0
	for u, unit := range f.units {
		seen := map[int]bool{}
		for range unit.Parameters() {
			b := f.assign.BucketOf[next]
			if !seen[b] {
				seen[b] = true
				f.unitBuckets[u] = append(f.unitBuckets[u], b)
			}
			f.lastUnitOf[b] = u
			next++
		}
	}
}

// launchBucket is the reduce.Launcher fsdp plugs into the shared
// engine: a sharded reduce-scatter per bucket instead of DDP's full
// AllReduce. The flat ring schedule makes the owned chunk bitwise the
// AllReduce result.
func (f *FSDP) launchBucket(bucket int, flat, resFlat []float32) comm.Work {
	f.stats.Reduces++
	if g := f.engine.BucketBytes(); g > f.stats.PeakGradBytes {
		f.stats.PeakGradBytes = g
	}
	if f.wire != nil {
		return f.sg.CompressedReduceScatterV(flat, comm.Avg, f.wire, resFlat)
	}
	return f.sg.ReduceScatterV(flat, comm.Avg)
}

// Module returns the wrapped local model.
func (f *FSDP) Module() nn.Module { return f.module }

// ProcessGroup returns the communication backend in use.
func (f *FSDP) ProcessGroup() comm.ProcessGroup { return f.pg }

// Parameters exposes the wrapped model's parameters. Under ZeRO3 the
// tensors hold zeros for non-owned elements except while materialized;
// use Materialize before reading full values.
func (f *FSDP) Parameters() []*nn.Parameter { return f.params }

// NumBuckets reports the gradient bucket count.
func (f *FSDP) NumBuckets() int { return f.assign.NumBuckets() }

// Assignment returns the parameter-to-bucket mapping (identical to the
// one ddp.New would build for the same model and cap).
func (f *FSDP) Assignment() *reduce.Assignment { return f.assign }

// Strategy reports the configured sharding strategy.
func (f *FSDP) Strategy() Strategy { return f.opts.Strategy }

// Stats returns the current memory/traffic accounting.
func (f *FSDP) Stats() Stats { return f.stats }

// ShardBytes returns the per-rank persistent parameter + optimizer
// state bytes — the quantity the CI memory gate bounds against DDP.
func (f *FSDP) ShardBytes() int { return f.stats.ShardParamBytes + f.stats.OptimizerBytes }

// optimizerBytes sums the momentum shard lengths.
func (f *FSDP) optimizerBytes() int {
	total := 0
	for _, v := range f.velocity {
		total += 4 * len(v)
	}
	return total
}

// shardParamBytes is the persistently resident parameter bytes.
func (f *FSDP) shardParamBytes() int {
	if f.opts.Strategy != ZeRO3 {
		return f.stats.FullParamBytes
	}
	total := 0
	for b := range f.ownedLo {
		total += 4 * (f.ownedHi[b] - f.ownedLo[b])
	}
	return total
}

// currentParamBytes is the resident parameter bytes right now: shards
// plus fully materialized buckets (ZeRO2 is always fully resident).
func (f *FSDP) currentParamBytes() int {
	if f.opts.Strategy != ZeRO3 {
		return f.stats.FullParamBytes
	}
	return f.residentParam
}

// notePeak folds the current residency into the peak.
func (f *FSDP) notePeak() {
	if cur := f.currentParamBytes(); cur > f.stats.PeakParamBytes {
		f.stats.PeakParamBytes = cur
	}
}

// packParams flattens the bucket's member parameter values into dst
// using the bucket's offset layout.
func (f *FSDP) packParams(b int, dst []float32) {
	for _, idx := range f.assign.Buckets[b] {
		off := f.assign.OffsetOf[idx]
		copy(dst[off:off+f.sizes[idx]], f.params[idx].Value.Data())
	}
}

// unpackParams scatters a bucket flat back into member tensors.
func (f *FSDP) unpackParams(b int, src []float32) {
	for _, idx := range f.assign.Buckets[b] {
		off := f.assign.OffsetOf[idx]
		copy(f.params[idx].Value.Data(), src[off:off+f.sizes[idx]])
	}
}

// freeBucket drops a ZeRO-3 bucket's full parameters: member tensors
// are zeroed, which both releases the only full copy of non-owned
// values (the owned chunk lives on in ownedParams) and makes any read
// of an un-gathered parameter loudly wrong instead of silently stale.
func (f *FSDP) freeBucket(b int) {
	if !f.materialized[b] {
		return
	}
	for _, idx := range f.assign.Buckets[b] {
		data := f.params[idx].Value.Data()
		for i := range data {
			data[i] = 0
		}
	}
	f.materialized[b] = false
	f.residentParam -= 4*f.assign.BucketElems[b] - 4*(f.ownedHi[b]-f.ownedLo[b])
}

// materializeBucket gathers a ZeRO-3 bucket's full parameters back
// into the member tensors: the owned chunk seeds an in-place
// AllGatherV and every rank receives every owner's chunk verbatim.
func (f *FSDP) materializeBucket(b int) error {
	if f.materialized[b] {
		return nil
	}
	flat := make([]float32, f.assign.BucketElems[b])
	copy(flat[f.ownedLo[b]:f.ownedHi[b]], f.ownedParams[b])
	if f.opts.TestingOnGather != nil {
		f.opts.TestingOnGather(b)
	}
	f.stats.Gathers++
	if err := f.sg.AllGatherV(flat).Wait(); err != nil {
		return fmt.Errorf("fsdp: gathering bucket %d parameters: %w", b, err)
	}
	f.unpackParams(b, flat)
	f.materialized[b] = true
	f.residentParam += 4*f.assign.BucketElems[b] - 4*(f.ownedHi[b]-f.ownedLo[b])
	f.notePeak()
	return nil
}

// Forward runs the model's forward pass. ZeRO2 runs it directly (full
// parameters are resident); ZeRO3 walks the units, gathering each
// unit's buckets just before its forward, inserting the backward-hook
// re-gather on its output, and freeing each bucket after its last
// forward consumer — the veScale-style gather-on-demand schedule.
func (f *FSDP) Forward(x *autograd.Variable) *autograd.Variable {
	f.broadcastBuffersIfPending()
	f.engine.Reset()
	f.deferred = nil
	if g := f.engine.BucketBytes(); g > f.stats.PeakGradBytes {
		f.stats.PeakGradBytes = g
	}
	if f.opts.Strategy != ZeRO3 {
		return f.module.Forward(x)
	}
	for b := range f.remaining {
		f.remaining[b] = len(f.assign.Buckets[b])
	}
	for u, unit := range f.units {
		for _, b := range f.unitBuckets[u] {
			if err := f.gatherDeferred(b); err != nil {
				break
			}
		}
		x = unit.Forward(x)
		if buckets := f.unitBuckets[u]; len(buckets) > 0 {
			captured := append([]int(nil), buckets...)
			x = autograd.BackwardHook(x, func() {
				for _, b := range captured {
					if err := f.gatherDeferred(b); err != nil {
						return
					}
				}
			})
		}
		for _, b := range f.unitBuckets[u] {
			if f.lastUnitOf[b] == u {
				f.freeBucket(b)
			}
		}
	}
	return x
}

// broadcastBuffersIfPending mirrors DDP's buffer handling: rank 0's
// buffer values are pushed to all ranks before the forward pass
// following a synchronized backward.
func (f *FSDP) broadcastBuffersIfPending() {
	if !f.bufferSyncPending {
		return
	}
	buffers := f.module.Buffers()
	if len(buffers) == 0 {
		f.bufferSyncPending = false
		return
	}
	works := make([]comm.Work, len(buffers))
	for i, b := range buffers {
		works[i] = f.pg.Broadcast(b.Data.Data(), 0)
	}
	if err := comm.WaitAll(works...); err != nil {
		panic(fmt.Sprintf("fsdp: buffer broadcast failed: %v", err))
	}
	f.bufferSyncPending = false
}

// gatherDeferred materializes a bucket, downgrading a collective
// failure to the deferred error Backward reports: a gather can only
// fail when the process group broke (a peer died, the group was
// aborted), and the graph walk it interrupts runs inside interfaces
// with no error return. Once a failure is recorded all later gathers
// are skipped — their buckets compute on zeroed parameters, keeping
// tensor shapes (and the caller's loss construction) intact while the
// iteration's results are doomed to be discarded.
func (f *FSDP) gatherDeferred(b int) error {
	if f.deferred != nil {
		return f.deferred
	}
	if err := f.materializeBucket(b); err != nil {
		f.deferred = err
	}
	return f.deferred
}

// takeDeferred returns and clears the recorded graph-walk failure.
func (f *FSDP) takeDeferred() error {
	err := f.deferred
	f.deferred = nil
	return err
}

// autogradHook fires after a parameter's gradient is fully
// accumulated: copy it into the bucket, mark it ready (the engine
// launches the sharded reduce over the in-order prefix), and — under
// ZeRO3 — free the bucket's parameters once the last member gradient
// is in, since no remaining backward op can read them.
func (f *FSDP) autogradHook(idx int) {
	f.engine.CopyIn(idx, f.params[idx].Grad.Data())
	f.engine.MarkReady(idx)
	if f.opts.Strategy == ZeRO3 {
		b := f.assign.BucketOf[idx]
		f.remaining[b]--
		if f.remaining[b] == 0 {
			f.freeBucket(b)
		}
	}
}

// Backward runs autograd from loss, then finishes the fused
// reduce-and-step: waits for the sharded reductions bucket by bucket,
// applies the momentum update to each owned chunk
// (optim.ShardedMomentumStep — SGD's exact operation sequence), and
// publishes updated parameters (ZeRO2 AllGathers them now; ZeRO3
// leaves them sharded for the next forward's gathers). Gradients are
// consumed by the step and cleared.
func (f *FSDP) Backward(loss *autograd.Variable) error {
	if err := f.takeDeferred(); err != nil {
		return fmt.Errorf("fsdp: forward gather: %w", err)
	}
	autograd.Backward(loss, nil)
	if err := f.takeDeferred(); err != nil {
		return fmt.Errorf("fsdp: backward re-gather: %w", err)
	}
	if f.engine.Launched() < f.engine.NumBuckets() {
		var missing []string
		for _, members := range f.assign.Buckets[f.engine.Launched():] {
			for _, idx := range members {
				if f.params[idx].Grad == nil {
					missing = append(missing, f.params[idx].Name)
				}
			}
		}
		return fmt.Errorf(
			"fsdp: backward pass finished with %d bucket(s) incomplete; parameters %s received no gradient — fsdp requires every parameter to participate in every iteration",
			f.engine.NumBuckets()-f.engine.Launched(), strings.Join(missing, ", "))
	}
	if g := f.engine.BucketBytes(); g > f.stats.PeakGradBytes {
		f.stats.PeakGradBytes = g
	}
	err := f.engine.WaitAll(func(bucket int, flat []float32) error {
		grad := flat[f.ownedLo[bucket]:f.ownedHi[bucket]]
		switch f.opts.Strategy {
		case ZeRO3:
			optim.ShardedMomentumStep(f.ownedParams[bucket], grad, f.velocity[bucket], f.opts.LR, f.opts.Momentum)
		default: // ZeRO2
			pflat := make([]float32, f.assign.BucketElems[bucket])
			f.packParams(bucket, pflat)
			optim.ShardedMomentumStep(pflat[f.ownedLo[bucket]:f.ownedHi[bucket]], grad, f.velocity[bucket], f.opts.LR, f.opts.Momentum)
			if err := f.sg.AllGatherV(pflat).Wait(); err != nil {
				return fmt.Errorf("fsdp: gathering updated parameters for bucket %d: %w", bucket, err)
			}
			f.stats.Gathers++
			f.unpackParams(bucket, pflat)
		}
		return nil
	})
	if err != nil {
		return err
	}
	for _, p := range f.params {
		p.ZeroGrad()
	}
	f.bufferSyncPending = len(f.module.Buffers()) > 0
	return nil
}

// Materialize gathers the full parameter set into the model's tensors
// (a per-bucket AllGatherV under ZeRO3; a no-op otherwise). All ranks
// must call it at the same point. Use it before reading parameters for
// evaluation or checkpointing; the next Forward re-frees on schedule.
func (f *FSDP) Materialize() error {
	if f.opts.Strategy != ZeRO3 {
		return nil
	}
	for b := range f.assign.Buckets {
		if err := f.materializeBucket(b); err != nil {
			return err
		}
	}
	return nil
}

// FlatState returns the full momentum state in parameter order — a
// collective: every rank contributes its owned chunks via AllGatherV,
// so all ranks must call FlatState together. It implements
// optim.StateFlattener's read half for checkpointing; the layout
// matches what optim.SGD would hold for the same model. A gather
// failure panics; callers that must survive a peer dying mid-gather
// (the elastic agent's save path) use FlatStateErr.
func (f *FSDP) FlatState() []float32 {
	flat, err := f.FlatStateErr()
	if err != nil {
		panic(fmt.Sprintf("fsdp: gathering optimizer state: %v", err))
	}
	return flat
}

// FlatStateErr is FlatState with the gather failure surfaced as an
// error instead of a panic.
func (f *FSDP) FlatStateErr() ([]float32, error) {
	total := 0
	for _, s := range f.sizes {
		total += s
	}
	out := make([]float32, total)
	for b := range f.assign.Buckets {
		vflat := make([]float32, f.assign.BucketElems[b])
		copy(vflat[f.ownedLo[b]:f.ownedHi[b]], f.velocity[b])
		if err := f.sg.AllGatherV(vflat).Wait(); err != nil {
			return nil, fmt.Errorf("fsdp: gathering optimizer state: %w", err)
		}
		// Scatter bucket layout back to model order.
		for _, idx := range f.assign.Buckets[b] {
			off := f.assign.OffsetOf[idx]
			mo := f.modelOffset(idx)
			copy(out[mo:mo+f.sizes[idx]], vflat[off:off+f.sizes[idx]])
		}
	}
	return out, nil
}

// SetFlatState installs a full momentum vector (FlatState's layout),
// slicing out this rank's owned chunks. Purely local.
func (f *FSDP) SetFlatState(flat []float32) error {
	total := 0
	for _, s := range f.sizes {
		total += s
	}
	if len(flat) != total {
		return fmt.Errorf("fsdp: optimizer state has %d elements, expected %d", len(flat), total)
	}
	for b := range f.assign.Buckets {
		vflat := make([]float32, f.assign.BucketElems[b])
		for _, idx := range f.assign.Buckets[b] {
			off := f.assign.OffsetOf[idx]
			mo := f.modelOffset(idx)
			copy(vflat[off:off+f.sizes[idx]], flat[mo:mo+f.sizes[idx]])
		}
		copy(f.velocity[b], vflat[f.ownedLo[b]:f.ownedHi[b]])
	}
	return nil
}

// modelOffset is the element offset of parameter idx in the
// concatenated model-order flat vector.
func (f *FSDP) modelOffset(idx int) int {
	off := 0
	for i := 0; i < idx; i++ {
		off += f.sizes[i]
	}
	return off
}

// ResidualState returns the error-feedback residuals in parameter
// order (empty without a wire codec); see ddp.DDP.ResidualState. The
// residuals are this rank's own quantization errors — per-rank state,
// not replicated state.
func (f *FSDP) ResidualState() []float32 { return f.engine.ResidualState() }

// SetResidualState installs residuals produced by ResidualState.
func (f *FSDP) SetResidualState(flat []float32) error {
	if f.wire == nil {
		if len(flat) == 0 {
			return nil
		}
		return errors.New("fsdp: residual state offered but no wire codec is configured")
	}
	return f.engine.SetResidualState(flat)
}

// Reshard rebuilds the shard layout over a new process group — the
// elastic world-reconfiguration hook. The caller must have restored
// FULL parameters into the model tensors and (via SetFlatState after
// this call) full optimizer state on every rank first: a world change
// moves chunk boundaries, so shards are re-derived from full state,
// which is exactly what the checkpoint re-sharding read path provides.
func (f *FSDP) Reshard(pg comm.ProcessGroup) error {
	sg, ok := pg.(comm.ShardedGroup)
	if !ok {
		return errors.New("fsdp: process group does not support the sharded collectives")
	}
	assign, err := reduce.AssignBuckets(f.sizes, f.opts.BucketCapBytes, 4, reduce.ReverseOrder(len(f.params)))
	if err != nil {
		return err
	}
	f.pg = pg
	f.sg = sg
	f.installShards(assign)
	f.stats.OptimizerBytes = f.optimizerBytes()
	f.stats.ShardParamBytes = f.shardParamBytes()
	f.residentParam = f.stats.FullParamBytes // caller restored full params
	if f.opts.Strategy == ZeRO3 {
		for b := range f.assign.Buckets {
			flat := make([]float32, f.assign.BucketElems[b])
			f.packParams(b, flat)
			copy(f.ownedParams[b], flat[f.ownedLo[b]:f.ownedHi[b]])
			f.freeBucket(b)
		}
	}
	f.mapUnits()
	f.bufferSyncPending = false
	f.notePeak()
	return nil
}

var _ optim.StateFlattener = (*FSDP)(nil)
