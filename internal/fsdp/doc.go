// Package fsdp implements fully sharded data parallelism — the
// ZeRO-style sharded training the paper's Section 7 positions against
// replicated DDP — on the same reduce.Engine that powers internal/ddp.
//
// Two strategies share one code path:
//
//   - ZeRO-2: parameters stay replicated; gradients are ReduceScattered
//     so each rank owns the averaged gradient — and the momentum state —
//     for only its chunk of every bucket, updates its parameter chunk,
//     and AllGathers the updated parameters.
//   - ZeRO-3: additionally shards the parameters themselves. Each rank
//     persistently stores only its owned chunk per bucket; full
//     parameters exist transiently, gathered bucket-by-bucket on demand
//     just before each layer's forward and (via an autograd
//     backward-hook identity op) just before each layer's backward, and
//     freed as soon as the last consumer has run.
//
// The bitwise contract: fsdp uses the SAME bucket assignment as DDP
// (reverse registration order, cap-based packing) and comm's sharded
// collectives, whose owned chunk is by construction bitwise the ring
// AllReduce result. The fused optimizer applies the same operation
// sequence as optim.SGD (optim.ShardedMomentumStep). A ZeRO-2 or
// ZeRO-3 run over a Ring process group therefore produces parameters
// bitwise identical to DDP + SGD on the same data — the agreement the
// package tests assert across world sizes, including uneven shard
// tails. Other AllReduce algorithms give self-consistent but different
// trajectories; the agreement suites pin Ring.
//
// Unsupported relative to DDP: no_sync gradient accumulation and
// unused-parameter tracking (every parameter must receive a gradient
// each iteration), both of which interact with the fused
// reduce-and-step in ways ZeRO's schedule cannot hide.
package fsdp
