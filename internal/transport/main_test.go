package transport

import (
	"testing"
	"time"

	"repro/internal/testutil/leakcheck"
)

// TestMain gates the package on goroutine hygiene: every mesh test
// closes its meshes, so any goroutine still parked in a recv loop or
// accept loop after the run is a transport bug. Teardown of a full
// mesh closes O(world²) sockets, hence the generous settle window.
func TestMain(m *testing.M) {
	leakcheck.Main(m, leakcheck.Timeout(10*time.Second))
}
