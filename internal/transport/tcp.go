package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"net"
	"strconv"
	"sync"

	"repro/internal/store"
)

// tcpMesh is a full mesh of TCP connections between ranks, established
// through a rendezvous store: every rank publishes its listener address,
// lower ranks accept from higher ranks, higher ranks dial lower ranks.
type tcpMesh struct {
	rank, size int
	ln         net.Listener
	peers      []*tcpPeer // indexed by peer rank; nil at own rank
}

type tcpPeer struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	wmu  sync.Mutex
	rmu  sync.Mutex
}

// NewTCPMesh builds rank's view of a TCP full mesh across `size`
// processes, using st for rendezvous under the given namespace prefix
// (distinct meshes — e.g. round-robin sub-groups — must use distinct
// prefixes).
func NewTCPMesh(rank, size int, st store.Store, prefix string) (Mesh, error) {
	if size == 1 {
		return &tcpMesh{rank: 0, size: 1}, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	key := func(r int) string { return prefix + "/addr/" + strconv.Itoa(r) }
	if err := st.Set(key(rank), []byte(ln.Addr().String())); err != nil {
		ln.Close()
		return nil, err
	}

	m := &tcpMesh{rank: rank, size: size, ln: ln, peers: make([]*tcpPeer, size)}

	// Accept one connection from every higher rank; the dialer announces
	// itself by sending its rank in the first 4 bytes.
	acceptErr := make(chan error, 1)
	expected := size - 1 - rank
	go func() {
		for i := 0; i < expected; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			var hdr [4]byte
			if _, err := readFull(conn, hdr[:]); err != nil {
				acceptErr <- err
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= rank || peer >= size {
				acceptErr <- fmt.Errorf("transport: unexpected peer rank %d", peer)
				return
			}
			m.peers[peer] = newTCPPeer(conn)
		}
		acceptErr <- nil
	}()

	// Dial every lower rank.
	for peer := 0; peer < rank; peer++ {
		addrBytes, err := st.Get(key(peer))
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: rendezvous with rank %d: %w", peer, err)
		}
		conn, err := net.Dial("tcp", string(addrBytes))
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("transport: dial rank %d: %w", peer, err)
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(rank))
		if _, err := conn.Write(hdr[:]); err != nil {
			ln.Close()
			return nil, err
		}
		m.peers[peer] = newTCPPeer(conn)
	}

	if err := <-acceptErr; err != nil {
		ln.Close()
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return m, nil
}

func newTCPPeer(conn net.Conn) *tcpPeer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpPeer{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 1<<16),
		w:    bufio.NewWriterSize(conn, 1<<16),
	}
}

func (m *tcpMesh) Rank() int { return m.rank }
func (m *tcpMesh) Size() int { return m.size }

// Frame layout: [tag uint64][count uint32][count * float32], all
// little-endian.
func (m *tcpMesh) Send(to int, tag uint64, data []float32) error {
	if to == m.rank || to < 0 || to >= m.size {
		return fmt.Errorf("transport: invalid send target %d from rank %d", to, m.rank)
	}
	p := m.peers[to]
	p.wmu.Lock()
	defer p.wmu.Unlock()
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:8], tag)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	if _, err := p.w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := p.w.Write(buf[:]); err != nil {
			return err
		}
	}
	return p.w.Flush()
}

func (m *tcpMesh) Recv(from int, tag uint64) ([]float32, error) {
	if from == m.rank || from < 0 || from >= m.size {
		return nil, fmt.Errorf("transport: invalid recv source %d at rank %d", from, m.rank)
	}
	p := m.peers[from]
	p.rmu.Lock()
	defer p.rmu.Unlock()
	var hdr [12]byte
	if _, err := readFull(p.r, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: recv header from rank %d: %w", from, err)
	}
	gotTag := binary.LittleEndian.Uint64(hdr[0:8])
	count := binary.LittleEndian.Uint32(hdr[8:12])
	payload := make([]byte, 4*count)
	if _, err := readFull(p.r, payload); err != nil {
		return nil, fmt.Errorf("transport: recv payload from rank %d: %w", from, err)
	}
	if gotTag != tag {
		return nil, &TagMismatchError{From: from, Want: tag, Got: gotTag}
	}
	data := make([]float32, count)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i : 4*i+4]))
	}
	return data, nil
}

func (m *tcpMesh) Close() error {
	var first error
	if m.ln != nil {
		first = m.ln.Close()
	}
	for _, p := range m.peers {
		if p != nil {
			if err := p.conn.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

type reader interface{ Read([]byte) (int, error) }

func readFull(r reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := r.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
