package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"sync"
	"time"
	"unsafe"

	"repro/internal/store"
)

// hostLittleEndian reports whether the host's float32 memory layout
// already matches the little-endian wire format, enabling the
// zero-copy fast path (reinterpret the []float32 as bytes instead of
// converting element by element). Big-endian hosts fall back to the
// portable bulk codec.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// float32Bytes reinterprets data as its underlying bytes without
// copying. Only valid when hostLittleEndian (the wire is defined as
// little-endian).
func float32Bytes(data []float32) []byte {
	if len(data) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&data[0])), 4*len(data))
}

// ErrAborted is wrapped by every Send/Recv error after a mesh abort and
// by NewTCPMeshCancel when construction is cancelled, so callers (the
// comm worker, elastic recovery) can distinguish a deliberate teardown
// from a genuine wire failure.
var ErrAborted = errors.New("transport: mesh aborted")

// frameHeaderLen is the fixed frame prefix: [tag uint64][count uint32],
// little-endian, followed by the payload. See the package comment for
// the full wire contract.
const frameHeaderLen = 12

// rawFrameFlag marks a byte-lane frame in the header's count field: the
// low 31 bits then hold the payload length in BYTES (not float32
// words). Float frames never set it, so the two lanes share one
// connection and one FIFO without ambiguity. maxByteFrame is the
// largest payload those 31 bits can describe (and fits int on 32-bit
// platforms, unlike the flag itself).
const (
	rawFrameFlag uint32 = 1 << 31
	maxByteFrame        = 1<<31 - 1
)

// tcpMesh is a full mesh of TCP connections between ranks, established
// through a rendezvous store: every rank publishes its listener address,
// lower ranks accept from higher ranks, higher ranks dial lower ranks.
type tcpMesh struct {
	rank, size int
	ln         net.Listener
	peers      []*tcpPeer // indexed by peer rank; nil at own rank
	hosts      []string   // host part of each rank's published address

	// st/addrKey let teardown release this rank's rendezvous key so an
	// aborted or closed mesh leaves nothing behind in the store.
	st      store.Store
	addrKey string

	// aborted closes on Abort; Send/Recv consult it to turn the
	// resulting connection errors into ErrAborted-wrapped ones.
	aborted   chan struct{}
	abortOnce sync.Once
	teardown  sync.Once
}

type tcpPeer struct {
	conn net.Conn
	// link is the peer's locality instrument set (cross-host vs local),
	// resolved once at mesh build.
	link *linkCounters
	wmu  sync.Mutex
	rmu  sync.Mutex
	// wbuf/rbuf are reusable frame scratch buffers, guarded by wmu/rmu:
	// one bulk encode pass and one Write per Send, one ReadFull per
	// frame section on Recv — never a per-element syscall or copy loop
	// through a 4-byte window.
	wbuf []byte
	rbuf []byte
}

// NewTCPMesh builds rank's view of a TCP full mesh across `size`
// processes, using st for rendezvous under the given namespace prefix
// (distinct meshes — e.g. round-robin sub-groups — must use distinct
// prefixes).
func NewTCPMesh(rank, size int, st store.Store, prefix string) (Mesh, error) {
	return NewTCPMeshCancel(rank, size, st, prefix, nil)
}

// NewTCPMeshCancel is NewTCPMesh with an abort handle: closing cancel
// unblocks the rendezvous (store.Get of peer addresses), dialing, and
// accepting immediately, releases the listener plus any connections
// established so far, deletes this rank's address key, and returns an
// error wrapping ErrAborted. Elastic recovery closes cancel when the
// generation moves on mid-build — a worker that died between seal and
// mesh build must not stall survivors until the store timeout.
func NewTCPMeshCancel(rank, size int, st store.Store, prefix string, cancel <-chan struct{}) (Mesh, error) {
	if size == 1 {
		return &tcpMesh{rank: 0, size: 1, hosts: []string{"local"}, aborted: make(chan struct{})}, nil
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	key := func(r int) string { return prefix + "/addr/" + strconv.Itoa(r) }
	if err := st.Set(key(rank), []byte(ln.Addr().String())); err != nil {
		ln.Close()
		return nil, err
	}

	b := &meshBuilder{ln: ln, cancel: cancel, done: make(chan struct{})}
	if cancel != nil {
		go func() {
			select {
			case <-cancel:
				b.abort()
			case <-b.done:
			}
		}()
	}
	defer close(b.done)

	m := &tcpMesh{
		rank: rank, size: size, ln: ln,
		peers:   make([]*tcpPeer, size),
		hosts:   make([]string, size),
		st:      st,
		addrKey: key(rank),
		aborted: make(chan struct{}),
	}
	m.hosts[rank] = addrHost(ln.Addr().String())
	fail := func(err error) (Mesh, error) {
		b.closeAll()
		//ddplint:ignore storeerr failure path already aborting; the stale address key is harmless
		_ = st.Delete(key(rank))
		if b.cancelled() {
			return nil, fmt.Errorf("transport: mesh build: %w", ErrAborted)
		}
		return nil, err
	}

	// Accept one connection from every higher rank; the dialer announces
	// itself by sending its rank in the first 4 bytes.
	acceptErr := make(chan error, 1)
	expected := size - 1 - rank
	go func() {
		for i := 0; i < expected; i++ {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if !b.track(conn) {
				acceptErr <- ErrAborted
				return
			}
			var hdr [4]byte
			if _, err := io.ReadFull(conn, hdr[:]); err != nil {
				acceptErr <- fmt.Errorf("transport: handshake read: %w", err)
				return
			}
			peer := int(binary.LittleEndian.Uint32(hdr[:]))
			if peer <= rank || peer >= size {
				acceptErr <- fmt.Errorf("transport: unexpected peer rank %d", peer)
				return
			}
			host, err := readHostAnnouncement(conn)
			if err != nil {
				acceptErr <- fmt.Errorf("transport: handshake host from rank %d: %w", peer, err)
				return
			}
			m.peers[peer] = newTCPPeer(conn, linkFor(host == m.hosts[rank]))
			// Topology: the handshake carries the host of the dialer's
			// PUBLISHED listener address, so every rank labels peer
			// `peer` from the same single source regardless of which
			// side dialed — multi-homed hosts cannot end up labeled
			// differently on different ranks, which would desynchronize
			// topology-derived algorithm selection. Feeds Hosts().
			// Disjoint slice elements, so this does not race the dial
			// loop's writes; the acceptErr receive below orders it
			// before any Hosts() read.
			m.hosts[peer] = host
		}
		acceptErr <- nil
	}()

	// Dial every lower rank.
	for peer := 0; peer < rank; peer++ {
		addrBytes, err := store.GetCancel(st, key(peer), cancel)
		if err != nil {
			return fail(fmt.Errorf("transport: rendezvous with rank %d: %w", peer, err))
		}
		m.hosts[peer] = addrHost(string(addrBytes))
		conn, err := b.dial(string(addrBytes))
		if err != nil {
			return fail(fmt.Errorf("transport: dial rank %d: %w", peer, err))
		}
		if err := writeHandshake(conn, rank, m.hosts[rank]); err != nil {
			return fail(fmt.Errorf("transport: handshake write to rank %d: %w", peer, err))
		}
		m.peers[peer] = newTCPPeer(conn, linkFor(m.hosts[peer] == m.hosts[rank]))
	}

	if err := <-acceptErr; err != nil {
		return fail(fmt.Errorf("transport: accept: %w", err))
	}
	// A cancel can land after the last handshake completed; finish()
	// arbitrates so we never hand back a mesh the abort path has
	// already torn down.
	if !b.finish() {
		return fail(fmt.Errorf("transport: mesh build: %w", ErrAborted))
	}
	return m, nil
}

// meshBuilder tracks every resource a mesh build opens so a concurrent
// cancel can release them all: the listener (unblocking Accept), each
// live connection (unblocking handshake reads), and in-flight dials
// (via the shared context).
type meshBuilder struct {
	ln     net.Listener
	cancel <-chan struct{}
	done   chan struct{}

	mu       sync.Mutex
	conns    []net.Conn
	stopped  bool // no further connections may be tracked
	canceled bool // the user's cancel fired (vs an ordinary build error)
	finished bool // the build completed; a late cancel must not touch it
}

// track registers a connection for teardown; it reports false (closing
// the connection) when the build was already torn down.
func (b *meshBuilder) track(conn net.Conn) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		conn.Close()
		return false
	}
	b.conns = append(b.conns, conn)
	return true
}

// dial connects to addr, aborting mid-dial if cancel fires.
func (b *meshBuilder) dial(addr string) (net.Conn, error) {
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go func() {
		select {
		case <-b.cancelChan():
			stop()
		case <-ctx.Done():
		}
	}()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if !b.track(conn) {
		return nil, ErrAborted
	}
	return conn, nil
}

func (b *meshBuilder) cancelChan() <-chan struct{} {
	if b.cancel != nil {
		return b.cancel
	}
	return b.done
}

// abort flags cancellation and closes everything the build holds open.
// It races the success path through finish(): exactly one of them wins
// under the mutex, so a build never returns a mesh whose connections a
// late abort already closed.
func (b *meshBuilder) abort() {
	b.mu.Lock()
	if b.finished {
		b.mu.Unlock()
		return
	}
	b.canceled = true
	b.mu.Unlock()
	b.closeAll()
}

// finish marks the build complete, reporting false when cancellation
// won the race (the caller must fail with ErrAborted — its connections
// are already closed or about to be).
func (b *meshBuilder) finish() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.canceled {
		return false
	}
	b.finished = true
	return true
}

// closeAll releases the listener and every tracked connection (the
// failure path shared by cancellation and ordinary build errors).
func (b *meshBuilder) closeAll() {
	b.mu.Lock()
	b.stopped = true
	conns := b.conns
	b.conns = nil
	b.mu.Unlock()
	b.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

func (b *meshBuilder) cancelled() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.canceled {
		return true
	}
	if b.cancel != nil {
		select {
		case <-b.cancel:
			return true
		default:
		}
	}
	return false
}

func newTCPPeer(conn net.Conn, link *linkCounters) *tcpPeer {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &tcpPeer{conn: conn, link: link}
}

func (m *tcpMesh) Rank() int { return m.rank }
func (m *tcpMesh) Size() int { return m.size }

// Hosts returns the host component of every rank's published listener
// address — the mesh's auto-derived placement map (HostLister). Ranks
// whose addresses share a host share its NIC, which is exactly the
// sharing the hierarchical AllReduce exists to exploit.
func (m *tcpMesh) Hosts() []string { return append([]string(nil), m.hosts...) }

// addrHost extracts the host component of a host:port address,
// returning the whole string when it does not parse.
func addrHost(addr string) string {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	return host
}

// maxHostLen bounds the host label in the build handshake so a
// desynced or hostile stream cannot demand an absurd allocation.
const maxHostLen = 1 << 10

// writeHandshake sends the mesh-build announcement after dialing: the
// dialer's rank and the host of its published listener address.
func writeHandshake(conn net.Conn, rank int, host string) error {
	buf := make([]byte, 8+len(host))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(rank))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(host)))
	copy(buf[8:], host)
	_, err := conn.Write(buf)
	return err
}

// readHostAnnouncement reads the host half of the handshake (the rank
// was consumed by the caller to identify the peer first).
func readHostAnnouncement(conn net.Conn) (string, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxHostLen {
		return "", fmt.Errorf("host label of %d bytes exceeds limit %d", n, maxHostLen)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(conn, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// grow returns buf resized to n bytes, reallocating only when the
// capacity is insufficient.
func grow(buf []byte, n int) []byte {
	if cap(buf) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// encodeFrame fills buf (len frameHeaderLen+4*len(data)) with the wire
// frame for (tag, data) in one bulk pass.
func encodeFrame(buf []byte, tag uint64, data []float32) {
	binary.LittleEndian.PutUint64(buf[0:8], tag)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(data)))
	payload := buf[frameHeaderLen:]
	for i, v := range data {
		binary.LittleEndian.PutUint32(payload[4*i:4*i+4], math.Float32bits(v))
	}
}

// decodePayload converts a frame payload back to float32s in one bulk
// pass.
func decodePayload(payload []byte, out []float32) {
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i : 4*i+4]))
	}
}

// Send writes one frame in bulk. On little-endian hosts the payload
// goes out zero-copy: a writev (net.Buffers) of the 12-byte header and
// a byte view of the caller's slice — no per-element conversion, no
// staging buffer, one syscall. The write completes before Send
// returns, so the caller may reuse data (the Mesh contract). Portable
// fallback: one bulk encode into a reused buffer and a single Write.
func (m *tcpMesh) Send(to int, tag uint64, data []float32) error {
	if to == m.rank || to < 0 || to >= m.size {
		return fmt.Errorf("transport: invalid send target %d from rank %d", to, m.rank)
	}
	p := m.peers[to]
	if p == nil {
		return m.stateErr()
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if hostLittleEndian {
		var hdr [frameHeaderLen]byte
		binary.LittleEndian.PutUint64(hdr[0:8], tag)
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
		bufs := net.Buffers{hdr[:], float32Bytes(data)}
		if _, err := bufs.WriteTo(p.conn); err != nil {
			return m.wireErr("send to", to, err)
		}
		p.link.sent(frameHeaderLen + 4*len(data))
		return nil
	}
	n := frameHeaderLen + 4*len(data)
	p.wbuf = grow(p.wbuf, n)
	encodeFrame(p.wbuf, tag, data)
	if _, err := p.conn.Write(p.wbuf); err != nil {
		return m.wireErr("send to", to, err)
	}
	p.link.sent(n)
	return nil
}

// SendBytes writes one byte-lane frame: the standard header with
// rawFrameFlag set (count = payload length in bytes) followed by the
// raw payload, written as a single writev so the lane shares Send's
// one-syscall property. The write completes before SendBytes returns,
// so the caller may reuse data.
func (m *tcpMesh) SendBytes(to int, tag uint64, data []byte) error {
	if to == m.rank || to < 0 || to >= m.size {
		return fmt.Errorf("transport: invalid send target %d from rank %d", to, m.rank)
	}
	if len(data) > maxByteFrame {
		return fmt.Errorf("transport: byte frame of %d bytes exceeds the wire limit", len(data))
	}
	p := m.peers[to]
	if p == nil {
		return m.stateErr()
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], tag)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data))|rawFrameFlag)
	bufs := net.Buffers{hdr[:], data}
	if _, err := bufs.WriteTo(p.conn); err != nil {
		return m.wireErr("send to", to, err)
	}
	p.link.sent(frameHeaderLen + len(data))
	return nil
}

// RecvBytes reads one byte-lane frame: header ReadFull, then the
// payload lands directly in the result slice. Tag and lane mismatches
// surface as their dedicated error types with the stream drained, so
// framing survives for callers that can continue.
func (m *tcpMesh) RecvBytes(from int, tag uint64) ([]byte, error) {
	if from == m.rank || from < 0 || from >= m.size {
		return nil, fmt.Errorf("transport: invalid recv source %d at rank %d", from, m.rank)
	}
	p := m.peers[from]
	if p == nil {
		return nil, m.stateErr()
	}
	p.rmu.Lock()
	defer p.rmu.Unlock()
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(p.conn, hdr[:]); err != nil {
		return nil, m.wireErr("recv header from", from, err)
	}
	gotTag := binary.LittleEndian.Uint64(hdr[0:8])
	count := binary.LittleEndian.Uint32(hdr[8:12])
	if gotTag != tag || count&rawFrameFlag == 0 {
		if _, err := io.CopyN(io.Discard, p.conn, framePayloadLen(count)); err != nil {
			return nil, m.wireErr("recv payload from", from, err)
		}
		if gotTag != tag {
			return nil, &TagMismatchError{From: from, Want: tag, Got: gotTag}
		}
		return nil, &LaneMismatchError{From: from, WantRaw: true, Tag: tag}
	}
	data := make([]byte, count&^rawFrameFlag)
	if _, err := io.ReadFull(p.conn, data); err != nil {
		return nil, m.wireErr("recv payload from", from, err)
	}
	p.link.received(frameHeaderLen + len(data))
	return data, nil
}

// framePayloadLen is the byte length of a frame payload as declared by
// its header count field: raw frames count bytes, float frames count
// 4-byte words.
func framePayloadLen(count uint32) int64 {
	if count&rawFrameFlag != 0 {
		return int64(count &^ rawFrameFlag)
	}
	return 4 * int64(count)
}

// Recv reads one frame: one ReadFull for the header, one for the
// payload. On little-endian hosts the payload lands directly in the
// result slice (zero-copy, no decode pass); the portable fallback
// reads into a reused buffer and bulk-decodes.
func (m *tcpMesh) Recv(from int, tag uint64) ([]float32, error) {
	if from == m.rank || from < 0 || from >= m.size {
		return nil, fmt.Errorf("transport: invalid recv source %d at rank %d", from, m.rank)
	}
	p := m.peers[from]
	if p == nil {
		return nil, m.stateErr()
	}
	p.rmu.Lock()
	defer p.rmu.Unlock()
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(p.conn, hdr[:]); err != nil {
		return nil, m.wireErr("recv header from", from, err)
	}
	gotTag := binary.LittleEndian.Uint64(hdr[0:8])
	count := binary.LittleEndian.Uint32(hdr[8:12])
	if gotTag != tag || count&rawFrameFlag != 0 {
		// Check the tag BEFORE trusting count: a desynced stream (the
		// case this error exists for) yields garbage in both fields,
		// and allocating count floats could demand gigabytes. Drain
		// the claimed payload through a bounded buffer so framing is
		// preserved for callers that can continue.
		if _, err := io.CopyN(io.Discard, p.conn, framePayloadLen(count)); err != nil {
			return nil, m.wireErr("recv payload from", from, err)
		}
		if gotTag != tag {
			return nil, &TagMismatchError{From: from, Want: tag, Got: gotTag}
		}
		return nil, &LaneMismatchError{From: from, WantRaw: false, Tag: tag}
	}
	data := make([]float32, count)
	if hostLittleEndian {
		if _, err := io.ReadFull(p.conn, float32Bytes(data)); err != nil {
			return nil, m.wireErr("recv payload from", from, err)
		}
	} else {
		p.rbuf = grow(p.rbuf, 4*int(count))
		if _, err := io.ReadFull(p.conn, p.rbuf); err != nil {
			return nil, m.wireErr("recv payload from", from, err)
		}
		decodePayload(p.rbuf, data)
	}
	p.link.received(frameHeaderLen + 4*int(count))
	return data, nil
}

// stateErr describes why a peer slot is unusable (abort, close, or a
// singleton mesh with no peers).
func (m *tcpMesh) stateErr() error {
	if m.isAborted() {
		return fmt.Errorf("transport: rank %d: %w", m.rank, ErrAborted)
	}
	return fmt.Errorf("transport: rank %d: no connection", m.rank)
}

// wireErr wraps a connection error, attributing it to the abort when
// one is in flight so blocked collectives fail with a deterministic
// cause rather than an incidental "use of closed network connection".
func (m *tcpMesh) wireErr(op string, peer int, err error) error {
	if m.isAborted() {
		return fmt.Errorf("transport: %s rank %d: %w", op, peer, ErrAborted)
	}
	return fmt.Errorf("transport: %s rank %d: %w", op, peer, err)
}

func (m *tcpMesh) isAborted() bool {
	select {
	case <-m.aborted:
		return true
	default:
		return false
	}
}

// release closes the listener and every connection exactly once, and
// deletes this rank's address key from the rendezvous store.
func (m *tcpMesh) release() error {
	var first error
	m.teardown.Do(func() {
		if m.ln != nil {
			first = m.ln.Close()
		}
		for _, p := range m.peers {
			if p != nil {
				if err := p.conn.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		if m.st != nil && m.addrKey != "" {
			//ddplint:ignore storeerr close is best-effort deregistration; a stale key is overwritten on rejoin
			_ = m.st.Delete(m.addrKey)
		}
	})
	return first
}

func (m *tcpMesh) Close() error { return m.release() }

// Abort tears the mesh down so that in-flight Send/Recv — possibly
// blocked forever on a peer that will never answer — return promptly
// with errors wrapping ErrAborted. Each connection gets an immediate
// deadline before it is closed, covering writers parked inside the
// kernel send path as well as blocked readers. Idempotent, and safe to
// interleave with Close in either order.
func (m *tcpMesh) Abort() error {
	m.abortOnce.Do(func() { close(m.aborted) })
	now := time.Now()
	for _, p := range m.peers {
		if p != nil {
			_ = p.conn.SetDeadline(now)
		}
	}
	return m.release()
}

var _ Mesh = (*tcpMesh)(nil)
var _ Aborter = (*tcpMesh)(nil)
var _ HostLister = (*tcpMesh)(nil)
var _ ByteMesh = (*tcpMesh)(nil)
