package transport

import "repro/internal/metrics"

// Wire-level instruments, split by link locality: "cross" frames leave
// the machine (the traffic the hierarchical AllReduce exists to
// shrink), "local" frames stay on it (loopback between co-hosted
// ranks, and every in-process frame). Only successfully transferred
// frames are counted; byte counts include the 12-byte header on TCP
// links and are pure payload on the in-process mesh, which has no
// header.
var (
	mFramesSent = metrics.Default().CounterVec(
		"transport_frames_sent_total",
		"Frames written to peers, by link locality.", "link")
	mFramesRecv = metrics.Default().CounterVec(
		"transport_frames_received_total",
		"Frames read from peers, by link locality.", "link")
	mBytesSent = metrics.Default().CounterVec(
		"transport_bytes_sent_total",
		"Bytes written to peers (TCP: headers included), by link locality.", "link")
	mBytesRecv = metrics.Default().CounterVec(
		"transport_bytes_received_total",
		"Bytes read from peers (TCP: headers included), by link locality.", "link")
)

// linkCounters is one locality's pre-resolved instrument set, attached
// to each peer at mesh build so the per-frame hot path never takes the
// vec's map lookup.
type linkCounters struct {
	framesSent, framesRecv metrics.Counter
	bytesSent, bytesRecv   metrics.Counter
}

var (
	localLink = &linkCounters{
		framesSent: mFramesSent.With("local"), framesRecv: mFramesRecv.With("local"),
		bytesSent: mBytesSent.With("local"), bytesRecv: mBytesRecv.With("local"),
	}
	crossLink = &linkCounters{
		framesSent: mFramesSent.With("cross"), framesRecv: mFramesRecv.With("cross"),
		bytesSent: mBytesSent.With("cross"), bytesRecv: mBytesRecv.With("cross"),
	}
)

func linkFor(sameHost bool) *linkCounters {
	if sameHost {
		return localLink
	}
	return crossLink
}

func (lc *linkCounters) sent(bytes int) {
	lc.framesSent.Inc()
	lc.bytesSent.Add(float64(bytes))
}

func (lc *linkCounters) received(bytes int) {
	lc.framesRecv.Inc()
	lc.bytesRecv.Add(float64(bytes))
}
