package transport

import (
	"bytes"
	"errors"

	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// byteLaneMeshes builds a 3-rank mesh set per transport for the lane
// tests.
func byteLaneMeshes(t *testing.T, tr string) []Mesh {
	t.Helper()
	const world = 3
	switch tr {
	case "inproc":
		return NewInProcMeshes(world)
	case "tcp":
		st := store.NewInMem(10 * time.Second)
		t.Cleanup(func() { st.Close() })
		meshes := make([]Mesh, world)
		errs := make([]error, world)
		var wg sync.WaitGroup
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				meshes[r], errs[r] = NewTCPMesh(r, world, st, "bytelane")
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("mesh rank %d: %v", r, err)
			}
		}
		t.Cleanup(func() {
			for _, m := range meshes {
				m.Close()
			}
		})
		return meshes
	default:
		t.Fatalf("unknown transport %q", tr)
		return nil
	}
}

func TestByteLaneRoundTrip(t *testing.T) {
	payloads := [][]byte{
		{},
		{0xff},
		[]byte("seven bytes etc that are not a multiple of four"),
		bytes.Repeat([]byte{1, 2, 3}, 1000),
	}
	for _, tr := range []string{"inproc", "tcp"} {
		t.Run(tr, func(t *testing.T) {
			meshes := byteLaneMeshes(t, tr)
			bm0, ok := ByteLanes(meshes[0])
			if !ok {
				t.Fatalf("%s mesh reports no byte lanes", tr)
			}
			bm1, _ := ByteLanes(meshes[1])
			for tag, want := range payloads {
				errc := make(chan error, 1)
				go func(tag int, p []byte) {
					errc <- bm0.SendBytes(1, uint64(tag), p)
				}(tag, want)
				got, err := bm1.RecvBytes(0, uint64(tag))
				if err != nil {
					t.Fatalf("recv tag %d: %v", tag, err)
				}
				if err := <-errc; err != nil {
					t.Fatalf("send tag %d: %v", tag, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("tag %d: got %d bytes, want %d", tag, len(got), len(want))
				}
			}
		})
	}
}

// TestByteLaneInterleavesWithFloatFrames: both lanes share one link's
// FIFO, so alternating frame kinds must arrive in order on the right
// lane.
func TestByteLaneInterleavesWithFloatFrames(t *testing.T) {
	for _, tr := range []string{"inproc", "tcp"} {
		t.Run(tr, func(t *testing.T) {
			meshes := byteLaneMeshes(t, tr)
			bm0, _ := ByteLanes(meshes[0])
			bm1, _ := ByteLanes(meshes[1])
			go func() {
				for tag := uint64(0); tag < 6; tag += 2 {
					bm0.SendBytes(1, tag, []byte{byte(tag)})
					meshes[0].Send(1, tag+1, []float32{float32(tag)})
				}
			}()
			for tag := uint64(0); tag < 6; tag += 2 {
				raw, err := bm1.RecvBytes(0, tag)
				if err != nil || len(raw) != 1 || raw[0] != byte(tag) {
					t.Fatalf("byte frame tag %d: %v %v", tag, raw, err)
				}
				floats, err := meshes[1].Recv(0, tag+1)
				if err != nil || len(floats) != 1 || floats[0] != float32(tag) {
					t.Fatalf("float frame tag %d: %v %v", tag+1, floats, err)
				}
			}
		})
	}
}

// TestByteLaneMismatch: expecting the wrong frame kind is a schedule
// bug and must surface as LaneMismatchError, not corrupt data.
func TestByteLaneMismatch(t *testing.T) {
	for _, tr := range []string{"inproc", "tcp"} {
		t.Run(tr, func(t *testing.T) {
			meshes := byteLaneMeshes(t, tr)
			bm0, _ := ByteLanes(meshes[0])
			bm1, _ := ByteLanes(meshes[1])

			go bm0.SendBytes(1, 0, []byte{1, 2, 3})
			if _, err := meshes[1].Recv(0, 0); !errorsAsLane(err) {
				t.Fatalf("float recv of byte frame: %v", err)
			}
			go meshes[0].Send(1, 1, []float32{1})
			if _, err := bm1.RecvBytes(0, 1); !errorsAsLane(err) {
				t.Fatalf("byte recv of float frame: %v", err)
			}
		})
	}
}

func errorsAsLane(err error) bool {
	var lm *LaneMismatchError
	return errors.As(err, &lm)
}

// TestSubMeshByteLanePassthrough: views forward byte frames over the
// base mesh's links and report the base's capability.
func TestSubMeshByteLanePassthrough(t *testing.T) {
	meshes := NewInProcMeshes(3)
	subs := make([]Mesh, 2)
	for i, base := range meshes[:2] {
		var err error
		subs[i], err = NewSubMesh(base, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	bm0, ok := ByteLanes(subs[0])
	if !ok {
		t.Fatal("submesh over a byte-capable base must report byte lanes")
	}
	bm1, _ := ByteLanes(subs[1])
	go bm0.SendBytes(1, 7, []byte("hi"))
	got, err := bm1.RecvBytes(0, 7)
	if err != nil || string(got) != "hi" {
		t.Fatalf("submesh byte frame: %q %v", got, err)
	}

	// A view over a float-only base must NOT report byte lanes.
	sub, err := NewSubMesh(floatOnlyMesh{meshes[2]}, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ByteLanes(sub); ok {
		t.Fatal("submesh over a float-only base claims byte lanes")
	}
	if err := sub.(ByteMesh).SendBytes(0, 0, nil); err == nil {
		t.Fatal("SendBytes over a float-only base must error")
	}
}

// floatOnlyMesh hides a mesh's byte lanes (simulating a transport that
// has none).
type floatOnlyMesh struct{ m Mesh }

func (f floatOnlyMesh) Rank() int { return f.m.Rank() }
func (f floatOnlyMesh) Size() int { return f.m.Size() }
func (f floatOnlyMesh) Send(to int, tag uint64, data []float32) error {
	return f.m.Send(to, tag, data)
}
func (f floatOnlyMesh) Recv(from int, tag uint64) ([]float32, error) {
	return f.m.Recv(from, tag)
}
func (f floatOnlyMesh) Close() error { return f.m.Close() }

// TestByteLaneMismatchPreservesFraming: the TCP receiver drains a
// mismatched frame's payload, so the stream stays framed and the next
// frame is still readable.
func TestByteLaneMismatchPreservesFraming(t *testing.T) {
	meshes := byteLaneMeshes(t, "tcp")
	bm0, _ := ByteLanes(meshes[0])
	bm1, _ := ByteLanes(meshes[1])
	go func() {
		bm0.SendBytes(1, 0, []byte{1, 2, 3, 4, 5})
		bm0.SendBytes(1, 1, []byte("after"))
	}()
	if _, err := meshes[1].Recv(0, 0); !errorsAsLane(err) {
		t.Fatalf("expected lane mismatch, got %v", err)
	}
	got, err := bm1.RecvBytes(0, 1)
	if err != nil || string(got) != "after" {
		t.Fatalf("frame after mismatch: %q %v", got, err)
	}
}
