// Package transport provides point-to-point float32 message channels
// between ranks — the wire layer under the comm package's collective
// algorithms, playing the role NCCL/Gloo's transports play under their
// collectives.
//
// Two meshes are provided: an in-process mesh over Go channels for
// single-process multi-goroutine "ranks", and a TCP full mesh for real
// multi-process training. Collective algorithms issue matching
// Send/Recv pairs; each mesh guarantees per-peer FIFO ordering, and tags
// let the algorithms assert that both sides agree on which logical
// message is in flight (mismatches surface as errors rather than
// corrupted reductions — the failure mode of Fig 3(a) in the paper).
//
// # TCP wire format
//
// Every message is one frame, all fields little-endian:
//
//	[tag uint64][count uint32][payload]
//
// The 12-byte header carries the collective's tag (for ordering
// verification) and the payload size. Two frame kinds share the header:
// float frames (count = element count, payload = count x float32) and
// byte frames (the count field's high bit set, low 31 bits = payload
// length in bytes, payload = raw bytes — the ByteMesh lane compressed
// gradients ride). Frames are encoded and decoded in bulk: the sender
// serializes header+payload into one reused buffer and issues a single
// Write; the receiver issues one ReadFull for the header and one for
// the payload, then converts in a single pass. There is no per-element
// I/O anywhere on the hot path.
//
// During mesh construction, each rank additionally sends a handshake
// immediately after dialing: its own rank (uint32), then the host
// component of its published listener address as a length-prefixed
// string ([len uint32][len bytes]) — the single source every rank
// labels every peer's host from (see HostLister), so topology
// derivation cannot disagree across ranks on multi-homed machines.
//
// # Abort semantics
//
// Both meshes support cancellation of in-flight operations, the
// mechanism elastic recovery uses to free ranks blocked on a dead peer:
//
//   - TCP meshes implement Aborter. Abort sets an immediate deadline on
//     every connection and closes them (plus the listener), so blocked
//     Send/Recv return errors wrapping ErrAborted instead of waiting on
//     a peer that will never answer. Abort and Close are idempotent and
//     may interleave in either order; both delete the rank's address
//     key from the rendezvous store.
//   - TCP mesh construction is abortable via NewTCPMeshCancel: closing
//     the cancel channel unblocks the rendezvous Get, dial, and accept
//     paths, releases the listener and partial connections, and removes
//     the rank's store keys.
//   - The in-process mesh reaches the same end through Close: frame
//     channels are never closed, but each rank has a shared `closed`
//     signal that both its own pending operations and its peers' select
//     on.
package transport

import (
	"fmt"
	"sync"
)

// Mesh is one rank's view of its point-to-point connectivity.
type Mesh interface {
	// Rank returns this participant's index in [0, Size).
	Rank() int
	// Size returns the number of participants.
	Size() int
	// Send delivers data to peer `to` with the given tag. The data is
	// copied (or serialized) before Send returns; callers may reuse it.
	Send(to int, tag uint64, data []float32) error
	// Recv returns the next message from peer `from`, which must carry
	// the expected tag.
	Recv(from int, tag uint64) ([]float32, error)
	// Close releases the mesh's resources.
	Close() error
}

// Aborter is implemented by meshes that can cancel in-flight Send/Recv
// calls: Abort unblocks them with errors wrapping ErrAborted. Unlike
// Close, Abort is safe to call while peers are mid-collective on a dead
// rank — it is the transport half of comm.AbortGroup.
type Aborter interface {
	Abort() error
}

// ByteMesh is the byte-frame lane of a mesh: the same per-peer FIFO
// links that carry float32 frames also carry opaque byte payloads, so
// compressed gradient representations travel at their true wire size
// instead of being re-inflated to float32 (the comm package's
// CompressedAllReduce rides this lane). Byte frames and float frames
// share each link's ordering and tag verification; receiving one kind
// while the sender shipped the other is a lane mismatch and surfaces as
// an error, exactly like a tag mismatch.
type ByteMesh interface {
	// SendBytes delivers raw bytes to peer `to` with the given tag. Like
	// Send, the payload is copied (or fully written) before SendBytes
	// returns, so callers may reuse it.
	SendBytes(to int, tag uint64, data []byte) error
	// RecvBytes returns the next byte frame from peer `from`, which must
	// carry the expected tag.
	RecvBytes(from int, tag uint64) ([]byte, error)
}

// ByteLaneProber is implemented by meshes whose byte-lane support
// depends on something else (sub-meshes delegate to their base mesh;
// instrumentation wrappers delegate to what they wrap). ByteLanes
// consults it so a view over a float-only mesh is not mistaken for a
// byte-capable one just because the methods exist.
type ByteLaneProber interface {
	// HasByteLanes reports whether SendBytes/RecvBytes actually work.
	HasByteLanes() bool
}

// ByteLanes returns m's byte-frame lane when it has a working one. Both
// built-in meshes do; callers (the compressed collectives) fall back to
// float32 frames when it reports false.
func ByteLanes(m Mesh) (ByteMesh, bool) {
	bm, ok := m.(ByteMesh)
	if !ok {
		return nil, false
	}
	if p, ok := m.(ByteLaneProber); ok && !p.HasByteLanes() {
		return nil, false
	}
	return bm, true
}

// LaneMismatchError reports that a float32 frame arrived where a byte
// frame was expected (or vice versa) — the byte-lane analogue of a tag
// mismatch: the ranks' collective schedules disagree on the frame kind.
type LaneMismatchError struct {
	From    int
	WantRaw bool
	Tag     uint64
}

// Error names the expected and received lanes and the sending rank.
func (e *LaneMismatchError) Error() string {
	want, got := "byte", "float32"
	if !e.WantRaw {
		want, got = got, want
	}
	return fmt.Sprintf("transport: lane mismatch from rank %d at tag %d: expected a %s frame, got a %s frame (collective schedules disagree)", e.From, e.Tag, want, got)
}

// HostLister is implemented by meshes that know which host (machine)
// every rank runs on: Hosts returns one label per rank, index == rank.
// TCP meshes derive the labels from each rank's published rendezvous
// address; the comm layer turns them into a Topology so topology-aware
// collectives work without any extra configuration. The in-process
// mesh deliberately does not implement it — all its ranks share one
// process, so callers simulating multi-host layouts supply an explicit
// topology instead.
type HostLister interface {
	Hosts() []string
}

// TagMismatchError reports a collective-ordering violation: the message
// that arrived does not belong to the operation the receiver is running.
type TagMismatchError struct {
	From      int
	Want, Got uint64
}

// Error renders the mismatch with both tags and the sending rank, so a
// desynchronized schedule is diagnosable from the message alone.
func (e *TagMismatchError) Error() string {
	return fmt.Sprintf("transport: tag mismatch from rank %d: want %d, got %d (collective ordering violated)", e.From, e.Want, e.Got)
}

type frame struct {
	tag  uint64
	data []float32
	// raw/isRaw carry byte-lane frames (ByteMesh); isRaw distinguishes
	// an empty byte payload from a float frame.
	raw   []byte
	isRaw bool
}

// payloadLen is the frame's payload size in bytes (in-process frames
// carry no header), the sample the transport byte counters record.
func (f frame) payloadLen() int {
	if f.isRaw {
		return len(f.raw)
	}
	return 4 * len(f.data)
}

// inProcMesh is one rank's view of a shared channel matrix.
//
// Frame channels are never closed; instead each rank has a shared
// `closed` signal that both its own pending operations and its peers'
// select on. This is the abort path elastic recovery relies on: a rank
// blocked mid-collective on a dead peer — or a survivor told to tear
// its group down — unblocks with an error instead of deadlocking (the
// paper's Section 7 failure mode).
type inProcMesh struct {
	rank, size int
	// chans[from][to] carries frames from rank `from` to rank `to`.
	chans [][]chan frame
	// closed[r] is closed when rank r's view shuts down; shared by all
	// views so peers observe each other's departure.
	closed    []chan struct{}
	closeOnce *sync.Once
}

// NewInProcMeshes creates a fully-connected in-process mesh of n ranks
// and returns each rank's view. All views share the same channels.
func NewInProcMeshes(n int) []Mesh {
	chans := make([][]chan frame, n)
	for i := range chans {
		chans[i] = make([]chan frame, n)
		for j := range chans[i] {
			if i != j {
				chans[i][j] = make(chan frame, 128)
			}
		}
	}
	closed := make([]chan struct{}, n)
	for r := range closed {
		closed[r] = make(chan struct{})
	}
	meshes := make([]Mesh, n)
	for r := 0; r < n; r++ {
		meshes[r] = &inProcMesh{rank: r, size: n, chans: chans, closed: closed, closeOnce: new(sync.Once)}
	}
	return meshes
}

func (m *inProcMesh) Rank() int { return m.rank }
func (m *inProcMesh) Size() int { return m.size }

func (m *inProcMesh) Send(to int, tag uint64, data []float32) error {
	return m.send(to, frame{tag: tag, data: append([]float32(nil), data...)})
}

// SendBytes implements ByteMesh over the same frame channels as Send;
// byte and float frames share each link's FIFO order.
func (m *inProcMesh) SendBytes(to int, tag uint64, data []byte) error {
	return m.send(to, frame{tag: tag, raw: append([]byte(nil), data...), isRaw: true})
}

func (m *inProcMesh) send(to int, f frame) error {
	if to == m.rank || to < 0 || to >= m.size {
		return fmt.Errorf("transport: invalid send target %d from rank %d", to, m.rank)
	}
	select {
	case <-m.closed[m.rank]:
		return fmt.Errorf("transport: mesh closed at rank %d", m.rank)
	default:
	}
	select {
	case m.chans[m.rank][to] <- f:
		localLink.sent(f.payloadLen())
		return nil
	case <-m.closed[m.rank]:
		return fmt.Errorf("transport: mesh closed at rank %d", m.rank)
	case <-m.closed[to]:
		return fmt.Errorf("transport: peer rank %d closed", to)
	}
}

func (m *inProcMesh) Recv(from int, tag uint64) ([]float32, error) {
	f, err := m.recv(from, tag, false)
	if err != nil {
		return nil, err
	}
	return f.data, nil
}

// RecvBytes implements ByteMesh: it returns the next byte frame from
// the peer, erroring on tag or lane mismatches.
func (m *inProcMesh) RecvBytes(from int, tag uint64) ([]byte, error) {
	f, err := m.recv(from, tag, true)
	if err != nil {
		return nil, err
	}
	return f.raw, nil
}

func (m *inProcMesh) recv(from int, tag uint64, wantRaw bool) (frame, error) {
	if from == m.rank || from < 0 || from >= m.size {
		return frame{}, fmt.Errorf("transport: invalid recv source %d at rank %d", from, m.rank)
	}
	ch := m.chans[from][m.rank]
	// Drain buffered frames before honouring shutdown signals, so a
	// peer that completed its sends and then left cleanly does not turn
	// an orderly hand-off into an error.
	var f frame
	select {
	case f = <-ch:
	default:
		select {
		case f = <-ch:
		case <-m.closed[m.rank]:
			return frame{}, fmt.Errorf("transport: mesh closed at rank %d", m.rank)
		case <-m.closed[from]:
			// The peer may have delivered the frame concurrently with
			// closing; prefer the data if it is there.
			select {
			case f = <-ch:
			default:
				return frame{}, fmt.Errorf("transport: channel from rank %d closed", from)
			}
		}
	}
	if f.tag != tag {
		return frame{}, &TagMismatchError{From: from, Want: tag, Got: f.tag}
	}
	if f.isRaw != wantRaw {
		return frame{}, &LaneMismatchError{From: from, WantRaw: wantRaw, Tag: tag}
	}
	localLink.received(f.payloadLen())
	return f, nil
}

func (m *inProcMesh) Close() error {
	m.closeOnce.Do(func() { close(m.closed[m.rank]) })
	return nil
}

var _ ByteMesh = (*inProcMesh)(nil)
