package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func TestInProcSendRecv(t *testing.T) {
	meshes := NewInProcMeshes(2)
	go func() {
		meshes[0].Send(1, 7, []float32{1, 2, 3})
	}()
	got, err := meshes[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestInProcSendCopies(t *testing.T) {
	meshes := NewInProcMeshes(2)
	buf := []float32{1}
	meshes[0].Send(1, 0, buf)
	buf[0] = 99
	got, _ := meshes[1].Recv(0, 0)
	if got[0] != 1 {
		t.Fatal("Send must copy data")
	}
}

func TestInProcTagMismatch(t *testing.T) {
	meshes := NewInProcMeshes(2)
	meshes[0].Send(1, 1, []float32{1})
	_, err := meshes[1].Recv(0, 2)
	var tm *TagMismatchError
	if !errors.As(err, &tm) {
		t.Fatalf("err = %v, want TagMismatchError", err)
	}
	if tm.Want != 2 || tm.Got != 1 || tm.From != 0 {
		t.Fatalf("mismatch detail %+v", tm)
	}
}

func TestInProcInvalidPeers(t *testing.T) {
	meshes := NewInProcMeshes(2)
	if err := meshes[0].Send(0, 0, nil); err == nil {
		t.Fatal("self-send must fail")
	}
	if err := meshes[0].Send(5, 0, nil); err == nil {
		t.Fatal("out-of-range send must fail")
	}
	if _, err := meshes[0].Recv(0, 0); err == nil {
		t.Fatal("self-recv must fail")
	}
}

func TestInProcFIFOPerPeer(t *testing.T) {
	meshes := NewInProcMeshes(2)
	for i := 0; i < 10; i++ {
		meshes[0].Send(1, uint64(i), []float32{float32(i)})
	}
	for i := 0; i < 10; i++ {
		got, err := meshes[1].Recv(0, uint64(i))
		if err != nil || got[0] != float32(i) {
			t.Fatalf("message %d: %v, %v", i, got, err)
		}
	}
}

func TestInProcManyRanksExchange(t *testing.T) {
	const n = 5
	meshes := NewInProcMeshes(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Everyone sends its rank to everyone, then receives all.
			for to := 0; to < n; to++ {
				if to != rank {
					if err := meshes[rank].Send(to, 42, []float32{float32(rank)}); err != nil {
						errs <- err
						return
					}
				}
			}
			for from := 0; from < n; from++ {
				if from == rank {
					continue
				}
				got, err := meshes[rank].Recv(from, 42)
				if err != nil || got[0] != float32(from) {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func buildTCPMeshes(t *testing.T, world int) []Mesh {
	t.Helper()
	srv, err := store.ServeTCP("127.0.0.1:0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	meshes := make([]Mesh, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				errs[rank] = err
				return
			}
			m, err := NewTCPMesh(rank, world, client, "test")
			if err != nil {
				errs[rank] = err
				return
			}
			meshes[rank] = m
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

func TestTCPMeshPairwise(t *testing.T) {
	meshes := buildTCPMeshes(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for to := 0; to < 3; to++ {
				if to == rank {
					continue
				}
				if err := meshes[rank].Send(to, 9, []float32{float32(rank * 10)}); err != nil {
					errs <- err
					return
				}
			}
			for from := 0; from < 3; from++ {
				if from == rank {
					continue
				}
				got, err := meshes[rank].Recv(from, 9)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != float32(from*10) {
					errs <- errors.New("wrong payload")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPMeshLargePayload(t *testing.T) {
	meshes := buildTCPMeshes(t, 2)
	payload := make([]float32, 100_000)
	for i := range payload {
		payload[i] = float32(i)
	}
	done := make(chan error, 1)
	go func() { done <- meshes[0].Send(1, 3, payload) }()
	got, err := meshes[1].Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) || got[99_999] != 99_999 {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPMeshWorldOfOne(t *testing.T) {
	m, err := NewTCPMesh(0, 1, store.NewInMem(time.Second), "solo")
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.Rank() != 0 {
		t.Fatal("singleton mesh wrong")
	}
	m.Close()
}
