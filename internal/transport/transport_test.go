package transport

import (
	"errors"
	"net"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func TestInProcSendRecv(t *testing.T) {
	meshes := NewInProcMeshes(2)
	go func() {
		meshes[0].Send(1, 7, []float32{1, 2, 3})
	}()
	got, err := meshes[1].Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestInProcSendCopies(t *testing.T) {
	meshes := NewInProcMeshes(2)
	buf := []float32{1}
	meshes[0].Send(1, 0, buf)
	buf[0] = 99
	got, _ := meshes[1].Recv(0, 0)
	if got[0] != 1 {
		t.Fatal("Send must copy data")
	}
}

func TestInProcTagMismatch(t *testing.T) {
	meshes := NewInProcMeshes(2)
	meshes[0].Send(1, 1, []float32{1})
	_, err := meshes[1].Recv(0, 2)
	var tm *TagMismatchError
	if !errors.As(err, &tm) {
		t.Fatalf("err = %v, want TagMismatchError", err)
	}
	if tm.Want != 2 || tm.Got != 1 || tm.From != 0 {
		t.Fatalf("mismatch detail %+v", tm)
	}
}

func TestInProcInvalidPeers(t *testing.T) {
	meshes := NewInProcMeshes(2)
	if err := meshes[0].Send(0, 0, nil); err == nil {
		t.Fatal("self-send must fail")
	}
	if err := meshes[0].Send(5, 0, nil); err == nil {
		t.Fatal("out-of-range send must fail")
	}
	if _, err := meshes[0].Recv(0, 0); err == nil {
		t.Fatal("self-recv must fail")
	}
}

func TestInProcFIFOPerPeer(t *testing.T) {
	meshes := NewInProcMeshes(2)
	for i := 0; i < 10; i++ {
		meshes[0].Send(1, uint64(i), []float32{float32(i)})
	}
	for i := 0; i < 10; i++ {
		got, err := meshes[1].Recv(0, uint64(i))
		if err != nil || got[0] != float32(i) {
			t.Fatalf("message %d: %v, %v", i, got, err)
		}
	}
}

func TestInProcManyRanksExchange(t *testing.T) {
	const n = 5
	meshes := NewInProcMeshes(n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// Everyone sends its rank to everyone, then receives all.
			for to := 0; to < n; to++ {
				if to != rank {
					if err := meshes[rank].Send(to, 42, []float32{float32(rank)}); err != nil {
						errs <- err
						return
					}
				}
			}
			for from := 0; from < n; from++ {
				if from == rank {
					continue
				}
				got, err := meshes[rank].Recv(from, 42)
				if err != nil || got[0] != float32(from) {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func buildTCPMeshes(t *testing.T, world int) []Mesh {
	t.Helper()
	srv, err := store.ServeTCP("127.0.0.1:0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	meshes := make([]Mesh, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				errs[rank] = err
				return
			}
			m, err := NewTCPMesh(rank, world, client, "test")
			if err != nil {
				errs[rank] = err
				return
			}
			meshes[rank] = m
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}

func TestTCPMeshPairwise(t *testing.T) {
	meshes := buildTCPMeshes(t, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for to := 0; to < 3; to++ {
				if to == rank {
					continue
				}
				if err := meshes[rank].Send(to, 9, []float32{float32(rank * 10)}); err != nil {
					errs <- err
					return
				}
			}
			for from := 0; from < 3; from++ {
				if from == rank {
					continue
				}
				got, err := meshes[rank].Recv(from, 9)
				if err != nil {
					errs <- err
					return
				}
				if got[0] != float32(from*10) {
					errs <- errors.New("wrong payload")
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPMeshLargePayload(t *testing.T) {
	meshes := buildTCPMeshes(t, 2)
	payload := make([]float32, 100_000)
	for i := range payload {
		payload[i] = float32(i)
	}
	done := make(chan error, 1)
	go func() { done <- meshes[0].Send(1, 3, payload) }()
	got, err := meshes[1].Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payload) || got[99_999] != 99_999 {
		t.Fatal("large payload corrupted")
	}
}

func TestTCPMeshWorldOfOne(t *testing.T) {
	m, err := NewTCPMesh(0, 1, store.NewInMem(time.Second), "solo")
	if err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.Rank() != 0 {
		t.Fatal("singleton mesh wrong")
	}
	m.Close()
}

// ---- TCP fault paths -------------------------------------------------------

// TestTCPMeshAbortUnblocksRecv: a rank blocked in Recv on a peer that
// never sends (the Section 7 deadlock) must be freed by Abort with an
// error wrapping ErrAborted.
func TestTCPMeshAbortUnblocksRecv(t *testing.T) {
	meshes := buildTCPMeshes(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := meshes[0].Recv(1, 5)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // let Recv park inside the read

	aborter, ok := meshes[0].(Aborter)
	if !ok {
		t.Fatal("TCP mesh does not implement Aborter")
	}
	if err := aborter.Abort(); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Recv after abort = %v, want to wrap ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not unblock Recv")
	}
	// Post-abort operations fail fast, and repeated Abort/Close are safe.
	if err := meshes[0].Send(1, 0, []float32{1}); !errors.Is(err, ErrAborted) {
		t.Fatalf("Send after abort = %v, want ErrAborted", err)
	}
	if err := aborter.Abort(); err != nil {
		t.Fatalf("double Abort: %v", err)
	}
	if err := meshes[0].Close(); err != nil {
		t.Fatalf("Close after Abort: %v", err)
	}
}

// TestTCPMeshPeerDeathUnblocksRecv: the peer vanishes (its connections
// are torn down, as the OS does for a SIGKILLed process) while this
// rank is blocked receiving from it. The survivor must get an error,
// not hang.
func TestTCPMeshPeerDeathUnblocksRecv(t *testing.T) {
	meshes := buildTCPMeshes(t, 2)
	errCh := make(chan error, 1)
	go func() {
		_, err := meshes[0].Recv(1, 5)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	meshes[1].Close() // abrupt death of the peer
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv from a dead peer reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer death left Recv blocked")
	}
}

// TestTCPMeshTagMismatchAfterDesync: over real TCP, a frame carrying
// the wrong tag (two ranks disagreeing about which collective is in
// flight) surfaces as TagMismatchError rather than corrupt data.
func TestTCPMeshTagMismatchAfterDesync(t *testing.T) {
	meshes := buildTCPMeshes(t, 2)
	if err := meshes[0].Send(1, 7, []float32{1, 2}); err != nil {
		t.Fatal(err)
	}
	_, err := meshes[1].Recv(0, 8)
	var tm *TagMismatchError
	if !errors.As(err, &tm) {
		t.Fatalf("err = %v, want TagMismatchError", err)
	}
	if tm.From != 0 || tm.Want != 8 || tm.Got != 7 {
		t.Fatalf("mismatch detail %+v", tm)
	}
}

// TestTCPMeshBuildAbortReleasesResources is the "worker dies between
// seal and mesh build" scenario: two of three ranks start building, the
// third never arrives. Closing cancel must (a) unblock both builders
// promptly with ErrAborted, (b) release their listeners, and (c)
// delete their address keys from the store.
func TestTCPMeshBuildAbortReleasesResources(t *testing.T) {
	st := store.NewInMem(30 * time.Second)
	defer st.Close()
	cancel := make(chan struct{})

	errs := make(chan error, 2)
	for _, rank := range []int{0, 1} {
		go func(rank int) {
			_, err := NewTCPMeshCancel(rank, 3, st, "partial", cancel)
			errs <- err
		}(rank)
	}

	// Rank 0 and 1 have published their addresses and are now parked:
	// rank 0 accepting (expects ranks 1 AND 2), rank 1 accepting rank 2.
	addr0, err := st.Get("partial/addr/0")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	close(cancel)

	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, ErrAborted) {
				t.Fatalf("builder %d returned %v, want to wrap ErrAborted", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled mesh build did not unblock")
		}
	}

	// Listener released: dialing the published address must fail.
	if conn, err := net.Dial("tcp", string(addr0)); err == nil {
		conn.Close()
		t.Fatal("rank 0's listener still accepting after aborted build")
	}
	// Store keys released: a CAS with old==nil succeeds only on a
	// missing key.
	for _, rank := range []int{0, 1} {
		key := "partial/addr/" + strconv.Itoa(rank)
		if swapped, err := st.CompareAndSwap(key, nil, []byte("probe")); err != nil || !swapped {
			t.Fatalf("rank %d's address key survived the aborted build (swapped=%v, err=%v)", rank, swapped, err)
		}
	}
}

// TestTCPMeshBuildAbortDuringRendezvousGet: rank 1 blocks in store.Get
// for rank 0's address, which is never published. Cancellation must cut
// through the blocking store read itself.
func TestTCPMeshBuildAbortDuringRendezvousGet(t *testing.T) {
	st := store.NewInMem(30 * time.Second)
	defer st.Close()
	cancel := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := NewTCPMeshCancel(1, 2, st, "lonely", cancel)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want to wrap ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not cut through the rendezvous Get")
	}
}

// TestTCPMeshCloseReleasesStoreKey: an orderly Close also removes the
// rank's address key so long-lived jobs do not leak one key per mesh
// generation.
func TestTCPMeshCloseReleasesStoreKey(t *testing.T) {
	srv, err := store.ServeTCP("127.0.0.1:0", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	meshes := buildTCPMeshesOn(t, srv, 2, "closing")
	for _, m := range meshes {
		m.Close()
	}
	client, err := store.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	for _, rank := range []int{0, 1} {
		key := "closing/addr/" + strconv.Itoa(rank)
		if swapped, err := client.CompareAndSwap(key, nil, []byte("probe")); err != nil || !swapped {
			t.Fatalf("rank %d's address key survived Close (swapped=%v, err=%v)", rank, swapped, err)
		}
	}
}

// buildTCPMeshesOn is buildTCPMeshes against an existing store server
// and prefix (no cleanup of the meshes themselves).
func buildTCPMeshesOn(t *testing.T, srv *store.TCPServer, world int, prefix string) []Mesh {
	t.Helper()
	meshes := make([]Mesh, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				errs[rank] = err
				return
			}
			meshes[rank], errs[rank] = NewTCPMesh(rank, world, client, prefix)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return meshes
}
