package transport

import "fmt"

// subMesh is a rank-remapped view of a base mesh restricted to a
// subset of its ranks: local rank i is global rank ranks[i]. It is how
// collective algorithms carve intra-host groups and inter-host leader
// rings out of one fully-connected mesh without opening new
// connections — messages travel over the base mesh's existing links,
// tags pass through unchanged.
type subMesh struct {
	base  Mesh
	ranks []int // ascending global ranks; local index = position
	local int   // this rank's local index
}

// NewSubMesh returns a Mesh view of base restricted to the given
// global ranks, which must be strictly ascending, within range, and
// include base's own rank. The view is cheap (no I/O, no new
// connections) and ephemeral: Close is a no-op so the base mesh stays
// usable — sub-meshes are created per collective phase and simply
// dropped. Aborting the base mesh aborts every view's in-flight
// operations, since they share its links.
func NewSubMesh(base Mesh, ranks []int) (Mesh, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("transport: submesh needs at least one rank")
	}
	local := -1
	for i, r := range ranks {
		if r < 0 || r >= base.Size() {
			return nil, fmt.Errorf("transport: submesh rank %d out of range [0,%d)", r, base.Size())
		}
		if i > 0 && ranks[i-1] >= r {
			return nil, fmt.Errorf("transport: submesh ranks not strictly ascending at %d", i)
		}
		if r == base.Rank() {
			local = i
		}
	}
	if local < 0 {
		return nil, fmt.Errorf("transport: submesh %v does not include own rank %d", ranks, base.Rank())
	}
	return &subMesh{base: base, ranks: append([]int(nil), ranks...), local: local}, nil
}

func (s *subMesh) Rank() int { return s.local }
func (s *subMesh) Size() int { return len(s.ranks) }

func (s *subMesh) Send(to int, tag uint64, data []float32) error {
	if to < 0 || to >= len(s.ranks) {
		return fmt.Errorf("transport: invalid submesh send target %d from local rank %d", to, s.local)
	}
	return s.base.Send(s.ranks[to], tag, data)
}

func (s *subMesh) Recv(from int, tag uint64) ([]float32, error) {
	if from < 0 || from >= len(s.ranks) {
		return nil, fmt.Errorf("transport: invalid submesh recv source %d at local rank %d", from, s.local)
	}
	return s.base.Recv(s.ranks[from], tag)
}

// SendBytes forwards a byte-lane frame over the base mesh's link
// (ByteMesh); it errors when the base mesh has no byte lanes.
func (s *subMesh) SendBytes(to int, tag uint64, data []byte) error {
	if to < 0 || to >= len(s.ranks) {
		return fmt.Errorf("transport: invalid submesh send target %d from local rank %d", to, s.local)
	}
	bm, ok := ByteLanes(s.base)
	if !ok {
		return fmt.Errorf("transport: submesh base mesh has no byte lanes")
	}
	return bm.SendBytes(s.ranks[to], tag, data)
}

// RecvBytes receives a byte-lane frame over the base mesh's link
// (ByteMesh); it errors when the base mesh has no byte lanes.
func (s *subMesh) RecvBytes(from int, tag uint64) ([]byte, error) {
	if from < 0 || from >= len(s.ranks) {
		return nil, fmt.Errorf("transport: invalid submesh recv source %d at local rank %d", from, s.local)
	}
	bm, ok := ByteLanes(s.base)
	if !ok {
		return nil, fmt.Errorf("transport: submesh base mesh has no byte lanes")
	}
	return bm.RecvBytes(s.ranks[from], tag)
}

// HasByteLanes reports whether the base mesh carries byte frames
// (ByteLaneProber) — the view only forwards, it adds no capability.
func (s *subMesh) HasByteLanes() bool {
	_, ok := ByteLanes(s.base)
	return ok
}

// Close is a no-op: the view owns none of the base mesh's resources.
func (s *subMesh) Close() error { return nil }

var _ Mesh = (*subMesh)(nil)
var _ ByteMesh = (*subMesh)(nil)
var _ ByteLaneProber = (*subMesh)(nil)
