package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// The benchmarks quantify the bulk frame codec: the old wire path
// encoded and wrote float32s one element at a time (a 4-byte
// PutUint32 + bufio.Write per value); the current path serializes the
// whole frame into a reused buffer in one pass and issues a single
// Write. sendPerElementReference reproduces the old path exactly so
// the win stays measurable in-tree.

func sendPerElementReference(w *bufio.Writer, tag uint64, data []float32) error {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint64(hdr[0:8], tag)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [4]byte
	for _, v := range data {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// recvFrame reads and decodes one frame — the receive path, shared by
// the old and new senders.
func recvFrame(r io.Reader, scratch *[]byte) ([]float32, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint32(hdr[8:12])
	*scratch = grow(*scratch, 4*int(count))
	if _, err := io.ReadFull(r, *scratch); err != nil {
		return nil, err
	}
	out := make([]float32, count)
	decodePayload(*scratch, out)
	return out, nil
}

// loopbackPair returns two ends of a real TCP connection.
func loopbackPair(b *testing.B) (net.Conn, net.Conn) {
	b.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		conn net.Conn
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		b.Fatal(r.err)
	}
	b.Cleanup(func() { dial.Close(); r.conn.Close() })
	return dial, r.conn
}

var benchSizes = []int{1 << 10, 1 << 18, 1 << 20} // 4KB, 1MB, 4MB frames

// BenchmarkSendPerElementReference is the seed implementation's wire
// path: per-float32 encode+Write through bufio.
func BenchmarkSendPerElementReference(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", 4*n/1024), func(b *testing.B) {
			sender, receiver := loopbackPair(b)
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(i)
			}
			done := make(chan error, 1)
			go func() {
				var scratch []byte
				for i := 0; i < b.N; i++ {
					if _, err := recvFrame(receiver, &scratch); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			w := bufio.NewWriterSize(sender, 1<<16)
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sendPerElementReference(w, uint64(i), data); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkMeshSendBulk is the current path, measured through the real
// tcpMesh Send/Recv: one bulk encode, one Write, one ReadFull.
func BenchmarkMeshSendBulk(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("%dKB", 4*n/1024), func(b *testing.B) {
			meshes := buildBenchMeshes(b, 2)
			data := make([]float32, n)
			for i := range data {
				data[i] = float32(i)
			}
			done := make(chan error, 1)
			go func() {
				for i := 0; i < b.N; i++ {
					if _, err := meshes[1].Recv(0, uint64(i)); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
			b.SetBytes(int64(4 * n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := meshes[0].Send(1, uint64(i), data); err != nil {
					b.Fatal(err)
				}
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFrameEncode isolates the serialization itself (no network):
// bulk one-pass encode vs per-element encode into a discard writer.
func BenchmarkFrameEncode(b *testing.B) {
	const n = 1 << 18 // 1MB payload
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(i)
	}
	b.Run("bulk", func(b *testing.B) {
		buf := make([]byte, frameHeaderLen+4*n)
		b.SetBytes(int64(4 * n))
		for i := 0; i < b.N; i++ {
			encodeFrame(buf, uint64(i), data)
		}
	})
	b.Run("per-element", func(b *testing.B) {
		w := bufio.NewWriterSize(io.Discard, 1<<16)
		b.SetBytes(int64(4 * n))
		for i := 0; i < b.N; i++ {
			if err := sendPerElementReference(w, uint64(i), data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func buildBenchMeshes(b *testing.B, world int) []Mesh {
	b.Helper()
	srv, err := store.ServeTCP("127.0.0.1:0", 10*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })
	meshes := make([]Mesh, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			client, err := store.DialTCP(srv.Addr())
			if err != nil {
				errs[rank] = err
				return
			}
			meshes[rank], errs[rank] = NewTCPMesh(rank, world, client, "bench")
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		for _, m := range meshes {
			m.Close()
		}
	})
	return meshes
}
