package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func TestSubMeshRemapsRanks(t *testing.T) {
	meshes := NewInProcMeshes(6)
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	ranks := []int{1, 3, 4}
	subs := make([]Mesh, len(ranks))
	for i, r := range ranks {
		s, err := NewSubMesh(meshes[r], ranks)
		if err != nil {
			t.Fatalf("submesh at global rank %d: %v", r, err)
		}
		if s.Rank() != i || s.Size() != len(ranks) {
			t.Fatalf("global %d: local rank/size = %d/%d, want %d/%d", r, s.Rank(), s.Size(), i, len(ranks))
		}
		subs[i] = s
	}
	// Ring exchange in local rank space: i sends to (i+1)%3.
	var wg sync.WaitGroup
	errs := make([]error, len(subs))
	vals := make([]float32, len(subs))
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s Mesh) {
			defer wg.Done()
			if err := s.Send((i+1)%len(ranks), 7, []float32{float32(i)}); err != nil {
				errs[i] = err
				return
			}
			buf, err := s.Recv((i-1+len(ranks))%len(ranks), 7)
			if err != nil {
				errs[i] = err
				return
			}
			vals[i] = buf[0]
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("local rank %d: %v", i, err)
		}
		want := float32((i - 1 + len(ranks)) % len(ranks))
		if vals[i] != want {
			t.Fatalf("local rank %d received %v, want %v", i, vals[i], want)
		}
	}
	// Close of the view must not close the base mesh.
	subs[0].Close()
	if err := meshes[1].Send(2, 9, []float32{1}); err != nil {
		t.Fatalf("base mesh unusable after submesh close: %v", err)
	}
}

func TestSubMeshValidation(t *testing.T) {
	meshes := NewInProcMeshes(4)
	defer func() {
		for _, m := range meshes {
			m.Close()
		}
	}()
	if _, err := NewSubMesh(meshes[0], nil); err == nil {
		t.Fatal("empty rank list accepted")
	}
	if _, err := NewSubMesh(meshes[0], []int{0, 4}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewSubMesh(meshes[0], []int{0, 2, 2}); err == nil {
		t.Fatal("non-ascending ranks accepted")
	}
	if _, err := NewSubMesh(meshes[0], []int{1, 2}); err == nil {
		t.Fatal("rank list excluding own rank accepted")
	}
	s, err := NewSubMesh(meshes[0], []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Send(5, 0, nil); err == nil {
		t.Fatal("out-of-range local send target accepted")
	}
	if _, err := s.Recv(-1, 0); err == nil {
		t.Fatal("out-of-range local recv source accepted")
	}
}

func TestTCPMeshDerivesHosts(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	const world = 3
	meshes := make([]Mesh, world)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			meshes[r], errs[r] = NewTCPMesh(r, world, st, "hosts-test")
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		defer meshes[r].Close()
	}
	for r, m := range meshes {
		hl, ok := m.(HostLister)
		if !ok {
			t.Fatalf("rank %d: TCP mesh does not implement HostLister", r)
		}
		hosts := hl.Hosts()
		if len(hosts) != world {
			t.Fatalf("rank %d: %d host labels for world %d", r, len(hosts), world)
		}
		for peer, h := range hosts {
			// Everything runs on loopback here, so every derived label
			// must agree — the single-host case hierarchical collapses on.
			if h != "127.0.0.1" {
				t.Fatalf("rank %d: host of rank %d = %q, want 127.0.0.1", r, peer, h)
			}
		}
	}
}

func TestSingletonTCPMeshHasHosts(t *testing.T) {
	st := store.NewInMem(time.Second)
	defer st.Close()
	m, err := NewTCPMesh(0, 1, st, "single")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if hosts := m.(HostLister).Hosts(); len(hosts) != 1 {
		t.Fatalf("singleton hosts = %v", hosts)
	}
}
