package ckpt

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/testutil"
)

func testModel(seed int64) nn.Module { return models.NewMLP(seed, 8, 16, 4) }

// newTestState builds a model+optimizer pair with non-trivial state:
// parameters from seed, momentum from one fake step.
func newTestState(t testing.TB, seed int64) (nn.Module, *optim.SGD) {
	t.Helper()
	m := testModel(seed)
	opt := optim.NewSGD(m.Parameters(), 0.1)
	opt.Momentum = 0.9
	for _, p := range m.Parameters() {
		p.Grad = tensor.Ones(p.Value.Shape()...)
	}
	opt.Step()
	opt.ZeroGrad()
	return m, opt
}

func captureTest(t testing.TB, m nn.Module, opt optim.Optimizer, meta Meta) *Snapshot {
	t.Helper()
	snap, err := Capture(m, opt, meta)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// saveWorld runs one full sharded save: `world` goroutines, each
// persisting its shard of the same snapshot through a shared
// StoreCommitter — the in-process analogue of `world` ranks saving in
// parallel.
func saveWorld(t testing.TB, w *Writer, snap *Snapshot, world int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = w.Save(snap, r, world, nil)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d save: %v", r, err)
		}
	}
}

func newTestWriter(t testing.TB, dir string) *Writer {
	t.Helper()
	return &Writer{
		Dir:       dir,
		Committer: &StoreCommitter{St: store.NewInMem(10 * time.Second), Timeout: 10 * time.Second},
	}
}

func paramsOf(m nn.Module) []float32 {
	var out []float32
	for _, p := range m.Parameters() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

func sameFloats(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, opt := newTestState(t, 1)
	meta := Meta{Step: 7, Generation: 2, World: 3, Seed: 42}
	w := newTestWriter(t, dir)
	saveWorld(t, w, captureTest(t, m, opt, meta), 3)

	m2, opt2 := newTestState(t, 99) // different init and momentum
	got, err := Restore(dir, m2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if got != meta {
		t.Fatalf("restored meta %+v, want %+v", got, meta)
	}
	if !sameFloats(paramsOf(m2), paramsOf(m)) {
		t.Fatal("restored parameters differ from saved")
	}
	if !sameFloats(opt2.FlatState(), opt.FlatState()) {
		t.Fatal("restored optimizer state differs from saved")
	}
}

func TestCheckpointReshardAcrossWorldSizes(t *testing.T) {
	// Save sharded N ways, restore with no knowledge of N: the manifest
	// alone reconstructs the blob, so a differently-sized (or
	// single-process) successor world reads it identically.
	m, opt := newTestState(t, 3)
	want := paramsOf(m)
	for _, world := range []int{1, 2, 3, 5, 8} {
		dir := t.TempDir()
		w := newTestWriter(t, dir)
		saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 5, World: world}), world)
		m2, opt2 := newTestState(t, 77)
		meta, err := Restore(dir, m2, opt2)
		if err != nil {
			t.Fatalf("world %d: %v", world, err)
		}
		if meta.Step != 5 || meta.World != world {
			t.Fatalf("world %d: restored meta %+v", world, meta)
		}
		if !sameFloats(paramsOf(m2), want) {
			t.Fatalf("world %d: restored parameters differ", world)
		}
	}
}

func TestShardRangeCoversBlobExactly(t *testing.T) {
	for _, blobLen := range []int64{0, 1, 7, 52, 1 << 20} {
		for _, world := range []int{1, 2, 3, 7, 64} {
			var next int64
			for r := 0; r < world; r++ {
				off, n := ShardRange(blobLen, r, world)
				if off != next || n < 0 {
					t.Fatalf("blob %d world %d rank %d: range (%d,%d), want offset %d", blobLen, world, r, off, n, next)
				}
				next += n
			}
			if next != blobLen {
				t.Fatalf("blob %d world %d: shards cover %d", blobLen, world, next)
			}
		}
	}
}

func TestCheckpointRetention(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, dir)
	w.Keep = 2
	m, opt := newTestState(t, 1)
	for step := int64(1); step <= 5; step++ {
		saveWorld(t, w, captureTest(t, m, opt, Meta{Step: step, World: 2}), 2)
	}
	names, err := manifestNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 {
		t.Fatalf("retention kept %d manifests (%v), want 2", len(names), names)
	}
	meta, err := LatestMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 5 {
		t.Fatalf("latest checkpoint at step %d, want 5", meta.Step)
	}
	// Shards of pruned checkpoints are gone too.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if g, s, ok := parseCheckpointName(e.Name()); ok && s < 4 {
			t.Errorf("stale file survived retention: %s (g%d s%d)", e.Name(), g, s)
		}
	}
}

func TestCheckpointRetentionIgnoresCorruptManifests(t *testing.T) {
	// Keep=2 defends against at-rest corruption only if a corrupt
	// manifest cannot occupy a retention slot: with checkpoints at
	// steps 10 and 20 and the step-20 manifest bit-flipped, the save at
	// step 30 must retain {10, 30} — not evict the run's only valid
	// fallback in favour of the corpse.
	dir := t.TempDir()
	w := newTestWriter(t, dir)
	w.Keep = 2
	m, opt := newTestState(t, 1)
	wantOld := paramsOf(m)
	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 10, World: 2}), 2)
	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 20, World: 2}), 2)

	path := filepath.Join(dir, manifestFileName(0, 20))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 30, World: 2}), 2)

	// Step 10 survived retention...
	if _, err := os.Stat(filepath.Join(dir, manifestFileName(0, 10))); err != nil {
		t.Fatalf("valid fallback checkpoint was evicted by a corrupt manifest: %v", err)
	}
	// ...and is actually reachable when step 30 is damaged too.
	if err := os.Remove(filepath.Join(dir, manifestFileName(0, 30))); err != nil {
		t.Fatal(err)
	}
	m2, opt2 := newTestState(t, 50)
	meta, err := Restore(dir, m2, opt2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 10 {
		t.Fatalf("restored step %d, want fallback to 10", meta.Step)
	}
	if !sameFloats(paramsOf(m2), wantOld) {
		t.Fatal("fallback checkpoint not bitwise intact")
	}
}

func TestLoadEmptyAndMissingDir(t *testing.T) {
	if _, _, err := Load(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v, want ErrNoCheckpoint", err)
	}
	if _, _, err := Load(filepath.Join(t.TempDir(), "never-created")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v, want ErrNoCheckpoint", err)
	}
}

// corruptions is the table of ways a checkpoint can be damaged on disk.
// Every case must (a) make that checkpoint fail validation loudly, and
// (b) leave the previous committed checkpoint fully loadable.
var corruptions = []struct {
	name    string
	damage  func(t *testing.T, dir string, m *Manifest)
	errWant string // substring the loud failure must contain
}{
	{
		name: "truncated shard",
		damage: func(t *testing.T, dir string, m *Manifest) {
			path := filepath.Join(dir, m.Shards[1].File)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		errWant: "truncated",
	},
	{
		name: "bit-flipped shard payload",
		damage: func(t *testing.T, dir string, m *Manifest) {
			path := filepath.Join(dir, m.Shards[0].File)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[shardHeaderLen+int(m.Shards[0].Length)/2] ^= 0x10
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		errWant: "crc32",
	},
	{
		name: "missing manifest",
		damage: func(t *testing.T, dir string, m *Manifest) {
			name := manifestFileName(m.Meta.Generation, m.Meta.Step)
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				t.Fatal(err)
			}
		},
		errWant: "", // no manifest: the checkpoint simply is not committed
	},
	{
		name: "manifest references absent shard",
		damage: func(t *testing.T, dir string, m *Manifest) {
			if err := os.Remove(filepath.Join(dir, m.Shards[2].File)); err != nil {
				t.Fatal(err)
			}
		},
		errWant: "no such file",
	},
	{
		name: "bit-flipped manifest",
		damage: func(t *testing.T, dir string, m *Manifest) {
			path := filepath.Join(dir, manifestFileName(m.Meta.Generation, m.Meta.Step))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		errWant: "corrupt",
	},
}

func TestCheckpointCorruptionFallsBackToPrevious(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := newTestWriter(t, dir)
			m, opt := newTestState(t, 1)
			wantOld := paramsOf(m)
			// Two committed checkpoints: step 10 (will stay good) and
			// step 20 (will be damaged). Different model states so a
			// wrong pick is detectable.
			saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 10, World: 3}), 3)
			for _, p := range m.Parameters() {
				p.Grad = tensor.Ones(p.Value.Shape()...)
			}
			opt.Step()
			opt.ZeroGrad()
			saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 20, World: 3}), 3)

			_, newest, err := Load(dir)
			if err != nil || newest.Meta.Step != 20 {
				t.Fatalf("precondition: newest = %+v, err %v", newest, err)
			}
			tc.damage(t, dir, newest)

			// The damaged checkpoint must not load; the run falls back
			// to the previous committed one, bitwise intact.
			m2, opt2 := newTestState(t, 50)
			meta, err := Restore(dir, m2, opt2)
			if err != nil {
				t.Fatalf("fallback restore failed: %v", err)
			}
			if meta.Step != 10 {
				t.Fatalf("restored step %d, want fallback to 10", meta.Step)
			}
			if !sameFloats(paramsOf(m2), wantOld) {
				t.Fatal("fallback checkpoint not bitwise intact")
			}
		})
	}
}

func TestCheckpointCorruptionFailsLoudlyWhenNoFallback(t *testing.T) {
	for _, tc := range corruptions {
		if tc.errWant == "" {
			continue // removing the only manifest is a cold start, not corruption
		}
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := newTestWriter(t, dir)
			m, opt := newTestState(t, 1)
			saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 20, World: 3}), 3)
			_, newest, err := Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			tc.damage(t, dir, newest)
			_, _, err = Load(dir)
			if err == nil {
				t.Fatal("corrupted sole checkpoint loaded successfully")
			}
			if errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("corruption reported as cold start: %v", err)
			}
			if !strings.Contains(err.Error(), tc.errWant) {
				t.Fatalf("error %q does not mention %q", err, tc.errWant)
			}
		})
	}
}

func TestTornCommitIsNeverLoaded(t *testing.T) {
	// Simulate the all-ranks-die-mid-save crash: shards (some of them)
	// and a .tmp- manifest exist, but the rename never happened. The
	// directory must read as the previous checkpoint.
	dir := t.TempDir()
	w := newTestWriter(t, dir)
	m, opt := newTestState(t, 1)
	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 10, World: 2}), 2)

	// Hand-craft the torn step-20 save: one shard of two, plus a
	// manifest that only reached its tmp name.
	snap := captureTest(t, m, opt, Meta{Step: 20, World: 2})
	blob := snap.Bytes()
	off, n := ShardRange(int64(len(blob)), 0, 2)
	if _, err := writeShardFile(dir, shardHeader{
		Version: FormatVersion, Step: 20, World: 2, Rank: 0,
		Offset: uint64(off), Length: uint64(n),
	}, blob[off:off+n]); err != nil {
		t.Fatal(err)
	}
	enc, err := encodeManifest(&Manifest{Version: FormatVersion, Meta: snap.Meta, World: 2, BlobBytes: int64(len(blob))})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+manifestFileName(0, 20)), enc, 0o644); err != nil {
		t.Fatal(err)
	}

	meta, err := LatestMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 10 {
		t.Fatalf("torn commit was loaded: restored step %d, want 10", meta.Step)
	}
}

func TestAsyncWriterCommitsInOrderAndDrains(t *testing.T) {
	dir := t.TempDir()
	w := newTestWriter(t, dir)
	w.Keep = 10
	m, opt := newTestState(t, 1)
	aws := make([]*AsyncWriter, 2)
	for r := range aws {
		aws[r] = NewAsyncWriter(w)
	}
	for step := int64(1); step <= 4; step++ {
		snap := captureTest(t, m, opt, Meta{Step: step, World: 2})
		for r, aw := range aws {
			if err := aw.Submit(snap, r, 2, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, aw := range aws {
		if err := aw.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := aw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	names, err := manifestNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 4 {
		t.Fatalf("%d checkpoints committed (%v), want 4", len(names), names)
	}
	meta, err := LatestMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != 4 {
		t.Fatalf("latest step %d, want 4", meta.Step)
	}
}

func TestAbandonedSaveLeavesNoCommit(t *testing.T) {
	// Rank 0 alone saves a 2-world checkpoint; rank 1's shard never
	// arrives. Canceling must abandon the save (ErrAbandoned) and leave
	// the directory without a new commit.
	dir := t.TempDir()
	w := newTestWriter(t, dir)
	m, opt := newTestState(t, 1)
	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 5, World: 2}), 2)

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- w.Save(captureTest(t, m, opt, Meta{Step: 9, World: 2}), 0, 2, cancel)
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	if err := <-done; !errors.Is(err, ErrAbandoned) {
		t.Fatalf("canceled save returned %v, want ErrAbandoned", err)
	}
	meta, err := LatestMeta(dir)
	if err != nil || meta.Step != 5 {
		t.Fatalf("directory shows step %d err %v, want committed step 5 only", meta.Step, err)
	}
}

func TestStateBlobIsDeterministicAcrossCaptures(t *testing.T) {
	// The sharded format is sound only if every rank produces the same
	// blob bytes for the same logical state; two independent captures of
	// equal state stand in for two ranks.
	mA, optA := newTestState(t, 4)
	mB, optB := newTestState(t, 4)
	a := captureTest(t, mA, optA, Meta{Step: 3, World: 2})
	b := captureTest(t, mB, optB, Meta{Step: 3, World: 2})
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("equal training state produced different blobs")
	}
}

// ---- benchmarks ------------------------------------------------------------

// benchStep stands in for a training step's compute so the benchmark
// measures checkpoint overhead relative to real work on the hot path.
func benchStep(m nn.Module, opt *optim.SGD) {
	for _, p := range m.Parameters() {
		if p.Grad == nil {
			p.Grad = tensor.Ones(p.Value.Shape()...)
		}
	}
	opt.Step()
	opt.ZeroGrad()
}

// BenchmarkSyncVsAsyncSave quantifies tentpole claim (3): the per-step
// overhead of periodic checkpointing (every benchSaveEvery steps, the
// realistic cadence) when the persistence runs synchronously in-loop
// (capture + fsync + commit on the hot path) vs asynchronously (only
// the capture memcpy on the hot path). One op is one training step;
// compare both against the nosave baseline.
func BenchmarkSyncVsAsyncSave(b *testing.B) {
	const benchSaveEvery = 25
	mkModel := func() (nn.Module, *optim.SGD) {
		m := models.NewMLP(1, 64, 256, 10)
		opt := optim.NewSGD(m.Parameters(), 0.1)
		opt.Momentum = 0.9
		return m, opt
	}
	b.Run("sync", func(b *testing.B) {
		m, opt := mkModel()
		w := newTestWriter(b, b.TempDir())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchStep(m, opt)
			if (i+1)%benchSaveEvery == 0 {
				snap := captureTest(b, m, opt, Meta{Step: int64(i + 1), World: 1})
				if err := w.Save(snap, 0, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("async", func(b *testing.B) {
		m, opt := mkModel()
		w := newTestWriter(b, b.TempDir())
		aw := NewAsyncWriter(w)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchStep(m, opt)
			if (i+1)%benchSaveEvery == 0 {
				snap := captureTest(b, m, opt, Meta{Step: int64(i + 1), World: 1})
				if err := aw.Submit(snap, 0, 1, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		if err := aw.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("nosave", func(b *testing.B) {
		m, opt := mkModel()
		for i := 0; i < b.N; i++ {
			benchStep(m, opt)
		}
	})
}

// TestCheckpointRestoreDuringConcurrentRetentionSweep races Keep-based
// pruning against restores: while a saver commits a stream of new
// checkpoints (each Save triggering the retention sweep), concurrent
// readers Load and Restore nonstop. Because prune removes a victim's
// manifest before its shards, a reader must never observe a
// half-deleted candidate — every Load succeeds, lands on a committed
// step, and round-trips the exact saved bits. This is the
// goroutine-interleaved extension of the corruption tables: the
// "corruption" here is a sweep caught mid-unlink, and -race patrols
// the interleavings.
func TestCheckpointRestoreDuringConcurrentRetentionSweep(t *testing.T) {
	dir := t.TempDir()
	rng := testutil.SeededRand(t)
	m, opt := newTestState(t, 5)
	wantParams := paramsOf(m)
	wantOpt := opt.FlatState()

	w := newTestWriter(t, dir)
	w.Keep = 3

	const rounds = 30
	// Seed the directory so readers always have something committed.
	saveWorld(t, w, captureTest(t, m, opt, Meta{Step: 1, World: 1}), 1)

	stop := make(chan struct{})
	var readerErr error
	var readerOnce sync.Once
	var wg sync.WaitGroup
	reader := func(restoreEvery int) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if restoreEvery > 0 && i%restoreEvery == 0 {
				m2, opt2 := newTestState(t, 99)
				meta, err := Restore(dir, m2, opt2)
				if err != nil {
					readerOnce.Do(func() { readerErr = err })
					return
				}
				if meta.Step < 1 || meta.Step > rounds+1 {
					readerOnce.Do(func() { readerErr = errors.New("restored step out of committed range") })
					return
				}
				if !sameFloats(paramsOf(m2), wantParams) || !sameFloats(opt2.FlatState(), wantOpt) {
					readerOnce.Do(func() { readerErr = errors.New("restore observed torn checkpoint state") })
					return
				}
				continue
			}
			if _, _, err := Load(dir); err != nil {
				readerOnce.Do(func() { readerErr = err })
				return
			}
		}
	}
	wg.Add(2)
	go reader(0) // Load-only hot loop
	go reader(1) // full Restore every iteration

	for step := int64(2); step <= rounds+1; step++ {
		// Vary the world so sweeps delete different shard layouts.
		world := 1 + rng.Intn(3)
		saveWorld(t, w, captureTest(t, m, opt, Meta{Step: step, World: world}), world)
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatalf("concurrent restore observed a half-deleted checkpoint: %v", readerErr)
	}
}
