package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Writer persists sharded checkpoints into one directory. Every rank of
// a world holds an identical Writer (same Dir, same Committer) and
// calls Save with the same snapshot sequence; each call writes only the
// calling rank's slice of the state blob, so wall-clock checkpoint cost
// scales down with world size instead of serializing through rank 0.
//
// Writer itself is synchronous; wrap it in an AsyncWriter to move the
// file I/O off the training hot path.
type Writer struct {
	// Dir is the checkpoint directory, created on first use. All ranks
	// must resolve it to the same storage (shared filesystem, or one
	// host) for restore to see every shard.
	Dir string
	// Committer coordinates the all-shards-durable point; required.
	Committer Committer
	// Keep is how many committed checkpoints to retain (default 2 — the
	// newest plus one fallback, so a checkpoint corrupted at rest never
	// strands the run with nothing to load).
	Keep int
	// Fault, when non-nil, is consulted before every shard and manifest
	// write — the fault-injection seam chaos tests use to model slow or
	// failing checkpoint disks. Nil (no interception) in production.
	Fault FaultHook
}

// FaultHook intercepts checkpoint disk writes for fault injection. A
// hook that sleeps models a slow disk; a hook that returns an error
// fails the write exactly where a full or dying disk would, before any
// bytes land. The hook runs on the saving goroutine (the training
// thread for synchronous saves, the AsyncWriter goroutine otherwise).
type FaultHook interface {
	// BeforeWrite is called with the target file's base name
	// immediately before a shard or manifest write begins.
	BeforeWrite(name string) error
}

// Save persists rank's shard of the snapshot and, on rank 0, commits
// the checkpoint: after the Committer reports every shard durable, the
// manifest is atomically renamed into place and older checkpoints
// beyond Keep are pruned. A crash anywhere before the manifest rename
// leaves the directory's previously committed checkpoints untouched and
// fully loadable.
//
// Closing cancel (may be nil) abandons a save blocked at the commit
// barrier with ErrAbandoned — the elastic agent does this when the
// generation moves past the save's, because a dead peer's shard would
// otherwise be waited for until the Committer's timeout.
func (w *Writer) Save(snap *Snapshot, rank, world int, cancel <-chan struct{}) error {
	if w.Committer == nil {
		return fmt.Errorf("ckpt: Writer.Committer is required")
	}
	if rank < 0 || world <= 0 || rank >= world {
		return fmt.Errorf("ckpt: invalid shard identity rank %d of world %d", rank, world)
	}
	if err := os.MkdirAll(w.Dir, 0o755); err != nil {
		return fmt.Errorf("ckpt: creating checkpoint dir: %w", err)
	}
	start := time.Now()
	blob := snap.Bytes()
	meta := snap.Meta
	off, length := ShardRange(int64(len(blob)), rank, world)
	h := shardHeader{
		Version:    FormatVersion,
		Generation: int64(meta.Generation),
		Step:       meta.Step,
		World:      uint32(world),
		Rank:       uint32(rank),
		Offset:     uint64(off),
		Length:     uint64(length),
	}
	if w.Fault != nil {
		if err := w.Fault.BeforeWrite(shardFileName(meta.Generation, meta.Step, rank, world)); err != nil {
			return fmt.Errorf("ckpt: shard write fault: %w", err)
		}
	}
	if _, err := writeShardFile(w.Dir, h, blob[off:off+length]); err != nil {
		return err
	}
	if err := w.Committer.Done(meta.Generation, meta.Step, rank, world, cancel); err != nil {
		if !errors.Is(err, ErrAbandoned) {
			mCommitFailures.Inc()
		}
		return err
	}
	if rank == 0 {
		if err := w.commit(meta, world, int64(len(blob))); err != nil {
			mCommitFailures.Inc()
			return err
		}
	}
	dur := time.Since(start)
	mSaveDur.Observe(dur.Seconds())
	mSaveBytes.Observe(float64(length))
	mLastSaveDur.Set(dur.Seconds())
	mLastSaveBytes.Set(float64(length))
	mLastSavedStep.Set(float64(meta.Step))
	return nil
}

// commit is rank 0's post-barrier duty: sanity-check every shard's
// presence and size, atomically publish the manifest, and prune old
// checkpoints.
func (w *Writer) commit(meta Meta, world int, blobLen int64) error {
	m := &Manifest{
		Version:   FormatVersion,
		Meta:      meta,
		World:     world,
		BlobBytes: blobLen,
		Shards:    make([]ShardRef, world),
	}
	for r := 0; r < world; r++ {
		off, length := ShardRange(blobLen, r, world)
		ref := ShardRef{
			File:     shardFileName(meta.Generation, meta.Step, r, world),
			Rank:     r,
			Offset:   off,
			Length:   length,
			FileSize: shardFileSize(length),
		}
		// The barrier said this shard is durable; a stat mismatch here
		// means the world disagrees about the save (e.g. divergent blob
		// lengths) — refuse to commit a checkpoint that could not load.
		fi, err := os.Stat(filepath.Join(w.Dir, ref.File))
		if err != nil {
			return fmt.Errorf("ckpt: shard missing at commit: %w", err)
		}
		if fi.Size() != ref.FileSize {
			return fmt.Errorf("ckpt: shard %s is %d bytes at commit, want %d (divergent state blobs?)",
				ref.File, fi.Size(), ref.FileSize)
		}
		m.Shards[r] = ref
	}
	enc, err := encodeManifest(m)
	if err != nil {
		return err
	}
	if w.Fault != nil {
		if err := w.Fault.BeforeWrite(manifestFileName(meta.Generation, meta.Step)); err != nil {
			return fmt.Errorf("ckpt: manifest write fault: %w", err)
		}
	}
	if err := writeFileAtomic(w.Dir, manifestFileName(meta.Generation, meta.Step), enc); err != nil {
		return err
	}
	w.prune()
	return nil
}

// checkpointID orders checkpoints: by step, then generation (a retried
// step re-saved under a later generation supersedes the earlier save).
type checkpointID struct {
	step int64
	gen  int
}

func (a checkpointID) less(b checkpointID) bool {
	if a.step != b.step {
		return a.step < b.step
	}
	return a.gen < b.gen
}

// prune deletes committed checkpoints beyond the Keep newest, plus any
// shard or .tmp- leftovers older than the oldest kept checkpoint
// (abandoned saves whose manifest never landed). Best-effort: a failed
// unlink leaves garbage, never breaks a live checkpoint — manifests are
// removed before their shards, so a half-pruned checkpoint is simply
// invisible rather than torn.
func (w *Writer) prune() {
	keep := w.Keep
	if keep <= 0 {
		keep = 2
	}
	entries, err := os.ReadDir(w.Dir)
	if err != nil {
		return
	}
	var committed []checkpointID
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".manifest") && !strings.HasPrefix(name, tmpPrefix) {
			if g, s, ok := parseCheckpointName(name); ok {
				// Only manifests that actually validate count toward
				// Keep: a manifest corrupted at rest must not occupy a
				// retention slot and push the run's real fallback
				// checkpoint out of the window. (Manifests are small;
				// this is a cheap read, not a shard scan.)
				if m, err := readManifestFile(filepath.Join(w.Dir, name)); err != nil || validateManifest(m) != nil {
					continue
				}
				committed = append(committed, checkpointID{step: s, gen: g})
			}
		}
	}
	if len(committed) <= keep {
		return
	}
	sort.Slice(committed, func(i, j int) bool { return committed[i].less(committed[j]) })
	oldestKept := committed[len(committed)-keep]
	// First pass: invalidate stale checkpoints by removing their
	// manifests, before touching any shard.
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".manifest") || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		if g, s, ok := parseCheckpointName(name); ok && (checkpointID{step: s, gen: g}).less(oldestKept) {
			_ = os.Remove(filepath.Join(w.Dir, name))
		}
	}
	// Second pass: with stale manifests gone, their shards and any
	// abandoned tmp leftovers can go too (re-removing a pass-1 manifest
	// is a harmless ENOENT).
	for _, e := range entries {
		g, s, ok := parseCheckpointName(e.Name())
		if ok && (checkpointID{step: s, gen: g}).less(oldestKept) {
			_ = os.Remove(filepath.Join(w.Dir, e.Name()))
		}
	}
	syncDir(w.Dir)
}
