package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/nn"
	"repro/internal/optim"
)

// Meta is the training progress a checkpoint captures alongside the
// tensors: where the run was, under which membership, and the seed that
// reproduces its data schedule.
type Meta struct {
	// Step is the number of completed training steps the state
	// reflects (the state is the post-optimizer-update state of step
	// Step-1; the next step to execute is Step).
	Step int64 `json:"step"`
	// Generation is the elastic generation the checkpoint was taken
	// under (0 for non-elastic runs).
	Generation int `json:"generation"`
	// World is the world size at capture time. Restore does not require
	// the restoring world to match — shards reassemble into the full
	// replicated state regardless.
	World int `json:"world"`
	// Seed is the run's base RNG seed, recorded verbatim for the
	// caller: a resumed run whose data schedule depends on it reads it
	// back (elastic exposes it via Agent.RestoredCheckpoint) — the
	// checkpoint layer itself never interprets it.
	Seed int64 `json:"seed"`
}

// image is the gob-encoded content of the state blob. Every rank holds
// bit-identical state (DDP's invariant), encodes the same values with
// the same encoder layout, and therefore produces byte-identical blobs
// — which is what lets each rank persist only its slice of the blob.
type image struct {
	Meta Meta
	// Model is the nn.SaveState encoding of parameters and buffers,
	// carrying its own format-version header.
	Model []byte
	// Opt is the optimizer's flattened state (nil when the optimizer
	// does not implement optim.StateFlattener).
	Opt []float32
}

// Snapshot is an immutable byte image of full training state, taken
// synchronously on the training path and safe to persist from a
// background goroutine afterwards: Capture deep-copies every tensor, so
// subsequent optimizer updates cannot tear the image.
type Snapshot struct {
	// Meta duplicates the blob's embedded progress record for cheap
	// access (choosing file names, logging) without decoding the blob.
	Meta Meta
	blob []byte
}

// Capture serializes the full training state — model parameters and
// buffers (via nn.SaveState), optimizer state (via
// optim.StateFlattener, when implemented), and meta — into a Snapshot.
func Capture(model nn.Module, opt optim.Optimizer, meta Meta) (*Snapshot, error) {
	var modelBuf bytes.Buffer
	if err := nn.SaveState(&modelBuf, model); err != nil {
		return nil, fmt.Errorf("ckpt: capturing model state: %w", err)
	}
	img := image{Meta: meta, Model: modelBuf.Bytes()}
	if sf, ok := opt.(optim.StateFlattener); ok && opt != nil {
		img.Opt = sf.FlatState()
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(&img); err != nil {
		return nil, fmt.Errorf("ckpt: encoding snapshot: %w", err)
	}
	return &Snapshot{Meta: meta, blob: blob.Bytes()}, nil
}

// Bytes returns the snapshot's state blob. The caller must not mutate
// it.
func (s *Snapshot) Bytes() []byte { return s.blob }

// decodeSnapshot parses a reassembled state blob.
func decodeSnapshot(blob []byte) (*Snapshot, error) {
	var img image
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&img); err != nil {
		return nil, fmt.Errorf("ckpt: decoding snapshot: %w", err)
	}
	return &Snapshot{Meta: img.Meta, blob: blob}, nil
}

// Apply restores the snapshot's state into model and opt (bitwise: a
// restored replica is indistinguishable from one that never crashed)
// and returns the captured progress. The model must have the
// architecture the checkpoint was taken from; mismatches are reported
// by parameter name with both shapes.
func (s *Snapshot) Apply(model nn.Module, opt optim.Optimizer) (Meta, error) {
	var img image
	if err := gob.NewDecoder(bytes.NewReader(s.blob)).Decode(&img); err != nil {
		return Meta{}, fmt.Errorf("ckpt: decoding snapshot: %w", err)
	}
	if err := nn.LoadState(bytes.NewReader(img.Model), model); err != nil {
		return Meta{}, fmt.Errorf("ckpt: restoring model state: %w", err)
	}
	if sf, ok := opt.(optim.StateFlattener); ok && opt != nil && img.Opt != nil {
		if err := sf.SetFlatState(img.Opt); err != nil {
			return Meta{}, fmt.Errorf("ckpt: restoring optimizer state: %w", err)
		}
	}
	return img.Meta, nil
}

// ShardRange returns the byte range [offset, offset+length) of the
// state blob that rank persists in a world of the given size: a
// contiguous split as even as possible, with the remainder spread over
// the lowest ranks. Pure function — every rank computes every rank's
// range, and readers of any world size recompute the saved layout from
// the manifest alone.
func ShardRange(blobLen int64, rank, world int) (offset, length int64) {
	if world <= 0 {
		panic(fmt.Sprintf("ckpt: invalid world %d", world))
	}
	base := blobLen / int64(world)
	rem := blobLen % int64(world)
	r := int64(rank)
	offset = base*r + min(r, rem)
	length = base
	if r < rem {
		length++
	}
	return offset, length
}
