package ckpt

import (
	"errors"
	"fmt"
	"sync"
)

// AsyncWriter moves checkpoint persistence off the training hot path:
// Submit enqueues an already-captured Snapshot (the tensor copy is the
// only work that must happen synchronously, inside Capture) and a
// single background goroutine performs the shard write, commit barrier,
// and manifest publication while training continues. The
// BenchmarkSyncVsAsyncSave benchmark quantifies the difference — the
// hot path pays only the memcpy, not the fsync.
//
// Saves execute strictly in submission order, so the directory's
// (step, generation) history stays monotonic. The queue is small and
// Submit blocks when it is full: backpressure, not silent dropping —
// every rank must persist the same checkpoint sequence or commits would
// wait forever for shards nobody queued.
//
// Submit, Sync, and Close must be called from one goroutine (the
// training loop); the background goroutine is internal.
type AsyncWriter struct {
	w    *Writer
	jobs chan asyncJob
	done chan struct{}

	mu  sync.Mutex
	err error // first non-abandoned save error, sticky

	closed bool
}

type asyncJob struct {
	snap        *Snapshot
	rank, world int
	cancel      <-chan struct{}
	// flush, when non-nil, marks a Sync request: the worker closes it
	// once every previously queued save has finished.
	flush chan struct{}
}

// NewAsyncWriter starts the background persister for w. Call Close to
// drain and stop it.
func NewAsyncWriter(w *Writer) *AsyncWriter {
	a := &AsyncWriter{
		w:    w,
		jobs: make(chan asyncJob, 2),
		done: make(chan struct{}),
	}
	go a.loop()
	return a
}

func (a *AsyncWriter) loop() {
	defer close(a.done)
	for job := range a.jobs {
		if job.flush != nil {
			close(job.flush)
			continue
		}
		err := a.w.Save(job.snap, job.rank, job.world, job.cancel)
		if err != nil && !errors.Is(err, ErrAbandoned) {
			a.mu.Lock()
			if a.err == nil {
				a.err = err
			}
			a.mu.Unlock()
		}
	}
}

// Err returns the first save error observed by the background
// goroutine (abandoned saves are not errors), or nil.
func (a *AsyncWriter) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.err
}

// Submit enqueues a save of rank's shard of snap, blocking only when
// the small queue is full. It returns the background goroutine's sticky
// error, if any — a failed checkpoint surfaces on the next Submit (or
// Sync) rather than vanishing.
func (a *AsyncWriter) Submit(snap *Snapshot, rank, world int, cancel <-chan struct{}) error {
	if a.closed {
		return fmt.Errorf("ckpt: AsyncWriter is closed")
	}
	a.jobs <- asyncJob{snap: snap, rank: rank, world: world, cancel: cancel}
	return a.Err()
}

// Sync blocks until every previously submitted save has finished and
// returns the sticky error, if any. Call it at run completion so the
// final checkpoint is committed before the process exits.
func (a *AsyncWriter) Sync() error {
	if a.closed {
		return a.Err()
	}
	flush := make(chan struct{})
	a.jobs <- asyncJob{flush: flush}
	<-flush
	return a.Err()
}

// Close drains pending saves and stops the background goroutine,
// returning the sticky error, if any. Subsequent Submits fail.
func (a *AsyncWriter) Close() error {
	if a.closed {
		return a.Err()
	}
	a.closed = true
	close(a.jobs)
	<-a.done
	return a.Err()
}
