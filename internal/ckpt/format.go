package ckpt

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// FormatVersion is the version of the on-disk checkpoint format. It is
// recorded in every shard header and manifest; readers reject files
// written by a newer version instead of misinterpreting them.
const FormatVersion = 1

// Magic numbers distinguishing the two file kinds. A reader that opens
// the wrong kind (or a torn/garbage file) fails on the first 8 bytes.
var (
	shardMagic    = [8]byte{'D', 'D', 'P', 'S', 'H', 'R', 'D', '1'}
	manifestMagic = [8]byte{'D', 'D', 'P', 'M', 'A', 'N', 'I', '1'}
)

// shardHeaderLen is the fixed shard header size: magic + version +
// generation + step + world + rank + offset + length, all little-endian.
const shardHeaderLen = 8 + 4 + 8 + 8 + 4 + 4 + 8 + 8

// crcLen is the length of the CRC32 (IEEE) trailer on both file kinds.
const crcLen = 4

// shardHeader is the fixed-size prefix of a shard file. Offset/Length
// locate the shard's payload inside the checkpoint's state blob, which
// is how a reader of any world size reassembles the blob (re-sharding).
type shardHeader struct {
	Version    uint32
	Generation int64
	Step       int64
	World      uint32
	Rank       uint32
	Offset     uint64
	Length     uint64
}

// ShardRef is a manifest's record of one shard file: which byte range
// of the state blob it holds and how large the file must be. The CRC of
// the shard's contents lives in the shard file itself (trailer), so the
// manifest stays cheap to produce — the committing rank never re-reads
// peers' payloads.
type ShardRef struct {
	// File is the shard's name, relative to the checkpoint directory.
	File string `json:"file"`
	// Rank is the writer's rank in the saving world.
	Rank int `json:"rank"`
	// Offset is the shard's byte offset into the state blob.
	Offset int64 `json:"offset"`
	// Length is the shard's payload byte length.
	Length int64 `json:"length"`
	// FileSize is the exact expected size of the shard file —
	// header + payload + CRC trailer — so truncation is detected by a
	// stat, before any payload is read.
	FileSize int64 `json:"file_size"`
}

// Manifest is the commit record of one checkpoint. A checkpoint exists
// if and only if its manifest file is fully present and
// checksum-valid: shards are written first, by all ranks in parallel,
// and the manifest is renamed into place last, by rank 0, after every
// shard is durable. A crash at any earlier point leaves either no
// manifest or a .tmp- file, both of which readers ignore.
type Manifest struct {
	// Version is the on-disk format version (FormatVersion at write).
	Version int `json:"version"`
	// Meta is the training progress the checkpoint captures.
	Meta Meta `json:"meta"`
	// World is the number of shards the state blob was split into.
	World int `json:"world"`
	// BlobBytes is the total state blob length; shards must cover
	// exactly [0, BlobBytes).
	BlobBytes int64 `json:"blob_bytes"`
	// Shards lists every shard of the checkpoint, ordered by rank.
	Shards []ShardRef `json:"shards"`
}

// ---- file naming -----------------------------------------------------------

// tmpPrefix marks in-flight files; readers skip them and writers rename
// them into their final name only after an fsync.
const tmpPrefix = ".tmp-"

// shardFileName returns the final name of rank r's shard of the
// checkpoint at (generation g, step s) in a world of w.
func shardFileName(g int, s int64, r, w int) string {
	return fmt.Sprintf("g%d-s%d-r%dof%d.shard", g, s, r, w)
}

// manifestFileName returns the final name of the (g, s) manifest.
func manifestFileName(g int, s int64) string {
	return fmt.Sprintf("g%d-s%d.manifest", g, s)
}

// parseCheckpointName extracts (generation, step) from a shard or
// manifest file name (with or without the tmp prefix). ok is false for
// unrelated files.
func parseCheckpointName(name string) (g int, s int64, ok bool) {
	name = strings.TrimPrefix(name, tmpPrefix)
	if !strings.HasPrefix(name, "g") {
		return 0, 0, false
	}
	rest := name[1:]
	i := strings.IndexByte(rest, '-')
	if i < 0 || len(rest) < i+2 || rest[i+1] != 's' {
		return 0, 0, false
	}
	g, err := strconv.Atoi(rest[:i])
	if err != nil {
		return 0, 0, false
	}
	num := rest[i+2:]
	if j := strings.IndexAny(num, "-."); j >= 0 {
		num = num[:j]
	}
	s, err2 := strconv.ParseInt(num, 10, 64)
	if err2 != nil {
		return 0, 0, false
	}
	return g, s, true
}

// ---- shard encoding --------------------------------------------------------

// encodeShardHeader renders h into the fixed binary layout.
func encodeShardHeader(h shardHeader) []byte {
	buf := make([]byte, shardHeaderLen)
	copy(buf[:8], shardMagic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], h.Version)
	le.PutUint64(buf[12:], uint64(h.Generation))
	le.PutUint64(buf[20:], uint64(h.Step))
	le.PutUint32(buf[28:], h.World)
	le.PutUint32(buf[32:], h.Rank)
	le.PutUint64(buf[36:], h.Offset)
	le.PutUint64(buf[44:], h.Length)
	return buf
}

// decodeShardHeader parses and validates the fixed shard header.
func decodeShardHeader(buf []byte) (shardHeader, error) {
	var h shardHeader
	if len(buf) < shardHeaderLen {
		return h, fmt.Errorf("ckpt: shard header truncated: %d bytes", len(buf))
	}
	if !bytes.Equal(buf[:8], shardMagic[:]) {
		return h, fmt.Errorf("ckpt: bad shard magic %q", buf[:8])
	}
	le := binary.LittleEndian
	h.Version = le.Uint32(buf[8:])
	if h.Version > FormatVersion {
		return h, fmt.Errorf("ckpt: shard format version %d is newer than supported %d", h.Version, FormatVersion)
	}
	h.Generation = int64(le.Uint64(buf[12:]))
	h.Step = int64(le.Uint64(buf[20:]))
	h.World = le.Uint32(buf[28:])
	h.Rank = le.Uint32(buf[32:])
	h.Offset = le.Uint64(buf[36:])
	h.Length = le.Uint64(buf[44:])
	return h, nil
}

// shardFileSize returns the exact on-disk size of a shard holding n
// payload bytes.
func shardFileSize(n int64) int64 { return shardHeaderLen + n + crcLen }

// writeShardFile durably writes one shard: header + payload + CRC32
// trailer into a .tmp- file, fsync, then an atomic rename to its final
// name (followed by a best-effort directory fsync, so the rename itself
// survives a host crash).
func writeShardFile(dir string, h shardHeader, payload []byte) (string, error) {
	name := shardFileName(int(h.Generation), h.Step, int(h.Rank), int(h.World))
	hdr := encodeShardHeader(h)
	crc := crc32.NewIEEE()
	crc.Write(hdr)
	crc.Write(payload)
	var trailer [crcLen]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if err := writeFileAtomic(dir, name, hdr, payload, trailer[:]); err != nil {
		return "", err
	}
	return name, nil
}

// readShardFile reads and fully validates one shard file: magic,
// version, header/manifest consistency, exact size, and payload CRC.
func readShardFile(path string) (shardHeader, []byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return shardHeader{}, nil, fmt.Errorf("ckpt: reading shard: %w", err)
	}
	h, err := decodeShardHeader(raw)
	if err != nil {
		return h, nil, fmt.Errorf("ckpt: %s: %w", filepath.Base(path), err)
	}
	want := shardFileSize(int64(h.Length))
	if int64(len(raw)) != want {
		return h, nil, fmt.Errorf("ckpt: shard %s truncated: %d bytes, want %d", filepath.Base(path), len(raw), want)
	}
	body := raw[:len(raw)-crcLen]
	got := binary.LittleEndian.Uint32(raw[len(raw)-crcLen:])
	if sum := crc32.ChecksumIEEE(body); sum != got {
		return h, nil, fmt.Errorf("ckpt: shard %s payload corrupt: crc32 %08x, want %08x", filepath.Base(path), sum, got)
	}
	return h, body[shardHeaderLen:], nil
}

// ---- manifest encoding -----------------------------------------------------

// encodeManifest renders m as magic + u32 length + JSON + CRC32
// trailer. JSON keeps the commit record operator-readable (`strings` on
// a checkpoint dir shows progress); the binary frame keeps it
// integrity-checked like the shards.
func encodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("ckpt: encoding manifest: %w", err)
	}
	buf := make([]byte, 0, 8+4+len(body)+crcLen)
	buf = append(buf, manifestMagic[:]...)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(body)))
	buf = append(buf, n[:]...)
	buf = append(buf, body...)
	binary.LittleEndian.PutUint32(n[:], crc32.ChecksumIEEE(buf))
	return append(buf, n[:]...), nil
}

// decodeManifest parses and validates a manifest file image.
func decodeManifest(raw []byte) (*Manifest, error) {
	if len(raw) < 8+4+crcLen {
		return nil, fmt.Errorf("ckpt: manifest truncated: %d bytes", len(raw))
	}
	if !bytes.Equal(raw[:8], manifestMagic[:]) {
		return nil, fmt.Errorf("ckpt: bad manifest magic %q", raw[:8])
	}
	bodyLen := int(binary.LittleEndian.Uint32(raw[8:]))
	if len(raw) != 8+4+bodyLen+crcLen {
		return nil, fmt.Errorf("ckpt: manifest truncated: %d bytes, want %d", len(raw), 8+4+bodyLen+crcLen)
	}
	body := raw[:len(raw)-crcLen]
	got := binary.LittleEndian.Uint32(raw[len(raw)-crcLen:])
	if sum := crc32.ChecksumIEEE(body); sum != got {
		return nil, fmt.Errorf("ckpt: manifest corrupt: crc32 %08x, want %08x", sum, got)
	}
	var m Manifest
	if err := json.Unmarshal(body[8+4:], &m); err != nil {
		return nil, fmt.Errorf("ckpt: decoding manifest: %w", err)
	}
	if m.Version > FormatVersion {
		return nil, fmt.Errorf("ckpt: manifest format version %d is newer than supported %d", m.Version, FormatVersion)
	}
	return &m, nil
}

// readManifestFile loads and validates the manifest at path.
func readManifestFile(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading manifest: %w", err)
	}
	m, err := decodeManifest(raw)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %s: %w", filepath.Base(path), err)
	}
	return m, nil
}

// ---- atomic file plumbing --------------------------------------------------

// writeFileAtomic writes the concatenation of chunks to dir/name via
// the write-tmp → fsync → rename protocol. Readers either see the
// complete file under its final name or no file at all.
func writeFileAtomic(dir, name string, chunks ...[]byte) error {
	tmp := filepath.Join(dir, tmpPrefix+name)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: creating %s: %w", tmp, err)
	}
	for _, c := range chunks {
		if _, err := f.Write(c); err != nil {
			_ = f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ckpt: writing %s: %w", tmp, err)
		}
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: committing %s: %w", name, err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-committed rename survives a host
// crash. Best-effort: some filesystems reject directory fsync, and a
// failure only narrows durability, never correctness.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
