package ckpt

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/store"
)

// ErrAbandoned is returned when a save is canceled before its commit
// point — typically because the elastic generation moved on (a peer
// died mid-save, so the full set of shards will never materialize).
// Abandoned saves are harmless: their shards sit uncommitted, no
// manifest references them, and retention eventually sweeps them.
var ErrAbandoned = errors.New("ckpt: save abandoned before commit")

// Committer coordinates the commit point of a sharded save. Done marks
// the calling rank's shard durable; on the committing rank (rank 0) it
// additionally blocks until every rank of the save's world has done so
// — the barrier after which the manifest may be written. Non-committing
// ranks return as soon as their own shard is acknowledged: the commit
// protocol is asymmetric, only the manifest writer needs the barrier.
//
// Closing cancel (may be nil) obliges Done to unwind promptly with
// ErrAbandoned.
type Committer interface {
	Done(generation int, step int64, rank, world int, cancel <-chan struct{}) error
}

// StoreCommitter coordinates commits through the rendezvous store: each
// rank bumps a per-(generation, step) arrival counter once its shard is
// durable, and rank 0 polls the counter until it reaches the world
// size. This keeps checkpoint coordination entirely off the collective
// data plane, so asynchronous saves never interleave store traffic with
// training collectives (whose submission order must match across ranks).
type StoreCommitter struct {
	// St is the shared store; required.
	St store.Store
	// Prefix namespaces the arrival counters (default "ckpt").
	Prefix string
	// Poll paces rank 0's counter polling (default 2ms).
	Poll time.Duration
	// Timeout bounds rank 0's wait for stragglers (default 60s); on
	// expiry Done returns an error and no manifest is committed.
	Timeout time.Duration
}

// doneKey is the arrival counter for the (g, s) save. Generations make
// the key unique across world reconfigurations: a save interrupted by a
// membership change can never pollute the counter of a later save at
// the same step, because the later save runs under a higher generation.
func (c *StoreCommitter) doneKey(g int, s int64) string {
	prefix := c.Prefix
	if prefix == "" {
		prefix = "ckpt"
	}
	return fmt.Sprintf("%s/g%d/s%d/done", prefix, g, s)
}

// Done bumps the save's arrival counter; rank 0 then waits for all
// world arrivals and garbage-collects the counter before returning.
func (c *StoreCommitter) Done(generation int, step int64, rank, world int, cancel <-chan struct{}) error {
	key := c.doneKey(generation, step)
	n, err := c.St.Add(key, 1)
	if err != nil {
		return fmt.Errorf("ckpt: signaling shard done: %w", err)
	}
	if rank != 0 {
		return nil
	}
	poll := c.Poll
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	deadline := time.Now().Add(timeout)
	for n < int64(world) {
		select {
		case <-cancel:
			return ErrAbandoned
		default:
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ckpt: commit barrier for step %d (generation %d): %d/%d shards after %v",
				step, generation, n, world, timeout)
		}
		time.Sleep(poll)
		if n, err = c.St.Add(key, 0); err != nil {
			return fmt.Errorf("ckpt: polling commit barrier: %w", err)
		}
	}
	// All shards durable; the counter has served its purpose. Followers
	// never re-read it (they returned after their own Add), so deleting
	// here cannot strand anyone.
	//ddplint:ignore storeerr commit already durable; a leaked counter key only wastes store space
	_ = c.St.Delete(key)
	return nil
}

// GroupCommitter coordinates commits with a collective Barrier on a
// process group. Correct only for synchronous in-loop saves, where
// every rank submits the Barrier at the same point of its collective
// schedule; asynchronous saves must use StoreCommitter instead, or the
// background Barrier would race training collectives for submission
// order. An aborted group (elastic recovery) surfaces here as a Barrier
// error, which Save reports without committing.
type GroupCommitter struct {
	// PG is the group to rendezvous on; required. Its Rank/Size must
	// match the save's.
	PG comm.ProcessGroup
}

// Done runs a Barrier on the group; cancel is ignored (aborting the
// group is the cancellation path for collectives).
func (c *GroupCommitter) Done(generation int, step int64, rank, world int, _ <-chan struct{}) error {
	if err := c.PG.Barrier().Wait(); err != nil {
		return fmt.Errorf("ckpt: commit barrier for step %d (generation %d): %w", step, generation, err)
	}
	return nil
}

var (
	_ Committer = (*StoreCommitter)(nil)
	_ Committer = (*GroupCommitter)(nil)
)
