package ckpt

import (
	"bytes"
	"testing"
)

// FuzzManifestLoad feeds arbitrary bytes to the two on-disk decoders.
// Checkpoint files are read back after crashes, partial writes, and
// version skew, so the decoders must reject any corruption with an
// error — never a panic or a silently wrong Manifest. On inputs that
// do decode, the manifest must survive an encode→decode round trip
// unchanged (the CRC and length framing are deterministic).
func FuzzManifestLoad(f *testing.F) {
	valid, err := encodeManifest(&Manifest{
		Version:   FormatVersion,
		Meta:      Meta{Step: 1200, Generation: 3, World: 4},
		World:     4,
		BlobBytes: 1 << 16,
		Shards: []ShardRef{
			{File: "shard-g3-s1200-r0of4.ddp", Rank: 0, Offset: 0, Length: 1 << 14},
			{File: "shard-g3-s1200-r1of4.ddp", Rank: 1, Offset: 1 << 14, Length: 1 << 14},
		},
	})
	if err != nil {
		f.Fatalf("encoding seed manifest: %v", err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-1])          // truncated CRC
	f.Add(append([]byte("DDPMANI1"), 0)) // magic only
	f.Add(encodeShardHeader(shardHeader{
		Version: FormatVersion, Generation: 3, Step: 1200,
		World: 4, Rank: 1, Offset: 1 << 14, Length: 1 << 14,
	}))
	// A well-formed frame claiming a future format version must be
	// rejected, not misread.
	future, err := encodeManifest(&Manifest{Version: FormatVersion + 1})
	if err != nil {
		f.Fatalf("encoding future-version seed: %v", err)
	}
	f.Add(future)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeManifest(raw)
		if err == nil {
			if m == nil {
				t.Fatal("decodeManifest returned nil manifest and nil error")
			}
			if m.Version > FormatVersion {
				t.Fatalf("decodeManifest accepted future version %d", m.Version)
			}
			re, err := encodeManifest(m)
			if err != nil {
				t.Fatalf("re-encoding decoded manifest: %v", err)
			}
			m2, err := decodeManifest(re)
			if err != nil {
				t.Fatalf("round trip failed to decode: %v", err)
			}
			if m2.Meta != m.Meta || m2.World != m.World ||
				m2.BlobBytes != m.BlobBytes ||
				len(m2.Shards) != len(m.Shards) {
				t.Fatalf("round trip changed manifest: %+v -> %+v", m, m2)
			}
		}

		h, err := decodeShardHeader(raw)
		if err == nil {
			if h.Version > FormatVersion {
				t.Fatalf("decodeShardHeader accepted future version %d", h.Version)
			}
			if !bytes.Equal(encodeShardHeader(h)[:shardHeaderLen], raw[:shardHeaderLen]) {
				t.Fatal("shard header round trip changed bytes")
			}
		}
	})
}
