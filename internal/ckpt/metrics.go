package ckpt

import "repro/internal/metrics"

// Checkpointing SLO instruments. The histograms give the distribution
// a dashboard alerts on; the ckpt_last_* gauges are the SLO readouts
// themselves — "how stale is durable state right now" is
// ckpt_last_saved_step against the training step, and a save-latency
// regression shows up in ckpt_last_save_duration_seconds before it
// shows up in a histogram percentile.
var (
	mSaveDur = metrics.Default().Histogram(
		"ckpt_save_duration_seconds",
		"Wall time of successful Writer.Save calls (shard write + commit barrier; on rank 0 also manifest commit).",
		metrics.DurationBuckets)
	mSaveBytes = metrics.Default().Histogram(
		"ckpt_save_bytes",
		"Shard payload bytes written per successful Save.",
		metrics.SizeBuckets)
	mLastSaveDur = metrics.Default().Gauge(
		"ckpt_last_save_duration_seconds",
		"Duration of the most recent successful Save.")
	mLastSaveBytes = metrics.Default().Gauge(
		"ckpt_last_save_bytes",
		"Shard payload bytes of the most recent successful Save.")
	mLastSavedStep = metrics.Default().Gauge(
		"ckpt_last_saved_step",
		"Training step captured by the most recent successful Save on this rank.")
	mCommitFailures = metrics.Default().Counter(
		"ckpt_commit_failures_total",
		"Saves that failed at or after the commit barrier (abandoned saves on generation change are not failures and excluded).")
	mRestoreDur = metrics.Default().Histogram(
		"ckpt_restore_duration_seconds",
		"Wall time of successful Restore calls (load + apply).",
		metrics.DurationBuckets)
	mRestoreBytes = metrics.Default().Gauge(
		"ckpt_restore_bytes",
		"Blob bytes of the most recently restored checkpoint.")
)
