// Package ckpt is the durable checkpoint subsystem: it persists full
// training state — model parameters and buffers (nn.SaveState),
// optimizer state (optim.StateFlattener), and progress (step,
// generation, seed) — to disk in parallel shards, and restores it on a
// cold start. It closes the gap the elastic layer alone cannot: elastic
// recovery keeps a run alive as long as one worker survives, but when
// every worker dies at once, only state that reached disk survives.
// Together the two subsystems cover the full failure matrix (see the
// root package doc and ARCHITECTURE.md).
//
// # State model
//
// Capture serializes the complete training state into one byte blob
// (a Snapshot). DDP's core invariant — every rank holds bit-identical
// parameters, buffers, and optimizer state — means every rank produces
// a byte-identical blob, so the blob can be split into contiguous
// per-rank shards (ShardRange) with no cross-rank communication at all:
// rank r persists bytes [off_r, off_r+len_r) of a blob it computed
// locally. Checkpoint wall-clock cost therefore scales down with world
// size instead of serializing through a single writer.
//
// # On-disk format (FormatVersion 1)
//
// A checkpoint at step S under elastic generation G in a world of W is:
//
//	<dir>/g<G>-s<S>-r<R>of<W>.shard   one per rank R   (written first, in parallel)
//	<dir>/g<G>-s<S>.manifest          commit record    (written last, by rank 0)
//
// Shard files are a fixed 52-byte little-endian header — magic (8),
// format version (4), generation (8), step (8), world (4), rank (4),
// blob offset (8), payload length (8) — then the payload, then a
// CRC32-IEEE trailer over everything before it. Manifests are a framed JSON record (magic, length, JSON, CRC32)
// listing every shard's file name, byte range, and exact file size.
//
// Every file is published with the same durability protocol: write to
// <dir>/.tmp-<name>, fsync, rename to the final name, fsync the
// directory. Readers ignore .tmp- files, so a file either exists
// completely or not at all.
//
// # Commit protocol
//
// A checkpoint is committed if and only if its manifest is present and
// checksum-valid. Ranks write shards in parallel; a Committer then
// provides the commit barrier — rank 0 publishes the manifest only
// after every rank has reported its shard durable. Two committers are
// provided: GroupCommitter (a collective Barrier, for synchronous
// in-loop saves) and StoreCommitter (an arrival counter in the
// rendezvous store, for asynchronous saves — store traffic cannot
// disturb the collective data plane's submission order). A crash at any
// point before the manifest rename leaves only ignorable debris:
// .tmp- files and orphan shards that no manifest references and that
// retention later sweeps.
//
// # Restore and re-sharding
//
// Load scans the directory for committed manifests, newest first by
// (step, generation), and fully validates each candidate — manifest
// CRC, shard coverage of exactly [0, BlobBytes), per-shard header
// consistency, size, and payload CRC — falling back to the next-newest
// checkpoint when one is torn or corrupt. Because the manifest records
// every shard's byte range, a reader of any world size reassembles the
// same blob: restoring 3-way-sharded state into a world of 2 (or 5, or
// 1) is the ordinary path, not a special case. Writer.Keep (default 2)
// retains a fallback checkpoint so corruption at rest never strands a
// run with nothing loadable.
//
// # Asynchronous checkpointing
//
// AsyncWriter moves everything but the tensor copy off the training hot
// path: Capture (a memcpy of the state) runs between steps, and a
// background goroutine does the serialization barrier, fsync, and
// commit. Saves are abandoned (ErrAbandoned) rather than stuck when a
// membership change means a shard will never arrive; the elastic agent
// wires its generation watcher into the save's cancel channel for
// exactly that.
//
// The elastic agent (elastic.Config.Checkpoint) saves every N steps and
// probes/restores on cold start; `ddptrain -ckpt-dir -ckpt-every
// -resume` and examples/checkpoint exercise the subsystem end to end.
package ckpt
