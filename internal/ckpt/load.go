package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"
	"time"

	"repro/internal/nn"
	"repro/internal/optim"
)

// ErrNoCheckpoint is returned by Load and Restore when the directory
// holds no committed checkpoint at all — the cold-start-from-scratch
// case. It is distinct from the loud failure when committed checkpoints
// exist but every one of them is corrupt (which never silently restarts
// a run from zero).
var ErrNoCheckpoint = errors.New("ckpt: no committed checkpoint")

// Load reassembles the newest committed checkpoint in dir. Candidates
// are ordered by (step, generation) descending; a candidate whose
// manifest or any referenced shard fails validation (torn commit,
// truncation, CRC mismatch, missing file) is skipped, falling back to
// the next-newest committed checkpoint. Uncommitted saves — .tmp- files
// and shards with no manifest — are never considered.
//
// Load returns ErrNoCheckpoint when dir has no manifests (or does not
// exist), and a loud error describing the newest candidate's defect
// when manifests exist but none validates.
//
// Load is safe against a concurrent retention sweep: if every listed
// candidate fails because the sweep pruned the (stale) listing while
// newer checkpoints were committing, Load re-lists and walks again
// instead of declaring the run unloadable.
func Load(dir string) (*Snapshot, *Manifest, error) {
	var snap *Snapshot
	var m *Manifest
	err := newestCommitted(dir, "loadable", func(name string) error {
		s, mf, err := loadOne(dir, name)
		if err == nil {
			snap, m = s, mf
		}
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return snap, m, nil
}

// loadAttempts bounds how many directory listings newestCommitted
// walks before concluding the candidates are corrupt rather than
// concurrently pruned. A retry only happens while a writer is actively
// committing (the listing keeps changing), so the bound exists to
// guarantee termination, not as a tuning knob.
const loadAttempts = 8

// newestCommitted walks committed manifests newest-first, calling try
// on each until one succeeds. When every candidate fails AND the
// directory changed under the walk — a Keep-retention sweep deleting
// the stale listing's checkpoints as newer commits land — it re-lists
// and walks again: a reader racing the sweep must land on one of the
// newer checkpoints, never report the run unloadable. The loud
// all-candidates-failed error is reserved for a stable listing, where
// the failures are genuine corruption.
func newestCommitted(dir, what string, try func(name string) error) error {
	var walked []string
	for attempt := 0; ; attempt++ {
		names, err := manifestNames(dir)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return ErrNoCheckpoint
		}
		var firstErr error
		for _, name := range names {
			if err := try(name); err == nil {
				return nil
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if attempt+1 >= loadAttempts || slices.Equal(names, walked) {
			return fmt.Errorf("ckpt: %d committed checkpoint(s) in %s, none %s: %w", len(names), dir, what, firstErr)
		}
		walked = names
	}
}

// Restore loads the newest committed checkpoint in dir into model and
// opt and returns its captured progress. See Load for the fallback and
// error contract.
func Restore(dir string, model nn.Module, opt optim.Optimizer) (Meta, error) {
	start := time.Now()
	snap, m, err := Load(dir)
	if err != nil {
		return Meta{}, err
	}
	meta, err := snap.Apply(model, opt)
	if err == nil {
		mRestoreDur.Observe(time.Since(start).Seconds())
		mRestoreBytes.Set(float64(m.BlobBytes))
	}
	return meta, err
}

// LatestMeta reports the progress of the newest committed checkpoint
// without reassembling it — the probe a supervisor or cold-starting
// worker uses to decide whether a resume is possible. It validates
// cheaply (manifest frame CRC and consistency, shard presence and
// exact size) but does not read shard payloads, so a checkpoint whose
// payload is corrupt at rest can pass the probe and still be rejected
// — with fallback — by the full validation in Load.
func LatestMeta(dir string) (Meta, error) {
	var meta Meta
	err := newestCommitted(dir, "probes valid", func(name string) error {
		m, err := readManifestFile(filepath.Join(dir, name))
		if err == nil {
			if verr := validateManifest(m); verr != nil {
				err = fmt.Errorf("ckpt: %s: %w", name, verr)
			} else {
				err = statShards(dir, m)
			}
		}
		if err == nil {
			meta = m.Meta
		}
		return err
	})
	return meta, err
}

// statShards confirms every shard the manifest references exists with
// its exact expected size — truncation and absence detection without
// reading a byte of payload.
func statShards(dir string, m *Manifest) error {
	for _, ref := range m.Shards {
		fi, err := os.Stat(filepath.Join(dir, ref.File))
		if err != nil {
			return fmt.Errorf("ckpt: shard missing: %w", err)
		}
		if fi.Size() != ref.FileSize {
			return fmt.Errorf("ckpt: shard %s is %d bytes, want %d", ref.File, fi.Size(), ref.FileSize)
		}
	}
	return nil
}

// manifestNames lists committed manifests in dir, newest first by
// (step, generation) parsed from the file name. A missing directory is
// an empty listing, not an error: a fresh cluster resuming into an
// empty volume is a cold start, not a failure.
func manifestNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: reading checkpoint dir: %w", err)
	}
	type cand struct {
		name string
		id   checkpointID
	}
	var cands []cand
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".manifest") || strings.HasPrefix(name, tmpPrefix) {
			continue
		}
		if g, s, ok := parseCheckpointName(name); ok {
			cands = append(cands, cand{name: name, id: checkpointID{step: s, gen: g}})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[j].id.less(cands[i].id) })
	names := make([]string, len(cands))
	for i, c := range cands {
		names[i] = c.name
	}
	return names, nil
}

// loadOne validates and reassembles the checkpoint committed by the
// named manifest: manifest frame CRC, shard coverage of exactly
// [0, BlobBytes), and every shard's header consistency and payload CRC.
func loadOne(dir, manifestName string) (*Snapshot, *Manifest, error) {
	m, err := readManifestFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, err
	}
	if err := validateManifest(m); err != nil {
		return nil, nil, fmt.Errorf("ckpt: %s: %w", manifestName, err)
	}
	blob := make([]byte, m.BlobBytes)
	for _, ref := range m.Shards {
		h, payload, err := readShardFile(filepath.Join(dir, ref.File))
		if err != nil {
			return nil, nil, err
		}
		if int64(h.Offset) != ref.Offset || int64(h.Length) != ref.Length ||
			int(h.World) != m.World || h.Step != m.Meta.Step || int(h.Generation) != m.Meta.Generation {
			return nil, nil, fmt.Errorf("ckpt: shard %s header disagrees with manifest %s", ref.File, manifestName)
		}
		copy(blob[ref.Offset:ref.Offset+ref.Length], payload)
	}
	snap, err := decodeSnapshot(blob)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: %s: %w", manifestName, err)
	}
	if snap.Meta != m.Meta {
		return nil, nil, fmt.Errorf("ckpt: %s: blob meta %+v disagrees with manifest meta %+v", manifestName, snap.Meta, m.Meta)
	}
	return snap, m, nil
}

// validateManifest checks the manifest's internal consistency: shards
// ordered by rank and covering the blob exactly, without gaps or
// overlap.
func validateManifest(m *Manifest) error {
	if len(m.Shards) != m.World {
		return fmt.Errorf("manifest has %d shards for world %d", len(m.Shards), m.World)
	}
	var next int64
	for i, ref := range m.Shards {
		if ref.Rank != i {
			return fmt.Errorf("shard %d records rank %d", i, ref.Rank)
		}
		if ref.Offset != next {
			return fmt.Errorf("shard %d starts at %d, want %d (gap or overlap)", i, ref.Offset, next)
		}
		if ref.Length < 0 || ref.FileSize != shardFileSize(ref.Length) {
			return fmt.Errorf("shard %d has inconsistent sizes (len %d, file %d)", i, ref.Length, ref.FileSize)
		}
		next += ref.Length
	}
	if next != m.BlobBytes {
		return fmt.Errorf("shards cover %d bytes, blob is %d", next, m.BlobBytes)
	}
	return nil
}
