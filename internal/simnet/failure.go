package simnet

import (
	"errors"
	"fmt"
	"math"
)

// Named validation errors of RunElastic. Both are wrapped with the
// offending value, so match with errors.Is.
var (
	// ErrNoIterations rejects iters <= 0: a run with no iterations has
	// no timeline to charge a failure to (it used to surface as a
	// confusing FailAtIter range error or an empty/NaN timeline).
	ErrNoIterations = errors.New("simnet: elastic run needs iters > 0")
	// ErrWorldTooSmall rejects World < 2: losing a rank must leave at
	// least one survivor (World-1 >= 1) to finish the run.
	ErrWorldTooSmall = errors.New("simnet: elastic failure needs World >= 2")
	// ErrFailIterOutOfRange rejects a FailAtIter outside [0, iters).
	ErrFailIterOutOfRange = errors.New("simnet: FailAtIter outside the run")
)

// FailurePlan injects one worker failure into a simulated elastic
// training run — the simnet counterpart of internal/elastic, used to
// study recovery time against lease timeouts, model size, and world
// size without running wall-clock heartbeats.
type FailurePlan struct {
	// FailAtIter is the 0-based iteration during which a rank dies;
	// that iteration's work is lost and retried post-recovery.
	FailAtIter int
	// LeaseSeconds is the heartbeat lease: the detection delay for a
	// silent failure (elastic.Config.LeaseTimeout). Crashes that break
	// connections are detected faster, so this upper-bounds detection.
	LeaseSeconds float64
	// StoreRTTSeconds is one rendezvous-store round trip (default
	// 100µs, a same-rack TCP store).
	StoreRTTSeconds float64
	// OptStateScale is optimizer-state elements per parameter element
	// synced to realign survivors and joiners (1 for SGD momentum,
	// 2 for Adam; default 1).
	OptStateScale float64
}

func (p FailurePlan) withDefaults() FailurePlan {
	if p.StoreRTTSeconds <= 0 {
		p.StoreRTTSeconds = 100e-6
	}
	if p.OptStateScale <= 0 {
		p.OptStateScale = 1
	}
	return p
}

// RecoveryBreakdown decomposes the stall a failure inflicts on the
// surviving ranks.
type RecoveryBreakdown struct {
	// LostWorkSeconds is the in-flight iteration discarded at the
	// failure (the only progress elastic recovery gives up).
	LostWorkSeconds float64
	// DetectionSeconds is the heartbeat-lease expiry delay.
	DetectionSeconds float64
	// RendezvousSeconds covers the store round trips of the new
	// rendezvous round (register, seal, read membership).
	RendezvousSeconds float64
	// RebuildSeconds is the process-group reconstruction: survivors
	// re-mesh pairwise, overlapping dials, so it grows with log(world).
	RebuildSeconds float64
	// StateSyncSeconds is the broadcast of model parameters, buffers,
	// and optimizer state from the elected source rank.
	StateSyncSeconds float64
	// TotalSeconds is the whole stall, excluding the retried iteration
	// itself (which is ordinary training work at the new world size).
	TotalSeconds float64
}

// RunElastic simulates iters training iterations with one injected
// failure: iterations before the failure run at cfg.World, the failure
// iteration is charged its lost work plus the full recovery stall, and
// the run continues — retrying the interrupted iteration first — at
// World-1. Returned latencies have length iters; the failed-and-
// retried iteration is a single (expensive) entry, mirroring how the
// elastic agent retries the same global step after reconfiguration.
func RunElastic(cfg Config, iters int, plan FailurePlan) ([]float64, RecoveryBreakdown, error) {
	cfg = cfg.withDefaults()
	plan = plan.withDefaults()
	if iters <= 0 {
		return nil, RecoveryBreakdown{}, fmt.Errorf("%w (got %d)", ErrNoIterations, iters)
	}
	if cfg.World < 2 {
		return nil, RecoveryBreakdown{}, fmt.Errorf("%w (got %d)", ErrWorldTooSmall, cfg.World)
	}
	if plan.FailAtIter < 0 || plan.FailAtIter >= iters {
		return nil, RecoveryBreakdown{}, fmt.Errorf("%w (%d outside [0,%d))", ErrFailIterOutOfRange, plan.FailAtIter, iters)
	}

	before, _, err := SimulateIterationTimeline(cfg)
	if err != nil {
		return nil, RecoveryBreakdown{}, err
	}
	after := cfg
	after.World = cfg.World - 1
	post, _, err := SimulateIterationTimeline(after)
	if err != nil {
		return nil, RecoveryBreakdown{}, err
	}

	totalParams := 0
	for _, s := range cfg.ParamSizes {
		totalParams += s
	}
	stateBytes := int(float64(totalParams*4) * (1 + plan.OptStateScale))

	rb := RecoveryBreakdown{
		LostWorkSeconds:  before.TotalSeconds,
		DetectionSeconds: plan.LeaseSeconds,
		// Register + seal-poll + membership read, each a store RTT.
		RendezvousSeconds: 3 * plan.StoreRTTSeconds,
		// Survivors dial each other concurrently; the critical path is
		// the store-published address exchange plus a logarithmic
		// connection cascade.
		RebuildSeconds: plan.StoreRTTSeconds * (1 + math.Log2(float64(after.World))),
		StateSyncSeconds: cfg.Cluster.BroadcastSeconds(
			cfg.Backend, stateBytes, after.World),
	}
	rb.TotalSeconds = rb.LostWorkSeconds + rb.DetectionSeconds +
		rb.RendezvousSeconds + rb.RebuildSeconds + rb.StateSyncSeconds

	latencies := make([]float64, iters)
	for i := 0; i < iters; i++ {
		switch {
		case i < plan.FailAtIter:
			latencies[i] = before.TotalSeconds
		case i == plan.FailAtIter:
			// Stall, then the retry at the shrunken world.
			latencies[i] = rb.TotalSeconds + post.TotalSeconds
		default:
			latencies[i] = post.TotalSeconds
		}
	}
	return latencies, rb, nil
}
