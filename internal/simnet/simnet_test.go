package simnet

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
)

func resnetCfg() Config {
	return Config{
		ParamSizes: models.ResNet50().Sizes(),
		World:      32,
		Backend:    hw.NCCLLike,
		Device:     hw.GPU,
		Overlap:    true,
	}
}

func TestSimulateIterationBasics(t *testing.T) {
	b, err := SimulateIteration(resnetCfg())
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalSeconds <= 0 || b.ForwardSeconds <= 0 || b.BackwardComputeSeconds <= 0 {
		t.Fatalf("non-positive segments: %+v", b)
	}
	if b.TotalSeconds < b.ForwardSeconds+b.BackwardComputeSeconds+b.OptimizerSeconds {
		t.Fatal("total must cover compute segments")
	}
	if b.Buckets < 2 {
		t.Fatalf("ResNet50 at 25MB should have several buckets, got %d", b.Buckets)
	}
}

func TestEmptyModelRejected(t *testing.T) {
	if _, err := SimulateIteration(Config{World: 2}); err == nil {
		t.Fatal("expected error for empty model")
	}
}

func TestOverlapReducesLatency(t *testing.T) {
	// The headline claim of Section 3.2.3: overlapping communication
	// with the backward pass shortens iterations.
	cfg := resnetCfg()
	withOverlap, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = false
	without, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withOverlap.TotalSeconds >= without.TotalSeconds {
		t.Fatalf("overlap (%v) not faster than barrier (%v)",
			withOverlap.TotalSeconds, without.TotalSeconds)
	}
	speedup := 1 - withOverlap.TotalSeconds/without.TotalSeconds
	// Paper Fig 6: ResNet50 on NCCL gains ~38% from overlap. Accept a
	// generous band; EXPERIMENTS.md records the exact figure.
	if speedup < 0.10 || speedup > 0.60 {
		t.Fatalf("overlap speedup = %.1f%%, outside plausible band", speedup*100)
	}
}

func TestSingleGPUHasNoCommunication(t *testing.T) {
	cfg := resnetCfg()
	cfg.World = 1
	b, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.CommSeconds != 0 || b.ExposedCommSeconds != 0 {
		t.Fatalf("single GPU should not communicate: %+v", b)
	}
}

func TestLatencyGrowsWithWorld(t *testing.T) {
	// Fig 9: scaling out slows individual iterations.
	cfg := resnetCfg()
	prev := 0.0
	for _, w := range []int{1, 8, 32, 128} {
		cfg.World = w
		b, err := SimulateIteration(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.TotalSeconds < prev {
			t.Fatalf("latency decreased from %v to %v at world %d", prev, b.TotalSeconds, w)
		}
		prev = b.TotalSeconds
	}
}

func TestBucketSizeSweetSpot(t *testing.T) {
	// Figs 7/8: both extremes lose; some middle bucket size wins. The
	// "0MB" (per-parameter) configuration must be distinctly worse than
	// the best middle size for ResNet50 on NCCL at 16 GPUs.
	sizes := models.ResNet50().Sizes()
	latency := func(capMB int) float64 {
		capBytes := capMB << 20
		if capMB == 0 {
			capBytes = -1
		}
		b, err := SimulateIteration(Config{
			ParamSizes:     sizes,
			BucketCapBytes: capBytes,
			World:          16,
			Backend:        hw.NCCLLike,
			Device:         hw.GPU,
			Overlap:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.TotalSeconds
	}
	zero := latency(0)
	best := zero
	for _, mb := range []int{5, 10, 25, 50} {
		if l := latency(mb); l < best {
			best = l
		}
	}
	if best >= zero {
		t.Fatalf("no bucket size beat per-parameter reduction: best %v vs 0MB %v", best, zero)
	}
	// One giant bucket forfeits overlap: worse than the best.
	giant := latency(200)
	if giant <= best {
		t.Fatalf("single giant bucket (%v) should lose to bucketing (%v)", giant, best)
	}
}

func TestGlooPrefersSmallerBucketsThanNCCL(t *testing.T) {
	// Fig 7(b): with Gloo, 5MB beats 25MB for ResNet50 because Gloo's
	// bandwidth saturates at small tensors and larger buckets only delay
	// the first launch.
	sizes := models.ResNet50().Sizes()
	lat := func(backend hw.Backend, capMB int) float64 {
		b, err := SimulateIteration(Config{
			ParamSizes:     sizes,
			BucketCapBytes: capMB << 20,
			World:          16,
			Backend:        backend,
			Device:         hw.GPU,
			Overlap:        true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.TotalSeconds
	}
	if lat(hw.GlooLike, 5) >= lat(hw.GlooLike, 50) {
		t.Fatalf("Gloo 5MB (%v) should beat 50MB (%v)", lat(hw.GlooLike, 5), lat(hw.GlooLike, 50))
	}
}

func TestNoSyncAmortizesCommunication(t *testing.T) {
	// Fig 10: syncing every 8 iterations must cut mean latency
	// substantially at large world sizes.
	cfg := resnetCfg()
	cfg.World = 256
	every1, err := MeanLatency(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SyncEveryN = 8
	every8, err := MeanLatency(cfg, 64)
	if err != nil {
		t.Fatal(err)
	}
	if every8 >= every1 {
		t.Fatalf("no_sync_8 (%v) not faster than sync every iteration (%v)", every8, every1)
	}
	saving := 1 - every8/every1
	if saving < 0.10 {
		t.Fatalf("no_sync_8 saving only %.1f%%", saving*100)
	}
}

func TestRoundRobinStreamsHelpBERT(t *testing.T) {
	// Fig 12: BERT on NCCL benefits most from rr3 (one group cannot
	// saturate the link while buckets queue up behind each other).
	bert := models.BERTLarge()
	lat := func(streams int) float64 {
		b, err := SimulateIteration(Config{
			ParamSizes:       bert.Sizes(),
			ComputeIntensity: bert.ComputeIntensity,
			World:            16,
			Backend:          hw.NCCLLike,
			Device:           hw.GPU,
			Overlap:          true,
			CommStreams:      streams,
			BucketCapBytes:   25 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.TotalSeconds
	}
	rr1, rr3 := lat(1), lat(3)
	if rr3 >= rr1 {
		t.Fatalf("rr3 (%v) should beat rr1 (%v) for BERT", rr3, rr1)
	}
}

func TestCompressionReducesCommTime(t *testing.T) {
	cfg := resnetCfg()
	cfg.World = 64
	plain, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompressionRatio = 32
	compressed, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if compressed.CommSeconds >= plain.CommSeconds {
		t.Fatal("compression must reduce communication time")
	}
}

func TestDoubleTreeCutsCommAtSmallBuckets(t *testing.T) {
	// With tiny buckets the per-bucket AllReduce is latency-bound, so
	// pricing them with the log-depth double tree must shrink comm
	// time relative to the 2(k-1)-step ring at a deep world.
	cfg := resnetCfg()
	cfg.World = 64
	cfg.BucketCapBytes = 64 << 10
	ring, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DoubleTree = true
	dt, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dt.CommSeconds >= ring.CommSeconds {
		t.Fatalf("double tree (%v) should cut comm time vs ring (%v) at 64KB buckets", dt.CommSeconds, ring.CommSeconds)
	}
}

func TestNLevelTopologyChangesHierarchicalCost(t *testing.T) {
	cfg := resnetCfg()
	cfg.World = 64
	cfg.Hierarchical = true
	two, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TopologyGroupSizes = []int{2, 8} // 4 pods x 2 racks x 8 GPUs
	three, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if three.CommSeconds == two.CommSeconds {
		t.Fatal("three-level group sizes should re-price communication")
	}
}

func TestJitterProducesSpreadAndSpikes(t *testing.T) {
	cfg := resnetCfg()
	cfg.Jitter = true
	cfg.Seed = 3
	lat, err := Run(cfg, 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != 250 {
		t.Fatalf("got %d samples", len(lat))
	}
	// Iteration 100 and 200 must be outliers (re-construction spikes).
	base := lat[50]
	if lat[100] < 1.2*base || lat[200] < 1.2*base {
		t.Fatalf("no spike at 100-iteration boundary: %v vs base %v", lat[100], base)
	}
	// Determinism: same seed, same trace.
	lat2, _ := Run(cfg, 250)
	for i := range lat {
		if lat[i] != lat2[i] {
			t.Fatal("jitter must be deterministic per seed")
		}
	}
}

func TestRunWithoutJitterIsConstantOffBoundary(t *testing.T) {
	cfg := resnetCfg()
	lat, err := Run(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if lat[i] != lat[0] {
			t.Fatal("deterministic run must be constant")
		}
	}
}

func TestTimelineInvariants(t *testing.T) {
	// The simulated schedule must honour Algorithm 1's constraints:
	// buckets ready monotonically (reverse-order assumption), no op
	// starts before its bucket is ready, ops on the same stream never
	// overlap, and the in-order launch rule holds (start times are
	// non-decreasing in bucket index).
	for _, streams := range []int{1, 3} {
		cfg := resnetCfg()
		cfg.CommStreams = streams
		_, events, err := SimulateIterationTimeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(events) < 2 {
			t.Fatal("expected multiple buckets")
		}
		streamEnd := map[int]float64{}
		for i, e := range events {
			if e.StartSeconds < e.ReadySeconds {
				t.Fatalf("bucket %d started before ready", e.Bucket)
			}
			if e.EndSeconds <= e.StartSeconds {
				t.Fatalf("bucket %d has non-positive duration", e.Bucket)
			}
			if e.StartSeconds < streamEnd[e.Stream] {
				t.Fatalf("bucket %d overlaps previous op on stream %d", e.Bucket, e.Stream)
			}
			streamEnd[e.Stream] = e.EndSeconds
			if i > 0 {
				if e.ReadySeconds < events[i-1].ReadySeconds {
					t.Fatalf("bucket %d ready before bucket %d", e.Bucket, events[i-1].Bucket)
				}
				if e.StartSeconds < events[i-1].StartSeconds {
					t.Fatalf("bucket %d launched before bucket %d (Fig 3(a) violation)", e.Bucket, events[i-1].Bucket)
				}
			}
			if e.Stream != e.Bucket%streams {
				t.Fatalf("bucket %d on stream %d, want round-robin", e.Bucket, e.Stream)
			}
		}
	}
}

func TestTimelineCompressionShrinksBytes(t *testing.T) {
	cfg := resnetCfg()
	_, plain, err := SimulateIterationTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.CompressionRatio = 2
	_, compressed, err := SimulateIterationTimeline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if compressed[i].Bytes*2 != plain[i].Bytes {
			t.Fatalf("bucket %d: %d compressed vs %d plain", i, compressed[i].Bytes, plain[i].Bytes)
		}
	}
}

func TestHierarchicalCostModelReducesCommTime(t *testing.T) {
	cfg := resnetCfg() // 32 GPUs: 4 servers on the default cluster
	flat, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hierarchical = true
	hier, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hier.CommSeconds >= flat.CommSeconds {
		t.Fatalf("hierarchical comm busy time (%v) not below flat (%v)", hier.CommSeconds, flat.CommSeconds)
	}
	if hier.TotalSeconds > flat.TotalSeconds {
		t.Fatalf("hierarchical iteration (%v) slower than flat (%v)", hier.TotalSeconds, flat.TotalSeconds)
	}
	// Within one server the two models are the same function.
	cfg.World = 8
	hier8, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Hierarchical = false
	flat8, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hier8.TotalSeconds != flat8.TotalSeconds {
		t.Fatalf("single-server mismatch: %v vs %v", hier8.TotalSeconds, flat8.TotalSeconds)
	}
}

func TestShardedStrategiesChangeCostShape(t *testing.T) {
	ddp, err := SimulateIteration(resnetCfg())
	if err != nil {
		t.Fatal(err)
	}
	z2cfg := resnetCfg()
	z2cfg.Strategy = "zero2"
	z2, err := SimulateIteration(z2cfg)
	if err != nil {
		t.Fatal(err)
	}
	z3cfg := resnetCfg()
	z3cfg.Strategy = "zero3"
	z3, err := SimulateIteration(z3cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sharding trades communication for memory: the parameter gathers
	// are exposed traffic DDP never pays, and ZeRO-3's backward
	// re-gather makes it the most expensive of the three.
	if !(ddp.TotalSeconds < z2.TotalSeconds && z2.TotalSeconds < z3.TotalSeconds) {
		t.Fatalf("latency order ddp < zero2 < zero3 violated: %v, %v, %v",
			ddp.TotalSeconds, z2.TotalSeconds, z3.TotalSeconds)
	}
	// The sharded optimizer touches only the owned 1/world of the state.
	if z2.OptimizerSeconds >= ddp.OptimizerSeconds {
		t.Fatalf("sharded optimizer (%v) not cheaper than replicated (%v)",
			z2.OptimizerSeconds, ddp.OptimizerSeconds)
	}
	// "ddp" is an alias for the replicated default.
	alias := resnetCfg()
	alias.Strategy = "ddp"
	ab, err := SimulateIteration(alias)
	if err != nil {
		t.Fatal(err)
	}
	if ab.TotalSeconds != ddp.TotalSeconds {
		t.Fatalf("strategy \"ddp\" (%v) differs from default (%v)", ab.TotalSeconds, ddp.TotalSeconds)
	}
}

func TestShardedSingleGPUHasNoCommunication(t *testing.T) {
	cfg := resnetCfg()
	cfg.World = 1
	cfg.Strategy = "zero3"
	b, err := SimulateIteration(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.CommSeconds != 0 || b.ExposedCommSeconds != 0 {
		t.Fatalf("single-rank sharded run should not communicate: %+v", b)
	}
}
