// Package simnet is the discrete-event simulator that stands in for the
// paper's 32–256 GPU testbed (see DESIGN.md substitutions). It replays
// the *same bucket schedule the real DDP reducer computes* — via
// ddp.AssignBuckets — against the hw package's calibrated NCCL/Gloo and
// GPU/CPU cost curves, reproducing per-iteration latency as a function
// of bucket size, world size, overlap, no_sync frequency, and the number
// of round-robin communication streams.
//
// The simulated timeline of one synchronized iteration:
//
//	forward ──► backward compute (gradients ready in reverse parameter
//	order, at times proportional to cumulative size) ──► each bucket
//	becomes ready when its last gradient lands ──► AllReduces launch in
//	bucket order on one of s communication streams ──► the optimizer
//	runs after both the backward compute and the last AllReduce finish.
//
// which is exactly Algorithm 1's behaviour.
package simnet

import (
	"fmt"
	"math/rand"

	"repro/internal/ddp"
	"repro/internal/hw"
)

// Config describes one simulated training configuration.
type Config struct {
	// ParamSizes are per-parameter element counts in registration order
	// (use models.Profile.Sizes()).
	ParamSizes []int
	// BucketCapBytes is DDP's bucket_cap_mb knob in bytes; <= -1 means
	// one bucket per parameter (the "0MB" baseline), 0 means the 25MB
	// default.
	BucketCapBytes int
	// World is the number of GPUs.
	World int
	// Backend picks the communication cost profile.
	Backend hw.Backend
	// Device picks the compute cost profile.
	Device hw.Device
	// ComputeIntensity is the workload's compute-per-parameter factor
	// (models.Profile.ComputeIntensity); 0 means 1.0 (conv-like).
	ComputeIntensity float64
	// Cluster is the hardware model (DefaultCluster if zero GPUsPerServer).
	Cluster hw.Cluster
	// Overlap enables DDP's communication/computation overlap; false
	// models the naive barrier-after-backward baseline of Fig 6.
	Overlap bool
	// SyncEveryN synchronizes gradients every n-th iteration (no_sync);
	// 0 or 1 means every iteration.
	SyncEveryN int
	// CommStreams is the number of round-robin process groups (Fig 12);
	// 0 or 1 means a single group.
	CommStreams int
	// CompressionRatio divides communicated bytes (Section 6.2.3
	// gradient compression ablation); 0 or 1 means uncompressed.
	CompressionRatio float64
	// Hierarchical prices AllReduces with the topology-aware
	// hierarchical cost model (hw.HierarchicalAllReduceSeconds: intra-
	// host reduce, leader-only inter-host ring, intra-host broadcast)
	// instead of the flat ring. Identical to the flat model while the
	// world fits one server.
	Hierarchical bool
	// DoubleTree prices AllReduces with the double-binary-tree cost
	// model (hw.DoubleTreeAllReduceSeconds: two complementary pipelined
	// trees, log-depth latency) instead of the flat ring. Takes
	// precedence over Hierarchical — comm's Auto policy never selects
	// both for the same bucket.
	DoubleTree bool
	// TopologyGroupSizes, when non-empty, prices hierarchical
	// AllReduces with the N-level model (hw.NLevelAllReduceSeconds)
	// over these per-level group sizes, outermost-first with ranks-
	// per-host last — matching comm.Topology's structured "/" labels.
	// Only consulted when Hierarchical is set.
	TopologyGroupSizes []int
	// Strategy selects the data-parallel state layout: "" or "ddp" is
	// replicated DDP (per-bucket AllReduce), "zero2" shards gradients
	// and optimizer state (per-bucket ReduceScatter in backward, one
	// parameter AllGather after the sharded optimizer step), "zero3"
	// also shards parameters (per-bucket AllGather in forward, re-gather
	// plus ReduceScatter in backward). The half-collectives are priced
	// with the flat-ring model (hw.ReduceScatterSeconds /
	// hw.AllGatherSeconds); Hierarchical/DoubleTree only affect
	// AllReduce, matching comm's algorithm policy.
	Strategy string
	// Jitter enables the stochastic effects observed in the paper's
	// box-whisker plots: per-iteration noise, stragglers growing with
	// world size, and delay spikes at 100-iteration boundaries.
	Jitter bool
	// Seed drives the jitter RNG.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BucketCapBytes == 0 {
		c.BucketCapBytes = ddp.DefaultBucketCapBytes
	}
	if c.SyncEveryN <= 0 {
		c.SyncEveryN = 1
	}
	if c.CommStreams <= 0 {
		c.CommStreams = 1
	}
	if c.CompressionRatio <= 0 {
		c.CompressionRatio = 1
	}
	if c.ComputeIntensity <= 0 {
		c.ComputeIntensity = 1
	}
	if c.Cluster.GPUsPerServer == 0 {
		c.Cluster = hw.DefaultCluster()
	}
	if c.Strategy == "ddp" {
		c.Strategy = ""
	}
	return c
}

// allReduceCost prices one bucket's AllReduce under the configured
// algorithm family: double tree, N-level or two-level hierarchy, or
// the flat ring.
func (c Config) allReduceCost(bytes int) float64 {
	switch {
	case c.DoubleTree:
		return c.Cluster.DoubleTreeAllReduceSeconds(c.Backend, bytes, c.World)
	case c.Hierarchical && len(c.TopologyGroupSizes) > 0:
		return c.Cluster.NLevelAllReduceSeconds(c.Backend, bytes, c.World, c.TopologyGroupSizes)
	case c.Hierarchical:
		return c.Cluster.HierarchicalAllReduceSeconds(c.Backend, bytes, c.World)
	default:
		return c.Cluster.AllReduceSeconds(c.Backend, bytes, c.World)
	}
}

// Breakdown is the per-iteration latency decomposition of Fig 6.
type Breakdown struct {
	// ForwardSeconds is the forward-pass segment.
	ForwardSeconds float64
	// BackwardComputeSeconds is gradient computation.
	BackwardComputeSeconds float64
	// CommSeconds is the total AllReduce busy time (Fig 6's
	// "communication" segment; with overlap much of it hides under
	// backward compute).
	CommSeconds float64
	// ExposedCommSeconds is the communication time NOT hidden by
	// backward computation — what actually lengthens the iteration.
	ExposedCommSeconds float64
	// OptimizerSeconds is the optimizer-step segment.
	OptimizerSeconds float64
	// TotalSeconds is the per-iteration latency.
	TotalSeconds float64
	// Buckets is the number of gradient buckets used.
	Buckets int
}

// BucketEvent is one bucket's simulated schedule within an iteration —
// the event log of Algorithm 1's communication side.
type BucketEvent struct {
	// Bucket is the bucket index (launch order).
	Bucket int
	// Bytes is the communicated size after compression.
	Bytes int
	// ReadySeconds is when the bucket's last gradient landed.
	ReadySeconds float64
	// StartSeconds is when its AllReduce began (>= ready, and >= the
	// previous op's end on the same communication stream).
	StartSeconds float64
	// EndSeconds is when its AllReduce finished.
	EndSeconds float64
	// Stream is the round-robin communication stream it ran on.
	Stream int
}

// SimulateIteration computes one synchronized iteration's breakdown
// (deterministic; apply jitter via Run for distributions).
func SimulateIteration(cfg Config) (Breakdown, error) {
	b, _, err := SimulateIterationTimeline(cfg)
	return b, err
}

// SimulateIterationTimeline is SimulateIteration returning the
// per-bucket schedule as well, for schedule-level analysis and tests.
func SimulateIterationTimeline(cfg Config) (Breakdown, []BucketEvent, error) {
	cfg = cfg.withDefaults()
	return simulate(cfg, nil, 0)
}

// simulate runs the event model; rng may be nil for determinism. iter is
// used for 100-iteration boundary spikes.
func simulate(cfg Config, rng *rand.Rand, iter int) (Breakdown, []BucketEvent, error) {
	n := len(cfg.ParamSizes)
	if n == 0 {
		return Breakdown{}, nil, fmt.Errorf("simnet: empty model")
	}
	total := 0
	for _, s := range cfg.ParamSizes {
		total += s
	}
	prof := hw.ProfileScaled(cfg.Device, total, cfg.ComputeIntensity)

	assign, err := ddp.AssignBuckets(cfg.ParamSizes, cfg.BucketCapBytes, 4, ddp.ReverseOrder(n))
	if err != nil {
		return Breakdown{}, nil, err
	}

	// Jitter: compute noise is a straggler effect (max over world of
	// per-rank noise, so it grows with scale); spikes at 100-iteration
	// boundaries model DDP instance re-construction and input
	// regeneration (the outliers the paper calls out in Fig 7).
	computeScale := 1.0
	spike := 0.0
	if cfg.Jitter && rng != nil {
		straggler := 0.0
		for r := 0; r < cfg.World; r++ {
			if v := rng.NormFloat64() * 0.015; v > straggler {
				straggler = v
			}
		}
		computeScale = 1 + straggler + 0.005*rng.NormFloat64()
		if computeScale < 0.9 {
			computeScale = 0.9
		}
		if iter > 0 && iter%100 == 0 {
			spike = prof.TotalSeconds() * (0.3 + 0.2*rng.Float64())
		}
	}

	forward := prof.ForwardSeconds * computeScale
	backward := prof.BackwardSeconds * computeScale
	optimizer := prof.OptimizerSeconds
	if cfg.Strategy != "" {
		// The sharded optimizer touches only the owned 1/world of the
		// state (a memory-bound pass, so it scales with elements).
		optimizer /= float64(cfg.World)
	}

	// Bucket ready times: gradients land in reverse registration order;
	// a bucket is ready when its last (largest-cumulative) member lands.
	readyAt := make([]float64, assign.NumBuckets())
	cum := 0
	for b, members := range assign.Buckets {
		for _, idx := range members {
			cum += cfg.ParamSizes[idx]
		}
		readyAt[b] = prof.GradReadySeconds(cum, total) * computeScale
	}

	// Communication: buckets launch in order onto s round-robin streams.
	streams := make([]float64, cfg.CommStreams) // per-stream free time
	commBusy := 0.0
	lastCommEnd := 0.0
	events := make([]BucketEvent, 0, assign.NumBuckets())
	// Sharded strategies exchange state outside the backward stream
	// loop too: ZeRO-3 gathers every parameter bucket in forward (fully
	// exposed — compute cannot start on unmaterialized layers), ZeRO-2
	// re-gathers replicated parameters once after the sharded optimizer
	// step. Gathers move raw parameter bytes; gradient compression only
	// applies to the reduction path.
	var gatherExposed float64
	if cfg.Strategy != "" {
		for b := 0; b < assign.NumBuckets(); b++ {
			raw := assign.BucketElems[b] * 4
			gatherExposed += cfg.Cluster.AllGatherSeconds(cfg.Backend, raw, cfg.World)
		}
	}
	for b := 0; b < assign.NumBuckets(); b++ {
		bytes := int(float64(assign.BucketElems[b]*4) / cfg.CompressionRatio)
		var cost float64
		switch cfg.Strategy {
		case "zero2":
			// Backward reduces each bucket to its owner shard only.
			cost = cfg.Cluster.ReduceScatterSeconds(cfg.Backend, bytes, cfg.World)
		case "zero3":
			// Backward re-gathers the (freed) parameter bucket for
			// gradient computation, then reduce-scatters the gradients.
			cost = cfg.Cluster.AllGatherSeconds(cfg.Backend, assign.BucketElems[b]*4, cfg.World) +
				cfg.Cluster.ReduceScatterSeconds(cfg.Backend, bytes, cfg.World)
		default:
			cost = cfg.allReduceCost(bytes)
		}
		commBusy += cost
		s := b % cfg.CommStreams
		start := readyAt[b]
		if !cfg.Overlap {
			start = backward // barrier: communication begins after backward
		}
		if streams[s] > start {
			start = streams[s]
		}
		end := start + cost
		streams[s] = end
		if end > lastCommEnd {
			lastCommEnd = end
		}
		events = append(events, BucketEvent{
			Bucket:       b,
			Bytes:        bytes,
			ReadySeconds: readyAt[b],
			StartSeconds: start,
			EndSeconds:   end,
			Stream:       s,
		})
	}

	backwardSpan := backward
	if cfg.World > 1 && lastCommEnd > backwardSpan {
		backwardSpan = lastCommEnd
	}
	exposed := backwardSpan - backward
	if cfg.World > 1 {
		// Gather traffic never hides under backward compute: ZeRO-3
		// pays it before forward can run, ZeRO-2 after the optimizer.
		commBusy += gatherExposed
		exposed += gatherExposed
	} else {
		gatherExposed = 0
	}

	totalLatency := forward + backwardSpan + optimizer + gatherExposed + spike
	return Breakdown{
		ForwardSeconds:         forward,
		BackwardComputeSeconds: backward,
		CommSeconds:            commBusy,
		ExposedCommSeconds:     exposed,
		OptimizerSeconds:       optimizer,
		TotalSeconds:           totalLatency,
		Buckets:                assign.NumBuckets(),
	}, events, nil
}

// Run simulates iters training iterations and returns each iteration's
// latency in seconds, honouring SyncEveryN: skipped iterations carry no
// communication at all (DDP hooks disabled under no_sync).
func Run(cfg Config, iters int) ([]float64, error) {
	cfg = cfg.withDefaults()
	var rng *rand.Rand
	if cfg.Jitter {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	latencies := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		syncIter := (i+1)%cfg.SyncEveryN == 0
		c := cfg
		if !syncIter {
			// Local-only iteration: same compute, no communication.
			c.World = 1
		}
		b, _, err := simulate(c, rng, i)
		if err != nil {
			return nil, err
		}
		latencies = append(latencies, b.TotalSeconds)
	}
	return latencies, nil
}

// MeanLatency runs the simulation and returns the average per-iteration
// latency — the metric of Figs 9 and 10.
func MeanLatency(cfg Config, iters int) (float64, error) {
	lat, err := Run(cfg, iters)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range lat {
		sum += v
	}
	return sum / float64(len(lat)), nil
}
