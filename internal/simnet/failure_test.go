package simnet

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/models"
)

func elasticCfg(world int) Config {
	return Config{
		ParamSizes: models.ResNet50().Sizes(),
		World:      world,
		Backend:    hw.NCCLLike,
		Device:     hw.GPU,
		Overlap:    true,
	}
}

func TestRunElasticRecoveryAccounting(t *testing.T) {
	const (
		iters  = 20
		failAt = 7
	)
	plan := FailurePlan{FailAtIter: failAt, LeaseSeconds: 0.5}
	lat, rb, err := RunElastic(elasticCfg(8), iters, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(lat) != iters {
		t.Fatalf("got %d latencies, want %d", len(lat), iters)
	}

	sum := rb.LostWorkSeconds + rb.DetectionSeconds + rb.RendezvousSeconds +
		rb.RebuildSeconds + rb.StateSyncSeconds
	if math.Abs(sum-rb.TotalSeconds) > 1e-12 {
		t.Fatalf("breakdown does not sum: %v vs %v", sum, rb.TotalSeconds)
	}
	if rb.DetectionSeconds != plan.LeaseSeconds {
		t.Fatalf("detection %v, want the lease %v", rb.DetectionSeconds, plan.LeaseSeconds)
	}
	if rb.StateSyncSeconds <= 0 || rb.LostWorkSeconds <= 0 {
		t.Fatalf("degenerate breakdown: %+v", rb)
	}

	// Pre-failure iterations are uniform, the failure iteration
	// absorbs the stall, and post-failure iterations run at world-1.
	pre, _, _ := SimulateIterationTimeline(elasticCfg(8))
	post, _, _ := SimulateIterationTimeline(elasticCfg(7))
	for i := 0; i < failAt; i++ {
		if lat[i] != pre.TotalSeconds {
			t.Fatalf("iteration %d latency %v, want %v", i, lat[i], pre.TotalSeconds)
		}
	}
	if want := rb.TotalSeconds + post.TotalSeconds; lat[failAt] != want {
		t.Fatalf("failure iteration latency %v, want %v", lat[failAt], want)
	}
	for i := failAt + 1; i < iters; i++ {
		if lat[i] != post.TotalSeconds {
			t.Fatalf("iteration %d latency %v, want %v", i, lat[i], post.TotalSeconds)
		}
	}
}

func TestRunElasticLeaseDominatesSmallModels(t *testing.T) {
	// With a tiny model, detection (the lease) should dominate the
	// stall — the tuning insight the simulation exists to expose.
	cfg := elasticCfg(4)
	cfg.ParamSizes = []int{1000}
	_, rb, err := RunElastic(cfg, 5, FailurePlan{FailAtIter: 1, LeaseSeconds: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if rb.DetectionSeconds < rb.StateSyncSeconds {
		t.Fatalf("expected lease to dominate: %+v", rb)
	}
	// And a 340M-parameter model must pay materially more state-sync
	// time than the 1k one.
	big := elasticCfg(4)
	big.ParamSizes = models.BERTLarge().Sizes()
	_, rbBig, err := RunElastic(big, 5, FailurePlan{FailAtIter: 1, LeaseSeconds: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if rbBig.StateSyncSeconds <= rb.StateSyncSeconds {
		t.Fatalf("state sync did not scale with model size: %v vs %v",
			rbBig.StateSyncSeconds, rb.StateSyncSeconds)
	}
	if _, _, err := RunElastic(elasticCfg(1), 5, FailurePlan{}); err == nil {
		t.Fatal("World=1 should be rejected")
	}
	if _, _, err := RunElastic(elasticCfg(2), 5, FailurePlan{FailAtIter: 9}); err == nil {
		t.Fatal("out-of-range FailAtIter should be rejected")
	}
}

func TestRunElasticRejectsDegenerateInputs(t *testing.T) {
	// The edge cases used to produce empty or NaN timelines (iters <= 0)
	// or an unnamed error (World < 2); both must now fail fast with
	// named sentinels callers can match on.
	cases := []struct {
		name  string
		world int
		iters int
		plan  FailurePlan
		want  error
	}{
		{"zero iters", 4, 0, FailurePlan{}, ErrNoIterations},
		{"negative iters", 4, -3, FailurePlan{FailAtIter: 1}, ErrNoIterations},
		{"world 1", 1, 10, FailurePlan{FailAtIter: 2}, ErrWorldTooSmall},
		{"world 0", 0, 10, FailurePlan{FailAtIter: 2}, ErrWorldTooSmall},
		{"negative fail iter", 4, 10, FailurePlan{FailAtIter: -1}, ErrFailIterOutOfRange},
		{"fail iter at end", 4, 10, FailurePlan{FailAtIter: 10}, ErrFailIterOutOfRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			lat, _, err := RunElastic(elasticCfg(tc.world), tc.iters, tc.plan)
			if !errors.Is(err, tc.want) {
				t.Fatalf("RunElastic(world=%d, iters=%d, %+v) error = %v, want %v",
					tc.world, tc.iters, tc.plan, err, tc.want)
			}
			if lat != nil {
				t.Fatalf("rejected run still produced a timeline of %d entries", len(lat))
			}
		})
	}
}
