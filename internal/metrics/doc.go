// Package metrics is a dependency-free Prometheus instrumentation
// library: counters, gauges, and log-bucketed histograms registered in
// a process-wide (or test-local) Registry and rendered in the text
// exposition format (version 0.0.4) that any Prometheus-compatible
// scraper ingests.
//
// The paper argues entirely through measurement — per-phase latency
// breakdowns (Fig 6), collective latency distributions (Figs 7–8) —
// and this package is the runtime half of that methodology: every hot
// path in the system (collectives, transport frames, DDP bucket
// reductions, checkpoint saves, elastic recoveries) reports through
// instruments registered here, and ddptrain exports the lot over HTTP
// with -metrics-addr.
//
// # Design
//
//   - Registration is idempotent: the same (name, kind, labels,
//     buckets) schema returns the existing family, so instruments can
//     be declared as package-level vars wherever they are used. A
//     conflicting schema panics — that is a programming error.
//   - Samples are lock-free on the hot path: scalar values and
//     histogram bucket counts are atomics; float updates use CAS on
//     the IEEE-754 bit pattern.
//   - Scrapes are snapshots: WriteTo copies the family list and every
//     sample under the registry lock and atomics before encoding, so a
//     scrape never observes a torn value and never blocks an observer.
//   - Histograms store per-bucket counts and cumulate only at render
//     time; Snapshot exposes the same state programmatically with a
//     Quantile estimator, which is how bench output and runtime
//     metrics share one schema.
//
// Unlabeled instruments eagerly create their single sample, so every
// registered family appears in the very first scrape — absence of a
// metric means absence of the code path, not "no events yet".
package metrics
