package metrics

import (
	"bytes"
	"net"
	"net/http"
)

// Handler returns an http.Handler that serves the registry's scrape.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		if _, err := r.WriteTo(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write(buf.Bytes())
	})
}

// Server is a running scrape endpoint started by Serve.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server exposing the registry at /metrics on
// addr (":0" picks a free port) and returns immediately; scrape it at
// http://<Addr()>/metrics.
func (r *Registry) Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }
