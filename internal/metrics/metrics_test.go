package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	r.Counter("c_total", "").Add(-1)
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.CounterVec("x_total", "h", "k")
	b := r.CounterVec("x_total", "h", "k")
	a.With("v").Add(2)
	if got := b.With("v").Value(); got != 2 {
		t.Fatalf("second registration sees %v, want 2 (same family)", got)
	}
}

func TestConflictingRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "h", "k")
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting registration did not panic")
		}
	}()
	r.GaugeVec("x_total", "h", "k")
}

func TestLabelArityMismatchPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x_total", "h", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "2x", "has space", "dash-ed"} {
		func() {
			defer func() { _ = recover() }()
			r.Counter(bad, "")
			t.Fatalf("metric name %q accepted", bad)
		}()
	}
	func() {
		defer func() { _ = recover() }()
		r.CounterVec("ok_total", "", "le")
		t.Fatal(`label name "le" accepted`)
	}()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 0, 1, 1} // le=1 gets both 0.5 and the exact bound 1
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 4 || s.Sum != 551.5 {
		t.Fatalf("count/sum = %d/%v", s.Count, s.Sum)
	}
	if got := s.Mean(); got != 551.5/4 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "", []float64{10, 20, 30})
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in first bucket
	}
	s := h.Snapshot()
	// Uniform-in-bucket assumption: median of 10 obs in (0,10] ≈ 5.
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	h.Observe(1000) // overflow bucket
	s = h.Snapshot()
	if got := s.Quantile(0.999); got != 30 {
		t.Fatalf("overflow quantile = %v, want largest finite bound 30", got)
	}
	if got := (HistogramSnapshot{}).Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", got)
		}
	}
	if len(DurationBuckets) != 27 || DurationBuckets[0] != 1e-6 {
		t.Fatalf("DurationBuckets = %v", DurationBuckets)
	}
}

// TestConcurrentRegistrationAndScrape hammers one registry from
// registering writers and scraping readers at once; run under -race it
// is the package's data-race gate.
func TestConcurrentRegistrationAndScrape(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", w)
			for i := 0; i < iters; i++ {
				r.CounterVec("conc_events_total", "events", "worker").With(label).Inc()
				r.HistogramVec("conc_latency_seconds", "latency", DurationBuckets, "worker").
					With(label).Observe(float64(i) * 1e-6)
				r.Gauge("conc_last", "last value").Set(float64(i))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		if _, err := r.WriteTo(io.Discard); err != nil {
			t.Fatalf("scrape during writes: %v", err)
		}
		select {
		case <-done:
			var total float64
			for w := 0; w < workers; w++ {
				total += r.CounterVec("conc_events_total", "events", "worker").
					With(fmt.Sprintf("w%d", w)).Value()
			}
			if total != workers*iters {
				t.Fatalf("lost increments: %v, want %d", total, workers*iters)
			}
			return
		default:
		}
	}
}

func TestServeScrapeEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("srv_hits_total", "hits").Add(5)
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(string(body), "srv_hits_total 5\n") {
		t.Fatalf("scrape body missing sample:\n%s", body)
	}
}

func TestQuantileInterpolatesAcrossBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("hq_seconds", "", []float64{1, 2, 4})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	h.Observe(3.5)
	s := h.Snapshot()
	// target for q=0.75 is rank 3; cumulative hits 3rd bucket (2,4]
	// holding 2 obs with 2 already below: lo=2, interpolate (3-2)/2 of
	// the width 2 → 3.
	if got := s.Quantile(0.75); math.Abs(got-3) > 1e-12 {
		t.Fatalf("p75 = %v, want 3", got)
	}
}
