package metrics

import (
	"strings"
	"testing"
)

// FuzzMetricsParse round-trips arbitrary strings through the text
// renderer's escaping: a label value and a help string go in, the
// exposition output is parsed back line by line, and the unescaped
// value must equal the original. This is the property Prometheus
// scraping depends on — a newline or quote smuggled through unescaped
// splits a sample line and corrupts every series after it.
func FuzzMetricsParse(f *testing.F) {
	f.Add("plain", "help text")
	f.Add(`with"quote`, `back\slash`)
	f.Add("multi\nline\nvalue", "help\nwith\nnewlines")
	f.Add(`\n already escaped?`, `trailing backslash\`)
	f.Add("", "")
	f.Add("\x00\xff invalid utf8 \xc3", "bytes")

	f.Fuzz(func(t *testing.T, labelValue, help string) {
		r := NewRegistry()
		r.GaugeVec("fuzz_gauge", help, "lv").With(labelValue).Set(1)
		var sb strings.Builder
		if _, err := r.WriteTo(&sb); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		out := sb.String()

		var gotValue, gotHelp string
		var sawSample, sawHelp bool
		for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
			switch {
			case strings.HasPrefix(line, "# HELP fuzz_gauge "):
				sawHelp = true
				gotHelp = unescapeText(strings.TrimPrefix(line, "# HELP fuzz_gauge "))
			case strings.HasPrefix(line, "# "):
				// TYPE or other comment lines.
			case strings.HasPrefix(line, "fuzz_gauge{lv=\""):
				sawSample = true
				rest := strings.TrimPrefix(line, "fuzz_gauge{lv=\"")
				val, ok := cutQuoted(rest)
				if !ok {
					t.Fatalf("sample line has no closing quote: %q", line)
				}
				gotValue = unescapeText(val)
			case line == "":
			default:
				t.Fatalf("unparseable exposition line %q in:\n%s", line, out)
			}
		}
		if !sawSample {
			t.Fatalf("no sample line rendered in:\n%s", out)
		}
		if gotValue != labelValue {
			t.Fatalf("label value round trip: %q -> %q", labelValue, gotValue)
		}
		if help != "" && !sawHelp {
			t.Fatalf("no HELP line rendered for non-empty help in:\n%s", out)
		}
		if sawHelp && gotHelp != help {
			t.Fatalf("help round trip: %q -> %q", help, gotHelp)
		}
	})
}

// cutQuoted scans s up to the first unescaped double quote, returning
// the (still escaped) prefix.
func cutQuoted(s string) (string, bool) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++ // skip the escaped byte
		case '"':
			return s[:i], true
		}
	}
	return "", false
}

// unescapeText reverses the renderer's escaping: \\ -> \, \n ->
// newline, \" -> ". Left to right, so "\\n" decodes to `\n` (backslash
// + n), not a newline.
func unescapeText(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				sb.WriteByte('\\')
				i++
				continue
			case 'n':
				sb.WriteByte('\n')
				i++
				continue
			case '"':
				sb.WriteByte('"')
				i++
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
