package metrics

import (
	"bufio"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WriteTo renders every family in Prometheus text exposition format
// (version 0.0.4): families sorted by name, children sorted by label
// values, histogram buckets cumulative and terminated by +Inf, help and
// label values escaped per the format's rules.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	cw := &countingWriter{w: bufio.NewWriter(w)}
	for _, f := range fams {
		f.write(cw)
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	if err := cw.w.(*bufio.Writer).Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) WriteString(s string) {
	if cw.err != nil {
		return
	}
	n, err := io.WriteString(cw.w, s)
	cw.n += int64(n)
	cw.err = err
}

func (f *family) write(cw *countingWriter) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.RUnlock()
	if len(children) == 0 {
		return
	}

	if f.help != "" {
		cw.WriteString("# HELP " + f.name + " " + escapeHelp(f.help) + "\n")
	}
	cw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
	for _, c := range children {
		if f.kind == kindHistogram {
			f.writeHistogram(cw, c)
			continue
		}
		cw.WriteString(f.name + labelSet(f.labels, c.values, "", "") + " " +
			formatValue(math.Float64frombits(c.bits.Load())) + "\n")
	}
}

func (f *family) writeHistogram(cw *countingWriter, c *child) {
	var cum uint64
	for i, b := range f.bounds {
		cum += c.counts[i].Load()
		cw.WriteString(f.name + "_bucket" + labelSet(f.labels, c.values, "le", formatValue(b)) + " " +
			strconv.FormatUint(cum, 10) + "\n")
	}
	cum += c.counts[len(f.bounds)].Load()
	cw.WriteString(f.name + "_bucket" + labelSet(f.labels, c.values, "le", "+Inf") + " " +
		strconv.FormatUint(cum, 10) + "\n")
	cw.WriteString(f.name + "_sum" + labelSet(f.labels, c.values, "", "") + " " +
		formatValue(math.Float64frombits(c.sumBits.Load())) + "\n")
	cw.WriteString(f.name + "_count" + labelSet(f.labels, c.values, "", "") + " " +
		strconv.FormatUint(c.count.Load(), 10) + "\n")
}

// labelSet renders {name="value",...} in declaration order, appending
// the extra pair (histograms' le) last. No labels renders as "".
func labelSet(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(extraName)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(extraValue))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	labelEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
