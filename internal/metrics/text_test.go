package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestScrapeGolden pins the exact text-format bytes: family and child
// ordering, HELP/label escaping, histogram bucket cumulativity and the
// +Inf terminator. Regenerate with -update-golden after a deliberate
// format change.
func TestScrapeGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Total requests.").Add(3)

	ev := r.CounterVec("test_errors_total", "Errors by kind.", "kind")
	ev.With("io").Inc()
	ev.With("eof").Add(2)

	r.Gauge("test_temp_celsius", "Backslash \\ and\nnewline in help.").Set(-4.5)
	r.GaugeVec("test_info", "Labeled gauge.", "version", "note").
		With(`v"1\2`, "line1\nline2").Set(1)

	h := r.Histogram("test_latency_seconds", "Latency.", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 50, 500} {
		h.Observe(v)
	}
	r.HistogramVec("test_sizes_bytes", "Sizes.", []float64{1, 10}, "op").
		With("read").Observe(3)

	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, wrote %d", n, buf.Len())
	}

	golden := filepath.Join("testdata", "scrape.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("scrape differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, buf.Bytes(), want)
	}
}
