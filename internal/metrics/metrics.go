package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; a scrape
// sees a point-in-time snapshot of every sample it renders (each sample
// is read atomically, families and children are copied under lock
// before encoding).
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every package-level
// instrument in this repository registers into, and the one ddptrain's
// -metrics-addr endpoint serves.
func Default() *Registry { return defaultRegistry }

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with a fixed label schema and a child per
// observed label-value combination.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64 // histogram upper bounds, ascending, finite

	mu       sync.RWMutex
	children map[string]*child
}

// child is one (metric, label values) sample series. Scalar kinds use
// bits; histograms use counts/count/sumBits. Float values are stored as
// IEEE-754 bit patterns so they can be updated with atomic CAS without
// any per-sample lock.
type child struct {
	values  []string
	bits    atomic.Uint64   // counter/gauge value
	counts  []atomic.Uint64 // per-bucket (non-cumulative), len(bounds)+1
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// register returns the family for name, creating it on first use. A
// second registration with the same schema returns the existing family
// (idempotent, so package-level instruments can be declared wherever
// they are used); a schema mismatch panics — two call sites disagreeing
// on a metric's meaning is a programming error, not a runtime
// condition.
func (r *Registry) register(name, help string, k kind, labels []string, bounds []float64) *family {
	mustValidName(name)
	for _, l := range labels {
		mustValidLabel(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("metrics: conflicting registration of %q", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: make(map[string]*child),
	}
	r.families[name] = f
	return f
}

// with returns the child for the given label values, creating it on
// first use.
func (f *family) with(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q expects %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{values: append([]string(nil), values...)}
	if f.kind == kindHistogram {
		c.counts = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = c
	return c
}

// Counter is a monotonically increasing sample series.
type Counter struct{ c *child }

// Inc adds 1.
func (c Counter) Inc() { addFloat(&c.c.bits, 1) }

// Add adds v, which must not be negative.
func (c Counter) Add(v float64) {
	if v < 0 {
		panic("metrics: counter Add with negative value")
	}
	addFloat(&c.c.bits, v)
}

// Value returns the current count.
func (c Counter) Value() float64 { return math.Float64frombits(c.c.bits.Load()) }

// Gauge is a sample series that can go up and down.
type Gauge struct{ c *child }

// Set replaces the gauge's value.
func (g Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g Gauge) Add(v float64) { addFloat(&g.c.bits, v) }

// Value returns the current value.
func (g Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// Histogram counts observations into fixed buckets and tracks their
// sum, rendering Prometheus's cumulative _bucket/_sum/_count series.
type Histogram struct {
	c      *child
	bounds []float64
}

// Observe records one observation.
func (h Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.c.counts[i].Add(1)
	h.c.count.Add(1)
	addFloat(&h.c.sumBits, v)
}

// Snapshot returns a point-in-time copy of the histogram's state.
// Concurrent observers may land between field reads; each individual
// field is consistent, which is all a monitoring read needs.
func (h Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.c.counts)),
		Count:  h.c.count.Load(),
		Sum:    math.Float64frombits(h.c.sumBits.Load()),
	}
	for i := range h.c.counts {
		s.Counts[i] = h.c.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a copied histogram state: Bounds are the finite
// upper bounds; Counts holds one non-cumulative count per bucket plus a
// final overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

// Quantile estimates the q-quantile (0 <= q <= 1) assuming observations
// are uniform within each bucket. The overflow bucket cannot be
// interpolated, so quantiles landing there return the largest finite
// bound. An empty histogram returns 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := q * float64(s.Count)
	var cum float64
	for i, n := range s.Counts {
		prev := cum
		cum += float64(n)
		if cum < target || n == 0 {
			continue
		}
		if i == len(s.Bounds) { // overflow bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(target-prev)/float64(n)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values (one per declared
// label, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) Counter { return Counter{v.f.with(values)} }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) Gauge { return Gauge{v.f.with(values)} }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) Histogram {
	return Histogram{c: v.f.with(values), bounds: v.f.bounds}
}

// Counter registers (or finds) an unlabeled counter. The sample exists
// from registration, so the family appears in scrapes before the first
// event.
func (r *Registry) Counter(name, help string) Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return Counter{f.with(nil)}
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return Gauge{f.with(nil)}
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram with the given
// ascending finite bucket upper bounds (the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	f := r.register(name, help, kindHistogram, nil, mustValidBounds(bounds))
	return Histogram{c: f.with(nil), bounds: f.bounds}
}

// HistogramVec registers (or finds) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labels, mustValidBounds(bounds))}
}

// ExpBuckets returns n exponentially spaced upper bounds starting at
// start (> 0) and growing by factor (> 1) — the log-bucketed layout
// latency and size distributions want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// DurationBuckets spans 1µs to ~67s in powers of two — wide enough for
// in-process collectives and multi-second recoveries alike.
var DurationBuckets = ExpBuckets(1e-6, 2, 27)

// SizeBuckets spans 64 B to ~4 GiB in powers of four, for payload and
// wire-byte histograms.
var SizeBuckets = ExpBuckets(64, 4, 14)

func mustValidBounds(bounds []float64) []float64 {
	if len(bounds) == 0 {
		panic("metrics: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic("metrics: histogram bounds must be finite")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return bounds
}

func mustValidName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validName(name, false) || name == "le" {
		panic(fmt.Sprintf("metrics: invalid label name %q", name))
	}
}

// validName checks Prometheus's identifier grammar; colons are legal in
// metric names but not label names.
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r == ':' && allowColon:
		case r >= '0' && r <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
