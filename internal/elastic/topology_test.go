package elastic

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/store"
)

// runRefPhaseTopo is runRefPhase with an explicit AllReduce algorithm
// and host layout: the reference replays exactly the topology the
// elastic run's rendezvous produced, so the comparison is bitwise.
func runRefPhaseTopo(t *testing.T, workers []*refWorker, start, end int64, algo comm.Algorithm, hosts []string) {
	t.Helper()
	world := len(workers)
	opts := comm.Options{Algorithm: algo, Topology: comm.NewTopology(hosts)}
	groups := comm.NewInProcGroups(world, opts)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := range workers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := workers[r]
			if w.d == nil {
				d, err := ddp.New(w.model, groups[r], ddp.Options{BucketCapBytes: testBucketCap, SkipInitialBroadcast: true})
				if err != nil {
					errs[r] = err
					return
				}
				w.d = d
			} else if err := w.d.SetProcessGroup(groups[r]); err != nil {
				errs[r] = err
				return
			}
			for s := start; s < end; s++ {
				if err := trainStep(w.d, w.opt, s, r, world); err != nil {
					errs[r] = fmt.Errorf("ref step %d: %w", s, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	for _, g := range groups {
		g.Close()
	}
}

// TestTopologyOptionsDropsStaleExplicitLayout: an explicit topology
// configured for one world must not outlive a membership change — a
// regenerated group keeping a 3-rank layout at world 2 would fail
// every Hierarchical collective on the size mismatch, permanently.
func TestTopologyOptionsDropsStaleExplicitLayout(t *testing.T) {
	explicit := comm.NewTopology([]string{"a", "a", "b"})
	a := &Assignment{
		World: 2,
		Members: []Member{
			{ID: "w0", Host: "hostA"},
			{ID: "w1", Host: "hostB"},
		},
	}
	got := topologyOptions(comm.Options{Topology: explicit}, a)
	if got.Topology == nil || got.Topology.Size() != 2 {
		t.Fatalf("stale topology not replaced: %v", got.Topology)
	}
	if got.Topology.HostOf(0) != "hostA" || got.Topology.HostOf(1) != "hostB" {
		t.Fatalf("replacement not derived from round members: %v", got.Topology.Hosts())
	}
	// A still-covering explicit layout is kept verbatim.
	keep := topologyOptions(comm.Options{Topology: explicit}, &Assignment{
		World:   3,
		Members: []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}},
	})
	if keep.Topology != explicit {
		t.Fatal("covering explicit topology should win")
	}
	// No explicit layout + hostless members (mixed versions): no guess.
	none := topologyOptions(comm.Options{}, &Assignment{
		World:   2,
		Members: []Member{{ID: "a"}, {ID: "b", Host: "x"}},
	})
	if none.Topology != nil {
		t.Fatal("partial host info must not produce a topology")
	}
}

// TestElasticRecoveryWithTopologyAwareAllReduce is the acceptance test
// for topology plumbing through elastic recovery: three workers laid
// out over two simulated hosts train with the Hierarchical (and Auto)
// algorithm; one departs mid-run, survivors re-rendezvous, and the
// regenerated group rebuilds its comm.Topology from the new round's
// member hosts. Every executed step records the rank→host layout its
// group actually used; a reference run replays the identical layouts,
// so the final parameters must match BITWISE — any divergence between
// the rebuilt topology and the one the collectives ran with would show
// up as differing reduction order.
func TestElasticRecoveryWithTopologyAwareAllReduce(t *testing.T) {
	for _, algo := range []comm.Algorithm{comm.Hierarchical, comm.Auto} {
		t.Run(algo.String(), func(t *testing.T) {
			runElasticTopologyScenario(t, algo)
		})
	}
}

func runElasticTopologyScenario(t *testing.T, algo comm.Algorithm) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 3 // leaver's last completed step
	)
	hostOf := map[string]string{"w0": "hostA", "w1": "hostA", "w2": "hostB"}

	// stepTopo captures, per executed step, the host layout (by rank)
	// of the group that ran it — the ground truth the reference replays.
	var mu sync.Mutex
	stepTopo := make(map[int64][]string)

	workers := make([]*testWorker, 3)
	for i := range workers {
		id := fmt.Sprintf("w%d", i)
		cfg := testConfig(st, reg, id, 2, 3)
		cfg.Host = hostOf[id]
		cfg.Builder = &InProcBuilder{Registry: reg, Opts: comm.Options{Algorithm: algo}}
		workers[i] = newTestWorker(t, cfg)
	}
	victim := workers[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				hosts := w.agent.Assignment().Hosts()
				if hosts == nil {
					return fmt.Errorf("step %d: assignment published no hosts", ctx.Step)
				}
				mu.Lock()
				stepTopo[ctx.Step] = hosts
				mu.Unlock()
				if w == victim && ctx.Step == k {
					w.agent.Leave() // departs after completing this step
				}
				return elasticStep(ctx)
			})
			errs[i] = w.agent.Run(int64(total), step)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for _, w := range workers[:2] {
		if got := w.agent.Step(); got != total {
			t.Fatalf("survivor finished at step %d, want %d", got, total)
		}
	}

	// The layouts themselves must reflect the rendezvous rounds: three
	// ranks over hostA+hostA+hostB before the departure, the two hostA
	// survivors after it.
	count := func(hosts []string, h string) int {
		n := 0
		for _, x := range hosts {
			if x == h {
				n++
			}
		}
		return n
	}
	for s := int64(0); s < total; s++ {
		hosts := stepTopo[s]
		switch {
		case s <= k:
			if len(hosts) != 3 || count(hosts, "hostA") != 2 || count(hosts, "hostB") != 1 {
				t.Fatalf("step %d layout = %v, want a permutation of hostA,hostA,hostB", s, hosts)
			}
		default:
			if len(hosts) != 2 || count(hosts, "hostA") != 2 {
				t.Fatalf("step %d layout = %v, want hostA,hostA", s, hosts)
			}
		}
	}

	// Reference: replay the captured layouts phase by phase.
	ref := newRefWorkers(3)
	sameLayout := func(a, b []string) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	start := int64(0)
	for s := int64(1); s <= total; s++ {
		if s == total || !sameLayout(stepTopo[s], stepTopo[start]) {
			hosts := stepTopo[start]
			runRefPhaseTopo(t, ref[:len(hosts)], start, s, algo, hosts)
			start = s
		}
	}

	want := flattenParams(ref[0].model)
	assertSameParams(t, "survivor0-vs-ref", flattenParams(workers[0].model), want)
	assertSameParams(t, "survivor1-vs-ref", flattenParams(workers[1].model), want)
}
