package elastic

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
)

// ---- deterministic fixture -------------------------------------------------
//
// The convergence tests compare an elastic run against a plain-DDP
// reference executing the same schedule. Equality can be exact because
// (a) batches are a pure function of (step, rank, world), so the value
// at rank r is the same no matter which physical worker holds rank r,
// (b) all models initialize from the same seed, and (c) state sync is
// a bitwise copy. The only arithmetic is the collectives themselves,
// which see identical operands at identical ranks in both runs.

const (
	testIn      = 8
	testHidden  = 16
	testClasses = 4
	testBatch   = 8
	testLR      = 0.1
	testMom     = 0.9
	// Small bucket cap so the reducer exercises several buckets.
	testBucketCap = 1 << 10
)

func testModel() nn.Module { return models.NewMLP(7, testIn, testHidden, testClasses) }

func batchFor(step int64, rank, world int) (*tensor.Tensor, []int) {
	seed := step*1_000_003 + int64(rank)*10_007 + int64(world)*101
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(testBatch, testIn)
	d := x.Data()
	for i := range d {
		d[i] = rng.Float32()*2 - 1
	}
	labels := make([]int, testBatch)
	for i := range labels {
		labels[i] = rng.Intn(testClasses)
	}
	return x, labels
}

func trainStep(d *ddp.DDP, opt optim.Optimizer, step int64, rank, world int) error {
	x, labels := batchFor(step, rank, world)
	out := d.Forward(autograd.Constant(x))
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := d.Backward(loss); err != nil {
		return err
	}
	opt.Step()
	opt.ZeroGrad()
	return nil
}

func flattenParams(m nn.Module) []float32 {
	var out []float32
	for _, p := range m.Parameters() {
		out = append(out, p.Value.Data()...)
	}
	return out
}

func evalLoss(m nn.Module) float32 {
	x, labels := batchFor(1<<20, 0, 1)
	out := m.Forward(autograd.Constant(x))
	return autograd.CrossEntropyLoss(out, labels).Value.Item()
}

// refWorker is one rank of the plain-DDP reference run.
type refWorker struct {
	model nn.Module
	d     *ddp.DDP
	opt   *optim.SGD
}

func newRefWorkers(n int) []*refWorker {
	ws := make([]*refWorker, n)
	for i := range ws {
		m := testModel()
		opt := optim.NewSGD(m.Parameters(), testLR)
		opt.Momentum = testMom
		ws[i] = &refWorker{model: m, opt: opt}
	}
	return ws
}

// runRefPhase steps workers[0..len) in lockstep from step `start` to
// `end` using fresh in-proc groups of the matching world size.
func runRefPhase(t *testing.T, workers []*refWorker, start, end int64) {
	t.Helper()
	world := len(workers)
	groups := comm.NewInProcGroups(world, comm.Options{})
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := range workers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := workers[r]
			if w.d == nil {
				// Mirror the elastic agent: state is aligned before the
				// wrapper exists (same seed here, SyncState there), so
				// the constructor broadcast is skipped — late phases mix
				// fresh wrappers with group swaps, which submit no
				// collectives to pair with it.
				d, err := ddp.New(w.model, groups[r], ddp.Options{BucketCapBytes: testBucketCap, SkipInitialBroadcast: true})
				if err != nil {
					errs[r] = err
					return
				}
				w.d = d
			} else if err := w.d.SetProcessGroup(groups[r]); err != nil {
				errs[r] = err
				return
			}
			for s := start; s < end; s++ {
				if err := trainStep(w.d, w.opt, s, r, world); err != nil {
					errs[r] = fmt.Errorf("ref step %d: %w", s, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	for _, g := range groups {
		g.Close()
	}
}

// testConfig builds an agent config over a shared store and registry.
func testConfig(st store.Store, reg *comm.InProcRegistry, id string, minW, maxW int) Config {
	return Config{
		Store:             st,
		ID:                id,
		MinWorld:          minW,
		MaxWorld:          maxW,
		Grace:             400 * time.Millisecond,
		HeartbeatInterval: 5 * time.Millisecond,
		// Generous lease: a goroutine starved under -race with the
		// full suite running in parallel must not be declared dead.
		LeaseTimeout: time.Second,
		PollInterval: 2 * time.Millisecond,
		RoundTimeout: 5 * time.Second,
		Builder:      &InProcBuilder{Registry: reg},
		DDP:          ddp.Options{BucketCapBytes: testBucketCap},
	}
}

type testWorker struct {
	agent *Agent
	model nn.Module
	opt   *optim.SGD
}

func newTestWorker(t *testing.T, cfg Config) *testWorker {
	t.Helper()
	m := testModel()
	opt := optim.NewSGD(m.Parameters(), testLR)
	opt.Momentum = testMom
	a, err := NewAgent(cfg, m, opt)
	if err != nil {
		t.Fatalf("NewAgent(%s): %v", cfg.ID, err)
	}
	return &testWorker{agent: a, model: m, opt: opt}
}

func elasticStep(ctx StepContext) error {
	return trainStep(ctx.DDP, ctx.Optimizer, ctx.Step, ctx.Rank, ctx.World)
}

// fullWorld wraps a StepFunc to yield at step 0 until all `want`
// workers have formed the group. Under load, a slow-starting worker
// can miss the grace window and the initial round seals short; the
// latecomer's generation bump then reforms the full world — waiting
// for it here keeps the schedule deterministic without depending on
// scheduler timing.
func fullWorld(a *Agent, want int, next StepFunc) StepFunc {
	return func(ctx StepContext) error {
		if ctx.Step == 0 && ctx.World < want {
			return a.AwaitGenerationChange()
		}
		return next(ctx)
	}
}

func assertSameParams(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: parameter count %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: parameters diverge at %d: %v != %v", name, i, got[i], want[i])
		}
	}
}

// ---- rendezvous ------------------------------------------------------------

func TestRendezvousAssignsRanks(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	const world = 4
	cfg := Config{Store: st, MinWorld: world, MaxWorld: world, PollInterval: time.Millisecond}
	var wg sync.WaitGroup
	assigns := make([]*Assignment, world)
	errs := make([]error, world)
	for i := 0; i < world; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := NewRendezvous(cfg)
			if err != nil {
				errs[i] = err
				return
			}
			assigns[i], errs[i] = r.Join(Member{ID: fmt.Sprintf("w%d", i), Step: int64(i)})
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool)
	for i, a := range assigns {
		if errs[i] != nil {
			t.Fatalf("join %d: %v", i, errs[i])
		}
		if a.World != world || a.Generation != 0 {
			t.Fatalf("join %d: got world %d gen %d", i, a.World, a.Generation)
		}
		if seen[a.Rank] {
			t.Fatalf("rank %d assigned twice", a.Rank)
		}
		seen[a.Rank] = true
		if len(a.Members) != world {
			t.Fatalf("join %d: %d members", i, len(a.Members))
		}
	}
}

func TestRendezvousLateArrivalForcesNextGeneration(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	cfg := Config{Store: st, MinWorld: 2, MaxWorld: 3, PollInterval: time.Millisecond}
	r0, _ := NewRendezvous(cfg)
	r1, _ := NewRendezvous(cfg)

	var wg sync.WaitGroup
	first := make([]*Assignment, 2)
	for i, r := range []*Rendezvous{r0, r1} {
		wg.Add(1)
		go func(i int, r *Rendezvous) {
			defer wg.Done()
			a, err := r.Join(Member{ID: fmt.Sprintf("w%d", i)})
			if err != nil {
				t.Errorf("join: %v", err)
				return
			}
			first[i] = a
		}(i, r)
	}
	wg.Wait()
	if first[0] == nil || first[0].World != 2 || first[0].Generation != 0 {
		t.Fatalf("initial round: %+v", first[0])
	}

	// A latecomer lands in the sealed round, bumps the generation, and
	// the incumbents (told by the gen watch) rejoin alongside it.
	rl, _ := NewRendezvous(cfg)
	results := make([]*Assignment, 3)
	wg.Add(1)
	go func() {
		defer wg.Done()
		a, err := rl.Join(Member{ID: "late"})
		if err != nil {
			t.Errorf("late join: %v", err)
			return
		}
		results[2] = a
	}()
	for i, r := range []*Rendezvous{r0, r1} {
		wg.Add(1)
		go func(i int, r *Rendezvous) {
			defer wg.Done()
			if _, err := r.WaitGenerationAbove(0); err != nil {
				t.Errorf("watch: %v", err)
				return
			}
			a, err := r.Join(Member{ID: fmt.Sprintf("w%d", i)})
			if err != nil {
				t.Errorf("rejoin: %v", err)
				return
			}
			results[i] = a
		}(i, r)
	}
	wg.Wait()
	for i, a := range results {
		if a == nil {
			t.Fatalf("worker %d has no assignment", i)
		}
		if a.World != 3 {
			t.Fatalf("worker %d: world %d after scale-up", i, a.World)
		}
		if a.Generation < 1 {
			t.Fatalf("worker %d: generation did not advance: %d", i, a.Generation)
		}
	}
}

// TestRendezvousStandbyParksWhenFull: a worker arriving at a full
// round must not force reconfiguration churn on the healthy group; it
// parks until a membership change opens a slot.
func TestRendezvousStandbyParksWhenFull(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	cfg := Config{Store: st, MinWorld: 2, MaxWorld: 2, PollInterval: time.Millisecond}
	r0, _ := NewRendezvous(cfg)
	r1, _ := NewRendezvous(cfg)
	rs, _ := NewRendezvous(cfg)

	var wg sync.WaitGroup
	for i, r := range []*Rendezvous{r0, r1} {
		wg.Add(1)
		go func(i int, r *Rendezvous) {
			defer wg.Done()
			if _, err := r.Join(Member{ID: fmt.Sprintf("w%d", i)}); err != nil {
				t.Errorf("join: %v", err)
			}
		}(i, r)
	}
	wg.Wait()

	parked := make(chan *Assignment, 1)
	go func() {
		a, err := rs.Join(Member{ID: "standby"})
		if err != nil {
			t.Errorf("standby join: %v", err)
			return
		}
		parked <- a
	}()
	time.Sleep(150 * time.Millisecond)
	if g, err := r0.CurrentGeneration(); err != nil || g != 0 {
		t.Fatalf("standby caused churn: gen %d err %v", g, err)
	}
	select {
	case a := <-parked:
		t.Fatalf("standby joined a full round: %+v", a)
	default:
	}

	// A member departs (bumps the generation); the standby takes the
	// freed slot alongside the remaining member.
	if _, err := r0.ProposeGeneration(0); err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := r1.Join(Member{ID: "w1"}); err != nil {
			t.Errorf("rejoin: %v", err)
		}
	}()
	select {
	case a := <-parked:
		if a.World != 2 || a.Generation < 1 {
			t.Fatalf("standby assignment %+v", a)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never admitted after a slot opened")
	}
}

// TestRendezvousCleansUpOldRounds: sealing a round garbage-collects
// rounds cleanupLag generations behind it.
func TestRendezvousCleansUpOldRounds(t *testing.T) {
	st := store.NewInMem(50 * time.Millisecond)
	defer st.Close()
	cfg := Config{Store: st, MinWorld: 1, MaxWorld: 1, PollInterval: time.Millisecond}
	r, _ := NewRendezvous(cfg)
	last := 0
	for i := 0; i < cleanupLag+3; i++ {
		a, err := r.Join(Member{ID: "solo"})
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		last = a.Generation
		if _, err := r.ProposeGeneration(a.Generation); err != nil {
			t.Fatal(err)
		}
	}
	// Round 0 is far behind the last seal; its keys must be gone.
	if n, _ := st.Add(r.countKey(0), 0); n != 0 {
		t.Fatalf("round 0 count survived: %d", n)
	}
	if _, err := st.Get(r.memberKey(0, 0)); err == nil {
		t.Fatal("round 0 member record survived cleanup")
	}
	// The most recent sealed round is intact.
	if _, err := st.Get(r.sealKey(last)); err != nil {
		t.Fatalf("latest round's seal missing: %v", err)
	}
}

// ---- heartbeat -------------------------------------------------------------

func TestHeartbeatTimeoutDetection(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	const prefix = "elastic"
	alive := StartHeartbeat(st, prefix, "alive", 5*time.Millisecond)
	defer alive.Stop()
	doomed := StartHeartbeat(st, prefix, "doomed", 5*time.Millisecond)

	var mu sync.Mutex
	var expired []string
	mon := StartMonitor(st, prefix, 60*time.Millisecond, 3*time.Millisecond, func(id string) {
		mu.Lock()
		expired = append(expired, id)
		mu.Unlock()
	})
	defer mon.Stop()
	mon.SetPeers([]string{"alive", "doomed"})

	time.Sleep(100 * time.Millisecond) // both well within lease
	mu.Lock()
	if len(expired) != 0 {
		mu.Unlock()
		t.Fatalf("false positive: %v", expired)
	}
	mu.Unlock()

	doomed.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		got := append([]string(nil), expired...)
		mu.Unlock()
		if len(got) == 1 && got[0] == "doomed" {
			break
		}
		if len(got) > 1 {
			t.Fatalf("unexpected expiries: %v", got)
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease expiry not detected; got %v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// ---- agent scenarios -------------------------------------------------------

// TestAgentCleanScaleDown: 3 workers; one leaves cleanly after step K.
// Survivors reconfigure and finish at world 2, matching a reference run
// that switches world size at the same step.
func TestAgentCleanScaleDown(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 3 // leaver's last completed step
	)

	workers := make([]*testWorker, 3)
	for i := range workers {
		workers[i] = newTestWorker(t, testConfig(st, reg, fmt.Sprintf("w%d", i), 2, 3))
	}
	victim := workers[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			steps := int64(total)
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				if w == victim && ctx.Step == k {
					w.agent.Leave() // departs after completing this step
				}
				return elasticStep(ctx)
			})
			errs[i] = w.agent.Run(steps, step)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for _, w := range workers[:2] {
		if got := w.agent.Step(); got != total {
			t.Fatalf("survivor finished at step %d, want %d", got, total)
		}
	}

	// Reference: world 3 for steps [0,k], world 2 afterwards.
	ref := newRefWorkers(3)
	runRefPhase(t, ref, 0, k+1)
	runRefPhase(t, ref[:2], k+1, total)

	want := flattenParams(ref[0].model)
	assertSameParams(t, "survivor0-vs-ref", flattenParams(workers[0].model), want)
	assertSameParams(t, "survivor1-vs-ref", flattenParams(workers[1].model), want)
	if el, rl := evalLoss(workers[0].model), evalLoss(ref[0].model); el != rl {
		t.Fatalf("eval loss diverged: elastic %v vs reference %v", el, rl)
	}
}

// TestAgentScaleUpWithStateSync: 2 workers train; at step K a third
// joins, bumping the generation. All three reconfigure, the joiner
// receives model+optimizer state, and the run matches a reference that
// widens to world 3 at exactly step K.
func TestAgentScaleUpWithStateSync(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 4 // first step executed at world 3
	)

	w0 := newTestWorker(t, testConfig(st, reg, "w0", 2, 3))
	w1 := newTestWorker(t, testConfig(st, reg, "w1", 2, 3))
	joiner := newTestWorker(t, testConfig(st, reg, "late", 2, 3))

	startJoiner := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	errs := make([]error, 3)
	incumbent := func(w *testWorker) StepFunc {
		return func(ctx StepContext) error {
			if ctx.World == 2 && ctx.Step == k {
				// Admit the pending joiner deterministically: release
				// it, then yield until its generation bump lands.
				once.Do(func() { close(startJoiner) })
				return w.agent.AwaitGenerationChange()
			}
			return elasticStep(ctx)
		}
	}
	wg.Add(3)
	go func() { defer wg.Done(); errs[0] = w0.agent.Run(total, incumbent(w0)) }()
	go func() { defer wg.Done(); errs[1] = w1.agent.Run(total, incumbent(w1)) }()
	go func() {
		defer wg.Done()
		<-startJoiner
		errs[2] = joiner.agent.Run(total, elasticStep)
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Reference: world 2 for [0,k), world 3 from k. The third reference
	// worker adopts the survivors' model and optimizer state, exactly
	// like the elastic joiner does via SyncState.
	ref := newRefWorkers(2)
	runRefPhase(t, ref, 0, k)
	third := newRefWorkers(1)[0]
	if err := nn.CopyParameters(third.model, ref[0].model); err != nil {
		t.Fatalf("copying reference state: %v", err)
	}
	if err := third.opt.SetFlatState(ref[0].opt.FlatState()); err != nil {
		t.Fatalf("copying reference optimizer state: %v", err)
	}
	refWide := append(ref, third)
	runRefPhase(t, refWide, k, total)

	want := flattenParams(refWide[0].model)
	for i, w := range []*testWorker{w0, w1, joiner} {
		assertSameParams(t, fmt.Sprintf("worker%d-vs-ref", i), flattenParams(w.model), want)
	}
	if got := joiner.agent.Step(); got != total {
		t.Fatalf("joiner finished at step %d, want %d", got, total)
	}
}

// TestAgentMidBackwardCrash is the acceptance scenario: one of three
// workers dies mid-iteration (after its forward pass, before gradient
// sync). Survivors observe broken collectives, re-rendezvous at the
// next generation, rebuild the group, restore synchronized state, and
// converge to exactly the loss of an uninterrupted 2-worker run from
// the recovery step onward.
func TestAgentMidBackwardCrash(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 4 // step during which the victim dies
	)

	workers := make([]*testWorker, 3)
	for i := range workers {
		workers[i] = newTestWorker(t, testConfig(st, reg, fmt.Sprintf("w%d", i), 2, 3))
	}
	victim := workers[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				if w == victim && ctx.Step == k {
					// Crash mid-step: forward ran, gradients are about
					// to sync, and the worker vanishes.
					x, _ := batchFor(ctx.Step, ctx.Rank, ctx.World)
					ctx.DDP.Forward(autograd.Constant(x))
					w.agent.Kill()
					return errors.New("simulated crash")
				}
				return elasticStep(ctx)
			})
			errs[i] = w.agent.Run(total, step)
		}(i, w)
	}
	wg.Wait()
	if !errors.Is(errs[2], ErrKilled) {
		t.Fatalf("victim returned %v, want ErrKilled", errs[2])
	}
	for i, err := range errs[:2] {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if got := workers[i].agent.Step(); got != total {
			t.Fatalf("survivor %d finished at step %d, want %d", i, got, total)
		}
	}

	// Survivors recovered at generation >= 1 with world 2.
	for i, w := range workers[:2] {
		a := w.agent.Assignment()
		if a == nil || a.World != 2 || a.Generation < 1 {
			t.Fatalf("survivor %d final assignment %+v", i, a)
		}
	}

	// Reference: world 3 completed steps [0,k); step k onward runs at
	// world 2 — the in-flight iteration k is retried, no completed
	// progress is lost.
	ref := newRefWorkers(3)
	runRefPhase(t, ref, 0, k)
	runRefPhase(t, ref[:2], k, total)

	want := flattenParams(ref[0].model)
	assertSameParams(t, "survivor0-vs-ref", flattenParams(workers[0].model), want)
	assertSameParams(t, "survivor1-vs-ref", flattenParams(workers[1].model), want)
	if el, rl := evalLoss(workers[0].model), evalLoss(ref[0].model); el != rl {
		t.Fatalf("eval loss diverged: elastic %v vs reference %v", el, rl)
	}
}

// TestAgentHeartbeatTimeoutRecovery: the victim goes silent (stops
// heartbeating and stepping but keeps its connections open), so the
// survivors block inside a collective with no transport error to save
// them. Only the lease expiry can detect this; the monitor then aborts
// the group, survivors re-rendezvous, and training completes at world
// 2 with state intact.
func TestAgentHeartbeatTimeoutRecovery(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 4 // step at which the victim hangs
	)

	workers := make([]*testWorker, 3)
	for i := range workers {
		workers[i] = newTestWorker(t, testConfig(st, reg, fmt.Sprintf("w%d", i), 2, 3))
	}
	victim := workers[2]
	gate := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				if w == victim && ctx.Step == k {
					w.agent.StopHeartbeat() // silent hang: no beats, no steps
					<-gate
					return errors.New("hung worker released")
				}
				return elasticStep(ctx)
			})
			errs[i] = w.agent.Run(total, step)
		}(i, w)
	}

	// Wait for the survivors, then release (and formally kill) the
	// hung worker.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	deadline := time.After(30 * time.Second)
	for workers[0].agent.Step() < total || workers[1].agent.Step() < total {
		select {
		case <-deadline:
			t.Fatalf("survivors did not finish: steps %d, %d",
				workers[0].agent.Step(), workers[1].agent.Step())
		case <-time.After(10 * time.Millisecond):
		}
	}
	victim.agent.Kill()
	close(gate)
	<-done

	for i, err := range errs[:2] {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}
	if !errors.Is(errs[2], ErrKilled) {
		t.Fatalf("victim returned %v, want ErrKilled", errs[2])
	}

	// The dead worker was recorded for observability.
	if _, err := st.Get("elastic/dead/w2"); err != nil {
		t.Fatalf("dead marker not written: %v", err)
	}

	// Reference: steps [0,k) at world 3; k onward at world 2.
	ref := newRefWorkers(3)
	runRefPhase(t, ref, 0, k)
	runRefPhase(t, ref[:2], k, total)

	want := flattenParams(ref[0].model)
	assertSameParams(t, "survivor0-vs-ref", flattenParams(workers[0].model), want)
	assertSameParams(t, "survivor1-vs-ref", flattenParams(workers[1].model), want)
}

// ---- state sync ------------------------------------------------------------

func TestSyncStateBroadcastsModelAndOptimizer(t *testing.T) {
	groups := comm.NewInProcGroups(2, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()

	// Rank 1 holds trained state; rank 0 is a fresh joiner.
	trained := testModel()
	fresh := models.NewMLP(99, testIn, testHidden, testClasses)
	optT := optim.NewSGD(trained.Parameters(), testLR)
	optT.Momentum = testMom
	optF := optim.NewSGD(fresh.Parameters(), testLR)
	optF.Momentum = testMom
	// Give the trained side distinctive velocity.
	for _, p := range trained.Parameters() {
		p.Grad = tensor.New(p.Value.Shape()...)
		for i := range p.Grad.Data() {
			p.Grad.Data()[i] = 0.25
		}
	}
	optT.Step()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = SyncState(groups[0], 1, fresh, optF) }()
	go func() { defer wg.Done(); errs[1] = SyncState(groups[1], 1, trained, optT) }()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	assertSameParams(t, "joiner-vs-source", flattenParams(fresh), flattenParams(trained))
	gotState, wantState := optF.FlatState(), optT.FlatState()
	assertSameParams(t, "optstate-vs-source", gotState, wantState)
	nonZero := false
	for _, v := range gotState {
		if v != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("synced optimizer state is all zeros; momentum was not transferred")
	}
}
