package elastic

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/store"
)

// Rendezvous implements the generation-numbered membership protocol.
//
// Store layout under prefix P:
//
//	P/gen            current generation, decimal; advanced only by CAS
//	P/g<G>/count     arrival counter for round G (Add assigns ordinals)
//	P/g<G>/member/<i> registration of the round's i-th arrival
//	P/g<G>/seal      world size the round sealed with, decimal
//	P/g<G>/sealed    counter flag: non-zero once seal exists (probe)
//	P/hb/<id>        heartbeat counter of worker id (see heartbeat.go)
//	P/dead/<id>      generation at which id was declared dead
//
// A round proceeds: each worker atomically takes an arrival ordinal
// (its prospective rank), registers its Member record, and waits for
// the round leader (ordinal 0) to seal the round once at least
// MinWorld workers arrived — holding the door open up to Grace for
// stragglers, to at most MaxWorld. Workers that arrive after the seal
// propose generation G+1 and retry there; waiting workers observing a
// generation above the round they joined abandon it and follow. The
// CAS fence on P/gen guarantees a single linear history of
// generations even when many workers detect a failure simultaneously.
type Rendezvous struct {
	st     store.Store
	prefix string
	min    int
	max    int
	grace  time.Duration
	poll   time.Duration
	round  time.Duration
	clk    Clock

	initOnce sync.Once
	initErr  error
}

// NewRendezvous builds a rendezvous handle from an elastic Config
// (only the store/topology fields are consulted).
func NewRendezvous(cfg Config) (*Rendezvous, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Rendezvous{
		st:     cfg.Store,
		prefix: cfg.Prefix,
		min:    cfg.MinWorld,
		max:    cfg.MaxWorld,
		grace:  cfg.Grace,
		poll:   cfg.PollInterval,
		round:  cfg.RoundTimeout,
		clk:    cfg.Clock,
	}, nil
}

func (r *Rendezvous) genKey() string        { return r.prefix + "/gen" }
func (r *Rendezvous) countKey(g int) string { return fmt.Sprintf("%s/g%d/count", r.prefix, g) }
func (r *Rendezvous) memberKey(g, i int) string {
	return fmt.Sprintf("%s/g%d/member/%d", r.prefix, g, i)
}

// memberFlagKey is a counter bumped after memberKey is Set, giving the
// round leader a non-blocking way to poll for registrations.
func (r *Rendezvous) memberFlagKey(g, i int) string {
	return fmt.Sprintf("%s/g%d/registered/%d", r.prefix, g, i)
}
func (r *Rendezvous) sealKey(g int) string   { return fmt.Sprintf("%s/g%d/seal", r.prefix, g) }
func (r *Rendezvous) sealedKey(g int) string { return fmt.Sprintf("%s/g%d/sealed", r.prefix, g) }

func encodeGen(g int) []byte { return []byte(strconv.Itoa(g)) }

// ensureInit creates the generation key (generation 0) exactly once
// across all workers.
func (r *Rendezvous) ensureInit() error {
	r.initOnce.Do(func() {
		_, r.initErr = r.st.CompareAndSwap(r.genKey(), nil, encodeGen(0))
	})
	return r.initErr
}

// CurrentGeneration returns the latest generation number.
func (r *Rendezvous) CurrentGeneration() (int, error) {
	if err := r.ensureInit(); err != nil {
		return 0, err
	}
	v, err := r.st.Get(r.genKey())
	if err != nil {
		return 0, err
	}
	g, err := strconv.Atoi(string(v))
	if err != nil {
		return 0, fmt.Errorf("elastic: corrupt generation %q: %v", v, err)
	}
	return g, nil
}

// ProposeGeneration attempts to advance the generation from `from` to
// from+1 and returns the current generation afterwards. Many workers
// may propose concurrently; the CAS fence admits exactly one bump per
// observed generation, so detection storms do not skip generations.
func (r *Rendezvous) ProposeGeneration(from int) (int, error) {
	if err := r.ensureInit(); err != nil {
		return 0, err
	}
	if _, err := r.st.CompareAndSwap(r.genKey(), encodeGen(from), encodeGen(from+1)); err != nil {
		return 0, err
	}
	return r.CurrentGeneration()
}

// WaitGenerationAbove blocks until the generation exceeds g and
// returns it. It rides the store's Watch primitive, so workers parked
// here (idle joiners, generation watchers) wake without polling.
func (r *Rendezvous) WaitGenerationAbove(g int) (int, error) {
	if err := r.ensureInit(); err != nil {
		return 0, err
	}
	prev := encodeGen(g)
	for {
		v, err := r.st.Watch(r.genKey(), prev)
		if err != nil {
			return 0, err
		}
		cur, err := strconv.Atoi(string(v))
		if err != nil {
			return 0, fmt.Errorf("elastic: corrupt generation %q: %v", v, err)
		}
		if cur > g {
			return cur, nil
		}
		prev = v
	}
}

// MarkDead records that a worker was declared dead at generation g —
// observability for operators; membership itself is decided by who
// re-registers in the next round.
func (r *Rendezvous) MarkDead(id string, g int) {
	//ddplint:ignore storeerr observability breadcrumb only; membership does not depend on this key
	_ = r.st.Set(r.prefix+"/dead/"+id, encodeGen(g))
}

// Join registers the caller in the current rendezvous round and blocks
// until it holds a sealed assignment. It transparently follows
// generation bumps: a worker that arrives too late for a sealed round
// forces the next one, and a worker stuck in a round that never seals
// (e.g. its leader died) forces a new generation after RoundTimeout.
func (r *Rendezvous) Join(me Member) (*Assignment, error) {
	g, err := r.CurrentGeneration()
	if err != nil {
		return nil, err
	}
	for {
		a, next, err := r.joinRound(g, me)
		if err != nil {
			return nil, err
		}
		if a != nil {
			return a, nil
		}
		if next <= g {
			return nil, fmt.Errorf("elastic: rendezvous stalled at generation %d", g)
		}
		g = next
	}
}

// joinRound attempts round g. It returns the sealed assignment, or the
// next generation to try (having abandoned or bumped), or an error.
func (r *Rendezvous) joinRound(g int, me Member) (*Assignment, int, error) {
	ord64, err := r.st.Add(r.countKey(g), 1)
	if err != nil {
		return nil, 0, err
	}
	ord := int(ord64) - 1
	me.Step = max64(me.Step, 0)
	if err := r.st.Set(r.memberKey(g, ord), me.encode()); err != nil {
		return nil, 0, err
	}
	if _, err := r.st.Add(r.memberFlagKey(g, ord), 1); err != nil {
		return nil, 0, err
	}

	if ord == 0 {
		if abandoned, err := r.lead(g); err != nil {
			return nil, 0, err
		} else if abandoned {
			cur, err := r.CurrentGeneration()
			return nil, cur, err
		}
	}

	// Wait for the seal, abandoning the round if the generation moves
	// on or the round stalls past RoundTimeout.
	deadline := r.clk.Now().Add(r.round)
	for {
		sealed, err := r.st.Add(r.sealedKey(g), 0)
		if err != nil {
			return nil, 0, err
		}
		if sealed > 0 {
			break
		}
		cur, err := r.CurrentGeneration()
		if err != nil {
			return nil, 0, err
		}
		if cur > g {
			return nil, cur, nil
		}
		if r.clk.Now().After(deadline) {
			next, err := r.ProposeGeneration(g)
			return nil, next, err
		}
		r.clk.Sleep(r.poll)
	}

	sealVal, err := r.st.Get(r.sealKey(g))
	if err != nil {
		return nil, 0, err
	}
	world, err := strconv.Atoi(string(sealVal))
	if err != nil {
		return nil, 0, fmt.Errorf("elastic: corrupt seal %q: %v", sealVal, err)
	}
	if ord >= world {
		if world >= r.max {
			// The round is full: park as a hot standby until the next
			// membership change opens a slot, instead of forcing a
			// reconfiguration storm on a healthy full-size group.
			next, err := r.WaitGenerationAbove(g)
			return nil, next, err
		}
		// Arrived after an under-full cut: force the next round so the
		// group grows to admit us.
		next, err := r.ProposeGeneration(g)
		return nil, next, err
	}

	members := make([]Member, world)
	for i := 0; i < world; i++ {
		v, err := r.st.Get(r.memberKey(g, i))
		if err != nil {
			return nil, 0, err
		}
		m, err := decodeMember(v)
		if err != nil {
			return nil, 0, err
		}
		members[i] = m
	}
	return &Assignment{Generation: g, Rank: ord, World: world, Members: members}, 0, nil
}

// lead is the round leader's duty: wait for MinWorld arrivals, hold
// the door open up to Grace (bounded by MaxWorld), then seal. Reports
// abandoned=true when the generation moved on underneath the round.
func (r *Rendezvous) lead(g int) (abandoned bool, err error) {
	deadline := r.clk.Now().Add(r.round)
	// Phase 1: quorum.
	for {
		n, err := r.st.Add(r.countKey(g), 0)
		if err != nil {
			return false, err
		}
		if int(n) >= r.min {
			break
		}
		cur, err := r.CurrentGeneration()
		if err != nil {
			return false, err
		}
		if cur > g {
			return true, nil
		}
		if r.clk.Now().After(deadline) {
			_, err := r.ProposeGeneration(g)
			return true, err
		}
		r.clk.Sleep(r.poll)
	}
	// Phase 2: the grace window for stragglers.
	if r.grace > 0 {
		graceEnd := r.clk.Now().Add(r.grace)
		for r.clk.Now().Before(graceEnd) {
			n, err := r.st.Add(r.countKey(g), 0)
			if err != nil {
				return false, err
			}
			if int(n) >= r.max {
				break
			}
			r.clk.Sleep(r.poll)
		}
	}
	n64, err := r.st.Add(r.countKey(g), 0)
	if err != nil {
		return false, err
	}
	world := int(n64)
	if world > r.max {
		world = r.max
	}
	// Everyone counted Sets its member key right after Add; poll the
	// registration flags (never block indefinitely — a worker that
	// died between Add and Set must not wedge the round) so readers
	// never block after the seal.
	for i := 0; i < world; i++ {
		for {
			reg, err := r.st.Add(r.memberFlagKey(g, i), 0)
			if err != nil {
				return false, err
			}
			if reg > 0 {
				break
			}
			cur, err := r.CurrentGeneration()
			if err != nil {
				return false, err
			}
			if cur > g {
				return true, nil
			}
			if r.clk.Now().After(deadline) {
				_, err := r.ProposeGeneration(g)
				return true, err
			}
			r.clk.Sleep(r.poll)
		}
	}
	if err := r.st.Set(r.sealKey(g), []byte(strconv.Itoa(world))); err != nil {
		return false, err
	}
	if _, err := r.st.Add(r.sealedKey(g), 1); err != nil {
		return false, err
	}
	// Housekeeping: a sealed round proves generations far behind it
	// are dead; drop their keys so a long-lived churny job does not
	// grow the store without bound.
	r.cleanupRound(g - cleanupLag)
	return false, nil
}

// cleanupLag is how many generations behind a sealed round the
// leader garbage-collects. Large enough that no straggler can still
// be reading the old round's keys (stragglers abandon a round as soon
// as they observe any later generation).
const cleanupLag = 4

// cleanupRound deletes round g's keys. Best-effort: a failed delete
// just leaves garbage for a later leader.
func (r *Rendezvous) cleanupRound(g int) {
	if g < 0 {
		return
	}
	n, err := r.st.Add(r.countKey(g), 0)
	if err != nil {
		return
	}
	keys := []string{r.sealKey(g), r.sealedKey(g), r.countKey(g)}
	for i := 0; i < int(n); i++ {
		keys = append(keys, r.memberKey(g, i), r.memberFlagKey(g, i))
	}
	for _, k := range keys {
		//ddplint:ignore storeerr best-effort GC of a superseded round; a leaked key is reclaimed by a later leader
		_ = r.st.Delete(k)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
