package elastic

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/optim"
	"repro/internal/store"
)

// oneBitFactory configures DDP's wire-level 1-bit compression — the
// codec whose error-feedback residuals the elastic sync exists to
// carry.
func oneBitFactory() comm.Codec { return &comm.OneBitCodec{} }

// sharedBatchStep trains one step on a batch that is a function of the
// step ONLY. Error-feedback residuals are per-rank state (each rank
// accumulates the quantization error of its own gradients), and elastic
// rank reassignment across generations is arrival-order dependent —
// with rank-dependent batches the per-rank residual streams would be
// scrambled nondeterministically. Rank-independent data keeps every
// trajectory a pure function of shared state, so a dropped residual (or
// a joiner skipping the sync) still diverges bitwise from the
// reference, which is exactly what this test must detect.
func sharedBatchStep(d *ddp.DDP, opt optim.Optimizer, step int64) error {
	x, labels := batchFor(step, 0, 1)
	out := d.Forward(autograd.Constant(x))
	loss := autograd.CrossEntropyLoss(out, labels)
	if err := d.Backward(loss); err != nil {
		return err
	}
	opt.Step()
	opt.ZeroGrad()
	return nil
}

// runCompressedRefPhase is runRefPhase with the 1-bit codec and shared
// batches: fresh in-proc groups per phase, SetProcessGroup between
// phases (which carries residuals via the per-parameter store, exactly
// like the elastic agent's swap).
func runCompressedRefPhase(t *testing.T, workers []*refWorker, start, end int64) {
	t.Helper()
	world := len(workers)
	groups := comm.NewInProcGroups(world, comm.Options{})
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := range workers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := workers[r]
			if w.d == nil {
				d, err := ddp.New(w.model, groups[r], ddp.Options{
					BucketCapBytes:       testBucketCap,
					SkipInitialBroadcast: true,
					NewCodec:             oneBitFactory,
				})
				if err != nil {
					errs[r] = err
					return
				}
				w.d = d
			} else if err := w.d.SetProcessGroup(groups[r]); err != nil {
				errs[r] = err
				return
			}
			for s := start; s < end; s++ {
				if err := sharedBatchStep(w.d, w.opt, s); err != nil {
					errs[r] = fmt.Errorf("ref step %d: %w", s, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	for _, g := range groups {
		g.Close()
	}
}

// assertSameResiduals compares two residual vectors bitwise.
func assertSameResiduals(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: residual length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: residuals diverge at %d: %v != %v — error feedback was not preserved across the reconfiguration",
				name, i, got[i], want[i])
		}
	}
}

// TestElasticReconfigPreservesResidualsBitwise is the acceptance
// scenario for the residual carry: three workers train with wire-level
// 1-bit compression, one leaves mid-run, survivors reconfigure
// (SetProcessGroup + SyncResiduals) and finish. The run must match —
// bitwise, parameters AND residuals — a plain-DDP reference that
// switches world size at the same step while carrying its residuals.
// Before the fix, reconfiguration recreated the codecs and silently
// zeroed the accumulated error, which diverges here at the first
// post-recovery quantization.
func TestElasticReconfigPreservesResidualsBitwise(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 3 // leaver's last completed step
	)

	mkWorker := func(id string) *testWorker {
		cfg := testConfig(st, reg, id, 2, 3)
		cfg.DDP.NewCodec = oneBitFactory
		return newTestWorker(t, cfg)
	}
	workers := make([]*testWorker, 3)
	for i := range workers {
		workers[i] = mkWorker(fmt.Sprintf("w%d", i))
	}
	victim := workers[2]

	// Capture each worker's DDP wrapper so residuals are inspectable
	// after the run.
	ddps := make([]*ddp.DDP, 3)
	var mu sync.Mutex

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				mu.Lock()
				ddps[i] = ctx.DDP
				mu.Unlock()
				if w == victim && ctx.Step == k {
					w.agent.Leave()
				}
				return sharedBatchStep(ctx.DDP, ctx.Optimizer, ctx.Step)
			})
			errs[i] = w.agent.Run(total, step)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Reference: world 3 for steps [0,k], world 2 afterwards, residuals
	// carried across the world switch.
	ref := newRefWorkers(3)
	runCompressedRefPhase(t, ref, 0, k+1)
	runCompressedRefPhase(t, ref[:2], k+1, total)

	wantParams := flattenParams(ref[0].model)
	wantRes := ref[0].d.ResidualState()
	if !anyNonZero(wantRes) {
		t.Fatal("reference accumulated no residual; test is vacuous")
	}
	for i, w := range workers[:2] {
		assertSameParams(t, fmt.Sprintf("survivor%d-params", i), flattenParams(w.model), wantParams)
		assertSameResiduals(t, fmt.Sprintf("survivor%d", i), ddps[i].ResidualState(), wantRes)
	}
}

// TestScaleUpSyncsResidualsToJoiner: a worker that joins mid-run must
// adopt the elected source's residuals (SyncResiduals), not start from
// zero — asserted bitwise against a reference whose third worker copies
// model, optimizer, AND residual state at the switch step. Skipping the
// residual broadcast makes the joiner's first quantization disagree
// with the incumbents', and every parameter after it.
func TestScaleUpSyncsResidualsToJoiner(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 4 // first step executed at world 3
	)

	mkWorker := func(id string) *testWorker {
		cfg := testConfig(st, reg, id, 2, 3)
		cfg.DDP.NewCodec = oneBitFactory
		return newTestWorker(t, cfg)
	}
	w0, w1, joiner := mkWorker("w0"), mkWorker("w1"), mkWorker("late")

	startJoiner := make(chan struct{})
	var once sync.Once
	ddps := make(map[string]*ddp.DDP)
	var mu sync.Mutex
	capture := func(id string, next StepFunc) StepFunc {
		return func(ctx StepContext) error {
			mu.Lock()
			ddps[id] = ctx.DDP
			mu.Unlock()
			return next(ctx)
		}
	}
	runStep := func(ctx StepContext) error {
		return sharedBatchStep(ctx.DDP, ctx.Optimizer, ctx.Step)
	}

	var wg sync.WaitGroup
	errs := make([]error, 3)
	incumbent := func(w *testWorker) StepFunc {
		return func(ctx StepContext) error {
			if ctx.World == 2 && ctx.Step == k {
				once.Do(func() { close(startJoiner) })
				return w.agent.AwaitGenerationChange()
			}
			return runStep(ctx)
		}
	}
	wg.Add(3)
	go func() { defer wg.Done(); errs[0] = w0.agent.Run(total, capture("w0", incumbent(w0))) }()
	go func() { defer wg.Done(); errs[1] = w1.agent.Run(total, capture("w1", incumbent(w1))) }()
	go func() {
		defer wg.Done()
		<-startJoiner
		errs[2] = joiner.agent.Run(total, capture("late", runStep))
	}()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Reference: world 2 for [0,k), world 3 from k; the third reference
	// worker adopts model + optimizer + residual state, exactly like the
	// elastic joiner does via SyncState + SyncResiduals.
	ref := newRefWorkers(2)
	runCompressedRefPhase(t, ref, 0, k)
	third := newRefWorkers(1)[0]
	if err := copyRefState(third, ref[0]); err != nil {
		t.Fatalf("copying reference state: %v", err)
	}
	refWide := append(ref, third)
	runCompressedRefPhase(t, refWide, k, total)

	wantParams := flattenParams(refWide[0].model)
	wantRes := refWide[0].d.ResidualState()
	if !anyNonZero(wantRes) {
		t.Fatal("reference accumulated no residual; test is vacuous")
	}
	for id, w := range map[string]*testWorker{"w0": w0, "w1": w1, "late": joiner} {
		assertSameParams(t, id+"-params", flattenParams(w.model), wantParams)
		assertSameResiduals(t, id, ddps[id].ResidualState(), wantRes)
	}
}

// copyRefState clones model, optimizer, and residual state from src to
// dst — the reference-side analogue of SyncState + SyncResiduals. The
// destination needs a DDP wrapper to hold residuals; it is built over a
// throwaway singleton group (no collectives run before the next phase
// swaps it out).
func copyRefState(dst, src *refWorker) error {
	sp := src.model.Parameters()
	for i, p := range dst.model.Parameters() {
		copy(p.Value.Data(), sp[i].Value.Data())
	}
	if err := dst.opt.SetFlatState(src.opt.FlatState()); err != nil {
		return err
	}
	solo := comm.NewInProcGroups(1, comm.Options{})
	d, err := ddp.New(dst.model, solo[0], ddp.Options{
		BucketCapBytes:       testBucketCap,
		SkipInitialBroadcast: true,
		NewCodec:             oneBitFactory,
	})
	if err != nil {
		return err
	}
	if err := d.SetResidualState(src.d.ResidualState()); err != nil {
		return err
	}
	dst.d = d
	return solo[0].Close()
}

func anyNonZero(v []float32) bool {
	for _, x := range v {
		if x != 0 {
			return true
		}
	}
	return false
}
