package elastic

import (
	"sync"
	"time"

	"repro/internal/stats"
	"repro/internal/store"
)

// StragglerConfig parameterizes straggler detection (Config.Straggler;
// nil disables it). A worker whose median step latency exceeds Factor
// times the world's median-of-medians is flagged — the robust analogue
// of the paper's Figure 7 observation that one slow rank stretches
// every collective, since AllReduce runs at the pace of its slowest
// participant.
type StragglerConfig struct {
	// Window is how many recent step latencies the sliding median is
	// computed over (default 16).
	Window int
	// PublishEvery gossips this worker's median (and re-evaluates the
	// world) every that many recorded steps (default 4).
	PublishEvery int
	// Factor is the flagging threshold: own median > Factor × the
	// median of all published medians (default 2).
	Factor float64
	// MinPeers is how many peers must have published medians before any
	// verdict is reached (default 1) — a lone worker is never a
	// straggler.
	MinPeers int
	// MinSamples is how many latencies must be windowed before this
	// worker publishes (default Window/2, at least 1) — early jittery
	// steps do not seed the gossip.
	MinSamples int
	// OnFlag, if set, is called on every verdict transition (flagged
	// and un-flagged) from the goroutine that recorded the step.
	OnFlag func(StragglerFlag)
	// SelfReported disables the agent's built-in whole-step wall-clock
	// recording. In synchronous data parallelism every rank's wall time
	// includes the slowest rank's compute — peers stall inside the
	// gradient collectives — so whole-step latency converges across
	// ranks and cannot attribute the slowness. A StepFunc that can
	// measure its compute-only phase (work before the first collective)
	// sets this and records through Agent.Straggler().Record itself;
	// the chaos harness uses it to make straggler flagging assertable.
	SelfReported bool
}

// StragglerFlag describes one verdict transition.
type StragglerFlag struct {
	Worker string
	// Flagged is the new verdict.
	Flagged bool
	// Median is this worker's sliding median step latency.
	Median time.Duration
	// WorldMedian is the median of all published medians (self included).
	WorldMedian time.Duration
}

func (c StragglerConfig) withDefaults() StragglerConfig {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = 4
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.MinPeers <= 0 {
		c.MinPeers = 1
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	return c
}

// LatencyKey returns the store counter worker id gossips its median
// step latency (in microseconds) under.
func LatencyKey(prefix, id string) string { return prefix + "/lat/" + id }

// StragglerDetector flags this worker when its median step latency is
// an outlier against the world's. Medians are gossiped through the
// rendezvous store as counters — published by delta so a plain
// Add(key, 0) reads a peer's current value without blocking, exactly
// the heartbeat trick — so detection needs no extra collectives and no
// extra connections, and keeps working across reconfigurations.
//
// Zero is the "not yet published" sentinel (published medians are
// clamped to at least 1µs), so a peer that has not gossiped is simply
// excluded rather than read as infinitely fast.
type StragglerDetector struct {
	st     store.Store
	prefix string
	id     string
	cfg    StragglerConfig

	mu        sync.Mutex
	window    []float64 // recent step latencies, seconds
	steps     int
	published int64 // last value pushed into our store counter, µs
	peers     []string
	flagged   bool
}

// NewStragglerDetector builds a detector gossiping under prefix in st.
// The agent constructs one automatically when Config.Straggler is set;
// direct construction is for tests and custom loops.
func NewStragglerDetector(st store.Store, prefix, id string, cfg StragglerConfig) *StragglerDetector {
	return &StragglerDetector{st: st, prefix: prefix, id: id, cfg: cfg.withDefaults()}
}

// SetPeers installs the ids whose gossiped medians form the world view
// (the caller's own id should be excluded; it contributes locally).
// The agent calls this after every successful rendezvous.
func (s *StragglerDetector) SetPeers(ids []string) {
	s.mu.Lock()
	s.peers = append([]string(nil), ids...)
	s.mu.Unlock()
}

// Flagged reports the current verdict.
func (s *StragglerDetector) Flagged() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flagged
}

// Record feeds one completed step's latency into the window and, every
// PublishEvery steps, gossips the median and re-evaluates the verdict.
// Store I/O happens outside the lock; callers record from one goroutine
// (the training loop), so evaluations never interleave.
func (s *StragglerDetector) Record(d time.Duration) {
	s.mu.Lock()
	s.window = append(s.window, d.Seconds())
	if len(s.window) > s.cfg.Window {
		s.window = s.window[len(s.window)-s.cfg.Window:]
	}
	s.steps++
	due := s.steps%s.cfg.PublishEvery == 0 && len(s.window) >= s.cfg.MinSamples
	if !due {
		s.mu.Unlock()
		return
	}
	own := stats.Summarize(s.window).Median
	peers := s.peers
	lastPublished := s.published
	s.mu.Unlock()

	micros := int64(own * 1e6)
	if micros < 1 {
		micros = 1 // zero is the not-yet-published sentinel
	}
	if _, err := s.st.Add(LatencyKey(s.prefix, s.id), micros-lastPublished); err != nil {
		return // store unreachable; keep the stale verdict
	}
	s.mu.Lock()
	s.published = micros
	s.mu.Unlock()

	medians := []float64{own}
	for _, id := range peers {
		v, err := s.st.Add(LatencyKey(s.prefix, id), 0)
		if err != nil || v <= 0 {
			continue // unpublished or unreachable peer: no vote
		}
		medians = append(medians, float64(v)/1e6)
	}
	if len(medians)-1 < s.cfg.MinPeers {
		return
	}
	world := stats.Summarize(medians).Median
	flagged := own > s.cfg.Factor*world

	s.mu.Lock()
	changed := flagged != s.flagged
	s.flagged = flagged
	s.mu.Unlock()
	if flagged {
		mStraggler.With(s.id).Set(1)
	} else {
		mStraggler.With(s.id).Set(0)
	}
	if changed && s.cfg.OnFlag != nil {
		s.cfg.OnFlag(StragglerFlag{
			Worker:      s.id,
			Flagged:     flagged,
			Median:      time.Duration(own * float64(time.Second)),
			WorldMedian: time.Duration(world * float64(time.Second)),
		})
	}
}
