package elastic

import (
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/testutil"
)

// interface conformance of the test clock, checked at compile time.
var _ Clock = (*testutil.FakeClock)(nil)

// waitFor polls cond on a real-time deadline — the fake clock makes the
// *timing* deterministic, but the observing goroutines still run
// asynchronously, so assertions converge rather than rendezvous.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHeartbeatPacedByFakeClock(t *testing.T) {
	st := store.NewInMem(time.Second)
	defer st.Close()
	clk := testutil.NewFakeClock(time.Unix(0, 0))
	hb := StartHeartbeatClock(st, "p", "w0", 100*time.Millisecond, clk)
	defer hb.Stop()

	count := func() int64 {
		v, err := st.Add(HeartbeatKey("p", "w0"), 0)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	// The initial beat is unconditional.
	waitFor(t, "initial beat", func() bool { return count() >= 1 })
	// Real time passing without fake-clock advances must produce no
	// further beats — the property that makes chaos timing schedulable.
	time.Sleep(30 * time.Millisecond)
	if got := count(); got != 1 {
		t.Fatalf("heartbeat advanced to %d without the clock moving", got)
	}
	clk.Advance(100 * time.Millisecond)
	waitFor(t, "second beat", func() bool { return count() >= 2 })
	clk.Advance(100 * time.Millisecond)
	waitFor(t, "third beat", func() bool { return count() >= 3 })
}

func TestMonitorLeaseExpiryOnFakeClock(t *testing.T) {
	st := store.NewInMem(time.Second)
	defer st.Close()
	clk := testutil.NewFakeClock(time.Unix(0, 0))
	const lease = time.Second

	var mu sync.Mutex
	var expired []string
	var expiredAt time.Duration
	start := clk.Now()
	mon := StartMonitorClock(st, "p", lease, 100*time.Millisecond, func(id string) {
		mu.Lock()
		defer mu.Unlock()
		expired = append(expired, id)
		expiredAt = clk.Now().Sub(start)
	}, clk)
	defer mon.Stop()
	mon.SetPeers([]string{"silent"})

	// No fake time has passed: the silent peer still holds its lease.
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	if len(expired) != 0 {
		mu.Unlock()
		t.Fatalf("peer expired before any fake time passed: %v", expired)
	}
	mu.Unlock()

	// March fake time forward until the lease lapses. The expiry must
	// name the silent peer and must not fire before a full lease of
	// fake time elapsed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(expired)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent peer never expired under the fake clock")
		}
		clk.Advance(100 * time.Millisecond)
		time.Sleep(time.Millisecond) // let the monitor drain the tick
	}
	mu.Lock()
	defer mu.Unlock()
	if expired[0] != "silent" {
		t.Fatalf("expired %v, want [silent]", expired)
	}
	if len(expired) != 1 {
		t.Fatalf("peer expired %d times, want exactly once", len(expired))
	}
	if expiredAt <= lease {
		t.Fatalf("lease expired after only %v of fake time (lease %v)", expiredAt, lease)
	}
}
