package elastic

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/store"
)

// Cross-process verification protocol: a worker that completes its run
// publishes a record of its final step and a parameter checksum under
// ResultKey; the supervisor reads every finisher's record and compares
// them byte-for-byte. Both sides of ddptrain's -elastic -launch mode
// and the cross-process integration test speak exactly this format.

// ResultKey returns the store key worker id publishes its completion
// record under.
func ResultKey(prefix, id string) string { return prefix + "/result/" + id }

// ChecksumParams folds every parameter of m into one float64 —
// coarse as a hash, but bitwise-identical replicas produce bitwise-
// identical checksums, which is the property the consistency check
// needs.
func ChecksumParams(m nn.Module) float64 {
	var s float64
	for _, p := range m.Parameters() {
		for _, v := range p.Value.Data() {
			s += float64(v)
		}
	}
	return s
}

// FormatResult renders a worker's completion record. The checksum is
// hex-formatted so equality of records means bitwise equality of
// checksums.
func FormatResult(step int64, m nn.Module) string {
	return fmt.Sprintf("step=%d checksum=%x", step, ChecksumParams(m))
}

// PublishResult writes the completion record for worker id.
func PublishResult(st store.Store, prefix, id string, step int64, m nn.Module) error {
	return st.Set(ResultKey(prefix, id), []byte(FormatResult(step, m)))
}
