// Package elastic adds fault tolerance and elasticity to DDP training —
// the top future direction named in the paper's Section 7 discussion,
// where a single crashed rank otherwise deadlocks every collective in
// the job. It is a Go analogue of torchelastic, layered on the
// repository's existing rendezvous store:
//
//   - Rendezvous: workers register with a generation-numbered rendezvous
//     (store-backed, in-mem or TCP) and receive (rank, world, generation)
//     assignments. Generations are fenced with CompareAndSwap: any
//     worker may propose generation g+1, exactly one proposal wins, and
//     every worker observes the same sequence of membership changes.
//
//   - Failure detection: each worker maintains a heartbeat counter in
//     the store; every worker monitors every peer's counter and declares
//     a peer dead when its lease expires, then triggers a new rendezvous
//     round. Survivors blocked inside a collective on the dead rank are
//     freed by aborting the process group (comm.AbortGroup).
//
//   - World reconfiguration: on a membership change survivors tear down
//     their comm.ProcessGroup, re-rendezvous at the new generation,
//     rebuild the group (in-proc registry or NewTCPGroup), and the
//     member holding the most training progress broadcasts model AND
//     optimizer state to everyone else, so training resumes from the
//     last completed step — nothing is lost beyond the in-flight
//     iteration.
//
//   - Agent: the elastic training loop. It wraps ddp.DDP, swapping in
//     the rebuilt ProcessGroup (ddp.SetProcessGroup) and re-arming the
//     bucket assignment after each reconfiguration, and retries the
//     interrupted step after recovery.
//
//   - Durable checkpointing (Config.Checkpoint, internal/ckpt): the
//     failure elastic recovery alone cannot survive is every worker
//     dying at once. With checkpointing enabled the agent persists
//     sharded state every N steps and, on a cold start with Resume, a
//     worker loads the newest committed checkpoint before its first
//     rendezvous and joins holding the restored step — recovered by the
//     same most-advanced-member election and SyncState broadcast that
//     recover a partial failure. ARCHITECTURE.md walks the full
//     timeline.
package elastic

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/fsdp"
	"repro/internal/store"
	"repro/internal/trace"
)

// Sentinel errors of the elastic control flow.
var (
	// ErrKilled is returned by Agent.Run after Kill — the simulated
	// hard crash used by tests and the ddptrain demo.
	ErrKilled = errors.New("elastic: worker killed")
	// ErrReconfigure may be returned by a StepFunc to force the agent
	// through a reconfiguration without proposing a new generation
	// itself — typically after waiting for a pending membership change
	// (see Agent.AwaitGenerationChange).
	ErrReconfigure = errors.New("elastic: reconfiguration requested")
)

// Member is one worker's registration in a rendezvous round.
type Member struct {
	// ID is the worker's stable identity across generations.
	ID string
	// Step is the number of completed training steps whose state the
	// worker holds; the member with the highest Step is the state-sync
	// source after reconfiguration.
	Step int64
	// Host labels the machine the worker runs on (Config.Host). Every
	// sealed round therefore publishes the full rank→host layout, so
	// the builders can hand each regenerated process group a
	// comm.Topology and topology-aware collectives survive membership
	// changes. Empty for workers predating topology support.
	Host string `json:",omitempty"`
}

// Assignment is the outcome of a rendezvous round: this worker's rank
// in a world of the given size, fenced by a generation number.
type Assignment struct {
	Generation int
	Rank       int
	World      int
	// Members holds every participant, indexed by rank.
	Members []Member
}

// Hosts returns the per-rank host labels of the round's members — the
// layout the builders turn into a comm.Topology. It returns nil when
// any member did not publish a host (a mixed-version world must not
// guess at placement).
func (a *Assignment) Hosts() []string {
	hosts := make([]string, len(a.Members))
	for i, m := range a.Members {
		if m.Host == "" {
			return nil
		}
		hosts[i] = m.Host
	}
	return hosts
}

// Source returns the rank that should broadcast state after this
// round — the member with the most completed steps (ties break to the
// lowest rank) — and that member's step count. Every rank computes the
// same answer from the shared assignment.
func (a *Assignment) Source() (rank int, step int64) {
	best := 0
	for i, m := range a.Members {
		if m.Step > a.Members[best].Step {
			best = i
		}
	}
	return best, a.Members[best].Step
}

func (m Member) encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("elastic: encoding member: %v", err))
	}
	return b
}

func decodeMember(b []byte) (Member, error) {
	var m Member
	if err := json.Unmarshal(b, &m); err != nil {
		return Member{}, fmt.Errorf("elastic: decoding member: %w", err)
	}
	return m, nil
}

// GroupBuilder constructs the communication backend for an assignment.
// Implementations must produce a group whose Rank/Size match the
// assignment; the name they derive from the generation keeps meshes of
// different generations from crossing wires.
//
// cancel may be nil; when non-nil, closing it obliges the builder to
// unwind a blocked construction promptly and return an error (TCP
// builds otherwise stall until the store timeout when a peer dies
// between rendezvous seal and mesh build). The agent closes it on Kill
// and whenever the generation moves past the round being built.
type GroupBuilder interface {
	Build(a *Assignment, cancel <-chan struct{}) (comm.ProcessGroup, error)
}

// InProcBuilder builds goroutine-rank groups through a shared
// comm.InProcRegistry — the deterministic fixture tests and the
// --elastic demo use.
type InProcBuilder struct {
	Registry *comm.InProcRegistry
	Opts     comm.Options
	// Prefix namespaces group names; defaults to "elastic".
	Prefix string
}

// Build claims this rank's member of the generation's group. In-proc
// construction never blocks, so cancel is ignored.
func (b *InProcBuilder) Build(a *Assignment, _ <-chan struct{}) (comm.ProcessGroup, error) {
	prefix := b.Prefix
	if prefix == "" {
		prefix = "elastic"
	}
	return b.Registry.Build(fmt.Sprintf("%s-g%d", prefix, a.Generation), a.Rank, a.World, topologyOptions(b.Opts, a))
}

// topologyOptions threads the rendezvous round's host layout into the
// group options so every regenerated group stays topology-aware: ranks
// are assigned per round, so the rank→host map must be rebuilt from
// the round's members each time. An explicitly configured topology
// wins (tests lay out simulated hosts that way) — but only while it
// still covers the round's world: after a membership change an
// explicit layout for the old world is stale, and keeping it would
// make every Hierarchical collective fail on the size mismatch
// forever. A stale layout is dropped in favour of the round's member
// hosts (or, failing that, no topology — algorithms degrade to Ring).
func topologyOptions(opts comm.Options, a *Assignment) comm.Options {
	if opts.Topology != nil && opts.Topology.Size() != a.World {
		opts.Topology = nil
	}
	if opts.Topology == nil {
		if hosts := a.Hosts(); hosts != nil {
			opts.Topology = comm.NewTopology(hosts)
		}
	}
	return opts
}

// TCPBuilder builds one TCP-mesh group per generation, rendezvousing
// addresses through the same store used by the elastic rendezvous.
type TCPBuilder struct {
	Store store.Store
	Opts  comm.Options
	// Prefix namespaces group names; defaults to "elastic".
	Prefix string
}

// Build constructs this process's member of the generation's TCP group.
// Closing cancel aborts an in-flight mesh build (rendezvous Get, dial,
// accept) immediately, releasing the listener and the round's store
// keys — the path that frees survivors when a peer dies between seal
// and build.
func (b *TCPBuilder) Build(a *Assignment, cancel <-chan struct{}) (comm.ProcessGroup, error) {
	prefix := b.Prefix
	if prefix == "" {
		prefix = "elastic"
	}
	return comm.NewTCPGroupCancel(a.Rank, a.World, b.Store, fmt.Sprintf("%s-g%d", prefix, a.Generation), topologyOptions(b.Opts, a), cancel)
}

// Config parameterizes an elastic worker.
type Config struct {
	// Store is the shared rendezvous store (in-mem or TCP client).
	Store store.Store
	// ID is this worker's stable identity. Required and unique.
	ID string
	// Host labels the machine this worker runs on; it is published
	// with every rendezvous registration so regenerated process groups
	// can rebuild their comm.Topology from the round. Defaults to
	// os.Hostname() (all workers of a single-machine job then share
	// one host and topology-aware algorithms correctly degrade to the
	// flat ring). Tests and simulations set distinct labels to model
	// multi-host layouts in one process.
	Host string
	// Prefix namespaces all elastic keys in the store ("elastic").
	Prefix string
	// MinWorld is the smallest world size a rendezvous round may seal
	// with (default 1).
	MinWorld int
	// MaxWorld caps the world size (default MinWorld).
	MaxWorld int
	// Grace is how long the round leader holds the door open for
	// stragglers once MinWorld is reached (default 0: seal immediately).
	Grace time.Duration
	// HeartbeatInterval is the liveness publication period (100ms).
	HeartbeatInterval time.Duration
	// LeaseTimeout is how long a peer may go without a heartbeat before
	// it is declared dead (default 10x HeartbeatInterval).
	LeaseTimeout time.Duration
	// PollInterval paces rendezvous and monitor polling (default
	// HeartbeatInterval/4, at least 1ms).
	PollInterval time.Duration
	// RoundTimeout bounds one rendezvous round before the worker forces
	// a new generation (default 30s).
	RoundTimeout time.Duration
	// DrainTimeout is how long a generation change lets an in-flight
	// step drain before the process group is aborted (default 500ms).
	// A step whose collectives every participant already submitted
	// completes within this window — e.g. the final step a cleanly
	// departing peer took part in — so completed work is never rolled
	// back by the membership change; collectives genuinely stuck on a
	// vanished peer are still freed once the window closes.
	DrainTimeout time.Duration
	// MaxRestarts caps consecutive reconfigurations without a completed
	// step before the agent gives up (default 10).
	MaxRestarts int
	// Builder constructs process groups per generation. Required.
	Builder GroupBuilder
	// DDP configures the wrapped DistributedDataParallel instance.
	DDP ddp.Options
	// FSDP, when non-nil, trains with sharded data parallelism
	// (internal/fsdp) instead of DDP: the agent wraps the model in
	// fsdp.FSDP, StepContext carries FSDP instead of DDP, and — because
	// fsdp fuses the optimizer into Backward — the opt passed to
	// NewAgent should be nil. Recovery semantics change too: sharded
	// state cannot be rebuilt from a survivor's replica, so every
	// reconfiguration rolls back to the newest committed checkpoint and
	// re-shards it for the new world. Configure Checkpoint (all workers
	// sharing one directory) for any run that must survive membership
	// changes; without it only the initial world formation works.
	FSDP *fsdp.Options
	// Checkpoint enables durable sharded checkpointing (nil: disabled).
	// With it, the run survives even the failure mode elastic recovery
	// alone cannot: every worker dying at once.
	Checkpoint *CheckpointConfig
	// Tracer, when non-nil, records one hierarchical span tree per
	// reconfiguration attempt (teardown → rendezvous → mesh-build →
	// state-sync → residual-sync); dump with trace.Tracer.WriteJSON.
	Tracer *trace.Tracer
	// Straggler enables median-gossip straggler detection (nil:
	// disabled). See StragglerConfig.
	Straggler *StragglerConfig
	// Clock is the time source behind heartbeats, lease tracking,
	// rendezvous deadlines, and the pre-abort drain window (default
	// SystemClock). Deterministic tests inject a fake clock here to
	// step lease expiry and round timeouts explicitly.
	Clock Clock
}

// CheckpointConfig wires the ckpt subsystem into an elastic worker:
// periodic sharded saves during training, and cold-start restore at
// Run startup. All workers of a job must use the same directory
// (resolving to shared storage, or one host) and the same Every.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; required.
	Dir string
	// Every saves a checkpoint after each step count divisible by it
	// (0: never save — restore-only).
	Every int64
	// Async persists checkpoints on a background goroutine, leaving
	// only the state capture (a memcpy) on the training hot path.
	Async bool
	// Keep is how many committed checkpoints to retain (ckpt.Writer's
	// default when 0).
	Keep int
	// Resume probes Dir at startup: if a committed checkpoint exists,
	// the worker restores it — model, optimizer, and step — before its
	// first rendezvous, and joins as a candidate state-sync source at
	// the restored step, exactly like a most-advanced survivor. Torn or
	// corrupt newest checkpoints fall back to the previous committed
	// one; a directory with only corrupt checkpoints is a loud error,
	// never a silent restart from step 0.
	Resume bool
	// Seed is recorded verbatim in each checkpoint's Meta and handed
	// back through Agent.RestoredCheckpoint after a cold-start restore.
	// The agent itself never interprets it: a StepFunc whose data
	// schedule depends on a run-level seed reads it from there.
	Seed int64
	// Fault, when non-nil, intercepts every checkpoint file write —
	// the fault-injection shim the chaos harness uses to model slow and
	// failing checkpoint disks (see ckpt.FaultHook). Nil in production.
	Fault ckpt.FaultHook
}

// withDefaults fills zero-valued knobs. Only Store is universally
// required; the Agent additionally validates ID and Builder.
func (c Config) withDefaults() (Config, error) {
	if c.Store == nil {
		return c, errors.New("elastic: Config.Store is required")
	}
	if c.Prefix == "" {
		c.Prefix = "elastic"
	}
	if c.Host == "" {
		if hn, err := os.Hostname(); err == nil && hn != "" {
			c.Host = hn
		} else {
			c.Host = "localhost"
		}
	}
	if c.MinWorld <= 0 {
		c.MinWorld = 1
	}
	if c.MaxWorld < c.MinWorld {
		c.MaxWorld = c.MinWorld
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 100 * time.Millisecond
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 10 * c.HeartbeatInterval
	}
	if c.PollInterval <= 0 {
		c.PollInterval = c.HeartbeatInterval / 4
		if c.PollInterval < time.Millisecond {
			c.PollInterval = time.Millisecond
		}
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 500 * time.Millisecond
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 10
	}
	if c.Clock == nil {
		c.Clock = SystemClock
	}
	return c, nil
}
