package elastic

import (
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/ddp"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/testutil/leakcheck"
)

// Cross-process integration test: elastic workers as real OS processes
// over the TCP store and TCP meshes. The test binary re-execs itself as
// a worker when ELASTIC_TEST_WORKER is set (TestMain dispatches), so
// worker death is a genuine process exit — heartbeats stop because the
// process is gone and connections break because the kernel closed them,
// exactly the failure surface of a SIGKILLed trainer.

func TestMain(m *testing.M) {
	if os.Getenv("ELASTIC_TEST_WORKER") == "1" {
		os.Exit(elasticWorkerMain())
	}
	// Agent teardown is asynchronous (monitor loops drain after Stop
	// returns), so give stragglers a generous settle window.
	leakcheck.Main(m, leakcheck.Timeout(10*time.Second))
}

// crashExitCode marks a deliberate mid-step hard death.
const crashExitCode = 3

func envInt(key string, def int) int {
	if v := os.Getenv(key); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad %s=%q: %v\n", key, v, err)
			os.Exit(1)
		}
		return n
	}
	return def
}

// elasticWorkerMain is one elastic worker process. Configuration comes
// from EW_* environment variables; on completion it publishes its final
// step and a parameter checksum to the store so the supervisor can
// verify replica consistency across process boundaries.
func elasticWorkerMain() int {
	var (
		addr      = os.Getenv("EW_STORE")
		id        = os.Getenv("EW_ID")
		total     = int64(envInt("EW_TOTAL", 20))
		minW      = envInt("EW_MIN", 2)
		maxW      = envInt("EW_MAX", 3)
		crashStep = int64(envInt("EW_CRASH_STEP", -1))
		admitStep = int64(envInt("EW_ADMIT_STEP", -1))
		ckptDir   = os.Getenv("EW_CKPT_DIR")
		ckptEvery = int64(envInt("EW_CKPT_EVERY", 0))
		ckptAsync = envInt("EW_CKPT_ASYNC", 0) == 1
		resume    = envInt("EW_RESUME", 0) == 1
	)
	client, err := store.DialTCP(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: dial store: %v\n", id, err)
		return 1
	}
	defer client.Close()

	model := testModel()
	opt := optim.NewSGD(model.Parameters(), testLR)
	opt.Momentum = testMom
	cfg := Config{
		Store:             client,
		ID:                id,
		Prefix:            "elastic",
		MinWorld:          minW,
		MaxWorld:          maxW,
		Grace:             500 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		LeaseTimeout:      500 * time.Millisecond,
		RoundTimeout:      10 * time.Second,
		DrainTimeout:      200 * time.Millisecond,
		Builder:           &TCPBuilder{Store: client},
		DDP:               ddp.Options{BucketCapBytes: testBucketCap},
	}
	if ckptDir != "" {
		cfg.Checkpoint = &CheckpointConfig{Dir: ckptDir, Every: ckptEvery, Async: ckptAsync, Resume: resume}
	}
	agent, err := NewAgent(cfg, model, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: %v\n", id, err)
		return 1
	}

	step := func(ctx StepContext) error {
		if crashStep >= 0 && ctx.Step == crashStep {
			// Die mid-iteration: forward done, gradients about to sync.
			// os.Exit skips all cleanup — peers see silence and broken
			// connections, as after a SIGKILL.
			x, _ := batchFor(ctx.Step, ctx.Rank, ctx.World)
			ctx.DDP.Forward(autograd.Constant(x))
			os.Exit(crashExitCode)
		}
		if ctx.Step == 0 && ctx.Generation == 0 && ctx.World < maxW {
			// A slow starter can miss the grace window; wait for its
			// generation bump so the schedule is deterministic.
			return agent.AwaitGenerationChange()
		}
		if admitStep >= 0 && ctx.Step == admitStep && ctx.World < maxW {
			// Park until the respawned replacement's join bumps the
			// generation, so the (fast) training loop cannot outrun the
			// (wall-clock) respawn.
			return agent.AwaitGenerationChange()
		}
		return trainStep(ctx.DDP, ctx.Optimizer, ctx.Step, ctx.Rank, ctx.World)
	}
	if err := agent.Run(total, step); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: run: %v\n", id, err)
		return 1
	}

	if err := PublishResult(client, cfg.Prefix, id, agent.Step(), model); err != nil {
		fmt.Fprintf(os.Stderr, "worker %s: publishing result: %v\n", id, err)
		return 1
	}
	return 0
}

// spawnWorker launches one worker process against the given store.
func spawnWorker(t *testing.T, addr, id string, total int, extraEnv ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"ELASTIC_TEST_WORKER=1",
		"EW_STORE="+addr,
		"EW_ID="+id,
		"EW_TOTAL="+strconv.Itoa(total),
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawning worker %s: %v", id, err)
	}
	return cmd
}

// waitWorker waits for a worker process with a deadline and returns its
// exit code.
func waitWorker(t *testing.T, name string, cmd *exec.Cmd, timeout time.Duration) int {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		t.Fatalf("worker %s: %v", name, err)
	case <-time.After(timeout):
		_ = cmd.Process.Kill()
		t.Fatalf("worker %s did not exit within %v", name, timeout)
	}
	return -1
}

// TestCrossProcessElasticRecovery is the acceptance scenario as real OS
// processes: three workers train over TCP meshes; one hard-exits
// mid-iteration (no cleanup, like SIGKILL); the survivors detect the
// death, abort their group, re-rendezvous at world 2, and keep
// training; the supervisor respawns a replacement process that rejoins
// the running job, receives state, and finishes alongside the
// survivors with a bit-identical replica.
func TestCrossProcessElasticRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process integration test; skipped in -short")
	}
	srv, err := store.ServeTCP("127.0.0.1:0", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		total     = 20
		crashStep = 6
		admitStep = 9 // survivors park here until the replacement joins
	)
	survivorEnv := []string{"EW_ADMIT_STEP=" + strconv.Itoa(admitStep)}
	w0 := spawnWorker(t, srv.Addr(), "w0", total, survivorEnv...)
	w1 := spawnWorker(t, srv.Addr(), "w1", total, survivorEnv...)
	victim := spawnWorker(t, srv.Addr(), "w2", total, "EW_CRASH_STEP="+strconv.Itoa(crashStep))

	// The victim must die by its own hand, with the crash exit code.
	if code := waitWorker(t, "victim", victim, 60*time.Second); code != crashExitCode {
		t.Fatalf("victim exit code %d, want %d", code, crashExitCode)
	}

	// Supervise: the dead rank is replaced by a fresh OS process that
	// rejoins the rendezvous and is brought up to date via state sync.
	replacement := spawnWorker(t, srv.Addr(), "r1", total)

	for _, w := range []struct {
		name string
		cmd  *exec.Cmd
	}{{"w0", w0}, {"w1", w1}, {"r1", replacement}} {
		if code := waitWorker(t, w.name, w.cmd, 120*time.Second); code != 0 {
			t.Fatalf("worker %s exit code %d, want 0", w.name, code)
		}
	}

	// Every finisher — including the respawned process — must have
	// completed all steps with bit-identical parameters.
	client, err := store.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results := make(map[string]string)
	for _, id := range []string{"w0", "w1", "r1"} {
		v, err := client.Get(ResultKey("elastic", id))
		if err != nil {
			t.Fatalf("result of %s: %v", id, err)
		}
		results[id] = string(v)
	}
	wantPrefix := fmt.Sprintf("step=%d checksum=", total)
	for id, r := range results {
		if r != results["w0"] {
			t.Errorf("replica %s diverged: %q vs w0's %q", id, r, results["w0"])
		}
		if len(r) < len(wantPrefix) || r[:len(wantPrefix)] != wantPrefix {
			t.Errorf("replica %s result %q does not record step %d", id, r, total)
		}
	}
	// The victim never published a result.
	if swapped, err := client.CompareAndSwap(ResultKey("elastic", "w2"), nil, []byte("probe")); err != nil || !swapped {
		t.Errorf("victim unexpectedly published a result (swapped=%v, err=%v)", swapped, err)
	}
}
