package elastic

import "time"

// Clock abstracts the time source behind lease tracking, heartbeat
// pacing, rendezvous deadlines, and the pre-abort drain window, so
// deterministic tests (internal/chaos, the fake-clock unit tests) can
// drive timing explicitly instead of sleeping wall-clock time.
//
// Tick returns a channel delivering ticks roughly every d plus a stop
// function releasing the ticker's resources; the pair mirrors
// time.NewTicker without exposing its concrete type.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks for d of this clock's time.
	Sleep(d time.Duration)
	// Tick returns a channel ticking every d and a stop function.
	Tick(d time.Duration) (<-chan time.Time, func())
}

// systemClock is the wall-clock implementation used outside tests.
type systemClock struct{}

func (systemClock) Now() time.Time        { return time.Now() }
func (systemClock) Sleep(d time.Duration) { time.Sleep(d) }
func (systemClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// SystemClock is the real-time Clock; Config.Clock defaults to it.
var SystemClock Clock = systemClock{}
