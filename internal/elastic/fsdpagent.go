package elastic

import (
	"errors"
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/fsdp"
	"repro/internal/nn"
)

// FSDP exposes the sharded wrapper (nil before the first rendezvous,
// or always in DDP mode).
func (a *Agent) FSDP() *fsdp.FSDP {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f
}

// optSink captures a checkpoint's flattened optimizer state without
// installing it anywhere. The fsdp restore path needs this indirection
// because installation must wait until the wrapper has re-sharded for
// the new world: ckpt.Snapshot.Apply would otherwise slice the full
// vector by the OLD world's chunk bounds.
type optSink struct{ flat []float32 }

func (s *optSink) Step()     {}
func (s *optSink) ZeroGrad() {}

func (s *optSink) FlatState() []float32 { return s.flat }

func (s *optSink) SetFlatState(flat []float32) error {
	s.flat = append([]float32(nil), flat...)
	return nil
}

// fsdpSync is the fsdp analogue of reconfigure's state-sync and
// ddp-swap phases. DDP recovery broadcasts a survivor's replicated
// state, but a sharded world has nothing to broadcast: a dead rank's
// ZeRO-3 parameter and optimizer shards died with it. Every
// reconfiguration is therefore a rollback — all ranks reload the
// newest committed checkpoint from the shared directory (full
// parameters and optimizer state, world-size independent by
// construction), re-derive their shards for the new world
// (fsdp.Reshard), and resume from the checkpointed step. With no
// committed checkpoint yet, the world forms fresh: fsdp.New's rank-0
// broadcast aligns the replicas at step 0, and the caller commits an
// initial step-0 checkpoint (fresh=true) so that even a membership
// change during early formation — the world growing before the first
// step — has a rollback point. A world change without any committed
// checkpoint is terminal: once the wrapper frees non-owned shards the
// pristine state exists nowhere, so there is nothing to re-form from.
//
// The returned terminal flag distinguishes unrecoverable failures
// (corrupt checkpoints, deterministic local errors) from collective
// failures another reconfiguration round can fix.
func (a *Agent) fsdpSync(assign *Assignment, pg comm.ProcessGroup) (fresh bool, err error, terminal bool) {
	var (
		restored bool
		meta     ckpt.Meta
		sink     optSink
	)
	if a.ck != nil {
		snap, _, lerr := ckpt.Load(a.ck.cfg.Dir)
		switch {
		case lerr == nil:
			if meta, err = snap.Apply(a.model, &sink); err != nil {
				return false, fmt.Errorf("elastic: restoring checkpoint for re-shard: %w", err), true
			}
			restored = true
		case errors.Is(lerr, ckpt.ErrNoCheckpoint):
			// Fresh start: fall through to rank-0 alignment.
		default:
			return false, fmt.Errorf("elastic: loading checkpoint for re-shard: %w", lerr), true
		}
	}

	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	if f == nil {
		opts := *a.cfg.FSDP
		// When a checkpoint seeded every rank identically the broadcast
		// is redundant; when it did not, rank 0 aligns the fresh world.
		opts.SkipInitialBroadcast = restored
		// Collectives inside New (broadcast, ZeRO-3 sharding) can fail
		// because a peer died mid-round — retriable, not terminal.
		if f, err = fsdp.New(a.model, pg, opts); err != nil {
			return false, fmt.Errorf("elastic: wrapping model: %w", err), false
		}
	} else {
		if !restored {
			return false, errors.New("elastic: fsdp cannot re-shard a changed world without a committed checkpoint (a lost rank's shards are unrecoverable; configure Config.Checkpoint)"), true
		}
		// Reshard re-derives shards from the just-restored full
		// parameters; it is purely local.
		if err = f.Reshard(pg); err != nil {
			return false, fmt.Errorf("elastic: re-sharding: %w", err), true
		}
	}
	if restored && sink.flat != nil {
		if err = f.SetFlatState(sink.flat); err != nil {
			return false, fmt.Errorf("elastic: installing re-sharded optimizer state: %w", err), true
		}
	}

	a.mu.Lock()
	a.f = f
	if restored {
		a.step = meta.Step
		if a.restored == nil {
			a.restored = &meta
		}
	}
	a.mu.Unlock()
	// Drop any gradients accumulated by an aborted iteration; the
	// retried step must start from a clean slate.
	nn.ZeroGrad(a.model)
	return !restored, nil, false
}

// fsdpCaptureState gathers the full optimizer state for a checkpoint
// under fsdp: Materialize brings the full parameters into the model
// tensors and FlatStateErr reassembles the momentum vector — both
// collectives, which every rank reaches together because save points
// are a pure function of the shared step count. A collective failure
// means the world broke mid-save; the save is abandoned (nil flattener)
// and the membership change that broke it drives recovery, exactly
// like a save canceled at its commit barrier.
func (a *Agent) fsdpCaptureState() (*optSink, bool) {
	a.mu.Lock()
	f := a.f
	a.mu.Unlock()
	if f == nil {
		return nil, false
	}
	if err := f.Materialize(); err != nil {
		return nil, false
	}
	flat, err := f.FlatStateErr()
	if err != nil {
		return nil, false
	}
	return &optSink{flat: flat}, true
}
