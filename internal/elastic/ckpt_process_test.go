package elastic

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/store"
)

// Cross-process checkpoint acceptance test: the scenario elastic
// recovery alone cannot survive. Every worker process is hard-killed
// mid-iteration; a brand-new job — new store server, new worker
// processes, nothing shared but the checkpoint directory — restores
// from the last committed checkpoint and finishes bitwise-identical to
// an uninterrupted reference run. A deliberately planted torn commit
// must never be chosen.

// ckptTestDir returns the checkpoint directory for the test. When
// CKPT_TEST_DIR is set (CI does this), the directory lives under it so
// a failed run's checkpoint files can be uploaded as a build artifact
// for post-mortem; otherwise it is an ordinary test temp dir.
func ckptTestDir(t *testing.T) string {
	base := os.Getenv("CKPT_TEST_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir := filepath.Join(base, strings.ReplaceAll(t.Name(), "/", "_"))
	// A previous -count=N iteration's leftovers would make "resume"
	// vacuously pass; each iteration starts from an empty directory.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			_ = os.RemoveAll(dir)
		}
	})
	return dir
}

func TestCheckpointColdStartRestoreAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-process integration test; skipped in -short")
	}
	const (
		total     = 20
		every     = 5
		crashStep = 13 // last committed checkpoint lands at step 10
	)
	dir := ckptTestDir(t)
	ids := []string{"w0", "w1", "w2"}

	// Reference: the same schedule end to end, never interrupted, no
	// checkpointing — the ground truth the resumed run must hit bitwise.
	refResults := runProcessWorld(t, ids, total, nil)

	// Phase 1: same schedule with sharded checkpoints every `every`
	// steps, until every rank hard-exits mid-iteration at crashStep.
	ckptEnv := []string{
		"EW_CKPT_DIR=" + dir,
		"EW_CKPT_EVERY=" + strconv.Itoa(every),
	}
	srv1, err := store.ServeTCP("127.0.0.1:0", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victims := make(map[string]*exec.Cmd, len(ids))
	for _, id := range ids {
		env := append([]string{"EW_CRASH_STEP=" + strconv.Itoa(crashStep)}, ckptEnv...)
		victims[id] = spawnWorker(t, srv1.Addr(), id, total, env...)
	}
	for id, cmd := range victims {
		if code := waitWorker(t, id, cmd, 60*time.Second); code != crashExitCode {
			t.Fatalf("worker %s exit code %d, want crash code %d", id, code, crashExitCode)
		}
	}
	srv1.Close() // the whole job is dead; even the store is gone

	meta, err := ckpt.LatestMeta(dir)
	if err != nil {
		t.Fatalf("no committed checkpoint after kill-all: %v", err)
	}
	if meta.Step != 10 {
		t.Fatalf("latest committed checkpoint at step %d, want 10", meta.Step)
	}

	// Plant a torn, newer-looking commit: an orphan shard plus a
	// corrupt manifest claiming step 15. Restore must reject it and
	// fall back to the genuine step-10 checkpoint — if it were loaded,
	// the bitwise comparison below would catch the divergence.
	plantTornCheckpoint(t, dir, 15)

	// Phase 2: cold start. New store server, new processes; only the
	// checkpoint directory connects them to the dead job.
	resumeEnv := append([]string{
		"EW_RESUME=1",
		"EW_ADMIT_STEP=10", // deterministic full-world formation at the restored step
	}, ckptEnv...)
	resumedResults := runProcessWorld(t, []string{"r0", "r1", "r2"}, total, resumeEnv)

	for id, r := range resumedResults {
		if r != refResults["w0"] {
			t.Errorf("resumed replica %s diverged from uninterrupted reference: %q vs %q", id, r, refResults["w0"])
		}
	}

	// Phase 3: re-sharding — the final checkpoint was written by a
	// world of 3; a world of 2 (different shard layout) must restore it
	// and continue. Consistency among the finishers proves the
	// reassembled state was coherent.
	reshardEnv := append([]string{"EW_RESUME=1", "EW_MIN=2", "EW_MAX=2"}, ckptEnv...)
	reshardResults := runProcessWorld(t, []string{"s0", "s1"}, total+4, reshardEnv)
	var first string
	for id, r := range reshardResults {
		if !strings.HasPrefix(r, fmt.Sprintf("step=%d ", total+4)) {
			t.Errorf("re-sharded worker %s result %q: did not resume from step %d and finish at %d", id, r, total, total+4)
		}
		if first == "" {
			first = r
		} else if r != first {
			t.Errorf("re-sharded replicas diverged: %q vs %q", r, first)
		}
	}
}

// runProcessWorld hosts a fresh TCP store, runs one worker process per
// id to completion, and returns each worker's published result record.
func runProcessWorld(t *testing.T, ids []string, total int, extraEnv []string) map[string]string {
	t.Helper()
	srv, err := store.ServeTCP("127.0.0.1:0", 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cmds := make(map[string]*exec.Cmd, len(ids))
	for _, id := range ids {
		cmds[id] = spawnWorker(t, srv.Addr(), id, total, extraEnv...)
	}
	for id, cmd := range cmds {
		if code := waitWorker(t, id, cmd, 120*time.Second); code != 0 {
			t.Fatalf("worker %s exit code %d, want 0", id, code)
		}
	}
	client, err := store.DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	results := make(map[string]string, len(ids))
	for _, id := range ids {
		v, err := client.Get(ResultKey("elastic", id))
		if err != nil {
			t.Fatalf("result of %s: %v", id, err)
		}
		results[id] = string(v)
	}
	return results
}

// plantTornCheckpoint fabricates the debris of a crash mid-save at
// `step`: one orphan shard, one .tmp- manifest that never renamed, and
// one committed-looking manifest whose checksum is wrong.
func plantTornCheckpoint(t *testing.T, dir string, step int64) {
	t.Helper()
	orphan := filepath.Join(dir, fmt.Sprintf("g9-s%d-r0of3.shard", step))
	if err := os.WriteFile(orphan, []byte("DDPSHRD1 torn half-written shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(".tmp-g9-s%d.manifest", step)), []byte("DDPMANI1 never renamed"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("g9-s%d.manifest", step)), []byte("DDPMANI1 bad frame"), 0o644); err != nil {
		t.Fatal(err)
	}
}
