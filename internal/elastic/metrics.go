package elastic

import "repro/internal/metrics"

// Elastic-plane instruments. Gauges that describe one worker's view of
// the job carry a "worker" label because in-proc jobs host many agents
// in one process (one scrape endpoint); a real one-process-per-worker
// deployment simply produces single-child families.
var (
	mGeneration = metrics.Default().GaugeVec(
		"elastic_generation",
		"Rendezvous generation of the worker's current assignment.",
		"worker")
	mWorldSize = metrics.Default().GaugeVec(
		"elastic_world_size",
		"World size of the worker's current assignment.",
		"worker")
	mHeartbeatMisses = metrics.Default().Counter(
		"elastic_heartbeat_misses_total",
		"Peer heartbeat leases this process's monitors saw expire (one per peer per suspicion, not per poll).")
	mRecoveries = metrics.Default().Counter(
		"elastic_recoveries_total",
		"Successful reconfigurations (rendezvous through state sync) completed by agents in this process.")
	mRecoveryDur = metrics.Default().Histogram(
		"elastic_recovery_duration_seconds",
		"Wall time of successful Agent reconfigurations, teardown through residual sync.",
		metrics.DurationBuckets)
	mStraggler = metrics.Default().GaugeVec(
		"elastic_straggler",
		"1 while the worker's median step latency exceeds the straggler threshold, else 0.",
		"worker")
)
