package elastic

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/fsdp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/trace"
)

// StepContext is what a StepFunc sees for one training step. Rank and
// World come from the current assignment — a StepFunc must shard its
// data by them, because both change across reconfigurations.
type StepContext struct {
	// DDP is the replicated-training wrapper; nil when Config.FSDP
	// selects sharded training, in which case FSDP is set instead.
	DDP *ddp.DDP
	// FSDP is the sharded-training wrapper (Config.FSDP mode). Its
	// Backward fuses the optimizer step, so Optimizer is nil here.
	FSDP       *fsdp.FSDP
	Optimizer  optim.Optimizer
	Rank       int
	World      int
	Generation int
	// Step is the global step index about to be executed; it is
	// contiguous across reconfigurations (the interrupted step is
	// retried, and joiners resume from the synced step).
	Step int64
}

// StepFunc executes one training step: forward, backward (through
// ctx.DDP), and the optimizer update. An error signals that the world
// is suspect — the agent reconfigures and retries the step — except
// ErrReconfigure, which reconfigures without proposing a new
// generation (the change is already pending).
type StepFunc func(ctx StepContext) error

// Agent is the elastic training loop: it joins the rendezvous, wraps
// the model in ddp.DDP, and executes steps, transparently surviving
// membership changes. One Agent corresponds to one worker (one
// goroutine rank in-proc, or one process over TCP).
type Agent struct {
	cfg   Config
	model nn.Module
	opt   optim.Optimizer
	rdzv  *Rendezvous
	strag *StragglerDetector // nil unless Config.Straggler is set

	hb  *Heartbeat
	mon *Monitor

	mu       sync.Mutex
	assign   *Assignment
	pg       comm.ProcessGroup
	d        *ddp.DDP
	f        *fsdp.FSDP // Config.FSDP mode; d stays nil
	step     int64
	reconfig bool
	killed   bool
	leaving  bool
	// ck is the checkpoint machinery (nil when Config.Checkpoint is
	// nil); saveCancel is the current generation's save-abandon signal,
	// re-armed by each successful reconfiguration and nil while a
	// membership change is in flight.
	ck         *agentCkpt
	saveCancel chan struct{}
	restored   *ckpt.Meta
	// buildCancel aborts an in-flight GroupBuilder.Build (idempotent);
	// non-nil only while a build is running. Kill and generation
	// watchers close it so a TCP mesh build blocked on a vanished peer
	// unwinds immediately instead of stalling until the store timeout.
	buildCancel func()
}

// NewAgent validates the configuration and prepares a worker. The
// model must be freshly constructed (its parameters get overwritten by
// the first state sync); opt must manage exactly the model's
// parameters. Call Run to start training.
func NewAgent(cfg Config, model nn.Module, opt optim.Optimizer) (*Agent, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("elastic: Config.ID is required")
	}
	if cfg.Builder == nil {
		return nil, fmt.Errorf("elastic: Config.Builder is required")
	}
	rdzv, err := NewRendezvous(cfg)
	if err != nil {
		return nil, err
	}
	a := &Agent{cfg: cfg, model: model, opt: opt, rdzv: rdzv}
	if cfg.Straggler != nil {
		a.strag = NewStragglerDetector(cfg.Store, cfg.Prefix, cfg.ID, *cfg.Straggler)
	}
	return a, nil
}

// Tracer returns the configured recovery tracer (nil when tracing is
// disabled) — the handle ddptrain dumps recovery span trees from.
func (a *Agent) Tracer() *trace.Tracer { return a.cfg.Tracer }

// Straggler returns the straggler detector (nil when detection is
// disabled).
func (a *Agent) Straggler() *StragglerDetector { return a.strag }

// Step returns the number of completed training steps.
func (a *Agent) Step() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.step
}

// Assignment returns the current (generation, rank, world) or nil
// before the first rendezvous.
func (a *Agent) Assignment() *Assignment {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.assign
}

// DDP exposes the wrapped module (nil before the first rendezvous).
func (a *Agent) DDP() *ddp.DDP {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}

// Kill simulates a hard crash: the heartbeat stops and the process
// group is aborted mid-flight, so peers observe exactly what a SIGKILL
// would produce — silence on the heartbeat and broken collectives. Run
// returns ErrKilled. Used by tests and the --elastic demo.
func (a *Agent) Kill() {
	a.mu.Lock()
	a.killed = true
	hb, pg, bc := a.hb, a.pg, a.buildCancel
	a.mu.Unlock()
	a.cancelSaves() // a save blocked at its commit barrier unwinds too
	if bc != nil {
		bc() // a build in flight unwinds instead of finishing
	}
	if hb != nil {
		hb.Stop()
	}
	if pg != nil {
		_ = comm.AbortGroup(pg)
	}
}

// StopHeartbeat halts only the liveness signal, leaving the worker
// otherwise attached — fault injection for the silent-hang scenario
// (peers must detect via lease expiry, not via broken connections).
func (a *Agent) StopHeartbeat() {
	a.mu.Lock()
	hb := a.hb
	a.mu.Unlock()
	if hb != nil {
		hb.Stop()
	}
}

// Leave requests a clean departure: after the current step completes,
// the agent proposes a new generation (so survivors reform without it)
// and Run returns nil.
func (a *Agent) Leave() {
	a.mu.Lock()
	a.leaving = true
	a.mu.Unlock()
}

// AwaitGenerationChange blocks until the generation moves past the
// current assignment's and then returns ErrReconfigure — sugar for
// StepFuncs that want to yield deterministically to a pending
// membership change (e.g. admitting a known joiner at a fixed step).
func (a *Agent) AwaitGenerationChange() error {
	a.mu.Lock()
	g := a.assign.Generation
	a.mu.Unlock()
	if _, err := a.rdzv.WaitGenerationAbove(g); err != nil {
		return err
	}
	return ErrReconfigure
}

func (a *Agent) isKilled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.killed
}

func (a *Agent) isLeaving() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.leaving
}

func (a *Agent) reconfigNeeded() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconfig
}

// interrupt flags a reconfiguration immediately and aborts the group
// after DrainTimeout, but only if the agent is still on generation g —
// stale watchers and monitors otherwise no-op. The delay lets an
// in-flight step whose collectives are fully fed (e.g. the final step
// a cleanly departing peer took part in) drain to completion, so a
// membership change never rolls back a step that was going to finish;
// a collective genuinely stuck on a vanished peer is freed once the
// window closes.
func (a *Agent) interrupt(g int) {
	a.mu.Lock()
	if a.killed || a.assign == nil || a.assign.Generation != g {
		a.mu.Unlock()
		return
	}
	a.reconfig = true
	a.mu.Unlock()
	// Abandon saves of the interrupted generation: a dead member may
	// never contribute its shard, so their commit barriers can only be
	// satisfied by the next generation's saves. The previous committed
	// checkpoint stays loadable throughout.
	a.cancelSaves()
	go func() {
		a.cfg.Clock.Sleep(a.cfg.DrainTimeout)
		a.mu.Lock()
		if a.killed || a.assign == nil || a.assign.Generation != g {
			a.mu.Unlock()
			return
		}
		pg := a.pg
		a.mu.Unlock()
		if pg != nil {
			_ = comm.AbortGroup(pg)
		}
	}()
}

// onLeaseExpired is the monitor callback: a peer's heartbeat lease ran
// out, so propose a new round and break any collective blocked on it.
func (a *Agent) onLeaseExpired(id string) {
	a.mu.Lock()
	if a.assign == nil {
		a.mu.Unlock()
		return
	}
	g := a.assign.Generation
	a.mu.Unlock()
	a.rdzv.MarkDead(id, g)
	// Drop the dead worker's heartbeat counter so its key does not
	// accumulate; if it is actually alive (false positive) its next
	// beat recreates the counter and monitors see it change.
	//ddplint:ignore storeerr best-effort GC; a live false-positive recreates the key on its next beat
	_ = a.cfg.Store.Delete(HeartbeatKey(a.cfg.Prefix, id))
	if _, err := a.rdzv.ProposeGeneration(g); err != nil {
		return
	}
	a.interrupt(g)
}

// teardownGroup aborts and forgets the current process group.
func (a *Agent) teardownGroup() {
	a.mu.Lock()
	pg := a.pg
	a.pg = nil
	a.mu.Unlock()
	if pg != nil {
		_ = comm.AbortGroup(pg)
	}
}

// reconfigure runs one full recovery round: tear down, re-rendezvous,
// rebuild the group, synchronize state, and swap the group into DDP.
// It retries (bumping the generation) when a round collapses mid-way,
// up to MaxRestarts attempts.
//
// With a Config.Tracer each attempt records one "recovery" span whose
// phases tile it exactly (trace.Span.Phase), so phase durations sum to
// the attempt's duration; the elastic_* gauges and recovery histogram
// are updated on success only.
func (a *Agent) reconfigure() error {
	for attempt := 0; attempt < a.cfg.MaxRestarts; attempt++ {
		if a.isKilled() {
			return ErrKilled
		}
		start := time.Now()
		var root *trace.Span
		if a.cfg.Tracer != nil {
			root = a.cfg.Tracer.StartSpan("recovery")
		}
		root.Phase("teardown")
		a.teardownGroup()
		a.cancelSaves()

		root.Phase("rendezvous")
		assign, err := a.rdzv.Join(Member{ID: a.cfg.ID, Step: a.Step(), Host: a.cfg.Host})
		if err != nil {
			root.Finish()
			return fmt.Errorf("elastic: rendezvous: %w", err)
		}

		// Arm a cancellation handle for the build: if the generation
		// moves past this round while the mesh is still forming (a
		// member died between seal and build), or the agent is killed,
		// the builder unwinds instead of blocking on the dead peer.
		// One watcher goroutine is parked per round; it first cancels
		// any in-flight build, then interrupts the built group —
		// freeing collectives blocked on a dead or departed peer
		// (stale watchers no-op via interrupt's generation guard).
		cancel := make(chan struct{})
		var cancelOnce sync.Once
		closeCancel := func() { cancelOnce.Do(func() { close(cancel) }) }
		a.mu.Lock()
		a.buildCancel = closeCancel
		// A Kill that landed after the loop-top check snapshotted a nil
		// buildCancel and closed nothing; the killed flag is set under
		// this same lock, so re-checking here closes that window.
		killed := a.killed
		a.mu.Unlock()
		if killed {
			closeCancel()
		}
		go func() {
			if _, werr := a.rdzv.WaitGenerationAbove(assign.Generation); werr != nil {
				return // store closed: the job is over
			}
			closeCancel() // harmless after the build completed
			a.interrupt(assign.Generation)
		}()

		root.Phase("mesh-build")
		pg, err := a.cfg.Builder.Build(assign, cancel)
		a.mu.Lock()
		a.buildCancel = nil
		a.mu.Unlock()
		if err != nil {
			root.Finish()
			// The round was viable but the group could not form (e.g. a
			// member died between seal and build); force the next round.
			if _, perr := a.rdzv.ProposeGeneration(assign.Generation); perr != nil {
				return perr
			}
			continue
		}

		a.mu.Lock()
		a.assign = assign
		a.pg = pg
		a.reconfig = false
		a.mu.Unlock()

		// Cover the sync phase: peers that die during the state
		// broadcast must still be detected (the monitor), and
		// generation bumps still break us out of blocked collectives
		// (the round's watcher goroutine armed before the build).
		a.mon.SetPeers(peerIDs(assign, a.cfg.ID))

		root.Phase("state-sync")
		var fsdpFresh bool
		if a.cfg.FSDP != nil {
			// Sharded mode: reload the newest committed checkpoint and
			// re-shard it for the new world (see fsdpSync). The ddp-swap
			// and residual-sync phases do not apply — the wrapper swap
			// happens inside fsdpSync and compressed-shard residuals are
			// rolled back with the rest of the state.
			fresh, serr, terminal := a.fsdpSync(assign, pg)
			fsdpFresh = fresh
			if serr != nil {
				root.Finish()
				if a.isKilled() {
					return ErrKilled
				}
				if terminal {
					return serr
				}
				if _, perr := a.rdzv.ProposeGeneration(assign.Generation); perr != nil {
					return perr
				}
				continue
			}
		} else {
			source, sourceStep := assign.Source()
			if err := SyncState(pg, source, a.model, a.opt); err != nil {
				root.Finish()
				if a.isKilled() {
					return ErrKilled
				}
				if _, perr := a.rdzv.ProposeGeneration(assign.Generation); perr != nil {
					return perr
				}
				continue
			}
			a.mu.Lock()
			a.step = sourceStep
			a.mu.Unlock()
			// Drop any gradients accumulated by an aborted iteration; the
			// retried step must start from a clean slate.
			nn.ZeroGrad(a.model)

			root.Phase("ddp-swap")
			a.mu.Lock()
			d := a.d
			a.mu.Unlock()
			if d == nil {
				// SyncState already aligned the replicas from the elected
				// source; the constructor's rank-0 broadcast must not run,
				// both for correctness (rank 0 may be a stale joiner) and
				// because peers that only swapped process groups submit no
				// collectives to pair with it.
				opts := a.cfg.DDP
				opts.SkipInitialBroadcast = true
				d, err = ddp.New(a.model, pg, opts)
				if err != nil {
					root.Finish()
					return fmt.Errorf("elastic: wrapping model: %w", err)
				}
			} else if err := d.SetProcessGroup(pg); err != nil {
				root.Finish()
				return fmt.Errorf("elastic: swapping process group: %w", err)
			}
			a.mu.Lock()
			a.d = d
			a.mu.Unlock()
			// Error-feedback residuals are training state like optimizer
			// moments, but they live in the DDP wrapper — so unlike
			// SyncState this broadcast must run AFTER every rank holds a
			// wrapper (fresh joiners just built theirs, with zero
			// residuals). A failure here is recoverable the same way a
			// SyncState failure is: force the next round.
			root.Phase("residual-sync")
			if err := SyncResiduals(pg, source, d); err != nil {
				root.Finish()
				if a.isKilled() {
					return ErrKilled
				}
				if _, perr := a.rdzv.ProposeGeneration(assign.Generation); perr != nil {
					return perr
				}
				continue
			}
		}
		// The new world is fully formed; its saves get a fresh abandon
		// signal (closed again by the next interrupt or Kill).
		a.armSaves()
		root.Finish()
		mGeneration.With(a.cfg.ID).Set(float64(assign.Generation))
		mWorldSize.With(a.cfg.ID).Set(float64(assign.World))
		mRecoveries.Inc()
		mRecoveryDur.Observe(time.Since(start).Seconds())
		if a.strag != nil {
			a.strag.SetPeers(peerIDs(assign, a.cfg.ID))
		}
		if fsdpFresh {
			// A freshly formed sharded world has no rollback point yet:
			// commit its step-0 state now (0 is a save point of every
			// Every), so a membership change during early formation — the
			// world growing before the first step — re-shards from this
			// checkpoint instead of failing. Survivors cannot re-form a
			// sharded world once the wrapper frees non-owned shards.
			if err := a.maybeSaveCheckpoint(); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("elastic: giving up after %d failed reconfiguration attempts", a.cfg.MaxRestarts)
}

// peerIDs lists every member id except self.
func peerIDs(a *Assignment, self string) []string {
	ids := make([]string, 0, len(a.Members)-1)
	for _, m := range a.Members {
		if m.ID != self {
			ids = append(ids, m.ID)
		}
	}
	return ids
}

// Run executes training steps until the agent's completed-step count
// reaches totalSteps, surviving worker churn along the way. It returns
// nil on completion or clean departure (Leave), ErrKilled after Kill,
// and a terminal error when recovery is exhausted or the store fails.
func (a *Agent) Run(totalSteps int64, step StepFunc) error {
	// Checkpoint machinery first: a cold-starting worker must hold its
	// restored progress before it registers for its first rendezvous,
	// so the most-advanced-member election sees the restored step.
	if err := a.initCheckpoint(); err != nil {
		return err
	}
	if err := a.restoreCheckpoint(); err != nil {
		return err
	}
	a.mu.Lock()
	a.hb = StartHeartbeatClock(a.cfg.Store, a.cfg.Prefix, a.cfg.ID, a.cfg.HeartbeatInterval, a.cfg.Clock)
	a.mon = StartMonitorClock(a.cfg.Store, a.cfg.Prefix, a.cfg.LeaseTimeout, a.cfg.PollInterval, a.onLeaseExpired, a.cfg.Clock)
	a.mu.Unlock()
	defer func() {
		a.abortCheckpoint() // no-op after a clean finishCheckpoint
		a.mon.Stop()
		a.hb.Stop()
		a.mu.Lock()
		pg := a.pg
		a.pg = nil
		a.mu.Unlock()
		if pg != nil {
			if a.isKilled() {
				_ = comm.AbortGroup(pg)
			} else {
				_ = pg.Close()
			}
		}
	}()

	if err := a.reconfigure(); err != nil {
		return err
	}

	failures := 0 // consecutive step failures without progress
	for a.Step() < totalSteps {
		if a.isKilled() {
			return ErrKilled
		}
		if a.isLeaving() {
			a.mu.Lock()
			g := a.assign.Generation
			a.mu.Unlock()
			_, _ = a.rdzv.ProposeGeneration(g)
			return a.finishCheckpoint()
		}
		if a.reconfigNeeded() || a.generationAdvanced() {
			if err := a.reconfigure(); err != nil {
				return err
			}
			continue
		}

		a.mu.Lock()
		ctx := StepContext{
			DDP:        a.d,
			FSDP:       a.f,
			Optimizer:  a.opt,
			Rank:       a.assign.Rank,
			World:      a.assign.World,
			Generation: a.assign.Generation,
			Step:       a.step,
		}
		a.mu.Unlock()

		stepStart := time.Now()
		err := step(ctx)
		if a.isKilled() {
			return ErrKilled
		}
		switch {
		case err == nil:
			failures = 0
			if a.strag != nil && !a.cfg.Straggler.SelfReported {
				// Only completed steps enter the straggler window — a
				// failed step's latency measures the failure, not this
				// worker's pace.
				a.strag.Record(time.Since(stepStart))
			}
			a.mu.Lock()
			a.step++
			a.mu.Unlock()
			if cerr := a.maybeSaveCheckpoint(); cerr != nil {
				return cerr
			}
		case err == ErrReconfigure:
			if rerr := a.reconfigure(); rerr != nil {
				return rerr
			}
		default:
			// The step failed — almost certainly a peer vanished
			// mid-collective. Force a new round and retry the step.
			failures++
			if failures > a.cfg.MaxRestarts {
				return fmt.Errorf("elastic: step %d keeps failing after %d recoveries: %w", ctx.Step, failures-1, err)
			}
			if _, perr := a.rdzv.ProposeGeneration(ctx.Generation); perr != nil {
				return perr
			}
			if rerr := a.reconfigure(); rerr != nil {
				return rerr
			}
		}
	}
	return a.finishCheckpoint()
}

// generationAdvanced reports whether the store's generation has moved
// past the current assignment (one store read; the between-steps check
// that makes membership changes take effect at iteration boundaries).
func (a *Agent) generationAdvanced() bool {
	a.mu.Lock()
	g := a.assign.Generation
	a.mu.Unlock()
	cur, err := a.rdzv.CurrentGeneration()
	return err == nil && cur > g
}
