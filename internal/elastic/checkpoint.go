package elastic

import (
	"errors"
	"fmt"

	"repro/internal/ckpt"
)

// agentCkpt is one agent's checkpoint machinery for one Run: the shared
// directory writer plus, in async mode, the background persister.
type agentCkpt struct {
	cfg   CheckpointConfig
	w     *ckpt.Writer
	async *ckpt.AsyncWriter
}

// initCheckpoint validates the checkpoint configuration and builds the
// writer. Commit coordination goes through the rendezvous store
// (ckpt.StoreCommitter) rather than a collective Barrier, so
// asynchronous saves never inject collectives into the training data
// plane — whose submission order must match across ranks.
func (a *Agent) initCheckpoint() error {
	cc := a.cfg.Checkpoint
	if cc == nil {
		return nil
	}
	if cc.Dir == "" {
		return errors.New("elastic: CheckpointConfig.Dir is required")
	}
	w := &ckpt.Writer{
		Dir:   cc.Dir,
		Keep:  cc.Keep,
		Fault: cc.Fault,
		Committer: &ckpt.StoreCommitter{
			St:      a.cfg.Store,
			Prefix:  a.cfg.Prefix + "/ckpt",
			Poll:    a.cfg.PollInterval,
			Timeout: a.cfg.RoundTimeout,
		},
	}
	a.ck = &agentCkpt{cfg: *cc, w: w}
	if cc.Async {
		a.ck.async = ckpt.NewAsyncWriter(w)
	}
	return nil
}

// restoreCheckpoint is the cold-start restore path: before the first
// rendezvous, load the newest committed checkpoint (if resuming) into
// the model and optimizer and adopt its step count. The worker then
// joins the rendezvous holding restored progress, so the existing
// most-advanced-member election and SyncState broadcast distribute the
// restored state to every rank — a cold start is recovered by exactly
// the mechanism that recovers a partial failure. Re-sharding is free:
// ckpt.Restore reassembles the full state regardless of the world size
// that saved it.
func (a *Agent) restoreCheckpoint() error {
	if a.ck == nil || !a.ck.cfg.Resume {
		return nil
	}
	meta, err := ckpt.Restore(a.ck.cfg.Dir, a.model, a.opt)
	if errors.Is(err, ckpt.ErrNoCheckpoint) {
		return nil // genuinely fresh start
	}
	if err != nil {
		// Committed checkpoints exist but none loads: refuse to train.
		// Silently restarting from step 0 would "recover" by destroying
		// the very progress checkpointing exists to protect.
		return fmt.Errorf("elastic: cold-start restore: %w", err)
	}
	a.mu.Lock()
	a.step = meta.Step
	a.restored = &meta
	a.mu.Unlock()
	return nil
}

// RestoredCheckpoint reports the progress record of the checkpoint this
// agent cold-started from, if any. Callers whose data schedule depends
// on a run-level seed read Meta.Seed from here (the agent records the
// configured seed at save time but does not interpret it — batching is
// the StepFunc's business).
func (a *Agent) RestoredCheckpoint() (ckpt.Meta, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.restored == nil {
		return ckpt.Meta{}, false
	}
	return *a.restored, true
}

// maybeSaveCheckpoint persists the training state if the just-completed
// step count is a save point. All ranks execute the same step sequence,
// so all ranks reach the same save points with the same (generation,
// world) — the invariant the sharded commit protocol needs. A save
// canceled by a concurrent membership change is abandoned silently (the
// previous committed checkpoint remains); any other failure is an
// error.
func (a *Agent) maybeSaveCheckpoint() error {
	ck := a.ck
	if ck == nil || ck.cfg.Every <= 0 {
		return nil
	}
	a.mu.Lock()
	step := a.step
	assign := a.assign
	cancel := a.saveCancel
	a.mu.Unlock()
	if step%ck.cfg.Every != 0 || assign == nil {
		return nil
	}
	if cancel == nil {
		// A membership change is already in flight; skipping keeps this
		// rank out of a commit round that can never complete.
		return nil
	}
	opt := a.opt
	if a.cfg.FSDP != nil {
		sink, ok := a.fsdpCaptureState()
		if !ok {
			// The state gather broke mid-save: a membership change is
			// tearing the world down. Abandon the save like one canceled
			// at its commit barrier; the previous committed checkpoint
			// remains and drives the rollback recovery.
			return nil
		}
		opt = sink
	}
	snap, err := ckpt.Capture(a.model, opt, ckpt.Meta{
		Step:       step,
		Generation: assign.Generation,
		World:      assign.World,
		Seed:       ck.cfg.Seed,
	})
	if err != nil {
		return fmt.Errorf("elastic: capturing checkpoint: %w", err)
	}
	if ck.async != nil {
		if err := ck.async.Submit(snap, assign.Rank, assign.World, cancel); err != nil {
			return fmt.Errorf("elastic: checkpoint: %w", err)
		}
		return nil
	}
	if err := ck.w.Save(snap, assign.Rank, assign.World, cancel); err != nil && !errors.Is(err, ckpt.ErrAbandoned) {
		return fmt.Errorf("elastic: checkpoint: %w", err)
	}
	return nil
}

// cancelSaves abandons any save blocked at its commit barrier and
// leaves saveCancel nil, so no new save starts until the next
// reconfiguration arms a fresh channel. Idempotent.
func (a *Agent) cancelSaves() {
	a.mu.Lock()
	ch := a.saveCancel
	a.saveCancel = nil
	a.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// armSaves installs a fresh cancellation channel for the new
// generation's saves.
func (a *Agent) armSaves() {
	a.mu.Lock()
	a.saveCancel = make(chan struct{})
	a.mu.Unlock()
}

// finishCheckpoint drains the async persister so the final checkpoint
// is committed before Run returns. Called on the clean-completion path;
// the error surfaces there, because "training finished but its last
// checkpoint did not land" is a durability gap the caller must see.
func (a *Agent) finishCheckpoint() error {
	if a.ck == nil || a.ck.async == nil {
		return nil
	}
	if err := a.ck.async.Close(); err != nil {
		return fmt.Errorf("elastic: draining checkpoints: %w", err)
	}
	return nil
}

// abortCheckpoint tears the checkpoint machinery down on failure paths:
// in-flight saves are abandoned rather than drained, and their errors
// are discarded — the run is already exiting with a more fundamental
// error.
func (a *Agent) abortCheckpoint() {
	if a.ck == nil {
		return
	}
	a.cancelSaves()
	if a.ck.async != nil {
		//ddplint:ignore storeerr shutdown path; a failed in-flight save is superseded by the restore source chosen at restart
		_ = a.ck.async.Close()
	}
}
