package elastic

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/store"
)

// ---- in-proc checkpoint/restore scenarios ----------------------------------
//
// These tests exercise the failure mode elastic recovery alone cannot
// survive: every worker dying at once. The run's only continuation is
// the checkpoint directory; a cold restart (fresh store, fresh
// registry, fresh processes-worth of agents) must restore from the last
// committed checkpoint and continue bitwise-identically to a run that
// never crashed.

// runCkptWorkers drives `n` agents with the given checkpoint config to
// completion (or death) and returns each agent's Run error.
func runCkptWorkers(t *testing.T, workers []*testWorker, total int64, mkStep func(i int, w *testWorker) StepFunc) []error {
	t.Helper()
	errs := make([]error, len(workers))
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			errs[i] = w.agent.Run(total, mkStep(i, w))
		}(i, w)
	}
	wg.Wait()
	return errs
}

// newCkptWorker is newTestWorker with a model seed override, so a
// resumed worker can start from provably different initial weights.
func newCkptWorker(t *testing.T, cfg Config, seed int64) *testWorker {
	t.Helper()
	m := models.NewMLP(seed, testIn, testHidden, testClasses)
	opt := optim.NewSGD(m.Parameters(), testLR)
	opt.Momentum = testMom
	a, err := NewAgent(cfg, m, opt)
	if err != nil {
		t.Fatalf("NewAgent(%s): %v", cfg.ID, err)
	}
	return &testWorker{agent: a, model: m, opt: opt}
}

// waitForCommittedCheckpoint blocks until dir holds a committed
// checkpoint (bounded), so a planned crash cannot outrun an async save.
func waitForCommittedCheckpoint(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := ckpt.LatestMeta(dir); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no checkpoint committed within the wait window")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestCheckpointKillAllColdRestartBitwiseResume(t *testing.T) {
	for _, mode := range []struct {
		name  string
		async bool
	}{{"sync", false}, {"async", true}} {
		t.Run(mode.name, func(t *testing.T) {
			const (
				world     = 2
				total     = 12
				every     = 3
				crashStep = 8
			)
			dir := t.TempDir()

			// Reference: the same schedule, never interrupted.
			ref := newRefWorkers(world)
			runRefPhase(t, ref, 0, total)

			// Phase 1: train with checkpointing until every worker is
			// hard-killed mid-iteration at crashStep.
			st1 := store.NewInMem(10 * time.Second)
			reg1 := comm.NewInProcRegistry()
			ckCfg := &CheckpointConfig{Dir: dir, Every: every, Async: mode.async}
			phase1 := make([]*testWorker, world)
			for i := range phase1 {
				cfg := testConfig(st1, reg1, fmt.Sprintf("w%d", i), world, world)
				cfg.Checkpoint = ckCfg
				phase1[i] = newTestWorker(t, cfg)
			}
			errs := runCkptWorkers(t, phase1, total, func(i int, w *testWorker) StepFunc {
				return func(ctx StepContext) error {
					if ctx.Step == crashStep {
						// Async saves commit on a background goroutine;
						// the kill-all scenario is "every worker dies
						// AFTER a checkpoint committed", so wait for the
						// commit instead of racing it — otherwise the
						// in-flight step-6 save can be aborted by the
						// kill and leave the directory empty.
						if mode.async {
							waitForCommittedCheckpoint(t, dir)
						}
						w.agent.Kill()
						return errors.New("simulated simultaneous crash")
					}
					return elasticStep(ctx)
				}
			})
			for i, err := range errs {
				if !errors.Is(err, ErrKilled) {
					t.Fatalf("phase-1 worker %d returned %v, want ErrKilled", i, err)
				}
			}
			st1.Close()

			// The run is dead. Its only continuation is the directory:
			// there must be a committed checkpoint, and no torn commit
			// may ever be chosen.
			meta, err := ckpt.LatestMeta(dir)
			if err != nil {
				t.Fatalf("no committed checkpoint after kill-all: %v", err)
			}
			if meta.Step%every != 0 || meta.Step == 0 || meta.Step >= crashStep {
				t.Fatalf("latest checkpoint at step %d, want a committed multiple of %d below %d", meta.Step, every, crashStep)
			}

			// Phase 2: cold start — fresh store, fresh registry, fresh
			// agents with different model seeds (their own weights must
			// be overwritten by the restore).
			st2 := store.NewInMem(10 * time.Second)
			defer st2.Close()
			reg2 := comm.NewInProcRegistry()
			ck2 := *ckCfg
			ck2.Resume = true
			phase2 := make([]*testWorker, world)
			for i := range phase2 {
				cfg := testConfig(st2, reg2, fmt.Sprintf("r%d", i), world, world)
				cfg.Checkpoint = &ck2
				phase2[i] = newCkptWorker(t, cfg, int64(100+i))
			}
			errs = runCkptWorkers(t, phase2, total, func(i int, w *testWorker) StepFunc {
				return elasticStep
			})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("resumed worker %d: %v", i, err)
				}
			}

			// Bitwise identical to the uninterrupted reference run.
			want := flattenParams(ref[0].model)
			for i, w := range phase2 {
				if got := w.agent.Step(); got != total {
					t.Fatalf("resumed worker %d finished at step %d, want %d", i, got, total)
				}
				assertSameParams(t, fmt.Sprintf("resumed worker %d", i), flattenParams(w.model), want)
			}

			// The resumed run kept checkpointing: its final save (step
			// 12) must be committed and load to the final state.
			final, err := ckpt.LatestMeta(dir)
			if err != nil {
				t.Fatal(err)
			}
			if final.Step != total {
				t.Fatalf("final checkpoint at step %d, want %d", final.Step, total)
			}
			restored := models.NewMLP(55, testIn, testHidden, testClasses)
			if _, err := ckpt.Restore(dir, restored, nil); err != nil {
				t.Fatal(err)
			}
			assertSameParams(t, "final checkpoint", flattenParams(restored), want)
		})
	}
}

func TestCheckpointSurvivorsKeepCheckpointingAfterCrash(t *testing.T) {
	// One of three workers dies mid-iteration; the survivors
	// re-rendezvous at world 2 and keep saving under the new
	// generation. In-flight saves of the dead generation are abandoned,
	// never committed torn, and the final checkpoint reflects the
	// survivors' final state.
	const (
		world     = 3
		total     = 10
		every     = 2
		crashStep = 5
	)
	dir := t.TempDir()
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	ckCfg := &CheckpointConfig{Dir: dir, Every: every, Async: true}
	workers := make([]*testWorker, world)
	for i := range workers {
		cfg := testConfig(st, reg, fmt.Sprintf("w%d", i), world-1, world)
		cfg.Checkpoint = ckCfg
		workers[i] = newTestWorker(t, cfg)
	}
	victim := world - 1
	errs := runCkptWorkers(t, workers, total, func(i int, w *testWorker) StepFunc {
		base := fullWorld(w.agent, world, elasticStep)
		if i != victim {
			return base
		}
		return func(ctx StepContext) error {
			if ctx.Step == crashStep {
				w.agent.Kill()
				return errors.New("simulated crash")
			}
			return base(ctx)
		}
	})
	for i, err := range errs {
		if i == victim {
			if !errors.Is(err, ErrKilled) {
				t.Fatalf("victim returned %v, want ErrKilled", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
	}

	meta, err := ckpt.LatestMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Step != total {
		t.Fatalf("final checkpoint at step %d, want %d", meta.Step, total)
	}
	if meta.World != 2 {
		t.Fatalf("final checkpoint saved by world %d, want the shrunken world 2", meta.World)
	}
	restored := models.NewMLP(55, testIn, testHidden, testClasses)
	if _, err := ckpt.Restore(dir, restored, nil); err != nil {
		t.Fatal(err)
	}
	assertSameParams(t, "final checkpoint", flattenParams(restored), flattenParams(workers[0].model))
}

func TestCheckpointResumeFailsLoudlyWhenAllCorrupt(t *testing.T) {
	// Committed checkpoints exist but every one is damaged: the agent
	// must refuse to start rather than silently train from step 0.
	dir := t.TempDir()
	st := store.NewInMem(5 * time.Second)
	defer st.Close()

	m := models.NewMLP(7, testIn, testHidden, testClasses)
	opt := optim.NewSGD(m.Parameters(), testLR)
	w := &ckpt.Writer{Dir: dir, Committer: &ckpt.StoreCommitter{St: st}}
	snap, err := ckpt.Capture(m, opt, ckpt.Meta{Step: 4, World: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Save(snap, 0, 1, nil); err != nil {
		t.Fatal(err)
	}
	// Flip a bit in the sole shard.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flipped := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".shard") {
			path := filepath.Join(dir, e.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			flipped = true
		}
	}
	if !flipped {
		t.Fatal("no shard written")
	}

	reg := comm.NewInProcRegistry()
	cfg := testConfig(st, reg, "w0", 1, 1)
	cfg.Checkpoint = &CheckpointConfig{Dir: dir, Resume: true}
	worker := newTestWorker(t, cfg)
	err = worker.agent.Run(2, elasticStep)
	if err == nil {
		t.Fatal("agent trained from scratch over a corrupt checkpoint dir")
	}
	if errors.Is(err, ckpt.ErrNoCheckpoint) || !strings.Contains(err.Error(), "restore") {
		t.Fatalf("want a loud cold-start restore error, got: %v", err)
	}
}

func TestCheckpointConfigRequiresDir(t *testing.T) {
	st := store.NewInMem(time.Second)
	defer st.Close()
	cfg := testConfig(st, comm.NewInProcRegistry(), "w0", 1, 1)
	cfg.Checkpoint = &CheckpointConfig{Every: 2}
	w := newTestWorker(t, cfg)
	if err := w.agent.Run(1, elasticStep); err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("missing Dir must fail fast, got %v", err)
	}
}
