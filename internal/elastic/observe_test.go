package elastic

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/store"
	"repro/internal/trace"
)

// validPhases is the vocabulary reconfigure() narrates recoveries in.
var validPhases = map[string]bool{
	"teardown":      true,
	"rendezvous":    true,
	"mesh-build":    true,
	"state-sync":    true,
	"ddp-swap":      true,
	"residual-sync": true,
}

// assertSpanTiles checks the structural invariant the recovery trace is
// built on: the phases partition the root exactly — contiguous, inside
// the root, and summing to precisely the root's duration — so a
// recovery-time regression is always attributable to a phase.
func assertSpanTiles(t *testing.T, root *trace.Span) {
	t.Helper()
	if root.Name != "recovery" {
		t.Fatalf("root span named %q, want recovery", root.Name)
	}
	if root.End.IsZero() {
		t.Fatalf("recovery span left open (started %v)", root.Start)
	}
	if len(root.Children) == 0 {
		t.Fatalf("recovery span has no phases")
	}
	var sum time.Duration
	cursor := root.Start
	for i, c := range root.Children {
		if !validPhases[c.Name] {
			t.Fatalf("phase %d has unexpected name %q", i, c.Name)
		}
		if !c.Start.Equal(cursor) {
			t.Fatalf("phase %q starts at %v, want %v (gap or overlap)", c.Name, c.Start, cursor)
		}
		if c.End.IsZero() {
			t.Fatalf("phase %q left open", c.Name)
		}
		sum += c.Duration()
		cursor = c.End
	}
	if !cursor.Equal(root.End) {
		t.Fatalf("last phase ends at %v, root at %v", cursor, root.End)
	}
	if sum != root.Duration() {
		t.Fatalf("phase durations sum to %v, recovery took %v", sum, root.Duration())
	}
	if root.Children[0].Name != "teardown" {
		t.Fatalf("first phase %q, want teardown", root.Children[0].Name)
	}
}

// TestRecoverySpansTileRecoveryDuration runs a 3-worker job, kills one
// mid-step, and checks every survivor recorded span trees — the initial
// formation and the post-crash recovery — whose phase durations sum
// exactly to the recovery duration.
func TestRecoverySpansTileRecoveryDuration(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 6
		k     = 3 // step during which the victim dies
	)

	recoveriesBefore := mRecoveries.Value()

	workers := make([]*testWorker, 3)
	tracers := make([]*trace.Tracer, 3)
	for i := range workers {
		cfg := testConfig(st, reg, fmt.Sprintf("tw%d", i), 2, 3)
		cfg.Prefix = "span-test"
		tracers[i] = trace.NewTracer()
		cfg.Tracer = tracers[i]
		workers[i] = newTestWorker(t, cfg)
	}
	victim := workers[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				if w == victim && ctx.Step == k {
					x, _ := batchFor(ctx.Step, ctx.Rank, ctx.World)
					ctx.DDP.Forward(autograd.Constant(x))
					w.agent.Kill()
					return errors.New("simulated crash")
				}
				return elasticStep(ctx)
			})
			errs[i] = w.agent.Run(total, step)
		}(i, w)
	}
	wg.Wait()
	if !errors.Is(errs[2], ErrKilled) {
		t.Fatalf("victim returned %v, want ErrKilled", errs[2])
	}
	for i := range workers[:2] {
		if errs[i] != nil {
			t.Fatalf("survivor %d: %v", i, errs[i])
		}
	}

	for i := range workers[:2] {
		roots := tracers[i].Roots()
		// At least the initial formation and the post-crash recovery;
		// possibly more (a failed attempt records its own tree).
		if len(roots) < 2 {
			t.Fatalf("survivor %d recorded %d recovery spans, want >= 2", i, len(roots))
		}
		for _, root := range roots {
			assertSpanTiles(t, root)
		}
		// The successful recovery reached residual-sync.
		last := roots[len(roots)-1]
		if got := last.Children[len(last.Children)-1].Name; got != "residual-sync" {
			t.Fatalf("survivor %d's final recovery ends in phase %q, want residual-sync", i, got)
		}
	}

	// Agent.Tracer hands the same tracer back (the handle ddptrain dumps
	// from), and successful recoveries moved the global counter.
	if workers[0].agent.Tracer() != tracers[0] {
		t.Fatalf("Agent.Tracer returned a different tracer")
	}
	if got := mRecoveries.Value(); got <= recoveriesBefore {
		t.Fatalf("elastic_recoveries_total did not advance: %v -> %v", recoveriesBefore, got)
	}
	// The assignment gauges reflect the survivors' final world.
	for i, w := range workers[:2] {
		a := w.agent.Assignment()
		if got := mWorldSize.With(w.agent.cfg.ID).Value(); got != float64(a.World) {
			t.Fatalf("survivor %d elastic_world_size = %v, assignment world %d", i, got, a.World)
		}
		if got := mGeneration.With(w.agent.cfg.ID).Value(); got != float64(a.Generation) {
			t.Fatalf("survivor %d elastic_generation = %v, assignment generation %d", i, got, a.Generation)
		}
	}
}

// TestStragglerDetectorFlagsSlowRank drives three detectors over a
// shared store with deterministic latencies: two 10ms workers, one
// 100ms worker. The slow worker must flag itself within a bounded
// number of steps (its first evaluation round) and the fast workers
// must never flag.
func TestStragglerDetectorFlagsSlowRank(t *testing.T) {
	st := store.NewInMem(5 * time.Second)
	defer st.Close()
	cfg := StragglerConfig{Window: 8, PublishEvery: 2, Factor: 2, MinPeers: 2, MinSamples: 2}

	var flags []StragglerFlag
	slowCfg := cfg
	slowCfg.OnFlag = func(f StragglerFlag) { flags = append(flags, f) }

	ids := []string{"fast-a", "fast-b", "slow"}
	fastA := NewStragglerDetector(st, "st", ids[0], cfg)
	fastB := NewStragglerDetector(st, "st", ids[1], cfg)
	slow := NewStragglerDetector(st, "st", ids[2], slowCfg)
	fastA.SetPeers([]string{ids[1], ids[2]})
	fastB.SetPeers([]string{ids[0], ids[2]})
	slow.SetPeers([]string{ids[0], ids[1]})

	const bound = 4 // must flag within this many steps
	flaggedAt := -1
	for step := 1; step <= 8; step++ {
		fastA.Record(10 * time.Millisecond)
		fastB.Record(10 * time.Millisecond)
		slow.Record(100 * time.Millisecond)
		if flaggedAt < 0 && slow.Flagged() {
			flaggedAt = step
		}
	}
	if flaggedAt < 0 {
		t.Fatalf("slow worker never flagged")
	}
	if flaggedAt > bound {
		t.Fatalf("slow worker flagged at step %d, want <= %d", flaggedAt, bound)
	}
	if fastA.Flagged() || fastB.Flagged() {
		t.Fatalf("fast workers flagged: a=%v b=%v", fastA.Flagged(), fastB.Flagged())
	}
	if len(flags) != 1 || !flags[0].Flagged || flags[0].Worker != "slow" {
		t.Fatalf("OnFlag transitions = %+v, want exactly one flagged transition for slow", flags)
	}
	if flags[0].Median < 90*time.Millisecond || flags[0].WorldMedian > 20*time.Millisecond {
		t.Fatalf("flag carried median %v / world %v, want ~100ms vs ~10ms", flags[0].Median, flags[0].WorldMedian)
	}
	if got := mStraggler.With("slow").Value(); got != 1 {
		t.Fatalf("elastic_straggler{slow} = %v, want 1", got)
	}
	if got := mStraggler.With("fast-a").Value(); got != 0 {
		t.Fatalf("elastic_straggler{fast-a} = %v, want 0", got)
	}

	// Recovery: the slow worker speeds up; the flag must clear and the
	// transition must be reported.
	for step := 0; step < 16; step++ {
		fastA.Record(10 * time.Millisecond)
		fastB.Record(10 * time.Millisecond)
		slow.Record(10 * time.Millisecond)
	}
	if slow.Flagged() {
		t.Fatalf("slow worker still flagged after recovering")
	}
	if len(flags) != 2 || flags[1].Flagged {
		t.Fatalf("OnFlag transitions after recovery = %+v, want a clearing transition", flags)
	}
}

// TestAgentStragglerWiring runs a healthy elastic job with detection
// enabled and checks the plumbing: medians are gossiped into the store
// under the job prefix and no worker is falsely flagged (synchronous
// collectives equalize wall time across ranks, so a healthy world must
// read as flat).
func TestAgentStragglerWiring(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const total = 8

	workers := make([]*testWorker, 2)
	for i := range workers {
		cfg := testConfig(st, reg, fmt.Sprintf("sw%d", i), 2, 2)
		cfg.Prefix = "strag-wire"
		cfg.Straggler = &StragglerConfig{Window: 4, PublishEvery: 2, MinPeers: 1, MinSamples: 2}
		workers[i] = newTestWorker(t, cfg)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(workers))
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			errs[i] = w.agent.Run(total, fullWorld(w.agent, 2, elasticStep))
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i, w := range workers {
		det := w.agent.Straggler()
		if det == nil {
			t.Fatalf("worker %d has no straggler detector", i)
		}
		if det.Flagged() {
			t.Fatalf("worker %d falsely flagged in a healthy world", i)
		}
		v, err := st.Add(LatencyKey("strag-wire", w.agent.cfg.ID), 0)
		if err != nil || v <= 0 {
			t.Fatalf("worker %d published median %d (err %v), want > 0", i, v, err)
		}
	}
}

// TestHeartbeatMissCounter: a monitored peer that never beats expires
// exactly once, and the expiry lands on the global miss counter.
func TestHeartbeatMissCounter(t *testing.T) {
	st := store.NewInMem(5 * time.Second)
	defer st.Close()
	before := mHeartbeatMisses.Value()
	expired := make(chan string, 1)
	mon := StartMonitor(st, "hbm", 20*time.Millisecond, 2*time.Millisecond, func(id string) { expired <- id })
	defer mon.Stop()
	mon.SetPeers([]string{"ghost"})
	select {
	case id := <-expired:
		if id != "ghost" {
			t.Fatalf("expired peer %q, want ghost", id)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("lease never expired")
	}
	if got := mHeartbeatMisses.Value(); got < before+1 {
		t.Fatalf("elastic_heartbeat_misses_total = %v, want >= %v", got, before+1)
	}
}
