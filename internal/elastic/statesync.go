package elastic

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
)

// SyncState broadcasts the full training state — model parameters,
// buffers, and (when the optimizer supports it) flattened optimizer
// state — from source rank to every rank of pg. After it returns, all
// replicas hold bit-identical state, re-establishing DDP's Section 2.2
// invariant for a freshly reconfigured world: joiners adopt the
// survivor's progress, and survivors whose in-flight iteration was
// aborted are realigned with the most advanced member.
//
// Every rank must call SyncState with the same source (use
// Assignment.Source so the choice is a pure function of the shared
// membership).
func SyncState(pg comm.ProcessGroup, source int, model nn.Module, opt optim.Optimizer) error {
	var works []comm.Work
	for _, p := range model.Parameters() {
		works = append(works, pg.Broadcast(p.Value.Data(), source))
	}
	for _, b := range model.Buffers() {
		works = append(works, pg.Broadcast(b.Data.Data(), source))
	}
	if err := comm.WaitAll(works...); err != nil {
		return fmt.Errorf("elastic: broadcasting model state: %w", err)
	}
	sf, ok := opt.(optim.StateFlattener)
	if !ok || opt == nil {
		return nil
	}
	// FlatState materializes lazily-allocated slots as zeros, so the
	// vector length is identical on every rank regardless of progress.
	flat := sf.FlatState()
	if len(flat) == 0 {
		return nil
	}
	if err := pg.Broadcast(flat, source).Wait(); err != nil {
		return fmt.Errorf("elastic: broadcasting optimizer state: %w", err)
	}
	if pg.Rank() != source {
		if err := sf.SetFlatState(flat); err != nil {
			return fmt.Errorf("elastic: installing optimizer state: %w", err)
		}
	}
	return nil
}
