package elastic

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
)

// SyncState broadcasts the full training state — model parameters,
// buffers, and (when the optimizer supports it) flattened optimizer
// state — from source rank to every rank of pg. After it returns, all
// replicas hold bit-identical state, re-establishing DDP's Section 2.2
// invariant for a freshly reconfigured world: joiners adopt the
// survivor's progress, and survivors whose in-flight iteration was
// aborted are realigned with the most advanced member.
//
// Every rank must call SyncState with the same source (use
// Assignment.Source so the choice is a pure function of the shared
// membership).
func SyncState(pg comm.ProcessGroup, source int, model nn.Module, opt optim.Optimizer) error {
	var works []comm.Work
	for _, p := range model.Parameters() {
		works = append(works, pg.Broadcast(p.Value.Data(), source))
	}
	for _, b := range model.Buffers() {
		works = append(works, pg.Broadcast(b.Data.Data(), source))
	}
	if err := comm.WaitAll(works...); err != nil {
		return fmt.Errorf("elastic: broadcasting model state: %w", err)
	}
	sf, ok := opt.(optim.StateFlattener)
	if !ok || opt == nil {
		return nil
	}
	// FlatState materializes lazily-allocated slots as zeros, so the
	// vector length is identical on every rank regardless of progress.
	flat := sf.FlatState()
	if len(flat) == 0 {
		return nil
	}
	if err := pg.Broadcast(flat, source).Wait(); err != nil {
		return fmt.Errorf("elastic: broadcasting optimizer state: %w", err)
	}
	if pg.Rank() != source {
		if err := sf.SetFlatState(flat); err != nil {
			return fmt.Errorf("elastic: installing optimizer state: %w", err)
		}
	}
	return nil
}

// ResidualCarrier is implemented by training wrappers that hold
// error-feedback residual state which must travel with reconfiguration
// — ddp.DDP when a gradient-compression wire codec is configured. The
// residual vector is flattened in parameter order, so like checkpoints
// it is world-size independent and re-shards trivially.
type ResidualCarrier interface {
	// ResidualState returns the flattened residuals (empty when the
	// codec keeps none).
	ResidualState() []float32
	// SetResidualState installs a vector produced by ResidualState on
	// the elected source.
	SetResidualState([]float32) error
}

// SyncResiduals broadcasts rc's error-feedback residuals from source to
// every rank of pg — the compression analogue of SyncState's optimizer
// broadcast. Accumulated quantization error is training state: a joiner
// that starts from zero residuals while survivors carry theirs would
// re-inject gradient mass the survivors already accounted for, exactly
// when a reconfiguration has made the schedule most fragile. Every rank
// must call it with the same source, after the DDP wrapper exists on
// all ranks (unlike SyncState, which runs before a fresh joiner has
// built one). The residual vector's length is a pure function of the
// model and codec configuration, so ranks always agree on whether a
// broadcast happens.
func SyncResiduals(pg comm.ProcessGroup, source int, rc ResidualCarrier) error {
	flat := rc.ResidualState()
	if len(flat) == 0 {
		return nil
	}
	if err := pg.Broadcast(flat, source).Wait(); err != nil {
		return fmt.Errorf("elastic: broadcasting error-feedback residuals: %w", err)
	}
	if pg.Rank() != source {
		if err := rc.SetResidualState(flat); err != nil {
			return fmt.Errorf("elastic: installing error-feedback residuals: %w", err)
		}
	}
	return nil
}
