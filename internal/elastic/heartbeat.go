package elastic

import (
	"sync"
	"time"

	"repro/internal/store"
)

// Heartbeat publishes a worker's liveness by bumping a store counter
// every interval. Counters rather than timestamps keep detection free
// of cross-process clock comparisons: a monitor only asks "has this
// value changed since I last looked?" against its own clock.
type Heartbeat struct {
	st       store.Store
	key      string
	interval time.Duration
	clk      Clock
	stop     chan struct{}
	done     chan struct{}
	once     sync.Once
}

// HeartbeatKey returns the store key worker id beats under.
func HeartbeatKey(prefix, id string) string { return prefix + "/hb/" + id }

// StartHeartbeat begins beating immediately and then every interval
// until Stop, paced by the system clock.
func StartHeartbeat(st store.Store, prefix, id string, interval time.Duration) *Heartbeat {
	return StartHeartbeatClock(st, prefix, id, interval, SystemClock)
}

// StartHeartbeatClock is StartHeartbeat paced by an explicit Clock.
func StartHeartbeatClock(st store.Store, prefix, id string, interval time.Duration, clk Clock) *Heartbeat {
	h := &Heartbeat{
		st:       st,
		key:      HeartbeatKey(prefix, id),
		interval: interval,
		clk:      clk,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go h.loop()
	return h
}

func (h *Heartbeat) loop() {
	defer close(h.done)
	tick, stopTick := h.clk.Tick(h.interval)
	defer stopTick()
	h.beat()
	for {
		select {
		case <-h.stop:
			return
		case <-tick:
			h.beat()
		}
	}
}

func (h *Heartbeat) beat() {
	// A failed beat is indistinguishable from a missed one to peers;
	// the lease mechanism tolerates both.
	//ddplint:ignore storeerr a failed beat is indistinguishable from a missed one; the lease tolerates both
	_, _ = h.st.Add(h.key, 1)
}

// Stop halts the heartbeat; peers will declare this worker dead after
// the lease expires. Safe to call more than once.
func (h *Heartbeat) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

// peerState is a monitor's local view of one peer's liveness.
type peerState struct {
	lastValue int64
	lastBeat  time.Time
	suspected bool
}

// Monitor watches peers' heartbeat counters and reports the first
// lease expiry per peer through a callback. Every worker monitors
// every peer — there is no privileged failure detector whose own death
// would blind the job; the rendezvous CAS fence deduplicates the
// resulting generation proposals.
type Monitor struct {
	st       store.Store
	prefix   string
	lease    time.Duration
	poll     time.Duration
	clk      Clock
	onExpire func(id string)

	mu    sync.Mutex
	peers map[string]*peerState

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartMonitor begins polling on the system clock. The peer set starts
// empty; install it with SetPeers after each rendezvous. onExpire runs
// on the monitor goroutine, at most once per peer per SetPeers
// installation.
func StartMonitor(st store.Store, prefix string, lease, poll time.Duration, onExpire func(id string)) *Monitor {
	return StartMonitorClock(st, prefix, lease, poll, onExpire, SystemClock)
}

// StartMonitorClock is StartMonitor paced by an explicit Clock, which
// governs both the poll cadence and the lease arithmetic.
func StartMonitorClock(st store.Store, prefix string, lease, poll time.Duration, onExpire func(id string), clk Clock) *Monitor {
	m := &Monitor{
		st:       st,
		prefix:   prefix,
		lease:    lease,
		poll:     poll,
		clk:      clk,
		onExpire: onExpire,
		peers:    make(map[string]*peerState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go m.loop()
	return m
}

// SetPeers replaces the monitored set (the caller's own id should be
// excluded). Each peer's lease is granted fresh from now, so a newly
// admitted member has a full lease to produce its first beat.
func (m *Monitor) SetPeers(ids []string) {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.peers = make(map[string]*peerState, len(ids))
	for _, id := range ids {
		m.peers[id] = &peerState{lastValue: -1, lastBeat: now}
	}
}

func (m *Monitor) loop() {
	defer close(m.done)
	tick, stopTick := m.clk.Tick(m.poll)
	defer stopTick()
	for {
		select {
		case <-m.stop:
			return
		case <-tick:
			for _, id := range m.expiredPeers() {
				m.onExpire(id)
			}
		}
	}
}

// expiredPeers advances every peer's view and collects fresh expiries.
func (m *Monitor) expiredPeers() []string {
	m.mu.Lock()
	ids := make([]string, 0, len(m.peers))
	for id := range m.peers {
		ids = append(ids, id)
	}
	m.mu.Unlock()

	var expired []string
	for _, id := range ids {
		v, err := m.st.Add(HeartbeatKey(m.prefix, id), 0)
		if err != nil {
			continue // store unreachable; better to stall than to misfire
		}
		now := m.clk.Now()
		m.mu.Lock()
		p, ok := m.peers[id]
		if !ok || p.suspected {
			m.mu.Unlock()
			continue
		}
		if v != p.lastValue {
			p.lastValue = v
			p.lastBeat = now
		} else if now.Sub(p.lastBeat) > m.lease {
			p.suspected = true
			mHeartbeatMisses.Inc()
			expired = append(expired, id)
		}
		m.mu.Unlock()
	}
	return expired
}

// Stop halts monitoring. Safe to call more than once.
func (m *Monitor) Stop() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}
