package elastic

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/autograd"
	"repro/internal/ckpt"
	"repro/internal/comm"
	"repro/internal/fsdp"
	"repro/internal/store"
)

// ---- sharded (fsdp) elastic scenarios --------------------------------------
//
// The sharded analogue of the DDP convergence tests. Bitwise equality
// against a plain-DDP reference holds because a ZeRO run over Ring
// groups IS the DDP+SGD trajectory (see internal/fsdp's contract), and
// an fsdp world change is a rollback to the newest committed
// checkpoint — so with Every=1 the rollback lands exactly on the live
// state and the reference is simply two DDP phases at the two world
// sizes.

func newFSDPWorker(t *testing.T, cfg Config, strategy fsdp.Strategy) *testWorker {
	t.Helper()
	cfg.FSDP = &fsdp.Options{
		Strategy:       strategy,
		BucketCapBytes: testBucketCap,
		LR:             testLR,
		Momentum:       testMom,
	}
	m := testModel()
	a, err := NewAgent(cfg, m, nil) // fsdp fuses the optimizer into Backward
	if err != nil {
		t.Fatalf("NewAgent(%s): %v", cfg.ID, err)
	}
	return &testWorker{agent: a, model: m}
}

func fsdpElasticStep(ctx StepContext) error {
	x, labels := batchFor(ctx.Step, ctx.Rank, ctx.World)
	out := ctx.FSDP.Forward(autograd.Constant(x))
	return ctx.FSDP.Backward(autograd.CrossEntropyLoss(out, labels))
}

// TestFSDPElasticWorldShrinkReshardResume is the acceptance scenario:
// a ZeRO world of 3 trains with per-step checkpoints, one worker
// departs, and the survivors re-shard the committed checkpoint for
// world 2 and finish — bitwise identical to an uninterrupted two-phase
// DDP reference. Run for both strategies; ZeRO-3 is the hard case (the
// leaver's parameter shards exist nowhere else).
func TestFSDPElasticWorldShrinkReshardResume(t *testing.T) {
	for _, strategy := range []fsdp.Strategy{fsdp.ZeRO2, fsdp.ZeRO3} {
		t.Run(strategy.String(), func(t *testing.T) {
			const (
				world     = 3
				total     = 8
				leaveStep = 3 // leaver trains step 3, then departs
			)
			dir := t.TempDir()
			st := store.NewInMem(10 * time.Second)
			defer st.Close()
			reg := comm.NewInProcRegistry()

			workers := make([]*testWorker, world)
			for i := range workers {
				cfg := testConfig(st, reg, fmt.Sprintf("w%d", i), world-1, world)
				cfg.Checkpoint = &CheckpointConfig{Dir: dir, Every: 1}
				workers[i] = newFSDPWorker(t, cfg, strategy)
			}
			victim := world - 1
			errs := runCkptWorkers(t, workers, total, func(i int, w *testWorker) StepFunc {
				base := fullWorld(w.agent, world, fsdpElasticStep)
				if i != victim {
					return base
				}
				return func(ctx StepContext) error {
					if ctx.Step == leaveStep {
						// Train this step normally, then depart at the next
						// iteration boundary: survivors roll back to the
						// checkpoint saved after this step and lose nothing.
						w.agent.Leave()
					}
					return base(ctx)
				}
			})
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}

			// Reference: DDP + SGD over the same schedule, world 3 for
			// steps [0, leaveStep+1), world 2 for the rest.
			ref := newRefWorkers(world)
			runRefPhase(t, ref, 0, leaveStep+1)
			runRefPhase(t, ref[:2], leaveStep+1, total)
			want := flattenParams(ref[0].model)

			for i, w := range workers {
				if i == victim {
					continue // departed at leaveStep+1, state is stale
				}
				if got := w.agent.Step(); got != total {
					t.Fatalf("survivor %d finished at step %d, want %d", i, got, total)
				}
				f := w.agent.FSDP()
				if f == nil {
					t.Fatalf("survivor %d has no fsdp wrapper", i)
				}
				if f.ProcessGroup().Size() != 2 {
					t.Fatalf("survivor %d still on world %d", i, f.ProcessGroup().Size())
				}
				if strategy == fsdp.ZeRO2 {
					// ZeRO-2 replicates parameters, so survivors hold the
					// full set in memory. (ZeRO-3 survivors hold shards —
					// the checkpoint assertion below covers the full state.)
					assertSameParams(t, fmt.Sprintf("survivor %d", i), flattenParams(w.model), want)
				}
			}

			// The run kept checkpointing after the shrink: the final save
			// must be committed by world 2 at the final step, and it holds
			// the bitwise reference state (its capture materialized the
			// full parameters and gathered the sharded momentum).
			meta, err := ckpt.LatestMeta(dir)
			if err != nil {
				t.Fatal(err)
			}
			if meta.Step != total || meta.World != 2 {
				t.Fatalf("final checkpoint (step %d, world %d), want (step %d, world 2)", meta.Step, meta.World, total)
			}
			restored := testModel()
			if _, err := ckpt.Restore(dir, restored, nil); err != nil {
				t.Fatal(err)
			}
			assertSameParams(t, "final checkpoint", flattenParams(restored), want)
		})
	}
}

// TestFSDPElasticReshardWithoutCheckpointIsTerminal: a sharded world
// cannot rebuild lost shards from a survivor, so a membership change
// without a committed checkpoint must fail loudly instead of silently
// rolling back to garbage.
func TestFSDPElasticReshardWithoutCheckpointIsTerminal(t *testing.T) {
	const world = 2
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	workers := make([]*testWorker, world)
	for i := range workers {
		cfg := testConfig(st, reg, fmt.Sprintf("w%d", i), 1, world)
		workers[i] = newFSDPWorker(t, cfg, fsdp.ZeRO3)
	}
	victim := 1
	errs := runCkptWorkers(t, workers, 6, func(i int, w *testWorker) StepFunc {
		base := fullWorld(w.agent, world, fsdpElasticStep)
		if i != victim {
			return base
		}
		return func(ctx StepContext) error {
			if ctx.Step == 2 {
				w.agent.Kill()
				return errors.New("simulated crash")
			}
			return base(ctx)
		}
	})
	if !errors.Is(errs[victim], ErrKilled) {
		t.Fatalf("victim returned %v, want ErrKilled", errs[victim])
	}
	if errs[0] == nil || !strings.Contains(errs[0].Error(), "committed checkpoint") {
		t.Fatalf("survivor must fail loudly without a checkpoint to re-shard, got: %v", errs[0])
	}
}
