package elastic

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/store"
)

// runLeaderRingRefPhase is runCompressedRefPhase with the Hierarchical
// algorithm over an explicit multi-level host layout: the compressed
// leader ring runs among the top-level leaders while intra-level
// phases stay exact, and SetProcessGroup between phases carries the
// error-feedback residuals like the elastic agent's swap does.
func runLeaderRingRefPhase(t *testing.T, workers []*refWorker, start, end int64, hosts []string) {
	t.Helper()
	world := len(workers)
	opts := comm.Options{Algorithm: comm.Hierarchical, Topology: comm.NewTopology(hosts)}
	groups := comm.NewInProcGroups(world, opts)
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := range workers {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := workers[r]
			if w.d == nil {
				d, err := ddp.New(w.model, groups[r], ddp.Options{
					BucketCapBytes:       testBucketCap,
					SkipInitialBroadcast: true,
					NewCodec:             oneBitFactory,
				})
				if err != nil {
					errs[r] = err
					return
				}
				w.d = d
			} else if err := w.d.SetProcessGroup(groups[r]); err != nil {
				errs[r] = err
				return
			}
			for s := start; s < end; s++ {
				if err := sharedBatchStep(w.d, w.opt, s); err != nil {
					errs[r] = fmt.Errorf("ref step %d: %w", s, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	for _, g := range groups {
		g.Close()
	}
}

// TestTopologyOptionsBuildsMultiLevelFromMemberHosts: structured "/"
// labels published as rendezvous member hosts must rebuild an N-level
// topology in the regenerated group's options — the plumbing that lets
// pod/rack/host scheduling survive membership changes.
func TestTopologyOptionsBuildsMultiLevelFromMemberHosts(t *testing.T) {
	a := &Assignment{
		World: 3,
		Members: []Member{
			{ID: "w0", Host: "p0/r0/h0"},
			{ID: "w1", Host: "p0/r1/h1"},
			{ID: "w2", Host: "p1/r2/h2"},
		},
	}
	got := topologyOptions(comm.Options{}, a)
	if got.Topology == nil {
		t.Fatal("no topology derived from structured member hosts")
	}
	if got.Topology.Levels() != 3 {
		t.Fatalf("Levels() = %d, want 3", got.Topology.Levels())
	}
	if got.Topology.NumGroups(0) != 2 {
		t.Fatalf("top-level groups = %d, want 2 pods", got.Topology.NumGroups(0))
	}
}

// TestElasticReconfigPreservesLeaderRingResiduals is the acceptance
// scenario composing the compressed leader ring with elastic recovery:
// three workers on three distinct pods (structured three-level labels,
// so ALL ranks are top-level leaders and the leader ring spans
// everyone) train with the Hierarchical algorithm and wire-level 1-bit
// compression. One worker leaves mid-run; survivors re-rendezvous,
// rebuild the multi-level topology from the new round's member hosts,
// and SyncResiduals carries the accumulated quantization error into
// the new generation. The run must match — bitwise, parameters AND
// residuals — a reference that replays the captured layouts with the
// same algorithm and codec. Dropping residuals at the reconfiguration
// (or rebuilding the topology flat) diverges at the first
// post-recovery quantization.
func TestElasticReconfigPreservesLeaderRingResiduals(t *testing.T) {
	st := store.NewInMem(10 * time.Second)
	defer st.Close()
	reg := comm.NewInProcRegistry()
	const (
		total = 8
		k     = 3 // leaver's last completed step
	)
	hostOf := map[string]string{
		"w0": "p0/r0/h0",
		"w1": "p1/r1/h1",
		"w2": "p2/r2/h2",
	}

	// Per-step host layouts (by rank) of the groups that actually ran —
	// the ground truth for both the reference replay and the
	// multi-level-rendezvous assertion.
	var mu sync.Mutex
	stepTopo := make(map[int64][]string)
	ddps := make([]*ddp.DDP, 3)

	workers := make([]*testWorker, 3)
	for i := range workers {
		id := fmt.Sprintf("w%d", i)
		cfg := testConfig(st, reg, id, 2, 3)
		cfg.Host = hostOf[id]
		cfg.DDP.NewCodec = oneBitFactory
		cfg.Builder = &InProcBuilder{Registry: reg, Opts: comm.Options{Algorithm: comm.Hierarchical}}
		workers[i] = newTestWorker(t, cfg)
	}
	victim := workers[2]

	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *testWorker) {
			defer wg.Done()
			step := fullWorld(w.agent, 3, func(ctx StepContext) error {
				hosts := w.agent.Assignment().Hosts()
				if hosts == nil {
					return fmt.Errorf("step %d: assignment published no hosts", ctx.Step)
				}
				mu.Lock()
				stepTopo[ctx.Step] = hosts
				ddps[i] = ctx.DDP
				mu.Unlock()
				if w == victim && ctx.Step == k {
					w.agent.Leave()
				}
				return sharedBatchStep(ctx.DDP, ctx.Optimizer, ctx.Step)
			})
			errs[i] = w.agent.Run(total, step)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	// Every generation's published layout must round-trip the structured
	// labels: three levels both before and after the departure.
	for s := int64(0); s < total; s++ {
		hosts := stepTopo[s]
		wantWorld := 3
		if s > k {
			wantWorld = 2
		}
		if len(hosts) != wantWorld {
			t.Fatalf("step %d layout %v, want world %d", s, hosts, wantWorld)
		}
		if topo := comm.NewTopology(hosts); topo.Levels() != 3 {
			t.Fatalf("step %d: rendezvous hosts %v rebuilt %d level(s), want 3", s, hosts, topo.Levels())
		}
	}

	// Reference: replay the captured layouts phase by phase.
	ref := newRefWorkers(3)
	runLeaderRingRefPhase(t, ref, 0, k+1, stepTopo[0])
	runLeaderRingRefPhase(t, ref[:2], k+1, total, stepTopo[k+1])

	wantParams := flattenParams(ref[0].model)
	wantRes := ref[0].d.ResidualState()
	if !anyNonZero(wantRes) {
		t.Fatal("reference accumulated no residual; test is vacuous")
	}
	for i, w := range workers[:2] {
		assertSameParams(t, fmt.Sprintf("survivor%d-params", i), flattenParams(w.model), wantParams)
		assertSameResiduals(t, fmt.Sprintf("survivor%d", i), ddps[i].ResidualState(), wantRes)
	}
}
