package pipeline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// buildStages returns a two-stage partition and an identically-seeded
// monolithic model for equivalence checks.
func buildStages(seed int64) (stage0, stage1, monolithic nn.Module) {
	rng := rand.New(rand.NewSource(seed))
	s0 := nn.NewSequential(nn.NewLinear(rng, "fc1", 6, 10), nn.Tanh{})
	s1 := nn.NewSequential(nn.NewLinear(rng, "fc2", 10, 3))

	rng2 := rand.New(rand.NewSource(seed))
	mono := nn.NewSequential(
		nn.NewLinear(rng2, "fc1", 6, 10), nn.Tanh{},
		nn.NewLinear(rng2, "fc2", 10, 3),
	)
	return s0, s1, mono
}

func mseLoss(out *autograd.Variable, target *tensor.Tensor) *autograd.Variable {
	return autograd.MSELoss(out, autograd.Constant(target))
}

func TestPipelineValidation(t *testing.T) {
	if _, err := New(); err == nil {
		t.Fatal("empty pipeline must error")
	}
	s0, s1, _ := buildStages(1)
	p, err := New(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stages() != 2 {
		t.Fatalf("stages = %d", p.Stages())
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandN(rng, 1, 8, 6)
	y := tensor.RandN(rng, 1, 8, 3)
	if _, err := p.TrainBatch(x, y, 3, mseLoss); err == nil {
		t.Fatal("non-divisible micro count must error")
	}
	if _, err := p.TrainBatch(x, tensor.RandN(rng, 1, 4, 3), 2, mseLoss); err == nil {
		t.Fatal("mismatched target rows must error")
	}
}

// TestPipelineEquivalentToFullBatch is GPipe's core guarantee: gradient
// accumulation over micro-batches equals full-batch training.
func TestPipelineEquivalentToFullBatch(t *testing.T) {
	for _, micro := range []int{1, 2, 4, 8} {
		s0, s1, mono := buildStages(7)
		p, err := New(s0, s1)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		x := tensor.RandN(rng, 1, 8, 6)
		y := tensor.RandN(rng, 1, 8, 3)

		loss, err := p.TrainBatch(x, y, micro, mseLoss)
		if err != nil {
			t.Fatal(err)
		}

		out := mono.Forward(autograd.Constant(x))
		refLoss := autograd.MSELoss(out, autograd.Constant(y))
		autograd.Backward(refLoss, nil)

		if math.Abs(float64(loss-refLoss.Value.Item())) > 1e-5 {
			t.Fatalf("micro=%d: pipeline loss %v != full-batch %v", micro, loss, refLoss.Value.Item())
		}
		pp := p.Parameters()
		mp := mono.Parameters()
		if len(pp) != len(mp) {
			t.Fatalf("parameter count %d vs %d", len(pp), len(mp))
		}
		for i := range pp {
			if pp[i].Grad == nil {
				t.Fatalf("micro=%d: stage param %d missing grad", micro, i)
			}
			if !pp[i].Grad.AllClose(mp[i].Grad, 1e-4, 1e-6) {
				t.Fatalf("micro=%d: param %d grad differs from full batch (max diff %v)",
					micro, i, pp[i].Grad.MaxAbsDiff(mp[i].Grad))
			}
		}
	}
}

func TestPipelineTrainsToConvergence(t *testing.T) {
	s0, s1, _ := buildStages(11)
	p, err := New(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	x := tensor.RandN(rng, 1, 16, 6)
	y := tensor.RandN(rng, 1, 16, 3)
	var first, last float32
	for i := 0; i < 60; i++ {
		p.ZeroGrad()
		loss, err := p.TrainBatch(x, y, 4, mseLoss)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = loss
		}
		last = loss
		for _, param := range p.Parameters() {
			tensor.AxpyInPlace(param.Value, -0.1, param.Grad)
		}
	}
	if last >= first/2 {
		t.Fatalf("pipeline training did not converge: %v -> %v", first, last)
	}
}

func TestPipelineThreeStages(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, err := New(
		nn.NewSequential(nn.NewLinear(rng, "a", 4, 8), nn.ReLU{}),
		nn.NewSequential(nn.NewLinear(rng, "b", 8, 8), nn.Tanh{}),
		nn.NewSequential(nn.NewLinear(rng, "c", 8, 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandN(rng, 1, 6, 4)
	y := tensor.RandN(rng, 1, 6, 2)
	loss, err := p.TrainBatch(x, y, 3, mseLoss)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	for _, param := range p.Parameters() {
		if param.Grad == nil {
			t.Fatal("three-stage pipeline lost a gradient")
		}
	}
}

func TestPipelineGradAccumulationAcrossBatches(t *testing.T) {
	// Without ZeroGrad, two TrainBatch calls must accumulate gradients
	// (the same .grad += semantics DDP's no_sync relies on).
	s0, s1, _ := buildStages(14)
	p, err := New(s0, s1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(15))
	x := tensor.RandN(rng, 1, 4, 6)
	y := tensor.RandN(rng, 1, 4, 3)
	if _, err := p.TrainBatch(x, y, 2, mseLoss); err != nil {
		t.Fatal(err)
	}
	after1 := p.Parameters()[0].Grad.Clone()
	if _, err := p.TrainBatch(x, y, 2, mseLoss); err != nil {
		t.Fatal(err)
	}
	want := tensor.MulScalar(after1, 2)
	if !p.Parameters()[0].Grad.AllClose(want, 1e-5, 1e-7) {
		t.Fatal("gradients did not accumulate across TrainBatch calls")
	}
}
