// Package pipeline implements GPipe-style pipeline model parallelism —
// the Cross-iteration/Model-parallel scheme of the paper's Table 1 that
// DDP is contrasted with (Section 7). The model is partitioned into
// stages; a mini-batch is split into micro-batches that flow through
// the stages concurrently (the fill/drain schedule), and gradients
// accumulate across micro-batches so the result is mathematically
// equivalent to full-batch training, exactly like GPipe.
//
// Stages run as goroutines connected by channels (standing in for the
// paper's inter-GPU transfers). The backward pass reverses the flow:
// each stage backpropagates its segment and passes the input gradient
// upstream. This substrate composes with the rest of the repository:
// stage boundaries carry plain tensors, and each stage's parameters are
// ordinary nn parameters, so a stage could itself be wrapped in DDP
// (the PipeDream-style hybrid the paper describes).
package pipeline

import (
	"fmt"
	"sync"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Pipeline partitions a model into sequential stages.
type Pipeline struct {
	stages []nn.Module
}

// New builds a pipeline over the given stages (at least one).
func New(stages ...nn.Module) (*Pipeline, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("pipeline: no stages")
	}
	return &Pipeline{stages: stages}, nil
}

// Stages returns the number of stages.
func (p *Pipeline) Stages() int { return len(p.stages) }

// StageModules returns the stage modules in order (they share their
// parameters with the pipeline; useful for monolithic re-execution in
// equivalence checks).
func (p *Pipeline) StageModules() []nn.Module { return p.stages }

// Parameters returns all stages' parameters in stage order.
func (p *Pipeline) Parameters() []*nn.Parameter {
	var out []*nn.Parameter
	for _, s := range p.stages {
		out = append(out, s.Parameters()...)
	}
	return out
}

// ZeroGrad clears gradients across all stages.
func (p *Pipeline) ZeroGrad() {
	for _, s := range p.stages {
		nn.ZeroGrad(s)
	}
}

// LossFunc builds the loss for one micro-batch from the last stage's
// output and the micro-batch's target rows.
type LossFunc func(out *autograd.Variable, target *tensor.Tensor) *autograd.Variable

// TrainBatch splits x and target (row-wise, dimension 0) into `micro`
// equal micro-batches, pipelines the forward passes through all stages,
// then drains the backward passes in reverse. Parameter gradients
// accumulate across micro-batches scaled by 1/micro, so the result
// equals full-batch training when the loss is a mean (GPipe's
// equivalence guarantee). It returns the mean micro-batch loss.
func (p *Pipeline) TrainBatch(x, target *tensor.Tensor, micro int, lossFn LossFunc) (float32, error) {
	rows := x.Dims(0)
	if micro <= 0 || rows%micro != 0 {
		return 0, fmt.Errorf("pipeline: %d rows not divisible into %d micro-batches", rows, micro)
	}
	if target.Dims(0) != rows {
		return 0, fmt.Errorf("pipeline: target rows %d != input rows %d", target.Dims(0), rows)
	}
	per := rows / micro

	type fwdMsg struct {
		idx  int
		data *tensor.Tensor
	}
	type bwdMsg struct {
		idx  int
		grad *tensor.Tensor
	}

	n := len(p.stages)
	fwdCh := make([]chan fwdMsg, n+1)
	bwdCh := make([]chan bwdMsg, n+1)
	for i := range fwdCh {
		fwdCh[i] = make(chan fwdMsg, micro)
		bwdCh[i] = make(chan bwdMsg, micro)
	}

	// Feed micro-batches into stage 0.
	go func() {
		for m := 0; m < micro; m++ {
			fwdCh[0] <- fwdMsg{idx: m, data: sliceRows(x, m*per, per)}
		}
		close(fwdCh[0])
	}()
	// Drain the gradients that come back out of stage 0 (inputs are
	// data, not parameters; their gradients are discarded).
	go func() {
		for range bwdCh[0] {
		}
	}()

	var losses sync.Map // micro index -> float32
	var wg sync.WaitGroup
	for s, stage := range p.stages {
		wg.Add(1)
		go func(s int, stage nn.Module) {
			defer wg.Done()
			defer close(bwdCh[s])

			type saved struct {
				in  *autograd.Variable
				out *autograd.Variable
			}
			states := make([]saved, micro)

			// Forward phase: consume micro-batches as they arrive, so
			// stage s works on micro-batch m while stage s-1 is already
			// on m+1 — the pipeline fill.
			last := s == n-1
			for msg := range fwdCh[s] {
				in := autograd.NewLeaf(msg.data, true)
				out := stage.Forward(in)
				states[msg.idx] = saved{in: in, out: out}
				if last {
					loss := lossFn(out, sliceRows(target, msg.idx*per, per))
					losses.Store(msg.idx, loss.Value.Item())
					states[msg.idx].out = loss
				} else {
					fwdCh[s+1] <- fwdMsg{idx: msg.idx, data: out.Value}
				}
			}
			// Forward phase over: release the downstream stage into its
			// own backward phase. Closing here (not at return) matters —
			// our backward phase below blocks on the downstream stage,
			// which cannot finish its forward range until this close.
			close(fwdCh[s+1])

			// Backward phase (drain): the last stage seeds gradients;
			// the others backpropagate the gradient arriving from
			// downstream.
			if last {
				scale := tensor.Scalar(1 / float32(micro))
				for m := 0; m < micro; m++ {
					autograd.Backward(states[m].out, scale)
					bwdCh[s] <- bwdMsg{idx: m, grad: states[m].in.Grad}
				}
				return
			}
			for msg := range bwdCh[s+1] {
				st := states[msg.idx]
				autograd.Backward(st.out, msg.grad)
				bwdCh[s] <- bwdMsg{idx: msg.idx, grad: st.in.Grad}
			}
		}(s, stage)
	}
	wg.Wait()

	var mean float32
	for m := 0; m < micro; m++ {
		v, ok := losses.Load(m)
		if !ok {
			return 0, fmt.Errorf("pipeline: micro-batch %d produced no loss", m)
		}
		mean += v.(float32)
	}
	return mean / float32(micro), nil
}

// sliceRows copies rows [start, start+count) of a 2-D tensor.
func sliceRows(t *tensor.Tensor, start, count int) *tensor.Tensor {
	cols := t.Dims(1)
	out := tensor.New(count, cols)
	copy(out.Data(), t.Data()[start*cols:(start+count)*cols])
	return out
}
