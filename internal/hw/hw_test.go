package hw

import (
	"math"
	"testing"
)

func TestAllReduceMonotoneInSize(t *testing.T) {
	c := DefaultCluster()
	for _, b := range []Backend{NCCLLike, GlooLike} {
		prev := 0.0
		for _, bytes := range []int{4 << 10, 4 << 14, 4 << 18, 4 << 22} {
			got := c.AllReduceSeconds(b, bytes, 8)
			if got <= prev {
				t.Fatalf("%v: time not increasing with size", b)
			}
			prev = got
		}
	}
}

func TestAllReduceWorldOfOneFree(t *testing.T) {
	c := DefaultCluster()
	if c.AllReduceSeconds(NCCLLike, 1<<20, 1) != 0 {
		t.Fatal("single rank needs no communication")
	}
	if c.BroadcastSeconds(GlooLike, 1<<20, 1) != 0 {
		t.Fatal("single rank broadcast is free")
	}
}

func TestNCCLFasterThanGloo(t *testing.T) {
	// Section 6.1: "NCCL is considerably faster than Gloo in most use
	// cases."
	c := DefaultCluster()
	for _, bytes := range []int{4 << 10, 4 << 20, 100 << 20} {
		for _, world := range []int{2, 8, 32} {
			n := c.AllReduceSeconds(NCCLLike, bytes, world)
			g := c.AllReduceSeconds(GlooLike, bytes, world)
			if n >= g {
				t.Fatalf("NCCL (%v) not faster than Gloo (%v) at %dB world %d", n, g, bytes, world)
			}
		}
	}
}

// Fig 2(a): total time to AllReduce 60M params decreases as per-op size
// grows, with no NCCL saturation through 20M params.
func TestFig2aShapeNCCLTotalTimeDecreases(t *testing.T) {
	c := DefaultCluster()
	const totalParams = 60e6
	prev := math.Inf(1)
	for _, perOp := range []int{1000, 10_000, 100_000, 1_000_000, 10_000_000, 20_000_000} {
		ops := int(totalParams) / perOp
		total := float64(ops) * c.AllReduceSeconds(NCCLLike, perOp*4, 2)
		if total >= prev {
			t.Fatalf("NCCL total time should fall through 20M params/op: %v then %v at %d", prev, total, perOp)
		}
		prev = total
	}
}

// Fig 2(b): Gloo saturates around 500K params per op — beyond that the
// total stops improving meaningfully.
func TestFig2bShapeGlooSaturates(t *testing.T) {
	c := DefaultCluster()
	const totalParams = 60e6
	total := func(perOp int) float64 {
		ops := int(totalParams) / perOp
		return float64(ops) * c.AllReduceSeconds(GlooLike, perOp*4, 2)
	}
	small := total(1000)
	at500K := total(500_000)
	at10M := total(10_000_000)
	if small < 5*at500K {
		t.Fatalf("tiny ops should be much slower: %v vs %v", small, at500K)
	}
	// Saturation: going 500K -> 10M changes total by < 20%.
	if math.Abs(at10M-at500K)/at500K > 0.2 {
		t.Fatalf("Gloo should be saturated past 500K: %v vs %v", at500K, at10M)
	}
}

// Fig 2(a) magnitudes: paper's y-axis spans ~1e-4..1e0 s for NCCL and
// ~1e-1..1e1 s for Gloo over 60M params.
func TestFig2Magnitudes(t *testing.T) {
	c := DefaultCluster()
	ncclSmall := 60_000 * c.AllReduceSeconds(NCCLLike, 1000*4, 2)
	if ncclSmall < 0.3 || ncclSmall > 3 {
		t.Fatalf("NCCL 1K-param total = %v, want order 1e0", ncclSmall)
	}
	ncclBig := 3 * c.AllReduceSeconds(NCCLLike, 20_000_000*4, 2)
	if ncclBig > 0.05 || ncclBig < 0.001 {
		t.Fatalf("NCCL 20M-param total = %v, want order 1e-2", ncclBig)
	}
	glooSmall := 60_000 * c.AllReduceSeconds(GlooLike, 1000*4, 2)
	if glooSmall < 3 || glooSmall > 30 {
		t.Fatalf("Gloo 1K-param total = %v, want order 1e1", glooSmall)
	}
}

func TestCrossMachinePenalty(t *testing.T) {
	// Section 6.1: NCCL slows down when the ring crosses machines.
	c := DefaultCluster()
	bytes := 25 << 20
	within := c.AllReduceSeconds(NCCLLike, bytes, 8)
	across := c.AllReduceSeconds(NCCLLike, bytes, 9)
	if across < 2*within {
		t.Fatalf("crossing machines should hurt: %v vs %v", within, across)
	}
}

func TestHierarchicalMatchesFlatWithinOneServer(t *testing.T) {
	c := DefaultCluster()
	for _, world := range []int{1, 2, 4, 8} {
		for _, b := range []Backend{NCCLLike, GlooLike} {
			flat := c.AllReduceSeconds(b, 4<<20, world)
			hier := c.HierarchicalAllReduceSeconds(b, 4<<20, world)
			if flat != hier {
				t.Fatalf("%v world %d: hierarchy inside one server should be a no-op: %v vs %v", b, world, flat, hier)
			}
		}
	}
}

func TestHierarchicalRecoversCrossMachineBandwidth(t *testing.T) {
	// The tentpole claim: for multi-host worlds at >= 1M-element
	// payloads the hierarchy's leader-only ring beats the flat ring
	// whose per-ring NIC share collapsed to 1/GPUsPerServer.
	c := DefaultCluster()
	bytes := 1_000_000 * 4
	for _, world := range []int{16, 32, 64, 128, 256} {
		flat := c.AllReduceSeconds(NCCLLike, bytes, world)
		hier := c.HierarchicalAllReduceSeconds(NCCLLike, bytes, world)
		if hier >= flat {
			t.Fatalf("world %d: hierarchical (%v) should beat flat ring (%v)", world, hier, flat)
		}
		// The recovery should be substantial, not marginal: the NIC
		// share goes from ~1/8 to 1/1.
		if flat/hier < 2 {
			t.Fatalf("world %d: recovery only %.2fx", world, flat/hier)
		}
	}
}

func TestHierarchicalTinyPayloadsStayLatencyBound(t *testing.T) {
	// For tiny buffers the hierarchy is pure latency: its inter-host
	// ring still pays 2(h-1) steps, which at large scale loses to a
	// log(k)-hop tree (2 binomial sweeps ~ 2*BroadcastSeconds' hop
	// count) — the reason comm.Auto keeps small buckets on Tree.
	c := DefaultCluster()
	hier := c.HierarchicalAllReduceSeconds(NCCLLike, 256, 256)
	treeish := 2 * c.BroadcastSeconds(NCCLLike, 256, 256)
	if hier <= treeish {
		t.Fatalf("tiny payload at 256 ranks: hierarchical (%v) should lose to the log-k tree path (%v)", hier, treeish)
	}
}

func TestDoubleTreeBeatsRingLatencyOnSmallPayloads(t *testing.T) {
	// The tentpole claim for the small-bucket band: at <= 4Ki elements
	// the double tree's 2*ceil(log2(k+1)) hop latency beats the ring's
	// 2(k-1) steps once the world is deep enough that log2 k << k. Only
	// the NCCL row rings: the Gloo baseline models halving-doubling,
	// which is already log-depth, so the double tree's edge there is
	// bandwidth (pipelining), not latency — see the huge-payload test.
	c := DefaultCluster()
	bytes := 4096 * 4
	for _, world := range []int{8, 32, 256} {
		ring := c.AllReduceSeconds(NCCLLike, bytes, world)
		dt := c.DoubleTreeAllReduceSeconds(NCCLLike, bytes, world)
		if dt >= ring {
			t.Fatalf("world %d: double tree (%v) should beat ring (%v) at 16KiB", world, dt, ring)
		}
	}
}

func TestDoubleTreeLosesBandwidthToRingOnHugePayloads(t *testing.T) {
	// The 3/2 volume term exceeds the ring's 2(k-1)/k once latency is
	// amortized — the reason Auto keeps the large band off DoubleTree.
	c := DefaultCluster()
	bytes := 100 << 20
	ring := c.AllReduceSeconds(NCCLLike, bytes, 8)
	dt := c.DoubleTreeAllReduceSeconds(NCCLLike, bytes, 8)
	if dt <= ring {
		t.Fatalf("100MB world 8: ring (%v) should beat double tree (%v)", ring, dt)
	}
}

func TestDoubleTreeWorldOfOneFree(t *testing.T) {
	if DefaultCluster().DoubleTreeAllReduceSeconds(NCCLLike, 1<<20, 1) != 0 {
		t.Fatal("single rank needs no communication")
	}
}

func TestNLevelFallsBackToTwoLevel(t *testing.T) {
	c := DefaultCluster()
	for _, world := range []int{4, 16, 64} {
		got := c.NLevelAllReduceSeconds(NCCLLike, 4<<20, world, nil)
		want := c.HierarchicalAllReduceSeconds(NCCLLike, 4<<20, world)
		if got != want {
			t.Fatalf("world %d: empty groupSizes should equal two-level: %v vs %v", world, got, want)
		}
	}
}

func TestNLevelDeepHierarchyShedsTopRingLatency(t *testing.T) {
	// 64 ranks as 4 pods x 2 racks x 8 GPUs: the three-level schedule's
	// top ring spans only 4 pod leaders instead of the two-level
	// schedule's 8 host leaders, trading 2(h-1) serial ring steps for
	// log-depth binomial hops — a latency win on small buffers.
	c := DefaultCluster()
	small := 4 << 10
	two := c.HierarchicalAllReduceSeconds(NCCLLike, small, 64)
	three := c.NLevelAllReduceSeconds(NCCLLike, small, 64, []int{2, 8})
	if three >= two {
		t.Fatalf("three-level (%v) should beat two-level (%v) at 4KB x 64 ranks", three, two)
	}
	// On big buffers the extra level's full-buffer binomial hops cost
	// 2*ceil(log2 g)*nBytes over the NIC, more than the ring's
	// 2(h-1)/h factor they displace: the model must expose that
	// bandwidth tradeoff rather than pretend deeper is always better...
	big := 25 << 20
	twoBig := c.HierarchicalAllReduceSeconds(NCCLLike, big, 64)
	threeBig := c.NLevelAllReduceSeconds(NCCLLike, big, 64, []int{2, 8})
	if threeBig <= twoBig {
		t.Fatalf("three-level (%v) should pay for its extra level vs two-level (%v) at 25MB", threeBig, twoBig)
	}
	// ...while still beating the flat ring, whose per-ring NIC share
	// collapsed to 1/GPUsPerServer.
	flat := c.AllReduceSeconds(NCCLLike, big, 64)
	if threeBig >= flat {
		t.Fatalf("three-level (%v) should beat the flat ring (%v)", threeBig, flat)
	}
}

func TestNLevelWorldOfOneFree(t *testing.T) {
	if DefaultCluster().NLevelAllReduceSeconds(GlooLike, 1<<20, 1, []int{1}) != 0 {
		t.Fatal("single rank needs no communication")
	}
}

func TestServers(t *testing.T) {
	c := DefaultCluster()
	for _, tc := range []struct{ world, want int }{
		{0, 0}, {1, 1}, {8, 1}, {9, 2}, {16, 2}, {17, 3}, {256, 32},
	} {
		if got := c.Servers(tc.world); got != tc.want {
			t.Fatalf("Servers(%d) = %d, want %d", tc.world, got, tc.want)
		}
	}
}

func TestSharedEntitlementJumpAt256(t *testing.T) {
	c := DefaultCluster()
	c.SharedEntitlement = true
	bytes := 25 << 20
	at128 := c.AllReduceSeconds(NCCLLike, bytes, 128)
	at256 := c.AllReduceSeconds(NCCLLike, bytes, 256)
	// Volume per rank grows only ~0.4% from 128 to 256; the jump must
	// come from the congestion factor.
	if at256 < 1.3*at128 {
		t.Fatalf("no congestion jump: %v -> %v", at128, at256)
	}
	c.SharedEntitlement = false
	smooth128 := c.AllReduceSeconds(NCCLLike, bytes, 128)
	smooth256 := c.AllReduceSeconds(NCCLLike, bytes, 256)
	// The exclusive model still grows (ring latency term), but the
	// entitlement jump must be distinctly larger.
	if at256/at128 < 1.25*(smooth256/smooth128) {
		t.Fatalf("entitlement jump (%v) not distinctly larger than exclusive growth (%v)",
			at256/at128, smooth256/smooth128)
	}
}

func TestComputeProfileMagnitudes(t *testing.T) {
	// Fig 2(c): 60M params backward ≈ 250ms on GPU; Fig 2(d): ~6s CPU.
	gpu := Profile(GPU, 60e6)
	if math.Abs(gpu.BackwardSeconds-0.25) > 1e-9 {
		t.Fatalf("GPU backward = %v", gpu.BackwardSeconds)
	}
	cpu := Profile(CPU, 60e6)
	if math.Abs(cpu.BackwardSeconds-6.0) > 1e-9 {
		t.Fatalf("CPU backward = %v", cpu.BackwardSeconds)
	}
	if gpu.TotalSeconds() <= gpu.BackwardSeconds {
		t.Fatal("total must include forward and optimizer")
	}
}

func TestGradReadyLinearInCumulativeSize(t *testing.T) {
	p := Profile(GPU, 25_000_000)
	half := p.GradReadySeconds(12_500_000, 25_000_000)
	if math.Abs(half-p.BackwardSeconds/2) > 1e-9 {
		t.Fatalf("half the params ready at %v, want %v", half, p.BackwardSeconds/2)
	}
	if p.GradReadySeconds(0, 25_000_000) != 0 {
		t.Fatal("nothing ready at t=0")
	}
	if p.GradReadySeconds(25_000_000, 25_000_000) != p.BackwardSeconds {
		t.Fatal("all params ready exactly at backward end")
	}
}

func TestStringNames(t *testing.T) {
	if NCCLLike.String() != "nccl" || GlooLike.String() != "gloo" ||
		GPU.String() != "gpu" || CPU.String() != "cpu" {
		t.Fatal("names wrong")
	}
}

func TestHalfCollectivesComposeToAllReduce(t *testing.T) {
	// A ring ReduceScatter followed by a ring AllGather moves exactly
	// the ring AllReduce's steps and volume, so without entitlement
	// effects the halves must sum to the whole (NCCL profile; the Gloo
	// profile splits the halving-doubling rounds the same way).
	c := DefaultCluster()
	for _, b := range []Backend{NCCLLike, GlooLike} {
		for _, world := range []int{2, 8, 32} {
			for _, bytes := range []int{4 << 10, 4 << 20} {
				sum := c.ReduceScatterSeconds(b, bytes, world) + c.AllGatherSeconds(b, bytes, world)
				whole := c.AllReduceSeconds(b, bytes, world)
				if diff := math.Abs(sum - whole); diff > 1e-12*whole {
					t.Fatalf("%v world %d %dB: RS+AG=%v, AllReduce=%v", b, world, bytes, sum, whole)
				}
			}
		}
	}
}

func TestHalfCollectivesWorldOfOneFree(t *testing.T) {
	c := DefaultCluster()
	if c.ReduceScatterSeconds(NCCLLike, 1<<20, 1) != 0 || c.AllGatherSeconds(GlooLike, 1<<20, 1) != 0 {
		t.Fatal("single rank half-collectives are free")
	}
}
