// Package hw models the hardware the paper's evaluation ran on: V100
// GPUs (NVLink within a server, 100 Gb/s NICs across servers), NCCL and
// Gloo collective cost curves, and GPU/CPU backward-pass compute curves.
//
// This is the substitution for the physical testbed (see DESIGN.md):
// the constants are calibrated so that the model reproduces the shapes
// of the paper's Fig 2 — NCCL AllReduce total time falling monotonically
// with per-op tensor size with no saturation through 20M parameters,
// Gloo saturating near 500K parameters, a ~250ms GPU backward pass and a
// ~6s CPU backward pass for a 60M-parameter model.
package hw

import (
	"fmt"
	"math"
)

// Backend identifies a collective communication cost profile.
type Backend int

// Supported backend profiles.
const (
	// NCCLLike models NCCL over NVLink/NIC: low per-op latency, high
	// bandwidth, no saturation for large tensors.
	NCCLLike Backend = iota
	// GlooLike models Gloo on CPU tensors over TCP: two orders of
	// magnitude higher per-op latency, bandwidth saturating at ~2MB.
	GlooLike
)

// String returns the profile name used in benchmark tables.
func (b Backend) String() string {
	switch b {
	case NCCLLike:
		return "nccl"
	case GlooLike:
		return "gloo"
	default:
		return fmt.Sprintf("Backend(%d)", int(b))
	}
}

// Device identifies a compute cost profile.
type Device int

// Supported compute profiles.
const (
	// GPU models a V100: ResNet152-scale (60M params) backward in ~250ms.
	GPU Device = iota
	// CPU models the same backward pass on CPU: ~6s (paper Fig 2(d)).
	CPU
)

// String returns the device name.
func (d Device) String() string {
	if d == GPU {
		return "gpu"
	}
	return "cpu"
}

// Cluster describes the evaluation testbed (paper Section 5, Fig 5):
// servers of GPUsPerServer GPUs with NVLink inside a server and a shared
// NIC between servers.
type Cluster struct {
	// GPUsPerServer is 8 in the paper's exclusive cluster.
	GPUsPerServer int
	// NVLinkBandwidth is the per-link bandwidth between GPUs in the same
	// server, bytes/sec.
	NVLinkBandwidth float64
	// NICBandwidth is the per-server network bandwidth, bytes/sec
	// (Mellanox 100 Gb/s ConnectX-4 in the paper).
	NICBandwidth float64
	// CrossMachineEfficiency calibrates how much of the NIC each of the
	// GPUsPerServer concurrent rings effectively obtains (ring edges are
	// not all simultaneously active, so the share exceeds 1/n slightly).
	CrossMachineEfficiency float64
	// NCCLStepLatency is the per-ring-step base latency of the NCCL
	// profile, seconds.
	NCCLStepLatency float64
	// GlooStepLatency is the per-round base latency of the Gloo profile,
	// seconds (Gloo's CPU/TCP path is far slower per op). Gloo uses
	// recursive halving-doubling, so an op has 2·ceil(log2 k) rounds.
	GlooStepLatency float64
	// GlooBandwidth is Gloo's saturated bandwidth for a 2-rank exchange,
	// bytes/sec (both directions of the pair share one path). Rings over
	// 3+ ranks place each directed edge on its own full-duplex path and
	// get twice this.
	GlooBandwidth float64
	// SharedEntitlement adds the >32 GPU effects of Section 5.3: varying
	// hosts, congestion, and the latency jump from 128 to 256 GPUs.
	SharedEntitlement bool
}

// DefaultCluster returns constants calibrated against the paper's
// figures.
func DefaultCluster() Cluster {
	return Cluster{
		GPUsPerServer:          8,
		NVLinkBandwidth:        40e9,   // effective ring-edge NVLink bandwidth
		NICBandwidth:           11.5e9, // ~100 Gb/s minus protocol overhead
		CrossMachineEfficiency: 1.25,
		NCCLStepLatency:        9e-6,
		GlooStepLatency:        80e-6,
		GlooBandwidth:          0.5e9,
	}
}

// AllReduceSeconds returns the modeled wall time of one AllReduce of
// nBytes across world ranks using a ring algorithm:
//
//	T = 2(k-1) * stepLatency + 2 (k-1)/k * nBytes / edgeBandwidth
//
// The edge bandwidth is NVLink while the ring stays inside one server.
// Once the ring spans servers, every server's NIC carries the crossing
// edges of all GPUsPerServer concurrent rings (NCCL opens one ring per
// GPU), so the effective per-ring edge bandwidth collapses to
// NIC/GPUsPerServer — which is why the paper observes a marked slowdown
// when crossing machine boundaries (Section 6.1, Resource Allocation).
func (c Cluster) AllReduceSeconds(b Backend, nBytes int, world int) float64 {
	if world <= 1 {
		return 0
	}
	k := float64(world)
	volume := 2 * (k - 1) / k * float64(nBytes)
	switch b {
	case NCCLLike:
		steps := 2 * (k - 1)
		edge := c.NVLinkBandwidth
		if world > c.GPUsPerServer {
			edge = c.NICBandwidth * c.CrossMachineEfficiency / float64(c.GPUsPerServer)
		}
		t := steps*c.NCCLStepLatency + volume/edge
		if c.SharedEntitlement {
			t *= c.entitlementFactor(world)
		}
		return t
	case GlooLike:
		// Halving-doubling: 2·ceil(log2 k) rounds of base latency.
		rounds := 2 * math.Ceil(math.Log2(k))
		bw := c.GlooBandwidth
		if world > 2 {
			bw *= 2 // distinct full-duplex paths per directed edge
		}
		t := rounds*c.GlooStepLatency + volume/bw
		if c.SharedEntitlement {
			t *= c.entitlementFactor(world)
		}
		return t
	default:
		panic("hw: unknown backend")
	}
}

// ReduceScatterSeconds returns the modeled wall time of one
// ReduceScatter of nBytes across world ranks — the first half of the
// ring AllReduce:
//
//	T = (k-1) * stepLatency + (k-1)/k * nBytes / edgeBandwidth
//
// This is the collective ZeRO-2/3 replaces gradient AllReduce with:
// each rank keeps only the reduced 1/k it owns, so sharded data
// parallel pays half the ring's steps and half its volume per
// direction of the state exchange.
func (c Cluster) ReduceScatterSeconds(b Backend, nBytes int, world int) float64 {
	return c.halfRingSeconds(b, nBytes, world)
}

// AllGatherSeconds returns the modeled wall time of one AllGather of
// nBytes (the full, concatenated buffer size) across world ranks — the
// second half of the ring AllReduce. ZeRO-2 runs one per step to
// rebuild replicated parameters from sharded optimizer updates; ZeRO-3
// runs one per bucket per pass to materialize parameters on demand.
func (c Cluster) AllGatherSeconds(b Backend, nBytes int, world int) float64 {
	return c.halfRingSeconds(b, nBytes, world)
}

// halfRingSeconds is the shared cost of the two half-collectives: a
// ring pass of k-1 steps moving (k-1)/k of the buffer over the busiest
// edge (the Gloo profile gets its halving-doubling analogue,
// ceil(log2 k) rounds). Edge bandwidth collapses across machine
// boundaries exactly as in AllReduceSeconds.
func (c Cluster) halfRingSeconds(b Backend, nBytes int, world int) float64 {
	if world <= 1 {
		return 0
	}
	k := float64(world)
	volume := (k - 1) / k * float64(nBytes)
	var t float64
	switch b {
	case NCCLLike:
		steps := k - 1
		edge := c.NVLinkBandwidth
		if world > c.GPUsPerServer {
			edge = c.NICBandwidth * c.CrossMachineEfficiency / float64(c.GPUsPerServer)
		}
		t = steps*c.NCCLStepLatency + volume/edge
	case GlooLike:
		rounds := math.Ceil(math.Log2(k))
		bw := c.GlooBandwidth
		if world > 2 {
			bw *= 2 // distinct full-duplex paths per directed edge
		}
		t = rounds*c.GlooStepLatency + volume/bw
	default:
		panic("hw: unknown backend")
	}
	if c.SharedEntitlement {
		t *= c.entitlementFactor(world)
	}
	return t
}

// Servers returns how many machines a world of the given size spans
// (GPUs fill servers in rank order, GPUsPerServer per machine).
func (c Cluster) Servers(world int) int {
	if world <= 0 {
		return 0
	}
	return (world + c.GPUsPerServer - 1) / c.GPUsPerServer
}

// HierarchicalAllReduceSeconds returns the modeled wall time of one
// topology-aware hierarchical AllReduce of nBytes across world ranks:
// intra-host binomial reduce onto per-server leaders, ring AllReduce
// among the h leaders, intra-host binomial broadcast back:
//
//	T = 2 ceil(log2 g) * (stepLatency + nBytes/intraEdge)   // phases 1+3
//	  + 2(h-1) * stepLatency + 2 (h-1)/h * nBytes / nic     // phase 2
//
// The win over the flat ring (AllReduceSeconds) is in phase 2's edge
// bandwidth: only ONE ring per server crosses machines, so its edges
// get the whole NIC instead of a 1/GPUsPerServer share — at the price
// of the extra intra-host hops, which ride NVLink and are cheap for
// large buffers. Below one full server the hierarchy is empty and the
// model equals the flat ring's.
func (c Cluster) HierarchicalAllReduceSeconds(b Backend, nBytes int, world int) float64 {
	if world <= c.GPUsPerServer {
		return c.AllReduceSeconds(b, nBytes, world)
	}
	h := float64(c.Servers(world))
	hops := 2 * math.Ceil(math.Log2(float64(c.GPUsPerServer)))
	ringSteps := 2 * (h - 1)
	ringVolume := 2 * (h - 1) / h * float64(nBytes)

	var t float64
	switch b {
	case NCCLLike:
		// Leaders' ring edges own the NIC outright (one crossing ring
		// per server), so no GPUsPerServer division and no concurrency
		// bonus to claim back.
		t = hops*(c.NCCLStepLatency+float64(nBytes)/c.NVLinkBandwidth) +
			ringSteps*c.NCCLStepLatency + ringVolume/c.NICBandwidth
	case GlooLike:
		intraBW := c.GlooBandwidth
		ringBW := c.GlooBandwidth
		if h > 2 {
			ringBW *= 2 // distinct full-duplex paths per directed ring edge
		}
		t = hops*(c.GlooStepLatency+float64(nBytes)/intraBW) +
			ringSteps*c.GlooStepLatency + ringVolume/ringBW
	default:
		panic("hw: unknown backend")
	}
	if c.SharedEntitlement {
		t *= c.entitlementFactor(world)
	}
	return t
}

// doubleTreeChunkBytes mirrors comm's pipeline granularity (8Ki float32
// elements per chunk) so the modeled critical path counts the same
// number of pipelined hops the implementation issues.
const doubleTreeChunkBytes = 32 << 10

// DoubleTreeAllReduceSeconds returns the modeled wall time of one
// double-binary-tree AllReduce of nBytes across world ranks (the
// NCCL-2.4 construction: two complementary trees, each carrying half
// the payload, pipelined in fixed-size chunks):
//
//	depth  = ceil(log2(k+1))
//	chunks = ceil((nBytes/2) / chunkBytes)
//	T = 2 (depth + chunks - 1) * stepLatency + 3/2 * nBytes / edgeBandwidth
//
// Latency is logarithmic in k instead of the ring's linear 2(k-1)
// steps, which is the whole point for small buffers on deep worlds.
// The bandwidth term reflects that an inner node of one tree forwards
// its half twice (up and down) while being a leaf of the other tree,
// for ~3/2 of the buffer over the busiest edge — slightly worse than
// the ring's 2(k-1)/k but within a constant. Edge bandwidth follows the
// same cross-machine collapse as AllReduceSeconds: NVLink inside one
// server, NIC/GPUsPerServer once tree edges span machines.
func (c Cluster) DoubleTreeAllReduceSeconds(b Backend, nBytes int, world int) float64 {
	if world <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(world + 1)))
	chunks := math.Ceil(float64(nBytes) / 2 / doubleTreeChunkBytes)
	if chunks < 1 {
		chunks = 1
	}
	hops := 2 * (depth + chunks - 1)
	volume := 1.5 * float64(nBytes)
	var t float64
	switch b {
	case NCCLLike:
		edge := c.NVLinkBandwidth
		if world > c.GPUsPerServer {
			edge = c.NICBandwidth * c.CrossMachineEfficiency / float64(c.GPUsPerServer)
		}
		t = hops*c.NCCLStepLatency + volume/edge
	case GlooLike:
		bw := c.GlooBandwidth
		if world > 2 {
			bw *= 2 // distinct full-duplex paths per directed tree edge
		}
		t = hops*c.GlooStepLatency + volume/bw
	default:
		panic("hw: unknown backend")
	}
	if c.SharedEntitlement {
		t *= c.entitlementFactor(world)
	}
	return t
}

// NLevelAllReduceSeconds returns the modeled wall time of an N-level
// hierarchical AllReduce over the given per-level group sizes, listed
// outermost-first (e.g. hosts-per-rack at index 0 ... ranks-per-host
// last, matching comm.Topology's level order). Each level contributes a
// binomial reduce on the way up and a broadcast on the way down:
//
//	T = sum over levels: 2 ceil(log2 g_l) * (stepLatency + nBytes/edge_l)
//	  + 2(h-1) * stepLatency + 2 (h-1)/h * nBytes / nic   // top leader ring
//
// where h = world / prod(g_l) leaders remain for the top ring. The
// innermost level rides NVLink; every outer level and the top ring pay
// the NIC, but — as in HierarchicalAllReduceSeconds — with full
// ownership, since only one leader per group crosses that boundary.
// An empty groupSizes falls back to the two-level model.
func (c Cluster) NLevelAllReduceSeconds(b Backend, nBytes int, world int, groupSizes []int) float64 {
	if world <= 1 {
		return 0
	}
	if len(groupSizes) == 0 {
		return c.HierarchicalAllReduceSeconds(b, nBytes, world)
	}
	remaining := world
	var t float64
	for i := len(groupSizes) - 1; i >= 0; i-- {
		g := groupSizes[i]
		if g <= 1 {
			continue
		}
		hops := 2 * math.Ceil(math.Log2(float64(g)))
		var edge float64
		switch b {
		case NCCLLike:
			edge = c.NVLinkBandwidth
			if i < len(groupSizes)-1 {
				edge = c.NICBandwidth // leaders own the cross-group links
			}
			t += hops * (c.NCCLStepLatency + float64(nBytes)/edge)
		case GlooLike:
			t += hops * (c.GlooStepLatency + float64(nBytes)/c.GlooBandwidth)
		default:
			panic("hw: unknown backend")
		}
		remaining = (remaining + g - 1) / g
	}
	if h := float64(remaining); h > 1 {
		ringSteps := 2 * (h - 1)
		ringVolume := 2 * (h - 1) / h * float64(nBytes)
		switch b {
		case NCCLLike:
			t += ringSteps*c.NCCLStepLatency + ringVolume/c.NICBandwidth
		case GlooLike:
			ringBW := c.GlooBandwidth
			if h > 2 {
				ringBW *= 2
			}
			t += ringSteps*c.GlooStepLatency + ringVolume/ringBW
		}
	}
	if c.SharedEntitlement {
		t *= c.entitlementFactor(world)
	}
	return t
}

// entitlementFactor models the shared entitlement of Section 5.3: mild
// degradation as jobs span more (heterogeneous) hosts, plus the sudden
// congestion jump the paper observed going from 128 to 256 GPUs.
func (c Cluster) entitlementFactor(world int) float64 {
	f := 1 + 0.02*math.Log2(float64(world))
	if world > 128 {
		f *= 1.45 // "slow or congested links among some of those 256 nodes"
	}
	return f
}

// BroadcastSeconds returns the modeled wall time of a binomial-tree
// broadcast of nBytes across world ranks.
func (c Cluster) BroadcastSeconds(b Backend, nBytes int, world int) float64 {
	if world <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(world)))
	switch b {
	case NCCLLike:
		edge := c.NVLinkBandwidth
		if world > c.GPUsPerServer {
			edge = c.NICBandwidth * c.CrossMachineEfficiency / float64(c.GPUsPerServer)
		}
		return hops * (c.NCCLStepLatency + float64(nBytes)/edge)
	case GlooLike:
		return hops * (c.GlooStepLatency + float64(nBytes)/c.GlooBandwidth)
	default:
		panic("hw: unknown backend")
	}
}

// Reference points for the compute model, from the paper's Fig 2(c)/(d):
// a ~60M parameter ResNet152 takes ~250ms backward on GPU and ~6s on CPU.
const (
	refParams      = 60e6
	gpuBackwardRef = 0.25
	cpuBackwardRef = 6.0
)

// ComputeProfile is the per-iteration compute cost of a model replica,
// exclusive of communication.
type ComputeProfile struct {
	// ForwardSeconds is the forward-pass time.
	ForwardSeconds float64
	// BackwardSeconds is the backward-pass computation time (gradient
	// production only; AllReduce is accounted separately).
	BackwardSeconds float64
	// OptimizerSeconds is the optimizer step time.
	OptimizerSeconds float64
}

// Profile returns the compute profile of a conv-net-like model with
// totalParams parameters on the given device (intensity 1; the
// reference curves of Fig 2(c)/(d) are from ResNet152).
func Profile(d Device, totalParams int) ComputeProfile {
	return ProfileScaled(d, totalParams, 1)
}

// ProfileScaled is Profile with a compute-intensity factor: seconds of
// compute per parameter relative to the convolutional reference.
// Convolutions reuse each weight across every spatial position, so conv
// nets burn far more FLOPs per parameter than transformers; BERT-large
// has ~13x ResNet50's parameters but nowhere near 13x its step time
// (paper Fig 9(a) vs 9(c)). The models package carries the per-workload
// intensity.
//
// Forward ≈ half of backward and the optimizer is a memory-bound pass
// over the parameters, matching the relative segment sizes of Fig 6.
func ProfileScaled(d Device, totalParams int, intensity float64) ComputeProfile {
	if intensity <= 0 {
		intensity = 1
	}
	scale := float64(totalParams) / refParams * intensity
	var bwd float64
	switch d {
	case GPU:
		bwd = gpuBackwardRef * scale
	case CPU:
		bwd = cpuBackwardRef * scale
	default:
		panic("hw: unknown device")
	}
	return ComputeProfile{
		ForwardSeconds:   0.5 * bwd,
		BackwardSeconds:  bwd,
		OptimizerSeconds: 0.08 * bwd,
	}
}

// TotalSeconds is the non-overlapped compute-only iteration time.
func (p ComputeProfile) TotalSeconds() float64 {
	return p.ForwardSeconds + p.BackwardSeconds + p.OptimizerSeconds
}

// GradReadySeconds returns when, during the backward pass, the gradient
// for the parameter whose cumulative (from the output side) element
// count is cumElems out of totalElems becomes ready. The paper's
// Fig 2(c)/(d) curves are approximately proportional to the fraction of
// parameters processed, so the model is linear in cumulative size.
func (p ComputeProfile) GradReadySeconds(cumElems, totalElems int) float64 {
	if totalElems == 0 {
		return 0
	}
	return p.BackwardSeconds * (float64(cumElems) / float64(totalElems))
}
