package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestInMemSetGet(t *testing.T) {
	s := NewInMem(time.Second)
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
}

func TestInMemGetBlocksUntilSet(t *testing.T) {
	s := NewInMem(5 * time.Second)
	done := make(chan []byte)
	go func() {
		v, _ := s.Get("later")
		done <- v
	}()
	time.Sleep(20 * time.Millisecond)
	s.Set("later", []byte("x"))
	select {
	case v := <-done:
		if string(v) != "x" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get never unblocked")
	}
}

func TestInMemWaitTimeout(t *testing.T) {
	s := NewInMem(50 * time.Millisecond)
	if err := s.Wait("never"); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestInMemAddConcurrent(t *testing.T) {
	s := NewInMem(0)
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Add("n", 1)
		}()
	}
	wg.Wait()
	if got := s.CounterAt("n"); got != 20 {
		t.Fatalf("counter = %d, want 20", got)
	}
}

func TestInMemValueIsolation(t *testing.T) {
	s := NewInMem(time.Second)
	buf := []byte("abc")
	s.Set("k", buf)
	buf[0] = 'z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatal("store must copy values")
	}
	got[0] = 'q'
	again, _ := s.Get("k")
	if string(again) != "abc" {
		t.Fatal("store must return copies")
	}
}

func TestTCPStoreRoundTrip(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set("greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get("greeting")
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	n, err := c.Add("counter", 5)
	if err != nil || n != 5 {
		t.Fatalf("Add = %d, %v", n, err)
	}
	n, err = c.Add("counter", 2)
	if err != nil || n != 7 {
		t.Fatalf("Add = %d, %v", n, err)
	}
}

func TestTCPStoreMultipleClientsRendezvous(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const world = 4
	var wg sync.WaitGroup
	errs := make(chan error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c, err := DialTCP(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Each rank publishes its "address" then waits for all.
			if err := c.Set(fmt.Sprintf("addr/%d", rank), []byte{byte(rank)}); err != nil {
				errs <- err
				return
			}
			keys := make([]string, world)
			for i := range keys {
				keys[i] = fmt.Sprintf("addr/%d", i)
			}
			if err := c.Wait(keys...); err != nil {
				errs <- err
				return
			}
			for i := 0; i < world; i++ {
				v, err := c.Get(keys[i])
				if err != nil || len(v) != 1 || v[0] != byte(i) {
					errs <- fmt.Errorf("rank %d read %v for peer %d: %v", rank, v, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPStoreBlockingGetAcrossClients(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	reader, _ := DialTCP(srv.Addr())
	defer reader.Close()
	writer, _ := DialTCP(srv.Addr())
	defer writer.Close()

	done := make(chan string, 1)
	go func() {
		v, _ := reader.Get("slow")
		done <- string(v)
	}()
	time.Sleep(30 * time.Millisecond)
	writer.Set("slow", []byte("arrived"))
	select {
	case v := <-done:
		if v != "arrived" {
			t.Fatalf("got %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cross-client blocking Get never unblocked")
	}
}

func TestInMemGetCancel(t *testing.T) {
	s := NewInMem(30 * time.Second)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := s.GetCancel("never", cancel)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetCancel did not release on cancel")
	}

	// A cancel channel that never fires must not disturb a normal Get.
	idle := make(chan struct{})
	defer close(idle)
	go s.Set("present", []byte("v"))
	v, err := s.GetCancel("present", idle)
	if err != nil || string(v) != "v" {
		t.Fatalf("GetCancel = %q, %v", v, err)
	}
}
