// Package store provides the rendezvous key-value store DDP process
// groups use to find each other at construction time (the paper's
// Section 3.3: "implemented using a rendezvous service, where the first
// arrival will block waiting until the last instance joins").
//
// Two implementations are provided: an in-memory store for
// single-process multi-goroutine training, and a TCP store (served by
// rank 0, like PyTorch's TCPStore) for multi-process training.
package store

import (
	"bytes"
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned when a blocking operation exceeds its deadline.
var ErrTimeout = errors.New("store: wait timed out")

// ErrClosed is returned by blocking operations when the store shuts down.
var ErrClosed = errors.New("store: closed")

// Store is a process-shared key-value store with blocking waits.
type Store interface {
	// Set stores value under key and wakes any waiters.
	Set(key string, value []byte) error
	// Get blocks until key exists (subject to timeout) and returns it.
	Get(key string) ([]byte, error)
	// Add atomically adds delta to the integer counter at key, creating
	// it at zero, and returns the new value. Used to assign ranks and
	// count arrivals during rendezvous.
	Add(key string, delta int64) (int64, error)
	// Wait blocks until all keys exist.
	Wait(keys ...string) error
	// Delete removes key — both its value and, if it was used as a
	// counter, its counter state. Deleting a missing key is a no-op.
	// Elastic rendezvous garbage-collects dead generations with it.
	Delete(key string) error
	// CompareAndSwap sets key to new iff its current value equals old;
	// old == nil means "key must not exist yet". It reports whether the
	// swap happened. Elastic rendezvous uses it to fence generation
	// bumps: many workers may propose g+1, exactly one succeeds.
	CompareAndSwap(key string, old, new []byte) (bool, error)
	// Watch blocks until key holds a value different from prev (with
	// prev == nil, until key exists) and returns that value. It is the
	// store's change-notification primitive: rendezvous waiters use it
	// to learn about new generations without polling.
	Watch(key string, prev []byte) ([]byte, error)
}

// InMem is an in-process Store safe for concurrent use.
// The zero value is not usable; call NewInMem.
type InMem struct {
	mu       sync.Mutex
	cond     *sync.Cond
	values   map[string][]byte
	counters map[string]int64
	closed   bool
	// Timeout bounds blocking Get/Wait calls; zero means no limit.
	Timeout time.Duration
}

// NewInMem returns an empty in-memory store with the given blocking
// timeout (zero for unbounded).
func NewInMem(timeout time.Duration) *InMem {
	s := &InMem{
		values:   make(map[string][]byte),
		counters: make(map[string]int64),
		Timeout:  timeout,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Set stores value under key.
func (s *InMem) Set(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = append([]byte(nil), value...)
	s.cond.Broadcast()
	return nil
}

// Get blocks until key exists and returns a copy of its value.
func (s *InMem) Get(key string) ([]byte, error) {
	if err := s.Wait(key); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.values[key]...), nil
}

// Add atomically increments the counter at key by delta.
func (s *InMem) Add(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[key] += delta
	v := s.counters[key]
	s.cond.Broadcast()
	return v, nil
}

// CounterAt returns the current counter value without modifying it.
func (s *InMem) CounterAt(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Delete removes key's value and counter state; missing keys are a
// no-op.
func (s *InMem) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
	delete(s.counters, key)
	s.cond.Broadcast()
	return nil
}

// CompareAndSwap sets key to new iff its current value equals old
// (old == nil: key must not exist). Reports whether the swap happened.
func (s *InMem) CompareAndSwap(key string, old, new []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.values[key]
	if old == nil {
		if ok {
			return false, nil
		}
	} else if !ok || !bytes.Equal(cur, old) {
		return false, nil
	}
	s.values[key] = append([]byte(nil), new...)
	s.cond.Broadcast()
	return true, nil
}

// Watch blocks until key holds a value different from prev and returns
// a copy of it.
func (s *InMem) Watch(key string, prev []byte) ([]byte, error) {
	var out []byte
	err := s.waitLocked(func() bool {
		cur, ok := s.values[key]
		if !ok || (prev != nil && bytes.Equal(cur, prev)) {
			return false
		}
		out = append([]byte(nil), cur...)
		return true
	})
	return out, err
}

// Wait blocks until every key has been Set.
func (s *InMem) Wait(keys ...string) error {
	return s.waitLocked(func() bool {
		for _, k := range keys {
			if _, ok := s.values[k]; !ok {
				return false
			}
		}
		return true
	})
}

// waitLocked blocks until ready() (evaluated under s.mu) returns true,
// honouring the store timeout and shutdown.
func (s *InMem) waitLocked(ready func() bool) error {
	deadline := time.Time{}
	if s.Timeout > 0 {
		deadline = time.Now().Add(s.Timeout)
		// Wake sleepers periodically so the deadline is observed.
		timer := time.AfterFunc(s.Timeout, func() { s.cond.Broadcast() })
		defer timer.Stop()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ready() {
			return nil
		}
		if s.closed {
			return ErrClosed
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
		s.cond.Wait()
	}
}

// Close wakes all blocked waiters with ErrClosed. Further waits on
// missing keys fail immediately; existing values remain readable.
func (s *InMem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
	return nil
}

var _ Store = (*InMem)(nil)
