// Package store provides the rendezvous key-value store DDP process
// groups use to find each other at construction time (the paper's
// Section 3.3: "implemented using a rendezvous service, where the first
// arrival will block waiting until the last instance joins").
//
// Two implementations are provided: an in-memory store for
// single-process multi-goroutine training, and a TCP store (served by
// rank 0, like PyTorch's TCPStore) for multi-process training.
package store

import (
	"bytes"
	"errors"
	"sync"
	"time"
)

// ErrTimeout is returned when a blocking operation exceeds its deadline.
var ErrTimeout = errors.New("store: wait timed out")

// ErrClosed is returned by blocking operations when the store shuts down.
var ErrClosed = errors.New("store: closed")

// ErrCanceled is returned by cancellable blocking operations when their
// cancel channel closes before the operation completes.
var ErrCanceled = errors.New("store: operation canceled")

// Store is a process-shared key-value store with blocking waits.
type Store interface {
	// Set stores value under key and wakes any waiters.
	Set(key string, value []byte) error
	// Get blocks until key exists (subject to timeout) and returns it.
	Get(key string) ([]byte, error)
	// Add atomically adds delta to the integer counter at key, creating
	// it at zero, and returns the new value. Used to assign ranks and
	// count arrivals during rendezvous.
	Add(key string, delta int64) (int64, error)
	// Wait blocks until all keys exist.
	Wait(keys ...string) error
	// Delete removes key — both its value and, if it was used as a
	// counter, its counter state. Deleting a missing key is a no-op.
	// Elastic rendezvous garbage-collects dead generations with it.
	Delete(key string) error
	// CompareAndSwap sets key to new iff its current value equals old;
	// old == nil means "key must not exist yet". It reports whether the
	// swap happened. Elastic rendezvous uses it to fence generation
	// bumps: many workers may propose g+1, exactly one succeeds.
	CompareAndSwap(key string, old, new []byte) (bool, error)
	// Watch blocks until key holds a value different from prev (with
	// prev == nil, until key exists) and returns that value. It is the
	// store's change-notification primitive: rendezvous waiters use it
	// to learn about new generations without polling.
	Watch(key string, prev []byte) ([]byte, error)
}

// Canceler is implemented by stores whose blocking Get can be released
// early: closing cancel makes GetCancel return ErrCanceled instead of
// blocking until the store timeout. Mesh construction threads its abort
// handle through this so a worker that dies between rendezvous seal and
// mesh build does not stall survivors on a Get for an address that will
// never be published.
type Canceler interface {
	GetCancel(key string, cancel <-chan struct{}) ([]byte, error)
}

// GetCancel performs st.Get(key), honouring cancel when the store
// supports cancellation. For stores that do not implement Canceler the
// Get runs on a helper goroutine and the caller is released as soon as
// cancel closes; the goroutine itself drains when the underlying Get
// resolves (bounded by the store's own timeout).
func GetCancel(st Store, key string, cancel <-chan struct{}) ([]byte, error) {
	if cancel == nil {
		return st.Get(key)
	}
	if c, ok := st.(Canceler); ok {
		return c.GetCancel(key, cancel)
	}
	type result struct {
		v   []byte
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := st.Get(key)
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-cancel:
		return nil, ErrCanceled
	}
}

// InMem is an in-process Store safe for concurrent use.
// The zero value is not usable; call NewInMem.
type InMem struct {
	mu       sync.Mutex
	cond     *sync.Cond
	values   map[string][]byte
	counters map[string]int64
	closed   bool
	// Timeout bounds blocking Get/Wait calls; zero means no limit.
	Timeout time.Duration
}

// NewInMem returns an empty in-memory store with the given blocking
// timeout (zero for unbounded).
func NewInMem(timeout time.Duration) *InMem {
	s := &InMem{
		values:   make(map[string][]byte),
		counters: make(map[string]int64),
		Timeout:  timeout,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Set stores value under key.
func (s *InMem) Set(key string, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.values[key] = append([]byte(nil), value...)
	s.cond.Broadcast()
	return nil
}

// Get blocks until key exists and returns a copy of its value.
func (s *InMem) Get(key string) ([]byte, error) {
	return s.GetCancel(key, nil)
}

// GetCancel is Get with early release: closing cancel returns
// ErrCanceled instead of waiting out the store timeout.
func (s *InMem) GetCancel(key string, cancel <-chan struct{}) ([]byte, error) {
	var out []byte
	err := s.waitCancel(cancel, func() bool {
		v, ok := s.values[key]
		if !ok {
			return false
		}
		out = append([]byte(nil), v...)
		return true
	})
	return out, err
}

// Add atomically increments the counter at key by delta.
func (s *InMem) Add(key string, delta int64) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counters[key] += delta
	v := s.counters[key]
	s.cond.Broadcast()
	return v, nil
}

// CounterAt returns the current counter value without modifying it.
func (s *InMem) CounterAt(key string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[key]
}

// Delete removes key's value and counter state; missing keys are a
// no-op.
func (s *InMem) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.values, key)
	delete(s.counters, key)
	s.cond.Broadcast()
	return nil
}

// CompareAndSwap sets key to new iff its current value equals old
// (old == nil: key must not exist). Reports whether the swap happened.
func (s *InMem) CompareAndSwap(key string, old, new []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.values[key]
	if old == nil {
		if ok {
			return false, nil
		}
	} else if !ok || !bytes.Equal(cur, old) {
		return false, nil
	}
	s.values[key] = append([]byte(nil), new...)
	s.cond.Broadcast()
	return true, nil
}

// Watch blocks until key holds a value different from prev and returns
// a copy of it.
func (s *InMem) Watch(key string, prev []byte) ([]byte, error) {
	var out []byte
	err := s.waitLocked(func() bool {
		cur, ok := s.values[key]
		if !ok || (prev != nil && bytes.Equal(cur, prev)) {
			return false
		}
		out = append([]byte(nil), cur...)
		return true
	})
	return out, err
}

// Wait blocks until every key has been Set.
func (s *InMem) Wait(keys ...string) error {
	return s.waitLocked(func() bool {
		for _, k := range keys {
			if _, ok := s.values[k]; !ok {
				return false
			}
		}
		return true
	})
}

// waitLocked blocks until ready() (evaluated under s.mu) returns true,
// honouring the store timeout and shutdown.
func (s *InMem) waitLocked(ready func() bool) error {
	return s.waitCancel(nil, ready)
}

// waitCancel is waitLocked with an optional cancel channel; closing it
// wakes the sleeper with ErrCanceled.
func (s *InMem) waitCancel(cancel <-chan struct{}, ready func() bool) error {
	deadline := time.Time{}
	if s.Timeout > 0 {
		deadline = time.Now().Add(s.Timeout)
		// Wake sleepers periodically so the deadline is observed.
		timer := time.AfterFunc(s.Timeout, func() { s.cond.Broadcast() })
		defer timer.Stop()
	}
	if cancel != nil {
		// A waker turns the channel close into a Broadcast so the
		// cond.Wait below observes it; done reaps the waker on return.
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cancel:
				s.mu.Lock()
				s.cond.Broadcast()
				s.mu.Unlock()
			case <-done:
			}
		}()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if ready() {
			return nil
		}
		if s.closed {
			return ErrClosed
		}
		if cancel != nil {
			select {
			case <-cancel:
				return ErrCanceled
			default:
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return ErrTimeout
		}
		s.cond.Wait()
	}
}

// Close wakes all blocked waiters with ErrClosed. Further waits on
// missing keys fail immediately; existing values remain readable.
func (s *InMem) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
	return nil
}

var _ Store = (*InMem)(nil)
var _ Canceler = (*InMem)(nil)
