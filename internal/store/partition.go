package store

import (
	"errors"
	"sync"
)

// ErrPartitioned is returned by every operation of a Partitioned store
// while its partition is active — the injected analogue of a network
// partition between one worker and the rendezvous store.
var ErrPartitioned = errors.New("store: partitioned from the store")

// Partitioned wraps a Store with a switchable partition, giving fault
// injection a per-worker view of a shared store: while partitioned,
// every operation fails with ErrPartitioned and any operation already
// blocked inside the inner store unwinds promptly. Healing the
// partition restores plain delegation.
//
// The wrapper models an asymmetric failure precisely: other workers
// keep using the shared store untouched, while the partitioned worker
// can neither publish heartbeats nor observe generation changes —
// exactly the situation the lease-expiry detector exists for. The
// chaos harness (internal/chaos) hands each simulated worker its own
// Partitioned view of one shared InMem store.
type Partitioned struct {
	inner Store

	mu  sync.Mutex
	cut bool
	// cutCh is closed when the partition activates, releasing blocked
	// delegated calls; it is replaced on heal.
	cutCh chan struct{}
}

// NewPartitioned wraps inner with an initially healed partition.
func NewPartitioned(inner Store) *Partitioned {
	return &Partitioned{inner: inner, cutCh: make(chan struct{})}
}

// SetPartitioned activates or heals the partition. Activating releases
// every call currently blocked inside the inner store with
// ErrPartitioned. Idempotent.
func (p *Partitioned) SetPartitioned(cut bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cut == p.cut {
		return
	}
	p.cut = cut
	if cut {
		close(p.cutCh)
	} else {
		p.cutCh = make(chan struct{})
	}
}

// Partitioned reports whether the partition is currently active.
func (p *Partitioned) Partitioned() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cut
}

// barrier returns an error if the partition is active, plus the channel
// that releases in-flight calls when it activates.
func (p *Partitioned) barrier() (<-chan struct{}, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cut {
		return nil, ErrPartitioned
	}
	return p.cutCh, nil
}

// result carries a delegated call's outcome across the release select.
type result struct {
	v   []byte
	n   int64
	b   bool
	err error
}

// deliver runs fn on a helper goroutine and returns its result, or
// ErrPartitioned as soon as the partition activates. The helper drains
// when the inner call resolves (bounded by the inner store's own
// timeout or close).
func (p *Partitioned) deliver(fn func() result) result {
	cutCh, err := p.barrier()
	if err != nil {
		return result{err: err}
	}
	ch := make(chan result, 1)
	go func() { ch <- fn() }()
	select {
	case r := <-ch:
		return r
	case <-cutCh:
		return result{err: ErrPartitioned}
	}
}

// Set delegates unless partitioned.
func (p *Partitioned) Set(key string, value []byte) error {
	r := p.deliver(func() result { return result{err: p.inner.Set(key, value)} })
	return r.err
}

// Get delegates unless partitioned; a partition activating mid-wait
// releases the caller with ErrPartitioned.
func (p *Partitioned) Get(key string) ([]byte, error) {
	r := p.deliver(func() result {
		v, err := p.inner.Get(key)
		return result{v: v, err: err}
	})
	return r.v, r.err
}

// GetCancel is Get honouring both the caller's cancel channel and the
// partition.
func (p *Partitioned) GetCancel(key string, cancel <-chan struct{}) ([]byte, error) {
	r := p.deliver(func() result {
		v, err := GetCancel(p.inner, key, cancel)
		return result{v: v, err: err}
	})
	return r.v, r.err
}

// Add delegates unless partitioned.
func (p *Partitioned) Add(key string, delta int64) (int64, error) {
	r := p.deliver(func() result {
		n, err := p.inner.Add(key, delta)
		return result{n: n, err: err}
	})
	return r.n, r.err
}

// Wait delegates unless partitioned; a partition activating mid-wait
// releases the caller.
func (p *Partitioned) Wait(keys ...string) error {
	r := p.deliver(func() result { return result{err: p.inner.Wait(keys...)} })
	return r.err
}

// Delete delegates unless partitioned.
func (p *Partitioned) Delete(key string) error {
	r := p.deliver(func() result { return result{err: p.inner.Delete(key)} })
	return r.err
}

// CompareAndSwap delegates unless partitioned.
func (p *Partitioned) CompareAndSwap(key string, old, new []byte) (bool, error) {
	r := p.deliver(func() result {
		ok, err := p.inner.CompareAndSwap(key, old, new)
		return result{b: ok, err: err}
	})
	return r.b, r.err
}

// Watch delegates unless partitioned; a partition activating mid-watch
// releases the caller.
func (p *Partitioned) Watch(key string, prev []byte) ([]byte, error) {
	r := p.deliver(func() result {
		v, err := p.inner.Watch(key, prev)
		return result{v: v, err: err}
	})
	return r.v, r.err
}

var _ Store = (*Partitioned)(nil)
var _ Canceler = (*Partitioned)(nil)
