package store

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP store speaks a tiny gob-encoded request/response protocol.
// Each client connection is served by its own goroutine; blocking waits
// on one connection do not stall others.

type request struct {
	Op    string // "set", "get", "add", "wait", "delete", "cas", "watch"
	Key   string
	Keys  []string
	Value []byte
	Delta int64
	// Old carries the expected value for "cas" and the previous value
	// for "watch". OldSet distinguishes nil (absent) from empty, which
	// gob cannot.
	Old    []byte
	OldSet bool
}

type response struct {
	Value   []byte
	Counter int64
	Swapped bool
	Err     string
}

// TCPServer serves an InMem store over TCP. Rank 0 typically runs one.
type TCPServer struct {
	ln      net.Listener
	backing *InMem
	wg      sync.WaitGroup
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
}

// ServeTCP starts a store server on addr (e.g. "127.0.0.1:0") and
// returns it. Use Addr to discover the bound address.
func ServeTCP(addr string, timeout time.Duration) (*TCPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("store: listen: %w", err)
	}
	s := &TCPServer{ln: ln, backing: NewInMem(timeout), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address for clients to dial.
func (s *TCPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server, disconnecting any active clients.
func (s *TCPServer) Close() error {
	s.mu.Lock()
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	// Unblock server-side waits so their goroutines can observe
	// shutdown and exit.
	s.backing.Close()
	s.wg.Wait()
	return err
}

func (s *TCPServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *TCPServer) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp response
		switch req.Op {
		case "set":
			if err := s.backing.Set(req.Key, req.Value); err != nil {
				resp.Err = err.Error()
			}
		case "get":
			v, err := s.backing.Get(req.Key)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Value = v
		case "add":
			n, err := s.backing.Add(req.Key, req.Delta)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Counter = n
		case "wait":
			if err := s.backing.Wait(req.Keys...); err != nil {
				resp.Err = err.Error()
			}
		case "delete":
			if err := s.backing.Delete(req.Key); err != nil {
				resp.Err = err.Error()
			}
		case "cas":
			old := req.Old
			if !req.OldSet {
				old = nil
			} else if old == nil {
				old = []byte{}
			}
			ok, err := s.backing.CompareAndSwap(req.Key, old, req.Value)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Swapped = ok
		case "watch":
			prev := req.Old
			if !req.OldSet {
				prev = nil
			} else if prev == nil {
				prev = []byte{}
			}
			v, err := s.backing.Watch(req.Key, prev)
			if err != nil {
				resp.Err = err.Error()
			}
			resp.Value = v
		default:
			resp.Err = "store: unknown op " + req.Op
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

// TCPClient is a Store backed by a remote TCPServer. Safe for concurrent
// use; requests are serialized over a single connection. Watch is the
// exception: because it can block server-side indefinitely, each Watch
// runs on its own short-lived connection so it never stalls the
// client's other operations (heartbeats in particular).
type TCPClient struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// DialTCP connects to a store server, retrying briefly so clients may
// start before the server finishes binding.
func DialTCP(addr string) (*TCPClient, error) {
	var conn net.Conn
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		conn, err = net.Dial("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("store: dial %s: %w", addr, err)
	}
	return &TCPClient{addr: addr, conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// Close closes the client connection.
func (c *TCPClient) Close() error { return c.conn.Close() }

func (c *TCPClient) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&req); err != nil {
		return response{}, fmt.Errorf("store: send: %w", err)
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		return response{}, fmt.Errorf("store: recv: %w", err)
	}
	if resp.Err != "" {
		return resp, fmt.Errorf("store: %s", resp.Err)
	}
	return resp, nil
}

// Set stores value under key on the server.
func (c *TCPClient) Set(key string, value []byte) error {
	_, err := c.roundTrip(request{Op: "set", Key: key, Value: value})
	return err
}

// Get blocks server-side until key exists.
func (c *TCPClient) Get(key string) ([]byte, error) {
	resp, err := c.roundTrip(request{Op: "get", Key: key})
	return resp.Value, err
}

// Add atomically adds delta to the server counter.
func (c *TCPClient) Add(key string, delta int64) (int64, error) {
	resp, err := c.roundTrip(request{Op: "add", Key: key, Delta: delta})
	return resp.Counter, err
}

// Wait blocks until all keys exist on the server.
func (c *TCPClient) Wait(keys ...string) error {
	_, err := c.roundTrip(request{Op: "wait", Keys: keys})
	return err
}

// Delete removes key on the server.
func (c *TCPClient) Delete(key string) error {
	_, err := c.roundTrip(request{Op: "delete", Key: key})
	return err
}

// CompareAndSwap atomically swaps key's value on the server.
func (c *TCPClient) CompareAndSwap(key string, old, new []byte) (bool, error) {
	resp, err := c.roundTrip(request{Op: "cas", Key: key, Value: new, Old: old, OldSet: old != nil})
	return resp.Swapped, err
}

// Watch blocks until key's value differs from prev. It opens a
// dedicated connection for the duration of the watch so concurrent
// Set/Add/Get calls on this client are not blocked behind it.
func (c *TCPClient) Watch(key string, prev []byte) ([]byte, error) {
	side, err := DialTCP(c.addr)
	if err != nil {
		return nil, err
	}
	defer side.Close()
	resp, err := side.roundTrip(request{Op: "watch", Key: key, Old: prev, OldSet: prev != nil})
	return resp.Value, err
}

// GetCancel is Get with early release. Like Watch it runs on a
// dedicated connection (a server-side blocking Get would otherwise
// stall every other operation on the shared one); closing cancel closes
// that connection, releasing the caller immediately with ErrCanceled.
// The server-side waiter drains on its own at the store timeout.
func (c *TCPClient) GetCancel(key string, cancel <-chan struct{}) ([]byte, error) {
	if cancel == nil {
		return c.Get(key)
	}
	select {
	case <-cancel:
		return nil, ErrCanceled
	default:
	}
	side, err := DialTCP(c.addr)
	if err != nil {
		return nil, err
	}
	defer side.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-cancel:
			side.Close()
		case <-done:
		}
	}()
	resp, err := side.roundTrip(request{Op: "get", Key: key})
	if err != nil {
		select {
		case <-cancel:
			return nil, ErrCanceled
		default:
		}
		return nil, err
	}
	return resp.Value, nil
}

var _ Store = (*TCPClient)(nil)
var _ Canceler = (*TCPClient)(nil)
