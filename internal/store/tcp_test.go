package store

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer spins up a TCP store and n clients, tearing all down
// with the test.
func startServer(t *testing.T, timeout time.Duration, n int) (*TCPServer, []*TCPClient) {
	t.Helper()
	srv, err := ServeTCP("127.0.0.1:0", timeout)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	clients := make([]*TCPClient, n)
	for i := range clients {
		c, err := DialTCP(srv.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		t.Cleanup(func() { c.Close() })
		clients[i] = c
	}
	return srv, clients
}

// TestTCPStoreConcurrentAdd is the rank-assignment contract the
// elastic rendezvous depends on: many clients hammering one counter
// must each observe a unique ordinal and the final total must be
// exact.
func TestTCPStoreConcurrentAdd(t *testing.T) {
	const (
		clients = 8
		perC    = 25
	)
	_, cs := startServer(t, 5*time.Second, clients)

	var mu sync.Mutex
	seen := make(map[int64]bool)
	var wg sync.WaitGroup
	for _, c := range cs {
		wg.Add(1)
		go func(c *TCPClient) {
			defer wg.Done()
			for i := 0; i < perC; i++ {
				v, err := c.Add("ordinal", 1)
				if err != nil {
					t.Errorf("add: %v", err)
					return
				}
				mu.Lock()
				if seen[v] {
					t.Errorf("ordinal %d handed out twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	final, err := cs[0].Add("ordinal", 0)
	if err != nil {
		t.Fatal(err)
	}
	if final != clients*perC {
		t.Fatalf("final counter %d, want %d", final, clients*perC)
	}
}

// TestTCPStoreConcurrentWait: many clients block in Wait on missing
// keys while another client fills them in; everyone must wake, and
// waits on one connection must not stall traffic on others.
func TestTCPStoreConcurrentWait(t *testing.T) {
	const waiters = 6
	_, cs := startServer(t, 5*time.Second, waiters+1)

	var wg sync.WaitGroup
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = cs[i].Wait("a", "b", fmt.Sprintf("k%d", i))
		}(i)
	}
	writer := cs[waiters]
	// While the waiters are parked, the writer's connection stays live.
	for i := 0; i < waiters; i++ {
		if err := writer.Set(fmt.Sprintf("k%d", i), []byte{1}); err != nil {
			t.Fatalf("set: %v", err)
		}
	}
	if err := writer.Set("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := writer.Set("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
}

func TestTCPStoreWaitTimeout(t *testing.T) {
	_, cs := startServer(t, 50*time.Millisecond, 1)
	start := time.Now()
	err := cs[0].Wait("never-set")
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !strings.Contains(err.Error(), ErrTimeout.Error()) {
		t.Fatalf("error %q does not carry the timeout cause", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("returned after %v, before the deadline", elapsed)
	}
}

func TestTCPStoreDeleteAndCAS(t *testing.T) {
	_, cs := startServer(t, 2*time.Second, 2)
	a, b := cs[0], cs[1]

	// CAS with old=nil creates the key exactly once across clients.
	ok, err := a.CompareAndSwap("gen", nil, []byte("0"))
	if err != nil || !ok {
		t.Fatalf("initial cas: ok=%v err=%v", ok, err)
	}
	ok, err = b.CompareAndSwap("gen", nil, []byte("0"))
	if err != nil || ok {
		t.Fatalf("second create should lose: ok=%v err=%v", ok, err)
	}

	// The generation fence: of two compare-and-swaps from the same
	// observed value, exactly one wins.
	okA, err := a.CompareAndSwap("gen", []byte("0"), []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	okB, err := b.CompareAndSwap("gen", []byte("0"), []byte("1"))
	if err != nil {
		t.Fatal(err)
	}
	if okA == okB {
		t.Fatalf("want exactly one winner, got A=%v B=%v", okA, okB)
	}
	v, err := a.Get("gen")
	if err != nil || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("gen=%q err=%v", v, err)
	}

	if err := a.Delete("gen"); err != nil {
		t.Fatal(err)
	}
	if err := a.Delete("gen"); err != nil {
		t.Fatalf("deleting a missing key should be a no-op: %v", err)
	}
	ok, err = b.CompareAndSwap("gen", nil, []byte("5"))
	if err != nil || !ok {
		t.Fatalf("create after delete: ok=%v err=%v", ok, err)
	}
}

// TestTCPStoreWatch: a watch parked on one client must see another
// client's update, and must NOT block the watching client's own
// concurrent operations (it runs on a dedicated connection).
func TestTCPStoreWatch(t *testing.T) {
	_, cs := startServer(t, 5*time.Second, 2)
	watcher, writer := cs[0], cs[1]

	if err := writer.Set("gen", []byte("3")); err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	werr := make(chan error, 1)
	go func() {
		v, err := watcher.Watch("gen", []byte("3"))
		werr <- err
		got <- v
	}()

	// The watcher's main connection stays responsive while the watch
	// is parked server-side.
	time.Sleep(20 * time.Millisecond)
	if _, err := watcher.Add("unrelated", 1); err != nil {
		t.Fatalf("watch blocked the client connection: %v", err)
	}
	select {
	case err := <-werr:
		t.Fatalf("watch returned early: %v", err)
	default:
	}

	if err := writer.Set("gen", []byte("4")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-werr:
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
		if v := <-got; !bytes.Equal(v, []byte("4")) {
			t.Fatalf("watch returned %q, want 4", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch did not wake on change")
	}
}

func TestInMemDeleteCASWatch(t *testing.T) {
	s := NewInMem(time.Second)
	defer s.Close()

	if ok, _ := s.CompareAndSwap("k", nil, []byte("a")); !ok {
		t.Fatal("create failed")
	}
	if ok, _ := s.CompareAndSwap("k", []byte("wrong"), []byte("b")); ok {
		t.Fatal("cas with stale old should fail")
	}
	if ok, _ := s.CompareAndSwap("k", []byte("a"), []byte("b")); !ok {
		t.Fatal("cas with correct old should win")
	}

	done := make(chan []byte, 1)
	go func() {
		v, err := s.Watch("k", []byte("b"))
		if err != nil {
			t.Errorf("watch: %v", err)
		}
		done <- v
	}()
	time.Sleep(10 * time.Millisecond)
	if err := s.Set("k", []byte("c")); err != nil {
		t.Fatal(err)
	}
	if v := <-done; !bytes.Equal(v, []byte("c")) {
		t.Fatalf("watch returned %q", v)
	}

	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Watch("missing", nil); err != ErrTimeout {
		t.Fatalf("watch on missing key should time out, got %v", err)
	}

	// Delete clears counter state too (rendezvous GC removes whole
	// rounds, whose count/flag keys are counters).
	if _, err := s.Add("ctr", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("ctr"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Add("ctr", 0); v != 0 {
		t.Fatalf("counter survived delete: %d", v)
	}
}

func TestTCPStoreGetCancel(t *testing.T) {
	srv, err := ServeTCP("127.0.0.1:0", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialTCP(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := client.GetCancel("never", cancel)
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	close(cancel)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("GetCancel did not release on cancel")
	}

	// The client's shared connection must remain usable: the cancelled
	// Get ran on its own side connection.
	if err := client.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := client.GetCancel("k", make(chan struct{}))
	if err != nil || string(v) != "v" {
		t.Fatalf("GetCancel after cancel = %q, %v", v, err)
	}
}
