package nn

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func checkpointModel(seed int64) Module {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential(
		NewLinear(rng, "fc1", 4, 6),
		NewBatchNorm("bn", 6),
		ReLU{},
		NewLinear(rng, "fc2", 6, 2),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := checkpointModel(1)
	// Mutate buffers so the round trip covers them.
	src.Forward(autograd.Constant(tensor.Ones(3, 4)))

	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := checkpointModel(2) // different init
	if err := LoadState(&buf, dst); err != nil {
		t.Fatal(err)
	}
	for i, p := range dst.Parameters() {
		if !p.Value.Equal(src.Parameters()[i].Value) {
			t.Fatalf("parameter %s not restored", p.Name)
		}
	}
	for i, b := range dst.Buffers() {
		if !b.Data.Equal(src.Buffers()[i].Data) {
			t.Fatalf("buffer %s not restored", b.Name)
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	src := checkpointModel(1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	wrongShape := NewSequential(
		NewLinear(rng, "fc1", 4, 8), // different width
		NewBatchNorm("bn", 8),
		ReLU{},
		NewLinear(rng, "fc2", 8, 2),
	)
	if err := LoadState(&buf, wrongShape); err == nil {
		t.Fatal("mismatched shapes must be rejected")
	}

	buf.Reset()
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	wrongNames := NewSequential(
		NewLinear(rng, "other", 4, 6),
		NewBatchNorm("bn", 6),
		ReLU{},
		NewLinear(rng, "fc2", 6, 2),
	)
	err := LoadState(&buf, wrongNames)
	if err == nil || !strings.Contains(err.Error(), "other") {
		t.Fatalf("mismatched names must be rejected with detail, got %v", err)
	}
}

func TestLoadReportsMismatchedShapeByName(t *testing.T) {
	src := checkpointModel(1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	wrongShape := NewSequential(
		NewLinear(rng, "fc1", 4, 8), // widened: fc1's tensors change shape
		NewBatchNorm("bn", 8),
		ReLU{},
		NewLinear(rng, "fc2", 8, 2),
	)
	err := LoadState(&buf, wrongShape)
	if err == nil {
		t.Fatal("mismatched shapes must be rejected")
	}
	// The error must identify the offending entry and both shapes, not
	// just say "mismatch".
	for _, want := range []string{"fc1", "[4 6]", "[4 8]"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("shape mismatch error %q does not mention %q", err, want)
		}
	}
}

func TestSaveStateWritesVersionHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, checkpointModel(1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < 12 || string(raw[:8]) != "GONNSD01" {
		t.Fatalf("stream does not start with the state magic: % x", raw[:12])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != StateFormatVersion {
		t.Fatalf("header version %d, want %d", v, StateFormatVersion)
	}
}

func TestLoadStateAcceptsLegacyHeaderlessStream(t *testing.T) {
	src := checkpointModel(1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[12:] // strip the header: the pre-version encoding
	dst := checkpointModel(2)
	if err := LoadState(bytes.NewReader(legacy), dst); err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	for i, p := range dst.Parameters() {
		if !p.Value.Equal(src.Parameters()[i].Value) {
			t.Fatalf("parameter %s not restored from legacy stream", p.Name)
		}
	}
}

func TestLoadStateRejectsNewerFormatVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveState(&buf, checkpointModel(1)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[8:12], StateFormatVersion+1)
	err := LoadState(bytes.NewReader(raw), checkpointModel(2))
	if err == nil || !strings.Contains(err.Error(), "newer") {
		t.Fatalf("future-version stream must be rejected loudly, got %v", err)
	}
}

func TestLoadRejectsWrongParameterCount(t *testing.T) {
	src := checkpointModel(1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	small := NewLinear(rand.New(rand.NewSource(4)), "fc1", 4, 6)
	if err := LoadState(&buf, small); err == nil {
		t.Fatal("wrong parameter count must be rejected")
	}
}

func TestLoadIsAtomicOnValidationFailure(t *testing.T) {
	// A failed load must not partially overwrite the destination.
	src := checkpointModel(1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	dst := NewSequential(
		NewLinear(rng, "fc1", 4, 6), // matches
		NewBatchNorm("bn", 6),       // matches
		ReLU{},
		NewLinear(rng, "zzz", 6, 2), // name mismatch at the end
	)
	before := dst.Parameters()[0].Value.Clone()
	if err := LoadState(&buf, dst); err == nil {
		t.Fatal("expected validation error")
	}
	if !dst.Parameters()[0].Value.Equal(before) {
		t.Fatal("failed load partially overwrote the model")
	}
}

func TestResumeTrainingFromCheckpoint(t *testing.T) {
	// Train, checkpoint, keep training; separately restore and continue
	// — both continuations must match exactly.
	rng := rand.New(rand.NewSource(6))
	x := autograd.Constant(tensor.RandN(rng, 1, 5, 4))
	y := autograd.Constant(tensor.RandN(rng, 1, 5, 2))
	m := checkpointModel(7)
	step := func(mod Module) {
		ZeroGrad(mod)
		out := mod.Forward(x)
		autograd.Backward(autograd.MSELoss(out, y), nil)
		for _, p := range mod.Parameters() {
			tensor.AxpyInPlace(p.Value, -0.05, p.Grad)
		}
	}
	step(m)
	var ckpt bytes.Buffer
	if err := SaveState(&ckpt, m); err != nil {
		t.Fatal(err)
	}
	step(m) // continue original

	restored := checkpointModel(8)
	if err := LoadState(&ckpt, restored); err != nil {
		t.Fatal(err)
	}
	step(restored) // continue restored

	for i, p := range restored.Parameters() {
		if !p.Value.Equal(m.Parameters()[i].Value) {
			t.Fatalf("resumed training diverged at parameter %s", p.Name)
		}
	}
}
