package nn

import (
	"repro/internal/autograd"
	"repro/internal/tensor"
)

// BatchNorm normalizes per channel over the batch (and spatial
// dimensions for 4-D inputs), learning a per-channel gain and bias and
// maintaining running mean/variance buffers. The buffers are exactly the
// "model buffers" the paper's Section 4.1 discusses: DDP broadcasts them
// from rank 0 before synchronized forward passes so replicas agree.
type BatchNorm struct {
	Gamma, Beta             *Parameter
	RunningMean, RunningVar *Buffer
	NumBatchesTracked       *Buffer
	Momentum, Eps           float32
	training                bool
	channels                int
}

// NewBatchNorm constructs a BatchNorm over c channels with PyTorch
// defaults (momentum 0.1, eps 1e-5).
func NewBatchNorm(name string, c int) *BatchNorm {
	return &BatchNorm{
		Gamma:             NewParameter(name+".weight", tensor.Ones(c)),
		Beta:              NewParameter(name+".bias", tensor.New(c)),
		RunningMean:       &Buffer{Name: name + ".running_mean", Data: tensor.New(c)},
		RunningVar:        &Buffer{Name: name + ".running_var", Data: tensor.Ones(c)},
		NumBatchesTracked: &Buffer{Name: name + ".num_batches_tracked", Data: tensor.New(1)},
		Momentum:          0.1,
		Eps:               1e-5,
		training:          true,
		channels:          c,
	}
}

// Forward normalizes x ([n,c] or [n,c,h,w]). In training mode batch
// statistics are used and folded into the running buffers; in eval mode
// the running buffers are used.
func (b *BatchNorm) Forward(x *autograd.Variable) *autograd.Variable {
	out, stats := autograd.BatchNorm(
		x, b.Gamma.Variable, b.Beta.Variable,
		b.RunningMean.Data.Data(), b.RunningVar.Data.Data(),
		b.Eps, b.training,
	)
	if stats != nil {
		m := b.Momentum
		rm, rv := b.RunningMean.Data.Data(), b.RunningVar.Data.Data()
		for i := 0; i < b.channels; i++ {
			rm[i] = (1-m)*rm[i] + m*stats.Mean[i]
			rv[i] = (1-m)*rv[i] + m*stats.Var[i]
		}
		b.NumBatchesTracked.Data.Data()[0]++
	}
	return out
}

// Parameters returns [gamma, beta].
func (b *BatchNorm) Parameters() []*Parameter { return []*Parameter{b.Gamma, b.Beta} }

// Buffers returns the running statistics.
func (b *BatchNorm) Buffers() []*Buffer {
	return []*Buffer{b.RunningMean, b.RunningVar, b.NumBatchesTracked}
}

// SetTraining toggles between batch and running statistics.
func (b *BatchNorm) SetTraining(t bool) { b.training = t }

// LayerNorm normalizes the last dimension with learned gain and bias,
// as used by BERT-style transformer blocks.
type LayerNorm struct {
	Gain, Bias *Parameter
	Eps        float32
}

// NewLayerNorm constructs a LayerNorm over vectors of length dim.
func NewLayerNorm(name string, dim int) *LayerNorm {
	return &LayerNorm{
		Gain: NewParameter(name+".weight", tensor.Ones(dim)),
		Bias: NewParameter(name+".bias", tensor.New(dim)),
		Eps:  1e-5,
	}
}

// Forward normalizes x [rows, dim].
func (l *LayerNorm) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.LayerNorm(x, l.Gain.Variable, l.Bias.Variable, l.Eps)
}

// Parameters returns [gain, bias].
func (l *LayerNorm) Parameters() []*Parameter { return []*Parameter{l.Gain, l.Bias} }

// Buffers returns nil.
func (l *LayerNorm) Buffers() []*Buffer { return nil }

// SetTraining is a no-op.
func (l *LayerNorm) SetTraining(bool) {}

var (
	_ Module = (*BatchNorm)(nil)
	_ Module = (*LayerNorm)(nil)
)
