package nn

import (
	"math/rand"

	"repro/internal/autograd"
)

// Sequential chains modules, feeding each output into the next. Its
// parameter order is the concatenation of child parameter orders —
// the ordering DDP reverses when assigning buckets.
type Sequential struct {
	children []Module
}

// NewSequential constructs a Sequential container over the given modules.
func NewSequential(children ...Module) *Sequential {
	return &Sequential{children: children}
}

// Append adds a module to the end of the chain.
func (s *Sequential) Append(m Module) { s.children = append(s.children, m) }

// Children returns the contained modules in order.
func (s *Sequential) Children() []Module { return s.children }

// Forward applies every child in order.
func (s *Sequential) Forward(x *autograd.Variable) *autograd.Variable {
	for _, c := range s.children {
		x = c.Forward(x)
	}
	return x
}

// Parameters concatenates child parameters in registration order.
func (s *Sequential) Parameters() []*Parameter {
	var out []*Parameter
	for _, c := range s.children {
		out = append(out, c.Parameters()...)
	}
	return out
}

// Buffers concatenates child buffers in registration order.
func (s *Sequential) Buffers() []*Buffer {
	var out []*Buffer
	for _, c := range s.children {
		out = append(out, c.Buffers()...)
	}
	return out
}

// SetTraining recurses into all children.
func (s *Sequential) SetTraining(t bool) {
	for _, c := range s.children {
		c.SetTraining(t)
	}
}

// Residual wraps a module as y = x + f(x). Shapes must match.
type Residual struct {
	Body Module
}

// NewResidual constructs a residual wrapper around body.
func NewResidual(body Module) *Residual { return &Residual{Body: body} }

// Forward computes x + Body(x).
func (r *Residual) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.Add(x, r.Body.Forward(x))
}

// Parameters delegates to the body.
func (r *Residual) Parameters() []*Parameter { return r.Body.Parameters() }

// Buffers delegates to the body.
func (r *Residual) Buffers() []*Buffer { return r.Body.Buffers() }

// SetTraining delegates to the body.
func (r *Residual) SetTraining(t bool) { r.Body.SetTraining(t) }

// LayerDrop randomly skips its body during training forward passes with
// probability P — the structured-dropout technique of Section 6.2.2.
// All distributed replicas must construct LayerDrop with the same seed so
// they skip the same layers in the same iteration; skipped layers simply
// never enter the autograd graph, so with FindUnusedParameters enabled
// DDP marks their parameters ready at the end of the forward pass.
type LayerDrop struct {
	Body     Module
	P        float32
	rng      *rand.Rand
	training bool
	// Skipped reports whether the body was skipped in the most recent
	// forward pass.
	Skipped bool
}

// NewLayerDrop wraps body so it is skipped with probability p, sampling
// from a deterministic seed shared across ranks.
func NewLayerDrop(seed int64, p float32, body Module) *LayerDrop {
	return &LayerDrop{Body: body, P: p, rng: rand.New(rand.NewSource(seed)), training: true}
}

// Forward either applies the body or passes x through unchanged.
func (l *LayerDrop) Forward(x *autograd.Variable) *autograd.Variable {
	l.Skipped = false
	if l.training && l.rng.Float32() < l.P {
		l.Skipped = true
		return x
	}
	return l.Body.Forward(x)
}

// Parameters delegates to the body.
func (l *LayerDrop) Parameters() []*Parameter { return l.Body.Parameters() }

// Buffers delegates to the body.
func (l *LayerDrop) Buffers() []*Buffer { return l.Body.Buffers() }

// SetTraining toggles skipping; evaluation always runs the body.
func (l *LayerDrop) SetTraining(t bool) {
	l.training = t
	l.Body.SetTraining(t)
}

// Checkpointed wraps a module in activation checkpointing
// (autograd.Checkpoint): the body's intermediate activations are
// discarded after the forward pass and recomputed during backward,
// trading compute for memory — the recomputation technique the paper's
// Section 7 attributes to ZeRO. The body must be deterministic between
// the forward and backward executions (no Dropout/LayerDrop inside).
type Checkpointed struct {
	Body Module
}

// NewCheckpointed wraps body in activation checkpointing.
func NewCheckpointed(body Module) *Checkpointed { return &Checkpointed{Body: body} }

// Forward runs the body detached and schedules recomputation for the
// backward pass.
func (c *Checkpointed) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.Checkpoint(c.Body.Forward, x)
}

// Parameters delegates to the body.
func (c *Checkpointed) Parameters() []*Parameter { return c.Body.Parameters() }

// Buffers delegates to the body.
func (c *Checkpointed) Buffers() []*Buffer { return c.Body.Buffers() }

// SetTraining delegates to the body.
func (c *Checkpointed) SetTraining(t bool) { c.Body.SetTraining(t) }

var (
	_ Module = (*Sequential)(nil)
	_ Module = (*Residual)(nil)
	_ Module = (*LayerDrop)(nil)
	_ Module = (*Checkpointed)(nil)
)
