package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestAttentionShapesAndGradientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	attn := NewMultiHeadAttention(rng, "attn", 8, 2)
	x := autograd.NewLeaf(tensor.RandN(rng, 1, 5, 8), true)
	out := attn.Forward(x)
	if out.Value.Dims(0) != 5 || out.Value.Dims(1) != 8 {
		t.Fatalf("attention output shape %v", out.Value.Shape())
	}
	autograd.Backward(autograd.Sum(out), nil)
	if x.Grad == nil {
		t.Fatal("no gradient to input")
	}
	for _, p := range attn.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s missing grad", p.Name)
		}
	}
	if len(attn.Parameters()) != 8 {
		t.Fatalf("attention params = %d, want 8 (4 projections x W,b)", len(attn.Parameters()))
	}
}

func TestAttentionNumericalGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	attn := NewMultiHeadAttention(rng, "attn", 4, 2)
	x := tensor.RandN(rng, 1, 3, 4)

	forward := func() float32 {
		out := attn.Forward(autograd.Constant(x))
		return tensor.Sum(out.Value).Item()
	}
	ZeroGrad(attn)
	out := attn.Forward(autograd.Constant(x))
	autograd.Backward(autograd.Sum(out), nil)

	const eps = 1e-2
	for _, p := range []*Parameter{attn.Query.W, attn.Value.W, attn.Output.W, attn.Key.W} {
		for _, i := range []int{0, p.Value.Size() / 2, p.Value.Size() - 1} {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			up := forward()
			p.Value.Data()[i] = orig - eps
			down := forward()
			p.Value.Data()[i] = orig
			num := (up - down) / (2 * eps)
			got := p.Grad.Data()[i]
			if math.Abs(float64(num-got)) > 2e-2*(1+math.Abs(float64(num))) {
				t.Fatalf("%s grad[%d] = %v, numerical %v", p.Name, i, got, num)
			}
		}
	}
}

func TestAttentionIsPermutationSensitiveViaValues(t *testing.T) {
	// Self-attention output for token i depends on all tokens: changing
	// token j must change token i's output (unlike a pure MLP).
	rng := rand.New(rand.NewSource(3))
	attn := NewMultiHeadAttention(rng, "attn", 8, 2)
	x := tensor.RandN(rng, 1, 4, 8)
	out1 := attn.Forward(autograd.Constant(x)).Value.Clone()
	x.Set(x.At(3, 0)+5, 3, 0) // perturb the last token
	out2 := attn.Forward(autograd.Constant(x)).Value
	changed := false
	for j := 0; j < 8; j++ {
		if out1.At(0, j) != out2.At(0, j) {
			changed = true
		}
	}
	if !changed {
		t.Fatal("token 0's output ignored token 3 — attention not mixing")
	}
}

func TestAttentionRejectsBadHeadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMultiHeadAttention(rand.New(rand.NewSource(1)), "bad", 6, 4)
}

func TestTransformerBlockForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	blk := NewTransformerBlock(rng, "layer0", 8, 2, 16)
	x := autograd.NewLeaf(tensor.RandN(rng, 1, 6, 8), true)
	out := blk.Forward(x)
	if out.Value.Dims(0) != 6 || out.Value.Dims(1) != 8 {
		t.Fatalf("block output shape %v", out.Value.Shape())
	}
	autograd.Backward(autograd.Sum(autograd.Mul(out, out)), nil)
	// 2 LayerNorms x 2 + attention 8 + up/down 2x2 = 16 parameters.
	if got := len(blk.Parameters()); got != 16 {
		t.Fatalf("block params = %d, want 16", got)
	}
	for _, p := range blk.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s missing grad", p.Name)
		}
	}
	if x.Grad == nil {
		t.Fatal("no gradient to input")
	}
}

func TestSliceColsAndMatMulTransBGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := autograd.NewLeaf(tensor.RandN(rng, 1, 3, 6), true)
	sliced := autograd.SliceCols(a, 2, 5)
	if sliced.Value.Dims(1) != 3 {
		t.Fatalf("slice shape %v", sliced.Value.Shape())
	}
	autograd.Backward(autograd.Sum(sliced), nil)
	// Columns 2-4 get gradient 1, the rest 0.
	for r := 0; r < 3; r++ {
		for c := 0; c < 6; c++ {
			want := float32(0)
			if c >= 2 && c < 5 {
				want = 1
			}
			if a.Grad.At(r, c) != want {
				t.Fatalf("slice grad[%d,%d] = %v, want %v", r, c, a.Grad.At(r, c), want)
			}
		}
	}

	x := autograd.NewLeaf(tensor.RandN(rng, 1, 2, 4), true)
	y := autograd.NewLeaf(tensor.RandN(rng, 1, 3, 4), true)
	out := autograd.MatMulTransB(x, y)
	want := tensor.MatMul(x.Value, tensor.Transpose2D(y.Value))
	if !out.Value.AllClose(want, 1e-5, 1e-6) {
		t.Fatal("MatMulTransB forward wrong")
	}
	autograd.Backward(autograd.Sum(out), nil)
	if x.Grad == nil || y.Grad == nil {
		t.Fatal("MatMulTransB grads missing")
	}
	// Compare against the equivalent explicit-transpose formulation.
	x2 := autograd.NewLeaf(x.Value.Clone(), true)
	y2t := autograd.NewLeaf(tensor.Transpose2D(y.Value), true)
	autograd.Backward(autograd.Sum(autograd.MatMul(x2, y2t)), nil)
	if !x.Grad.AllClose(x2.Grad, 1e-5, 1e-6) {
		t.Fatal("MatMulTransB dA disagrees with explicit transpose")
	}
	if !y.Grad.AllClose(tensor.Transpose2D(y2t.Grad), 1e-5, 1e-6) {
		t.Fatal("MatMulTransB dB disagrees with explicit transpose")
	}
}
