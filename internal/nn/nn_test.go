package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

func TestLinearForwardKnownValues(t *testing.T) {
	l := &Linear{
		W: NewParameter("w", tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2)),
		B: NewParameter("b", tensor.FromSlice([]float32{10, 20}, 2)),
	}
	x := autograd.Constant(tensor.FromSlice([]float32{1, 1}, 1, 2))
	out := l.Forward(x)
	// [1,1]·[[1,2],[3,4]] + [10,20] = [4+10, 6+20]
	want := tensor.FromSlice([]float32{14, 26}, 1, 2)
	if !out.Value.Equal(want) {
		t.Fatalf("Linear forward = %v, want %v", out.Value, want)
	}
}

func TestLinearParameterOrder(t *testing.T) {
	l := NewLinear(rand.New(rand.NewSource(1)), "fc", 3, 2)
	ps := l.Parameters()
	if len(ps) != 2 || ps[0].Name != "fc.weight" || ps[1].Name != "fc.bias" {
		t.Fatalf("parameter order = %v", []string{ps[0].Name, ps[1].Name})
	}
}

func TestLinearGradientFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "fc", 4, 3)
	x := autograd.Constant(tensor.RandN(rng, 1, 2, 4))
	loss := autograd.Sum(l.Forward(x))
	autograd.Backward(loss, nil)
	if l.W.Grad == nil || l.B.Grad == nil {
		t.Fatal("gradients missing")
	}
	// d(sum)/db = batch size for every bias element.
	for _, v := range l.B.Grad.Data() {
		if v != 2 {
			t.Fatalf("bias grad = %v, want 2", v)
		}
	}
}

func TestConv2dForwardShapeAndGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := NewConv2d(rng, "conv", 2, 4, 3, 1, 1)
	x := autograd.Constant(tensor.RandN(rng, 1, 2, 2, 5, 5))
	out := c.Forward(x)
	if out.Value.Dims(1) != 4 || out.Value.Dims(2) != 5 {
		t.Fatalf("conv output shape %v", out.Value.Shape())
	}
	autograd.Backward(autograd.Sum(out), nil)
	if c.W.Grad == nil || c.B.Grad == nil {
		t.Fatal("conv grads missing")
	}
	// Bias grad for sum-loss is n*oh*ow per channel.
	if got := c.B.Grad.At(0); got != 2*5*5 {
		t.Fatalf("conv bias grad = %v, want 50", got)
	}
}

func TestSequentialOrderAndForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewSequential(
		NewLinear(rng, "fc1", 4, 8),
		ReLU{},
		NewLinear(rng, "fc2", 8, 2),
	)
	ps := m.Parameters()
	want := []string{"fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Fatalf("parameter %d = %s, want %s", i, p.Name, want[i])
		}
	}
	x := autograd.Constant(tensor.RandN(rng, 1, 3, 4))
	out := m.Forward(x)
	if out.Value.Dims(0) != 3 || out.Value.Dims(1) != 2 {
		t.Fatalf("output shape %v", out.Value.Shape())
	}
}

func TestZeroGradAndNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewLinear(rng, "fc", 3, 2)
	x := autograd.Constant(tensor.RandN(rng, 1, 1, 3))
	autograd.Backward(autograd.Sum(m.Forward(x)), nil)
	if m.W.Grad == nil {
		t.Fatal("no grad")
	}
	ZeroGrad(m)
	if m.W.Grad != nil || m.B.Grad != nil {
		t.Fatal("ZeroGrad failed")
	}
	if NumParams(m) != 3*2+2 {
		t.Fatalf("NumParams = %d", NumParams(m))
	}
}

func TestCopyParameters(t *testing.T) {
	a := NewLinear(rand.New(rand.NewSource(6)), "fc", 3, 3)
	b := NewLinear(rand.New(rand.NewSource(7)), "fc", 3, 3)
	if a.W.Value.Equal(b.W.Value) {
		t.Fatal("different seeds should differ")
	}
	if err := CopyParameters(b, a); err != nil {
		t.Fatal(err)
	}
	if !a.W.Value.Equal(b.W.Value) || !a.B.Value.Equal(b.B.Value) {
		t.Fatal("CopyParameters did not copy")
	}
}

func TestBatchNormTrainingNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	x := autograd.Constant(tensor.FromSlice([]float32{1, 10, 3, 30, 5, 50, 7, 70}, 4, 2))
	out := bn.Forward(x)
	// Each output channel should have ~zero mean, ~unit variance.
	for ch := 0; ch < 2; ch++ {
		var s, sq float64
		for b := 0; b < 4; b++ {
			v := float64(out.Value.At(b, ch))
			s += v
			sq += v * v
		}
		if math.Abs(s/4) > 1e-4 || math.Abs(sq/4-1) > 1e-2 {
			t.Fatalf("channel %d mean %v var %v", ch, s/4, sq/4)
		}
	}
	// Running stats moved toward batch stats.
	if bn.RunningMean.Data.At(0) == 0 {
		t.Fatal("running mean not updated")
	}
	if bn.NumBatchesTracked.Data.At(0) != 1 {
		t.Fatal("num_batches_tracked not updated")
	}
}

func TestBatchNormEvalFrozen(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.SetTraining(false)
	before := bn.RunningMean.Data.Clone()
	x := autograd.Constant(tensor.FromSlice([]float32{5, 5, 5, 5}, 2, 2))
	bn.Forward(x)
	if !bn.RunningMean.Data.Equal(before) {
		t.Fatal("eval mode must not update running stats")
	}
}

func TestBatchNormBuffersListed(t *testing.T) {
	bn := NewBatchNorm("bn", 3)
	if len(bn.Buffers()) != 3 {
		t.Fatalf("Buffers = %d, want 3", len(bn.Buffers()))
	}
}

func TestLayerNormOutput(t *testing.T) {
	ln := NewLayerNorm("ln", 4)
	x := autograd.Constant(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 4))
	out := ln.Forward(x)
	var s float32
	for _, v := range out.Value.Data() {
		s += v
	}
	if math.Abs(float64(s)) > 1e-4 {
		t.Fatalf("layernorm row mean = %v", s/4)
	}
}

func TestDropoutTrainEvalModes(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(8)), 0.5)
	x := autograd.Constant(tensor.Ones(100))
	out := d.Forward(x)
	zeros := 0
	for _, v := range out.Value.Data() {
		if v == 0 {
			zeros++
		} else if v != 2 {
			t.Fatalf("survivor not scaled: %v", v)
		}
	}
	if zeros == 0 || zeros == 100 {
		t.Fatalf("dropout zeroed %d of 100", zeros)
	}
	d.SetTraining(false)
	out = d.Forward(x)
	for _, v := range out.Value.Data() {
		if v != 1 {
			t.Fatal("eval dropout must be identity")
		}
	}
}

func TestResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	body := NewLinear(rng, "fc", 3, 3)
	r := NewResidual(body)
	x := autograd.Constant(tensor.RandN(rng, 1, 2, 3))
	out := r.Forward(x)
	want := tensor.Add(x.Value, body.Forward(x).Value)
	if !out.Value.AllClose(want, 1e-6, 1e-6) {
		t.Fatal("residual mismatch")
	}
	if len(r.Parameters()) != 2 {
		t.Fatal("residual must expose body parameters")
	}
}

func TestLayerDropDeterministicAcrossReplicas(t *testing.T) {
	// Two "ranks" constructing LayerDrop with the same seed must skip the
	// same layers in the same iterations (Section 6.2.2 coordination).
	rngA, rngB := rand.New(rand.NewSource(10)), rand.New(rand.NewSource(11))
	a := NewLayerDrop(99, 0.5, NewLinear(rngA, "fc", 2, 2))
	b := NewLayerDrop(99, 0.5, NewLinear(rngB, "fc", 2, 2))
	x := autograd.Constant(tensor.Ones(1, 2))
	for i := 0; i < 20; i++ {
		a.Forward(x)
		b.Forward(x)
		if a.Skipped != b.Skipped {
			t.Fatalf("iteration %d: replicas disagree on skip", i)
		}
	}
}

func TestLayerDropEvalNeverSkips(t *testing.T) {
	l := NewLayerDrop(1, 1.0, NewLinear(rand.New(rand.NewSource(12)), "fc", 2, 2))
	l.SetTraining(false)
	l.Forward(autograd.Constant(tensor.Ones(1, 2)))
	if l.Skipped {
		t.Fatal("eval LayerDrop must not skip")
	}
}

func TestEmbeddingForward(t *testing.T) {
	e := NewEmbedding(rand.New(rand.NewSource(13)), "emb", 10, 4)
	out := e.ForwardIDs([]int{3, 3, 7})
	if out.Value.Dims(0) != 3 || out.Value.Dims(1) != 4 {
		t.Fatalf("embedding shape %v", out.Value.Shape())
	}
	for j := 0; j < 4; j++ {
		if out.Value.At(0, j) != out.Value.At(1, j) {
			t.Fatal("same id must give same row")
		}
	}
}

func TestFlattenAndPools(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := autograd.Constant(tensor.RandN(rng, 1, 2, 3, 4, 4))
	if got := (Flatten{}).Forward(x); got.Value.Dims(1) != 48 {
		t.Fatalf("flatten shape %v", got.Value.Shape())
	}
	if got := (AvgPool{}).Forward(x); got.Value.Dim() != 2 {
		t.Fatalf("avgpool shape %v", got.Value.Shape())
	}
	if got := (MaxPool{}).Forward(x); got.Value.Dims(2) != 2 {
		t.Fatalf("maxpool shape %v", got.Value.Shape())
	}
}

func TestCheckpointedModuleMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	body := NewSequential(NewLinear(rng, "fc1", 4, 8), Tanh{}, NewLinear(rng, "fc2", 8, 2))
	plainRng := rand.New(rand.NewSource(20))
	plain := NewSequential(NewLinear(plainRng, "fc1", 4, 8), Tanh{}, NewLinear(plainRng, "fc2", 8, 2))

	ck := NewCheckpointed(body)
	if len(ck.Parameters()) != 4 {
		t.Fatal("checkpointed wrapper must expose body parameters")
	}
	x := autograd.Constant(tensor.RandN(rand.New(rand.NewSource(21)), 1, 3, 4))

	autograd.Backward(autograd.Sum(ck.Forward(x)), nil)
	autograd.Backward(autograd.Sum(plain.Forward(x)), nil)
	for i, p := range ck.Parameters() {
		if !p.Grad.AllClose(plain.Parameters()[i].Grad, 1e-6, 1e-7) {
			t.Fatalf("checkpointed grad %d differs from plain", i)
		}
	}
}

func TestCheckpointedWorksInsideSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewSequential(
		NewLinear(rng, "in", 4, 8),
		NewCheckpointed(NewSequential(NewLinear(rng, "mid", 8, 8), ReLU{})),
		NewLinear(rng, "out", 8, 2),
	)
	x := autograd.Constant(tensor.RandN(rng, 1, 2, 4))
	autograd.Backward(autograd.Sum(m.Forward(x)), nil)
	for _, p := range m.Parameters() {
		if p.Grad == nil {
			t.Fatalf("parameter %s missing grad through checkpoint", p.Name)
		}
	}
}

func TestSetTrainingRecurses(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	bn := NewBatchNorm("bn", 2)
	m := NewSequential(NewLinear(rng, "fc", 2, 2), bn)
	m.SetTraining(false)
	before := bn.RunningMean.Data.Clone()
	m.Forward(autograd.Constant(tensor.Ones(3, 2)))
	if !bn.RunningMean.Data.Equal(before) {
		t.Fatal("SetTraining(false) did not reach BatchNorm")
	}
}
