// Package nn provides neural network modules in the style of
// torch.nn: composable layers holding named parameters and buffers.
//
// Parameter registration order matters: DistributedDataParallel assigns
// parameters to gradient buckets in the reverse of Parameters() order,
// on the assumption that layers are registered roughly in forward
// invocation order (Section 3.2.3 of the paper).
package nn

import (
	"fmt"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Parameter is a learnable tensor: an autograd leaf with a name.
type Parameter struct {
	Name string
	*autograd.Variable
}

// NewParameter wraps t as a named learnable parameter.
func NewParameter(name string, t *tensor.Tensor) *Parameter {
	return &Parameter{Name: name, Variable: autograd.NewNamedLeaf(name, t, true)}
}

// Buffer is module state that is not learned but must stay consistent
// across replicas, e.g. BatchNorm running statistics. DDP broadcasts
// buffers from rank 0 before each synchronized forward pass.
type Buffer struct {
	Name string
	Data *tensor.Tensor
}

// Module is the interface all layers and containers implement.
type Module interface {
	// Forward computes the layer output and records the autograd graph.
	Forward(x *autograd.Variable) *autograd.Variable
	// Parameters returns learnable parameters in registration order.
	Parameters() []*Parameter
	// Buffers returns non-learnable state in registration order.
	Buffers() []*Buffer
	// SetTraining switches between training and evaluation behaviour
	// (dropout, batch-norm statistics).
	SetTraining(training bool)
}

// ZeroGrad clears the gradients of all parameters of m.
func ZeroGrad(m Module) {
	for _, p := range m.Parameters() {
		p.ZeroGrad()
	}
}

// NumParams returns the total element count across parameters, i.e. the
// model size the paper reports (ResNet50 ≈ 25.6M, BERT ≈ 340M).
func NumParams(m Module) int {
	n := 0
	for _, p := range m.Parameters() {
		n += p.Value.Size()
	}
	return n
}

// CopyParameters copies parameter values from src to dst, which must
// have identical parameter layouts. Used to align replicas at
// construction (the paper's rank-0 broadcast of model state).
func CopyParameters(dst, src Module) error {
	dp, sp := dst.Parameters(), src.Parameters()
	if len(dp) != len(sp) {
		return fmt.Errorf("nn: parameter count mismatch %d vs %d", len(dp), len(sp))
	}
	for i := range dp {
		if dp[i].Value.Size() != sp[i].Value.Size() {
			return fmt.Errorf("nn: parameter %d size mismatch", i)
		}
		dp[i].Value.CopyFrom(sp[i].Value)
	}
	db, sb := dst.Buffers(), src.Buffers()
	if len(db) != len(sb) {
		return fmt.Errorf("nn: buffer count mismatch %d vs %d", len(db), len(sb))
	}
	for i := range db {
		db[i].Data.CopyFrom(sb[i].Data)
	}
	return nil
}

// leafModule provides the no-op pieces of Module for stateless layers.
type leafModule struct{}

func (leafModule) Parameters() []*Parameter { return nil }
func (leafModule) Buffers() []*Buffer       { return nil }
func (leafModule) SetTraining(bool)         {}
