package nn

import (
	"math/rand"

	"repro/internal/autograd"
	"repro/internal/tensor"
)

// Linear is a fully-connected layer: y = x·W + b with W of shape
// [in, out] and b of shape [out].
type Linear struct {
	W, B *Parameter
	name string
}

// NewLinear constructs a Linear layer with PyTorch-style fan-in-scaled
// uniform initialization drawn from rng.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	return &Linear{
		W:    NewParameter(name+".weight", tensor.KaimingUniform(rng, in, in, out)),
		B:    NewParameter(name+".bias", tensor.KaimingUniform(rng, in, out)),
		name: name,
	}
}

// Forward computes x·W + b for x of shape [batch, in].
func (l *Linear) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.AddRow(autograd.MatMul(x, l.W.Variable), l.B.Variable)
}

// Parameters returns [weight, bias] in registration order.
func (l *Linear) Parameters() []*Parameter { return []*Parameter{l.W, l.B} }

// Buffers returns nil; Linear has no buffers.
func (l *Linear) Buffers() []*Buffer { return nil }

// SetTraining is a no-op for Linear.
func (l *Linear) SetTraining(bool) {}

// Conv2d is a 2-D convolution layer with weight [out, in, k, k] and a
// per-output-channel bias.
type Conv2d struct {
	W, B        *Parameter
	Stride, Pad int
}

// NewConv2d constructs a Conv2d with kernel size k, given stride and
// padding.
func NewConv2d(rng *rand.Rand, name string, in, out, k, stride, pad int) *Conv2d {
	fanIn := in * k * k
	return &Conv2d{
		W:      NewParameter(name+".weight", tensor.KaimingUniform(rng, fanIn, out, in, k, k)),
		B:      NewParameter(name+".bias", tensor.KaimingUniform(rng, fanIn, out)),
		Stride: stride,
		Pad:    pad,
	}
}

// Forward convolves x [n, in, h, w] producing [n, out, oh, ow].
func (c *Conv2d) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.AddChannel(autograd.Conv2D(x, c.W.Variable, c.Stride, c.Pad), c.B.Variable)
}

// Parameters returns [weight, bias].
func (c *Conv2d) Parameters() []*Parameter { return []*Parameter{c.W, c.B} }

// Buffers returns nil.
func (c *Conv2d) Buffers() []*Buffer { return nil }

// SetTraining is a no-op.
func (c *Conv2d) SetTraining(bool) {}

// ReLU applies max(0, x).
type ReLU struct{ leafModule }

// Forward applies the activation.
func (ReLU) Forward(x *autograd.Variable) *autograd.Variable { return autograd.Relu(x) }

// Tanh applies tanh(x).
type Tanh struct{ leafModule }

// Forward applies the activation.
func (Tanh) Forward(x *autograd.Variable) *autograd.Variable { return autograd.Tanh(x) }

// GELU applies the Gaussian error linear unit.
type GELU struct{ leafModule }

// Forward applies the activation.
func (GELU) Forward(x *autograd.Variable) *autograd.Variable { return autograd.Gelu(x) }

// Sigmoid applies the logistic function.
type Sigmoid struct{ leafModule }

// Forward applies the activation.
func (Sigmoid) Forward(x *autograd.Variable) *autograd.Variable { return autograd.Sigmoid(x) }

// Flatten reshapes [n, ...] to [n, rest].
type Flatten struct{ leafModule }

// Forward flattens all but the leading dimension.
func (Flatten) Forward(x *autograd.Variable) *autograd.Variable {
	return autograd.Reshape(x, x.Value.Dims(0), -1)
}

// AvgPool applies global average pooling [n,c,h,w] -> [n,c].
type AvgPool struct{ leafModule }

// Forward pools the spatial dimensions away.
func (AvgPool) Forward(x *autograd.Variable) *autograd.Variable { return autograd.AvgPool2D(x) }

// MaxPool applies 2x2/stride-2 max pooling.
type MaxPool struct{ leafModule }

// Forward halves the spatial dimensions.
func (MaxPool) Forward(x *autograd.Variable) *autograd.Variable { return autograd.MaxPool2D(x) }

// Dropout zeroes activations with probability P during training. The mask
// is drawn from the layer's own rng so that distributed replicas can
// coordinate by seeding identically when required.
type Dropout struct {
	P        float32
	rng      *rand.Rand
	training bool
}

// NewDropout constructs a Dropout layer.
func NewDropout(rng *rand.Rand, p float32) *Dropout {
	return &Dropout{P: p, rng: rng, training: true}
}

// Forward applies inverted dropout in training mode and is the identity
// in evaluation mode.
func (d *Dropout) Forward(x *autograd.Variable) *autograd.Variable {
	if !d.training || d.P <= 0 {
		return x
	}
	keep := make([]bool, x.Value.Size())
	for i := range keep {
		keep[i] = d.rng.Float32() >= d.P
	}
	return autograd.Dropout(x, keep, d.P)
}

// Parameters returns nil.
func (d *Dropout) Parameters() []*Parameter { return nil }

// Buffers returns nil.
func (d *Dropout) Buffers() []*Buffer { return nil }

// SetTraining toggles mask sampling.
func (d *Dropout) SetTraining(t bool) { d.training = t }

// Embedding maps integer token ids to dense rows of a [vocab, dim]
// weight matrix. Forward expects ids encoded in the input tensor.
type Embedding struct {
	W *Parameter
}

// NewEmbedding constructs an Embedding table.
func NewEmbedding(rng *rand.Rand, name string, vocab, dim int) *Embedding {
	return &Embedding{W: NewParameter(name+".weight", tensor.RandN(rng, 0.02, vocab, dim))}
}

// ForwardIDs gathers rows for the given token ids.
func (e *Embedding) ForwardIDs(ids []int) *autograd.Variable {
	return autograd.Embedding(e.W.Variable, ids)
}

// Forward interprets x's elements as integer ids (rounded).
func (e *Embedding) Forward(x *autograd.Variable) *autograd.Variable {
	ids := make([]int, x.Value.Size())
	for i, v := range x.Value.Data() {
		ids[i] = int(v)
	}
	return e.ForwardIDs(ids)
}

// Parameters returns the embedding table.
func (e *Embedding) Parameters() []*Parameter { return []*Parameter{e.W} }

// Buffers returns nil.
func (e *Embedding) Buffers() []*Buffer { return nil }

// SetTraining is a no-op.
func (e *Embedding) SetTraining(bool) {}

// Compile-time interface checks.
var (
	_ Module = (*Linear)(nil)
	_ Module = (*Conv2d)(nil)
	_ Module = ReLU{}
	_ Module = Tanh{}
	_ Module = GELU{}
	_ Module = Sigmoid{}
	_ Module = Flatten{}
	_ Module = AvgPool{}
	_ Module = MaxPool{}
	_ Module = (*Dropout)(nil)
	_ Module = (*Embedding)(nil)
)
