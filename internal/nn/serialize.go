package nn

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"slices"

	"repro/internal/tensor"
)

// StateFormatVersion is the current version of SaveState's encoding.
// SaveState writes it in a fixed header ahead of the payload so
// downstream formats that embed state dicts (the ckpt package's
// manifests and shards) can evolve the encoding without guessing;
// LoadState rejects streams written by a newer version and transparently
// accepts headerless streams from before the header existed.
const StateFormatVersion = 1

// stateMagic identifies a SaveState stream ("GONNSD" + 2-digit header
// revision). Streams from before the header was introduced start with
// gob type-definition bytes instead and are detected by the mismatch.
var stateMagic = [8]byte{'G', 'O', 'N', 'N', 'S', 'D', '0', '1'}

// stateEntry is one serialized tensor of a state dict.
type stateEntry struct {
	Name  string
	Shape []int
	Data  []float32
}

// stateDict is the serialized form of a module's learnable state —
// parameters and buffers, like PyTorch's state_dict. Buffers are
// included because DDP's correctness story covers them (BatchNorm
// running statistics must survive checkpoint/restore just as they
// survive the rank-0 broadcast).
type stateDict struct {
	Params  []stateEntry
	Buffers []stateEntry
}

// SaveState writes m's parameters and buffers to w: an 8-byte magic,
// a little-endian uint32 format version (StateFormatVersion), then the
// gob-encoded state dict. Typically only rank 0 saves: replicas are
// identical by DDP's guarantee.
func SaveState(w io.Writer, m Module) error {
	var hdr [12]byte
	copy(hdr[:8], stateMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], StateFormatVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: writing state header: %w", err)
	}
	var sd stateDict
	for _, p := range m.Parameters() {
		sd.Params = append(sd.Params, stateEntry{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		})
	}
	for _, b := range m.Buffers() {
		sd.Buffers = append(sd.Buffers, stateEntry{
			Name:  b.Name,
			Shape: append([]int(nil), b.Data.Shape()...),
			Data:  append([]float32(nil), b.Data.Data()...),
		})
	}
	if err := gob.NewEncoder(w).Encode(&sd); err != nil {
		return fmt.Errorf("nn: encoding state: %w", err)
	}
	return nil
}

// LoadState restores parameters and buffers saved by SaveState into m,
// validating names and shapes so a checkpoint cannot silently load into
// the wrong architecture; a mismatch reports which entry disagreed and
// both shapes. Headerless streams written before StateFormatVersion
// existed load transparently; streams from a newer format version are
// rejected.
func LoadState(r io.Reader, m Module) error {
	var hdr [12]byte
	n, err := io.ReadFull(r, hdr[:])
	switch {
	case err == nil && bytes.Equal(hdr[:8], stateMagic[:]):
		if v := binary.LittleEndian.Uint32(hdr[8:]); v > StateFormatVersion {
			return fmt.Errorf("nn: state format version %d is newer than supported %d", v, StateFormatVersion)
		}
	case err == nil || err == io.ErrUnexpectedEOF:
		// No header: a legacy stream. Re-attach the consumed bytes and
		// decode the whole thing as gob.
		r = io.MultiReader(bytes.NewReader(hdr[:n]), r)
	default:
		return fmt.Errorf("nn: reading state header: %w", err)
	}
	var sd stateDict
	if err := gob.NewDecoder(r).Decode(&sd); err != nil {
		return fmt.Errorf("nn: decoding state: %w", err)
	}
	params := m.Parameters()
	if len(params) != len(sd.Params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", len(sd.Params), len(params))
	}
	for i, p := range params {
		if err := checkEntry(sd.Params[i], "parameter", p.Name, p.Value); err != nil {
			return err
		}
	}
	buffers := m.Buffers()
	if len(buffers) != len(sd.Buffers) {
		return fmt.Errorf("nn: checkpoint has %d buffers, model has %d", len(sd.Buffers), len(buffers))
	}
	for i, b := range buffers {
		if err := checkEntry(sd.Buffers[i], "buffer", b.Name, b.Data); err != nil {
			return err
		}
	}
	// Validation passed; commit.
	for i, p := range params {
		copy(p.Value.Data(), sd.Params[i].Data)
	}
	for i, b := range buffers {
		copy(b.Data.Data(), sd.Buffers[i].Data)
	}
	return nil
}

// checkEntry validates one checkpoint entry against the model's tensor
// of the same position, naming the entry and both shapes on mismatch.
func checkEntry(e stateEntry, kind, name string, t *tensor.Tensor) error {
	if e.Name != name {
		return fmt.Errorf("nn: checkpoint %s %q does not match model %s %q", kind, e.Name, kind, name)
	}
	if !slices.Equal(e.Shape, t.Shape()) {
		return fmt.Errorf("nn: %s %q shape mismatch: checkpoint %v, model %v", kind, name, e.Shape, t.Shape())
	}
	if len(e.Data) != t.Size() {
		return fmt.Errorf("nn: %s %q has %d elements in checkpoint, %d in model (shape %v)", kind, name, len(e.Data), t.Size(), t.Shape())
	}
	return nil
}
