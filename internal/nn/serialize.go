package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// stateEntry is one serialized tensor of a state dict.
type stateEntry struct {
	Name  string
	Shape []int
	Data  []float32
}

// stateDict is the serialized form of a module's learnable state —
// parameters and buffers, like PyTorch's state_dict. Buffers are
// included because DDP's correctness story covers them (BatchNorm
// running statistics must survive checkpoint/restore just as they
// survive the rank-0 broadcast).
type stateDict struct {
	Params  []stateEntry
	Buffers []stateEntry
}

// SaveState writes m's parameters and buffers to w (gob encoding).
// Typically only rank 0 saves: replicas are identical by DDP's
// guarantee.
func SaveState(w io.Writer, m Module) error {
	var sd stateDict
	for _, p := range m.Parameters() {
		sd.Params = append(sd.Params, stateEntry{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		})
	}
	for _, b := range m.Buffers() {
		sd.Buffers = append(sd.Buffers, stateEntry{
			Name:  b.Name,
			Shape: append([]int(nil), b.Data.Shape()...),
			Data:  append([]float32(nil), b.Data.Data()...),
		})
	}
	if err := gob.NewEncoder(w).Encode(&sd); err != nil {
		return fmt.Errorf("nn: encoding state: %w", err)
	}
	return nil
}

// LoadState restores parameters and buffers saved by SaveState into m,
// validating names and shapes so a checkpoint cannot silently load into
// the wrong architecture.
func LoadState(r io.Reader, m Module) error {
	var sd stateDict
	if err := gob.NewDecoder(r).Decode(&sd); err != nil {
		return fmt.Errorf("nn: decoding state: %w", err)
	}
	params := m.Parameters()
	if len(params) != len(sd.Params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, model has %d", len(sd.Params), len(params))
	}
	for i, p := range params {
		if err := checkEntry(sd.Params[i], p.Name, p.Value); err != nil {
			return err
		}
	}
	buffers := m.Buffers()
	if len(buffers) != len(sd.Buffers) {
		return fmt.Errorf("nn: checkpoint has %d buffers, model has %d", len(sd.Buffers), len(buffers))
	}
	for i, b := range buffers {
		if err := checkEntry(sd.Buffers[i], b.Name, b.Data); err != nil {
			return err
		}
	}
	// Validation passed; commit.
	for i, p := range params {
		copy(p.Value.Data(), sd.Params[i].Data)
	}
	for i, b := range buffers {
		copy(b.Data.Data(), sd.Buffers[i].Data)
	}
	return nil
}

func checkEntry(e stateEntry, name string, t *tensor.Tensor) error {
	if e.Name != name {
		return fmt.Errorf("nn: checkpoint entry %q does not match model entry %q", e.Name, name)
	}
	if len(e.Data) != t.Size() {
		return fmt.Errorf("nn: %q has %d elements in checkpoint, %d in model", name, len(e.Data), t.Size())
	}
	if len(e.Shape) != t.Dim() {
		return fmt.Errorf("nn: %q rank mismatch", name)
	}
	for d := range e.Shape {
		if e.Shape[d] != t.Dims(d) {
			return fmt.Errorf("nn: %q shape %v does not match model %v", name, e.Shape, t.Shape())
		}
	}
	return nil
}
