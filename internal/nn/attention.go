package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/autograd"
)

// MultiHeadAttention is scaled dot-product self-attention over a single
// sequence [tokens, dim], the layer at the heart of the paper's BERT
// workload. Query/key/value/output projections are Linear layers, so
// the parameter registration order matches the BERT profile in the
// models package (query, key, value, output — the order DDP's bucketing
// reverses).
type MultiHeadAttention struct {
	Query, Key, Value, Output *Linear
	Heads                     int
	dim                       int
}

// NewMultiHeadAttention constructs self-attention with the given model
// dimension and head count; dim must be divisible by heads.
func NewMultiHeadAttention(rng *rand.Rand, name string, dim, heads int) *MultiHeadAttention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: attention dim %d not divisible by %d heads", dim, heads))
	}
	return &MultiHeadAttention{
		Query:  NewLinear(rng, name+".query", dim, dim),
		Key:    NewLinear(rng, name+".key", dim, dim),
		Value:  NewLinear(rng, name+".value", dim, dim),
		Output: NewLinear(rng, name+".output", dim, dim),
		Heads:  heads,
		dim:    dim,
	}
}

// Forward computes softmax(q·kᵀ/√d)·v per head over x [tokens, dim] and
// projects the concatenated heads.
func (m *MultiHeadAttention) Forward(x *autograd.Variable) *autograd.Variable {
	q := m.Query.Forward(x)
	k := m.Key.Forward(x)
	v := m.Value.Forward(x)
	headDim := m.dim / m.Heads
	scale := float32(1 / math.Sqrt(float64(headDim)))
	heads := make([]*autograd.Variable, m.Heads)
	for h := 0; h < m.Heads; h++ {
		lo, hi := h*headDim, (h+1)*headDim
		qh := autograd.SliceCols(q, lo, hi)
		kh := autograd.SliceCols(k, lo, hi)
		vh := autograd.SliceCols(v, lo, hi)
		scores := autograd.MulScalar(autograd.MatMulTransB(qh, kh), scale)
		heads[h] = autograd.MatMul(autograd.SoftmaxRows(scores), vh)
	}
	return m.Output.Forward(autograd.Concat(heads...))
}

// Parameters returns the four projections' parameters in BERT order.
func (m *MultiHeadAttention) Parameters() []*Parameter {
	ps := m.Query.Parameters()
	ps = append(ps, m.Key.Parameters()...)
	ps = append(ps, m.Value.Parameters()...)
	return append(ps, m.Output.Parameters()...)
}

// Buffers returns nil.
func (m *MultiHeadAttention) Buffers() []*Buffer { return nil }

// SetTraining is a no-op.
func (m *MultiHeadAttention) SetTraining(bool) {}

// TransformerBlock is one pre-norm encoder layer: x + attn(LN(x)), then
// x + FFN(LN(x)) with a GELU MLP, the structure of the paper's BERT
// workload.
type TransformerBlock struct {
	AttnNorm *LayerNorm
	Attn     *MultiHeadAttention
	FFNNorm  *LayerNorm
	Up, Down *Linear
}

// NewTransformerBlock constructs an encoder block with the given model
// dimension, head count, and feed-forward width.
func NewTransformerBlock(rng *rand.Rand, name string, dim, heads, ff int) *TransformerBlock {
	return &TransformerBlock{
		AttnNorm: NewLayerNorm(name+".attn_norm", dim),
		Attn:     NewMultiHeadAttention(rng, name+".attention", dim, heads),
		FFNNorm:  NewLayerNorm(name+".ffn_norm", dim),
		Up:       NewLinear(rng, name+".intermediate", dim, ff),
		Down:     NewLinear(rng, name+".output", ff, dim),
	}
}

// Forward applies attention and feed-forward sub-layers with residuals.
func (b *TransformerBlock) Forward(x *autograd.Variable) *autograd.Variable {
	x = autograd.Add(x, b.Attn.Forward(b.AttnNorm.Forward(x)))
	ffn := b.Down.Forward(autograd.Gelu(b.Up.Forward(b.FFNNorm.Forward(x))))
	return autograd.Add(x, ffn)
}

// Parameters returns all sub-layer parameters in registration order.
func (b *TransformerBlock) Parameters() []*Parameter {
	ps := b.AttnNorm.Parameters()
	ps = append(ps, b.Attn.Parameters()...)
	ps = append(ps, b.FFNNorm.Parameters()...)
	ps = append(ps, b.Up.Parameters()...)
	return append(ps, b.Down.Parameters()...)
}

// Buffers returns nil.
func (b *TransformerBlock) Buffers() []*Buffer { return nil }

// SetTraining is a no-op (no dropout in this block).
func (b *TransformerBlock) SetTraining(bool) {}

var (
	_ Module = (*MultiHeadAttention)(nil)
	_ Module = (*TransformerBlock)(nil)
)
