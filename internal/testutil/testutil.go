// Package testutil hosts small shared test fixtures: reproducible
// randomness for randomized tests (SeededRand) and a manually advanced
// clock satisfying elastic.Clock (FakeClock). Production code must not
// import it.
package testutil

import (
	"flag"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// chaosSeed pins every SeededRand in the test binary to one seed, so a
// failure logged with its seed is replayed exactly:
//
//	go test ./internal/comm/ -run TestParallelReduceMatchesSerial -chaos.seed=123
var chaosSeed = flag.Int64("chaos.seed", 0, "fixed seed for randomized tests (0: derive from entropy)")

// SeededRand returns a math/rand generator for a randomized test. The
// seed comes from -chaos.seed when set, otherwise from entropy, and is
// logged through t so a failing run's output always carries the seed
// needed to reproduce it.
func SeededRand(t testing.TB) *rand.Rand {
	t.Helper()
	seed := *chaosSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t.Logf("testutil: seed %d (re-run with -chaos.seed=%d)", seed, seed)
	return rand.New(rand.NewSource(seed))
}

// FakeClock is a deterministic, manually advanced time source
// satisfying elastic.Clock. Sleepers block until Advance moves the
// clock past their deadline; tickers deliver one tick per elapsed
// interval (coalesced to the channel's capacity, like time.Ticker).
// Time never moves on its own, so lease expiry and round timeouts
// become an explicit, schedulable part of a test.
type FakeClock struct {
	mu       sync.Mutex
	now      time.Time
	sleepers []*fakeSleeper
	tickers  []*fakeTicker
}

type fakeSleeper struct {
	deadline time.Time
	ch       chan struct{}
}

type fakeTicker struct {
	interval time.Duration
	next     time.Time
	ch       chan time.Time
	stopped  bool
}

// NewFakeClock returns a FakeClock reading start.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start}
}

// Now returns the clock's current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep blocks the caller until Advance moves the clock at least d
// past the current reading. Sleep(0) and negative sleeps return
// immediately.
func (c *FakeClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	s := &fakeSleeper{deadline: c.now.Add(d), ch: make(chan struct{})}
	c.sleepers = append(c.sleepers, s)
	c.mu.Unlock()
	<-s.ch
}

// Tick returns a channel receiving one tick per elapsed interval of
// fake time, plus a stop function.
func (c *FakeClock) Tick(d time.Duration) (<-chan time.Time, func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTicker{interval: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	return t.ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		t.stopped = true
	}
}

// Advance moves the clock forward by d, waking every sleeper whose
// deadline passed and delivering due ticks.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var wake []*fakeSleeper
	remaining := c.sleepers[:0]
	for _, s := range c.sleepers {
		if !s.deadline.After(c.now) {
			wake = append(wake, s)
		} else {
			remaining = append(remaining, s)
		}
	}
	c.sleepers = remaining
	for _, t := range c.tickers {
		for !t.stopped && !t.next.After(c.now) {
			select {
			case t.ch <- t.next:
			default: // receiver behind: coalesce, like time.Ticker
			}
			t.next = t.next.Add(t.interval)
		}
	}
	c.mu.Unlock()
	for _, s := range wake {
		close(s.ch)
	}
}
