// Package leakcheck fails a test binary when goroutines outlive the
// tests that started them. It snapshots runtime.Stack at the end of a
// run, retries while stragglers settle (goroutines legitimately mid-
// teardown when m.Run returns), and reports anything that persists.
//
// Wire it into a package's TestMain:
//
//	func TestMain(m *testing.M) {
//		leakcheck.Main(m)
//	}
//
// or, when TestMain has its own epilogue, call Check directly after
// m.Run and fail the binary on a non-nil result. The zero-dependency
// design mirrors goleak's approach but stays inside the stdlib: the
// transport, comm, and elastic packages spin up real sockets and
// agent loops, and a forgotten receive loop shows up here long before
// it shows up as a flaky -race failure.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// config controls one Check run.
type config struct {
	timeout time.Duration
	ignores []string
}

// Option customizes Check/Main.
type Option func(*config)

// Timeout bounds how long Check waits for stray goroutines to settle.
// The default is 5 seconds — generous for connection teardown, short
// enough not to mask a genuinely stuck loop for long.
func Timeout(d time.Duration) Option {
	return func(c *config) { c.timeout = d }
}

// IgnoreSubstring allowlists goroutines whose stack trace contains s.
// Use it for long-lived helpers a package starts deliberately (e.g. a
// shared listener owned by the whole test binary).
func IgnoreSubstring(s string) Option {
	return func(c *config) { c.ignores = append(c.ignores, s) }
}

// defaultIgnores matches goroutines owned by the runtime and the
// testing framework itself, which legitimately survive m.Run.
var defaultIgnores = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"runtime.goexit0(",
	"runtime.gc(",
	"runtime.MHeap_Scavenger(",
	"runtime.ReadTrace(",
	"runtime.ensureSigM",
	"os/signal.signal_recv(",
	"os/signal.loop(",
	"signal.Notify",
	"runtime/pprof.",
	// This package's own snapshot goroutine.
	"leakcheck.stacks(",
}

// Main runs the package's tests and exits the binary, turning leaked
// goroutines into a failure when the tests themselves passed. It never
// returns.
func Main(m *testing.M, opts ...Option) {
	os.Exit(Run(m, opts...))
}

// Run is Main without the exit: it returns the code the binary should
// exit with, letting a TestMain with its own epilogue sequence the
// leak check before other teardown.
func Run(m *testing.M, opts ...Option) int {
	code := m.Run()
	if code == 0 {
		if err := Check(opts...); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			return 1
		}
	}
	return code
}

// Check waits for non-allowlisted goroutines to exit and returns an
// error describing any that remain at the deadline.
func Check(opts ...Option) error {
	cfg := config{timeout: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	ignores := append(append([]string(nil), defaultIgnores...), cfg.ignores...)

	deadline := time.Now().Add(cfg.timeout)
	wait := 1 * time.Millisecond
	var leaked []string
	for {
		leaked = leakedGoroutines(ignores)
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		// Exponential backoff keeps the happy path fast without
		// hammering runtime.Stack (it stops the world).
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
	return fmt.Errorf("%d leaked goroutine(s) after %v:\n\n%s",
		len(leaked), cfg.timeout, strings.Join(leaked, "\n\n"))
}

// leakedGoroutines returns the stack stanzas of goroutines not covered
// by the allowlist.
func leakedGoroutines(ignores []string) []string {
	var out []string
	for _, g := range stacks() {
		if strings.HasPrefix(g, "goroutine ") && strings.Contains(g, "[running]") &&
			strings.Contains(g, "leakcheck.leakedGoroutines") {
			continue // the goroutine taking this snapshot
		}
		ignored := false
		for _, s := range ignores {
			if strings.Contains(g, s) {
				ignored = true
				break
			}
		}
		if !ignored {
			out = append(out, strings.TrimSpace(g))
		}
	}
	return out
}

// stacks captures all goroutine stacks and splits them into
// per-goroutine stanzas.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	return strings.Split(string(buf), "\n\n")
}
