package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckPassesWhenQuiet(t *testing.T) {
	if err := Check(Timeout(time.Second)); err != nil {
		t.Fatalf("Check on a quiet binary: %v", err)
	}
}

func TestCheckDetectsBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-release
	}()
	t.Cleanup(func() {
		close(release)
		<-done
	})

	err := Check(Timeout(100 * time.Millisecond))
	if err == nil {
		t.Fatal("Check missed a goroutine parked on a channel")
	}
	if !strings.Contains(err.Error(), "TestCheckDetectsBlockedGoroutine") {
		t.Errorf("error does not name the leaking test:\n%v", err)
	}
}

func TestCheckWaitsForSettling(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// The goroutine is alive when Check starts but exits well inside
	// the timeout; the settle-retry loop must absorb it.
	if err := Check(Timeout(2 * time.Second)); err != nil {
		t.Fatalf("Check did not wait out a settling goroutine: %v", err)
	}
	<-done
}

func TestIgnoreSubstringAllowlists(t *testing.T) {
	release := make(chan struct{})
	done := make(chan struct{})
	go leakyHelper(release, done)
	t.Cleanup(func() {
		close(release)
		<-done
	})

	if err := Check(Timeout(100*time.Millisecond), IgnoreSubstring("leakcheck.leakyHelper")); err != nil {
		t.Fatalf("allowlisted goroutine still reported: %v", err)
	}
	if err := Check(Timeout(100 * time.Millisecond)); err == nil {
		t.Fatal("non-allowlisted run missed the helper goroutine")
	}
}

func leakyHelper(release, done chan struct{}) {
	defer close(done)
	<-release
}
