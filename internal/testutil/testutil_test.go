package testutil

import (
	"sync"
	"testing"
	"time"
)

func TestFakeClockSleepWakesAtDeadline(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		clk.Sleep(100 * time.Millisecond)
		close(done)
	}()
	// Wait for the sleeper to register before moving time, or its
	// deadline would be measured from a later reading.
	for {
		clk.mu.Lock()
		n := len(clk.sleepers)
		clk.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// An advance short of the deadline must not wake the sleeper.
	clk.Advance(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("sleeper woke before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	clk.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("sleeper never woke")
	}
	wg.Wait()
	if got := clk.Now(); got != time.Unix(0, 0).Add(100*time.Millisecond) {
		t.Fatalf("clock reads %v after advances", got)
	}
}

func TestFakeClockTickerDeliversAndCoalesces(t *testing.T) {
	clk := NewFakeClock(time.Unix(0, 0))
	tick, stop := clk.Tick(10 * time.Millisecond)
	defer stop()
	// One large advance covers many intervals but the unread channel
	// coalesces them, exactly like time.Ticker.
	clk.Advance(100 * time.Millisecond)
	select {
	case <-tick:
	default:
		t.Fatal("no tick after advancing past the interval")
	}
	select {
	case <-tick:
		t.Fatal("coalesced ticks were not dropped")
	default:
	}
	// After stop, advances deliver nothing.
	stop()
	clk.Advance(100 * time.Millisecond)
	select {
	case <-tick:
		t.Fatal("tick delivered after stop")
	default:
	}
}

func TestSeededRandIsDeterministicPerSeed(t *testing.T) {
	old := *chaosSeed
	defer func() { *chaosSeed = old }()
	*chaosSeed = 42
	a := SeededRand(t)
	b := SeededRand(t)
	for i := 0; i < 16; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
}
