// Package lint is the project's static-analysis gate: five analyzers
// encoding invariants that ordinary vet checks cannot see because they
// are about THIS codebase's contracts — span lifecycles, store error
// discipline, collective/lock ordering, metric registration, and
// 32-bit atomic alignment. The driver (cmd/ddplint) loads every
// package in the module with the pure go/types stack (no external
// dependencies: go/parser for syntax, go/types with the source
// importer for semantics), runs the analyzers, and exits non-zero on
// any finding, which makes the gate blocking in CI.
//
// # Suppressing a finding
//
// An intentional exception carries a pragma on the offending line or
// the line above:
//
//	//ddplint:ignore <analyzer> <reason>
//
// The reason is mandatory — a pragma without one is itself reported —
// and suppressed findings are counted in the driver's summary line, so
// exceptions stay visible instead of silently accumulating. The
// internal/lint tests additionally fail when the tree has zero
// suppressed findings, which catches pragmas that outlive the code
// they excused.
//
// # The analyzers
//
// spanfinish — every trace span must finish. A *trace.Span obtained
// from Tracer.StartSpan or Span.StartChild must have Finish called on
// every return path of the function that created it (directly, via
// defer, or via a deferred closure), unless ownership escapes: the
// span is returned, stored in a field or composite, passed to a call,
// or sent on a channel. A span that is never finished renders as a
// still-open region in the recovery trace JSON and corrupts
// duration-based SLO accounting; this is the lostcancel shape, but for
// the tracing plane. Spans started conditionally (behind a nil-tracer
// guard) and per-iteration spans in loops are modeled: each loop
// iteration must finish the span it starts.
//
// storeerr — rendezvous-store, transport, and checkpoint errors must
// be checked. Calls to store.Store methods, transport send/recv/abort,
// and checkpoint commit/close paths return errors that encode the
// difference between "the cluster agreed" and "this worker is
// partitioned"; dropping one turns a detectable failure into silent
// divergence. The analyzer flags calls whose error is discarded (as an
// expression statement, a blank assignment, or a go/defer statement)
// and files opened for writing whose Close error is dropped — for
// write-path files, Close is where the kernel reports a failed flush,
// so `defer f.Close()` on a written file loses real errors. Deliberate
// best-effort sites (heartbeats, GC of superseded rendezvous rounds)
// carry pragmas stating why loss is tolerable.
//
// metricstatic — metrics are registered at package init, not per call.
// Registry constructor methods (Counter, CounterVec, Gauge, GaugeVec,
// Histogram, HistogramVec) may appear only in package-level variable
// initializers or init functions. Registration takes the registry
// lock, re-validates the schema, and interns label metadata; doing it
// on a hot path (inside a collective, per step) adds contention
// exactly where the code is supposed to be measuring it, and a
// schema-conflicting re-registration panics at runtime. The
// internal/metrics package itself is exempt (it implements the
// constructors).
//
// lockedcollective — never block on a collective while holding a
// mutex. Group.AllReduce, Broadcast, AllGather, Barrier and
// CompressedAllReduce block until every rank arrives. If rank A holds
// a lock while waiting and rank B needs that lock before it can reach
// the same collective, the whole job deadlocks — a distributed
// lock-ordering inversion that no single-process race detector can
// see. The analyzer tracks sync.Mutex/RWMutex Lock/Unlock (including
// deferred unlocks) within each function and flags collective calls
// issued while any lock is held. The internal/comm package is exempt
// (the implementation synchronizes its own internals).
//
// atomic64align — 64-bit atomics must land on 8-byte-aligned fields.
// On GOARCH=386 (and other 32-bit targets), sync/atomic's 64-bit
// operations fault at runtime when their operand is not 8-byte
// aligned, and struct fields after a 4-byte field are exactly where
// that happens. The analyzer computes each operand field's offset
// under 386 struct layout (resetting at pointer indirections, whose
// targets are allocator-aligned) and flags misaligned ones; the fix is
// field reordering, explicit padding, or the self-aligning
// atomic.Int64/Uint64 types. CI's GOARCH=386 build smoke keeps the
// tree compiling for the architecture this analyzer guards.
//
// # Testing convention
//
// Each analyzer has a seeded-violation fixture package and a clean
// fixture package under testdata/; seeded lines carry a trailing
// `//lint:want <analyzer>` marker. The tests assert an exact
// line-level match in both directions (every marker found, nothing
// unmarked flagged) and that clean fixtures stay silent under the full
// suite, so analyzer false positives and false negatives both fail the
// build. Fixture packages import the real repro packages they lint
// against — they type-check against the actual Span, Store, and Group
// APIs, not stand-ins.
package lint
