package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	loaderInst *Loader
	loaderErr  error
)

// sharedLoader returns one loader per test binary so the module's
// packages (and the standard library) are type-checked once.
func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderInst, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderInst
}

func fixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	pkg, err := sharedLoader(t).LoadDir(filepath.Join("internal", "lint", "testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantLines collects the lines annotated //lint:want <analyzer> in the
// fixture package.
func wantLines(pkg *Package, analyzer string) map[int]bool {
	want := map[int]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:want ")
				if ok && strings.TrimSpace(rest) == analyzer {
					want[pkg.Fset.Position(c.Pos()).Line] = true
				}
			}
		}
	}
	return want
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// TestAnalyzersOnFixtures drives every analyzer over its seeded-bad and
// clean fixture packages: each //lint:want line must produce a finding,
// no finding may appear on an unannotated line, and the clean fixture
// must stay silent.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		bad, ok  string
	}{
		{"spanfinish", "spanfinish_bad", "spanfinish_ok"},
		{"storeerr", "storeerr_bad", "storeerr_ok"},
		{"metricstatic", "metricstatic_bad", "metricstatic_ok"},
		{"lockedcollective", "lockedcollective_bad", "lockedcollective_ok"},
		{"atomic64align", "atomic64align_bad", "atomic64align_ok"},
	}
	for _, tc := range cases {
		a := analyzerByName(t, tc.analyzer)
		t.Run(tc.analyzer+"/seeded", func(t *testing.T) {
			pkg := fixturePkg(t, tc.bad)
			want := wantLines(pkg, tc.analyzer)
			if len(want) == 0 {
				t.Fatalf("fixture %s has no //lint:want %s annotations", tc.bad, tc.analyzer)
			}
			got := map[int][]string{}
			for _, f := range a.Run(pkg) {
				got[f.Pos.Line] = append(got[f.Pos.Line], f.Message)
			}
			for line := range want {
				if len(got[line]) == 0 {
					t.Errorf("%s: expected a %s finding at line %d, got none", tc.bad, tc.analyzer, line)
				}
			}
			for line, msgs := range got {
				if !want[line] {
					t.Errorf("%s: unexpected %s finding at line %d: %s", tc.bad, tc.analyzer, line, msgs[0])
				}
			}
		})
		t.Run(tc.analyzer+"/clean", func(t *testing.T) {
			pkg := fixturePkg(t, tc.ok)
			for _, f := range a.Run(pkg) {
				t.Errorf("%s: unexpected finding: %s", tc.ok, f)
			}
		})
	}
}

// TestCleanFixturesPassFullSuite runs the whole analyzer suite over the
// clean fixtures: an _ok fixture must not trip any analyzer, not just
// its own.
func TestCleanFixturesPassFullSuite(t *testing.T) {
	for _, name := range []string{
		"spanfinish_ok", "storeerr_ok", "metricstatic_ok",
		"lockedcollective_ok", "atomic64align_ok",
	} {
		pkg := fixturePkg(t, name)
		res := Run([]*Package{pkg}, All())
		for _, f := range res.Findings {
			t.Errorf("%s: unexpected finding from full suite: %s", name, f)
		}
	}
}

// TestIgnorePragmas checks the driver's pragma plumbing: a well-formed
// pragma on the line or the line above suppresses exactly its analyzer
// and increments the ignored count; a pragma without a reason is
// reported and suppresses nothing.
func TestIgnorePragmas(t *testing.T) {
	pkg := fixturePkg(t, "pragma")
	res := Run([]*Package{pkg}, All())
	if res.Ignored != 2 {
		t.Errorf("ignored count = %d, want 2", res.Ignored)
	}
	var gotMalformed, gotUnsuppressed bool
	for _, f := range res.Findings {
		switch f.Analyzer {
		case "pragma":
			gotMalformed = true
		case "storeerr":
			// The finding covered by the malformed pragma must survive.
			gotUnsuppressed = true
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if !gotMalformed {
		t.Error("malformed pragma was not reported")
	}
	if !gotUnsuppressed {
		t.Error("finding under a malformed pragma was suppressed")
	}
}

// TestFindingsSortedAndFormatted pins the driver's output contract:
// findings sort by file then line, and String renders the canonical
// file:line: [analyzer] message form CI greps for.
func TestFindingsSortedAndFormatted(t *testing.T) {
	pkg := fixturePkg(t, "storeerr_bad")
	res := Run([]*Package{pkg}, All())
	if len(res.Findings) < 2 {
		t.Fatalf("expected multiple findings, got %d", len(res.Findings))
	}
	for i := 1; i < len(res.Findings); i++ {
		a, b := res.Findings[i-1].Pos, res.Findings[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("findings out of order: %v before %v", a, b)
		}
	}
	s := res.Findings[0].String()
	if !strings.Contains(s, ".go:") || !strings.Contains(s, "[storeerr]") {
		t.Errorf("finding String %q missing file:line or [analyzer]", s)
	}
}

// TestTreeIsClean is the in-repo mirror of the CI gate: the current
// tree must produce zero unsuppressed findings. It also asserts the
// tree's intentional exceptions are actually exercised (ignored > 0),
// so a stale pragma shows up as a failure here when its finding goes
// away.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module analysis in short mode")
	}
	pkgs, err := sharedLoader(t).LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	res := Run(pkgs, All())
	for _, f := range res.Findings {
		t.Errorf("tree not clean: %s", f)
	}
	if res.Ignored == 0 {
		t.Error("expected at least one pragma-suppressed finding on the tree (the documented best-effort sites)")
	}
}
