package lint

import (
	"go/ast"
	"go/types"
)

// LockedCollective reports collective-communication calls made while a
// sync.Mutex or sync.RWMutex acquired in the same function is still
// held. Collectives block on peers; abort paths (comm.AbortGroup, the
// elastic teardown) take locks to reach the group. A collective
// submitted under a mutex that the abort path also needs is a deadlock
// that only manifests during failure recovery — the worst possible
// time.
var LockedCollective = &Analyzer{
	Name: "lockedcollective",
	Doc:  "collectives must not be submitted while holding a mutex acquired in the same function",
	Run:  runLockedCollective,
}

// collectiveNames are the blocking collective entry points on the comm
// package's group types (plus the package-level compressed collective).
var collectiveNames = map[string]bool{
	"AllReduce": true, "Broadcast": true, "AllGather": true,
	"Barrier": true, "CompressedAllReduce": true,
}

func runLockedCollective(pkg *Package) []Finding {
	if hasPathSuffix(pkg.Path, "internal/comm") {
		// The comm package's own internals submit work under the group
		// lock by design (the worker decouples submission from I/O).
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(map[string]bool)
			out = append(out, walkLocked(pkg, fd.Body.List, held)...)
		}
	}
	return out
}

// walkLocked scans stmts in order, tracking which mutexes are held.
// Branch bodies are analyzed with a copy of the held set (a lock taken
// inside a branch is assumed released there), so the analysis stays
// conservative about flagging but never misses the straight-line
// lock-then-collective shape.
func walkLocked(pkg *Package, stmts []ast.Stmt, held map[string]bool) []Finding {
	var out []Finding
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, op, ok := mutexOp(pkg.Info, call); ok {
					switch op {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
			out = append(out, findLockedCollectives(pkg, s, held)...)
		case *ast.DeferStmt:
			if key, op, ok := mutexOp(pkg.Info, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// defer mu.Unlock(): held until return — the held set
				// keeps the key, so everything below stays flagged.
				_ = key
				continue
			}
			out = append(out, findLockedCollectives(pkg, s, held)...)
		case *ast.BlockStmt:
			out = append(out, walkLocked(pkg, s.List, held)...)
		case *ast.IfStmt:
			if s.Init != nil {
				out = append(out, findLockedCollectives(pkg, s.Init, held)...)
			}
			out = append(out, findLockedCollectives(pkg, s.Cond, held)...)
			out = append(out, walkLocked(pkg, s.Body.List, cloneSet(held))...)
			if s.Else != nil {
				out = append(out, walkLocked(pkg, []ast.Stmt{s.Else}, cloneSet(held))...)
			}
		case *ast.ForStmt:
			out = append(out, walkLocked(pkg, s.Body.List, cloneSet(held))...)
		case *ast.RangeStmt:
			out = append(out, walkLocked(pkg, s.Body.List, cloneSet(held))...)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					out = append(out, walkLocked(pkg, cc.Body, cloneSet(held))...)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					out = append(out, walkLocked(pkg, cc.Body, cloneSet(held))...)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					out = append(out, walkLocked(pkg, cc.Body, cloneSet(held))...)
				}
			}
		case *ast.LabeledStmt:
			out = append(out, walkLocked(pkg, []ast.Stmt{s.Stmt}, held)...)
		default:
			out = append(out, findLockedCollectives(pkg, stmt, held)...)
		}
	}
	return out
}

// findLockedCollectives reports every collective call under node while
// held is non-empty. FuncLit bodies are skipped: a closure runs later,
// under its own lock discipline.
func findLockedCollectives(pkg *Package, node ast.Node, held map[string]bool) []Finding {
	if node == nil || len(held) == 0 {
		return nil
	}
	var out []Finding
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg.Info, call)
		if fn == nil || !collectiveNames[fn.Name()] || !pkgHasSuffix(fn, "internal/comm") {
			return true
		}
		for key := range held {
			out = append(out, pkg.finding("lockedcollective", call,
				"%s called while %s is held; a blocked collective under this mutex deadlocks the abort path — release the lock first",
				fn.Name(), key))
			break
		}
		return true
	})
	return out
}

// mutexOp reports whether call is a Lock/Unlock-family method on a
// sync.Mutex or sync.RWMutex, returning a stable key for the mutex
// expression.
func mutexOp(info *types.Info, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); !isNamed ||
			(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
			return "", "", false
		}
	}
	return exprString(sel.X), sel.Sel.Name, true
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}
