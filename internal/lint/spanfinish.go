package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanFinish reports trace spans that are not Finished on every return
// path of the function that started them. An unfinished span renders
// with a zero End, its phases never close, and the phase-tiling
// invariant the recovery dashboards depend on silently breaks — the
// lostcancel bug shape, for spans.
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc:  "a trace.Span started in a function must be Finished on all return paths",
	Run:  runSpanFinish,
}

func runSpanFinish(pkg *Package) []Finding {
	if hasPathSuffix(pkg.Path, "internal/trace") {
		// The trace package constructs spans internally.
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Each function body — the declaration's and every closure's
			// — is analyzed as its own scope: a span must be finished by
			// the function that started it (or provably escape).
			for _, body := range funcBodies(fd.Body) {
				out = append(out, checkSpanBody(pkg, body)...)
			}
		}
	}
	return out
}

// funcBodies returns body plus the bodies of all function literals
// nested within it.
func funcBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	bodies := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			bodies = append(bodies, fl.Body)
		}
		return true
	})
	return bodies
}

// inspectShallow walks root without descending into nested function
// literals (their bodies are separate analysis scopes).
func inspectShallow(root ast.Node, f func(ast.Node) bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		return f(n)
	})
}

// spanStarter reports whether call starts a span that its caller owns:
// (*trace.Tracer).StartSpan or (*trace.Span).StartChild. Phase children
// are excluded — the parent's Finish closes them by design.
func spanStarter(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || !pkgHasSuffix(fn, "internal/trace") {
		return false
	}
	return fn.Name() == "StartSpan" || fn.Name() == "StartChild"
}

func checkSpanBody(pkg *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	inspectShallow(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			// t.StartSpan("x") with the result dropped: never finishable.
			if call, ok := s.X.(*ast.CallExpr); ok && spanStarter(pkg.Info, call) {
				out = append(out, pkg.finding("spanfinish", call,
					"span started and discarded; it can never be Finished"))
			}
		case *ast.AssignStmt:
			if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
				return true
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok || !spanStarter(pkg.Info, call) {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				out = append(out, pkg.finding("spanfinish", call,
					"span started and discarded; it can never be Finished"))
				return true
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				obj = pkg.Info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if spanEscapes(pkg.Info, body, obj, s) {
				return true // ownership transferred; not this function's job
			}
			out = append(out, checkSpanPaths(pkg, body, s, obj)...)
		}
		return true
	})
	return out
}

// spanEscapes reports whether the span variable's ownership leaves the
// function: returned, stored into a field/global/map/slice, passed to
// another function, sent on a channel, or captured by a closure that
// does more with it than Finish it.
func spanEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object, def *ast.AssignStmt) bool {
	escapes := false
	inspectShallow(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				if usesObj(info, r, obj) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			if s == def {
				return true
			}
			for i, r := range s.Rhs {
				if usesObj(info, r, obj) {
					// Reassignment to another plain local stays local;
					// anything else (field, index, global) escapes.
					if i < len(s.Lhs) {
						if id, ok := s.Lhs[i].(*ast.Ident); ok && info.ObjectOf(id) != nil && !isField(info, s.Lhs[i]) {
							continue
						}
					}
					escapes = true
				}
			}
		case *ast.CallExpr:
			// sp.Method(...) keeps ownership; sp as an argument gives it
			// away.
			for _, arg := range s.Args {
				if usesObj(info, arg, obj) {
					escapes = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range s.Elts {
				if usesObj(info, el, obj) {
					escapes = true
				}
				if kv, ok := el.(*ast.KeyValueExpr); ok && usesObj(info, kv.Value, obj) {
					escapes = true
				}
			}
		case *ast.SendStmt:
			if usesObj(info, s.Value, obj) {
				escapes = true
			}
		case *ast.FuncLit:
			// inspectShallow only yields the root; nested literals are
			// reached here explicitly. A closure that merely finishes
			// the span is the deferred-cleanup idiom, handled by the
			// path analysis; any other capture escapes.
			if usesObjAnywhere(info, s.Body, obj) && !closureOnlyFinishes(info, s, obj) {
				escapes = true
			}
		}
		return true
	})
	return escapes
}

// usesObj reports whether expr is (modulo parens) exactly an identifier
// resolving to obj.
func usesObj(info *types.Info, expr ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && info.ObjectOf(id) == obj
}

// usesObjAnywhere reports whether any identifier under n resolves to obj.
func usesObjAnywhere(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isField reports whether expr selects a struct field (so assigning the
// span into it escapes the function).
func isField(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}

// closureOnlyFinishes reports whether the func literal's only uses of
// obj are receiver positions of .Finish() calls.
func closureOnlyFinishes(info *types.Info, fl *ast.FuncLit, obj types.Object) bool {
	ok := true
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.ObjectOf(id) != obj {
			return true
		}
		ok = ok && identIsFinishReceiver(fl.Body, id)
		return true
	})
	return ok
}

// identIsFinishReceiver reports whether id appears as the receiver of a
// .Finish() call somewhere under root.
func identIsFinishReceiver(root ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Finish" {
			return true
		}
		if inner, ok := ast.Unparen(sel.X).(*ast.Ident); ok && inner == id {
			found = true
		}
		return !found
	})
	return found
}

// checkSpanPaths walks the statements after the span's definition and
// reports every exit (return or function end) the span can reach
// unfinished.
func checkSpanPaths(pkg *Package, body *ast.BlockStmt, def *ast.AssignStmt, obj types.Object) []Finding {
	var out []Finding
	report := func(pos token.Pos, what string) {
		out = append(out, Finding{
			Pos:      pkg.Fset.Position(pos),
			Analyzer: "spanfinish",
			Message: "span " + obj.Name() + " may reach this " + what +
				" without Finish; call Finish on every exit path (or defer it)",
		})
	}
	w := &spanWalker{pkg: pkg, obj: obj, def: def, report: report}
	finished, terminated := w.stmts(body.List, false)
	if w.started && !finished && !terminated {
		report(body.Rbrace, "function end")
	}
	return out
}

// vacuous reports whether a branch can be treated as trivially finished
// because the span did not exist on paths that skip it: the span is
// defined inside some other branch and had not started before the
// statement.
func (w *spanWalker) vacuous(startedBefore bool, branch ast.Node, f bool) bool {
	if !startedBefore && !containsNode(branch, w.def) {
		return true
	}
	return f
}

type spanWalker struct {
	pkg     *Package
	obj     types.Object
	def     *ast.AssignStmt
	started bool
	report  func(token.Pos, string)
}

// isFinishCall reports whether call finishes the tracked span.
func (w *spanWalker) isFinishCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Finish" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.pkg.Info.ObjectOf(id) == w.obj
}

// deferFinishes reports whether the defer statement finishes the span,
// directly or via a closure whose body finishes it unconditionally.
func (w *spanWalker) deferFinishes(s *ast.DeferStmt) bool {
	if w.isFinishCall(s.Call) {
		return true
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		sub := &spanWalker{pkg: w.pkg, obj: w.obj, started: true, report: func(token.Pos, string) {}}
		finished, _ := sub.stmts(fl.Body.List, false)
		return finished
	}
	return false
}

// stmts walks a statement list. The first result means the span is
// certainly Finished (or a finishing defer is armed) when control falls
// off the end; the second means control cannot fall off the end.
func (w *spanWalker) stmts(list []ast.Stmt, finished bool) (bool, bool) {
	for _, stmt := range list {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if s == w.def {
				// The span's lifetime starts (or restarts) here.
				w.started = true
				finished = false
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if w.started && w.isFinishCall(call) {
					finished = true
				} else if isPanicOrExit(w.pkg.Info, call) {
					return finished, true
				}
			}
		case *ast.DeferStmt:
			if w.started && w.deferFinishes(s) {
				finished = true
			}
		case *ast.ReturnStmt:
			if w.started && !finished {
				w.report(s.Pos(), "return")
			}
			return finished, true
		case *ast.BlockStmt:
			var term bool
			finished, term = w.stmts(s.List, finished)
			if term {
				return finished, true
			}
		case *ast.IfStmt:
			startedBefore := w.started
			fBody, tBody := w.stmts(s.Body.List, finished)
			fBody = w.vacuous(startedBefore, s.Body, fBody)
			fElse, tElse := finished, false
			if s.Else != nil {
				fElse, tElse = w.stmts([]ast.Stmt{s.Else}, finished)
				fElse = w.vacuous(startedBefore, s.Else, fElse)
			} else if !startedBefore {
				// No else: paths skipping the body never started the span.
				fElse = true
			}
			switch {
			case tBody && tElse:
				return finished, true
			case tBody:
				finished = fElse
			case tElse:
				finished = fBody
			default:
				finished = fBody && fElse
			}
		case *ast.ForStmt:
			finished = w.loop(s, s.Body, finished)
		case *ast.RangeStmt:
			finished = w.loop(s, s.Body, finished)
		case *ast.SwitchStmt:
			finished = w.caseClauses(s.Body.List, finished, false)
		case *ast.TypeSwitchStmt:
			finished = w.caseClauses(s.Body.List, finished, false)
		case *ast.SelectStmt:
			// A select always executes exactly one of its cases.
			finished = w.caseClauses(s.Body.List, finished, true)
		case *ast.LabeledStmt:
			var term bool
			finished, term = w.stmts([]ast.Stmt{s.Stmt}, finished)
			if term {
				return finished, true
			}
		case *ast.GoStmt:
			// A goroutine's Finish is not ordered before this
			// function's return; it does not count.
		}
	}
	return finished, false
}

// loop analyzes a for/range statement. A span defined inside the loop
// body lives per iteration: it must be finished by the time the
// iteration ends (else the next iteration leaks an open span), and the
// code after the loop starts with a clean slate. A span defined before
// the loop keeps its pre-loop state — the body may run zero times.
func (w *spanWalker) loop(stmt ast.Stmt, body *ast.BlockStmt, finished bool) bool {
	if !w.started && containsNode(stmt, w.def) {
		f, t := w.stmts(body.List, false)
		if w.started && !f && !t {
			w.report(body.Rbrace, "loop iteration end")
		}
		// Every iteration was required to settle the span.
		return true
	}
	w.stmts(body.List, finished)
	return finished
}

// caseClauses analyzes switch/select cases; the span counts as finished
// after the statement only when every clause finishes it and — for
// switches — a default exists (otherwise no clause may run at all).
func (w *spanWalker) caseClauses(clauses []ast.Stmt, finished, exhaustive bool) bool {
	if finished || len(clauses) == 0 {
		return finished
	}
	startedBefore := w.started
	all := true
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				exhaustive = true
			}
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		f, t := w.stmts(body, finished)
		f = w.vacuous(startedBefore, c, f)
		if !f || (t && !f) {
			all = false
		}
	}
	if !startedBefore && !w.started {
		// Nothing started anywhere in the statement; state unchanged.
		return finished
	}
	return all && exhaustive
}

// containsNode reports whether target is within root.
func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// isPanicOrExit reports whether the call never returns: panic, or the
// os.Exit / log.Fatal family.
func isPanicOrExit(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "os":
		return fn.Name() == "Exit"
	case "log":
		switch fn.Name() {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	}
	return false
}
