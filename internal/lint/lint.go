package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	// Pos locates the finding (file:line:col).
	Pos token.Position
	// Analyzer is the name of the analyzer that produced it, and the
	// name an ignore pragma must reference to suppress it.
	Analyzer string
	// Message describes the violated invariant at this site.
	Message string
}

// String renders the finding in the canonical file:line: [analyzer]
// message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one project-invariant check run over a package.
type Analyzer struct {
	// Name is the analyzer's identifier (used in output and pragmas).
	Name string
	// Doc is a one-line description of the invariant it enforces.
	Doc string
	// Run reports every violation in pkg. Findings are returned raw;
	// the driver applies ignore pragmas.
	Run func(pkg *Package) []Finding
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		Atomic64Align,
		LockedCollective,
		MetricStatic,
		SpanFinish,
		StoreErr,
	}
}

// IgnorePragma is the comment directive that suppresses a finding:
//
//	//ddplint:ignore <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory — an ignore without a stated reason is itself
// reported.
const IgnorePragma = "//ddplint:ignore"

// Result is the outcome of a driver run.
type Result struct {
	// Findings are the kept (unsuppressed) findings, sorted by position.
	Findings []Finding
	// Ignored counts findings suppressed by ignore pragmas.
	Ignored int
	// Packages counts the packages analyzed.
	Packages int
}

// Run executes every analyzer over every package, filters findings
// through //ddplint:ignore pragmas, and returns the kept findings
// sorted by position plus the suppressed count. Malformed pragmas
// (missing analyzer name or reason) are reported as findings from the
// pseudo-analyzer "pragma".
func Run(pkgs []*Package, analyzers []*Analyzer) Result {
	var all []Finding
	ignored := 0
	for _, pkg := range pkgs {
		pragmas, bad := collectPragmas(pkg)
		all = append(all, bad...)
		for _, a := range analyzers {
			for _, f := range a.Run(pkg) {
				if pragmas.suppresses(f) {
					ignored++
					continue
				}
				all = append(all, f)
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return Result{Findings: all, Ignored: ignored, Packages: len(pkgs)}
}

// pragmaKey identifies one ignore site: a file line and the analyzer it
// silences.
type pragmaKey struct {
	file     string
	line     int
	analyzer string
}

type pragmaSet map[pragmaKey]bool

// suppresses reports whether a pragma covers the finding: same file,
// matching analyzer, on the finding's line or the line above.
func (s pragmaSet) suppresses(f Finding) bool {
	return s[pragmaKey{f.Pos.Filename, f.Pos.Line, f.Analyzer}] ||
		s[pragmaKey{f.Pos.Filename, f.Pos.Line - 1, f.Analyzer}]
}

// collectPragmas scans a package's comments for ignore pragmas,
// returning the well-formed set and a finding per malformed one.
func collectPragmas(pkg *Package) (pragmaSet, []Finding) {
	set := make(pragmaSet)
	var bad []Finding
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePragma)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Pos:      pos,
						Analyzer: "pragma",
						Message:  fmt.Sprintf("malformed ignore pragma %q: want %s <analyzer> <reason>", c.Text, IgnorePragma),
					})
					continue
				}
				set[pragmaKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return set, bad
}

// finding builds a Finding at node's position.
func (p *Package) finding(analyzer string, node ast.Node, format string, args ...any) Finding {
	return Finding{
		Pos:      p.Fset.Position(node.Pos()),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}

// ---- shared type-resolution helpers ----------------------------------------

// pkgHasSuffix reports whether obj is declared in a package whose
// import path ends in suffix (matching by suffix keeps the analyzers
// independent of the module name).
func pkgHasSuffix(obj types.Object, suffix string) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// calleeOf resolves the called function or method object of a call
// expression, or nil when the "call" is a conversion, builtin, or an
// indirect call through a function value.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Func.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// returnsError reports whether the call's last result is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// rootIdentObj returns the object of the leftmost identifier of a
// selector chain (the variable `s` in s.mu.Lock()), or nil when the
// base is not a plain identifier.
func rootIdentObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if o := info.Uses[e]; o != nil {
				return o
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// exprString renders a (small) expression for use in messages and lock
// identity keys.
func exprString(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "?"
	}
}
