// Package fixture seeds spanfinish violations: spans that can reach an
// exit unfinished.
package fixture

import "repro/internal/trace"

func cond() bool { return true }

func leakOnEarlyReturn(t *trace.Tracer) {
	sp := t.StartSpan("work")
	if cond() {
		return //lint:want spanfinish
	}
	sp.Finish()
}

func leakAtFunctionEnd(t *trace.Tracer) {
	sp := t.StartSpan("work")
	sp.Phase("setup")
} //lint:want spanfinish

func discardedSpan(t *trace.Tracer) {
	t.StartSpan("never-finishable") //lint:want spanfinish
}

func discardedChild(sp *trace.Span) {
	sp.StartChild("never-finishable") //lint:want spanfinish
}

func leakPerIteration(t *trace.Tracer) {
	for i := 0; i < 3; i++ {
		sp := t.StartSpan("iter")
		sp.Phase("step")
	} //lint:want spanfinish
}

func leakInOneBranch(t *trace.Tracer, n int) {
	sp := t.StartSpan("work")
	switch n {
	case 0:
		sp.Finish()
	default:
		sp.Phase("other")
	}
} //lint:want spanfinish

func childLeaks(t *trace.Tracer) {
	root := t.StartSpan("root")
	defer root.Finish()
	child := root.StartChild("side")
	if cond() {
		return //lint:want spanfinish
	}
	child.Finish()
}

// treeHalfLeaks: the double-tree pairing spans one child per tree;
// finishing only the first leaks the second.
func treeHalfLeaks(t *trace.Tracer) {
	root := t.StartSpan("doubletree")
	defer root.Finish()
	t1 := root.StartChild("tree1")
	t1.Finish()
	root.StartChild("tree2") //lint:want spanfinish
}

// leaderRingAbortLeaks: bailing out of the compressed leader ring
// before the fallback path leaves the phase span open.
func leaderRingAbortLeaks(t *trace.Tracer, compressed bool) {
	sp := t.StartSpan("leader-ring")
	if !compressed {
		return //lint:want spanfinish
	}
	sp.Phase("compress")
	sp.Finish()
}
