// Package fixture seeds spanfinish violations: spans that can reach an
// exit unfinished.
package fixture

import "repro/internal/trace"

func cond() bool { return true }

func leakOnEarlyReturn(t *trace.Tracer) {
	sp := t.StartSpan("work")
	if cond() {
		return //lint:want spanfinish
	}
	sp.Finish()
}

func leakAtFunctionEnd(t *trace.Tracer) {
	sp := t.StartSpan("work")
	sp.Phase("setup")
} //lint:want spanfinish

func discardedSpan(t *trace.Tracer) {
	t.StartSpan("never-finishable") //lint:want spanfinish
}

func discardedChild(sp *trace.Span) {
	sp.StartChild("never-finishable") //lint:want spanfinish
}

func leakPerIteration(t *trace.Tracer) {
	for i := 0; i < 3; i++ {
		sp := t.StartSpan("iter")
		sp.Phase("step")
	} //lint:want spanfinish
}

func leakInOneBranch(t *trace.Tracer, n int) {
	sp := t.StartSpan("work")
	switch n {
	case 0:
		sp.Finish()
	default:
		sp.Phase("other")
	}
} //lint:want spanfinish

func childLeaks(t *trace.Tracer) {
	root := t.StartSpan("root")
	defer root.Finish()
	child := root.StartChild("side")
	if cond() {
		return //lint:want spanfinish
	}
	child.Finish()
}
