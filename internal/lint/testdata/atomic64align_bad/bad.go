// Package fixture seeds atomic64align violations: 64-bit atomics on
// fields that land at 4-byte offsets under GOARCH=386 layout.
package fixture

import "sync/atomic"

type counters struct {
	flag uint32
	ops  uint64 // offset 4 on 386
}

func bump(c *counters) {
	atomic.AddUint64(&c.ops, 1) //lint:want atomic64align
}

type stats struct {
	ready int32
	total int64 // offset 4 on 386
	last  int64 // offset 12 on 386
}

func record(s *stats, v int64) {
	atomic.StoreInt64(&s.total, v)      //lint:want atomic64align
	old := atomic.SwapInt64(&s.last, v) //lint:want atomic64align
	_ = old
	_ = atomic.LoadInt64(&s.total)            //lint:want atomic64align
	atomic.CompareAndSwapInt64(&s.last, 0, v) //lint:want atomic64align
}

type outer struct {
	tag   uint32
	inner struct {
		n uint64 // offset 4 (0 within inner, inner at 4)
	}
}

func nested(o *outer) {
	atomic.AddUint64(&o.inner.n, 1) //lint:want atomic64align
}
