// Package fixture holds span usage the spanfinish analyzer must accept:
// every span is finished on all paths, deferred, or hands ownership
// away.
package fixture

import "repro/internal/trace"

func cond() bool { return true }

func deferredFinish(t *trace.Tracer) {
	sp := t.StartSpan("work")
	defer sp.Finish()
	if cond() {
		return
	}
	sp.Phase("tail")
}

func finishOnAllPaths(t *trace.Tracer) {
	sp := t.StartSpan("work")
	if cond() {
		sp.Finish()
		return
	}
	sp.Phase("tail")
	sp.Finish()
}

func deferredClosureFinish(t *trace.Tracer) {
	sp := t.StartSpan("work")
	defer func() {
		sp.Finish()
	}()
	sp.Phase("tail")
}

func ownershipReturned(t *trace.Tracer) *trace.Span {
	sp := t.StartSpan("work")
	sp.Phase("setup")
	return sp
}

type holder struct {
	span *trace.Span
}

func ownershipStored(t *trace.Tracer, h *holder) {
	sp := t.StartSpan("work")
	h.span = sp
}

func ownershipPassed(t *trace.Tracer, sink func(*trace.Span)) {
	sp := t.StartSpan("work")
	sink(sp)
}

// conditionalStart mirrors the elastic agent: the span is only started
// when a tracer is configured, and Finish (a nil-receiver no-op)
// runs on every exit.
func conditionalStart(t *trace.Tracer) error {
	var root *trace.Span
	if t != nil {
		root = t.StartSpan("recovery")
	}
	root.Phase("teardown")
	if cond() {
		root.Finish()
		return nil
	}
	root.Phase("rebuild")
	root.Finish()
	return nil
}

func perIterationFinish(t *trace.Tracer) {
	for i := 0; i < 3; i++ {
		sp := t.StartSpan("iter")
		sp.Phase("step")
		sp.Finish()
	}
}

func selectAllCasesFinish(t *trace.Tracer, ch <-chan int) {
	sp := t.StartSpan("wait")
	select {
	case <-ch:
		sp.Finish()
	default:
		sp.Finish()
	}
}

// phasesAreNotTracked: Phase children are closed by the parent's
// Finish; only StartSpan/StartChild results are owned.
func phasesAreNotTracked(t *trace.Tracer) {
	sp := t.StartSpan("work")
	defer sp.Finish()
	sp.Phase("one")
	sp.Phase("two")
}

// phasePerLevel mirrors the N-level hierarchical schedule: one span,
// a Phase per topology level, one Finish.
func phasePerLevel(t *trace.Tracer, levels int) {
	sp := t.StartSpan("hierarchical")
	defer sp.Finish()
	for l := 0; l < levels; l++ {
		sp.Phase("reduce-level")
	}
	sp.Phase("leader-ring")
	for l := levels - 1; l >= 0; l-- {
		sp.Phase("broadcast-level")
	}
}

// treeHalvesBothFinish: the double-tree pairing's per-tree children
// each finish inside the loop iteration that started them.
func treeHalvesBothFinish(t *trace.Tracer) {
	root := t.StartSpan("doubletree")
	defer root.Finish()
	for _, name := range []string{"tree1", "tree2"} {
		child := root.StartChild(name)
		child.Phase("reduce")
		child.Finish()
	}
}
