// Package fixture holds lock/collective interleavings the
// lockedcollective analyzer must accept: the mutex is released before
// the collective is submitted, or guards unrelated state.
package fixture

import (
	"sync"

	"repro/internal/comm"
)

type trainer struct {
	mu    sync.Mutex
	pg    comm.ProcessGroup
	steps int
}

func (t *trainer) unlockBeforeCollective(data []float32) error {
	t.mu.Lock()
	t.steps++
	pg := t.pg
	t.mu.Unlock()
	return pg.AllReduce(data, comm.Sum).Wait()
}

func (t *trainer) collectiveThenLock(data []float32) error {
	err := t.pg.Barrier().Wait()
	t.mu.Lock()
	t.steps++
	t.mu.Unlock()
	return err
}

func (t *trainer) lockOnlyInBranch(data []float32, record bool) error {
	if record {
		t.mu.Lock()
		t.steps++
		t.mu.Unlock()
	}
	return t.pg.AllReduce(data, comm.Avg).Wait()
}

// closureRunsLater: submitting from a callback is the callback's
// concern; the literal does not run under this function's lock scope.
func (t *trainer) closureRunsLater(data []float32) func() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.steps++
	return func() error {
		return t.pg.AllReduce(data, comm.Sum).Wait()
	}
}
