// Package fixture holds lock/collective interleavings the
// lockedcollective analyzer must accept: the mutex is released before
// the collective is submitted, or guards unrelated state.
package fixture

import (
	"sync"

	"repro/internal/comm"
)

type trainer struct {
	mu    sync.Mutex
	pg    comm.ProcessGroup
	steps int
}

func (t *trainer) unlockBeforeCollective(data []float32) error {
	t.mu.Lock()
	t.steps++
	pg := t.pg
	t.mu.Unlock()
	return pg.AllReduce(data, comm.Sum).Wait()
}

func (t *trainer) collectiveThenLock(data []float32) error {
	err := t.pg.Barrier().Wait()
	t.mu.Lock()
	t.steps++
	t.mu.Unlock()
	return err
}

func (t *trainer) lockOnlyInBranch(data []float32, record bool) error {
	if record {
		t.mu.Lock()
		t.steps++
		t.mu.Unlock()
	}
	return t.pg.AllReduce(data, comm.Avg).Wait()
}

// closureRunsLater: submitting from a callback is the callback's
// concern; the literal does not run under this function's lock scope.
func (t *trainer) closureRunsLater(data []float32) func() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.steps++
	return func() error {
		return t.pg.AllReduce(data, comm.Sum).Wait()
	}
}

// leaderRingSnapshot mirrors the compressed leader ring's residual
// handling: state is snapshotted under the lock, the collective runs
// after release.
func (t *trainer) leaderRingSnapshot(data, residual []float32) error {
	t.mu.Lock()
	res := make([]float32, len(residual))
	copy(res, residual)
	pg := t.pg
	t.mu.Unlock()
	return comm.CompressedAllReduce(pg, data, comm.Sum, comm.Float16Codec{}, res).Wait()
}

// levelsReadThenReduce: reading topology shape under the lock is fine;
// the per-level collectives run unlocked.
func (t *trainer) levelsReadThenReduce(topo *comm.Topology, data []float32) error {
	t.mu.Lock()
	levels := topo.Levels()
	t.mu.Unlock()
	for l := 0; l < levels; l++ {
		if err := t.pg.AllReduce(data, comm.Sum).Wait(); err != nil {
			return err
		}
	}
	return nil
}
