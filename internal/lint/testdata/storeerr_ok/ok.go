// Package fixture holds store/transport/ckpt call sites the storeerr
// analyzer must accept: every error is checked or propagated, and
// read-only file closes stay deferrable.
package fixture

import (
	"fmt"
	"os"

	"repro/internal/ckpt"
	"repro/internal/store"
	"repro/internal/transport"
)

func checkedStore(st store.Store) error {
	if err := st.Set("k", nil); err != nil {
		return err
	}
	v, err := st.Get("k")
	if err != nil {
		return err
	}
	_ = v
	n, err := st.Add("n", 1)
	if err != nil {
		return fmt.Errorf("add: %w", err)
	}
	_ = n
	return st.Delete("k")
}

func checkedTransport(m transport.Mesh) error {
	if err := m.Send(1, 7, nil); err != nil {
		return err
	}
	data, err := m.Recv(1, 7)
	if err != nil {
		return err
	}
	_ = data
	return nil
}

func checkedCheckpoint(w *ckpt.AsyncWriter) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Close()
}

func explicitCloseWrittenFile(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // write error already reported; close is cleanup
		return err
	}
	return f.Close()
}

// readOnlyDeferClose: Close on a file opened read-only has no write to
// lose; deferring it is fine.
func readOnlyDeferClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}
