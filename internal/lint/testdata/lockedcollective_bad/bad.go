// Package fixture seeds lockedcollective violations: collectives
// submitted while a mutex acquired in the same function is held.
package fixture

import (
	"sync"

	"repro/internal/comm"
)

type trainer struct {
	mu sync.Mutex
	pg comm.ProcessGroup
}

func (t *trainer) deferredUnlock(data []float32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pg.AllReduce(data, comm.Sum).Wait() //lint:want lockedcollective
}

func (t *trainer) betweenLockAndUnlock() error {
	t.mu.Lock()
	err := t.pg.Barrier().Wait() //lint:want lockedcollective
	t.mu.Unlock()
	return err
}

func readLocked(pg comm.ProcessGroup, mu *sync.RWMutex, data, residual []float32) {
	mu.RLock()
	defer mu.RUnlock()
	comm.CompressedAllReduce(pg, data, comm.Sum, comm.Float16Codec{}, residual) //lint:want lockedcollective
}

func insideBranch(t *trainer, data []float32, hot bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if hot {
		t.pg.Broadcast(data, 0) //lint:want lockedcollective
	}
}

// hierarchicalPhases: the N-level schedule is a loop of collectives;
// holding a mutex across the per-level phase loop is the same
// recovery deadlock, repeated once per topology level.
func hierarchicalPhases(t *trainer, topo *comm.Topology, data []float32) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for l := 0; l < topo.Levels(); l++ {
		if err := t.pg.AllReduce(data, comm.Sum).Wait(); err != nil { //lint:want lockedcollective
			return err
		}
	}
	return nil
}

// doubleTreeHalves: the double-tree pairing submits two half-payload
// collectives; each is a separate blocking submission under the lock.
func doubleTreeHalves(t *trainer, data []float32) {
	t.mu.Lock()
	t.pg.AllReduce(data[:len(data)/2], comm.Sum) //lint:want lockedcollective
	t.pg.AllReduce(data[len(data)/2:], comm.Sum) //lint:want lockedcollective
	t.mu.Unlock()
}
