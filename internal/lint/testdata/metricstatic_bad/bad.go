// Package fixture seeds metricstatic violations: instruments
// constructed per call instead of once at package level.
package fixture

import "repro/internal/metrics"

func observePerCall(d float64) {
	h := metrics.Default().Histogram( //lint:want metricstatic
		"fixture_bad_duration_seconds", "leaks a registry entry per call", nil)
	h.Observe(d)
}

func counterPerCall(r *metrics.Registry) {
	r.Counter("fixture_bad_total", "leaks a registry entry per call").Inc() //lint:want metricstatic
}

func vecPerCall(r *metrics.Registry, rank string) {
	v := r.GaugeVec("fixture_bad_rank", "leaks a registry entry per call", "rank") //lint:want metricstatic
	v.With(rank).Set(1)
}

type server struct {
	r *metrics.Registry
}

func (s *server) handle() {
	s.r.CounterVec("fixture_bad_requests_total", "per-call vec construction", "code") //lint:want metricstatic
}
