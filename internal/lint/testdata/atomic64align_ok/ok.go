// Package fixture holds 64-bit atomic usage the atomic64align analyzer
// must accept: fields at 8-aligned offsets, self-aligning atomic types,
// and non-field words.
package fixture

import "sync/atomic"

type firstField struct {
	ops  uint64 // offset 0: aligned by the allocator's first-word rule
	flag uint32
}

func bump(c *firstField) {
	atomic.AddUint64(&c.ops, 1)
}

type padded struct {
	flag uint32
	_    uint32 // explicit pad keeps the counter 8-aligned on 386
	ops  uint64 // offset 8
}

func bumpPadded(c *padded) {
	atomic.AddUint64(&c.ops, 1)
}

type selfAligning struct {
	flag uint32
	ops  atomic.Uint64 // carries its own align64 marker on every GOARCH
}

func bumpSelf(c *selfAligning) {
	c.ops.Add(1)
}

var global uint64

func bumpGlobal() {
	// Package-level 64-bit words are always 8-aligned.
	atomic.AddUint64(&global, 1)
}

func bumpLocal() int64 {
	var n int64
	// Not a struct field: the compiler aligns escaping locals.
	atomic.AddInt64(&n, 1)
	return atomic.LoadInt64(&n)
}

type ptrHop struct {
	tag  uint32
	next *firstField
}

func bumpThroughPointer(p *ptrHop) {
	// next points at its own allocation; ops is at offset 0 there.
	atomic.AddUint64(&p.next.ops, 1)
}
