// Package fixture holds metrics usage the metricstatic analyzer must
// accept: instruments are package-level statics (or built in init),
// with label Vecs as the per-call dynamic axis.
package fixture

import "repro/internal/metrics"

var (
	mRequests = metrics.Default().CounterVec(
		"fixture_ok_requests_total", "requests by code", "code")
	mLatency = metrics.Default().Histogram(
		"fixture_ok_latency_seconds", "request latency", nil)
)

var mInInit metrics.Gauge

func init() {
	mInInit = metrics.Default().Gauge("fixture_ok_up", "set from init")
	mInInit.Set(1)
}

func observe(code string, d float64) {
	// With on a package-level Vec is the sanctioned dynamic path.
	mRequests.With(code).Inc()
	mLatency.Observe(d)
}

func snapshot() float64 {
	return mLatency.Snapshot().Mean()
}
