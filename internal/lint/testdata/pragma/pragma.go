// Package fixture exercises the driver's //ddplint:ignore handling:
// well-formed pragmas suppress findings (and are counted), malformed
// ones are themselves reported.
package fixture

import "repro/internal/store"

func suppressedAbove(st store.Store) {
	//ddplint:ignore storeerr fixture: best-effort write, loss is acceptable here
	st.Set("k", nil)
}

func suppressedSameLine(st store.Store) {
	st.Delete("k") //ddplint:ignore storeerr fixture: cleanup of an already-dead key
}

func malformedPragma(st store.Store) {
	//ddplint:ignore storeerr
	st.Wait("k")
}
