// Package fixture seeds storeerr violations: dropped errors at store,
// transport, checkpoint, and written-file call sites.
package fixture

import (
	"os"

	"repro/internal/ckpt"
	"repro/internal/store"
	"repro/internal/transport"
)

func dropStoreErrors(st store.Store) {
	st.Set("k", nil)    //lint:want storeerr
	_ = st.Delete("k")  //lint:want storeerr
	st.Wait("k")        //lint:want storeerr
	v, _ := st.Get("k") //lint:want storeerr
	_ = v
}

func dropInGoAndDefer(st store.Store) {
	go st.Set("k", nil)                       //lint:want storeerr
	defer st.Delete("k")                      //lint:want storeerr
	_, _ = st.Add("n", 1)                     //lint:want storeerr
	ok, _ := st.CompareAndSwap("k", nil, nil) //lint:want storeerr
	_ = ok
}

func dropTransportErrors(m transport.Mesh) {
	m.Send(1, 7, nil)   //lint:want storeerr
	_, _ = m.Recv(1, 7) //lint:want storeerr
	if a, ok := m.(transport.Aborter); ok {
		a.Abort() //lint:want storeerr
	}
}

func dropCheckpointClose(w *ckpt.AsyncWriter) {
	w.Close() //lint:want storeerr
}

func deferCloseWrittenFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() //lint:want storeerr
	_, err = f.Write(data)
	return err
}

func deferCloseOpenFileWrite(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() //lint:want storeerr
	return nil
}
