package lint

import (
	"go/ast"
)

// MetricStatic reports metrics-instrument construction outside
// package-level var initializers and init functions. The registry keeps
// every family it has ever seen, so constructing an instrument per call
// in a hot path (per step, per collective, per connection) leaks
// registry entries and serializes on the registry lock; instruments
// must be process-lifetime statics, with label Vecs (With) as the
// dynamic axis.
var MetricStatic = &Analyzer{
	Name: "metricstatic",
	Doc:  "metrics instruments must be constructed in package-level vars or init, never per call",
	Run:  runMetricStatic,
}

// metricCtors are the (*metrics.Registry) instrument constructors.
var metricCtors = map[string]bool{
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

func runMetricStatic(pkg *Package) []Finding {
	if hasPathSuffix(pkg.Path, "internal/metrics") {
		// The metrics package itself implements the constructors.
		return nil
	}
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "init" && fd.Recv == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg.Info, call)
				if fn == nil || !metricCtors[fn.Name()] || !pkgHasSuffix(fn, "internal/metrics") {
					return true
				}
				// Only the Registry constructors count; Vec.With is the
				// sanctioned dynamic path and lives on the Vec types.
				if fn.Signature().Recv() == nil {
					return true
				}
				out = append(out, pkg.finding("metricstatic", call,
					"metrics instrument constructed in function %s; construct it in a package-level var (or init) and reuse it",
					fd.Name.Name))
				return true
			})
		}
	}
	return out
}

// hasPathSuffix reports whether importPath ends in suffix on a path
// boundary.
func hasPathSuffix(importPath, suffix string) bool {
	if importPath == suffix {
		return true
	}
	n := len(importPath) - len(suffix)
	return n > 0 && importPath[n-1] == '/' && importPath[n:] == suffix
}
