package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the module: its parsed
// files (with comments, so ignore pragmas are visible) plus the full
// go/types information analyzers need to resolve call targets.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset is the file set all Files positions refer to.
	Fset *token.FileSet
	// Files are the package's non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Loader loads and type-checks the module's packages using only the
// standard library: module-internal imports resolve through the loader
// itself, everything else (the standard library) through the stdlib
// source importer. No x/tools, no export data.
type Loader struct {
	// ModRoot is the absolute module root (the directory with go.mod).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader reads go.mod under modRoot and returns a loader for that
// module.
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	// The source importer type-checks the standard library from
	// GOROOT/src. Pin cgo off so packages with optional cgo paths (net,
	// os/user) resolve to their pure-Go variants instead of needing the
	// cgo tool.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		ModRoot: abs,
		ModPath: modPath,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// LoadAll loads every package in the module (skipping testdata, hidden
// and underscore directories) and returns them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(p) {
			rel, err := filepath.Rel(l.ModRoot, p)
			if err != nil {
				return err
			}
			if rel == "." {
				paths = append(paths, l.ModPath)
			} else {
				paths = append(paths, l.ModPath+"/"+filepath.ToSlash(rel))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the package rooted at dir (absolute or relative to the
// module root). It is how the tests load fixture packages that live
// under testdata, which LoadAll deliberately skips.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	if !filepath.IsAbs(dir) {
		dir = filepath.Join(l.ModRoot, dir)
	}
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.Load(l.ModPath + "/" + filepath.ToSlash(rel))
}

// Load loads and type-checks the module package with the given import
// path, memoized across calls.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	dir := filepath.Join(l.ModRoot, filepath.FromSlash(rel))

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the loader, everything else through the stdlib source
// importer.
func (l *Loader) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
