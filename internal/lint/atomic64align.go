package lint

import (
	"go/ast"
	"go/types"
)

// Atomic64Align reports 64-bit sync/atomic operations on struct fields
// whose offset within their allocation is not 8-byte aligned under
// 32-bit (GOARCH=386) layout rules. On 32-bit platforms the Go runtime
// only guarantees 64-bit alignment for the first word of an allocation,
// so an atomic on a misaligned field panics at runtime — a class of bug
// invisible on the 64-bit machines that run the tests.
var Atomic64Align = &Analyzer{
	Name: "atomic64align",
	Doc:  "64-bit sync/atomic operations on struct fields must be 8-aligned on 32-bit targets",
	Run:  runAtomic64Align,
}

// atomic64Funcs are the sync/atomic functions that require an 8-aligned
// 64-bit word.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

func runAtomic64Align(pkg *Package) []Finding {
	sizes := types.SizesFor("gc", "386")
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeOf(pkg.Info, call)
			if fn == nil || !atomic64Funcs[fn.Name()] || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op.String() != "&" {
				return true
			}
			sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			off, field, ok := fieldOffset386(pkg.Info, sizes, sel)
			if ok && off%8 != 0 {
				out = append(out, pkg.finding("atomic64align", call,
					"atomic.%s on field %s at offset %d (not 8-aligned on GOARCH=386); reorder fields or use atomic.%s",
					fn.Name(), field, off, fixedWidthType(fn.Name())))
			}
			return true
		})
	}
	return out
}

// fixedWidthType names the self-aligning sync/atomic wrapper type for a
// 64-bit function name (atomic.Int64 / atomic.Uint64 carry an align64
// marker the compiler honors on every platform).
func fixedWidthType(fn string) string {
	for i := 0; i < len(fn); i++ {
		if fn[i] == 'I' {
			return "Int64"
		}
		if fn[i] == 'U' {
			return "Uint64"
		}
	}
	return "Int64"
}

// fieldOffset386 computes the byte offset of the field selected by sel
// from the start of its allocation under 386 layout, following nested
// field selections but resetting at pointer indirections (a pointed-to
// struct is its own allocation, whose first word is 8-aligned). The
// bool result is false when sel does not resolve to a struct field.
func fieldOffset386(info *types.Info, sizes types.Sizes, sel *ast.SelectorExpr) (int64, string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return 0, "", false
	}
	// Offset of the selected (possibly promoted) field within the
	// receiver's type, accumulated across the implicit embedding path.
	off, contiguous := offsetOfIndexPath(sizes, s.Recv(), s.Index())
	name := s.Obj().Name()
	if !contiguous {
		// An embedded-pointer hop: the field lives at the front of its
		// own allocation; off is already relative to it.
		return off, name, true
	}
	// Walk down the explicit selector chain (a.b.c): add the offsets of
	// enclosing fields while the chain stays within one allocation.
	x := ast.Unparen(sel.X)
	for {
		inner, ok := x.(*ast.SelectorExpr)
		if !ok {
			break
		}
		is, ok := info.Selections[inner]
		if !ok || is.Kind() != types.FieldVal {
			break
		}
		if _, isPtr := is.Obj().Type().Underlying().(*types.Pointer); isPtr {
			// a.b.c where b is *T: c's offset is relative to b's
			// allocation, which starts 8-aligned.
			break
		}
		innerOff, innerContig := offsetOfIndexPath(sizes, is.Recv(), is.Index())
		off += innerOff
		if !innerContig {
			break
		}
		x = ast.Unparen(inner.X)
	}
	return off, name, true
}

// offsetOfIndexPath accumulates field offsets along a go/types selection
// index path. The bool result reports whether the path stayed within a
// single allocation (false once it crosses an embedded pointer).
func offsetOfIndexPath(sizes types.Sizes, recv types.Type, index []int) (int64, bool) {
	off := int64(0)
	contiguous := true
	t := recv
	for _, idx := range index {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			off = 0
			contiguous = false
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return off, contiguous
		}
		fields := make([]*types.Var, st.NumFields())
		for i := 0; i < st.NumFields(); i++ {
			fields[i] = st.Field(i)
		}
		off += sizes.Offsetsof(fields)[idx]
		t = st.Field(idx).Type()
	}
	return off, contiguous
}
