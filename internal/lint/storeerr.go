package lint

import (
	"go/ast"
	"go/types"
)

// StoreErr reports dropped errors at the call sites whose failures the
// system's durability and liveness stories depend on: rendezvous store
// operations, transport send/recv/abort, checkpoint save/commit/close,
// and Close on files opened for writing. A dropped store error turns a
// failed rendezvous write into a silent hang; a dropped commit or
// written-file Close error turns data loss into "checkpoint saved".
var StoreErr = &Analyzer{
	Name: "storeerr",
	Doc:  "errors from store, transport, and checkpoint call sites must be checked",
	Run:  runStoreErr,
}

// storeErrTargets maps a package-path suffix to the method/function
// names whose error results must never be dropped there.
var storeErrTargets = map[string]map[string]bool{
	"internal/store": {
		"Set": true, "Get": true, "GetCancel": true, "Add": true,
		"Wait": true, "Delete": true, "CompareAndSwap": true, "Watch": true,
	},
	"internal/transport": {
		"Send": true, "Recv": true, "SendBytes": true, "RecvBytes": true,
		"Abort": true,
	},
	"internal/ckpt": {
		"Save": true, "Done": true, "Submit": true, "Sync": true,
		"Close": true, "Commit": true, "Load": true, "Restore": true,
	},
}

func runStoreErr(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, checkStoreErrFunc(pkg, fd.Body)...)
		}
	}
	return out
}

func checkStoreErrFunc(pkg *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	// Files opened for writing in this function, by variable object:
	// their Close error is part of the write's durability contract.
	written := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Track f, err := os.Create(...) / os.OpenFile(..., write flags, ...).
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isWriteOpen(pkg.Info, call) && len(s.Lhs) == 2 {
					if id, ok := s.Lhs[0].(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							written[obj] = true
						} else if obj := pkg.Info.Uses[id]; obj != nil {
							written[obj] = true
						}
					}
				}
			}
			// v, _ := target(...) or _ = target(...): error discarded.
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if name, ok := storeErrTarget(pkg.Info, call); ok && returnsError(pkg.Info, call) {
						if last, ok := s.Lhs[len(s.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
							out = append(out, pkg.finding("storeerr", call,
								"error from %s discarded with _; handle or propagate it", name))
						}
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, ok := storeErrTarget(pkg.Info, call); ok && returnsError(pkg.Info, call) {
					out = append(out, pkg.finding("storeerr", call,
						"unchecked error from %s; handle or propagate it", name))
				} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
					if obj := rootIdentObj(pkg.Info, sel.X); obj != nil && written[obj] {
						out = append(out, pkg.finding("storeerr", call,
							"unchecked Close error on a file opened for writing; check it (or discard explicitly with _ =)"))
					}
				}
			}
		case *ast.GoStmt:
			if name, ok := storeErrTarget(pkg.Info, s.Call); ok && returnsError(pkg.Info, s.Call) {
				out = append(out, pkg.finding("storeerr", s.Call,
					"error from %s dropped by go statement; wrap it in a closure that handles the error", name))
			}
		case *ast.DeferStmt:
			if name, ok := storeErrTarget(pkg.Info, s.Call); ok && returnsError(pkg.Info, s.Call) {
				out = append(out, pkg.finding("storeerr", s.Call,
					"error from %s dropped by defer; check it in a closure (e.g. via a named return)", name))
				return true
			}
			// defer f.Close() on a file opened for writing: the Close
			// error is the write's last failure signal.
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if obj := rootIdentObj(pkg.Info, sel.X); obj != nil && written[obj] {
					out = append(out, pkg.finding("storeerr", s.Call,
						"defer %s.Close() on a file opened for writing discards the Close error; close explicitly and check it",
						exprString(sel.X)))
				}
			}
		}
		return true
	})
	return out
}

// storeErrTarget reports whether call targets one of the audited
// store/transport/ckpt functions, returning a display name.
func storeErrTarget(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil {
		return "", false
	}
	for suffix, names := range storeErrTargets {
		if names[fn.Name()] && pkgHasSuffix(fn, suffix) {
			return fn.Pkg().Name() + "." + displayName(fn), true
		}
	}
	return "", false
}

// displayName renders Type.Method for methods and Func for functions.
func displayName(fn *types.Func) string {
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// isWriteOpen reports whether call opens an *os.File for writing:
// os.Create always, os.OpenFile when the flag expression mentions a
// write mode.
func isWriteOpen(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	switch fn.Name() {
	case "Create":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		return mentionsWriteFlag(call.Args[1])
	}
	return false
}

// mentionsWriteFlag reports whether the flag expression references
// O_WRONLY, O_RDWR, or O_APPEND anywhere.
func mentionsWriteFlag(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			switch id.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND":
				found = true
			}
		}
		return !found
	})
	return found
}
