// Package trace provides wall-clock instrumentation for real training
// loops in two shapes. Timer is a flat per-phase accumulator, producing
// the forward / backward-compute / backward-comm / optimizer breakdown
// of the paper's Fig 6 for code that actually executes (the simulator
// computes the same breakdown analytically). Tracer/Span add
// hierarchical spans with explicit start/end timestamps and a JSON
// dump — the shape elastic recovery uses, where a root "recovery" span
// is tiled exactly by its rendezvous / mesh-build / state-sync /
// residual-sync phases so a regression names the phase that slowed
// down.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Timer accumulates wall time per named phase. Not safe for concurrent
// use; each rank keeps its own.
type Timer struct {
	// now is the clock, replaceable in tests.
	now func() time.Time

	totals  map[string]time.Duration
	order   []string
	current string
	started time.Time
}

// NewTimer returns an empty timer using the real clock.
func NewTimer() *Timer {
	return &Timer{now: time.Now, totals: make(map[string]time.Duration)}
}

// NewTimerWithClock returns a timer driven by the given clock (tests).
func NewTimerWithClock(now func() time.Time) *Timer {
	return &Timer{now: now, totals: make(map[string]time.Duration)}
}

// Start begins timing a phase, ending the previous phase if any.
func (t *Timer) Start(phase string) {
	t.Stop()
	if _, ok := t.totals[phase]; !ok {
		t.order = append(t.order, phase)
	}
	t.current = phase
	t.started = t.now()
}

// Stop ends the current phase, adding the elapsed time to its total.
func (t *Timer) Stop() {
	if t.current == "" {
		return
	}
	t.totals[t.current] += t.now().Sub(t.started)
	t.current = ""
}

// Phase returns the accumulated duration of a phase.
func (t *Timer) Phase(name string) time.Duration { return t.totals[name] }

// Total returns the sum over all phases.
func (t *Timer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.totals {
		sum += d
	}
	return sum
}

// Phases returns phase names in first-start order.
func (t *Timer) Phases() []string { return append([]string(nil), t.order...) }

// Reset clears all accumulated time. A phase in flight is not lost: it
// keeps running from the moment of the Reset, so the Stop (or Start)
// that eventually lands accounts the post-Reset portion under the same
// phase name instead of silently dropping it.
func (t *Timer) Reset() {
	t.totals = make(map[string]time.Duration)
	t.order = nil
	if t.current != "" {
		t.order = append(t.order, t.current)
		t.started = t.now()
	}
}

// Breakdown renders phases with their share of the total, e.g.
// "forward 25.0% (50ms) | backward 75.0% (150ms)".
func (t *Timer) Breakdown() string {
	total := t.Total()
	if total == 0 {
		return "(no samples)"
	}
	parts := make([]string, 0, len(t.order))
	for _, name := range t.order {
		d := t.totals[name]
		parts = append(parts, fmt.Sprintf("%s %.1f%% (%s)", name, 100*float64(d)/float64(total), d.Round(time.Microsecond)))
	}
	return strings.Join(parts, " | ")
}

// SortedPhases returns phase names ordered by descending duration —
// "which step deserves the most optimization effort" (the question
// Fig 6 answers).
func (t *Timer) SortedPhases() []string {
	names := t.Phases()
	sort.Slice(names, func(i, j int) bool {
		return t.totals[names[i]] > t.totals[names[j]]
	})
	return names
}
