package trace

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed amount per call.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func (c *fakeClock) now() time.Time          { return c.t }

func TestTimerAccumulatesPhases(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	tm.Start("forward")
	c.advance(10 * time.Millisecond)
	tm.Start("backward") // implicitly stops forward
	c.advance(30 * time.Millisecond)
	tm.Stop()
	tm.Start("forward")
	c.advance(5 * time.Millisecond)
	tm.Stop()

	if got := tm.Phase("forward"); got != 15*time.Millisecond {
		t.Fatalf("forward = %v", got)
	}
	if got := tm.Phase("backward"); got != 30*time.Millisecond {
		t.Fatalf("backward = %v", got)
	}
	if got := tm.Total(); got != 45*time.Millisecond {
		t.Fatalf("total = %v", got)
	}
}

func TestTimerPhaseOrder(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	for _, p := range []string{"fwd", "bwd", "opt", "fwd"} {
		tm.Start(p)
		c.advance(time.Millisecond)
	}
	tm.Stop()
	got := tm.Phases()
	if len(got) != 3 || got[0] != "fwd" || got[1] != "bwd" || got[2] != "opt" {
		t.Fatalf("phases = %v", got)
	}
}

func TestSortedPhases(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	tm.Start("fast")
	c.advance(time.Millisecond)
	tm.Start("slow")
	c.advance(time.Second)
	tm.Stop()
	if got := tm.SortedPhases(); got[0] != "slow" {
		t.Fatalf("sorted = %v", got)
	}
}

func TestBreakdownFormatting(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	if tm.Breakdown() != "(no samples)" {
		t.Fatal("empty breakdown wrong")
	}
	tm.Start("fwd")
	c.advance(25 * time.Millisecond)
	tm.Start("bwd")
	c.advance(75 * time.Millisecond)
	tm.Stop()
	s := tm.Breakdown()
	if !strings.Contains(s, "fwd 25.0%") || !strings.Contains(s, "bwd 75.0%") {
		t.Fatalf("breakdown = %q", s)
	}
}

func TestStopWithoutStartIsNoop(t *testing.T) {
	tm := NewTimer()
	tm.Stop() // must not panic
	if tm.Total() != 0 {
		t.Fatal("phantom time recorded")
	}
}

func TestReset(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	tm.Start("x")
	c.advance(time.Millisecond)
	tm.Stop()
	tm.Reset()
	if tm.Total() != 0 || len(tm.Phases()) != 0 {
		t.Fatal("Reset incomplete")
	}
}
