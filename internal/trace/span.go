package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed region of a hierarchical trace: explicit start and
// end timestamps plus nested children. A span is built by one goroutine
// at a time (each recovery, each worker keeps its own); the Tracer that
// owns it serializes access to the finished trees.
type Span struct {
	Name     string
	Start    time.Time
	End      time.Time
	Children []*Span

	now  func() time.Time
	open *Span // currently open child, if any
}

// Tracer mints root spans and keeps every finished tree for export.
type Tracer struct {
	now func() time.Time

	mu    sync.Mutex
	roots []*Span
}

// NewTracer returns a tracer using the real clock.
func NewTracer() *Tracer { return &Tracer{now: time.Now} }

// NewTracerWithClock returns a tracer driven by the given clock (tests).
func NewTracerWithClock(now func() time.Time) *Tracer { return &Tracer{now: now} }

// StartSpan opens a new root span. The span is recorded immediately, so
// a trace dump taken mid-flight shows the span with a zero End.
func (t *Tracer) StartSpan(name string) *Span {
	s := &Span{Name: name, Start: t.now(), now: t.now}
	t.mu.Lock()
	t.roots = append(t.roots, s)
	t.mu.Unlock()
	return s
}

// Roots returns the recorded root spans, oldest first.
func (t *Tracer) Roots() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.roots...)
}

// WriteJSON dumps every recorded root span as an indented JSON array of
// span trees, each node carrying name, RFC 3339 start/end, a derived
// duration_ns, and children.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Roots())
}

// StartChild opens a nested span at the current time. Unlike Phase it
// does not close the previously opened child — use it for genuinely
// overlapping or independently-ended regions, and Phase for a strict
// sequence that must tile the parent. A nil receiver no-ops and returns
// nil, so code instrumented against an optional tracer needs no guards.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: s.now(), now: s.now}
	s.Children = append(s.Children, c)
	return c
}

// Phase ends the span's current phase (if any) and starts the next one
// at the same instant. Because each phase begins exactly where the
// previous one ends — and Finish closes the last phase at the span's
// own end — the phases partition the span's duration with no gaps or
// overlap: their durations sum to the parent's by construction, which
// is what lets a recovery-time regression be attributed to a phase.
// The first phase of a span is anchored at the span's own Start, so the
// partition covers the span from its very beginning even if a few
// instructions ran between StartSpan and the first Phase call.
// A nil receiver no-ops and returns nil.
func (s *Span) Phase(name string) *Span {
	if s == nil {
		return nil
	}
	ts := s.now()
	if s.open != nil {
		s.open.End = ts
	} else if len(s.Children) == 0 {
		ts = s.Start
	}
	c := &Span{Name: name, Start: ts, now: s.now}
	s.Children = append(s.Children, c)
	s.open = c
	return c
}

// Finish ends the span — and any phase still open — at the current
// time. Finishing twice keeps the first end; a nil receiver no-ops.
func (s *Span) Finish() {
	if s == nil || !s.End.IsZero() {
		return
	}
	ts := s.now()
	if s.open != nil {
		s.open.End = ts
		s.open = nil
	}
	s.End = ts
}

// Duration returns End - Start, or 0 while the span is still open or
// the receiver is nil.
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// spanJSON is Span's wire form; durations are precomputed so consumers
// need no timestamp arithmetic.
type spanJSON struct {
	Name       string     `json:"name"`
	Start      time.Time  `json:"start"`
	End        *time.Time `json:"end,omitempty"`
	DurationNs int64      `json:"duration_ns"`
	Children   []*Span    `json:"children,omitempty"`
}

// MarshalJSON renders the span with a derived duration_ns and omits the
// end timestamp of a still-open span.
func (s *Span) MarshalJSON() ([]byte, error) {
	j := spanJSON{
		Name:       s.Name,
		Start:      s.Start,
		DurationNs: int64(s.Duration()),
		Children:   s.Children,
	}
	if !s.End.IsZero() {
		end := s.End
		j.End = &end
	}
	return json.Marshal(j)
}
