package trace

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestResetMidPhaseKeepsPhaseRunning(t *testing.T) {
	c := &fakeClock{}
	tm := NewTimerWithClock(c.now)
	tm.Start("x")
	c.advance(10 * time.Millisecond)
	tm.Reset() // mid-phase: pre-Reset time is discarded, phase keeps running
	c.advance(5 * time.Millisecond)
	tm.Stop()
	if got := tm.Phase("x"); got != 5*time.Millisecond {
		t.Fatalf("post-Reset phase time = %v, want 5ms", got)
	}
	if got := tm.Phases(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("phases = %v, want [x]", got)
	}
}

func TestSpanPhasesTileParentExactly(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracerWithClock(c.now)
	root := tr.StartSpan("recovery")
	root.Phase("rendezvous")
	c.advance(7 * time.Millisecond)
	root.Phase("mesh-build")
	c.advance(13 * time.Millisecond)
	root.Phase("state-sync")
	c.advance(29 * time.Millisecond)
	root.Phase("residual-sync")
	c.advance(3 * time.Millisecond)
	root.Finish()

	if got := root.Duration(); got != 52*time.Millisecond {
		t.Fatalf("root duration = %v", got)
	}
	var sum time.Duration
	for i, ch := range root.Children {
		if ch.End.IsZero() {
			t.Fatalf("child %d (%s) never ended", i, ch.Name)
		}
		sum += ch.Duration()
		if i > 0 && !ch.Start.Equal(root.Children[i-1].End) {
			t.Fatalf("gap between %s and %s", root.Children[i-1].Name, ch.Name)
		}
	}
	if sum != root.Duration() {
		t.Fatalf("phase sum %v != root %v", sum, root.Duration())
	}
	if !root.Children[0].Start.Equal(root.Start) && len(root.Children) > 0 {
		// The first phase started after the root (Phase called later) —
		// legal in general, but here they coincide.
		t.Fatalf("first phase start %v != root start %v", root.Children[0].Start, root.Start)
	}
}

func TestSpanFinishIdempotent(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracerWithClock(c.now)
	s := tr.StartSpan("s")
	c.advance(time.Millisecond)
	s.Finish()
	end := s.End
	c.advance(time.Hour)
	s.Finish()
	if !s.End.Equal(end) {
		t.Fatal("second Finish moved the end timestamp")
	}
}

func TestStartChildOverlaps(t *testing.T) {
	c := &fakeClock{}
	tr := NewTracerWithClock(c.now)
	root := tr.StartSpan("root")
	a := root.StartChild("a")
	c.advance(time.Millisecond)
	b := root.StartChild("b") // a still open: overlapping children
	c.advance(time.Millisecond)
	a.Finish()
	b.Finish()
	root.Finish()
	if a.Duration() != 2*time.Millisecond || b.Duration() != time.Millisecond {
		t.Fatalf("a=%v b=%v", a.Duration(), b.Duration())
	}
}

func TestTracerJSONDump(t *testing.T) {
	c := &fakeClock{t: time.Unix(1000, 0).UTC()}
	tr := NewTracerWithClock(c.now)
	root := tr.StartSpan("recovery")
	root.Phase("rendezvous")
	c.advance(4 * time.Millisecond)
	root.Phase("mesh-build")
	c.advance(6 * time.Millisecond)
	root.Finish()
	open := tr.StartSpan("in-flight") // dumped with no end
	_ = open

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump []struct {
		Name       string `json:"name"`
		End        string `json:"end"`
		DurationNs int64  `json:"duration_ns"`
		Children   []struct {
			Name       string `json:"name"`
			DurationNs int64  `json:"duration_ns"`
		} `json:"children"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(dump) != 2 || dump[0].Name != "recovery" || dump[1].Name != "in-flight" {
		t.Fatalf("dump = %+v", dump)
	}
	if dump[0].DurationNs != int64(10*time.Millisecond) {
		t.Fatalf("root duration_ns = %d", dump[0].DurationNs)
	}
	if len(dump[0].Children) != 2 || dump[0].Children[0].DurationNs != int64(4*time.Millisecond) {
		t.Fatalf("children = %+v", dump[0].Children)
	}
	if dump[1].End != "" || dump[1].DurationNs != 0 {
		t.Fatalf("open span should have no end: %+v", dump[1])
	}
}
