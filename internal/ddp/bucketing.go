// Package ddp implements DistributedDataParallel — the paper's core
// contribution (Sections 3.2 and 4.2): gradient bucketing, overlapping
// AllReduce with the backward pass, skipping synchronization (no_sync),
// and globally-unused-parameter detection, on top of the comm package's
// ProcessGroup API. The bucket machinery itself lives in
// internal/reduce, shared with the sharded wrapper in internal/fsdp;
// this package re-exports the assignment types so existing callers
// (bench, simnet, tests) keep working unchanged.
package ddp

import "repro/internal/reduce"

// Assignment is a parameter-to-bucket mapping (paper Section 4.2,
// "Parameter-to-Bucket Mapping"); see reduce.Assignment.
type Assignment = reduce.Assignment

// ReverseOrder returns the index sequence n-1, n-2, ..., 0 — DDP's
// default expectation that gradients become ready in the reverse of
// model.parameters() order (Section 3.2.3).
func ReverseOrder(n int) []int { return reduce.ReverseOrder(n) }

// AssignBuckets packs parameters into buckets of at most capBytes
// bytes, following `order`; see reduce.AssignBuckets. capBytes <= 0
// means one bucket per parameter — the "0MB bucket" baseline of Figs 7
// and 8.
func AssignBuckets(sizes []int, capBytes, elemBytes int, order []int) (*Assignment, error) {
	return reduce.AssignBuckets(sizes, capBytes, elemBytes, order)
}
