package ddp

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// buildMLP constructs a deterministic little MLP. Each rank seeds its
// own copy differently; the DDP constructor's rank-0 broadcast must
// align them.
func buildMLP(seed int64, in, hidden, out int) nn.Module {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential(
		nn.NewLinear(rng, "fc1", in, hidden),
		nn.Tanh{},
		nn.NewLinear(rng, "fc2", hidden, out),
	)
}

// runRanks runs fn concurrently for each rank and reports errors.
func runRanks(t *testing.T, world int, fn func(rank int) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = fn(rank)
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
}

func TestConstructorBroadcastsModelState(t *testing.T) {
	const world = 3
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(int64(100+rank), 4, 8, 2) // different seeds!
		_, err := New(models[rank], groups[rank], Options{})
		return err
	})
	ref := models[0].Parameters()
	for rank := 1; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Value.Equal(ref[i].Value) {
				t.Fatalf("rank %d parameter %d differs after construction", rank, i)
			}
		}
	}
}

func TestGradientsAveragedAcrossRanks(t *testing.T) {
	const world = 4
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	inputs := make([]*tensor.Tensor, world)
	targets := make([]*tensor.Tensor, world)
	dataRng := rand.New(rand.NewSource(1))
	for r := 0; r < world; r++ {
		inputs[r] = tensor.RandN(dataRng, 1, 2, 4)
		targets[r] = tensor.RandN(dataRng, 1, 2, 2)
	}

	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(7, 4, 8, 2)
		d, err := New(models[rank], groups[rank], Options{})
		if err != nil {
			return err
		}
		out := d.Forward(autograd.Constant(inputs[rank]))
		return d.Backward(autograd.MSELoss(out, autograd.Constant(targets[rank])))
	})

	// Reference: average of per-rank local gradients.
	refModel := buildMLP(7, 4, 8, 2)
	refParams := refModel.Parameters()
	sums := make([]*tensor.Tensor, len(refParams))
	for r := 0; r < world; r++ {
		local := buildMLP(7, 4, 8, 2)
		out := local.Forward(autograd.Constant(inputs[r]))
		autograd.Backward(autograd.MSELoss(out, autograd.Constant(targets[r])), nil)
		for i, p := range local.Parameters() {
			if sums[i] == nil {
				sums[i] = p.Grad.Clone()
			} else {
				tensor.AddInPlace(sums[i], p.Grad)
			}
		}
	}
	for i := range sums {
		tensor.ScaleInPlace(sums[i], 1.0/world)
	}
	for rank := 0; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Grad.AllClose(sums[i], 1e-4, 1e-6) {
				t.Fatalf("rank %d param %d: DDP grad differs from averaged local grads (max diff %v)",
					rank, i, p.Grad.MaxAbsDiff(sums[i]))
			}
		}
	}
}

// TestMathematicalEquivalence is the paper's central correctness claim
// (Section 3): N DDP ranks each training on 1/N of every batch must
// follow exactly the same parameter trajectory as local training on the
// full batch, including with momentum.
func TestMathematicalEquivalence(t *testing.T) {
	const world, iters, perRank = 4, 6, 3
	const in, hidden, out = 5, 16, 3

	dataRng := rand.New(rand.NewSource(42))
	batches := make([]*tensor.Tensor, iters)
	labels := make([]*tensor.Tensor, iters)
	for i := range batches {
		batches[i] = tensor.RandN(dataRng, 1, world*perRank, in)
		labels[i] = tensor.RandN(dataRng, 1, world*perRank, out)
	}

	// Local reference: full batch on one model.
	local := buildMLP(3, in, hidden, out)
	localOpt := optim.NewSGD(local.Parameters(), 0.05)
	localOpt.Momentum = 0.9
	for i := 0; i < iters; i++ {
		localOpt.ZeroGrad()
		loss := autograd.MSELoss(local.Forward(autograd.Constant(batches[i])), autograd.Constant(labels[i]))
		autograd.Backward(loss, nil)
		localOpt.Step()
	}

	// Distributed: each rank sees rows [rank*perRank, (rank+1)*perRank).
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(3, in, hidden, out)
		d, err := New(models[rank], groups[rank], Options{BucketCapBytes: 256})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		opt.Momentum = 0.9
		for i := 0; i < iters; i++ {
			opt.ZeroGrad()
			shard := shardRows(batches[i], rank, perRank)
			lshard := shardRows(labels[i], rank, perRank)
			lossv := autograd.MSELoss(d.Forward(autograd.Constant(shard)), autograd.Constant(lshard))
			if err := d.Backward(lossv); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	})

	for rank := 0; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			lp := local.Parameters()[i]
			if !p.Value.AllClose(lp.Value, 1e-3, 1e-5) {
				t.Fatalf("rank %d param %d diverged from local training: max diff %v",
					rank, i, p.Value.MaxAbsDiff(lp.Value))
			}
		}
	}

	// All replicas must be bitwise identical to each other.
	for rank := 1; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Value.Equal(models[0].Parameters()[i].Value) {
				t.Fatalf("rank %d param %d not identical to rank 0", rank, i)
			}
		}
	}
}

func shardRows(t *tensor.Tensor, rank, perRank int) *tensor.Tensor {
	cols := t.Dims(1)
	out := tensor.New(perRank, cols)
	copy(out.Data(), t.Data()[rank*perRank*cols:(rank+1)*perRank*cols])
	return out
}

// TestParameterAveragingDiverges demonstrates the Section 2.2 caveat:
// when the optimizer state depends nonlinearly on past local gradients
// (Adam's second moment; for plain momentum SGD with per-iteration
// averaging the two schemes coincide by linearity), parameter averaging
// produces different results from gradient synchronization, because
// per-replica optimizer states diverge.
func TestParameterAveragingDiverges(t *testing.T) {
	const world, iters, perRank = 2, 8, 4
	const in, out = 4, 2

	dataRng := rand.New(rand.NewSource(9))
	batches := make([]*tensor.Tensor, iters)
	labels := make([]*tensor.Tensor, iters)
	for i := range batches {
		batches[i] = tensor.RandN(dataRng, 1, world*perRank, in)
		labels[i] = tensor.RandN(dataRng, 1, world*perRank, out)
	}

	// Gradient-sync reference (DDP).
	groups := comm.NewInProcGroups(world, comm.Options{})
	ddpModels := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		rng := rand.New(rand.NewSource(5))
		ddpModels[rank] = nn.NewLinear(rng, "fc", in, out)
		d, err := New(ddpModels[rank], groups[rank], Options{})
		if err != nil {
			return err
		}
		opt := optim.NewAdam(d.Parameters(), 0.01)
		for i := 0; i < iters; i++ {
			opt.ZeroGrad()
			shard := shardRows(batches[i], rank, perRank)
			lshard := shardRows(labels[i], rank, perRank)
			if err := d.Backward(autograd.MSELoss(d.Forward(autograd.Constant(shard)), autograd.Constant(lshard))); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	})

	// Parameter averaging: local steps, then average parameters.
	paModels := make([]nn.Module, world)
	paOpts := make([]*optim.Adam, world)
	for rank := 0; rank < world; rank++ {
		rng := rand.New(rand.NewSource(5))
		paModels[rank] = nn.NewLinear(rng, "fc", in, out)
		paOpts[rank] = optim.NewAdam(paModels[rank].Parameters(), 0.01)
	}
	for i := 0; i < iters; i++ {
		for rank := 0; rank < world; rank++ {
			paOpts[rank].ZeroGrad()
			shard := shardRows(batches[i], rank, perRank)
			lshard := shardRows(labels[i], rank, perRank)
			loss := autograd.MSELoss(paModels[rank].Forward(autograd.Constant(shard)), autograd.Constant(lshard))
			autograd.Backward(loss, nil)
			paOpts[rank].Step()
		}
		// Average parameters across ranks (the auxiliary step).
		for pi := range paModels[0].Parameters() {
			avg := paModels[0].Parameters()[pi].Value.Clone()
			for rank := 1; rank < world; rank++ {
				tensor.AddInPlace(avg, paModels[rank].Parameters()[pi].Value)
			}
			tensor.ScaleInPlace(avg, 1.0/world)
			for rank := 0; rank < world; rank++ {
				paModels[rank].Parameters()[pi].Value.CopyFrom(avg)
			}
		}
	}

	// The two schemes must disagree (momentum states diverged).
	maxDiff := float32(0)
	for pi, p := range ddpModels[0].Parameters() {
		if d := p.Value.MaxAbsDiff(paModels[0].Parameters()[pi].Value); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 1e-4 {
		t.Fatalf("parameter averaging unexpectedly matched gradient sync (max diff %v)", maxDiff)
	}
}

func TestBucketCountRespondsToCap(t *testing.T) {
	groups := comm.NewInProcGroups(1, comm.Options{})
	m := buildMLP(1, 8, 32, 4) // params: 8*32, 32, 32*4, 4 elements
	dBig, err := New(m, groups[0], Options{BucketCapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if dBig.NumBuckets() != 1 {
		t.Fatalf("1MB cap should give 1 bucket, got %d", dBig.NumBuckets())
	}

	groups2 := comm.NewInProcGroups(1, comm.Options{})
	m2 := buildMLP(1, 8, 32, 4)
	dZero, err := New(m2, groups2[0], Options{BucketCapBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dZero.NumBuckets() != 4 {
		t.Fatalf("per-parameter buckets expected 4, got %d", dZero.NumBuckets())
	}
}

func TestLaunchOrderIsBucketOrderRegardlessOfReadyOrder(t *testing.T) {
	// The Fig 3(a) guarantee: even if gradients become ready out of
	// order, AllReduce launches must follow bucket index order. We use a
	// recording ProcessGroup and drive markReady out of order.
	rec := &recordingPG{}
	m := buildMLP(1, 4, 4, 2) // 4 params
	d, err := New(m, rec, Options{BucketCapBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	d.syncThisBackward = true
	d.engine.Reset()
	for _, p := range d.params {
		p.Grad = tensor.New(p.Value.Shape()...)
	}
	// Buckets (reverse order): bucket0={3}, bucket1={2}, bucket2={1},
	// bucket3={0}. Mark param 0 (bucket 3) ready first: nothing may
	// launch until earlier buckets are ready.
	d.engine.CopyIn(0, d.params[0].Grad.Data())
	d.engine.MarkReady(0)
	if len(rec.allReduces) != 0 {
		t.Fatal("bucket 3 must not launch before buckets 0-2")
	}
	d.engine.CopyIn(3, d.params[3].Grad.Data())
	d.engine.MarkReady(3) // bucket 0 ready -> launches bucket 0 only
	if len(rec.allReduces) != 1 {
		t.Fatalf("after bucket0 ready, %d launches", len(rec.allReduces))
	}
	d.engine.CopyIn(2, d.params[2].Grad.Data())
	d.engine.MarkReady(2) // bucket 1 -> launch
	d.engine.CopyIn(1, d.params[1].Grad.Data())
	d.engine.MarkReady(1) // bucket 2 -> launch, then pending bucket 3 launches too
	if len(rec.allReduces) != 4 {
		t.Fatalf("total launches = %d, want 4", len(rec.allReduces))
	}
	for i, sz := range rec.allReduces {
		wantSize := d.params[3-i].Value.Size()
		if sz != wantSize {
			t.Fatalf("launch %d reduced %d elements, want %d (bucket order violated)", i, sz, wantSize)
		}
	}
}

// recordingPG is a single-rank ProcessGroup that records AllReduce sizes.
type recordingPG struct {
	mu         sync.Mutex
	allReduces []int
}

func (r *recordingPG) Rank() int { return 0 }
func (r *recordingPG) Size() int { return 1 }
func (r *recordingPG) AllReduce(data []float32, op comm.ReduceOp) comm.Work {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.allReduces = append(r.allReduces, len(data))
	return comm.CompletedWork(nil)
}
func (r *recordingPG) Broadcast(data []float32, root int) comm.Work { return comm.CompletedWork(nil) }
func (r *recordingPG) AllGather(dst [][]float32, src []float32) comm.Work {
	return comm.CompletedWork(nil)
}
func (r *recordingPG) Barrier() comm.Work { return comm.CompletedWork(nil) }
func (r *recordingPG) Close() error       { return nil }

func TestSkippedSubgraphWithoutFindUnusedErrors(t *testing.T) {
	// Fig 3(b): a forward pass that skips parameters would hang the
	// backward in the paper's naive description; our reducer surfaces a
	// descriptive error instead.
	groups := comm.NewInProcGroups(1, comm.Options{})
	rng := rand.New(rand.NewSource(2))
	fc1 := nn.NewLinear(rng, "used", 4, 4)
	fc2 := nn.NewLinear(rng, "skipped", 4, 4)
	m := nn.NewSequential(fc1, fc2)
	d, err := New(m, groups[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Forward through DDP, but build the loss only from fc1's output.
	_ = d.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 4)))
	// Bypass: run a hand-built sub-graph touching only fc1. The DDP
	// forward above set up reducer state for the full model.
	partial := fc1.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 4)))
	err = d.Backward(autograd.Sum(partial))
	if err == nil {
		t.Fatal("expected incomplete-bucket error")
	}
	if !strings.Contains(err.Error(), "FindUnusedParameters") {
		t.Fatalf("error should mention FindUnusedParameters: %v", err)
	}
}

// subgraphModel optionally skips its second layer — the "pluralized
// graph" situation of Fig 3(b), where different processes run different
// sub-graphs in the same iteration.
type subgraphModel struct {
	fc1, fc2 *nn.Linear
	skipFC2  bool
}

func (s *subgraphModel) Forward(x *autograd.Variable) *autograd.Variable {
	h := s.fc1.Forward(x)
	if s.skipFC2 {
		return h
	}
	return s.fc2.Forward(h)
}

func (s *subgraphModel) Parameters() []*nn.Parameter {
	return append(s.fc1.Parameters(), s.fc2.Parameters()...)
}
func (s *subgraphModel) Buffers() []*nn.Buffer { return nil }
func (s *subgraphModel) SetTraining(bool)      {}

func TestFindUnusedParametersHandlesDynamicGraphs(t *testing.T) {
	// Rank 0 uses both layers; rank 1 skips fc2 (genuinely different
	// graphs in the same iteration). With FindUnusedParameters both
	// complete, fc2's averaged gradient is (rank0 grad + 0)/2, and all
	// replicas end with identical gradients.
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]*subgraphModel, world)
	x := tensor.Ones(2, 3)

	runRanks(t, world, func(rank int) error {
		rng := rand.New(rand.NewSource(3))
		m := &subgraphModel{
			fc1:     nn.NewLinear(rng, "fc1", 3, 3),
			fc2:     nn.NewLinear(rng, "fc2", 3, 3),
			skipFC2: rank == 1,
		}
		models[rank] = m
		d, err := New(m, groups[rank], Options{FindUnusedParameters: true, BucketCapBytes: -1})
		if err != nil {
			return err
		}
		out := d.Forward(autograd.Constant(x.Clone()))
		return d.Backward(autograd.Sum(out))
	})

	// Reference: rank 0's local fc2 gradient halved (rank 1 contributed
	// zero for fc2).
	rng := rand.New(rand.NewSource(3))
	ref := &subgraphModel{fc1: nn.NewLinear(rng, "fc1", 3, 3), fc2: nn.NewLinear(rng, "fc2", 3, 3)}
	autograd.Backward(autograd.Sum(ref.Forward(autograd.Constant(x.Clone()))), nil)
	wantFC2W := tensor.MulScalar(ref.fc2.W.Grad, 0.5)

	for rank := 0; rank < world; rank++ {
		m := models[rank]
		if m.fc2.W.Grad == nil {
			t.Fatalf("rank %d: fc2 weight grad missing (globally used!)", rank)
		}
		if !m.fc2.W.Grad.AllClose(wantFC2W, 1e-5, 1e-7) {
			t.Fatalf("rank %d: fc2 grad = %v, want %v", rank, m.fc2.W.Grad, wantFC2W)
		}
	}
	for i, p := range models[0].Parameters() {
		if !p.Grad.Equal(models[1].Parameters()[i].Grad) {
			t.Fatalf("param %d grads differ across ranks", i)
		}
	}
}

func TestGloballyUnusedParameterGradStaysIntact(t *testing.T) {
	// Both ranks skip fc2: it is globally unused, so DDP must leave its
	// .Grad untouched (nil), letting the optimizer skip it entirely
	// (Section 3.2.3's momentum-protection argument).
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]*subgraphModel, world)
	runRanks(t, world, func(rank int) error {
		rng := rand.New(rand.NewSource(3))
		m := &subgraphModel{
			fc1:     nn.NewLinear(rng, "fc1", 3, 3),
			fc2:     nn.NewLinear(rng, "fc2", 3, 3),
			skipFC2: true,
		}
		models[rank] = m
		d, err := New(m, groups[rank], Options{FindUnusedParameters: true})
		if err != nil {
			return err
		}
		out := d.Forward(autograd.Constant(tensor.Ones(2, 3)))
		return d.Backward(autograd.Sum(out))
	})
	for rank := 0; rank < world; rank++ {
		if models[rank].fc2.W.Grad != nil || models[rank].fc2.B.Grad != nil {
			t.Fatalf("rank %d: globally unused fc2 grad was touched", rank)
		}
		if models[rank].fc1.W.Grad == nil {
			t.Fatalf("rank %d: fc1 grad missing", rank)
		}
	}
}

func TestLayerDropWithFindUnused(t *testing.T) {
	// Both ranks share a LayerDrop seed so they skip the same layer in
	// the same iteration; DDP with FindUnusedParameters must survive
	// skipped iterations and keep replicas identical (Section 6.2.2).
	const world, iters = 2, 6
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	sawSkip := make([]bool, world)

	runRanks(t, world, func(rank int) error {
		rng := rand.New(rand.NewSource(4))
		drop := nn.NewLayerDrop(77, 0.5, nn.NewResidual(nn.NewLinear(rng, "mid", 4, 4)))
		m := nn.NewSequential(
			nn.NewLinear(rng, "in", 4, 4),
			drop,
			nn.NewLinear(rng, "out", 4, 2),
		)
		models[rank] = m
		d, err := New(m, groups[rank], Options{FindUnusedParameters: true})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		dataRng := rand.New(rand.NewSource(11))
		for i := 0; i < iters; i++ {
			opt.ZeroGrad()
			x := autograd.Constant(tensor.RandN(dataRng, 1, 2, 4))
			y := autograd.Constant(tensor.RandN(dataRng, 1, 2, 2))
			out := d.Forward(x)
			if drop.Skipped {
				sawSkip[rank] = true
			}
			if err := d.Backward(autograd.MSELoss(out, y)); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	})

	if !sawSkip[0] || !sawSkip[1] {
		t.Fatal("test needs at least one skipped iteration; adjust seed")
	}
	for i, p := range models[0].Parameters() {
		if !p.Value.Equal(models[1].Parameters()[i].Value) {
			t.Fatalf("replicas diverged at param %d", i)
		}
	}
}

func TestNoSyncAccumulatesThenSynchronizes(t *testing.T) {
	// Section 3.2.4: n no_sync backwards plus one synchronized backward
	// must equal synchronizing the sum of all n+1 gradients.
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)

	dataRng := rand.New(rand.NewSource(6))
	// Three micro-batches per rank.
	micro := make([][]*tensor.Tensor, world)
	microLabels := make([][]*tensor.Tensor, world)
	for r := 0; r < world; r++ {
		for k := 0; k < 3; k++ {
			micro[r] = append(micro[r], tensor.RandN(dataRng, 1, 2, 4))
			microLabels[r] = append(microLabels[r], tensor.RandN(dataRng, 1, 2, 2))
		}
	}

	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(8, 4, 6, 2)
		d, err := New(models[rank], groups[rank], Options{})
		if err != nil {
			return err
		}
		// Two accumulation steps under no_sync...
		err = d.NoSync(func() error {
			for k := 0; k < 2; k++ {
				out := d.Forward(autograd.Constant(micro[rank][k]))
				if err := d.Backward(autograd.MSELoss(out, autograd.Constant(microLabels[rank][k]))); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		// ...then one synchronized backward.
		out := d.Forward(autograd.Constant(micro[rank][2]))
		return d.Backward(autograd.MSELoss(out, autograd.Constant(microLabels[rank][2])))
	})

	// Reference: per rank, sum of the three micro-batch grads; then
	// average across ranks.
	var want []*tensor.Tensor
	for r := 0; r < world; r++ {
		local := buildMLP(8, 4, 6, 2)
		for k := 0; k < 3; k++ {
			out := local.Forward(autograd.Constant(micro[r][k]))
			autograd.Backward(autograd.MSELoss(out, autograd.Constant(microLabels[r][k])), nil)
		}
		if want == nil {
			want = make([]*tensor.Tensor, len(local.Parameters()))
			for i, p := range local.Parameters() {
				want[i] = p.Grad.Clone()
			}
		} else {
			for i, p := range local.Parameters() {
				tensor.AddInPlace(want[i], p.Grad)
			}
		}
	}
	for i := range want {
		tensor.ScaleInPlace(want[i], 1.0/world)
	}
	for rank := 0; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Grad.AllClose(want[i], 1e-4, 1e-6) {
				t.Fatalf("rank %d param %d: no_sync accumulation wrong (max diff %v)",
					rank, i, p.Grad.MaxAbsDiff(want[i]))
			}
		}
	}
}

func TestBufferBroadcastFromRankZero(t *testing.T) {
	// Section 4.1 Model Buffers: rank 0's BatchNorm running stats must
	// reach other ranks before their next synchronized forward.
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	bns := make([]*nn.BatchNorm, world)

	runRanks(t, world, func(rank int) error {
		rng := rand.New(rand.NewSource(10))
		bn := nn.NewBatchNorm("bn", 3)
		bns[rank] = bn
		m := nn.NewSequential(nn.NewLinear(rng, "fc", 3, 3), bn)
		d, err := New(m, groups[rank], Options{})
		if err != nil {
			return err
		}
		dataRng := rand.New(rand.NewSource(int64(20 + rank))) // different data!
		for i := 0; i < 3; i++ {
			x := autograd.Constant(tensor.RandN(dataRng, 1, 4, 3))
			out := d.Forward(x)
			if err := d.Backward(autograd.Sum(out)); err != nil {
				return err
			}
		}
		// One more forward triggers the pending buffer broadcast.
		d.Forward(autograd.Constant(tensor.RandN(dataRng, 1, 4, 3)))
		return nil
	})

	// After the final broadcast-then-forward, both ranks entered the
	// forward with rank 0's stats; rank 1's stats then updated from its
	// own batch, so we compare the stats captured *before* that update
	// is impossible — instead check they were equal at broadcast time by
	// replaying: both ranks' num_batches_tracked match.
	if bns[0].NumBatchesTracked.Data.At(0) != bns[1].NumBatchesTracked.Data.At(0) {
		t.Fatal("num_batches_tracked diverged")
	}
}

func TestGradientCompressionFp16StillTrains(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	models := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		models[rank] = buildMLP(12, 4, 8, 2)
		d, err := New(models[rank], groups[rank], Options{
			NewCodec: func() comm.Codec { return comm.Float16Codec{} },
		})
		if err != nil {
			return err
		}
		dataRng := rand.New(rand.NewSource(30))
		out := d.Forward(autograd.Constant(tensor.RandN(dataRng, 1, 2, 4)))
		return d.Backward(autograd.MSELoss(out, autograd.Constant(tensor.RandN(dataRng, 1, 2, 2))))
	})
	// Grads identical across ranks and every value fp16-representable.
	for i, p := range models[0].Parameters() {
		if !p.Grad.Equal(models[1].Parameters()[i].Grad) {
			t.Fatalf("param %d grads differ under compression", i)
		}
	}
}

func TestRebuildBucketsFollowsObservedOrder(t *testing.T) {
	groups := comm.NewInProcGroups(1, comm.Options{})
	m := buildMLP(1, 4, 4, 2)
	d, err := New(m, groups[0], Options{BucketCapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RebuildBuckets(); err == nil {
		t.Fatal("RebuildBuckets before any iteration must error")
	}
	rng := rand.New(rand.NewSource(1))
	out := d.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 4)))
	if err := d.Backward(autograd.Sum(out)); err != nil {
		t.Fatal(err)
	}
	order := d.ObservedReadyOrder()
	if len(order) != 4 {
		t.Fatalf("observed %d ready events, want 4", len(order))
	}
	if err := d.RebuildBuckets(); err != nil {
		t.Fatal(err)
	}
	// New bucket 0 must begin with the first-observed parameter.
	if d.Assignment().Buckets[0][0] != order[0] {
		t.Fatalf("rebuilt bucket0 starts with %d, observed first %d",
			d.Assignment().Buckets[0][0], order[0])
	}
	// Training still works after the rebuild.
	out = d.Forward(autograd.Constant(tensor.RandN(rng, 1, 2, 4)))
	if err := d.Backward(autograd.Sum(out)); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAndNaiveBackendsAgreeWithRing(t *testing.T) {
	// The same training step over different collective algorithms must
	// give numerically identical results across ranks for each backend.
	for _, algo := range []comm.Algorithm{comm.Ring, comm.Tree, comm.Naive} {
		const world = 3
		groups := comm.NewInProcGroups(world, comm.Options{Algorithm: algo})
		models := make([]nn.Module, world)
		runRanks(t, world, func(rank int) error {
			models[rank] = buildMLP(21, 4, 6, 2)
			d, err := New(models[rank], groups[rank], Options{})
			if err != nil {
				return err
			}
			dataRng := rand.New(rand.NewSource(int64(40 + rank)))
			out := d.Forward(autograd.Constant(tensor.RandN(dataRng, 1, 2, 4)))
			return d.Backward(autograd.MSELoss(out, autograd.Constant(tensor.RandN(dataRng, 1, 2, 2))))
		})
		for i := range models[0].Parameters() {
			if !models[0].Parameters()[i].Grad.Equal(models[1].Parameters()[i].Grad) {
				t.Fatalf("%v: grads differ across ranks", algo)
			}
		}
	}
}

func TestModuleWithoutParametersRejected(t *testing.T) {
	groups := comm.NewInProcGroups(1, comm.Options{})
	if _, err := New(nn.NewSequential(nn.ReLU{}), groups[0], Options{}); err == nil {
		t.Fatal("expected error for parameterless module")
	}
}

func TestDefaultBucketCapIs25MB(t *testing.T) {
	if DefaultBucketCapBytes != 25*1024*1024 {
		t.Fatalf("default cap = %d", DefaultBucketCapBytes)
	}
}
