package ddp_test

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/ddp"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Example reproduces the paper's Section 3.1 usage: wrapping a local
// model is the single line that makes training distributed.
func Example() {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})

	var wg sync.WaitGroup
	losses := make([]float32, world)
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(rank)))

			// setup model and optimizer
			net := nn.NewLinear(rng, "net", 10, 10)
			model, err := ddp.New(net, groups[rank], ddp.Options{})
			if err != nil {
				panic(err)
			}
			opt := optim.NewSGD(model.Parameters(), 0.01)

			// run forward pass
			dataRng := rand.New(rand.NewSource(int64(100 + rank)))
			inp := autograd.Constant(tensor.RandN(dataRng, 1, 20, 10))
			exp := autograd.Constant(tensor.RandN(dataRng, 1, 20, 10))
			out := model.Forward(inp)

			// run backward pass (bucketed AllReduce overlaps inside)
			loss := autograd.MSELoss(out, exp)
			if err := model.Backward(loss); err != nil {
				panic(err)
			}
			losses[rank] = loss.Value.Item()

			// update parameters
			opt.Step()
		}(rank)
	}
	wg.Wait()
	fmt.Println("both ranks trained:", losses[0] > 0 && losses[1] > 0)
	// Output: both ranks trained: true
}

// ExampleDDP_NoSync shows the gradient accumulation context manager of
// Section 3.2.4: backward passes inside NoSync skip communication and
// accumulate locally.
func ExampleDDP_NoSync() {
	groups := comm.NewInProcGroups(1, comm.Options{})
	rng := rand.New(rand.NewSource(1))
	model, err := ddp.New(nn.NewLinear(rng, "fc", 4, 2), groups[0], ddp.Options{})
	if err != nil {
		panic(err)
	}
	x := autograd.Constant(tensor.Ones(3, 4))
	y := autograd.Constant(tensor.Ones(3, 2))

	// Two accumulation steps without synchronization...
	err = model.NoSync(func() error {
		for i := 0; i < 2; i++ {
			if err := model.Backward(autograd.MSELoss(model.Forward(x), y)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		panic(err)
	}
	// ...then one synchronized backward reduces all three gradients.
	if err := model.Backward(autograd.MSELoss(model.Forward(x), y)); err != nil {
		panic(err)
	}
	fmt.Println("accumulated gradients present:", model.Parameters()[0].Grad != nil)
	// Output: accumulated gradients present: true
}

// ExampleAssignBuckets shows the reverse-order bucket packing at the
// heart of Section 4.2.
func ExampleAssignBuckets() {
	// Four parameters of 10 elements (40 bytes) each, 80-byte buckets.
	sizes := []int{10, 10, 10, 10}
	a, err := ddp.AssignBuckets(sizes, 80, 4, ddp.ReverseOrder(len(sizes)))
	if err != nil {
		panic(err)
	}
	fmt.Println("buckets:", a.Buckets)
	// Output: buckets: [[3 2] [1 0]]
}
