package ddp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/reduce"
	"repro/internal/tensor"
)

// DefaultBucketCapBytes matches the paper's 25MB default for
// bucket_cap_mb (Section 4.2, "Bucket Allreduce").
const DefaultBucketCapBytes = 25 << 20

// Options are the configurable knobs of Section 4.1.
type Options struct {
	// BucketCapBytes bounds each gradient bucket (bucket_cap_mb).
	// Zero selects DefaultBucketCapBytes; negative values mean one
	// bucket per parameter (the paper's "0MB" baseline).
	//
	// The cap also steers the collective layer's comm.Auto algorithm
	// selection: DDP itself never picks an AllReduce algorithm — it
	// passes each bucket to the ProcessGroup it was handed — so with a
	// comm.Auto group, big buckets ride the topology-aware
	// hierarchical/ring path while the trailing small bucket takes the
	// low-latency tree path, per bucket, with no DDP involvement.
	BucketCapBytes int
	// FindUnusedParameters enables the autograd-graph traversal and
	// bitmap AllReduce that let DDP cope with iterations touching only
	// a sub-graph (Fig 3(b), Section 3.2.3). It costs one extra
	// AllReduce per iteration, so it is off by default, exactly as in
	// PyTorch.
	FindUnusedParameters bool
	// NewCodec optionally compresses bucket gradients before
	// communication (Section 6.2.3 extension). When the factory's
	// product implements comm.WireCodec (all built-in codecs do), DDP
	// keeps ONE instance and routes buckets through
	// comm.CompressedAllReduce — real bytes on the wire — with
	// error-feedback residuals owned by the reduction engine and keyed
	// by parameter identity, so they survive the Section 6.2.1 bucket
	// rebuild and SetProcessGroup instead of silently resetting. A
	// plain Codec is cloned per bucket and only degrades values in
	// place; if such a codec keeps internal error-feedback state, that
	// state is lost on every rebuild — implement comm.WireCodec to get
	// the carried residuals.
	NewCodec func() comm.Codec
	// SkipInitialBroadcast suppresses the constructor's rank-0
	// broadcast of parameters and buffers. Only safe when replica
	// alignment is guaranteed externally — the elastic agent sets it
	// because state is synchronized from the most advanced survivor
	// (which need not be rank 0) before the DDP wrapper is built, and
	// ranks that merely swap process groups submit no constructor
	// collectives for a fresh joiner's broadcast to pair with.
	SkipInitialBroadcast bool
	// AutoRebuildBuckets enables the gradient-order-prediction
	// improvement of Section 6.2.1: the reducer traces the order in
	// which gradients actually became ready during the first
	// synchronized backward pass, and before the next synchronized
	// forward pass rebuilds the buckets to follow that order. Rank 0's
	// observed order is broadcast so all ranks agree even if their local
	// arrival orders differed (the Fig 3(a) hazard applied to
	// rebuilding). Rebuilding happens once — the paper notes
	// re-allocation is expensive and should be infrequent.
	AutoRebuildBuckets bool
	// TestingResetResidualsOnRebuild reintroduces, behind a test-only
	// switch, the historical bug the per-parameter residual store fixed:
	// error-feedback residuals are zeroed instead of carried whenever
	// the bucket assignment is reinstalled (Section 6.2.1 rebuilds and
	// elastic SetProcessGroup swaps). The chaos harness plants it to
	// prove its bitwise invariants catch a recovery-path regression.
	// Never set this outside tests.
	TestingResetResidualsOnRebuild bool
}

// DDP wraps an nn.Module and transparently synchronizes gradients
// across the process group during the backward pass, exactly as
// torch.nn.parallel.DistributedDataParallel wraps a local model. It is
// a thin client of the reduce.Engine: DDP owns the autograd hook
// wiring, unused-parameter tracking, and buffer broadcasts, while the
// engine owns buckets, launch ordering, and error-feedback residuals;
// the collective DDP plugs in is a full AllReduce — every rank keeps
// every averaged gradient, the replicated data parallelism of the
// paper, as opposed to internal/fsdp's sharded variants on the same
// engine.
type DDP struct {
	module nn.Module
	pg     comm.ProcessGroup
	opts   Options

	params []*nn.Parameter
	sizes  []int // element counts, model order
	engine *reduce.Engine
	codecs []comm.Codec   // per-bucket quantizers (plain, non-wire codecs)
	wire   comm.WireCodec // wire-level codec; residual state lives in the engine

	// Per-iteration reducer state.
	noSync           bool
	syncThisBackward bool

	// Unused-parameter tracking (accumulates across no_sync iterations).
	usedLocally  []bool
	bitmap       []float32
	bitmapWork   comm.Work
	globallyUsed []bool

	// Buffer handling: sync pending means the next synchronized forward
	// must broadcast buffers from rank 0 first (Section 4.1).
	bufferSyncPending bool

	// Gradient-order tracing (Section 6.2.1): rebuildPending means the
	// next synchronized forward starts by rebuilding buckets from the
	// traced order; rebuilt records that the one-shot rebuild happened.
	rebuildPending bool
	rebuilt        bool
}

// New wraps module for distributed data parallel training over pg.
// Like the PyTorch constructor it broadcasts the model state (parameters
// and buffers) from rank 0 so all replicas start identically, builds the
// parameter-to-bucket mapping in reverse Parameters() order, and
// installs one autograd post-hook per parameter (Algorithm 1).
func New(module nn.Module, pg comm.ProcessGroup, opts Options) (*DDP, error) {
	if opts.BucketCapBytes == 0 {
		opts.BucketCapBytes = DefaultBucketCapBytes
	}
	d := &DDP{module: module, pg: pg, opts: opts, params: module.Parameters()}
	if len(d.params) == 0 {
		return nil, errors.New("ddp: module has no parameters")
	}
	d.sizes = make([]int, len(d.params))
	for i, p := range d.params {
		d.sizes[i] = p.Value.Size()
	}
	if opts.NewCodec != nil {
		if wc, ok := opts.NewCodec().(comm.WireCodec); ok {
			d.wire = wc
		}
	}
	engine, err := reduce.NewEngine(reduce.Config{
		Sizes:                          d.sizes,
		Launch:                         d.launchBucket,
		TrackResiduals:                 d.wire != nil,
		TestingResetResidualsOnInstall: opts.TestingResetResidualsOnRebuild,
		ObserveReduce:                  func(dur time.Duration) { mBucketReduceDur.Observe(dur.Seconds()) },
	})
	if err != nil {
		return nil, err
	}
	d.engine = engine

	// Align replicas: broadcast parameters and buffers from rank 0.
	if !opts.SkipInitialBroadcast {
		var works []comm.Work
		for _, p := range d.params {
			works = append(works, pg.Broadcast(p.Value.Data(), 0))
		}
		for _, b := range module.Buffers() {
			works = append(works, pg.Broadcast(b.Data.Data(), 0))
		}
		if err := comm.WaitAll(works...); err != nil {
			return nil, fmt.Errorf("ddp: broadcasting initial state: %w", err)
		}
	}

	assign, err := AssignBuckets(d.sizes, opts.BucketCapBytes, 4, ReverseOrder(len(d.params)))
	if err != nil {
		return nil, err
	}
	d.installAssignment(assign)

	d.usedLocally = make([]bool, len(d.params))
	d.bitmap = make([]float32, len(d.params))
	d.globallyUsed = make([]bool, len(d.params))

	for i, p := range d.params {
		idx := i
		p.RegisterPostAccumulateHook(func(*autograd.Variable) { d.autogradHook(idx) })
	}
	return d, nil
}

// launchBucket is the reduce.Launcher DDP plugs into its engine: a
// full AllReduce per bucket, through the wire codec's byte lanes when
// one is configured (this bucket's error-feedback residuals are
// updated during execution — they are only read back at the next
// rebuild or state sync, both of which happen after Wait), or
// quantize-then-AllReduce for plain codecs.
func (d *DDP) launchBucket(bucket int, flat, resFlat []float32) comm.Work {
	switch {
	case d.wire != nil:
		return comm.CompressedAllReduce(d.pg, flat, comm.Avg, d.wire, resFlat)
	case d.codecs != nil:
		d.codecs[bucket].Quantize(flat)
		return d.pg.AllReduce(flat, comm.Avg)
	default:
		return d.pg.AllReduce(flat, comm.Avg)
	}
}

// installAssignment hands the engine a new assignment (the engine
// carries error-feedback residuals across the swap) and rebuilds the
// per-bucket plain-codec instances for the new bucket count.
func (d *DDP) installAssignment(assign *Assignment) {
	d.engine.Install(assign)
	d.codecs = nil
	if d.opts.NewCodec != nil && d.wire == nil {
		d.codecs = make([]comm.Codec, assign.NumBuckets())
		for b := range d.codecs {
			d.codecs[b] = d.opts.NewCodec()
		}
	}
}

// Module returns the wrapped local model.
func (d *DDP) Module() nn.Module { return d.module }

// ProcessGroup returns the communication backend currently in use.
func (d *DDP) ProcessGroup() comm.ProcessGroup { return d.pg }

// SetProcessGroup swaps in a freshly built communication backend — the
// elastic world-reconfiguration hook (paper Section 7's future
// direction). The caller is responsible for tearing down the old group
// and for re-synchronizing model/optimizer state across the new
// membership BEFORE the next Forward (elastic.SyncState does both
// broadcasts). Reducer state is reset and the bucket assignment
// reverts to the canonical reverse-registration order, so ranks that
// joined at different generations agree on the AllReduce schedule; the
// one-shot trace rebuild of Section 6.2.1 re-arms and will re-run
// consistently on the new group.
func (d *DDP) SetProcessGroup(pg comm.ProcessGroup) error {
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, ReverseOrder(len(d.params)))
	if err != nil {
		return err
	}
	d.pg = pg
	d.installAssignment(assign)
	d.engine.Reset()
	d.noSync = false
	d.syncThisBackward = false
	d.bitmapWork = nil
	for i := range d.usedLocally {
		d.usedLocally[i] = false
	}
	// State was just re-synchronized by the caller; no buffer broadcast
	// is pending until the next synchronized backward completes.
	d.bufferSyncPending = false
	d.rebuildPending = false
	d.rebuilt = false
	return nil
}

// Parameters exposes the wrapped model's parameters (for optimizers).
func (d *DDP) Parameters() []*nn.Parameter { return d.params }

// Buffers exposes the wrapped model's buffers.
func (d *DDP) Buffers() []*nn.Buffer { return d.module.Buffers() }

// SetTraining toggles the wrapped model's mode.
func (d *DDP) SetTraining(t bool) { d.module.SetTraining(t) }

// NumBuckets reports how many gradient buckets the current assignment
// uses.
func (d *DDP) NumBuckets() int { return d.engine.NumBuckets() }

// Assignment returns the current parameter-to-bucket mapping.
func (d *DDP) Assignment() *Assignment { return d.engine.Assignment() }

// NoSync runs fn with gradient synchronization disabled, the context
// manager of Section 3.2.4: backward passes inside fn accumulate
// gradients locally, and the first synchronized backward afterwards
// reduces the accumulated gradients in one shot.
func (d *DDP) NoSync(fn func() error) error {
	d.noSync = true
	defer func() { d.noSync = false }()
	return fn()
}

// Forward runs the wrapped model's forward pass, performing DDP's
// bookkeeping around it (Algorithm 1, Function forward): broadcasting
// buffers if the previous backward synchronized, resetting the reducer,
// and — with FindUnusedParameters — traversing the autograd graph from
// the output to proactively mark unused parameters as ready.
func (d *DDP) Forward(x *autograd.Variable) *autograd.Variable {
	d.syncThisBackward = !d.noSync
	if d.syncThisBackward {
		if d.rebuildPending {
			d.rebuildFromTracedOrder()
			d.rebuildPending = false
			d.rebuilt = true
		}
		d.broadcastBuffersIfPending()
		d.engine.Reset()
		d.bitmapWork = nil
	}
	out := d.module.Forward(x)
	if d.opts.FindUnusedParameters {
		used := autograd.LeafSet(out)
		for i, p := range d.params {
			if used[p.Variable] {
				d.usedLocally[i] = true
			}
		}
		if d.syncThisBackward {
			// Launch the bitmap AllReduce now; it overlaps with the
			// backward pass and is consumed during finalization. Max
			// works as logical OR over {0,1}.
			for i := range d.bitmap {
				if d.usedLocally[i] {
					d.bitmap[i] = 1
				} else {
					d.bitmap[i] = 0
				}
			}
			d.bitmapWork = d.pg.AllReduce(d.bitmap, comm.Max)
			// Mark parameters outside this iteration's graph as ready so
			// their buckets do not wait forever (Fig 3(b) fix). A
			// parameter that accumulated gradients during earlier
			// no_sync iterations still contributes them here, even if
			// the current graph skips it.
			for i, p := range d.params {
				if !used[p.Variable] {
					if p.Grad != nil {
						d.engine.CopyIn(i, p.Grad.Data())
					}
					d.engine.MarkReady(i)
				}
			}
		}
	}
	return out
}

// Backward runs autograd from loss and, if this iteration synchronizes,
// finishes the gradient reduction: waits for all bucket AllReduces,
// writes averaged gradients back into parameter .Grad fields, and
// resolves globally unused parameters. It replaces loss.backward() in
// the PyTorch API; the hook-driven overlap happens inside.
func (d *DDP) Backward(loss *autograd.Variable) error {
	autograd.Backward(loss, nil)
	if !d.syncThisBackward {
		return nil
	}
	return d.finalizeBackward()
}

// broadcastBuffersIfPending pushes rank 0's buffer values to all ranks
// before a synchronized forward pass, if the previous synchronized
// backward has happened since the last broadcast.
func (d *DDP) broadcastBuffersIfPending() {
	if !d.bufferSyncPending {
		return
	}
	buffers := d.module.Buffers()
	if len(buffers) == 0 {
		d.bufferSyncPending = false
		return
	}
	works := make([]comm.Work, len(buffers))
	for i, b := range buffers {
		works[i] = d.pg.Broadcast(b.Data.Data(), 0)
	}
	// Buffers are read by the imminent forward pass; block here.
	if err := comm.WaitAll(works...); err != nil {
		panic(fmt.Sprintf("ddp: buffer broadcast failed: %v", err))
	}
	d.bufferSyncPending = false
}

// autogradHook is Algorithm 1's autograd_hook: fired by the engine after
// a parameter's gradient is fully accumulated. In no_sync iterations it
// does nothing (hooks disabled); otherwise it copies the gradient into
// the bucket and marks the parameter ready.
func (d *DDP) autogradHook(idx int) {
	if !d.syncThisBackward {
		return
	}
	d.engine.CopyIn(idx, d.params[idx].Grad.Data())
	d.engine.MarkReady(idx)
}

// finalizeBackward is the finishing step Algorithm 1 leaves implicit:
// wait for outstanding AllReduces and write averaged gradients back.
func (d *DDP) finalizeBackward() error {
	// Detect the Fig 3(b) hang instead of reproducing it: if some bucket
	// never became ready, parameters were skipped by this iteration's
	// graph while FindUnusedParameters was off.
	assign := d.engine.Assignment()
	if d.engine.Launched() < d.engine.NumBuckets() {
		var missing []string
		for _, members := range assign.Buckets[d.engine.Launched():] {
			for _, idx := range members {
				if d.params[idx].Grad == nil {
					missing = append(missing, d.params[idx].Name)
				}
			}
		}
		return fmt.Errorf(
			"ddp: backward pass finished with %d bucket(s) incomplete; parameters %s received no gradient — if the forward pass uses only a sub-graph, construct DDP with FindUnusedParameters (paper Fig 3(b))",
			d.engine.NumBuckets()-d.engine.Launched(), strings.Join(missing, ", "))
	}

	// Resolve globally unused parameters from the bitmap AllReduce.
	trackUnused := d.opts.FindUnusedParameters
	if trackUnused {
		if err := d.bitmapWork.Wait(); err != nil {
			return fmt.Errorf("ddp: unused-parameter bitmap AllReduce: %w", err)
		}
		for i, v := range d.bitmap {
			d.globallyUsed[i] = v > 0
		}
	}

	if err := d.engine.WaitAll(func(bucket int, flat []float32) error {
		for _, idx := range assign.Buckets[bucket] {
			if trackUnused && !d.globallyUsed[idx] {
				// Globally unused: leave .Grad intact (nil here), so an
				// optimizer that skips absent gradients does not decay
				// momentum for it (Section 3.2.3).
				continue
			}
			p := d.params[idx]
			off := assign.OffsetOf[idx]
			avg := flat[off : off+d.sizes[idx]]
			if p.Grad == nil {
				p.Grad = tensor.New(p.Value.Shape()...)
			}
			copy(p.Grad.Data(), avg)
		}
		return nil
	}); err != nil {
		return fmt.Errorf("ddp: %w", err)
	}

	// Next synchronized forward must re-broadcast buffers; local unused
	// tracking restarts.
	d.bufferSyncPending = len(d.module.Buffers()) > 0
	for i := range d.usedLocally {
		d.usedLocally[i] = false
	}
	if d.opts.AutoRebuildBuckets && !d.rebuilt && len(d.engine.ObservedReady()) == len(d.params) {
		d.rebuildPending = true
	}
	return nil
}

// rebuildFromTracedOrder implements the one-shot bucket rebuild of
// Section 6.2.1: rank 0 broadcasts its observed gradient-ready order
// (as float32 indices — exact for any realistic parameter count) and
// every rank repacks its buckets to follow it.
func (d *DDP) rebuildFromTracedOrder() {
	buf := make([]float32, len(d.params))
	if d.pg.Rank() == 0 {
		for i, idx := range d.engine.ObservedReady() {
			buf[i] = float32(idx)
		}
	}
	if err := d.pg.Broadcast(buf, 0).Wait(); err != nil {
		panic(fmt.Sprintf("ddp: broadcasting traced gradient order: %v", err))
	}
	order := make([]int, len(buf))
	for i, v := range buf {
		order[i] = int(v)
	}
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, order)
	if err != nil {
		// A corrupt trace (should be impossible) falls back to the
		// existing assignment rather than killing training.
		return
	}
	d.installAssignment(assign)
	mBucketRebuilds.Inc()
}

// Rebuilt reports whether the one-shot automatic bucket rebuild has
// already happened.
func (d *DDP) Rebuilt() bool { return d.rebuilt }

// ObservedReadyOrder returns the parameter indices in the order their
// gradients became ready during the most recent synchronized backward
// pass (the trace Section 6.2.1 proposes recording).
func (d *DDP) ObservedReadyOrder() []int {
	return d.engine.ObservedReady()
}

// ResidualState returns the error-feedback residuals flattened in
// parameter order — training state exactly like optimizer moments: a
// reconfigured world must carry the elected source's residuals to
// joiners (elastic.SyncResiduals broadcasts this vector) or the
// quantization error accumulated so far is lost at the worst possible
// moment. The layout depends only on the model, never on the bucket
// assignment or world size, so it re-shards trivially. Empty when no
// wire codec is configured. Do not call between Forward and Backward —
// buckets may be mid-flight.
func (d *DDP) ResidualState() []float32 {
	return d.engine.ResidualState()
}

// SetResidualState installs residuals produced by ResidualState on
// another (or this) replica, scattering them into the current bucket
// layout. Like ResidualState, it must not be called between Forward
// and Backward.
func (d *DDP) SetResidualState(flat []float32) error {
	if d.wire == nil {
		if len(flat) == 0 {
			return nil
		}
		return errors.New("ddp: residual state offered but no wire codec is configured")
	}
	return d.engine.SetResidualState(flat)
}

// RebuildBuckets implements the gradient-order-prediction improvement of
// Section 6.2.1: reassign parameters to buckets following the
// ready order observed in the last synchronized backward pass, so bucket
// boundaries match actual gradient production order. All ranks must call
// it at the same point (e.g. after the same iteration); it must not be
// called between Forward and Backward.
func (d *DDP) RebuildBuckets() error {
	trace := d.engine.ObservedReady()
	if len(trace) != len(d.params) {
		return fmt.Errorf("ddp: no complete ready-order trace (have %d of %d parameters); run a synchronized iteration first",
			len(trace), len(d.params))
	}
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, trace)
	if err != nil {
		return err
	}
	d.installAssignment(assign)
	mBucketRebuilds.Inc()
	return nil
}
