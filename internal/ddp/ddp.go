package ddp

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// DefaultBucketCapBytes matches the paper's 25MB default for
// bucket_cap_mb (Section 4.2, "Bucket Allreduce").
const DefaultBucketCapBytes = 25 << 20

// Options are the configurable knobs of Section 4.1.
type Options struct {
	// BucketCapBytes bounds each gradient bucket (bucket_cap_mb).
	// Zero selects DefaultBucketCapBytes; negative values mean one
	// bucket per parameter (the paper's "0MB" baseline).
	//
	// The cap also steers the collective layer's comm.Auto algorithm
	// selection: DDP itself never picks an AllReduce algorithm — it
	// passes each bucket to the ProcessGroup it was handed — so with a
	// comm.Auto group, big buckets ride the topology-aware
	// hierarchical/ring path while the trailing small bucket takes the
	// low-latency tree path, per bucket, with no DDP involvement.
	BucketCapBytes int
	// FindUnusedParameters enables the autograd-graph traversal and
	// bitmap AllReduce that let DDP cope with iterations touching only
	// a sub-graph (Fig 3(b), Section 3.2.3). It costs one extra
	// AllReduce per iteration, so it is off by default, exactly as in
	// PyTorch.
	FindUnusedParameters bool
	// NewCodec optionally compresses bucket gradients before
	// communication (Section 6.2.3 extension). When the factory's
	// product implements comm.WireCodec (all built-in codecs do), DDP
	// keeps ONE instance and routes buckets through
	// comm.CompressedAllReduce — real bytes on the wire — with
	// error-feedback residuals owned by DDP and keyed by parameter
	// identity, so they survive the Section 6.2.1 bucket rebuild and
	// SetProcessGroup instead of silently resetting. A plain Codec is
	// cloned per bucket and only degrades values in place; if such a
	// codec keeps internal error-feedback state, that state is lost on
	// every rebuild — implement comm.WireCodec to get the carried
	// residuals.
	NewCodec func() comm.Codec
	// SkipInitialBroadcast suppresses the constructor's rank-0
	// broadcast of parameters and buffers. Only safe when replica
	// alignment is guaranteed externally — the elastic agent sets it
	// because state is synchronized from the most advanced survivor
	// (which need not be rank 0) before the DDP wrapper is built, and
	// ranks that merely swap process groups submit no constructor
	// collectives for a fresh joiner's broadcast to pair with.
	SkipInitialBroadcast bool
	// AutoRebuildBuckets enables the gradient-order-prediction
	// improvement of Section 6.2.1: the reducer traces the order in
	// which gradients actually became ready during the first
	// synchronized backward pass, and before the next synchronized
	// forward pass rebuilds the buckets to follow that order. Rank 0's
	// observed order is broadcast so all ranks agree even if their local
	// arrival orders differed (the Fig 3(a) hazard applied to
	// rebuilding). Rebuilding happens once — the paper notes
	// re-allocation is expensive and should be infrequent.
	AutoRebuildBuckets bool
	// TestingResetResidualsOnRebuild reintroduces, behind a test-only
	// switch, the historical bug the per-parameter residual store fixed:
	// error-feedback residuals are zeroed instead of carried whenever
	// the bucket assignment is reinstalled (Section 6.2.1 rebuilds and
	// elastic SetProcessGroup swaps). The chaos harness plants it to
	// prove its bitwise invariants catch a recovery-path regression.
	// Never set this outside tests.
	TestingResetResidualsOnRebuild bool
}

// DDP wraps an nn.Module and transparently synchronizes gradients
// across the process group during the backward pass, exactly as
// torch.nn.parallel.DistributedDataParallel wraps a local model.
type DDP struct {
	module nn.Module
	pg     comm.ProcessGroup
	opts   Options

	params []*nn.Parameter
	sizes  []int // element counts, model order
	assign *Assignment
	bucket []*bucketState
	codecs []comm.Codec   // per-bucket quantizers (plain, non-wire codecs)
	wire   comm.WireCodec // wire-level codec; residual state lives in DDP

	// residuals holds each parameter's error-feedback accumulator in
	// model order — keyed by parameter identity, NOT bucket index, so
	// bucket rebuilds and process-group swaps re-map rather than drop
	// the accumulated quantization error. Working copies live in the
	// buckets' resFlat buffers between rebuilds; flushResiduals folds
	// them back here.
	residuals [][]float32

	// Per-iteration reducer state.
	noSync           bool
	syncThisBackward bool
	nextToLaunch     int
	observedReady    []int // param indices in ready order (for RebuildBuckets)

	// Unused-parameter tracking (accumulates across no_sync iterations).
	usedLocally  []bool
	bitmap       []float32
	bitmapWork   comm.Work
	globallyUsed []bool

	// Buffer handling: sync pending means the next synchronized forward
	// must broadcast buffers from rank 0 first (Section 4.1).
	bufferSyncPending bool

	// Gradient-order tracing (Section 6.2.1): rebuildPending means the
	// next synchronized forward starts by rebuilding buckets from the
	// traced order; rebuilt records that the one-shot rebuild happened.
	rebuildPending bool
	rebuilt        bool
}

// bucketState is the runtime companion of one Assignment bucket
// (reducer.cpp's Bucket).
type bucketState struct {
	members  []int // param indices
	flat     []float32
	resFlat  []float32 // error-feedback residuals, same layout as flat
	pending  int
	ready    bool
	launched bool
	// launchedAt stamps the AllReduce launch for the backward-to-reduce
	// latency histogram.
	launchedAt time.Time
	work       comm.Work
}

// New wraps module for distributed data parallel training over pg.
// Like the PyTorch constructor it broadcasts the model state (parameters
// and buffers) from rank 0 so all replicas start identically, builds the
// parameter-to-bucket mapping in reverse Parameters() order, and
// installs one autograd post-hook per parameter (Algorithm 1).
func New(module nn.Module, pg comm.ProcessGroup, opts Options) (*DDP, error) {
	if opts.BucketCapBytes == 0 {
		opts.BucketCapBytes = DefaultBucketCapBytes
	}
	d := &DDP{module: module, pg: pg, opts: opts, params: module.Parameters()}
	if len(d.params) == 0 {
		return nil, errors.New("ddp: module has no parameters")
	}
	d.sizes = make([]int, len(d.params))
	for i, p := range d.params {
		d.sizes[i] = p.Value.Size()
	}
	if opts.NewCodec != nil {
		if wc, ok := opts.NewCodec().(comm.WireCodec); ok {
			d.wire = wc
			d.residuals = make([][]float32, len(d.params))
			for i, size := range d.sizes {
				d.residuals[i] = make([]float32, size)
			}
		}
	}

	// Align replicas: broadcast parameters and buffers from rank 0.
	if !opts.SkipInitialBroadcast {
		var works []comm.Work
		for _, p := range d.params {
			works = append(works, pg.Broadcast(p.Value.Data(), 0))
		}
		for _, b := range module.Buffers() {
			works = append(works, pg.Broadcast(b.Data.Data(), 0))
		}
		if err := comm.WaitAll(works...); err != nil {
			return nil, fmt.Errorf("ddp: broadcasting initial state: %w", err)
		}
	}

	assign, err := AssignBuckets(d.sizes, opts.BucketCapBytes, 4, ReverseOrder(len(d.params)))
	if err != nil {
		return nil, err
	}
	d.installAssignment(assign)

	d.usedLocally = make([]bool, len(d.params))
	d.bitmap = make([]float32, len(d.params))
	d.globallyUsed = make([]bool, len(d.params))

	for i, p := range d.params {
		idx := i
		p.RegisterPostAccumulateHook(func(*autograd.Variable) { d.autogradHook(idx) })
	}
	return d, nil
}

// installAssignment (re)builds bucket runtime state for an assignment.
// Error-feedback residuals are carried, not dropped: the outgoing
// layout's working copies are folded into the per-parameter store
// first, then scattered into the new layout — the fix for the residual
// reset that used to happen on every Section 6.2.1 rebuild and every
// elastic SetProcessGroup, exactly when accumulated error matters most.
func (d *DDP) installAssignment(assign *Assignment) {
	if d.opts.TestingResetResidualsOnRebuild && d.wire != nil {
		for _, r := range d.residuals {
			for i := range r {
				r[i] = 0
			}
		}
	} else {
		d.flushResiduals()
	}
	d.assign = assign
	d.bucket = make([]*bucketState, assign.NumBuckets())
	for b, members := range assign.Buckets {
		bs := &bucketState{
			members: members,
			flat:    make([]float32, assign.BucketElems[b]),
		}
		if d.wire != nil {
			bs.resFlat = make([]float32, assign.BucketElems[b])
			for _, idx := range members {
				off := assign.OffsetOf[idx]
				copy(bs.resFlat[off:off+d.sizes[idx]], d.residuals[idx])
			}
		}
		d.bucket[b] = bs
	}
	d.codecs = nil
	if d.opts.NewCodec != nil && d.wire == nil {
		d.codecs = make([]comm.Codec, assign.NumBuckets())
		for b := range d.codecs {
			d.codecs[b] = d.opts.NewCodec()
		}
	}
}

// flushResiduals folds the current bucket layout's residual buffers
// back into the per-parameter store. No-op without a wire codec or
// before the first assignment is installed.
func (d *DDP) flushResiduals() {
	if d.wire == nil || d.assign == nil {
		return
	}
	for b, bs := range d.bucket {
		for _, idx := range d.assign.Buckets[b] {
			off := d.assign.OffsetOf[idx]
			copy(d.residuals[idx], bs.resFlat[off:off+d.sizes[idx]])
		}
	}
}

// Module returns the wrapped local model.
func (d *DDP) Module() nn.Module { return d.module }

// ProcessGroup returns the communication backend currently in use.
func (d *DDP) ProcessGroup() comm.ProcessGroup { return d.pg }

// SetProcessGroup swaps in a freshly built communication backend — the
// elastic world-reconfiguration hook (paper Section 7's future
// direction). The caller is responsible for tearing down the old group
// and for re-synchronizing model/optimizer state across the new
// membership BEFORE the next Forward (elastic.SyncState does both
// broadcasts). Reducer state is reset and the bucket assignment
// reverts to the canonical reverse-registration order, so ranks that
// joined at different generations agree on the AllReduce schedule; the
// one-shot trace rebuild of Section 6.2.1 re-arms and will re-run
// consistently on the new group.
func (d *DDP) SetProcessGroup(pg comm.ProcessGroup) error {
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, ReverseOrder(len(d.params)))
	if err != nil {
		return err
	}
	d.pg = pg
	d.installAssignment(assign)
	d.noSync = false
	d.syncThisBackward = false
	d.nextToLaunch = 0
	d.observedReady = d.observedReady[:0]
	d.bitmapWork = nil
	for i := range d.usedLocally {
		d.usedLocally[i] = false
	}
	// State was just re-synchronized by the caller; no buffer broadcast
	// is pending until the next synchronized backward completes.
	d.bufferSyncPending = false
	d.rebuildPending = false
	d.rebuilt = false
	return nil
}

// Parameters exposes the wrapped model's parameters (for optimizers).
func (d *DDP) Parameters() []*nn.Parameter { return d.params }

// Buffers exposes the wrapped model's buffers.
func (d *DDP) Buffers() []*nn.Buffer { return d.module.Buffers() }

// SetTraining toggles the wrapped model's mode.
func (d *DDP) SetTraining(t bool) { d.module.SetTraining(t) }

// NumBuckets reports how many gradient buckets the current assignment
// uses.
func (d *DDP) NumBuckets() int { return d.assign.NumBuckets() }

// Assignment returns the current parameter-to-bucket mapping.
func (d *DDP) Assignment() *Assignment { return d.assign }

// NoSync runs fn with gradient synchronization disabled, the context
// manager of Section 3.2.4: backward passes inside fn accumulate
// gradients locally, and the first synchronized backward afterwards
// reduces the accumulated gradients in one shot.
func (d *DDP) NoSync(fn func() error) error {
	d.noSync = true
	defer func() { d.noSync = false }()
	return fn()
}

// Forward runs the wrapped model's forward pass, performing DDP's
// bookkeeping around it (Algorithm 1, Function forward): broadcasting
// buffers if the previous backward synchronized, resetting the reducer,
// and — with FindUnusedParameters — traversing the autograd graph from
// the output to proactively mark unused parameters as ready.
func (d *DDP) Forward(x *autograd.Variable) *autograd.Variable {
	d.syncThisBackward = !d.noSync
	if d.syncThisBackward {
		if d.rebuildPending {
			d.rebuildFromTracedOrder()
			d.rebuildPending = false
			d.rebuilt = true
		}
		d.broadcastBuffersIfPending()
		d.resetReducer()
	}
	out := d.module.Forward(x)
	if d.opts.FindUnusedParameters {
		used := autograd.LeafSet(out)
		for i, p := range d.params {
			if used[p.Variable] {
				d.usedLocally[i] = true
			}
		}
		if d.syncThisBackward {
			// Launch the bitmap AllReduce now; it overlaps with the
			// backward pass and is consumed during finalization. Max
			// works as logical OR over {0,1}.
			for i := range d.bitmap {
				if d.usedLocally[i] {
					d.bitmap[i] = 1
				} else {
					d.bitmap[i] = 0
				}
			}
			d.bitmapWork = d.pg.AllReduce(d.bitmap, comm.Max)
			// Mark parameters outside this iteration's graph as ready so
			// their buckets do not wait forever (Fig 3(b) fix). A
			// parameter that accumulated gradients during earlier
			// no_sync iterations still contributes them here, even if
			// the current graph skips it.
			for i, p := range d.params {
				if !used[p.Variable] {
					if p.Grad != nil {
						d.copyGradToBucket(i)
					}
					d.markReady(i)
				}
			}
		}
	}
	return out
}

// Backward runs autograd from loss and, if this iteration synchronizes,
// finishes the gradient reduction: waits for all bucket AllReduces,
// writes averaged gradients back into parameter .Grad fields, and
// resolves globally unused parameters. It replaces loss.backward() in
// the PyTorch API; the hook-driven overlap happens inside.
func (d *DDP) Backward(loss *autograd.Variable) error {
	autograd.Backward(loss, nil)
	if !d.syncThisBackward {
		return nil
	}
	return d.finalizeBackward()
}

// broadcastBuffersIfPending pushes rank 0's buffer values to all ranks
// before a synchronized forward pass, if the previous synchronized
// backward has happened since the last broadcast.
func (d *DDP) broadcastBuffersIfPending() {
	if !d.bufferSyncPending {
		return
	}
	buffers := d.module.Buffers()
	if len(buffers) == 0 {
		d.bufferSyncPending = false
		return
	}
	works := make([]comm.Work, len(buffers))
	for i, b := range buffers {
		works[i] = d.pg.Broadcast(b.Data.Data(), 0)
	}
	// Buffers are read by the imminent forward pass; block here.
	if err := comm.WaitAll(works...); err != nil {
		panic(fmt.Sprintf("ddp: buffer broadcast failed: %v", err))
	}
	d.bufferSyncPending = false
}

// resetReducer replenishes per-bucket pending counts and clears bucket
// buffers for a new synchronized iteration (Section 4.2: "In the next
// forward pass, DDP replenishes the pending gradient count").
func (d *DDP) resetReducer() {
	for _, b := range d.bucket {
		for i := range b.flat {
			b.flat[i] = 0
		}
		b.pending = len(b.members)
		b.ready = false
		b.launched = false
		b.work = nil
	}
	d.nextToLaunch = 0
	d.observedReady = d.observedReady[:0]
	d.bitmapWork = nil
}

// autogradHook is Algorithm 1's autograd_hook: fired by the engine after
// a parameter's gradient is fully accumulated. In no_sync iterations it
// does nothing (hooks disabled); otherwise it copies the gradient into
// the bucket and marks the parameter ready.
func (d *DDP) autogradHook(idx int) {
	if !d.syncThisBackward {
		return
	}
	d.copyGradToBucket(idx)
	d.markReady(idx)
}

// copyGradToBucket writes the parameter's (possibly no_sync-accumulated)
// gradient into its bucket view.
func (d *DDP) copyGradToBucket(idx int) {
	p := d.params[idx]
	b := d.bucket[d.assign.BucketOf[idx]]
	off := d.assign.OffsetOf[idx]
	copy(b.flat[off:off+d.sizes[idx]], p.Grad.Data())
}

// markReady decrements the bucket's pending count and launches
// AllReduce on ready buckets in bucket-index order — never bucket i+1
// before bucket i, so the AllReduce sequence is identical on every rank
// regardless of local gradient arrival order (the Fig 3(a) fix).
func (d *DDP) markReady(idx int) {
	d.observedReady = append(d.observedReady, idx)
	b := d.bucket[d.assign.BucketOf[idx]]
	if b.pending <= 0 {
		panic(fmt.Sprintf("ddp: parameter %d marked ready twice in one iteration", idx))
	}
	b.pending--
	if b.pending == 0 {
		b.ready = true
		d.launchReadyBuckets()
	}
}

// launchReadyBuckets starts asynchronous AllReduces for the maximal
// in-order prefix of ready buckets.
func (d *DDP) launchReadyBuckets() {
	for d.nextToLaunch < len(d.bucket) && d.bucket[d.nextToLaunch].ready {
		b := d.bucket[d.nextToLaunch]
		b.launchedAt = time.Now()
		switch {
		case d.wire != nil:
			// Wire-level path: the codec's bytes ride the transport's
			// byte lanes (or degrade to quantize-then-Ring), with this
			// bucket's error-feedback residuals updated during
			// execution — they are only read back at the next rebuild
			// or state sync, both of which happen after Wait.
			b.work = comm.CompressedAllReduce(d.pg, b.flat, comm.Avg, d.wire, b.resFlat)
		case d.codecs != nil:
			d.codecs[d.nextToLaunch].Quantize(b.flat)
			b.work = d.pg.AllReduce(b.flat, comm.Avg)
		default:
			b.work = d.pg.AllReduce(b.flat, comm.Avg)
		}
		b.launched = true
		d.nextToLaunch++
	}
}

// finalizeBackward is the finishing step Algorithm 1 leaves implicit:
// wait for outstanding AllReduces and write averaged gradients back.
func (d *DDP) finalizeBackward() error {
	// Detect the Fig 3(b) hang instead of reproducing it: if some bucket
	// never became ready, parameters were skipped by this iteration's
	// graph while FindUnusedParameters was off.
	if d.nextToLaunch < len(d.bucket) {
		var missing []string
		for _, b := range d.bucket[d.nextToLaunch:] {
			for _, idx := range b.members {
				if d.params[idx].Grad == nil {
					missing = append(missing, d.params[idx].Name)
				}
			}
		}
		return fmt.Errorf(
			"ddp: backward pass finished with %d bucket(s) incomplete; parameters %s received no gradient — if the forward pass uses only a sub-graph, construct DDP with FindUnusedParameters (paper Fig 3(b))",
			len(d.bucket)-d.nextToLaunch, strings.Join(missing, ", "))
	}

	// Resolve globally unused parameters from the bitmap AllReduce.
	trackUnused := d.opts.FindUnusedParameters
	if trackUnused {
		if err := d.bitmapWork.Wait(); err != nil {
			return fmt.Errorf("ddp: unused-parameter bitmap AllReduce: %w", err)
		}
		for i, v := range d.bitmap {
			d.globallyUsed[i] = v > 0
		}
	}

	for bi, b := range d.bucket {
		if err := b.work.Wait(); err != nil {
			return fmt.Errorf("ddp: AllReduce on bucket %d: %w", bi, err)
		}
		mBucketReduceDur.Observe(time.Since(b.launchedAt).Seconds())
		for _, idx := range b.members {
			if trackUnused && !d.globallyUsed[idx] {
				// Globally unused: leave .Grad intact (nil here), so an
				// optimizer that skips absent gradients does not decay
				// momentum for it (Section 3.2.3).
				continue
			}
			p := d.params[idx]
			off := d.assign.OffsetOf[idx]
			avg := b.flat[off : off+d.sizes[idx]]
			if p.Grad == nil {
				p.Grad = tensor.New(p.Value.Shape()...)
			}
			copy(p.Grad.Data(), avg)
		}
	}

	// Next synchronized forward must re-broadcast buffers; local unused
	// tracking restarts.
	d.bufferSyncPending = len(d.module.Buffers()) > 0
	for i := range d.usedLocally {
		d.usedLocally[i] = false
	}
	if d.opts.AutoRebuildBuckets && !d.rebuilt && len(d.observedReady) == len(d.params) {
		d.rebuildPending = true
	}
	return nil
}

// rebuildFromTracedOrder implements the one-shot bucket rebuild of
// Section 6.2.1: rank 0 broadcasts its observed gradient-ready order
// (as float32 indices — exact for any realistic parameter count) and
// every rank repacks its buckets to follow it.
func (d *DDP) rebuildFromTracedOrder() {
	buf := make([]float32, len(d.params))
	if d.pg.Rank() == 0 {
		for i, idx := range d.observedReady {
			buf[i] = float32(idx)
		}
	}
	if err := d.pg.Broadcast(buf, 0).Wait(); err != nil {
		panic(fmt.Sprintf("ddp: broadcasting traced gradient order: %v", err))
	}
	order := make([]int, len(buf))
	for i, v := range buf {
		order[i] = int(v)
	}
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, order)
	if err != nil {
		// A corrupt trace (should be impossible) falls back to the
		// existing assignment rather than killing training.
		return
	}
	d.installAssignment(assign)
	mBucketRebuilds.Inc()
}

// Rebuilt reports whether the one-shot automatic bucket rebuild has
// already happened.
func (d *DDP) Rebuilt() bool { return d.rebuilt }

// ObservedReadyOrder returns the parameter indices in the order their
// gradients became ready during the most recent synchronized backward
// pass (the trace Section 6.2.1 proposes recording).
func (d *DDP) ObservedReadyOrder() []int {
	return append([]int(nil), d.observedReady...)
}

// ResidualState returns the error-feedback residuals flattened in
// parameter order — training state exactly like optimizer moments: a
// reconfigured world must carry the elected source's residuals to
// joiners (elastic.SyncResiduals broadcasts this vector) or the
// quantization error accumulated so far is lost at the worst possible
// moment. The layout depends only on the model, never on the bucket
// assignment or world size, so it re-shards trivially. Empty when no
// wire codec is configured. Do not call between Forward and Backward —
// buckets may be mid-flight.
func (d *DDP) ResidualState() []float32 {
	if d.wire == nil {
		return nil
	}
	d.flushResiduals()
	total := 0
	for _, s := range d.sizes {
		total += s
	}
	out := make([]float32, 0, total)
	for _, r := range d.residuals {
		out = append(out, r...)
	}
	return out
}

// SetResidualState installs residuals produced by ResidualState on
// another (or this) replica, scattering them into the current bucket
// layout. Like ResidualState, it must not be called between Forward
// and Backward.
func (d *DDP) SetResidualState(flat []float32) error {
	if d.wire == nil {
		if len(flat) == 0 {
			return nil
		}
		return errors.New("ddp: residual state offered but no wire codec is configured")
	}
	want := 0
	for _, s := range d.sizes {
		want += s
	}
	if len(flat) != want {
		return fmt.Errorf("ddp: residual state has %d elements, expected %d", len(flat), want)
	}
	off := 0
	for i := range d.residuals {
		off += copy(d.residuals[i], flat[off:off+d.sizes[i]])
	}
	for b, bs := range d.bucket {
		for _, idx := range d.assign.Buckets[b] {
			o := d.assign.OffsetOf[idx]
			copy(bs.resFlat[o:o+d.sizes[idx]], d.residuals[idx])
		}
	}
	return nil
}

// RebuildBuckets implements the gradient-order-prediction improvement of
// Section 6.2.1: reassign parameters to buckets following the
// ready order observed in the last synchronized backward pass, so bucket
// boundaries match actual gradient production order. All ranks must call
// it at the same point (e.g. after the same iteration); it must not be
// called between Forward and Backward.
func (d *DDP) RebuildBuckets() error {
	if len(d.observedReady) != len(d.params) {
		return fmt.Errorf("ddp: no complete ready-order trace (have %d of %d parameters); run a synchronized iteration first",
			len(d.observedReady), len(d.params))
	}
	assign, err := AssignBuckets(d.sizes, d.opts.BucketCapBytes, 4, d.observedReady)
	if err != nil {
		return err
	}
	d.installAssignment(assign)
	mBucketRebuilds.Inc()
	return nil
}
