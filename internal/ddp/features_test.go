package ddp

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// TestDDPThroughCheckpointedSegments: activation checkpointing
// re-executes segments during backward; the parameter hooks it fires
// must still drive DDP's bucketed AllReduce correctly.
func TestDDPThroughCheckpointedSegments(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	mods := make([]nn.Module, world)

	build := func() nn.Module {
		rng := rand.New(rand.NewSource(31))
		return nn.NewSequential(
			nn.NewLinear(rng, "in", 4, 8),
			nn.NewCheckpointed(nn.NewSequential(
				nn.NewLinear(rng, "mid1", 8, 8),
				nn.Tanh{},
				nn.NewLinear(rng, "mid2", 8, 8),
			)),
			nn.NewLinear(rng, "out", 8, 2),
		)
	}

	dataRng := rand.New(rand.NewSource(32))
	inputs := make([]*tensor.Tensor, world)
	for r := range inputs {
		inputs[r] = tensor.RandN(dataRng, 1, 3, 4)
	}

	runRanks(t, world, func(rank int) error {
		m := build()
		mods[rank] = m
		d, err := New(m, groups[rank], Options{BucketCapBytes: 64})
		if err != nil {
			return err
		}
		out := d.Forward(autograd.Constant(inputs[rank]))
		return d.Backward(autograd.Sum(out))
	})

	// Reference: averaged local gradients with plain (non-checkpointed)
	// execution semantics — checkpointing must not change values.
	var want []*tensor.Tensor
	for r := 0; r < world; r++ {
		local := build()
		out := local.Forward(autograd.Constant(inputs[r]))
		autograd.Backward(autograd.Sum(out), nil)
		if want == nil {
			want = make([]*tensor.Tensor, len(local.Parameters()))
			for i, p := range local.Parameters() {
				want[i] = p.Grad.Clone()
			}
		} else {
			for i, p := range local.Parameters() {
				tensor.AddInPlace(want[i], p.Grad)
			}
		}
	}
	for i := range want {
		tensor.ScaleInPlace(want[i], 1.0/world)
	}
	for rank := 0; rank < world; rank++ {
		for i, p := range mods[rank].Parameters() {
			if !p.Grad.AllClose(want[i], 1e-4, 1e-6) {
				t.Fatalf("rank %d param %d wrong through checkpointing (max diff %v)",
					rank, i, p.Grad.MaxAbsDiff(want[i]))
			}
		}
	}
}

// TestDDPTrainsTransformer runs the real attention model under DDP.
func TestDDPTrainsTransformer(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	mods := make([]nn.Module, world)
	losses := make([]float32, world)

	runRanks(t, world, func(rank int) error {
		m := models.NewTinyTransformer(41, 8, 2, 16, 2)
		mods[rank] = m
		d, err := New(m, groups[rank], Options{BucketCapBytes: 1024})
		if err != nil {
			return err
		}
		opt := optim.NewAdam(d.Parameters(), 0.005)
		dataRng := rand.New(rand.NewSource(int64(60 + rank)))
		var first, last float32
		for it := 0; it < 15; it++ {
			clean := tensor.RandN(dataRng, 1, 4, 8)
			noisy := clean.Clone()
			for i := range noisy.Data() {
				noisy.Data()[i] += 0.2 * float32(dataRng.NormFloat64())
			}
			opt.ZeroGrad()
			out := d.Forward(autograd.Constant(noisy))
			loss := autograd.MSELoss(out, autograd.Constant(clean))
			if it == 0 {
				first = loss.Value.Item()
			}
			last = loss.Value.Item()
			if err := d.Backward(loss); err != nil {
				return err
			}
			opt.Step()
		}
		losses[rank] = last
		if last >= first {
			t.Errorf("rank %d: transformer loss did not improve (%v -> %v)", rank, first, last)
		}
		return nil
	})

	for i, p := range mods[0].Parameters() {
		if !p.Value.Equal(mods[1].Parameters()[i].Value) {
			t.Fatalf("transformer replicas diverged at param %d", i)
		}
	}
}

// TestDDPOverRoundRobinGroups validates DDP on the Section 5.4
// composite group: collectives rotate across sub-groups but results
// must be identical to a single group.
func TestDDPOverRoundRobinGroups(t *testing.T) {
	const world, nGroups = 2, 3
	subGroups := make([][]comm.ProcessGroup, nGroups)
	for i := range subGroups {
		subGroups[i] = comm.NewInProcGroups(world, comm.Options{})
	}
	rrs := make([]comm.ProcessGroup, world)
	for r := 0; r < world; r++ {
		gs := make([]comm.ProcessGroup, nGroups)
		for i := range gs {
			gs[i] = subGroups[i][r]
		}
		rr, err := comm.NewRoundRobin(gs...)
		if err != nil {
			t.Fatal(err)
		}
		rrs[r] = rr
	}
	defer func() {
		for _, g := range rrs {
			g.Close()
		}
	}()

	mods := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		mods[rank] = buildMLP(int64(rank), 4, 8, 2) // different seeds
		d, err := New(mods[rank], rrs[rank], Options{BucketCapBytes: 64})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		dataRng := rand.New(rand.NewSource(int64(70 + rank)))
		for it := 0; it < 4; it++ {
			opt.ZeroGrad()
			out := d.Forward(autograd.Constant(tensor.RandN(dataRng, 1, 2, 4)))
			if err := d.Backward(autograd.MSELoss(out, autograd.Constant(tensor.RandN(dataRng, 1, 2, 2)))); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	})
	for i, p := range mods[0].Parameters() {
		if !p.Value.Equal(mods[1].Parameters()[i].Value) {
			t.Fatalf("round-robin replicas diverged at param %d", i)
		}
	}
}

// TestDDPCheckpointRestoreMidTraining: rank 0 saves a state dict; a new
// fleet restores it (DDP's constructor broadcast then aligns everyone to
// the restored rank 0) and continues identically to the uninterrupted
// fleet.
func TestDDPCheckpointRestoreMidTraining(t *testing.T) {
	const world = 2
	dataRng := rand.New(rand.NewSource(80))
	batches := make([]*tensor.Tensor, 6)
	labels := make([]*tensor.Tensor, 6)
	for i := range batches {
		batches[i] = tensor.RandN(dataRng, 1, world*2, 4)
		labels[i] = tensor.RandN(dataRng, 1, world*2, 2)
	}

	train := func(d *DDP, opt *optim.SGD, rank, from, to int) error {
		for i := from; i < to; i++ {
			opt.ZeroGrad()
			x := shardRows(batches[i], rank, 2)
			y := shardRows(labels[i], rank, 2)
			if err := d.Backward(autograd.MSELoss(d.Forward(autograd.Constant(x)), autograd.Constant(y))); err != nil {
				return err
			}
			opt.Step()
		}
		return nil
	}

	// Uninterrupted fleet: 6 iterations.
	groupsA := comm.NewInProcGroups(world, comm.Options{})
	contModels := make([]nn.Module, world)
	var ckpt bytes.Buffer
	runRanks(t, world, func(rank int) error {
		m := buildMLP(90, 4, 6, 2)
		contModels[rank] = m
		d, err := New(m, groupsA[rank], Options{})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		if err := train(d, opt, rank, 0, 3); err != nil {
			return err
		}
		if rank == 0 {
			if err := nn.SaveState(&ckpt, m); err != nil {
				return err
			}
		}
		return train(d, opt, rank, 3, 6)
	})

	// Restored fleet: only rank 0 loads the checkpoint; the DDP
	// constructor broadcast aligns the others.
	groupsB := comm.NewInProcGroups(world, comm.Options{})
	restModels := make([]nn.Module, world)
	runRanks(t, world, func(rank int) error {
		m := buildMLP(int64(100+rank), 4, 6, 2) // junk init
		restModels[rank] = m
		if rank == 0 {
			if err := nn.LoadState(bytes.NewReader(ckpt.Bytes()), m); err != nil {
				return err
			}
		}
		d, err := New(m, groupsB[rank], Options{})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		return train(d, opt, rank, 3, 6)
	})

	// Note: momentum was zero here (fresh SGD without momentum state in
	// the checkpoint), so trajectories match exactly only because
	// Momentum defaults to 0.
	for i, p := range restModels[0].Parameters() {
		if !p.Value.AllClose(contModels[0].Parameters()[i].Value, 1e-6, 1e-7) {
			t.Fatalf("restored fleet diverged at param %d (max diff %v)",
				i, p.Value.MaxAbsDiff(contModels[0].Parameters()[i].Value))
		}
	}
}
