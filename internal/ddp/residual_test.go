package ddp

import (
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// trainSteps runs n synchronized iterations on d with deterministic
// data derived from seed.
func trainSteps(d *DDP, opt optim.Optimizer, seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed))
	for it := 0; it < n; it++ {
		opt.ZeroGrad()
		x := tensor.RandN(rng, 1, 2, 4)
		y := tensor.RandN(rng, 1, 2, 2)
		out := d.Forward(autograd.Constant(x))
		if err := d.Backward(autograd.MSELoss(out, autograd.Constant(y))); err != nil {
			return err
		}
		opt.Step()
	}
	return nil
}

// residualNonZero reports whether any residual element is non-zero —
// the precondition for a continuity assertion to mean anything.
func residualNonZero(res []float32) bool {
	for _, v := range res {
		if v != 0 {
			return true
		}
	}
	return false
}

// TestResidualSurvivesRebuildBitwise is the regression test for the
// residual-reset bug: rebuilding buckets (the Section 6.2.1 layout
// change) used to recreate every codec, silently zeroing 1-bit error
// feedback after the first iteration of every run. Residuals are now
// keyed by parameter identity and must be bitwise-identical across the
// rebuild.
func TestResidualSurvivesRebuildBitwise(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	ddps := make([]*DDP, world)
	before := make([][]float32, world)
	after := make([][]float32, world)
	runRanks(t, world, func(rank int) error {
		m := buildMLP(21, 4, 8, 2)
		// Tiny cap: several buckets, so the rebuild genuinely reshuffles.
		d, err := New(m, groups[rank], Options{
			BucketCapBytes: 64,
			NewCodec:       func() comm.Codec { return &comm.OneBitCodec{} },
		})
		if err != nil {
			return err
		}
		ddps[rank] = d
		opt := optim.NewSGD(d.Parameters(), 0.05)
		if err := trainSteps(d, opt, int64(100+rank), 2); err != nil {
			return err
		}
		before[rank] = d.ResidualState()
		if err := d.RebuildBuckets(); err != nil {
			return err
		}
		after[rank] = d.ResidualState()
		// Training must keep working against the remapped layout.
		if err := trainSteps(d, opt, int64(200+rank), 1); err != nil {
			return err
		}
		return nil
	})
	for rank := 0; rank < world; rank++ {
		if !residualNonZero(before[rank]) {
			t.Fatalf("rank %d accumulated no residual; test is vacuous", rank)
		}
		if len(before[rank]) != len(after[rank]) {
			t.Fatalf("rank %d: residual length changed across rebuild", rank)
		}
		for i := range before[rank] {
			if before[rank][i] != after[rank][i] {
				t.Fatalf("rank %d: residual %d changed across rebuild: %v -> %v",
					rank, i, before[rank][i], after[rank][i])
			}
		}
	}
}

// TestResidualSurvivesAutoRebuild: the one-shot automatic rebuild of
// Section 6.2.1 (armed by AutoRebuildBuckets, fired inside Forward)
// must carry residuals exactly like the explicit RebuildBuckets.
func TestResidualSurvivesAutoRebuild(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groups {
			g.Close()
		}
	}()
	checked := make([]bool, world)
	runRanks(t, world, func(rank int) error {
		m := buildMLP(33, 4, 8, 2)
		d, err := New(m, groups[rank], Options{
			BucketCapBytes:     64,
			AutoRebuildBuckets: true,
			NewCodec:           func() comm.Codec { return &comm.OneBitCodec{} },
		})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		if err := trainSteps(d, opt, int64(300+rank), 1); err != nil {
			return err
		}
		before := d.ResidualState()
		if !residualNonZero(before) {
			t.Errorf("rank %d: no residual after first iteration", rank)
		}
		// The next synchronized Forward performs the rebuild.
		if err := trainSteps(d, opt, int64(400+rank), 1); err != nil {
			return err
		}
		if !d.Rebuilt() {
			t.Errorf("rank %d: auto rebuild did not fire", rank)
		}
		checked[rank] = true
		return nil
	})
	for rank, ok := range checked {
		if !ok {
			t.Fatalf("rank %d did not complete", rank)
		}
	}
}

// TestResidualSurvivesSetProcessGroup: swapping the process group (the
// elastic reconfiguration hook) resets the reducer but must NOT reset
// error feedback — the residual is training state, not reducer state.
func TestResidualSurvivesSetProcessGroup(t *testing.T) {
	const world = 2
	groupsA := comm.NewInProcGroups(world, comm.Options{})
	groupsB := comm.NewInProcGroups(world, comm.Options{})
	defer func() {
		for _, g := range groupsB {
			g.Close()
		}
	}()
	runRanks(t, world, func(rank int) error {
		m := buildMLP(55, 4, 8, 2)
		d, err := New(m, groupsA[rank], Options{
			BucketCapBytes: 64,
			NewCodec:       func() comm.Codec { return &comm.OneBitCodec{} },
		})
		if err != nil {
			return err
		}
		opt := optim.NewSGD(d.Parameters(), 0.05)
		if err := trainSteps(d, opt, int64(500+rank), 2); err != nil {
			return err
		}
		before := d.ResidualState()
		if !residualNonZero(before) {
			t.Errorf("rank %d: no residual accumulated", rank)
		}
		groupsA[rank].Close()
		if err := d.SetProcessGroup(groupsB[rank]); err != nil {
			return err
		}
		after := d.ResidualState()
		for i := range before {
			if before[i] != after[i] {
				t.Errorf("rank %d: residual %d reset by SetProcessGroup: %v -> %v", rank, i, before[i], after[i])
				break
			}
		}
		if err := trainSteps(d, opt, int64(600+rank), 1); err != nil {
			return err
		}
		return nil
	})
}

// TestSetResidualStateRoundTrip: Set(ResidualState()) is the identity,
// and a joiner that installs a source's vector reports it back bitwise
// — the property elastic's SyncResiduals broadcast relies on.
func TestSetResidualStateRoundTrip(t *testing.T) {
	groups := comm.NewInProcGroups(1, comm.Options{})
	defer groups[0].Close()
	m := buildMLP(77, 4, 8, 2)
	d, err := New(m, groups[0], Options{
		BucketCapBytes: 64,
		NewCodec:       func() comm.Codec { return &comm.OneBitCodec{} },
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := optim.NewSGD(d.Parameters(), 0.05)
	if err := trainSteps(d, opt, 900, 2); err != nil {
		t.Fatal(err)
	}
	state := d.ResidualState()
	if !residualNonZero(state) {
		t.Fatal("no residual accumulated")
	}
	// Perturb, then restore.
	perturbed := append([]float32(nil), state...)
	for i := range perturbed {
		perturbed[i] += 1
	}
	if err := d.SetResidualState(perturbed); err != nil {
		t.Fatal(err)
	}
	if err := d.SetResidualState(state); err != nil {
		t.Fatal(err)
	}
	got := d.ResidualState()
	for i := range state {
		if got[i] != state[i] {
			t.Fatalf("residual %d: %v != %v after round trip", i, got[i], state[i])
		}
	}
	if err := d.SetResidualState(state[:len(state)-1]); err == nil {
		t.Fatal("short residual vector must be rejected")
	}

	// Without a wire codec, there is no residual state to carry.
	plain, err := New(buildMLP(78, 4, 8, 2), groups[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := plain.ResidualState(); len(s) != 0 {
		t.Fatalf("codec-less DDP reports residual state of %d elements", len(s))
	}
	if err := plain.SetResidualState(nil); err != nil {
		t.Fatalf("empty residual install must be a no-op: %v", err)
	}
	if err := plain.SetResidualState([]float32{1}); err == nil {
		t.Fatal("non-empty residual install without a codec must error")
	}
}

// TestWireCodecReplicasStayIdentical: end-to-end through the wire-level
// compressed path, replicas must remain bitwise identical — the paper's
// core correctness guarantee, now under compression.
func TestWireCodecReplicasStayIdentical(t *testing.T) {
	for _, mk := range []struct {
		name    string
		factory func() comm.Codec
	}{
		{"fp16", func() comm.Codec { return comm.Float16Codec{} }},
		{"1bit", func() comm.Codec { return &comm.OneBitCodec{} }},
		{"topk", func() comm.Codec { return &comm.TopKCodec{} }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			const world = 3
			groups := comm.NewInProcGroups(world, comm.Options{})
			defer func() {
				for _, g := range groups {
					g.Close()
				}
			}()
			ddps := make([]*DDP, world)
			runRanks(t, world, func(rank int) error {
				m := buildMLP(int64(rank), 4, 8, 2) // per-rank seeds; constructor aligns
				d, err := New(m, groups[rank], Options{BucketCapBytes: 64, NewCodec: mk.factory})
				if err != nil {
					return err
				}
				ddps[rank] = d
				opt := optim.NewSGD(d.Parameters(), 0.05)
				if err := trainSteps(d, opt, int64(1000+rank), 5); err != nil {
					return err
				}
				return nil
			})
			for rank := 1; rank < world; rank++ {
				for i, p := range ddps[rank].Parameters() {
					if !p.Value.Equal(ddps[0].Parameters()[i].Value) {
						t.Fatalf("rank %d param %d diverged under %s compression", rank, i, mk.name)
					}
				}
			}
		})
	}
}
