package ddp

import "repro/internal/metrics"

var (
	// mBucketReduceDur measures launch-to-completion per bucket: from the
	// moment the backward pass launched the bucket's AllReduce to the
	// moment finalizeBackward observed it done. This is the overlap
	// window Section 3.2.3 is about — time hidden behind the remaining
	// backward compute shows up here but not in step latency.
	mBucketReduceDur = metrics.Default().Histogram(
		"ddp_bucket_reduce_duration_seconds",
		"Per-bucket latency from AllReduce launch during backward to observed completion.",
		metrics.DurationBuckets)
	mBucketRebuilds = metrics.Default().Counter(
		"ddp_bucket_rebuilds_total",
		"Bucket layout rebuilds (traced-order one-shot rebuilds plus explicit RebuildBuckets calls).")
)
