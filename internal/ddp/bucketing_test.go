package ddp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReverseOrder(t *testing.T) {
	got := ReverseOrder(4)
	want := []int{3, 2, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ReverseOrder = %v", got)
		}
	}
}

func TestAssignBucketsReverseDefault(t *testing.T) {
	// 4 params of 10 elements (40 bytes each), cap 80 bytes -> 2 per
	// bucket, reverse order: bucket0 = {3,2}, bucket1 = {1,0}.
	sizes := []int{10, 10, 10, 10}
	a, err := AssignBuckets(sizes, 80, 4, ReverseOrder(4))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBuckets() != 2 {
		t.Fatalf("buckets = %d, want 2", a.NumBuckets())
	}
	if a.Buckets[0][0] != 3 || a.Buckets[0][1] != 2 || a.Buckets[1][0] != 1 || a.Buckets[1][1] != 0 {
		t.Fatalf("bucket contents %v", a.Buckets)
	}
	if a.BucketOf[3] != 0 || a.BucketOf[0] != 1 {
		t.Fatalf("BucketOf %v", a.BucketOf)
	}
	if a.OffsetOf[3] != 0 || a.OffsetOf[2] != 10 {
		t.Fatalf("OffsetOf %v", a.OffsetOf)
	}
	if a.BucketElems[0] != 20 {
		t.Fatalf("BucketElems %v", a.BucketElems)
	}
}

func TestAssignBucketsZeroCapOnePerParam(t *testing.T) {
	a, err := AssignBuckets([]int{5, 6, 7}, -1, 4, ReverseOrder(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBuckets() != 3 {
		t.Fatalf("buckets = %d, want 3 (one per parameter)", a.NumBuckets())
	}
}

func TestAssignBucketsOversizedParamGetsOwnBucket(t *testing.T) {
	// Middle param is bigger than the cap; it must not merge with others.
	a, err := AssignBuckets([]int{2, 1000, 2}, 64, 4, ReverseOrder(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, members := range a.Buckets {
		for _, idx := range members {
			if idx == 1 && len(members) != 1 {
				t.Fatalf("oversized param shares bucket: %v", a.Buckets)
			}
		}
	}
}

func TestAssignBucketsCustomOrder(t *testing.T) {
	// RebuildBuckets passes an observed order; packing must follow it.
	a, err := AssignBuckets([]int{1, 1, 1}, 8, 4, []int{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBuckets() != 2 || a.Buckets[0][0] != 1 || a.Buckets[0][1] != 0 || a.Buckets[1][0] != 2 {
		t.Fatalf("buckets %v", a.Buckets)
	}
}

func TestAssignBucketsRejectsBadOrder(t *testing.T) {
	if _, err := AssignBuckets([]int{1, 2}, 8, 4, []int{0, 0}); err == nil {
		t.Fatal("duplicate order entries must error")
	}
	if _, err := AssignBuckets([]int{1, 2}, 8, 4, []int{0}); err == nil {
		t.Fatal("short order must error")
	}
	if _, err := AssignBuckets([]int{1, 2}, 8, 4, []int{0, 5}); err == nil {
		t.Fatal("out-of-range order must error")
	}
}

// Property: every parameter lands in exactly one bucket, offsets tile the
// bucket exactly, and no bucket except singletons exceeds the cap.
func TestAssignBucketsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(2000)
		}
		capBytes := []int{-1, 256, 1024, 1 << 20}[rng.Intn(4)]
		a, err := AssignBuckets(sizes, capBytes, 4, ReverseOrder(n))
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for b, members := range a.Buckets {
			total := 0
			for _, idx := range members {
				if seen[idx] || a.BucketOf[idx] != b {
					return false
				}
				seen[idx] = true
				if a.OffsetOf[idx] != total {
					return false
				}
				total += sizes[idx]
			}
			if total != a.BucketElems[b] {
				return false
			}
			if capBytes > 0 && len(members) > 1 && total*4 > capBytes {
				return false
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
