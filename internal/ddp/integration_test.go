package ddp

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/autograd"
	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/store"
	"repro/internal/tensor"
)

// reversedModel registers parameters in the opposite order of their
// execution: Parameters() lists layer a first, but the forward pass runs
// b before a, so a's gradients become ready first — the situation where
// DDP's reverse-registration-order heuristic mis-predicts and the
// Section 6.2.1 rebuild pays off.
type reversedModel struct {
	a, b *nn.Linear
}

func newReversedModel(seed int64) *reversedModel {
	rng := rand.New(rand.NewSource(seed))
	return &reversedModel{
		a: nn.NewLinear(rng, "a", 4, 2),
		b: nn.NewLinear(rng, "b", 4, 4),
	}
}

func (m *reversedModel) Forward(x *autograd.Variable) *autograd.Variable {
	return m.a.Forward(m.b.Forward(x))
}

func (m *reversedModel) Parameters() []*nn.Parameter {
	return append(m.a.Parameters(), m.b.Parameters()...)
}
func (m *reversedModel) Buffers() []*nn.Buffer { return nil }
func (m *reversedModel) SetTraining(bool)      {}

func TestAutoRebuildBucketsFollowsExecutionOrder(t *testing.T) {
	const world = 2
	groups := comm.NewInProcGroups(world, comm.Options{})
	ddps := make([]*DDP, world)
	models := make([]*reversedModel, world)

	iteration := func(d *DDP, rank int, seed int64) error {
		rng := rand.New(rand.NewSource(seed))
		out := d.Forward(autograd.Constant(tensor.RandN(rng, 1, 3, 4)))
		return d.Backward(autograd.Sum(out))
	}

	runRanks(t, world, func(rank int) error {
		models[rank] = newReversedModel(5)
		d, err := New(models[rank], groups[rank], Options{
			BucketCapBytes:     -1, // per-parameter buckets expose ordering
			AutoRebuildBuckets: true,
		})
		if err != nil {
			return err
		}
		ddps[rank] = d
		// Default assignment: reverse registration order, so bucket 0
		// holds b's last parameter — the WRONG prediction for this model.
		if first := d.Assignment().Buckets[0][0]; first != 3 {
			t.Errorf("rank %d: default bucket0 starts with %d, want 3 (b.bias)", rank, first)
		}
		return iteration(d, rank, int64(10+rank))
	})
	for _, d := range ddps {
		if d.Rebuilt() {
			t.Fatal("rebuild must not happen during the first iteration")
		}
	}

	// Second iteration triggers the one-shot rebuild at forward time.
	runRanks(t, world, func(rank int) error {
		return iteration(ddps[rank], rank, int64(20+rank))
	})
	for rank, d := range ddps {
		if !d.Rebuilt() {
			t.Fatalf("rank %d: rebuild did not happen", rank)
		}
		// Bucket 0 now starts with one of a's parameters (ready first).
		if first := d.Assignment().Buckets[0][0]; first != 0 && first != 1 {
			t.Fatalf("rank %d: rebuilt bucket0 starts with %d, want a parameter of layer a", rank, first)
		}
	}
	// All ranks agree on the rebuilt assignment (rank 0's trace wins).
	for b := range ddps[0].Assignment().Buckets {
		for i, idx := range ddps[0].Assignment().Buckets[b] {
			if ddps[1].Assignment().Buckets[b][i] != idx {
				t.Fatal("ranks disagree on rebuilt assignment")
			}
		}
	}

	// Training continues correctly after the rebuild: replicas identical.
	runRanks(t, world, func(rank int) error {
		opt := optim.NewSGD(ddps[rank].Parameters(), 0.1)
		for i := 0; i < 3; i++ {
			if err := iteration(ddps[rank], rank, int64(30+i+rank)); err != nil {
				return err
			}
			opt.Step()
			opt.ZeroGrad()
		}
		return nil
	})
	for i, p := range models[0].Parameters() {
		if !p.Value.Equal(models[1].Parameters()[i].Value) {
			t.Fatalf("replicas diverged at param %d after rebuild", i)
		}
	}
	// The rebuild is one-shot.
	order0 := ddps[0].Assignment().Buckets[0][0]
	runRanks(t, world, func(rank int) error { return iteration(ddps[rank], rank, 99) })
	if ddps[0].Assignment().Buckets[0][0] != order0 {
		t.Fatal("assignment changed after the one-shot rebuild")
	}
}

// TestDDPOverTCP exercises the full stack across real TCP sockets:
// rendezvous store, TCP mesh, ring AllReduce, DDP reducer — and checks
// the resulting gradients against the averaged local reference.
func TestDDPOverTCP(t *testing.T) {
	srv, err := store.ServeTCP("127.0.0.1:0", 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const world = 3
	models := make([]nn.Module, world)
	inputs := make([]*tensor.Tensor, world)
	targets := make([]*tensor.Tensor, world)
	dataRng := rand.New(rand.NewSource(1))
	for r := 0; r < world; r++ {
		inputs[r] = tensor.RandN(dataRng, 1, 2, 4)
		targets[r] = tensor.RandN(dataRng, 1, 2, 2)
	}

	var wg sync.WaitGroup
	errs := make([]error, world)
	groups := make([]comm.ProcessGroup, world)
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = func() error {
				client, err := store.DialTCP(srv.Addr())
				if err != nil {
					return err
				}
				defer client.Close()
				pg, err := comm.NewTCPGroup(rank, world, client, "ddp-test", comm.Options{})
				if err != nil {
					return err
				}
				groups[rank] = pg
				models[rank] = buildMLP(int64(rank), 4, 6, 2) // different seeds
				d, err := New(models[rank], pg, Options{BucketCapBytes: 128})
				if err != nil {
					return err
				}
				opt := optim.NewSGD(d.Parameters(), 0.05)
				opt.Momentum = 0.9
				for it := 0; it < 3; it++ {
					opt.ZeroGrad()
					out := d.Forward(autograd.Constant(inputs[rank]))
					if err := d.Backward(autograd.MSELoss(out, autograd.Constant(targets[rank]))); err != nil {
						return err
					}
					opt.Step()
				}
				return nil
			}()
		}(r)
	}
	wg.Wait()
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	defer func() {
		for _, g := range groups {
			if g != nil {
				g.Close()
			}
		}
	}()

	// All replicas bitwise identical after training over real sockets.
	for rank := 1; rank < world; rank++ {
		for i, p := range models[rank].Parameters() {
			if !p.Value.Equal(models[0].Parameters()[i].Value) {
				t.Fatalf("rank %d param %d differs from rank 0 after TCP training", rank, i)
			}
		}
	}
}

// TestDDPGradientAveragingProperty: for random shapes, world sizes,
// bucket caps and data, DDP gradients equal the average of per-rank
// local gradients. This is the reducer's core contract, fuzzed.
func TestDDPGradientAveragingProperty(t *testing.T) {
	f := func(seed int64, worldSeed, inSeed, hidSeed, capSeed uint8) bool {
		world := int(worldSeed%4) + 1
		in := int(inSeed%6) + 2
		hidden := int(hidSeed%8) + 2
		capBytes := []int{-1, 64, 1024, 1 << 20}[capSeed%4]

		dataRng := rand.New(rand.NewSource(seed))
		inputs := make([]*tensor.Tensor, world)
		targets := make([]*tensor.Tensor, world)
		for r := 0; r < world; r++ {
			inputs[r] = tensor.RandN(dataRng, 1, 2, in)
			targets[r] = tensor.RandN(dataRng, 1, 2, 2)
		}

		groups := comm.NewInProcGroups(world, comm.Options{})
		defer func() {
			for _, g := range groups {
				g.Close()
			}
		}()
		ddpModels := make([]nn.Module, world)
		var wg sync.WaitGroup
		failed := false
		var mu sync.Mutex
		for r := 0; r < world; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				ddpModels[rank] = buildMLP(seed, in, hidden, 2)
				d, err := New(ddpModels[rank], groups[rank], Options{BucketCapBytes: capBytes})
				if err == nil {
					out := d.Forward(autograd.Constant(inputs[rank]))
					err = d.Backward(autograd.MSELoss(out, autograd.Constant(targets[rank])))
				}
				if err != nil {
					mu.Lock()
					failed = true
					mu.Unlock()
				}
			}(r)
		}
		wg.Wait()
		if failed {
			return false
		}

		// Reference: average of local gradients.
		var want []*tensor.Tensor
		for r := 0; r < world; r++ {
			local := buildMLP(seed, in, hidden, 2)
			out := local.Forward(autograd.Constant(inputs[r]))
			autograd.Backward(autograd.MSELoss(out, autograd.Constant(targets[r])), nil)
			if want == nil {
				want = make([]*tensor.Tensor, len(local.Parameters()))
				for i, p := range local.Parameters() {
					want[i] = p.Grad.Clone()
				}
			} else {
				for i, p := range local.Parameters() {
					tensor.AddInPlace(want[i], p.Grad)
				}
			}
		}
		for i := range want {
			tensor.ScaleInPlace(want[i], 1/float32(world))
		}
		for rank := 0; rank < world; rank++ {
			for i, p := range ddpModels[rank].Parameters() {
				if !p.Grad.AllClose(want[i], 1e-4, 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
