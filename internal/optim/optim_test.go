package optim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/autograd"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func scalarParam(v float32) *nn.Parameter {
	return nn.NewParameter("p", tensor.FromSlice([]float32{v}, 1))
}

func setGrad(p *nn.Parameter, g float32) {
	p.Grad = tensor.FromSlice([]float32{g}, 1)
}

func TestSGDPlainStep(t *testing.T) {
	p := scalarParam(1)
	opt := NewSGD([]*nn.Parameter{p}, 0.1)
	setGrad(p, 2)
	opt.Step()
	if got := p.Value.At(0); math.Abs(float64(got-0.8)) > 1e-6 {
		t.Fatalf("param = %v, want 0.8", got)
	}
}

func TestSGDMomentumMatchesTorchSemantics(t *testing.T) {
	// torch.optim.SGD: v = mu*v + g; p -= lr*v with v initialized to g.
	p := scalarParam(0)
	opt := NewSGD([]*nn.Parameter{p}, 1)
	opt.Momentum = 0.9
	setGrad(p, 1)
	opt.Step() // v=1, p=-1
	setGrad(p, 1)
	opt.Step() // v=1.9, p=-2.9
	if got := p.Value.At(0); math.Abs(float64(got+2.9)) > 1e-5 {
		t.Fatalf("param = %v, want -2.9", got)
	}
	if v := opt.VelocityOf(p); v == nil || math.Abs(float64(v.At(0)-1.9)) > 1e-5 {
		t.Fatalf("velocity = %v, want 1.9", v)
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := scalarParam(10)
	opt := NewSGD([]*nn.Parameter{p}, 0.1)
	opt.WeightDecay = 0.5
	setGrad(p, 0)
	opt.Step() // effective grad = 0 + 0.5*10 = 5; p = 10 - 0.5 = 9.5
	if got := p.Value.At(0); math.Abs(float64(got-9.5)) > 1e-5 {
		t.Fatalf("param = %v, want 9.5", got)
	}
}

func TestSGDSkipsNilGradients(t *testing.T) {
	// Section 3.2.3: an optimizer that skips absent gradients must not
	// decay momentum or move the parameter.
	p := scalarParam(1)
	opt := NewSGD([]*nn.Parameter{p}, 0.1)
	opt.Momentum = 0.9
	setGrad(p, 1)
	opt.Step()
	vBefore := opt.VelocityOf(p).At(0)
	p.ZeroGrad()
	opt.Step() // nil grad: untouched
	if opt.VelocityOf(p).At(0) != vBefore {
		t.Fatal("momentum must not change for absent gradient")
	}
}

func TestZeroGrad(t *testing.T) {
	p := scalarParam(1)
	opt := NewSGD([]*nn.Parameter{p}, 0.1)
	setGrad(p, 1)
	opt.ZeroGrad()
	if p.Grad != nil {
		t.Fatal("ZeroGrad failed")
	}
}

func TestAdamDirectionAndMagnitude(t *testing.T) {
	// First Adam step moves by ~lr regardless of gradient scale.
	p := scalarParam(0)
	opt := NewAdam([]*nn.Parameter{p}, 0.01)
	setGrad(p, 123)
	opt.Step()
	if got := p.Value.At(0); math.Abs(float64(got+0.01)) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ~-0.01", got)
	}
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 with SGD+momentum; must converge to w=3.
	rng := rand.New(rand.NewSource(1))
	_ = rng
	w := nn.NewParameter("w", tensor.FromSlice([]float32{0}, 1))
	opt := NewSGD([]*nn.Parameter{w}, 0.05)
	opt.Momentum = 0.9
	target := autograd.Constant(tensor.FromSlice([]float32{3}, 1))
	for i := 0; i < 200; i++ {
		opt.ZeroGrad()
		loss := autograd.MSELoss(w.Variable, target)
		autograd.Backward(loss, nil)
		opt.Step()
	}
	if got := w.Value.At(0); math.Abs(float64(got-3)) > 1e-2 {
		t.Fatalf("converged to %v, want 3", got)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := nn.NewParameter("w", tensor.FromSlice([]float32{0}, 1))
	opt := NewAdam([]*nn.Parameter{w}, 0.1)
	target := autograd.Constant(tensor.FromSlice([]float32{-2}, 1))
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		loss := autograd.MSELoss(w.Variable, target)
		autograd.Backward(loss, nil)
		opt.Step()
	}
	if got := w.Value.At(0); math.Abs(float64(got+2)) > 5e-2 {
		t.Fatalf("converged to %v, want -2", got)
	}
}
