package optim

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// StateFlattener is implemented by optimizers whose internal state can
// travel as a flat float32 vector. Elastic recovery broadcasts this
// vector from the designated survivor to joiners so momentum (and Adam
// moments) resume identically on every rank — the Section 2.2 argument
// that optimizer state must stay synchronized applies to restarts too.
//
// FlatState materializes lazily-allocated per-parameter state as zeros
// so every rank produces an identically-sized vector regardless of how
// many steps it has taken; SetFlatState is its inverse.
type StateFlattener interface {
	FlatState() []float32
	SetFlatState(flat []float32) error
}

// flatLen is the combined element count of a parameter list.
func flatLen(params []*nn.Parameter) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// ensure returns the state tensor for p in m, materializing zeros on
// first use. Zero momentum/moment buffers are update-equivalent to
// absent ones for both SGD and Adam, so materialization never changes
// training trajectories.
func ensure(m map[*nn.Parameter]*tensor.Tensor, p *nn.Parameter) *tensor.Tensor {
	t := m[p]
	if t == nil {
		t = tensor.New(p.Value.Shape()...)
		m[p] = t
	}
	return t
}

// FlatState returns [velocity...] in parameter order.
func (s *SGD) FlatState() []float32 {
	flat := make([]float32, 0, flatLen(s.Params))
	for _, p := range s.Params {
		flat = append(flat, ensure(s.velocity, p).Data()...)
	}
	return flat
}

// SetFlatState restores velocities exported by FlatState.
func (s *SGD) SetFlatState(flat []float32) error {
	if len(flat) != flatLen(s.Params) {
		return fmt.Errorf("optim: SGD state has %d elements, expected %d", len(flat), flatLen(s.Params))
	}
	off := 0
	for _, p := range s.Params {
		v := ensure(s.velocity, p)
		off += copy(v.Data(), flat[off:off+p.Value.Size()])
	}
	return nil
}

// FlatState returns [step, m..., v...] in parameter order. The step
// count rides along as a float32, exact for any realistic step count.
func (a *Adam) FlatState() []float32 {
	flat := make([]float32, 0, 1+2*flatLen(a.Params))
	flat = append(flat, float32(a.step))
	for _, p := range a.Params {
		flat = append(flat, ensure(a.m, p).Data()...)
	}
	for _, p := range a.Params {
		flat = append(flat, ensure(a.v, p).Data()...)
	}
	return flat
}

// SetFlatState restores moments and the step count exported by
// FlatState.
func (a *Adam) SetFlatState(flat []float32) error {
	want := 1 + 2*flatLen(a.Params)
	if len(flat) != want {
		return fmt.Errorf("optim: Adam state has %d elements, expected %d", len(flat), want)
	}
	a.step = int(flat[0])
	off := 1
	for _, p := range a.Params {
		off += copy(ensure(a.m, p).Data(), flat[off:off+p.Value.Size()])
	}
	for _, p := range a.Params {
		off += copy(ensure(a.v, p).Data(), flat[off:off+p.Value.Size()])
	}
	return nil
}

var (
	_ StateFlattener = (*SGD)(nil)
	_ StateFlattener = (*Adam)(nil)
)
