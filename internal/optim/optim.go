// Package optim implements parameter optimizers (SGD with momentum,
// Adam) operating on nn Parameters.
//
// SGD's momentum state is central to the paper's Section 2.2 argument:
// gradient synchronization keeps optimizer state identical across
// replicas, while parameter averaging lets momentum buffers diverge.
// The optimizers here skip parameters whose Grad is nil, matching the
// "optimizer uses gradient absence information" behaviour discussed in
// Section 3.2.3.
package optim

import (
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update using the current gradients. Parameters
	// with nil gradients are skipped entirely (no momentum decay).
	Step()
	// ZeroGrad clears all parameter gradients.
	ZeroGrad()
}

// SGD implements stochastic gradient descent with optional momentum and
// weight decay, matching torch.optim.SGD update rules.
type SGD struct {
	Params      []*nn.Parameter
	LR          float32
	Momentum    float32
	WeightDecay float32

	velocity map[*nn.Parameter]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer over the given parameters.
func NewSGD(params []*nn.Parameter, lr float32) *SGD {
	return &SGD{Params: params, LR: lr, velocity: make(map[*nn.Parameter]*tensor.Tensor)}
}

// Step applies v = momentum*v + grad (+wd*param); param -= lr*v.
func (s *SGD) Step() {
	for _, p := range s.Params {
		if p.Grad == nil {
			continue
		}
		g := p.Grad
		if s.WeightDecay != 0 {
			g = g.Clone()
			tensor.AxpyInPlace(g, s.WeightDecay, p.Value)
		}
		update := g
		if s.Momentum != 0 {
			v := s.velocity[p]
			if v == nil {
				v = g.Clone()
				s.velocity[p] = v
			} else {
				tensor.ScaleInPlace(v, s.Momentum)
				tensor.AddInPlace(v, g)
			}
			update = v
		}
		tensor.AxpyInPlace(p.Value, -s.LR, update)
	}
}

// ZeroGrad clears gradients of all managed parameters.
func (s *SGD) ZeroGrad() {
	for _, p := range s.Params {
		p.ZeroGrad()
	}
}

// VelocityOf exposes the momentum buffer for a parameter (nil if none),
// used by tests demonstrating optimizer-state divergence under
// parameter averaging.
func (s *SGD) VelocityOf(p *nn.Parameter) *tensor.Tensor { return s.velocity[p] }

// Adam implements the Adam optimizer with PyTorch default
// hyperparameters.
type Adam struct {
	Params []*nn.Parameter
	LR     float32
	Beta1  float32
	Beta2  float32
	Eps    float32

	step int
	m, v map[*nn.Parameter]*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with defaults beta1=0.9,
// beta2=0.999, eps=1e-8.
func NewAdam(params []*nn.Parameter, lr float32) *Adam {
	return &Adam{
		Params: params, LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[*nn.Parameter]*tensor.Tensor),
		v: make(map[*nn.Parameter]*tensor.Tensor),
	}
}

// Step applies one bias-corrected Adam update.
func (a *Adam) Step() {
	a.step++
	c1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.step)))
	c2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.step)))
	for _, p := range a.Params {
		if p.Grad == nil {
			continue
		}
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			v = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = v
		}
		md, vd, gd, pd := m.Data(), v.Data(), p.Grad.Data(), p.Value.Data()
		for i := range gd {
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*gd[i]
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*gd[i]*gd[i]
			mhat := md[i] / c1
			vhat := vd[i] / c2
			pd[i] -= a.LR * mhat / (float32(math.Sqrt(float64(vhat))) + a.Eps)
		}
	}
}

// ZeroGrad clears gradients of all managed parameters.
func (a *Adam) ZeroGrad() {
	for _, p := range a.Params {
		p.ZeroGrad()
	}
}

var (
	_ Optimizer = (*SGD)(nil)
	_ Optimizer = (*Adam)(nil)
)
